// Failure injection: exhausted devices, dropped partitions, rejected cache
// admissions, and malformed inputs must surface as clean MemphisError
// exceptions (or graceful degradation) without corrupting system state.

#include <gtest/gtest.h>

#include "common/status.h"
#include "core/system.h"
#include "matrix/kernels.h"
#include "matrix/nn_kernels.h"

namespace memphis {
namespace {

TEST(FailureTest, GpuOomSurfacesAsTypedError) {
  SystemConfig config;
  config.mem_scale = 1.0;
  config.gpu_memory = 64 << 10;  // 64 KB device.
  config.gpu_offload_min_flops = 1e3;
  config.reuse_mode = ReuseMode::kMemphis;
  MemphisSystem system(config);
  // A 512x512 product needs 2 MB outputs: cannot fit.
  system.ctx().BindMatrix("A", kernels::RandGaussian(512, 512, 1));
  auto block = compiler::MakeBasicBlock();
  auto& dag = block->dag();
  auto mm = dag.Op("matmult", {dag.Read("A"), dag.Read("A")});
  mm->ForceBackend(Backend::kGpu);
  dag.Write("c", mm);
  EXPECT_THROW(system.Run(*block), GpuOutOfMemoryError);
}

TEST(FailureTest, SystemUsableAfterGpuOom) {
  SystemConfig config;
  config.mem_scale = 1.0;
  config.gpu_memory = 64 << 10;
  config.reuse_mode = ReuseMode::kMemphis;
  MemphisSystem system(config);
  system.ctx().BindMatrix("A", kernels::RandGaussian(512, 512, 1));
  {
    auto block = compiler::MakeBasicBlock();
    auto& dag = block->dag();
    auto mm = dag.Op("matmult", {dag.Read("A"), dag.Read("A")});
    mm->ForceBackend(Backend::kGpu);
    dag.Write("c", mm);
    EXPECT_THROW(system.Run(*block), GpuOutOfMemoryError);
  }
  // A CPU-placed block still runs to completion afterwards.
  auto block = compiler::MakeBasicBlock();
  auto& dag = block->dag();
  dag.Write("s", dag.Op("sum", {dag.Read("A")}));
  system.Run(*block);
  EXPECT_NEAR(system.ctx().FetchScalar("s"),
              kernels::Sum(*system.ctx().FetchMatrix("A")), 1e-6);
}

TEST(FailureTest, OversizedGpuWorkloadFitsViaEvictionLadder) {
  // Cumulative allocations exceed the device several times over; recycling
  // and eviction keep a long mini-batch loop running.
  SystemConfig config;
  config.mem_scale = 1.0;
  config.gpu_memory = 2 << 20;  // 2 MB device.
  config.gpu_offload_min_flops = 1e3;
  config.reuse_mode = ReuseMode::kMemphis;
  MemphisSystem system(config);
  auto& ctx = system.ctx();
  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    auto relu = dag.Op("relu", {dag.Read("batch")});
    relu->ForceBackend(Backend::kGpu);
    dag.Write("out", dag.Op("softmax", {relu}));
  }
  for (int i = 0; i < 40; ++i) {
    // 100 KB batches, distinct contents: > 4 MB total allocations.
    ctx.BindMatrixWithId("batch", kernels::RandGaussian(128, 100, 100 + i),
                         "f:batch" + std::to_string(i));
    system.Run(*block);
  }
  EXPECT_GT(ctx.gpu_cache().stats().recycled_exact +
                ctx.gpu_cache().stats().freed_for_space,
            0);
}

TEST(FailureTest, SparkDroppedPartitionsRecomputeTransparently) {
  SystemConfig config;
  config.mem_scale = 1.0;
  config.num_executors = 1;
  config.cores_per_executor = 4;
  config.executor_memory = 2 << 20;  // Tiny cluster storage (~600 KB).
  config.operation_memory = 64 << 10;
  config.reuse_mode = ReuseMode::kMemphis;
  MemphisSystem system(config);
  auto& ctx = system.ctx();
  auto x = kernels::RandGaussian(4000, 16, 7);  // 512 KB: fills storage.
  ctx.BindMatrixWithId("X", x, "f:X");
  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    auto relu = dag.Op("relu", {dag.Read("X")});
    dag.Write("out", dag.Op("transpose", {dag.Op("colSums", {relu})}));
  }
  for (int i = 0; i < 5; ++i) system.Run(*block);
  // Storage churn happened, results stay exact.
  auto expected = kernels::Transpose(*kernels::ColSums(*kernels::Relu(*x)));
  EXPECT_TRUE(ctx.FetchMatrix("out")->ApproxEquals(*expected, 1e-9));
}

TEST(FailureTest, HostCacheAdmissionRejectsLowValueFlood) {
  SystemConfig config;
  config.mem_scale = 1.0;
  config.driver_lineage_cache = 1 << 20;
  config.reuse_mode = ReuseMode::kMemphis;
  config.delayed_caching = false;
  config.auto_parameter_tuning = false;
  MemphisSystem system(config);
  auto& ctx = system.ctx();
  double now = 0.0;
  // A high-value resident entry (expensive, reused).
  auto valuable_key = LineageItem::Leaf("op", "valuable");
  auto entry = ctx.cache().PutHost(
      valuable_key, kernels::Rand(200, 200, 0, 1, 1.0, 1), /*cost=*/1e9, 1,
      &now);
  ASSERT_NE(entry, nullptr);
  ctx.cache().Reuse(valuable_key, &now);
  ctx.cache().Reuse(valuable_key, &now);
  // Flood with large cheap entries: the resident must survive in memory.
  for (int i = 0; i < 20; ++i) {
    ctx.cache().PutHost(LineageItem::Leaf("op", "cheap" + std::to_string(i)),
                        kernels::Rand(200, 200, 0, 1, 1.0, 2 + i), 1e-9, 1,
                        &now);
  }
  CacheEntryPtr survivor = ctx.cache().Reuse(valuable_key, &now);
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->status, CacheStatus::kCached);  // Never spilled.
}

TEST(FailureTest, UnboundVariableIsDiagnostic) {
  MemphisSystem system(SystemConfig{});
  auto block = compiler::MakeBasicBlock();
  block->dag().Write("y", block->dag().Op("relu", {block->dag().Read("nope")}));
  try {
    system.Run(*block);
    FAIL() << "expected throw";
  } catch (const MemphisError& e) {
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
  }
}

TEST(FailureTest, ShapeErrorsPropagateFromKernels) {
  MemphisSystem system(SystemConfig{});
  system.ctx().BindMatrix("A", kernels::RandGaussian(4, 5, 1));
  system.ctx().BindMatrix("B", kernels::RandGaussian(4, 5, 2));
  auto block = compiler::MakeBasicBlock();
  auto& dag = block->dag();
  dag.Write("c", dag.Op("matmult", {dag.Read("A"), dag.Read("B")}));
  EXPECT_THROW(system.Run(*block), MemphisError);
}

TEST(FailureTest, ScalarFetchOfMatrixVariableThrows) {
  MemphisSystem system(SystemConfig{});
  system.ctx().BindMatrix("M", kernels::RandGaussian(3, 3, 1));
  EXPECT_THROW(system.ctx().FetchScalar("M"), MemphisError);
}

TEST(FailureTest, ReuseStateSurvivesExceptions) {
  // A failing block must not poison the cache for later, valid blocks.
  SystemConfig config;
  config.reuse_mode = ReuseMode::kMemphis;
  MemphisSystem system(config);
  auto& ctx = system.ctx();
  ctx.BindMatrixWithId("X", kernels::RandGaussian(32, 4, 3), "f:X2");
  auto good = compiler::MakeBasicBlock();
  good->dag().Write("g", good->dag().Op("tsmm", {good->dag().Read("X")}));
  system.Run(*good);
  auto bad = compiler::MakeBasicBlock();
  bad->dag().Write("b", bad->dag().Op("relu", {bad->dag().Read("missing")}));
  EXPECT_THROW(system.Run(*bad), MemphisError);
  system.Run(*good);
  system.Run(*good);
  EXPECT_GT(ctx.cache().stats().TotalHits(), 0);
}

}  // namespace
}  // namespace memphis
