// Durable-tier tests (cache/persist.h, DESIGN.md section 5g): segment
// round-trips, torn-tail and corrupt-record recovery, index rebuild,
// compaction, budget eviction boundaries, host->disk->host promotion
// bitwise identity across pool sizes, serve warm restart, and an in-process
// kill-replay fuzz smoke campaign. Registered with the TSan halt_on_error
// policy (tests/CMakeLists.txt): the serve restarts exercise the harvest /
// rehydrate paths under the instrumented build.

#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/lineage_cache.h"
#include "cache/persist.h"
#include "cache/shared_store.h"
#include "fuzz/persist_fuzz.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"
#include "serve/request.h"
#include "serve/session_manager.h"
#include "serve/workloads.h"
#include "testing_util.h"

namespace memphis {
namespace {

using serve::MakeWorkloadRequest;
using serve::RequestOutcome;
using serve::ServeConfig;
using serve::SessionManager;
using testing::TempDir;
using testing::TestSeed;

PersistConfig TierConfig(const std::string& dir) {
  PersistConfig config;
  config.dir = dir;
  config.budget_bytes = 1 << 20;
  config.segment_bytes = 256;  // Small: round-trips span several segments.
  return config;
}

/// Record bytes a (key, payload) pair occupies on disk.
size_t Span(const std::string& key, const std::string& payload) {
  return kPersistRecordHeaderBytes + key.size() + payload.size();
}

/// Flips one bit of the byte at `offset` in `path`.
void FlipByte(const std::string& path, uint64_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.get(byte);
  file.seekp(static_cast<std::streamoff>(offset));
  file.put(static_cast<char>(byte ^ 0x10));
}

// ---------------------------------------------------------------------------
// Segment log basics.

TEST(PersistTierTest, AppendReadRoundTripAcrossReopen) {
  TempDir dir("persist-roundtrip");
  // Payloads with NULs and high bits: the log must be 8-bit clean.
  std::map<std::string, std::string> written;
  for (int i = 0; i < 32; ++i) {
    std::string payload;
    for (int b = 0; b < i * 7; ++b) {
      payload.push_back(static_cast<char>((i * 31 + b * 17) & 0xff));
    }
    written["key-" + std::to_string(i)] = payload;
  }
  {
    PersistentTier tier(TierConfig(dir.path()));
    for (const auto& [key, payload] : written) {
      EXPECT_TRUE(tier.Put(key, payload));
    }
    EXPECT_EQ(tier.LiveRecords(), written.size());
    EXPECT_EQ(tier.CheckInvariants(), "");
    tier.Flush();
  }
  PersistentTier reopened(TierConfig(dir.path()));
  EXPECT_EQ(reopened.open_report().segments_dropped, 0);
  EXPECT_EQ(reopened.open_report().corrupt_records, 0);
  EXPECT_EQ(reopened.LiveRecords(), written.size());
  for (const auto& [key, payload] : written) {
    std::string read;
    ASSERT_TRUE(reopened.Get(key, &read)) << key;
    EXPECT_EQ(read, payload) << key;  // Bitwise identical.
  }
  EXPECT_EQ(reopened.CheckInvariants(), "");
}

TEST(PersistTierTest, IndexRebuildReplaysOverwritesAndTombstones) {
  TempDir dir("persist-rebuild");
  {
    PersistentTier tier(TierConfig(dir.path()));
    EXPECT_TRUE(tier.Put("a", "old-a"));
    EXPECT_TRUE(tier.Put("b", "old-b"));
    EXPECT_TRUE(tier.Put("a", "new-a"));   // Overwrite: latest wins.
    EXPECT_TRUE(tier.Put("c", "c"));
    EXPECT_TRUE(tier.Remove("b"));         // Tombstone: erased on replay.
    EXPECT_FALSE(tier.Remove("missing"));  // Not live: no-op.
    tier.Flush();
  }
  PersistentTier reopened(TierConfig(dir.path()));
  EXPECT_EQ(reopened.Keys(), (std::vector<std::string>{"a", "c"}));
  std::string read;
  ASSERT_TRUE(reopened.Get("a", &read));
  EXPECT_EQ(read, "new-a");
  EXPECT_FALSE(reopened.Contains("b"));
  EXPECT_GT(reopened.open_report().dead_records, 0);
  EXPECT_EQ(reopened.CheckInvariants(), "");
}

// ---------------------------------------------------------------------------
// Recovery: torn tails, flipped bits, torn headers.

TEST(PersistTierTest, TornTailTruncatesAtLastValidRecord) {
  TempDir dir("persist-torn");
  PersistRecordSpan second;
  std::vector<PersistSegmentInfo> segments;
  {
    PersistConfig config = TierConfig(dir.path());
    config.segment_bytes = 1 << 20;  // One segment: both records together.
    PersistentTier tier(config);
    EXPECT_TRUE(tier.Put("first", "payload-1"));
    EXPECT_TRUE(tier.Put("second", "payload-2", &second));
    tier.Flush();
    segments = tier.Segments();
  }
  ASSERT_EQ(segments.size(), 1u);
  // Cut the file mid-way through the second record: a torn tail.
  std::filesystem::resize_file(segments[0].path, second.offset + 5);

  PersistentTier reopened(TierConfig(dir.path()));
  EXPECT_EQ(reopened.Keys(), (std::vector<std::string>{"first"}));
  std::string read;
  ASSERT_TRUE(reopened.Get("first", &read));
  EXPECT_EQ(read, "payload-1");
  EXPECT_GT(reopened.open_report().torn_tail_bytes, 0);
  EXPECT_EQ(reopened.open_report().segments_dropped, 0);
  EXPECT_EQ(reopened.CheckInvariants(), "");
}

TEST(PersistTierTest, FlippedBitDropsRecordAndEverythingAfterIt) {
  TempDir dir("persist-flip");
  PersistRecordSpan spans[3];
  std::vector<PersistSegmentInfo> segments;
  {
    PersistConfig config = TierConfig(dir.path());
    config.segment_bytes = 1 << 20;
    PersistentTier tier(config);
    EXPECT_TRUE(tier.Put("a", "payload-a", &spans[0]));
    EXPECT_TRUE(tier.Put("b", "payload-b", &spans[1]));
    EXPECT_TRUE(tier.Put("c", "payload-c", &spans[2]));
    tier.Flush();
    segments = tier.Segments();
  }
  ASSERT_EQ(segments.size(), 1u);
  // Corrupt one payload byte of record b: the scan must keep a, then stop.
  FlipByte(segments[0].path, spans[1].offset + spans[1].length - 1);

  PersistentTier reopened(TierConfig(dir.path()));
  EXPECT_EQ(reopened.Keys(), (std::vector<std::string>{"a"}));
  EXPECT_FALSE(reopened.Contains("b"));  // Corrupt bytes are never served.
  EXPECT_FALSE(reopened.Contains("c"));
  EXPECT_GT(reopened.open_report().corrupt_records, 0);
  EXPECT_EQ(reopened.CheckInvariants(), "");
}

TEST(PersistTierTest, TornHeaderDropsWholeSegmentOnly) {
  TempDir dir("persist-header");
  std::vector<PersistSegmentInfo> segments;
  {
    PersistConfig config = TierConfig(dir.path());
    config.segment_bytes = 1;  // Force one record per segment.
    PersistentTier tier(config);
    EXPECT_TRUE(tier.Put("a", "payload-a"));
    EXPECT_TRUE(tier.Put("b", "payload-b"));
    tier.Flush();
    segments = tier.Segments();
  }
  ASSERT_EQ(segments.size(), 2u);
  FlipByte(segments[0].path, 0);  // Damage the magic of the first segment.

  PersistentTier reopened(TierConfig(dir.path()));
  EXPECT_EQ(reopened.open_report().segments_dropped, 1);
  EXPECT_EQ(reopened.Keys(), (std::vector<std::string>{"b"}));
  // The damaged file is renamed aside, not deleted and not rejoined.
  EXPECT_TRUE(std::filesystem::exists(segments[0].path + ".corrupt"));
  EXPECT_EQ(reopened.CheckInvariants(), "");
}

// ---------------------------------------------------------------------------
// Compaction.

TEST(PersistTierTest, CompactionPreservesLiveEntriesBitwise) {
  TempDir dir("persist-compact");
  PersistConfig config = TierConfig(dir.path());
  config.compact_dead_ratio = 2.0;  // Manual compaction only.
  PersistentTier tier(config);
  std::map<std::string, std::string> expected;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 8; ++i) {
      const std::string key = "key-" + std::to_string(i);
      std::string payload = "round-" + std::to_string(round) + "-";
      payload.push_back(static_cast<char>(i));
      expected[key] = payload;
      EXPECT_TRUE(tier.Put(key, payload));
    }
  }
  EXPECT_TRUE(tier.Remove("key-0"));
  expected.erase("key-0");
  EXPECT_GT(tier.DeadBytes(), 0u);

  tier.Compact();
  EXPECT_EQ(tier.DeadBytes(), 0u);
  EXPECT_EQ(tier.LiveRecords(), expected.size());
  for (const auto& [key, payload] : expected) {
    std::string read;
    ASSERT_TRUE(tier.Get(key, &read)) << key;
    EXPECT_EQ(read, payload);
  }
  EXPECT_EQ(tier.CheckInvariants(), "");

  // The compacted log reopens to the same contents.
  tier.Flush();
  PersistentTier reopened(config);
  EXPECT_EQ(reopened.LiveRecords(), expected.size());
  for (const auto& [key, payload] : expected) {
    std::string read;
    ASSERT_TRUE(reopened.Get(key, &read)) << key;
    EXPECT_EQ(read, payload);
  }
}

TEST(PersistTierTest, AutoCompactionTriggersOnDeadRatio) {
  TempDir dir("persist-autocompact");
  PersistConfig config = TierConfig(dir.path());
  config.compact_dead_ratio = 0.5;
  PersistentTier tier(config);
  const int64_t before =
      obs::MetricsRegistry::Global().GetCounter("persist.compactions")->value();
  // Hammer one key: every put after the first is an overwrite, so dead bytes
  // cross half of the log quickly.
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(tier.Put("hot", "payload-" + std::to_string(i)));
  }
  EXPECT_GT(
      obs::MetricsRegistry::Global().GetCounter("persist.compactions")->value(),
      before);
  std::string read;
  ASSERT_TRUE(tier.Get("hot", &read));
  EXPECT_EQ(read, "payload-63");
  EXPECT_EQ(tier.CheckInvariants(), "");
}

// ---------------------------------------------------------------------------
// Budget eviction boundaries.

TEST(PersistTierTest, BudgetExactlyMetEvictsNothing) {
  TempDir dir("persist-budget-exact");
  const std::string payload(10, 'x');
  PersistConfig config = TierConfig(dir.path());
  config.budget_bytes = 3 * Span("k0", payload);  // Exactly three records.
  PersistentTier tier(config);
  EXPECT_TRUE(tier.Put("k0", payload));
  EXPECT_TRUE(tier.Put("k1", payload));
  EXPECT_TRUE(tier.Put("k2", payload));
  // Quota exactly met: all three live, nothing evicted.
  EXPECT_EQ(tier.LiveRecords(), 3u);
  EXPECT_EQ(tier.LiveBytes(), config.budget_bytes);

  // One more record overflows: the oldest (k0) goes, FIFO by sequence.
  EXPECT_TRUE(tier.Put("k3", payload));
  EXPECT_EQ(tier.Keys(), (std::vector<std::string>{"k1", "k2", "k3"}));
  EXPECT_EQ(tier.LiveBytes(), config.budget_bytes);
  EXPECT_EQ(tier.CheckInvariants(), "");

  // Reopening re-enforces the same budget in the same order: identical set.
  tier.Flush();
  PersistentTier reopened(config);
  EXPECT_EQ(reopened.Keys(), (std::vector<std::string>{"k1", "k2", "k3"}));
  EXPECT_GT(reopened.open_report().evicted_on_open, 0);
}

TEST(PersistTierTest, RecordLargerThanBudgetIsRejectedWhole) {
  TempDir dir("persist-budget-oversize");
  PersistConfig config = TierConfig(dir.path());
  config.budget_bytes = 64;
  PersistentTier tier(config);
  EXPECT_TRUE(tier.Put("small", "fits"));
  EXPECT_FALSE(tier.Put("big", std::string(256, 'y')));  // Never partial.
  EXPECT_EQ(tier.Keys(), (std::vector<std::string>{"small"}));
  EXPECT_EQ(tier.CheckInvariants(), "");
}

// ---------------------------------------------------------------------------
// Payload serde.

TEST(PersistPayloadTest, MatrixAndScalarRoundTripBitwise) {
  MatrixPtr matrix = kernels::RandGaussian(17, 9, /*seed=*/TestSeed(3));
  const std::string encoded =
      EncodePersistPayload(CacheKind::kHostMatrix, matrix, 0.0, 12.5);
  CacheKind kind = CacheKind::kScalar;
  MatrixPtr decoded;
  double scalar = 0.0;
  double compute_cost = 0.0;
  ASSERT_TRUE(
      DecodePersistPayload(encoded, &kind, &decoded, &scalar, &compute_cost));
  EXPECT_EQ(kind, CacheKind::kHostMatrix);
  EXPECT_EQ(compute_cost, 12.5);
  ASSERT_NE(decoded, nullptr);
  ASSERT_EQ(decoded->rows(), matrix->rows());
  ASSERT_EQ(decoded->cols(), matrix->cols());
  EXPECT_EQ(decoded->ContentHash(), matrix->ContentHash());  // Bitwise.

  const std::string scalar_encoded =
      EncodePersistPayload(CacheKind::kScalar, nullptr, -1.25, 3.0);
  ASSERT_TRUE(DecodePersistPayload(scalar_encoded, &kind, &decoded, &scalar,
                                   &compute_cost));
  EXPECT_EQ(kind, CacheKind::kScalar);
  EXPECT_EQ(scalar, -1.25);

  // Truncated or tampered payloads are rejected, never mis-shaped.
  EXPECT_FALSE(DecodePersistPayload(encoded.substr(0, encoded.size() - 3),
                                    &kind, &decoded, &scalar, &compute_cost));
  EXPECT_FALSE(
      DecodePersistPayload("", &kind, &decoded, &scalar, &compute_cost));
}

// ---------------------------------------------------------------------------
// LineageCache integration: harvest, disk probe, promotion.

SystemConfig CacheConfig(const std::string& persist_dir) {
  SystemConfig config;
  config.mem_scale = 1.0;
  config.num_executors = 2;
  config.cores_per_executor = 4;
  config.executor_memory = 8ull << 20;
  config.driver_lineage_cache = 1 << 20;
  config.gpu_memory = 1 << 20;
  config.persist_dir = persist_dir;
  config.persist_budget_bytes = 1 << 20;
  return config;
}

/// Builds the cache stack the way cache_test does and runs `body` on it.
class CacheHarness {
 public:
  explicit CacheHarness(const SystemConfig& config)
      : config_(config),
        spark_(config_, &cost_model_),
        gpu_(config_.gpu_memory, &cost_model_),
        gpu_cache_(&gpu_, /*recycling_enabled=*/true),
        cache_(config_, &cost_model_, &spark_, &gpu_cache_) {}

  LineageCache& cache() { return cache_; }

 private:
  SystemConfig config_;
  sim::CostModel cost_model_;
  spark::SparkContext spark_;
  gpu::GpuContext gpu_;
  GpuCacheManager gpu_cache_;
  LineageCache cache_;
};

LineageItemPtr StableKey(const std::string& id) {
  return LineageItem::Create(
      "op", id, {LineageItem::Leaf("extern", "stable:" + id)});
}

TEST(PersistCacheTest, HostToDiskToHostPromotionIsBitwise) {
  TempDir dir("persist-promote");
  const SystemConfig config = CacheConfig(dir.path());
  MatrixPtr value = kernels::RandGaussian(24, 24, /*seed=*/TestSeed(5));
  const uint64_t hash = value->ContentHash();
  auto* promotions =
      obs::MetricsRegistry::Global().GetCounter("persist.promotions");
  const int64_t promotions_before = promotions->value();
  {
    CacheHarness harness(config);
    double now = 0.0;
    ASSERT_NE(harness.cache().PutHost(StableKey("m"), value, 50.0,
                                      /*delay=*/1, &now),
              nullptr);
    ASSERT_NE(harness.cache().PutScalar(StableKey("s"), 2.75, 10.0,
                                        /*delay=*/1, &now),
              nullptr);
    EXPECT_EQ(harness.cache().HarvestToDiskNow(), 2);
  }  // Session dies; only the segment files remain.

  CacheHarness restarted(config);
  double now = 0.0;
  CacheEntryPtr entry = restarted.cache().Reuse(StableKey("m"), &now);
  ASSERT_NE(entry, nullptr);  // Host miss -> disk probe -> promotion.
  ASSERT_NE(entry->host_value, nullptr);
  EXPECT_EQ(entry->host_value->ContentHash(), hash);  // Bitwise identical.
  CacheEntryPtr scalar_entry = restarted.cache().Reuse(StableKey("s"), &now);
  ASSERT_NE(scalar_entry, nullptr);
  EXPECT_EQ(scalar_entry->scalar_value, 2.75);
  EXPECT_EQ(promotions->value(), promotions_before + 2);

  // Promoted entries live in the host tier now: the next Reuse is a plain
  // host hit, bitwise the same value.
  CacheEntryPtr again = restarted.cache().Reuse(StableKey("m"), &now);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->host_value->ContentHash(), hash);
  EXPECT_EQ(restarted.cache().CheckInvariants(), "");
}

TEST(PersistCacheTest, SessionLocalKeysNeverReachDisk) {
  TempDir dir("persist-session-local");
  const SystemConfig config = CacheConfig(dir.path());
  CacheHarness harness(config);
  double now = 0.0;
  // "name@counter" extern identities are session-unique: harvesting them
  // would poison another session's probe.
  auto local = LineageItem::Create(
      "op", "l", {LineageItem::Leaf("extern", "X@17")});
  ASSERT_NE(harness.cache().PutHost(local,
                                    kernels::Rand(4, 4, 0, 1, 1.0, 1), 50.0,
                                    /*delay=*/1, &now),
            nullptr);
  EXPECT_EQ(harness.cache().HarvestToDiskNow(), 0);
  EXPECT_EQ(harness.cache().persist_tier()->LiveRecords(), 0u);
}

// ---------------------------------------------------------------------------
// Pool-size determinism: the serve lattice, warm-restarted from disk.

TEST(PersistServeTest, WarmRestartIsBitwiseAcrossPoolSizes) {
  // For each pool size: run ridge cold with a persistent store, shut down,
  // restart over the same directory, run again. The warm run must rehydrate
  // (warmed entries hit) and produce the bitwise-identical result; and the
  // cold results themselves must agree across pool sizes 1/4/8.
  TempDir dir("persist-lattice");
  std::vector<double> cold_values;
  std::vector<double> warm_values;
  for (const int cp_threads : {1, 4, 8}) {
    TempDir tier_dir("persist-lattice-" + std::to_string(cp_threads));
    ServeConfig config;
    config.workers = 1;
    config.session.cp_threads = cp_threads;
    config.store_persist_dir = tier_dir.path();
    config.store_persist_budget = 8ull << 20;
    double cold = 0.0;
    {
      SessionManager manager(config);
      auto ticket = manager.Submit(
          MakeWorkloadRequest("alice", "ridge", 256, 16, /*seed=*/11));
      ticket->Wait();
      ASSERT_EQ(ticket->result().outcome, RequestOutcome::kCompleted);
      ASSERT_TRUE(ticket->result().has_result);
      cold = ticket->result().result_value;
      EXPECT_TRUE(manager.Shutdown());
    }  // Process "crash": only the segment directory survives.

    SessionManager restarted(config);
    // Rehydration happens before any request.
    EXPECT_GT(restarted.mutable_store()->PartitionEntries("alice"), 0u);
    auto ticket = restarted.Submit(
        MakeWorkloadRequest("alice", "ridge", 256, 16, /*seed=*/11));
    ticket->Wait();
    ASSERT_EQ(ticket->result().outcome, RequestOutcome::kCompleted);
    EXPECT_GT(ticket->result().warmed_entries, 0);
    EXPECT_GT(ticket->result().cross_session_hits, 0);
    EXPECT_EQ(ticket->result().result_value, cold);
    EXPECT_EQ(restarted.mutable_store()->CheckInvariants(), "");
    EXPECT_TRUE(restarted.Shutdown());
    cold_values.push_back(cold);
    warm_values.push_back(ticket->result().result_value);
  }
  EXPECT_EQ(cold_values[0], cold_values[1]);
  EXPECT_EQ(cold_values[0], cold_values[2]);
  EXPECT_EQ(warm_values[0], warm_values[1]);
  EXPECT_EQ(warm_values[0], warm_values[2]);
}

TEST(PersistServeTest, RehydrationCountsAndTombstonesSurviveRestart) {
  TempDir dir("persist-rehydrate");
  PersistConfig persist;
  persist.dir = dir.path();
  persist.budget_bytes = 1 << 20;
  auto* rehydrated =
      obs::MetricsRegistry::Global().GetCounter("serve.store.rehydrated");
  const int64_t before = rehydrated->value();
  {
    SharedLineageStore store(/*tenant_quota_bytes=*/1 << 20, persist);
    // Nothing to rehydrate on a fresh directory.
    EXPECT_EQ(rehydrated->value(), before);
    auto entry = std::make_shared<CacheEntry>();
    entry->key = LineageItem::Leaf("extern", "stable:r");
    entry->kind = CacheKind::kHostMatrix;
    entry->status.store(CacheStatus::kCached);
    entry->host_value = kernels::RandGaussian(8, 8, /*seed=*/7);
    entry->compute_cost = 5.0;
    entry->size_bytes = 8 * 8 * sizeof(double);
    ASSERT_TRUE(store.Put("alice", entry));
    store.DropPartition("alice");  // Tombstones the entry on disk too.
    ASSERT_TRUE(store.Put("bob", entry));
  }
  SharedLineageStore restarted(/*tenant_quota_bytes=*/1 << 20, persist);
  EXPECT_EQ(rehydrated->value(), before + 1);  // Only bob's entry came back.
  EXPECT_EQ(restarted.PartitionEntries("alice"), 0u);
  EXPECT_EQ(restarted.PartitionEntries("bob"), 1u);
  EXPECT_EQ(restarted.CheckInvariants(), "");
}

// ---------------------------------------------------------------------------
// Kill-replay fuzz smoke: the recovery oracle holds under random damage.

TEST(PersistFuzzSmokeTest, RandomKillsAlwaysRecoverToTheOracle) {
  TempDir dir("persist-fuzz-smoke");
  fuzz::PersistKillOptions options;
  options.kills = 40;
  options.seed = TestSeed(20260808);
  options.work_dir = dir.path();
  options.shrink = false;  // Smoke: first failure is enough detail.
  std::vector<std::string> failures;
  options.log = [&failures](const std::string& message) {
    failures.push_back(message);
  };
  const fuzz::PersistKillResult result =
      fuzz::RunPersistKillCampaign(options);
  EXPECT_EQ(result.cases, 40);
  EXPECT_EQ(result.failures, 0)
      << (failures.empty() ? "" : failures.front());
}

}  // namespace
}  // namespace memphis
