// Tier-1 smoke coverage of the metamorphic fuzzing subsystem: ~50 generated
// programs swept over the SmokeLattice must agree with the reference oracle
// on every configuration (each RunUnderPoint also checks cache invariants
// and lineage serde round-trips), the generator must be deterministic, and
// the reference interpreter must be correct on a hand-checked script.

#include <gtest/gtest.h>

#include <string>

#include "common/status.h"
#include "compiler/parser.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/lattice.h"
#include "fuzz/oracle.h"
#include "testing_util.h"

namespace memphis::fuzz {
namespace {

TEST(FuzzGenerator, SameSeedSameScript) {
  for (uint64_t seed : {1u, 7u, 42u, 1165u}) {
    GeneratedProgram a = GenerateProgram(seed);
    GeneratedProgram b = GenerateProgram(seed);
    EXPECT_EQ(a.Script(), b.Script()) << "seed=" << seed;
    EXPECT_EQ(a.inputs.size(), b.inputs.size());
  }
}

TEST(FuzzGenerator, DifferentSeedsDiffer) {
  // Not a hard guarantee in general, but these seeds are pinned.
  EXPECT_NE(GenerateProgram(1).Script(), GenerateProgram(2).Script());
}

TEST(FuzzGenerator, ScriptParsesAndRespectsBounds) {
  GeneratorOptions options;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    GeneratedProgram program = GenerateProgram(seed, options);
    EXPECT_NO_THROW(compiler::ParseProgram(program.Script()))
        << "seed=" << seed;
    EXPECT_GE(program.inputs.size(), 1u);
    EXPECT_LE(program.inputs.size(),
              static_cast<size_t>(options.max_inputs));
    for (const InputSpec& input : program.inputs) {
      EXPECT_LE(input.rows * input.cols, options.max_cells);
    }
  }
}

TEST(FuzzOracle, EvaluatesHandCheckedScript) {
  const std::string script =
      "v1 = X + 1.0;\n"
      "v2 = tsmm(v1);\n"
      "out = sum(v2);\n";
  compiler::Program program = compiler::ParseProgram(script);
  OracleEnv env;
  env["X"] = MatrixBlock::Create(2, 2, {1.0, 2.0, 3.0, 4.0});
  OracleRun(program, &env);
  // v1 = [[2,3],[4,5]]; tsmm = t(v1) %*% v1 = [[20,26],[26,34]]; sum = 106.
  ASSERT_TRUE(env.count("out"));
  EXPECT_TRUE(
      memphis::testing::ScalarsClose(env.at("out")->AsScalar(), 106.0));
}

TEST(FuzzOracle, UnboundReadThrows) {
  compiler::Program program = compiler::ParseProgram("y = missing + 1.0;\n");
  OracleEnv env;
  EXPECT_THROW(OracleRun(program, &env), MemphisError);
}

TEST(FuzzLattice, PointJsonRoundTrip) {
  for (const LatticePoint& point : DefaultLattice()) {
    const std::string dumped = PointToJson(point).Dump();
    LatticePoint restored = PointFromJson(Json::Parse(dumped));
    EXPECT_EQ(point.name, restored.name);
    EXPECT_EQ(point.repeats, restored.repeats);
    // Byte-stable serde: dumping the restored point reproduces the bytes.
    EXPECT_EQ(dumped, PointToJson(restored).Dump()) << point.name;
  }
}

// The heart of the smoke test: 50 pinned seeds, each swept over the 4-point
// SmokeLattice (base / memphis-reuse / tiny-cache / spark-forced). kAgree
// means numeric agreement with the oracle AND clean cache invariants AND
// lineage serde fixpoints on every point.
class FuzzSmoke : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSmoke, GeneratedProgramsAgreeAcrossSmokeLattice) {
  const uint64_t base = memphis::testing::TestSeed(1);
  const uint64_t seed = base + static_cast<uint64_t>(GetParam());
  GeneratedProgram program = GenerateProgram(seed);
  DivergenceInfo info;
  const PointVerdict verdict =
      ClassifyProgram(program, SmokeLattice(), Tolerance{}, &info);
  EXPECT_EQ(verdict, PointVerdict::kAgree)
      << "seed=" << seed << " point=" << info.point_name
      << " variable=" << info.variable << "\n"
      << info.detail << "\nscript:\n"
      << program.Script();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSmoke, ::testing::Range(0, 50));

}  // namespace
}  // namespace memphis::fuzz
