// Differential testing: randomly generated operator DAGs are executed
// through the full pipeline (compiler rewrites, placement, transfers,
// reuse) under several modes and compared against a direct oracle that
// evaluates the same DAG with the reference kernels. Any divergence is a
// compiler/runtime bug by construction.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "compiler/op_registry.h"
#include "core/system.h"
#include "matrix/kernels.h"
#include "testing_util.h"

namespace memphis {
namespace {

using compiler::HopDag;
using compiler::HopPtr;

struct GeneratedDag {
  std::shared_ptr<compiler::BasicBlock> block;
  std::vector<HopPtr> nodes;  // All op nodes, creation order.
};

/// Grows a random DAG of shape-compatible operators over one input matrix.
GeneratedDag GenerateDag(Rng* rng, size_t rows, size_t cols) {
  GeneratedDag generated;
  generated.block = compiler::MakeBasicBlock();
  HopDag& dag = generated.block->dag();
  HopPtr x = dag.Read("X");

  // Pools by shape class so sampled inputs always compose.
  std::vector<HopPtr> full{x};      // rows x cols.
  std::vector<HopPtr> gram;         // cols x cols.

  auto pick = [&](std::vector<HopPtr>& pool) {
    return pool[rng->NextInt(pool.size())];
  };

  const int ops = 6 + static_cast<int>(rng->NextInt(10));
  for (int i = 0; i < ops; ++i) {
    switch (rng->NextInt(8)) {
      case 0:
        full.push_back(dag.Op("relu", {pick(full)}));
        break;
      case 1:
        full.push_back(dag.Op("+", {pick(full), dag.Literal(
                                        rng->NextDouble(-2, 2))}));
        break;
      case 2:
        full.push_back(dag.Op("*", {pick(full), pick(full)}));
        break;
      case 3:
        gram.push_back(dag.Op("tsmm", {pick(full)}));
        break;
      case 4:
        full.push_back(dag.Op("exp", {dag.Op("*", {pick(full),
                                                   dag.Literal(0.01)})}));
        break;
      case 5:
        if (!gram.empty()) {
          full.push_back(dag.Op("matmult", {pick(full), pick(gram)}));
        } else {
          full.push_back(dag.Op("abs", {pick(full)}));
        }
        break;
      case 6:
        full.push_back(dag.Op("-", {pick(full), pick(full)}));
        break;
      default:
        full.push_back(dag.Op(">", {pick(full), dag.Literal(0.0)}));
        break;
    }
    generated.nodes.push_back(full.empty() ? gram.back() : full.back());
  }
  // Aggregate to a small output plus one full-size output.
  dag.Write("scalar_out", dag.Op("sum", {full.back()}));
  dag.Write("matrix_out", full.back());
  (void)rows;
  (void)cols;
  return generated;
}

/// Direct oracle: evaluates the hop DAG with the reference kernels, no
/// compiler involved.
MatrixPtr Oracle(const HopPtr& hop, const MatrixPtr& x,
                 std::unordered_map<int, MatrixPtr>* memo) {
  auto it = memo->find(hop->id());
  if (it != memo->end()) return it->second;
  MatrixPtr value;
  if (hop->opcode() == "read") {
    value = x;
  } else if (hop->opcode() == "literal") {
    value = MatrixBlock::Create(1, 1, hop->args()[0]);
  } else {
    const compiler::OpSpec* spec = compiler::FindOp(hop->opcode());
    std::vector<MatrixPtr> inputs;
    for (const auto& input : hop->inputs()) {
      inputs.push_back(Oracle(input, x, memo));
    }
    value = spec->exec(inputs, hop->args());
  }
  (*memo)[hop->id()] = value;
  return value;
}

class DifferentialDag : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialDag, CompiledExecutionMatchesOracle) {
  const uint64_t seed = testing::TestSeed(GetParam());
  Rng rng(seed);
  const size_t rows = 16 + rng.NextInt(48);
  const size_t cols = 2 + rng.NextInt(6);
  auto x = kernels::RandGaussian(rows, cols, seed * 7 + 1);
  GeneratedDag generated = GenerateDag(&rng, rows, cols);

  std::unordered_map<int, MatrixPtr> memo;
  MatrixPtr expected_matrix =
      Oracle(generated.block->dag().outputs()[1], x, &memo);
  const double expected_scalar = kernels::Sum(*expected_matrix);

  for (ReuseMode mode :
       {ReuseMode::kNone, ReuseMode::kLima, ReuseMode::kMemphis}) {
    SystemConfig config;
    config.reuse_mode = mode;
    config.gpu_offload_min_flops = 1e4;  // Exercise the GPU path too.
    MemphisSystem system(config);
    system.ctx().BindMatrixWithId("X", x, "diff:X");
    system.Run(*generated.block);
    system.Run(*generated.block);  // Second run exercises reuse.
    EXPECT_TRUE(testing::MatricesClose(*system.ctx().FetchMatrix("matrix_out"),
                                       *expected_matrix))
        << "seed=" << seed << " mode=" << ToString(mode);
    EXPECT_TRUE(testing::ScalarsClose(system.ctx().FetchScalar("scalar_out"),
                                      expected_scalar,
                                      Tolerance::Rel(1e-6, /*a=*/1e-6)))
        << "seed=" << seed << " mode=" << ToString(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialDag, ::testing::Range(1, 21));

class DifferentialSpark : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialSpark, DistributedExecutionMatchesOracle) {
  // Same generator, but inputs large enough (and operation memory small
  // enough) that chains run on the simulated Spark backend.
  const uint64_t seed = testing::TestSeed(GetParam());
  Rng rng(seed + 500);
  const size_t rows = 2000 + rng.NextInt(2000);
  const size_t cols = 4 + rng.NextInt(4);
  auto x = kernels::RandGaussian(rows, cols, seed * 13 + 2);
  GeneratedDag generated = GenerateDag(&rng, rows, cols);

  std::unordered_map<int, MatrixPtr> memo;
  MatrixPtr expected =
      Oracle(generated.block->dag().outputs()[1], x, &memo);

  SystemConfig config;
  config.mem_scale = 1.0;
  config.operation_memory = 32 << 10;  // Forces Spark placement.
  config.enable_gpu = false;
  config.reuse_mode = ReuseMode::kMemphis;
  MemphisSystem system(config);
  system.ctx().BindMatrixWithId("X", x, "diffsp:X");
  system.Run(*generated.block);
  EXPECT_GT(system.ctx().stats().sp_instructions, 0);
  EXPECT_TRUE(testing::MatricesClose(*system.ctx().FetchMatrix("matrix_out"),
                                     *expected, Tolerance::Rel(1e-8, 1e-8)))
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSpark, ::testing::Range(1, 11));

}  // namespace
}  // namespace memphis
