// Static plan verifier tests: every pass of the invariant catalog must
// reject a hand-broken plan with the right diagnostic, accept everything
// the compiler actually emits, and never perturb results (the fuzz
// campaign below runs with the full verifier forced on at every lattice
// point -- a verifier false positive classifies as a divergence).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/status.h"
#include "compiler/fusion.h"
#include "compiler/linearize.h"
#include "compiler/op_registry.h"
#include "compiler/parser.h"
#include "compiler/placement.h"
#include "compiler/program.h"
#include "compiler/verifier.h"
#include "fuzz/fuzzer.h"
#include "matrix/fused_kernel.h"

namespace memphis::compiler {
namespace {

class FakeResolver {
 public:
  FakeResolver& Add(const std::string& name, size_t rows, size_t cols,
                    Backend location = Backend::kCP) {
    vars_[name] = VarInfo{{rows, cols}, location};
    return *this;
  }
  ShapeResolver Fn() const {
    auto vars = vars_;
    return [vars](const std::string& name) -> VarInfo {
      auto it = vars.find(name);
      return it == vars.end() ? VarInfo{{1, 1}, Backend::kCP} : it->second;
    };
  }

 private:
  std::unordered_map<std::string, VarInfo> vars_;
};

SystemConfig LocalConfig() {
  SystemConfig config;
  config.mem_scale = 1.0;
  config.operation_memory = 1 << 20;
  config.gpu_offload_min_flops = 1e9;
  return config;
}

CompileOptions NoOpts() {
  CompileOptions options;
  options.async_operators = false;
  options.max_parallelize = false;
  options.checkpoint_placement = false;
  return options;
}

/// Compiles `X + X * 2` style two-statement script and returns the result.
CompileResult CompileScript(const std::string& script,
                            const SystemConfig& config) {
  Program program = ParseProgram(script);
  auto* basic = static_cast<BasicBlock*>(program.blocks.front().get());
  return CompileDag(basic->dag(), config,
                    FakeResolver().Add("X", 64, 32).Fn(), NoOpts());
}

bool HasDiagnostic(const VerifierReport& report, const std::string& pass,
                   const std::string& fragment) {
  for (const VerifierDiagnostic& diag : report.diagnostics) {
    if (pass == diag.pass &&
        diag.message.find(fragment) != std::string::npos) {
      return true;
    }
  }
  return false;
}

int FindSlot(const CompileResult& result, const std::string& opcode) {
  for (size_t i = 0; i < result.instructions.size(); ++i) {
    if (result.instructions[i].opcode == opcode) return static_cast<int>(i);
  }
  return -1;
}

TEST(VerifierTest, CleanCompileVerifiesInEveryMode) {
  const SystemConfig config = LocalConfig();
  CompileResult plan =
      CompileScript("a = X + X;\nb = rowSums(a * a);", config);
  const VerifierReport full = VerifyPlan(plan, config, VerifyMode::kFull);
  EXPECT_TRUE(full.ok()) << full.FormatAll();
  EXPECT_NE(full.summary_hash, 0u);
  const VerifierReport summary =
      VerifyPlan(plan, config, VerifyMode::kSummary);
  EXPECT_TRUE(summary.ok());
  // The structural fingerprint does not depend on the mode.
  EXPECT_EQ(full.summary_hash, summary.summary_hash);
  // kOff does nothing at all.
  EXPECT_EQ(VerifyPlan(plan, config, VerifyMode::kOff).summary_hash, 0u);
}

TEST(VerifierTest, ProvenanceCarriesSourceLines) {
  const SystemConfig config = LocalConfig();
  CompileResult plan =
      CompileScript("a = X + X;\nb = rowSums(a * a);", config);
  bool saw_line2 = false;
  for (const Instruction& inst : plan.instructions) {
    EXPECT_GE(inst.source_line, 0);
    EXPECT_GE(inst.hop_id, 0);
    saw_line2 = saw_line2 || inst.source_line == 2;
  }
  EXPECT_TRUE(saw_line2);  // The rowSums statement is on line 2.
}

TEST(VerifierTest, TamperedShapeRejectedInFullMode) {
  const SystemConfig config = LocalConfig();
  CompileResult plan = CompileScript("a = X + X;\nb = t(a);", config);
  const int slot = FindSlot(plan, "transpose");
  ASSERT_GE(slot, 0);
  plan.instructions[slot].out_shape = {7, 7};  // The shape lie.
  const VerifierReport full = VerifyPlan(plan, config, VerifyMode::kFull);
  EXPECT_TRUE(HasDiagnostic(full, "shape-dataflow", "re-derived"))
      << full.FormatAll();
  // The release-mode summary skips per-op re-derivation by design.
  EXPECT_TRUE(VerifyPlan(plan, config, VerifyMode::kSummary).ok());
  // Diagnostics carry plan-level provenance.
  const std::string formatted = full.FormatAll();
  EXPECT_NE(formatted.find("line 2"), std::string::npos) << formatted;
  EXPECT_NE(formatted.find("hop %"), std::string::npos) << formatted;
}

TEST(VerifierTest, UseBeforeDefRejected) {
  const SystemConfig config = LocalConfig();
  CompileResult plan = CompileScript("a = X + X;\nb = t(a);", config);
  const int slot = FindSlot(plan, "transpose");
  ASSERT_GE(slot, 0);
  // Point the transpose at its own slot: a forward (self) reference.
  plan.instructions[slot].input_slots[0] = slot;
  const VerifierReport report =
      VerifyPlan(plan, config, VerifyMode::kSummary);
  EXPECT_TRUE(HasDiagnostic(report, "def-use", "not defined before use"))
      << report.FormatAll();
}

TEST(VerifierTest, StaleLivenessRejected) {
  const SystemConfig config = LocalConfig();
  CompileResult plan = CompileScript("a = X + X;\nb = t(a);", config);
  ASSERT_FALSE(plan.last_use.empty());
  // Claim slot 0 dies earlier than it does: the executor would free a
  // matrix that is read again.
  plan.last_use[0] = -1;
  const VerifierReport report =
      VerifyPlan(plan, config, VerifyMode::kSummary);
  EXPECT_TRUE(HasDiagnostic(report, "def-use", "recomputed liveness"))
      << report.FormatAll();
}

TEST(VerifierTest, IllegalResidenceRejected) {
  const SystemConfig config = LocalConfig();
  CompileResult plan = CompileScript("a = X + X;\nb = t(a);", config);
  const int slot = FindSlot(plan, "transpose");
  ASSERT_GE(slot, 0);
  // Teleport the transpose to the GPU without inserting h2d/d2h.
  plan.instructions[slot].backend = Backend::kGpu;
  const VerifierReport report =
      VerifyPlan(plan, config, VerifyMode::kSummary);
  EXPECT_TRUE(HasDiagnostic(report, "placement", "no transfer between"))
      << report.FormatAll();
}

TEST(VerifierTest, OutputBindingDuplicatesRejected) {
  const SystemConfig config = LocalConfig();
  CompileResult plan = CompileScript("a = X + X;", config);
  const int slot = FindSlot(plan, "+");
  ASSERT_GE(slot, 0);
  plan.instructions[slot].extra_output_vars.push_back(
      plan.instructions[slot].output_var);
  const VerifierReport report =
      VerifyPlan(plan, config, VerifyMode::kSummary);
  EXPECT_TRUE(HasDiagnostic(report, "def-use", "duplicate output binding"))
      << report.FormatAll();
}

/// Hand-built broken fused plans: the closure pass must reject a group
/// whose recipe set is not closed or that references undeclared externals.
Instruction FusedInstruction(std::shared_ptr<const FusedPlan> fused) {
  Instruction inst;
  inst.opcode = "fused";
  inst.backend = Backend::kCP;
  inst.output_slot = 0;
  inst.out_shape = {4, 4};
  inst.fused = std::move(fused);
  return inst;
}

TEST(VerifierTest, OpenFusedGroupRejected) {
  auto plan = std::make_shared<FusedPlan>();
  plan->num_inputs = 1;
  plan->program.rows = 4;
  plan->program.cols = 4;
  plan->program.inputs = {kernels::TileInput::kFull};
  plan->program.ops.resize(2);
  // Recipe 0 feeds nothing; recipe 1 (the root) reads only the external.
  FusedOpRecipe dangling;
  dangling.opcode = "exp";
  dangling.inputs = {kernels::TileRef{true, 0}};
  dangling.out_shape = {4, 4};
  FusedOpRecipe root;
  root.opcode = "relu";
  root.inputs = {kernels::TileRef{true, 0}};
  root.out_shape = {4, 4};
  plan->recipes = {dangling, root};
  const VerifierReport report =
      VerifyFusedInstruction(FusedInstruction(plan));
  EXPECT_TRUE(HasDiagnostic(report, "fused-closure", "not closed"))
      << report.FormatAll();
}

TEST(VerifierTest, UndeclaredExternalRejected) {
  auto plan = std::make_shared<FusedPlan>();
  plan->num_inputs = 1;
  plan->program.rows = 4;
  plan->program.cols = 4;
  plan->program.inputs = {kernels::TileInput::kFull};
  plan->program.ops.resize(1);
  FusedOpRecipe root;
  root.opcode = "relu";
  root.inputs = {kernels::TileRef{true, 3}};  // Only external 0 exists.
  root.out_shape = {4, 4};
  plan->recipes = {root};
  const VerifierReport report =
      VerifyFusedInstruction(FusedInstruction(plan));
  EXPECT_TRUE(HasDiagnostic(report, "fused-closure", "undeclared external"))
      << report.FormatAll();
}

TEST(VerifierTest, RandomFusedMemberRejected) {
  auto plan = std::make_shared<FusedPlan>();
  plan->num_inputs = 1;
  plan->program.rows = 4;
  plan->program.cols = 4;
  plan->program.inputs = {kernels::TileInput::kFull};
  plan->program.ops.resize(1);
  FusedOpRecipe root;
  root.opcode = "dropout";  // Seeded-random: never legal inside a group.
  root.inputs = {kernels::TileRef{true, 0}};
  root.out_shape = {4, 4};
  plan->recipes = {root};
  const VerifierReport report =
      VerifyFusedInstruction(FusedInstruction(plan));
  EXPECT_TRUE(HasDiagnostic(report, "lineage-purity", "deterministic"))
      << report.FormatAll();
}

TEST(VerifierTest, CompiledFusedGroupsVerify) {
  SystemConfig config = LocalConfig();
  config.operator_fusion = true;
  CompileResult plan =
      CompileScript("y = relu(X + X * 2);\ns = sum(y * y);", config);
  int fused = 0;
  for (const Instruction& inst : plan.instructions) {
    if (inst.fused != nullptr) {
      ++fused;
      const VerifierReport report = VerifyFusedInstruction(inst);
      EXPECT_TRUE(report.ok()) << report.FormatAll();
    }
  }
  EXPECT_GT(fused, 0);  // The chain above must actually fuse.
}

TEST(VerifierTest, NonceStrippedRandRejected) {
  const SystemConfig config = LocalConfig();
  HopDag dag;
  auto r = dag.Op("rand", {}, {8, 8, 0, 1, 1, -1});  // Unseeded.
  dag.Write("s", dag.Op("sum", {r}));
  CompileResult plan =
      CompileDag(dag, config, FakeResolver().Fn(), NoOpts());
  const int slot = FindSlot(plan, "rand");
  ASSERT_GE(slot, 0);
  ASSERT_TRUE(plan.instructions[slot].nondeterministic);
  // Strip the nonce: the lineage key of this rand (and everything fed by
  // it) becomes cacheable poison.
  plan.instructions[slot].nonce = 0;
  const VerifierReport report =
      VerifyPlan(plan, config, VerifyMode::kSummary);
  EXPECT_TRUE(HasDiagnostic(report, "lineage-purity", "cacheable poison"))
      << report.FormatAll();
}

TEST(VerifierTest, UnflaggedUnseededRandRejected) {
  const SystemConfig config = LocalConfig();
  HopDag dag;
  auto r = dag.Op("rand", {}, {8, 8, 0, 1, 1, -1});
  dag.Write("s", dag.Op("sum", {r}));
  CompileResult plan =
      CompileDag(dag, config, FakeResolver().Fn(), NoOpts());
  const int slot = FindSlot(plan, "rand");
  ASSERT_GE(slot, 0);
  plan.instructions[slot].nondeterministic = false;
  plan.instructions[slot].nonce = 0;
  const VerifierReport report =
      VerifyPlan(plan, config, VerifyMode::kSummary);
  EXPECT_TRUE(
      HasDiagnostic(report, "lineage-purity", "not flagged nondeterministic"))
      << report.FormatAll();
}

TEST(VerifierTest, SeededRandVerifiesAsDeterministic) {
  const SystemConfig config = LocalConfig();
  HopDag dag;
  auto r = dag.Op("rand", {}, {8, 8, 0, 1, 1, 42});  // Seeded: reusable.
  dag.Write("s", dag.Op("sum", {r}));
  CompileResult plan =
      CompileDag(dag, config, FakeResolver().Fn(), NoOpts());
  const int slot = FindSlot(plan, "rand");
  ASSERT_GE(slot, 0);
  EXPECT_FALSE(plan.instructions[slot].nondeterministic);
  EXPECT_TRUE(VerifyPlan(plan, config, VerifyMode::kFull).ok());
}

TEST(OpAuditTest, EveryRegisteredOpDeclaresDeterminism) {
  for (const std::string& name : RegisteredOps()) {
    const OpSpec* spec = FindOp(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_NE(spec->determinism, OpDeterminism::kUnspecified) << name;
    EXPECT_EQ(spec->determinism == OpDeterminism::kSeededRandom,
              spec->seeded)
        << name;
  }
}

TEST(OpAuditTest, AuditRejectsBrokenSpecs) {
  OpSpec undeclared;  // determinism left kUnspecified.
  EXPECT_THROW(AuditOpSpec("bogus", undeclared), MemphisError);

  OpSpec contradiction;
  contradiction.seeded = true;
  contradiction.determinism = OpDeterminism::kDeterministic;
  EXPECT_THROW(AuditOpSpec("bogus", contradiction), MemphisError);

  OpSpec good;
  good.seeded = true;
  good.determinism = OpDeterminism::kSeededRandom;
  EXPECT_NO_THROW(AuditOpSpec("bogus", good));
}

// Generate-and-verify: a short fuzz campaign with the full verifier forced
// on at every lattice point (including repeats, where reuse and fusion
// engage). Any verifier rejection of a program the Executor accepts
// classifies as a divergence and fails this test.
TEST(VerifierCampaignTest, GeneratedProgramsVerifyClean) {
  fuzz::CampaignOptions options;
  options.runs = 10;
  options.seed = 20260808;
  options.shrink = false;
  options.corpus_dir = ::testing::TempDir() + "verifier-campaign-corpus";
  options.lattice = fuzz::SmokeLattice();
  for (fuzz::LatticePoint& point : options.lattice) {
    point.config.verify_plans = VerifyMode::kFull;
  }
  const fuzz::CampaignResult result = fuzz::RunCampaign(options);
  EXPECT_EQ(result.divergences, 0);
  EXPECT_EQ(result.runs, 10);
}

}  // namespace
}  // namespace memphis::compiler
