#include <gtest/gtest.h>

#include <cmath>

#include "common/status.h"
#include "matrix/kernels.h"
#include "matrix/matrix_block.h"
#include "testing_util.h"

namespace memphis {
namespace {

using kernels::BinaryOp;
using kernels::UnaryOp;

MatrixPtr M(size_t rows, size_t cols, std::vector<double> values) {
  return MatrixBlock::Create(rows, cols, std::move(values));
}

TEST(MatrixBlockTest, ShapeAndAccess) {
  auto m = M(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m->rows(), 2u);
  EXPECT_EQ(m->cols(), 3u);
  EXPECT_EQ(m->At(0, 2), 3);
  EXPECT_EQ(m->At(1, 0), 4);
  EXPECT_EQ(m->SizeInBytes(), 48u);
}

TEST(MatrixBlockTest, AsScalarRequires1x1) {
  EXPECT_EQ(M(1, 1, {3.5})->AsScalar(), 3.5);
  EXPECT_THROW(M(2, 1, {1, 2})->AsScalar(), MemphisError);
}

TEST(MatrixBlockTest, ApproxEquals) {
  auto a = M(1, 2, {1.0, 2.0});
  EXPECT_TRUE(a->ApproxEquals(*M(1, 2, {1.0 + 1e-12, 2.0})));
  EXPECT_FALSE(a->ApproxEquals(*M(1, 2, {1.1, 2.0})));
  EXPECT_FALSE(a->ApproxEquals(*M(2, 1, {1.0, 2.0})));
}

TEST(MatrixBlockTest, ContentHashDistinguishes) {
  EXPECT_EQ(M(1, 2, {1, 2})->ContentHash(), M(1, 2, {1, 2})->ContentHash());
  EXPECT_NE(M(1, 2, {1, 2})->ContentHash(), M(1, 2, {2, 1})->ContentHash());
  EXPECT_NE(M(1, 2, {1, 2})->ContentHash(), M(2, 1, {1, 2})->ContentHash());
}

TEST(KernelsTest, MatMultSmall) {
  auto a = M(2, 3, {1, 2, 3, 4, 5, 6});
  auto b = M(3, 2, {7, 8, 9, 10, 11, 12});
  auto c = kernels::MatMult(*a, *b);
  EXPECT_TRUE(c->ApproxEquals(*M(2, 2, {58, 64, 139, 154})));
}

TEST(KernelsTest, MatMultShapeMismatchThrows) {
  EXPECT_THROW(kernels::MatMult(*M(2, 3, {1, 2, 3, 4, 5, 6}),
                                *M(2, 2, {1, 2, 3, 4})),
               MemphisError);
}

TEST(KernelsTest, TransposeRoundTrip) {
  auto a = kernels::Rand(7, 5, -1, 1, 1.0, 3);
  auto t2 = kernels::Transpose(*kernels::Transpose(*a));
  EXPECT_TRUE(a->ApproxEquals(*t2));
}

TEST(KernelsTest, BinaryElementwise) {
  auto a = M(2, 2, {1, 2, 3, 4});
  auto b = M(2, 2, {10, 20, 30, 40});
  EXPECT_TRUE(kernels::Binary(BinaryOp::kAdd, *a, *b)
                  ->ApproxEquals(*M(2, 2, {11, 22, 33, 44})));
  EXPECT_TRUE(kernels::Binary(BinaryOp::kMul, *a, *b)
                  ->ApproxEquals(*M(2, 2, {10, 40, 90, 160})));
}

TEST(KernelsTest, BinaryBroadcastColumnVector) {
  auto a = M(2, 3, {1, 2, 3, 4, 5, 6});
  auto v = M(2, 1, {10, 100});
  auto out = kernels::Binary(BinaryOp::kAdd, *a, *v);
  EXPECT_TRUE(out->ApproxEquals(*M(2, 3, {11, 12, 13, 104, 105, 106})));
}

TEST(KernelsTest, BinaryBroadcastRowVector) {
  auto a = M(2, 3, {1, 2, 3, 4, 5, 6});
  auto v = M(1, 3, {10, 20, 30});
  auto out = kernels::Binary(BinaryOp::kMul, *a, *v);
  EXPECT_TRUE(out->ApproxEquals(*M(2, 3, {10, 40, 90, 40, 100, 180})));
}

TEST(KernelsTest, BinaryBroadcastScalar) {
  auto a = M(2, 2, {1, 2, 3, 4});
  auto s = M(1, 1, {2});
  EXPECT_TRUE(kernels::Binary(BinaryOp::kPow, *a, *s)
                  ->ApproxEquals(*M(2, 2, {1, 4, 9, 16})));
}

TEST(KernelsTest, BinaryIncompatibleShapesThrow) {
  EXPECT_THROW(
      kernels::Binary(BinaryOp::kAdd, *M(2, 2, {1, 2, 3, 4}),
                      *M(3, 1, {1, 2, 3})),
      MemphisError);
}

TEST(KernelsTest, ComparisonsProduceIndicators) {
  auto a = M(1, 4, {-1, 0, 1, 2});
  auto out = kernels::ScalarOp(BinaryOp::kGreater, *a, 0.0);
  EXPECT_TRUE(out->ApproxEquals(*M(1, 4, {0, 0, 1, 1})));
}

TEST(KernelsTest, ScalarLeftDivision) {
  auto a = M(1, 2, {2, 4});
  auto out = kernels::ScalarOp(BinaryOp::kDiv, *a, 8.0, /*scalar_left=*/true);
  EXPECT_TRUE(out->ApproxEquals(*M(1, 2, {4, 2})));
}

TEST(KernelsTest, UnaryOps) {
  auto a = M(1, 3, {1, 4, 9});
  EXPECT_TRUE(kernels::Unary(UnaryOp::kSqrt, *a)
                  ->ApproxEquals(*M(1, 3, {1, 2, 3})));
  auto b = M(1, 3, {-2, 0, 5});
  EXPECT_TRUE(kernels::Unary(UnaryOp::kSign, *b)
                  ->ApproxEquals(*M(1, 3, {-1, 0, 1})));
  EXPECT_TRUE(kernels::Unary(UnaryOp::kAbs, *b)
                  ->ApproxEquals(*M(1, 3, {2, 0, 5})));
}

TEST(KernelsTest, SigmoidBounds) {
  auto a = M(1, 3, {-100, 0, 100});
  auto out = kernels::Unary(UnaryOp::kSigmoid, *a);
  EXPECT_TRUE(testing::ScalarsClose(out->At(0, 0), 0.0));
  EXPECT_TRUE(testing::ScalarsClose(out->At(0, 1), 0.5));
  EXPECT_TRUE(testing::ScalarsClose(out->At(0, 2), 1.0));
}

TEST(KernelsTest, Aggregations) {
  auto a = M(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(kernels::Sum(*a), 21);
  EXPECT_EQ(kernels::Mean(*a), 3.5);
  EXPECT_EQ(kernels::Min(*a), 1);
  EXPECT_EQ(kernels::Max(*a), 6);
}

TEST(KernelsTest, RowColAggregates) {
  auto a = M(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(kernels::ColSums(*a)->ApproxEquals(*M(1, 3, {5, 7, 9})));
  EXPECT_TRUE(kernels::RowSums(*a)->ApproxEquals(*M(2, 1, {6, 15})));
  EXPECT_TRUE(kernels::ColMeans(*a)->ApproxEquals(*M(1, 3, {2.5, 3.5, 4.5})));
  EXPECT_TRUE(kernels::RowMeans(*a)->ApproxEquals(*M(2, 1, {2, 5})));
  EXPECT_TRUE(kernels::ColMins(*a)->ApproxEquals(*M(1, 3, {1, 2, 3})));
  EXPECT_TRUE(kernels::ColMaxs(*a)->ApproxEquals(*M(1, 3, {4, 5, 6})));
  EXPECT_TRUE(kernels::RowMaxs(*a)->ApproxEquals(*M(2, 1, {3, 6})));
}

TEST(KernelsTest, ColVarsMatchesDefinition) {
  auto a = M(3, 1, {1, 2, 3});
  EXPECT_NEAR(kernels::ColVars(*a)->At(0, 0), 1.0, 1e-12);
}

TEST(KernelsTest, RowIndexMaxIsOneBased) {
  auto a = M(2, 3, {1, 9, 3, 7, 2, 5});
  auto out = kernels::RowIndexMax(*a);
  EXPECT_EQ(out->At(0, 0), 2);
  EXPECT_EQ(out->At(1, 0), 1);
}

TEST(KernelsTest, SliceAndBounds) {
  auto a = M(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto s = kernels::Slice(*a, 1, 3, 0, 2);
  EXPECT_TRUE(s->ApproxEquals(*M(2, 2, {4, 5, 7, 8})));
  EXPECT_THROW(kernels::Slice(*a, 0, 4, 0, 1), MemphisError);
}

TEST(KernelsTest, RBindCBind) {
  auto a = M(1, 2, {1, 2});
  auto b = M(1, 2, {3, 4});
  EXPECT_TRUE(kernels::RBind(*a, *b)->ApproxEquals(*M(2, 2, {1, 2, 3, 4})));
  EXPECT_TRUE(kernels::CBind(*a, *b)->ApproxEquals(*M(1, 4, {1, 2, 3, 4})));
  EXPECT_THROW(kernels::RBind(*a, *M(1, 3, {1, 2, 3})), MemphisError);
}

TEST(KernelsTest, SolveRecoversSolution) {
  auto a = M(2, 2, {4, 1, 1, 3});
  auto x_true = M(2, 1, {1, -2});
  auto b = kernels::MatMult(*a, *x_true);
  auto x = kernels::Solve(*a, *b);
  EXPECT_TRUE(testing::MatricesClose(*x, *x_true));
}

TEST(KernelsTest, SolveSingularThrows) {
  auto a = M(2, 2, {1, 2, 2, 4});
  EXPECT_THROW(kernels::Solve(*a, *M(2, 1, {1, 1})), MemphisError);
}

TEST(KernelsTest, SolveWithPivoting) {
  // Leading zero forces a row swap.
  auto a = M(2, 2, {0, 1, 1, 0});
  auto x = kernels::Solve(*a, *M(2, 1, {5, 7}));
  EXPECT_TRUE(x->ApproxEquals(*M(2, 1, {7, 5})));
}

TEST(KernelsTest, RandDeterministicAndInRange) {
  auto a = kernels::Rand(10, 10, 2.0, 5.0, 1.0, 99);
  auto b = kernels::Rand(10, 10, 2.0, 5.0, 1.0, 99);
  EXPECT_TRUE(a->ApproxEquals(*b));
  EXPECT_GE(kernels::Min(*a), 2.0);
  EXPECT_LE(kernels::Max(*a), 5.0);
}

TEST(KernelsTest, RandSparsityControlsDensity) {
  auto a = kernels::Rand(100, 100, 1.0, 1.0, 0.1, 5);
  size_t nnz = 0;
  for (size_t i = 0; i < a->size(); ++i) nnz += a->data()[i] != 0.0;
  EXPECT_GT(nnz, 700u);
  EXPECT_LT(nnz, 1300u);
}

TEST(KernelsTest, SeqInclusive) {
  EXPECT_TRUE(kernels::Seq(1, 5, 2)->ApproxEquals(*M(3, 1, {1, 3, 5})));
  EXPECT_TRUE(kernels::Seq(5, 1, -2)->ApproxEquals(*M(3, 1, {5, 3, 1})));
}

TEST(KernelsTest, IdentityAndDiag) {
  auto eye = kernels::Identity(3);
  EXPECT_EQ(kernels::Sum(*eye), 3);
  auto d = kernels::Diag(*M(2, 1, {3, 4}));
  EXPECT_TRUE(d->ApproxEquals(*M(2, 2, {3, 0, 0, 4})));
  auto back = kernels::Diag(*d);
  EXPECT_TRUE(back->ApproxEquals(*M(2, 1, {3, 4})));
}

TEST(KernelsTest, MatMultFlops) {
  EXPECT_EQ(kernels::MatMultFlops(2, 3, 4), 48.0);
}

}  // namespace
}  // namespace memphis
