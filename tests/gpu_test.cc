#include <gtest/gtest.h>

#include "common/status.h"
#include "gpu/gpu_arena.h"
#include "gpu/gpu_context.h"
#include "matrix/kernels.h"

namespace memphis::gpu {
namespace {

TEST(GpuArenaTest, AllocWithinCapacity) {
  GpuArena arena(1000);
  auto a = arena.Alloc(400);
  auto b = arena.Alloc(600);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(arena.allocated_bytes(), 1000u);
  EXPECT_FALSE(arena.Alloc(1).has_value());
}

TEST(GpuArenaTest, FreeCoalescesNeighbors) {
  GpuArena arena(1000);
  auto a = arena.Alloc(300);
  auto b = arena.Alloc(300);
  auto c = arena.Alloc(400);
  (void)c;
  arena.Free(*a);
  arena.Free(*b);
  // Coalesced into one 600-byte block.
  EXPECT_EQ(arena.LargestFreeBlock(), 600u);
  EXPECT_TRUE(arena.Alloc(600).has_value());
}

TEST(GpuArenaTest, FragmentationBlocksLargeAlloc) {
  GpuArena arena(1000);
  auto a = arena.Alloc(250);
  auto b = arena.Alloc(250);
  auto c = arena.Alloc(250);
  auto d = arena.Alloc(250);
  (void)b;
  (void)d;
  arena.Free(*a);
  arena.Free(*c);
  // 500 bytes free, but only in two 250-byte holes.
  EXPECT_EQ(arena.free_bytes(), 500u);
  EXPECT_EQ(arena.LargestFreeBlock(), 250u);
  EXPECT_FALSE(arena.Alloc(400).has_value());
  EXPECT_GT(arena.Fragmentation(), 0.4);
}

TEST(GpuArenaTest, DefragmentCompacts) {
  GpuArena arena(1000);
  auto a = arena.Alloc(250);
  auto b = arena.Alloc(250);
  auto c = arena.Alloc(250);
  arena.Free(*a);
  arena.Free(*c);
  const size_t moved = arena.Defragment();
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(arena.LargestFreeBlock(), 750u);
  EXPECT_EQ(arena.Fragmentation(), 0.0);
  EXPECT_TRUE(arena.Alloc(700).has_value());
  EXPECT_EQ(arena.BlockSize(*b), 250u);
}

TEST(GpuArenaTest, DoubleFreeThrows) {
  GpuArena arena(100);
  auto a = arena.Alloc(50);
  arena.Free(*a);
  EXPECT_THROW(arena.Free(*a), MemphisError);
}

TEST(GpuArenaTest, FirstFitReusesEarliestHole) {
  GpuArena arena(1000);
  auto a = arena.Alloc(100);
  auto b = arena.Alloc(100);
  (void)b;
  arena.Free(*a);
  auto c = arena.Alloc(50);  // Splits the first hole.
  EXPECT_EQ(arena.BlockOffset(*c), 0u);
}

TEST(GpuStreamTest, AsyncLaunchAndSynchronize) {
  GpuStream stream;
  const double done = stream.Launch(0.0, 1.0);
  EXPECT_EQ(done, 1.0);
  // Host at t=0.1 synchronizes: jumps to device completion.
  EXPECT_EQ(stream.Synchronize(0.1), 1.0);
  // Host already past completion: no wait.
  EXPECT_EQ(stream.Synchronize(2.0), 2.0);
}

TEST(GpuStreamTest, KernelsSequentialOnDevice) {
  GpuStream stream;
  stream.Launch(0.0, 1.0);
  const double second = stream.Launch(0.0, 1.0);
  EXPECT_EQ(second, 2.0);  // Serialized within the stream.
}

class GpuContextTest : public ::testing::Test {
 protected:
  GpuContextTest() : gpu_(1 << 20, &cost_model_) {}
  sim::CostModel cost_model_;
  GpuContext gpu_;
};

TEST_F(GpuContextTest, MallocChargesSynchronizingLatency) {
  double now = 0.0;
  auto buffer = gpu_.Malloc(1024, &now);
  ASSERT_TRUE(buffer.has_value());
  EXPECT_NEAR(now, cost_model_.gpu_malloc_latency, 1e-12);
  EXPECT_EQ(gpu_.stats().mallocs, 1);
}

TEST_F(GpuContextTest, MallocFailureReturnsNullopt) {
  double now = 0.0;
  EXPECT_FALSE(gpu_.Malloc(2 << 20, &now).has_value());
  EXPECT_EQ(now, 0.0);  // No charge for a failed allocation.
}

TEST_F(GpuContextTest, KernelAsyncForHost) {
  double now = 0.0;
  auto buffer = *gpu_.Malloc(800, &now);
  const double after_malloc = now;
  auto result = kernels::Rand(10, 10, 0, 1, 1.0, 1);
  gpu_.LaunchKernel(buffer, result, /*flops=*/3e8, /*bytes=*/800, &now);
  // Host advanced only by the launch overhead, not the 1ms kernel.
  EXPECT_NEAR(now, after_malloc + cost_model_.gpu_launch_overhead, 1e-12);
  EXPECT_GT(gpu_.stream().available_at(), now);
  EXPECT_EQ(buffer->data, result);
}

TEST_F(GpuContextTest, D2HWaitsForPendingKernels) {
  double now = 0.0;
  auto buffer = *gpu_.Malloc(800, &now);
  gpu_.LaunchKernel(buffer, kernels::Rand(10, 10, 0, 1, 1.0, 2), 3e9, 800,
                    &now);
  const double kernel_done = gpu_.stream().available_at();
  MatrixPtr value = gpu_.CopyD2H(buffer, &now);
  EXPECT_GE(now, kernel_done);  // Synchronization barrier.
  EXPECT_NE(value, nullptr);
}

TEST_F(GpuContextTest, FreeSynchronizesAndReleases) {
  double now = 0.0;
  auto buffer = *gpu_.Malloc(1024, &now);
  gpu_.LaunchKernel(buffer, kernels::Rand(4, 4, 0, 1, 1.0, 3), 3e9, 128, &now);
  gpu_.Free(buffer, &now);
  EXPECT_GE(now, gpu_.stream().available_at());
  EXPECT_EQ(gpu_.arena().allocated_bytes(), 0u);
}

TEST_F(GpuContextTest, H2DChecksCapacity) {
  double now = 0.0;
  auto buffer = *gpu_.Malloc(64, &now);
  auto too_big = kernels::Rand(10, 10, 0, 1, 1.0, 4);  // 800 bytes.
  EXPECT_THROW(gpu_.CopyH2D(buffer, too_big, &now), MemphisError);
  auto fits = kernels::Rand(2, 4, 0, 1, 1.0, 5);
  gpu_.CopyH2D(buffer, fits, &now);
  EXPECT_EQ(buffer->data, fits);
}

TEST_F(GpuContextTest, DefragmentChargesForMovedBytes) {
  double now = 0.0;
  auto a = *gpu_.Malloc(300000, &now);
  auto b = *gpu_.Malloc(300000, &now);
  auto c = *gpu_.Malloc(300000, &now);
  (void)b;
  gpu_.Free(a, &now);
  gpu_.Free(c, &now);
  const double before = now;
  gpu_.Defragment(&now);
  EXPECT_GT(now, before);
  EXPECT_EQ(gpu_.stats().defrags, 1);
  EXPECT_EQ(gpu_.arena().Fragmentation(), 0.0);
}

TEST_F(GpuContextTest, StatsBreakdownMatchesFigure2d) {
  // A small affine-style workload: allocation+free and copies dominate the
  // kernel compute, the Figure 2(d) observation.
  double now = 0.0;
  for (int i = 0; i < 20; ++i) {
    auto buffer = *gpu_.Malloc(128 * 500 * 8, &now);
    gpu_.LaunchKernel(buffer, MatrixBlock::Create(128, 500, 1.0),
                      /*flops=*/60e6, /*bytes=*/512000, &now);
    gpu_.CopyD2H(buffer, &now);
    gpu_.Free(buffer, &now);
  }
  const auto& stats = gpu_.stats();
  // Alloc+free ~4.6x and copies ~9x the compute (Figure 2(d)).
  EXPECT_GT(stats.malloc_time + stats.free_time, 3.0 * stats.kernel_time);
  EXPECT_GT(stats.copy_time, 5.0 * stats.kernel_time);
}

}  // namespace
}  // namespace memphis::gpu
