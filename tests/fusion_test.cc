// End-to-end tests for fused-group execution (compiler/fusion.h +
// kernels::FusedKernelExecutor + Executor::ExecuteFused):
//  * fused and unfused runs are bitwise identical,
//  * results are bitwise identical across thread-pool sizes,
//  * the composite lineage key equals the unfused root key byte-for-byte
//    and whole groups reuse on the second run,
//  * an individually-cached interior forces the op-at-a-time fallback,
//  * armed kernel faults are never masked by the tile interpreter.

#include <gtest/gtest.h>

#include <cstring>

#include "core/system.h"
#include "lineage/lineage_serde.h"
#include "matrix/kernels.h"
#include "runtime/fault_injection.h"

namespace memphis {
namespace {

using compiler::HopDag;

SystemConfig FusionConfig(ReuseMode mode) {
  SystemConfig config;
  config.reuse_mode = mode;
  config.mem_scale = 1.0;
  config.operation_memory = 64ull << 20;  // Everything stays CP-local.
  config.gpu_offload_min_flops = 1e12;
  config.delayed_caching = false;         // Hits already on the second run.
  config.auto_parameter_tuning = false;
  return config;
}

/// out = sigmoid(X*Y + X) (elementwise group), s = sum(exp(X)) (reduce
/// group). Fresh block per call: compiled streams are cached inside the
/// block, so two systems with different configs must not share one.
std::shared_ptr<compiler::BasicBlock> ChainBlock() {
  auto block = compiler::MakeBasicBlock();
  auto& dag = block->dag();
  auto x = dag.Read("X");
  auto y = dag.Read("Y");
  dag.Write("out", dag.Op("sigmoid",
                          {dag.Op("+", {dag.Op("*", {x, y}), x})}));
  dag.Write("s", dag.Op("sum", {dag.Op("exp", {x})}));
  return block;
}

bool BitwiseEqual(const MatrixBlock& a, const MatrixBlock& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(FusionExecTest, FusedMatchesUnfusedBitwise) {
  // Large enough that the parallel tile paths engage (> 2^14 elements).
  auto x = kernels::RandGaussian(1024, 80, 41);
  auto y = kernels::RandGaussian(1024, 80, 42);
  auto run = [&](bool fusion) {
    SystemConfig config = FusionConfig(ReuseMode::kMemphis);
    config.operator_fusion = fusion;
    MemphisSystem system(config);
    system.ctx().BindMatrix("X", x);
    system.ctx().BindMatrix("Y", y);
    auto block = ChainBlock();
    system.Run(*block);
    if (fusion) {
      EXPECT_GE(system.ctx().fusion_stats().groups_formed.value(), 2);
      EXPECT_GE(system.ctx().fusion_stats().ops_fused.value(), 5);
      EXPECT_GE(system.ctx().fusion_stats().groups_executed.value(), 2);
    } else {
      EXPECT_EQ(system.ctx().fusion_stats().groups_formed.value(), 0);
    }
    return std::make_pair(system.ctx().FetchMatrix("out"),
                          system.ctx().FetchMatrix("s"));
  };
  auto [fused_out, fused_s] = run(true);
  auto [plain_out, plain_s] = run(false);
  EXPECT_TRUE(BitwiseEqual(*fused_out, *plain_out));
  EXPECT_TRUE(BitwiseEqual(*fused_s, *plain_s));
}

TEST(FusionExecTest, BitwiseDeterministicAcrossPoolSizes) {
  auto x = kernels::RandGaussian(1024, 80, 43);
  auto y = kernels::RandGaussian(1024, 80, 44);
  MatrixPtr ref_out, ref_s;
  for (int threads : {1, 4, 8}) {
    SystemConfig config = FusionConfig(ReuseMode::kMemphis);
    config.cp_threads = threads;
    MemphisSystem system(config);
    system.ctx().BindMatrix("X", x);
    system.ctx().BindMatrix("Y", y);
    auto block = ChainBlock();
    system.Run(*block);
    MatrixPtr out = system.ctx().FetchMatrix("out");
    MatrixPtr s = system.ctx().FetchMatrix("s");
    if (ref_out == nullptr) {
      ref_out = out;
      ref_s = s;
    } else {
      EXPECT_TRUE(BitwiseEqual(*out, *ref_out)) << "threads=" << threads;
      EXPECT_TRUE(BitwiseEqual(*s, *ref_s)) << "threads=" << threads;
    }
  }
}

TEST(FusionExecTest, CompositeLineageIsByteIdenticalToUnfused) {
  // The whole point of the composite key: tracing a fused group must yield
  // the exact item graph unfused execution builds, so cached results
  // interoperate across fused and unfused runs.
  auto x = kernels::RandGaussian(64, 8, 45);
  auto y = kernels::RandGaussian(64, 8, 46);
  auto trace = [&](bool fusion) {
    SystemConfig config = FusionConfig(ReuseMode::kMemphis);
    config.operator_fusion = fusion;
    MemphisSystem system(config);
    system.ctx().BindMatrixWithId("X", x, "fx");
    system.ctx().BindMatrixWithId("Y", y, "fy");
    auto block = ChainBlock();
    system.Run(*block);
    return std::make_pair(
        SerializeLineage(system.ctx().lineage().Get("out")),
        SerializeLineage(system.ctx().lineage().Get("s")));
  };
  auto [fused_out, fused_s] = trace(true);
  auto [plain_out, plain_s] = trace(false);
  EXPECT_EQ(fused_out, plain_out);
  EXPECT_EQ(fused_s, plain_s);
}

TEST(FusionExecTest, CompositeKeyReusesWholeGroupOnSecondRun) {
  MemphisSystem system(FusionConfig(ReuseMode::kMemphis));
  system.ctx().BindMatrix("X", kernels::RandGaussian(96, 16, 47));
  system.ctx().BindMatrix("Y", kernels::RandGaussian(96, 16, 48));
  auto block = ChainBlock();
  system.Run(*block);
  const auto& fusion = system.ctx().fusion_stats();
  EXPECT_EQ(fusion.composite_hits.value(), 0);
  EXPECT_EQ(fusion.groups_executed.value(), 2);
  system.Run(*block);
  EXPECT_EQ(fusion.composite_hits.value(), 2);   // Both groups hit whole.
  EXPECT_EQ(fusion.groups_executed.value(), 2);  // Neither re-executed.
  EXPECT_EQ(fusion.groups_formed.value(), 2);    // Compile cached, too.
  EXPECT_GT(system.ctx().stats().reuse_hits.value(), 0);
}

TEST(FusionExecTest, InteriorHitFallsBackToOpAtATime) {
  auto x = kernels::RandGaussian(64, 8, 49);
  auto y = kernels::RandGaussian(64, 8, 50);
  MemphisSystem system(FusionConfig(ReuseMode::kMemphis));
  system.ctx().BindMatrix("X", x);
  system.ctx().BindMatrix("Y", y);
  // First block caches X*Y under its own (unfused) key: a bare binary over
  // reads has no interiors and never fuses.
  auto b1 = compiler::MakeBasicBlock();
  {
    auto& dag = b1->dag();
    dag.Write("t", dag.Op("*", {dag.Read("X"), dag.Read("Y")}));
  }
  system.Run(*b1);
  // Second block fuses exp(X*Y); its interior probe hits the cached
  // product, so the group must fall back instead of streaming tiles.
  auto b2 = compiler::MakeBasicBlock();
  {
    auto& dag = b2->dag();
    dag.Write("out",
              dag.Op("exp", {dag.Op("*", {dag.Read("X"), dag.Read("Y")})}));
  }
  system.Run(*b2);
  EXPECT_EQ(system.ctx().fusion_stats().fallback_unfused.value(), 1);
  EXPECT_EQ(system.ctx().fusion_stats().groups_executed.value(), 0);
  EXPECT_GT(system.ctx().stats().reuse_hits.value(), 0);

  // The fallback's result is bitwise what an unfused system computes.
  SystemConfig plain = FusionConfig(ReuseMode::kMemphis);
  plain.operator_fusion = false;
  MemphisSystem reference(plain);
  reference.ctx().BindMatrix("X", x);
  reference.ctx().BindMatrix("Y", y);
  auto b3 = compiler::MakeBasicBlock();
  {
    auto& dag = b3->dag();
    dag.Write("out",
              dag.Op("exp", {dag.Op("*", {dag.Read("X"), dag.Read("Y")})}));
  }
  reference.Run(*b3);
  EXPECT_TRUE(BitwiseEqual(*system.ctx().FetchMatrix("out"),
                           *reference.ctx().FetchMatrix("out")));
}

TEST(FusionExecTest, ArmedKernelFaultIsNotMaskedByFusion) {
  auto x = kernels::RandGaussian(64, 8, 51);
  auto y = kernels::RandGaussian(64, 8, 52);
  auto run = [&](bool faulted) {
    SystemConfig config = FusionConfig(ReuseMode::kMemphis);
    MemphisSystem system(config);
    system.ctx().BindMatrix("X", x);
    system.ctx().BindMatrix("Y", y);
    if (faulted) {
      KernelFault fault;
      fault.opcode = "exp";
      ArmKernelFault(fault);
    }
    auto block = compiler::MakeBasicBlock();
    {
      auto& dag = block->dag();
      dag.Write("out",
                dag.Op("exp", {dag.Op("*", {dag.Read("X"), dag.Read("Y")})}));
    }
    system.Run(*block);
    MatrixPtr out = system.ctx().FetchMatrix("out");
    if (faulted) {
      // The tile interpreter bypasses ApplyKernelFault, so an armed fault
      // must force the op-at-a-time fallback -- otherwise the fuzzer's
      // injected bugs would vanish whenever fusion kicks in.
      EXPECT_GE(system.ctx().fusion_stats().fallback_unfused.value(), 1);
      EXPECT_EQ(system.ctx().fusion_stats().groups_executed.value(), 0);
      DisarmKernelFault();
    }
    return out;
  };
  MatrixPtr clean = run(false);
  MatrixPtr perturbed = run(true);
  EXPECT_FALSE(BitwiseEqual(*clean, *perturbed));
}

}  // namespace
}  // namespace memphis
