// Property-based (parameterized) suites over randomized inputs: algebraic
// identities of the kernels, allocator invariants under random workloads,
// lineage hash/equality laws, and the end-to-end reuse-transparency property
// (reuse never changes results) swept across operators.

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "common/status.h"
#include "core/system.h"
#include "gpu/gpu_arena.h"
#include "lineage/lineage_item.h"
#include "lineage/lineage_serde.h"
#include "matrix/kernels.h"
#include "matrix/nn_kernels.h"
#include "testing_util.h"

namespace memphis {
namespace {

// --- matrix algebra laws ----------------------------------------------------

class AlgebraProperty : public ::testing::TestWithParam<int> {};

TEST_P(AlgebraProperty, TransposeOfProduct) {
  // (A B)^T == B^T A^T.
  const uint64_t seed = testing::TestSeed(GetParam());
  Rng rng(seed);
  const size_t m = 2 + rng.NextInt(12);
  const size_t k = 2 + rng.NextInt(12);
  const size_t n = 2 + rng.NextInt(12);
  auto a = kernels::RandGaussian(m, k, seed * 3 + 1);
  auto b = kernels::RandGaussian(k, n, seed * 3 + 2);
  auto lhs = kernels::Transpose(*kernels::MatMult(*a, *b));
  auto rhs = kernels::MatMult(*kernels::Transpose(*b),
                              *kernels::Transpose(*a));
  EXPECT_TRUE(testing::MatricesClose(*lhs, *rhs));
}

TEST_P(AlgebraProperty, MatMultDistributesOverAddition) {
  const uint64_t seed = testing::TestSeed(GetParam());
  auto a = kernels::RandGaussian(6, 5, seed * 5 + 1);
  auto b = kernels::RandGaussian(5, 4, seed * 5 + 2);
  auto c = kernels::RandGaussian(5, 4, seed * 5 + 3);
  auto sum = kernels::Binary(kernels::BinaryOp::kAdd, *b, *c);
  auto lhs = kernels::MatMult(*a, *sum);
  auto rhs = kernels::Binary(kernels::BinaryOp::kAdd, *kernels::MatMult(*a, *b),
                             *kernels::MatMult(*a, *c));
  EXPECT_TRUE(testing::MatricesClose(*lhs, *rhs));
}

TEST_P(AlgebraProperty, SumInvariantUnderTranspose) {
  const uint64_t seed = testing::TestSeed(GetParam());
  auto a = kernels::RandGaussian(7, 9, seed + 100);
  EXPECT_TRUE(testing::ScalarsClose(kernels::Sum(*a),
                                    kernels::Sum(*kernels::Transpose(*a))));
}

TEST_P(AlgebraProperty, ColSumsMatchRowSumsOfTranspose) {
  const uint64_t seed = testing::TestSeed(GetParam());
  auto a = kernels::RandGaussian(5, 8, seed + 200);
  auto colsums = kernels::ColSums(*a);
  auto rowsums = kernels::RowSums(*kernels::Transpose(*a));
  EXPECT_TRUE(testing::MatricesClose(*kernels::Transpose(*colsums),
                                     *rowsums));
}

TEST_P(AlgebraProperty, SolveInvertsMultiplication) {
  const uint64_t seed = testing::TestSeed(GetParam());
  const size_t n = 3 + seed % 6;
  // Diagonally-dominant A is well conditioned.
  auto a = kernels::RandGaussian(n, n, seed + 300);
  auto dom = kernels::Binary(
      kernels::BinaryOp::kAdd, *a,
      *kernels::ScalarOp(kernels::BinaryOp::kMul, *kernels::Identity(n),
                         10.0 * static_cast<double>(n)));
  auto x_true = kernels::RandGaussian(n, 2, seed + 301);
  auto b = kernels::MatMult(*dom, *x_true);
  EXPECT_TRUE(kernels::Solve(*dom, *b)->ApproxEquals(*x_true, 1e-8));
}

TEST_P(AlgebraProperty, SliceRbindRoundTrip) {
  const uint64_t seed = testing::TestSeed(GetParam());
  auto a = kernels::RandGaussian(10, 4, seed + 400);
  const size_t cut = 1 + seed % 8;
  auto top = kernels::Slice(*a, 0, cut, 0, 4);
  auto bottom = kernels::Slice(*a, cut, 10, 0, 4);
  EXPECT_TRUE(kernels::RBind(*top, *bottom)->ApproxEquals(*a));
}

TEST_P(AlgebraProperty, ReluIdempotent) {
  const uint64_t seed = testing::TestSeed(GetParam());
  auto a = kernels::RandGaussian(6, 6, seed + 500);
  auto once = kernels::Relu(*a);
  EXPECT_TRUE(kernels::Relu(*once)->ApproxEquals(*once));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraProperty, ::testing::Range(1, 13));

// --- GPU arena invariants -----------------------------------------------------

class ArenaProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArenaProperty, RandomAllocFreeKeepsInvariants) {
  const uint64_t seed = testing::TestSeed(GetParam());
  Rng rng(seed);
  gpu::GpuArena arena(1 << 16);
  std::vector<std::pair<uint64_t, size_t>> live;  // (handle, size).
  size_t live_bytes = 0;
  for (int step = 0; step < 500; ++step) {
    if (live.empty() || rng.NextDouble() < 0.55) {
      const size_t bytes = 64 + rng.NextInt(4096);
      auto handle = arena.Alloc(bytes);
      if (handle.has_value()) {
        live.emplace_back(*handle, bytes);
        live_bytes += bytes;
      }
    } else {
      const size_t index = rng.NextInt(live.size());
      arena.Free(live[index].first);
      live_bytes -= live[index].second;
      live.erase(live.begin() + index);
    }
    // Invariants: accounting consistent, no overcommit.
    ASSERT_EQ(arena.allocated_bytes(), live_bytes);
    ASSERT_LE(arena.allocated_bytes(), arena.capacity());
    ASSERT_EQ(arena.num_live_blocks(), live.size());
    ASSERT_LE(arena.LargestFreeBlock(), arena.free_bytes());
  }
  // Live blocks never overlap.
  std::vector<std::pair<size_t, size_t>> ranges;
  for (const auto& [handle, size] : live) {
    ranges.emplace_back(arena.BlockOffset(handle), size);
  }
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); ++i) {
    ASSERT_GE(ranges[i].first, ranges[i - 1].first + ranges[i - 1].second);
  }
  // Defragment and verify everything still fits contiguously.
  arena.Defragment();
  ASSERT_EQ(arena.LargestFreeBlock(), arena.free_bytes());
  ASSERT_EQ(arena.allocated_bytes(), live_bytes);
}

TEST_P(ArenaProperty, FreeAllRestoresFullCapacity) {
  const uint64_t seed = testing::TestSeed(GetParam());
  Rng rng(seed);
  gpu::GpuArena arena(1 << 14);
  std::vector<uint64_t> handles;
  while (true) {
    auto handle = arena.Alloc(128 + rng.NextInt(1024));
    if (!handle.has_value()) break;
    handles.push_back(*handle);
  }
  for (uint64_t handle : handles) arena.Free(handle);
  EXPECT_EQ(arena.free_bytes(), arena.capacity());
  EXPECT_EQ(arena.LargestFreeBlock(), arena.capacity());  // Full coalescing.
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaProperty, ::testing::Range(1, 9));

// --- lineage laws ------------------------------------------------------------------

class LineageProperty : public ::testing::TestWithParam<int> {};

LineageItemPtr RandomDag(Rng* rng, int depth) {
  if (depth == 0 || rng->NextDouble() < 0.2) {
    return LineageItem::Leaf("extern",
                             "v" + std::to_string(rng->NextInt(3)));
  }
  const int arity = 1 + static_cast<int>(rng->NextInt(2));
  std::vector<LineageItemPtr> inputs;
  for (int i = 0; i < arity; ++i) {
    inputs.push_back(RandomDag(rng, depth - 1));
  }
  return LineageItem::Create("op" + std::to_string(rng->NextInt(4)),
                             std::to_string(rng->NextInt(3)),
                             std::move(inputs));
}

TEST_P(LineageProperty, EqualityIsReflexiveAndHashConsistent) {
  Rng rng(GetParam());
  auto dag = RandomDag(&rng, 6);
  EXPECT_TRUE(LineageEquals(dag, dag));
  // Rebuild an identical DAG from the same seed.
  Rng rng2(GetParam());
  auto twin = RandomDag(&rng2, 6);
  EXPECT_TRUE(LineageEquals(dag, twin));
  EXPECT_EQ(dag->hash(), twin->hash());
}

TEST_P(LineageProperty, SerdeRoundTripIsIdentity) {
  Rng rng(GetParam() + 50);
  auto dag = RandomDag(&rng, 7);
  auto restored = DeserializeLineage(SerializeLineage(dag));
  EXPECT_TRUE(LineageEquals(dag, restored));
  EXPECT_EQ(dag->hash(), restored->hash());
  EXPECT_EQ(dag->height(), restored->height());
  EXPECT_EQ(LineageDagSize(dag), LineageDagSize(restored));
}

TEST_P(LineageProperty, PerturbationBreaksEquality) {
  Rng rng(GetParam() + 100);
  auto dag = RandomDag(&rng, 5);
  // A DAG extended by one node never equals the original.
  auto extended = LineageItem::Create("extra", "", {dag});
  EXPECT_FALSE(LineageEquals(dag, extended));
  EXPECT_NE(dag->hash(), extended->hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineageProperty, ::testing::Range(1, 11));

// --- reuse transparency across operators ----------------------------------------

struct ReuseCase {
  const char* name;
  const char* opcode;
  std::vector<double> args;
  size_t rows;
  size_t cols;
};

class ReuseTransparency : public ::testing::TestWithParam<ReuseCase> {};

TEST_P(ReuseTransparency, CachedResultMatchesRecomputation) {
  const ReuseCase& test_case = GetParam();
  auto x = kernels::Rand(test_case.rows, test_case.cols, 0.1, 2.0, 1.0, 77);

  auto run = [&](ReuseMode mode) {
    SystemConfig config;
    config.reuse_mode = mode;
    config.delayed_caching = false;  // Eager: hits from the second run.
    MemphisSystem system(config);
    system.ctx().BindMatrixWithId("X", x, "prop:X");
    auto block = compiler::MakeBasicBlock();
    auto& dag = block->dag();
    dag.Write("out", dag.Op(test_case.opcode, {dag.Read("X")},
                            test_case.args));
    system.Run(*block);
    system.Run(*block);
    MatrixPtr out = system.ctx().FetchMatrix("out");
    return std::make_pair(out, system.ctx().cache().stats().TotalHits());
  };

  auto [base_result, base_hits] = run(ReuseMode::kNone);
  auto [mph_result, mph_hits] = run(ReuseMode::kMemphis);
  EXPECT_EQ(base_hits, 0);
  EXPECT_GT(mph_hits, 0) << test_case.name;
  EXPECT_TRUE(mph_result->ApproxEquals(*base_result, 1e-12))
      << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, ReuseTransparency,
    ::testing::Values(
        ReuseCase{"tsmm", "tsmm", {}, 64, 6},
        ReuseCase{"transpose", "transpose", {}, 32, 8},
        ReuseCase{"relu", "relu", {}, 32, 8},
        ReuseCase{"exp", "exp", {}, 16, 4},
        ReuseCase{"colSums", "colSums", {}, 40, 6},
        ReuseCase{"rowIndexMax", "rowIndexMax", {}, 24, 5},
        ReuseCase{"softmax", "softmax", {}, 16, 8},
        ReuseCase{"scale", "scale", {}, 48, 6},
        ReuseCase{"minmax", "minmax", {}, 48, 6},
        ReuseCase{"imputeMean", "imputeMean", {}, 30, 4},
        ReuseCase{"outlierIQR", "outlierIQR", {1.5}, 40, 3},
        ReuseCase{"bin", "bin", {5}, 30, 4},
        ReuseCase{"recode", "recode", {}, 30, 3},
        ReuseCase{"pca", "pca", {2}, 40, 5},
        ReuseCase{"dropoutSeeded", "dropout", {0.8, 42}, 20, 10}),
    [](const ::testing::TestParamInfo<ReuseCase>& info) {
      return info.param.name;
    });

// --- cost model monotonicity ------------------------------------------------------

class CostMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(CostMonotonic, MoreWorkNeverCheaper) {
  sim::CostModel cm;
  const double scale = GetParam();
  EXPECT_GE(cm.CpOpTime(1e6 * scale, 1e3), cm.CpOpTime(1e6, 1e3));
  EXPECT_GE(cm.ShuffleTime(1e6 * scale), cm.ShuffleTime(1e6));
  EXPECT_GE(cm.GpuKernelTime(1e6 * scale, 1e3), cm.GpuKernelTime(1e6, 1e3));
  EXPECT_GE(cm.D2HTime(1e4 * scale), cm.D2HTime(1e4));
}

INSTANTIATE_TEST_SUITE_P(Scales, CostMonotonic,
                         ::testing::Values(1.0, 2.0, 7.5, 100.0));

}  // namespace
}  // namespace memphis
