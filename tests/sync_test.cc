// Tests for the annotated sync layer (common/sync.h): wrapper semantics,
// the runtime lock-rank validator (death tests for inversion / recursion /
// same-rank nesting), the observed-edge graph, and validator-clean stress
// at several pool sizes. The death tests use the "threadsafe" style because
// the process may own pool worker threads when they fork.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace memphis {
namespace {

/// Restores abort-on-violation when a no-abort test scope exits.
class ScopedNoAbort {
 public:
  ScopedNoAbort() { SetSyncValidatorAbortForTest(false); }
  ~ScopedNoAbort() { SetSyncValidatorAbortForTest(true); }
};

class SyncDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    if (!SyncValidatorEnabled()) {
      GTEST_SKIP() << "rank validator disabled (MEMPHIS_SYNC_VALIDATE=0?)";
    }
  }
};

TEST_F(SyncDeathTest, RankInversionAborts) {
  EXPECT_DEATH(
      {
        // Paren-init: commas inside braces would split the macro arguments.
        Mutex outer(LockRank::kMetrics, "death-outer");
        Mutex inner(LockRank::kPool, "death-inner");
        MutexLock hold_outer(outer);
        MutexLock hold_inner(inner);  // pool < metrics: inversion.
      },
      "lock rank inversion");
}

TEST_F(SyncDeathTest, RecursiveAcquisitionAborts) {
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kTest, "death-recursive");
        MutexLock first(mu);
        mu.Lock();  // Same mutex, same thread.
      },
      "recursive acquisition");
}

TEST_F(SyncDeathTest, SameRankNestingAborts) {
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kTest, "death-same-a");
        Mutex b(LockRank::kTest, "death-same-b");
        MutexLock hold_a(a);
        MutexLock hold_b(b);  // Distinct mutexes, equal rank.
      },
      "same-rank acquisition");
}

TEST_F(SyncDeathTest, AssertHeldAbortsWhenNotHeld) {
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kTest, "death-assert");
        mu.AssertHeld();
      },
      "does not hold");
}

TEST(SyncValidatorTest, OrderedAcquisitionIsCleanAndRecordsEdges) {
  if (!SyncValidatorEnabled()) GTEST_SKIP();
  Mutex tier{LockRank::kCacheTier, "edge-tier"};
  Mutex shard{LockRank::kCacheShard, "edge-shard"};
  Mutex metrics{LockRank::kMetrics, "edge-metrics"};
  {
    MutexLock hold_tier(tier);
    MutexLock hold_shard(shard);
    MutexLock hold_metrics(metrics);
  }
  EXPECT_TRUE(SyncEdgeObserved(LockRank::kCacheTier, LockRank::kCacheShard));
  EXPECT_TRUE(SyncEdgeObserved(LockRank::kCacheTier, LockRank::kMetrics));
  EXPECT_TRUE(SyncEdgeObserved(LockRank::kCacheShard, LockRank::kMetrics));
  // The reverse edges were never taken.
  EXPECT_FALSE(SyncEdgeObserved(LockRank::kMetrics, LockRank::kCacheTier));
}

TEST(SyncValidatorTest, NoAbortModeCountsViolations) {
  if (!SyncValidatorEnabled()) GTEST_SKIP();
  const int64_t before = RankViolationCount();
  {
    ScopedNoAbort no_abort;
    Mutex outer{LockRank::kMetrics, "count-outer"};
    Mutex inner{LockRank::kPool, "count-inner"};
    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);  // Inversion: counted, not fatal here.
  }
  EXPECT_EQ(RankViolationCount(), before + 1);
}

TEST(SyncValidatorTest, ViolationCountIsPublishedAsMetric) {
  bool seen = false;
  for (const auto& sample : obs::MetricsRegistry::Global().Snapshot()) {
    if (sample.name == "sync.rank_violations") {
      seen = true;
      EXPECT_DOUBLE_EQ(sample.value,
                       static_cast<double>(RankViolationCount()));
    }
  }
  EXPECT_TRUE(seen);
}

TEST(SyncMutexTest, TryLockRegistersAndFailsCleanlyWhenContended) {
  Mutex mu{LockRank::kTest, "trylock"};
  ASSERT_TRUE(mu.TryLock());
  mu.AssertHeld();
  mu.Unlock();

  // Contended TryLock must fail without corrupting the held-lock stack.
  mu.Lock();
  std::atomic<bool> failed{false};
  std::thread contender([&] {
    if (!mu.TryLock()) {
      failed = true;
      // This thread holds nothing, so ordered locking still works.
      Mutex other{LockRank::kTraceRegistry, "trylock-other"};
      MutexLock hold(other);
    } else {
      mu.Unlock();
    }
  });
  contender.join();
  mu.Unlock();
  EXPECT_TRUE(failed);
}

TEST(SyncMutexTest, CondVarWaitKeepsHeldStackExact) {
  Mutex mu{LockRank::kTest, "condvar"};
  CondVar cv;
  bool ready = false;  // Guarded by mu (annotation elided: local).
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(&mu);
    mu.AssertHeld();  // Re-acquired and re-pushed after the wait.
    woke = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(woke);
}

TEST(SyncMutexTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu{LockRank::kTest, "rwlock"};
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      ReaderLock lock(mu);
      const int now = ++concurrent;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      mu.AssertReaderHeld();
      --concurrent;
    });
  }
  for (auto& reader : readers) reader.join();
  {
    WriterLock lock(mu);
    mu.AssertHeld();
    EXPECT_EQ(concurrent, 0);
  }
  EXPECT_GE(peak, 1);
}

// GUARDED_BY smoke: compiles under GCC (macros are no-ops) and, in the
// -DMEMPHIS_THREAD_SAFETY=ON clang config, verifies that annotated access
// through MutexLock and a REQUIRES helper is accepted by the analysis.
class GuardedCounter {
 public:
  GuardedCounter() : mu_(LockRank::kTest, "guarded-counter") {}

  void Add(int delta) MEMPHIS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    AddLocked(delta);
  }
  int value() const MEMPHIS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  void AddLocked(int delta) MEMPHIS_REQUIRES(mu_) { value_ += delta; }

  mutable Mutex mu_;
  int value_ MEMPHIS_GUARDED_BY(mu_) = 0;
};

TEST(SyncAnnotationTest, GuardedByCompilesAndCounts) {
  GuardedCounter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) counter.Add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 4000);
}

// Regression for the metrics -> pool inversion the migration surfaced: the
// "pool.queue_depth" callback used to take the pool lock while the registry
// lock was held. It must now be lock-free, so snapshotting the global
// registry under an active validator is rank-clean.
TEST(SyncRegressionTest, GlobalSnapshotSamplesPoolGaugesRankClean) {
  ThreadPool::Global();  // Ensure the pool metrics are registered.
  bool saw_queue_depth = false;
  for (const auto& sample : obs::MetricsRegistry::Global().Snapshot()) {
    if (sample.name == "pool.queue_depth") saw_queue_depth = true;
  }
  EXPECT_TRUE(saw_queue_depth);
}

class SyncStressTest : public ::testing::Test {
 protected:
  ~SyncStressTest() override { ThreadPool::Global().Resize(1); }
};

// Wrapper + validator stress across pool sizes: chunks serialize on a kTest
// mutex, emit trace instants while holding it (the kTest -> kTraceRegistry
// edge is sanctioned), and the main thread snapshots metrics concurrently.
// Any rank violation aborts; TSan builds check the wrappers' memory
// ordering.
TEST_F(SyncStressTest, PoolSizes148AreValidatorClean) {
  for (const int pool_size : {1, 4, 8}) {
    ThreadPool::Global().Resize(pool_size);
    Mutex mu{LockRank::kTest, "stress"};
    int64_t sum = 0;  // Guarded by mu.
    obs::EnableTracing(true);
    std::atomic<bool> done{false};
    std::thread sampler([&] {
      while (!done) {
        (void)obs::MetricsRegistry::Global().Snapshot();
      }
    });
    ParallelFor(0, 2000, 16, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        MutexLock lock(mu);
        MEMPHIS_TRACE_INSTANT("sync-test", "stress-tick");
        sum += static_cast<int64_t>(i);
      }
    });
    done = true;
    sampler.join();
    obs::EnableTracing(false);
    obs::ResetTrace();
    EXPECT_EQ(sum, int64_t{2000} * 1999 / 2) << "pool size " << pool_size;
  }
}

}  // namespace
}  // namespace memphis
