// Geo-distributed serving fabric tests (src/fabric/, DESIGN.md section 5j):
// consistent-hash routing with explicit kill/rejoin moves, the cross-site
// reuse tier's portability bar and tenant isolation, the stale-bounded round
// engine's determinism lattice (K=0 bitwise-identical to the synchronous
// coordinator; every K and pool size bitwise-identical aggregates), and the
// fabric's site-failure exactly-once accounting. Registered with the TSan
// halt_on_error policy (tests/CMakeLists.txt): kills drain live worker pools.

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/thread_pool.h"
#include "fabric/fabric.h"
#include "fabric/rounds.h"
#include "federated/federated.h"
#include "matrix/kernels.h"
#include "serve/workloads.h"
#include "testing_util.h"

namespace memphis::fabric {
namespace {

using federated::FederatedCoordinator;
using serve::MakeWorkloadRequest;
using serve::RequestOutcome;
using testing::TempDir;

SystemConfig SiteConfig(int cp_threads = 2) {
  SystemConfig config;
  config.reuse_mode = ReuseMode::kMemphis;
  config.enable_gpu = false;
  config.cp_threads = cp_threads;
  return config;
}

FabricConfig TestFabricConfig(int sites, int workers = 2) {
  FabricConfig config;
  config.num_sites = sites;
  config.serve.workers = workers;
  config.serve.session.cp_threads = ThreadPool::Global().num_threads();
  return config;
}

/// The per-round federated block: `wgram` derives only from the broadcast
/// (cross-site portable), `gram` only from the local shard (round-invariant,
/// so aggregates are bitwise-comparable across staleness bounds).
std::shared_ptr<compiler::BasicBlock> RoundBlock() {
  auto block = compiler::MakeBasicBlock();
  auto& dag = block->dag();
  dag.Write("wgram", dag.Op("tsmm", {dag.Read("w")}));
  dag.Write("gram", dag.Op("tsmm", {dag.Read("X")}));
  return block;
}

MatrixPtr RoundModel(int round) {
  return kernels::RandGaussian(6, 3, 100 + static_cast<uint64_t>(round));
}

void BindRound(FederatedCoordinator& fed, int round) {
  fed.BroadcastBind("w", RoundModel(round), "w:round" + std::to_string(round));
}

void ExpectBitwiseEqual(const MatrixPtr& a, const MatrixPtr& b) {
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->rows(), b->rows());
  ASSERT_EQ(a->cols(), b->cols());
  EXPECT_EQ(0, std::memcmp(a->data(), b->data(),
                           a->rows() * a->cols() * sizeof(double)));
}

CacheEntryPtr MakeEntry(const LineageItemPtr& key, double fill) {
  auto entry = std::make_shared<CacheEntry>();
  entry->key = key;
  entry->kind = CacheKind::kHostMatrix;
  entry->status.store(CacheStatus::kCached);
  entry->host_value = MatrixBlock::Create(2, 2, fill);
  entry->compute_cost = 5.0;
  entry->size_bytes = 2 * 2 * sizeof(double);
  return entry;
}

// ---------------------------------------------------------------------------
// FabricRouter: consistent-hash placement with explicit rebalancing.

TEST(FabricRouterTest, PlacementIsStickyAndInRange) {
  FabricRouter router(4);
  std::map<std::string, int> first;
  for (int t = 0; t < 24; ++t) {
    const std::string tenant = "tenant" + std::to_string(t);
    const int site = router.Place(tenant);
    ASSERT_GE(site, 0);
    ASSERT_LT(site, 4);
    first[tenant] = site;
  }
  for (const auto& [tenant, site] : first) {
    EXPECT_EQ(router.Place(tenant), site);     // Sticky.
    EXPECT_EQ(router.RingSite(tenant), site);  // All-alive ring agrees.
  }
  size_t assigned = 0;
  for (int site = 0; site < 4; ++site) {
    assigned += router.TenantsAt(site).size();
  }
  EXPECT_EQ(assigned, first.size());
}

TEST(FabricRouterTest, KillMovesOnlyDeadSiteTenantsAndRejoinRestores) {
  FabricRouter router(4);
  std::map<std::string, int> before;
  for (int t = 0; t < 32; ++t) {
    const std::string tenant = "t" + std::to_string(t);
    before[tenant] = router.Place(tenant);
  }
  const int victim = 1;
  const std::vector<TenantMove> killed = router.KillSite(victim);
  EXPECT_FALSE(router.alive(victim));
  size_t victims_before = 0;
  for (const auto& [tenant, site] : before) {
    if (site == victim) ++victims_before;
  }
  EXPECT_EQ(killed.size(), victims_before);
  for (const TenantMove& move : killed) {
    EXPECT_EQ(move.from, victim);
    EXPECT_NE(move.to, victim);
    EXPECT_EQ(router.Place(move.tenant), move.to);
  }
  // Survivors' tenants never move on a kill.
  for (const auto& [tenant, site] : before) {
    if (site != victim) EXPECT_EQ(router.Place(tenant), site);
  }

  const std::vector<TenantMove> rejoined = router.RejoinSite(victim);
  EXPECT_TRUE(router.alive(victim));
  EXPECT_EQ(rejoined.size(), killed.size());
  // Ring-home tenants come back; everything matches the original layout.
  for (const auto& [tenant, site] : before) {
    EXPECT_EQ(router.Place(tenant), site) << tenant;
  }
}

TEST(FabricRouterTest, RefusesToKillTheLastLiveSite) {
  FabricRouter router(3);
  router.Place("only");
  router.KillSite(0);
  router.KillSite(2);
  EXPECT_THROW(router.KillSite(1), MemphisError);
}

// ---------------------------------------------------------------------------
// Exchange cost model.

TEST(ExchangeModelTest, CrossSitePaysLatencyPlusBandwidth) {
  ExchangeConfig config;
  config.intra_site_bandwidth = 1e9;
  config.link_bandwidth = 1e6;
  config.link_latency_seconds = 1e-3;
  ExchangeCostModel model(config);
  EXPECT_DOUBLE_EQ(model.TransferSeconds(0, 0, 1000000), 1e-3);
  EXPECT_DOUBLE_EQ(model.TransferSeconds(0, 1, 1000000), 1e-3 + 1.0);
  EXPECT_LT(model.TransferSeconds(2, 2, 1 << 20),
            model.TransferSeconds(2, 3, 1 << 20));
}

// ---------------------------------------------------------------------------
// FabricStore: the cross-site tier's portability bar and isolation.

TEST(FabricStoreTest, PublishEnforcesThePortabilityBar) {
  FabricStore store;
  const LineageItemPtr broadcast_leaf = LineageItem::Leaf("extern", "w:1");
  const LineageItemPtr broadcast_derived =
      LineageItem::Create("tsmm", "", {broadcast_leaf});
  const LineageItemPtr shard_derived = LineageItem::Create(
      "tsmm", "", {LineageItem::Leaf("extern", "fed:X:0")});
  const LineageItemPtr session_local = LineageItem::Create(
      "tsmm", "", {LineageItem::Leaf("extern", "X@17")});

  const std::vector<std::string> portable{"w:1"};
  const int stored = store.Publish(
      /*site=*/0, "tenant",
      {MakeEntry(broadcast_derived, 1.0), MakeEntry(shard_derived, 2.0),
       MakeEntry(session_local, 3.0)},
      &portable);
  // Only the broadcast derivation crosses: the shard leaf is site-specific
  // and the "@" leaf is session-local.
  EXPECT_EQ(stored, 1);
  EXPECT_EQ(store.TotalEntries(), 1u);
  EXPECT_EQ(store.CheckInvariants(), "");

  // Without an allowlist the stable shard derivation is admitted too (the
  // serve path: stable tenant data re-warmed after failover).
  EXPECT_EQ(store.Publish(0, "tenant", {MakeEntry(shard_derived, 2.0)}), 1);
  // Re-publishing an existing key is a no-op.
  EXPECT_EQ(store.Publish(1, "tenant", {MakeEntry(broadcast_derived, 1.0)}),
            0);
}

TEST(FabricStoreTest, WarmSkipsOriginSiteAndIsolatesTenants) {
  FabricStore store;
  const LineageItemPtr key = LineageItem::Create(
      "tsmm", "", {LineageItem::Leaf("extern", "w:1")});
  ASSERT_EQ(store.Publish(0, "alice", {MakeEntry(key, 1.0)}), 1);

  MemphisSystem origin(SiteConfig());
  double origin_now = 0.0;
  EXPECT_EQ(store.WarmSite(0, "alice", &origin.ctx().cache(), &origin_now), 0);
  EXPECT_EQ(origin_now, 0.0);  // The origin site already has it: no charge.

  MemphisSystem other_tenant(SiteConfig());
  double other_now = 0.0;
  EXPECT_EQ(store.WarmSite(1, "bob", &other_tenant.ctx().cache(), &other_now),
            0);  // Cross-tenant: invisible.

  MemphisSystem peer(SiteConfig());
  double peer_now = 0.0;
  EXPECT_EQ(store.WarmSite(1, "alice", &peer.ctx().cache(), &peer_now), 1);
  EXPECT_GT(peer_now, 0.0);  // The cross-site fetch was charged.
  EXPECT_EQ(store.cross_site_warms(), 1);
  // Warming again inserts nothing and charges nothing.
  const double charged = peer_now;
  EXPECT_EQ(store.WarmSite(1, "alice", &peer.ctx().cache(), &peer_now), 0);
  EXPECT_EQ(peer_now, charged);
}

// ---------------------------------------------------------------------------
// Stale-bounded rounds: the determinism lattice.

TEST(StaleRoundsTest, K0IsBitwiseIdenticalToTheSyncCoordinator) {
  const int kRounds = 4;
  const MatrixPtr x = kernels::RandGaussian(96, 5, 7);

  FederatedCoordinator sync(2, SiteConfig());
  sync.Distribute("X", x);
  std::vector<MatrixPtr> sync_aggregates;
  std::vector<double> sync_clocks;
  for (int r = 1; r <= kRounds; ++r) {
    BindRound(sync, r);
    sync.RunRound(RoundBlock);
    sync_aggregates.push_back(sync.AggregateSum("gram"));
    sync_clocks.push_back(sync.ElapsedSeconds());
  }

  FederatedCoordinator async(2, SiteConfig());
  async.Distribute("X", x);
  StaleRoundOptions options;
  options.rounds = kRounds;
  options.staleness_bound = 0;
  options.aggregate_var = "gram";
  const StaleRoundReport report = RunStaleBoundedRounds(
      async, RoundBlock, [&](int round) { BindRound(async, round); }, options);

  ASSERT_EQ(report.aggregates.size(), static_cast<size_t>(kRounds));
  for (int r = 0; r < kRounds; ++r) {
    ExpectBitwiseEqual(report.aggregates[r], sync_aggregates[r]);
    // Not just close: the engine replays the synchronous coordinator's
    // exact double-op order, so the clocks agree to the last ulp.
    EXPECT_EQ(report.aggregate_seconds[r], sync_clocks[r]) << "round " << r;
  }
  EXPECT_EQ(report.stale_contributions, 0);
  EXPECT_EQ(report.final_seconds, sync.ElapsedSeconds());
}

TEST(StaleRoundsTest, AggregatesAreBitwiseInvariantAcrossStalenessBounds) {
  const int kRounds = 5;
  const MatrixPtr x = kernels::RandGaussian(120, 4, 9);
  std::vector<std::vector<MatrixPtr>> per_k;
  std::vector<double> finals;
  std::vector<int> stale_counts;
  for (int k : {0, 1, 2}) {
    FederatedCoordinator fed(3, SiteConfig());
    fed.SetSiteSpeed(1, 0.25);  // One straggler, 4x slower.
    fed.Distribute("X", x);
    StaleRoundOptions options;
    options.rounds = kRounds;
    options.staleness_bound = k;
    options.aggregate_var = "gram";
    const StaleRoundReport report = RunStaleBoundedRounds(
        fed, RoundBlock, [&](int round) { BindRound(fed, round); }, options);
    per_k.push_back(report.aggregates);
    finals.push_back(report.final_seconds);
    stale_counts.push_back(report.stale_contributions);
  }
  for (size_t k = 1; k < per_k.size(); ++k) {
    ASSERT_EQ(per_k[k].size(), per_k[0].size());
    for (size_t r = 0; r < per_k[0].size(); ++r) {
      ExpectBitwiseEqual(per_k[k][r], per_k[0][r]);
    }
  }
  // The straggler stalls the synchronous fleet every round; stale-bounded
  // rounds let the fleet run ahead, so async finishes strictly earlier.
  EXPECT_LT(finals[2], finals[0]);
  EXPECT_EQ(stale_counts[0], 0);
  EXPECT_GT(stale_counts[2], 0);
}

TEST(StaleRoundsTest, DeterminismLatticeSitesByPools) {
  // For each fleet size, the aggregate stream is bitwise-invariant across
  // per-site thread-pool widths (pool size never changes results).
  const MatrixPtr x = kernels::RandGaussian(64, 4, 13);
  for (int sites : {1, 2, 4}) {
    std::vector<MatrixPtr> reference;
    for (int pool : {1, 4, 8}) {
      FederatedCoordinator fed(sites, SiteConfig(pool));
      fed.Distribute("X", x);
      StaleRoundOptions options;
      options.rounds = 3;
      options.staleness_bound = 1;
      options.aggregate_var = "gram";
      const StaleRoundReport report = RunStaleBoundedRounds(
          fed, RoundBlock, [&](int round) { BindRound(fed, round); },
          options);
      if (reference.empty()) {
        reference = report.aggregates;
        continue;
      }
      ASSERT_EQ(report.aggregates.size(), reference.size());
      for (size_t r = 0; r < reference.size(); ++r) {
        ExpectBitwiseEqual(report.aggregates[r], reference[r]);
      }
    }
  }
}

TEST(StaleRoundsTest, CrossSiteReuseKeepsAggregatesBitwiseIdentical) {
  const MatrixPtr x = kernels::RandGaussian(90, 4, 17);
  StaleRoundOptions options;
  options.rounds = 3;
  options.staleness_bound = 1;
  options.aggregate_var = "gram";

  FederatedCoordinator isolated(3, SiteConfig());
  isolated.Distribute("X", x);
  const StaleRoundReport baseline = RunStaleBoundedRounds(
      isolated, RoundBlock, [&](int r) { BindRound(isolated, r); }, options);
  EXPECT_EQ(baseline.cross_site_warms, 0);

  FederatedCoordinator shared(3, SiteConfig());
  shared.Distribute("X", x);
  FabricStore store;
  options.store = &store;
  options.store_tenant = "fleet";
  const StaleRoundReport reused = RunStaleBoundedRounds(
      shared, RoundBlock, [&](int r) { BindRound(shared, r); }, options);

  // The broadcast-derived intermediate (tsmm(w)) crossed sites...
  EXPECT_GT(reused.cross_site_warms, 0);
  EXPECT_GT(store.TotalEntries(), 0u);
  EXPECT_EQ(store.CheckInvariants(), "");
  // ...and reuse is invisible in the values: bitwise-identical aggregates.
  ASSERT_EQ(reused.aggregates.size(), baseline.aggregates.size());
  for (size_t r = 0; r < baseline.aggregates.size(); ++r) {
    ExpectBitwiseEqual(reused.aggregates[r], baseline.aggregates[r]);
  }
}

// ---------------------------------------------------------------------------
// ServingFabric: routing, failover, exactly-once accounting.

TEST(ServingFabricTest, RoutesTenantsAndCompletesAcrossSites) {
  ServingFabric fabric(TestFabricConfig(2));
  std::vector<FabricTicketPtr> tickets;
  for (int t = 0; t < 6; ++t) {
    tickets.push_back(fabric.Submit(MakeWorkloadRequest(
        "tenant" + std::to_string(t), "stats", 64, 6, 11)));
  }
  for (const FabricTicketPtr& ticket : tickets) {
    const serve::RequestResult result = fabric.Resolve(ticket);
    EXPECT_EQ(result.outcome, RequestOutcome::kCompleted);
  }
  double virtual_total = 0.0;
  for (int site = 0; site < fabric.num_sites(); ++site) {
    EXPECT_TRUE(fabric.alive(site));
    virtual_total += fabric.SiteVirtualSeconds(site);
  }
  EXPECT_GT(virtual_total, 0.0);
  fabric.Shutdown();
}

TEST(ServingFabricTest, SiteKillAccountsEveryAffectedRequestExactlyOnce) {
  ServingFabric fabric(TestFabricConfig(2, /*workers=*/1));
  const int victim = fabric.SiteOf("anchor");

  // Collect tenants that route to the victim site.
  std::vector<std::string> victim_tenants;
  for (int t = 0; victim_tenants.size() < 4 && t < 256; ++t) {
    const std::string tenant = "kill" + std::to_string(t);
    if (fabric.SiteOf(tenant) == victim) victim_tenants.push_back(tenant);
  }
  ASSERT_EQ(victim_tenants.size(), 4u);

  // Freeze the victim's workers so every submit stays queued there.
  fabric.site_manager(victim).PauseForTest();
  const int64_t doubles_before = serve::RequestTicket::DoubleRecordCount();
  std::vector<FabricTicketPtr> replayable;
  std::vector<FabricTicketPtr> deadline_bound;
  for (size_t i = 0; i < victim_tenants.size(); ++i) {
    serve::ScriptRequest request =
        MakeWorkloadRequest(victim_tenants[i], "stats", 48, 5, 3);
    if (i < 2) {
      replayable.push_back(fabric.Submit(request));
    } else {
      request.deadline_ms = 60000;  // Deadline-bearing: shed, not replayed.
      deadline_bound.push_back(fabric.Submit(request));
    }
  }

  const RebalanceReport report = fabric.KillSite(victim);
  EXPECT_FALSE(fabric.alive(victim));
  EXPECT_EQ(report.affected, 4);
  // The exactly-once contract: nothing dropped, nothing double-counted.
  EXPECT_EQ(report.completed + report.shed + report.failed_over,
            report.affected);
  EXPECT_EQ(report.shed, 2);
  EXPECT_EQ(report.failed_over, 2);

  for (const FabricTicketPtr& ticket : replayable) {
    const serve::RequestResult result = fabric.Resolve(ticket);
    EXPECT_EQ(result.outcome, RequestOutcome::kCompleted);
    EXPECT_TRUE(ticket->failed_over);
    EXPECT_NE(ticket->site, victim);
  }
  for (const FabricTicketPtr& ticket : deadline_bound) {
    EXPECT_EQ(fabric.Resolve(ticket).outcome, RequestOutcome::kRejected);
  }
  EXPECT_EQ(serve::RequestTicket::DoubleRecordCount(), doubles_before);
  fabric.Shutdown();
}

TEST(ServingFabricTest, KillRewarmsSurvivorAndRejoinRestoresHome) {
  TempDir dir("fabric-rejoin");
  FabricConfig config = TestFabricConfig(2);
  config.persist_root = dir.path();
  ServingFabric fabric(config);

  const std::string tenant = "alice";
  const int home = fabric.SiteOf(tenant);
  EXPECT_EQ(fabric.Resolve(
                fabric.Submit(MakeWorkloadRequest(tenant, "ridge", 64, 6, 5)))
                .outcome,
            RequestOutcome::kCompleted);
  // The completed request's deterministic intermediates reached the fabric
  // tier (published from the site store on resolve).
  EXPECT_GT(fabric.store().PartitionEntries(tenant), 0u);

  const RebalanceReport kill = fabric.KillSite(home);
  bool tenant_moved = false;
  for (const TenantMove& move : kill.moves) {
    tenant_moved = tenant_moved || move.tenant == tenant;
  }
  EXPECT_TRUE(tenant_moved);
  EXPECT_GT(kill.rewarmed_entries, 0);
  const int refuge = fabric.SiteOf(tenant);
  EXPECT_NE(refuge, home);

  // The survivor serves the tenant warm: the re-warmed entries hit.
  const serve::RequestResult after = fabric.Resolve(
      fabric.Submit(MakeWorkloadRequest(tenant, "ridge", 64, 6, 5)));
  EXPECT_EQ(after.outcome, RequestOutcome::kCompleted);
  EXPECT_GT(after.warmed_entries, 0);
  EXPECT_GT(after.cross_session_hits, 0);

  const RebalanceReport rejoin = fabric.RejoinSite(home);
  EXPECT_TRUE(fabric.alive(home));
  EXPECT_EQ(fabric.SiteOf(tenant), home);
  bool tenant_back = false;
  for (const TenantMove& move : rejoin.moves) {
    tenant_back = tenant_back || (move.tenant == tenant && move.to == home);
  }
  EXPECT_TRUE(tenant_back);
  EXPECT_EQ(fabric.Resolve(
                fabric.Submit(MakeWorkloadRequest(tenant, "ridge", 64, 6, 5)))
                .outcome,
            RequestOutcome::kCompleted);
  fabric.Shutdown();
}

TEST(ServingFabricTest, CrossTenantIsolationHoldsAcrossSites) {
  ServingFabric fabric(TestFabricConfig(2));
  EXPECT_EQ(fabric.Resolve(
                fabric.Submit(MakeWorkloadRequest("left", "ridge", 64, 6, 3)))
                .outcome,
            RequestOutcome::kCompleted);
  EXPECT_GT(fabric.store().PartitionEntries("left"), 0u);
  EXPECT_EQ(fabric.store().PartitionEntries("right"), 0u);

  // An identically-shaped request from another tenant shares lineage keys
  // (stable tenant-free input ids) but must never see the other tenant's
  // partition -- nothing is warmed for it anywhere in the fabric.
  const serve::RequestResult result = fabric.Resolve(
      fabric.Submit(MakeWorkloadRequest("right", "ridge", 64, 6, 3)));
  EXPECT_EQ(result.outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(result.warmed_entries, 0);
  EXPECT_EQ(result.cross_session_hits, 0);
  fabric.Shutdown();
}

}  // namespace
}  // namespace memphis::fabric
