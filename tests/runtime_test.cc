#include <gtest/gtest.h>

#include "common/status.h"
#include "core/system.h"
#include "lineage/lineage_serde.h"
#include "matrix/kernels.h"
#include "matrix/nn_kernels.h"
#include "runtime/recompute.h"

namespace memphis {
namespace {

using compiler::HopDag;
using compiler::HopPtr;

SystemConfig ModeConfig(ReuseMode mode) {
  SystemConfig config;
  config.reuse_mode = mode;
  return config;
}

/// Builds beta = solve(t(X)%*%X + diag(reg*ones), t(t(y)%*%X)).
std::shared_ptr<compiler::BasicBlock> RidgeBlock(size_t cols) {
  auto block = compiler::MakeBasicBlock();
  HopDag& dag = block->dag();
  auto x = dag.Read("X");
  auto y = dag.Read("y");
  auto reg = dag.Read("reg");
  auto mm = dag.Op("matmult", {dag.Op("transpose", {x}), x});
  auto ones = dag.Op("rand", {}, {static_cast<double>(cols), 1, 1, 1, 1, 3});
  auto a = dag.Op("+", {mm, dag.Op("diag", {dag.Op("*", {ones, reg})})});
  auto b = dag.Op("transpose",
                  {dag.Op("matmult", {dag.Op("transpose", {y}), x})});
  dag.Write("beta", dag.Op("solve", {a, b}));
  return block;
}

MatrixPtr ReferenceRidge(const MatrixBlock& x, const MatrixBlock& y,
                         double reg) {
  auto xt = kernels::Transpose(x);
  auto mm = kernels::MatMult(*xt, x);
  auto a = kernels::Binary(
      kernels::BinaryOp::kAdd, *mm,
      *kernels::Diag(*MatrixBlock::Create(x.cols(), 1, reg)));
  auto b = kernels::MatMult(*xt, y);
  return kernels::Solve(*a, *b);
}

TEST(ExecutorTest, ProducesCorrectResults) {
  MemphisSystem system(ModeConfig(ReuseMode::kMemphis));
  auto x = kernels::RandGaussian(300, 8, 1);
  auto y = kernels::RandGaussian(300, 1, 2);
  system.ctx().BindMatrix("X", x);
  system.ctx().BindMatrix("y", y);
  system.ctx().BindScalar("reg", 0.5);
  auto block = RidgeBlock(8);
  system.Run(*block);
  EXPECT_TRUE(system.ctx().FetchMatrix("beta")->ApproxEquals(
      *ReferenceRidge(*x, *y, 0.5), 1e-8));
}

TEST(ExecutorTest, AllModesProduceIdenticalResults) {
  // Reuse must never change results: run the same 3-config sweep under
  // every mode and compare bit-for-bit against Base.
  auto x = kernels::RandGaussian(200, 6, 3);
  auto y = kernels::RandGaussian(200, 1, 4);
  std::vector<MatrixPtr> reference;
  for (ReuseMode mode :
       {ReuseMode::kNone, ReuseMode::kTraceOnly, ReuseMode::kProbeOnly,
        ReuseMode::kLima, ReuseMode::kHelix, ReuseMode::kMemphis}) {
    MemphisSystem system(ModeConfig(mode));
    system.ctx().BindMatrix("X", x);
    system.ctx().BindMatrix("y", y);
    auto block = RidgeBlock(6);
    std::vector<MatrixPtr> results;
    for (double reg : {0.1, 0.5, 0.1, 0.1}) {
      system.ctx().BindScalar("reg", reg);
      system.Run(*block);
      results.push_back(system.ctx().FetchMatrix("beta"));
    }
    if (reference.empty()) {
      reference = results;
    } else {
      for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_TRUE(results[i]->ApproxEquals(*reference[i], 1e-12))
            << "mode=" << ToString(mode) << " run=" << i;
      }
    }
  }
}

TEST(ExecutorTest, ReuseSkipsExecution) {
  MemphisSystem system(ModeConfig(ReuseMode::kMemphis));
  system.ctx().BindMatrix("X", kernels::RandGaussian(100, 4, 5));
  system.ctx().BindMatrix("y", kernels::RandGaussian(100, 1, 6));
  system.ctx().BindScalar("reg", 0.1);
  auto block = RidgeBlock(4);
  system.Run(*block);
  system.Run(*block);
  system.Run(*block);  // Past the delay factor: hits happen.
  EXPECT_GT(system.ctx().cache().stats().TotalHits(), 0);
  EXPECT_GT(system.ctx().stats().reuse_hits, 0);
}

TEST(ExecutorTest, ReuseSavesSimulatedTime) {
  auto run = [](ReuseMode mode) {
    MemphisSystem system(ModeConfig(mode));
    // Large enough that compute dominates the tracing/probing overhead
    // (for tiny inputs reuse does not pay off -- Figure 11(a)).
    system.ctx().BindMatrix("X", kernels::RandGaussian(4000, 64, 7));
    system.ctx().BindMatrix("y", kernels::RandGaussian(4000, 1, 8));
    auto block = RidgeBlock(64);
    for (int i = 0; i < 6; ++i) {
      system.ctx().BindScalar("reg", 0.25);  // Fully redundant sweep.
      system.Run(*block);
    }
    return system.ElapsedSeconds();
  };
  EXPECT_LT(run(ReuseMode::kMemphis), 0.75 * run(ReuseMode::kNone));
}

TEST(ExecutorTest, BaseModeNeverTouchesCache) {
  MemphisSystem system(ModeConfig(ReuseMode::kNone));
  system.ctx().BindMatrix("X", kernels::RandGaussian(50, 4, 9));
  system.ctx().BindMatrix("y", kernels::RandGaussian(50, 1, 10));
  system.ctx().BindScalar("reg", 1.0);
  auto block = RidgeBlock(4);
  system.Run(*block);
  system.Run(*block);
  EXPECT_EQ(system.ctx().cache().stats().probes, 0);
  EXPECT_EQ(system.ctx().cache().stats().puts, 0);
}

TEST(ExecutorTest, ProbeOnlyProbesButNeverStores) {
  MemphisSystem system(ModeConfig(ReuseMode::kProbeOnly));
  system.ctx().BindMatrix("X", kernels::RandGaussian(50, 4, 11));
  system.ctx().BindMatrix("y", kernels::RandGaussian(50, 1, 12));
  system.ctx().BindScalar("reg", 1.0);
  auto block = RidgeBlock(4);
  system.Run(*block);
  system.Run(*block);
  EXPECT_GT(system.ctx().cache().stats().probes, 0);
  EXPECT_EQ(system.ctx().cache().stats().puts, 0);
  EXPECT_EQ(system.ctx().cache().stats().TotalHits(), 0);
}

TEST(ExecutorTest, SparkPathMatchesLocalResults) {
  // Large input -> Spark placement; results must match a local run.
  auto x = kernels::RandGaussian(3000, 40, 13);  // ~960 KB > 7 KB op memory?
  SystemConfig config = ModeConfig(ReuseMode::kNone);
  // Shrink operation memory so X lands on Spark.
  config.operation_memory = 512ull << 10 << 10;  // After 1/1024 scale: 512KB.
  MemphisSystem spark_system(config);
  spark_system.ctx().BindMatrix("X", x);
  auto block = compiler::MakeBasicBlock();
  {
    HopDag& dag = block->dag();
    auto in = dag.Read("X");
    auto scaled = dag.Op("*", {in, dag.Literal(2.0)});
    dag.Write("out", dag.Op("colSums", {dag.Op("relu", {scaled})}));
  }
  spark_system.Run(*block);
  auto expected = kernels::ColSums(
      *kernels::Relu(*kernels::ScalarOp(kernels::BinaryOp::kMul, *x, 2.0)));
  // The block output stays distributed; fetching it triggers the job.
  EXPECT_TRUE(
      spark_system.ctx().FetchMatrix("out")->ApproxEquals(*expected, 1e-9));
  EXPECT_GT(spark_system.ctx().spark().stats().jobs, 0);
}

TEST(ExecutorTest, TsmmOnSparkMatchesLocal) {
  auto x = kernels::RandGaussian(4000, 16, 14);
  SystemConfig config = ModeConfig(ReuseMode::kNone);
  config.operation_memory = 256ull << 20;  // 256 KB scaled.
  MemphisSystem system(config);
  system.ctx().BindMatrix("X", x);
  auto block = compiler::MakeBasicBlock();
  {
    HopDag& dag = block->dag();
    auto in = dag.Read("X");
    dag.Write("mm", dag.Op("matmult", {dag.Op("transpose", {in}), in}));
  }
  system.Run(*block);
  auto expected = kernels::MatMult(*kernels::Transpose(*x), *x);
  EXPECT_TRUE(system.ctx().FetchMatrix("mm")->ApproxEquals(*expected, 1e-8));
}

TEST(ExecutorTest, BroadcastMatmultOnSpark) {
  // y^T X with X distributed: the Figure 2(b) pattern.
  auto x = kernels::RandGaussian(4000, 16, 15);
  auto y = kernels::RandGaussian(4000, 1, 16);
  SystemConfig config = ModeConfig(ReuseMode::kNone);
  config.operation_memory = 256ull << 20;
  MemphisSystem system(config);
  system.ctx().BindMatrix("X", x);
  system.ctx().BindMatrix("y", y);
  auto block = compiler::MakeBasicBlock();
  {
    HopDag& dag = block->dag();
    auto in = dag.Read("X");
    auto yv = dag.Read("y");
    dag.Write("b", dag.Op("transpose",
                          {dag.Op("matmult", {dag.Op("transpose", {yv}), in})}));
  }
  system.Run(*block);
  auto expected = kernels::MatMult(*kernels::Transpose(*x), *y);
  EXPECT_TRUE(system.ctx().FetchMatrix("b")->ApproxEquals(*expected, 1e-8));
}

TEST(ExecutorTest, GpuPathMatchesLocalResults) {
  auto a = kernels::RandGaussian(256, 256, 17);
  auto b = kernels::RandGaussian(256, 256, 18);
  SystemConfig config = ModeConfig(ReuseMode::kNone);
  config.gpu_offload_min_flops = 1e5;  // Force GPU placement.
  MemphisSystem system(config);
  system.ctx().BindMatrix("A", a);
  system.ctx().BindMatrix("B", b);
  auto block = compiler::MakeBasicBlock();
  {
    HopDag& dag = block->dag();
    dag.Write("c", dag.Op("relu", {dag.Op("matmult",
                                          {dag.Read("A"), dag.Read("B")})}));
  }
  system.Run(*block);
  EXPECT_GT(system.ctx().stats().gpu_instructions, 0);
  auto expected = kernels::Relu(*kernels::MatMult(*a, *b));
  EXPECT_TRUE(system.ctx().FetchMatrix("c")->ApproxEquals(*expected, 1e-9));
}

TEST(ExecutorTest, AsyncOperatorsOverlapRemoteWork) {
  // With prefetch, two independent Spark jobs overlap with local work:
  // total time strictly below the no-async run.
  auto x = kernels::RandGaussian(4000, 16, 19);
  auto run = [&](bool async_ops) {
    SystemConfig config = ModeConfig(ReuseMode::kNone);
    config.operation_memory = 256ull << 20;
    config.async_operators = async_ops;
    config.max_parallelize = async_ops;
    MemphisSystem system(config);
    system.ctx().BindMatrix("X", x);
    auto block = compiler::MakeBasicBlock();
    {
      HopDag& dag = block->dag();
      auto in = dag.Read("X");
      auto j1 = dag.Op("colSums", {dag.Op("relu", {in})});
      auto j2 = dag.Op("colSums", {dag.Op("*", {in, dag.Literal(3.0)})});
      dag.Write("r", dag.Op("solve", {dag.Op("diag", {dag.Op("transpose",
                                                              {j1})}),
                                      dag.Op("transpose", {j2})}));
    }
    system.Run(*block);
    return system.ElapsedSeconds();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(ExecutorTest, FunctionLevelReuse) {
  MemphisSystem system(ModeConfig(ReuseMode::kHelix));
  auto& ctx = system.ctx();
  ctx.BindMatrix("X", kernels::RandGaussian(64, 4, 20));
  int body_runs = 0;
  auto body = [&] {
    ++body_runs;
    auto block = compiler::MakeBasicBlock();
    auto& dag = block->dag();
    dag.Write("out", dag.Op("tsmm", {dag.Read("X")}));
    system.Run(*block);
  };
  EXPECT_FALSE(system.CallFunction("f", {"X"}, {"out"}, body));
  MatrixPtr first = ctx.FetchMatrix("out");
  EXPECT_TRUE(system.CallFunction("f", {"X"}, {"out"}, body));  // Hit.
  EXPECT_EQ(body_runs, 1);
  EXPECT_TRUE(ctx.FetchMatrix("out")->ApproxEquals(*first));
  // Different argument -> miss.
  ctx.BindMatrix("X", kernels::RandGaussian(64, 4, 21));
  EXPECT_FALSE(system.CallFunction("f", {"X"}, {"out"}, body));
  EXPECT_EQ(body_runs, 2);
}

TEST(ExecutorTest, HelixModeSkipsInstructionLevelReuse) {
  MemphisSystem system(ModeConfig(ReuseMode::kHelix));
  system.ctx().BindMatrix("X", kernels::RandGaussian(50, 4, 22));
  system.ctx().BindMatrix("y", kernels::RandGaussian(50, 1, 23));
  system.ctx().BindScalar("reg", 1.0);
  auto block = RidgeBlock(4);
  system.Run(*block);
  system.Run(*block);
  system.Run(*block);
  EXPECT_EQ(system.ctx().stats().reuse_hits, 0);  // Only CallFunction reuses.
}

TEST(ExecutorTest, EvictBlockDrainsGpuFreeList) {
  SystemConfig config = ModeConfig(ReuseMode::kMemphis);
  config.gpu_offload_min_flops = 1e5;
  MemphisSystem system(config);
  system.ctx().BindMatrix("A", kernels::RandGaussian(128, 128, 24));
  compiler::Program program;
  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    dag.Write("c", dag.Op("matmult", {dag.Read("A"), dag.Read("A")}));
  }
  program.blocks.push_back(block);
  program.blocks.push_back(compiler::MakeEvictBlock(100.0));
  program.tuned = true;  // Keep the hand-built structure.
  system.Run(program);
  EXPECT_EQ(system.ctx().gpu_cache().FreeListBytes(), 0u);
}

TEST(ExecutorTest, LoopProgramBindsLoopVariable) {
  MemphisSystem system(ModeConfig(ReuseMode::kNone));
  system.ctx().BindMatrix("X", kernels::RandGaussian(16, 2, 25));
  compiler::Program program;
  auto loop = compiler::MakeForBlock("i", {1, 2, 3});
  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    dag.Write("acc", dag.Op("sum", {dag.Op("*", {dag.Read("X"),
                                                 dag.Read("i")})}));
  }
  loop->body = {block};
  program.blocks.push_back(loop);
  system.Run(program);
  // Last iteration: sum(X * 3).
  EXPECT_NEAR(system.ctx().FetchScalar("acc"),
              3.0 * kernels::Sum(*system.ctx().FetchMatrix("X")), 1e-9);
}

TEST(ExecutorTest, RecompilesWhenShapesChange) {
  MemphisSystem system(ModeConfig(ReuseMode::kNone));
  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    dag.Write("s", dag.Op("sum", {dag.Read("X")}));
  }
  system.ctx().BindMatrix("X", kernels::RandGaussian(8, 2, 26));
  system.Run(*block);
  const int64_t recompiles = system.ctx().stats().recompilations.value();
  system.Run(*block);  // Same shape: cached compile.
  EXPECT_EQ(system.ctx().stats().recompilations, recompiles);
  system.ctx().BindMatrix("X", kernels::RandGaussian(16, 2, 27));
  system.Run(*block);  // Shape changed: recompiled.
  EXPECT_EQ(system.ctx().stats().recompilations, recompiles + 1);
}

TEST(ExecutorTest, DelayedCachingDefersStorage) {
  SystemConfig config = ModeConfig(ReuseMode::kMemphis);
  config.delayed_caching = true;
  config.default_delay_factor = 3;
  config.auto_parameter_tuning = false;  // Keep the explicit delay factor.
  MemphisSystem system(config);
  system.ctx().BindMatrix("X", kernels::RandGaussian(64, 4, 28));
  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    dag.Write("mm", dag.Op("tsmm", {dag.Read("X")}));
  }
  system.Run(*block);
  EXPECT_EQ(system.ctx().cache().stats().puts, 0);  // Placeholder only.
  system.Run(*block);
  system.Run(*block);
  EXPECT_GT(system.ctx().cache().stats().puts, 0);  // Now cached.
  const auto hits = system.ctx().cache().stats().TotalHits();
  system.Run(*block);
  EXPECT_GT(system.ctx().cache().stats().TotalHits(), hits);
}

TEST(RecomputeTest, ReplaysTraceExactly) {
  MemphisSystem system(ModeConfig(ReuseMode::kMemphis));
  auto x = kernels::RandGaussian(100, 4, 29);
  auto y = kernels::RandGaussian(100, 1, 30);
  system.ctx().BindMatrix("X", x);
  system.ctx().BindMatrix("y", y);
  system.ctx().BindScalar("reg", 0.7);
  auto block = RidgeBlock(4);
  system.Run(*block);
  MatrixPtr beta = system.ctx().FetchMatrix("beta");
  const std::string log =
      SerializeLineage(system.ctx().lineage().Get("beta"));
  MatrixPtr replayed = Recompute(log, {{"X", x}, {"y", y}});
  EXPECT_TRUE(replayed->ApproxEquals(*beta, 1e-12));
}

TEST(RecomputeTest, MissingExternalInputThrows) {
  auto trace = LineageItem::Create("relu", "",
                                   {LineageItem::Leaf("extern", "gone")});
  EXPECT_THROW(RecomputeTrace(trace, {}), MemphisError);
}

TEST(RecomputeTest, UnknownOpcodeThrows) {
  auto trace = LineageItem::Create("warp", "",
                                   {LineageItem::Leaf("literal", "1")});
  EXPECT_THROW(RecomputeTrace(trace, {}), MemphisError);
}

TEST(ExecutorTest, CompactionReducesProbeCost) {
  auto run = [](bool compaction) {
    SystemConfig config = ModeConfig(ReuseMode::kMemphis);
    config.compaction = compaction;
    config.delayed_caching = false;
    MemphisSystem system(config);
    system.ctx().BindMatrix("X", kernels::RandGaussian(64, 4, 31));
    // Long dependent chain: without compaction, probes pay per-level cost.
    auto block = compiler::MakeBasicBlock();
    {
      auto& dag = block->dag();
      HopPtr current = dag.Read("X");
      for (int i = 0; i < 30; ++i) {
        current = dag.Op("+", {current, dag.Literal(1.0 + i)});
      }
      dag.Write("out", current);
    }
    for (int i = 0; i < 5; ++i) system.Run(*block);
    return system.ctx().stats().probe_time.value();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(ExecutorTest, VariableRebindReleasesGpuReferences) {
  SystemConfig config = ModeConfig(ReuseMode::kNone);
  config.gpu_offload_min_flops = 1e5;
  config.gpu_recycling = true;
  config.gpu_eager_free = false;
  MemphisSystem system(config);
  auto& ctx = system.ctx();
  ctx.BindMatrix("A", kernels::RandGaussian(128, 128, 32));
  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    dag.Write("c", dag.Op("matmult", {dag.Read("A"), dag.Read("A")}));
  }
  system.Run(*block);
  ASSERT_NE(ctx.GetVar("c").gpu, nullptr);
  EXPECT_EQ(ctx.GetVar("c").gpu->ref_count, 1);
  system.Run(*block);  // Rebinds "c": the old pointer moves to the free list.
  EXPECT_GT(ctx.gpu_cache().free_list_size(), 0u);
}

}  // namespace
}  // namespace memphis
