#include <gtest/gtest.h>

#include "lineage/lineage_query.h"

namespace memphis {
namespace {

LineageItemPtr Example() {
  auto x = LineageItem::Leaf("extern", "X");
  auto y = LineageItem::Leaf("extern", "y");
  auto xt = LineageItem::Create("transpose", "", {x});
  auto mm = LineageItem::Create("matmult", "", {xt, x});
  auto b = LineageItem::Create("matmult", "", {xt, y});
  return LineageItem::Create("solve", "", {mm, b});
}

TEST(LineageQueryTest, FindByOpcode) {
  auto root = Example();
  EXPECT_EQ(FindByOpcode(root, "matmult").size(), 2u);
  EXPECT_EQ(FindByOpcode(root, "transpose").size(), 1u);  // Shared: once.
  EXPECT_EQ(FindByOpcode(root, "conv2d").size(), 0u);
  EXPECT_TRUE(FindByOpcode(nullptr, "x").empty());
}

TEST(LineageQueryTest, OpcodeHistogram) {
  auto histogram = OpcodeHistogram(Example());
  EXPECT_EQ(histogram["extern"], 2u);
  EXPECT_EQ(histogram["matmult"], 2u);
  EXPECT_EQ(histogram["solve"], 1u);
}

TEST(LineageQueryTest, ExternalInputsDeduplicated) {
  auto inputs = ExternalInputs(Example());
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_EQ(inputs[0], "X");
  EXPECT_EQ(inputs[1], "y");
}

TEST(LineageQueryTest, DiffEqualTraces) {
  auto diff = DiffLineage(Example(), Example());
  EXPECT_TRUE(diff.equal);
  EXPECT_EQ(diff.left, nullptr);
}

TEST(LineageQueryTest, DiffFindsShallowDivergence) {
  auto x = LineageItem::Leaf("extern", "X");
  auto a = LineageItem::Create("solve", "",
                               {LineageItem::Create("relu", "", {x}), x});
  auto b = LineageItem::Create("solve", "",
                               {LineageItem::Create("exp", "", {x}), x});
  auto diff = DiffLineage(a, b);
  EXPECT_FALSE(diff.equal);
  EXPECT_EQ(diff.reason, "opcode");
  EXPECT_EQ(diff.left->opcode(), "relu");
  EXPECT_EQ(diff.right->opcode(), "exp");
}

TEST(LineageQueryTest, DiffDetectsDataChange) {
  auto x = LineageItem::Leaf("extern", "X");
  auto a = LineageItem::Create("dropout", "0.5,1", {x});
  auto b = LineageItem::Create("dropout", "0.5,2", {x});
  auto diff = DiffLineage(a, b);
  EXPECT_EQ(diff.reason, "data");
}

TEST(LineageQueryTest, DiffDetectsArityChange) {
  auto x = LineageItem::Leaf("extern", "X");
  auto a = LineageItem::Create("op", "", {x});
  auto b = LineageItem::Create("op", "", {x, x});
  EXPECT_EQ(DiffLineage(a, b).reason, "arity");
}

TEST(LineageQueryTest, FormatSharedNodesOnce) {
  const std::string text = FormatLineage(Example());
  // The shared transpose prints once as #id and once as a ^id reference.
  EXPECT_NE(text.find("transpose"), std::string::npos);
  EXPECT_NE(text.find("^"), std::string::npos);
  EXPECT_NE(text.find("solve"), std::string::npos);
}

TEST(LineageQueryTest, FormatTruncates) {
  auto node = LineageItem::Leaf("extern", "X");
  for (int i = 0; i < 500; ++i) {
    node = LineageItem::Create("op", std::to_string(i), {node});
  }
  const std::string text = FormatLineage(node, 50);
  EXPECT_NE(text.find("truncated"), std::string::npos);
}

}  // namespace
}  // namespace memphis
