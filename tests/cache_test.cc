#include <gtest/gtest.h>

#include "cache/lineage_cache.h"

#include <filesystem>
#include <memory>

#include "common/status.h"
#include "matrix/kernels.h"
#include "testing_util.h"

namespace memphis {
namespace {

SystemConfig TestConfig() {
  SystemConfig config;
  config.mem_scale = 1.0;
  config.num_executors = 2;
  config.cores_per_executor = 4;
  config.executor_memory = 8ull << 20;
  config.driver_lineage_cache = 1 << 20;  // 1 MB driver cache.
  config.gpu_memory = 1 << 20;            // 1 MB device.
  config.lazy_materialize_after_misses = 2;
  return config;
}

class CacheTest : public ::testing::Test {
 protected:
  CacheTest()
      : config_(TestConfig()),
        spark_(config_, &cost_model_),
        gpu_(config_.gpu_memory, &cost_model_),
        gpu_cache_(&gpu_, /*recycling_enabled=*/true),
        cache_(config_, &cost_model_, &spark_, &gpu_cache_) {}

  LineageItemPtr Key(const std::string& tag) {
    return LineageItem::Create("op", tag, {LineageItem::Leaf("extern", "X")});
  }

  SystemConfig config_;
  sim::CostModel cost_model_;
  spark::SparkContext spark_;
  gpu::GpuContext gpu_;
  GpuCacheManager gpu_cache_;
  LineageCache cache_;
};

TEST_F(CacheTest, HostPutAndReuse) {
  double now = 0.0;
  auto value = kernels::Rand(10, 10, 0, 1, 1.0, 1);
  auto key = Key("a");
  EXPECT_NE(cache_.PutHost(key, value, 1.0, /*delay=*/1, &now), nullptr);
  CacheEntryPtr entry = cache_.Reuse(Key("a"), &now);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->host_value, value);
  EXPECT_EQ(entry->hits, 1);
  EXPECT_EQ(cache_.stats().hits_host, 1);
}

TEST_F(CacheTest, MissOnUnknownKey) {
  double now = 0.0;
  EXPECT_EQ(cache_.Reuse(Key("missing"), &now), nullptr);
  EXPECT_EQ(cache_.stats().misses, 1);
}

TEST_F(CacheTest, StructuralKeysMatchAcrossObjects) {
  double now = 0.0;
  cache_.PutHost(Key("same"), kernels::Rand(2, 2, 0, 1, 1.0, 2), 1.0, 1, &now);
  // A structurally identical but distinct key object hits.
  EXPECT_NE(cache_.Reuse(Key("same"), &now), nullptr);
}

TEST_F(CacheTest, DelayedCachingCountdown) {
  double now = 0.0;
  auto key = Key("delayed");
  auto value = kernels::Rand(2, 2, 0, 1, 1.0, 3);
  // delay=3: first PUT creates a placeholder only.
  EXPECT_EQ(cache_.PutHost(key, value, 1.0, 3, &now), nullptr);
  EXPECT_EQ(cache_.Reuse(Key("delayed"), &now), nullptr);  // Still a miss.
  EXPECT_EQ(cache_.PutHost(Key("delayed"), value, 1.0, 3, &now), nullptr);
  EXPECT_EQ(cache_.Reuse(Key("delayed"), &now), nullptr);
  // Third repetition: the object is actually stored.
  EXPECT_NE(cache_.PutHost(Key("delayed"), value, 1.0, 3, &now), nullptr);
  EXPECT_NE(cache_.Reuse(Key("delayed"), &now), nullptr);
}

TEST_F(CacheTest, ScalarEntries) {
  double now = 0.0;
  cache_.PutScalar(Key("s"), 42.0, 0.1, 1, &now);
  CacheEntryPtr entry = cache_.Reuse(Key("s"), &now);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->scalar_value, 42.0);
  EXPECT_EQ(entry->kind, CacheKind::kScalar);
}

TEST_F(CacheTest, HostEvictionSpillsAndRestores) {
  double now = 0.0;
  // Fill the 1 MB cache with 200 KB entries -> evictions to disk.
  for (int i = 0; i < 8; ++i) {
    cache_.PutHost(Key("big" + std::to_string(i)),
                   kernels::Rand(160, 160, 0, 1, 1.0, i), /*cost=*/1.0 + i, 1,
                   &now);
  }
  EXPECT_GT(cache_.host_cache().num_spills(), 0);
  EXPECT_LE(cache_.host_cache().used_bytes(), config_.driver_lineage_cache);
  // A spilled entry still hits (restored from disk, charging time).
  const double before = now;
  CacheEntryPtr entry = cache_.Reuse(Key("big0"), &now);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->status, CacheStatus::kCached);
  EXPECT_GT(now, before);
  EXPECT_GT(cache_.host_cache().num_restores(), 0);
}

TEST_F(CacheTest, ObjectLargerThanCacheNotAdmitted) {
  double now = 0.0;
  auto huge = kernels::Rand(600, 600, 0, 1, 1.0, 4);  // 2.9 MB > 1 MB.
  EXPECT_EQ(cache_.PutHost(Key("huge"), huge, 1.0, 1, &now), nullptr);
  EXPECT_EQ(cache_.Reuse(Key("huge"), &now), nullptr);
}

TEST_F(CacheTest, RddRegistrationPersistsLazily) {
  double now = 0.0;
  auto m = kernels::Rand(100, 10, 0, 1, 1.0, 5);
  auto rdd = spark_.Parallelize("X", m, 2);
  cache_.PutRdd(Key("rdd"), rdd, 5.0, 1, StorageLevel::kMemoryAndDisk, now);
  EXPECT_TRUE(rdd->persisted());
  EXPECT_FALSE(spark_.IsMaterialized(rdd));  // Lazy until a job runs.
  CacheEntryPtr entry = cache_.Reuse(Key("rdd"), &now);
  ASSERT_NE(entry, nullptr);  // Unmaterialized RDDs are still reused.
  EXPECT_EQ(entry->rdd, rdd);
}

TEST_F(CacheTest, SparkEvictionUsesCostSizeScore) {
  double now = 0.0;
  // Budget: 2 executors * 8MB * 0.6 * 0.5 * 0.8 = ~3.8 MB of reuse storage.
  // Register three 1.6 MB RDDs; the cheapest-per-byte must be evicted.
  auto make = [&](uint64_t seed) {
    auto m = kernels::Rand(20000, 10, 0, 1, 1.0, seed);
    return spark_.Parallelize("X", m, 2);
  };
  auto cheap = make(1);
  auto costly1 = make(2);
  auto costly2 = make(3);
  cache_.PutRdd(Key("cheap"), cheap, /*cost=*/0.001, 1,
                StorageLevel::kMemoryOnly, now);
  cache_.PutRdd(Key("costly1"), costly1, 100.0, 1, StorageLevel::kMemoryOnly,
                now);
  cache_.PutRdd(Key("costly2"), costly2, 100.0, 1, StorageLevel::kMemoryOnly,
                now);
  EXPECT_GT(cache_.spark_manager().stats().rdds_evicted, 0);
  EXPECT_FALSE(cheap->persisted());     // Evicted (lowest score).
  EXPECT_TRUE(costly2->persisted());
  EXPECT_EQ(cache_.Reuse(Key("cheap"), &now), nullptr);  // Entry dropped.
}

TEST_F(CacheTest, AsyncMaterializationAfterKMisses) {
  double now = 0.0;
  auto m = kernels::Rand(100, 10, 0, 1, 1.0, 6);
  auto rdd = spark_.Parallelize("X", m, 2);
  cache_.PutRdd(Key("pending"), rdd, 5.0, 1, StorageLevel::kMemoryAndDisk,
                now);
  // Another reused entry ticks the miss counter of the pending RDD; with
  // k=2, the second reuse triggers the async count() job.
  cache_.PutHost(Key("other"), kernels::Rand(2, 2, 0, 1, 1.0, 7), 1.0, 1,
                 &now);
  cache_.Reuse(Key("other"), &now);
  EXPECT_FALSE(spark_.IsMaterialized(rdd));
  cache_.Reuse(Key("other"), &now);
  EXPECT_TRUE(spark_.IsMaterialized(rdd));
  EXPECT_EQ(cache_.spark_manager().stats().async_materializations, 1);
}

TEST_F(CacheTest, LazyCleanupDestroysUpstreamBroadcasts) {
  double now = 0.0;
  auto m = kernels::Rand(100, 10, 0, 1, 1.0, 8);
  auto w = kernels::Rand(10, 10, 0, 1, 1.0, 9);
  auto x = spark_.Parallelize("X", m, 2);
  auto broadcast = spark_.CreateBroadcast(w);
  auto mapped = spark::Rdd::Narrow(
      "mapmm", {x}, 100, 10,
      [w](const std::vector<const spark::Partition*>& in) {
        return kernels::MatMult(*in[0]->data, *w);
      });
  mapped->AddBroadcastDep(broadcast);
  cache_.PutRdd(Key("mm"), mapped, 5.0, 1, StorageLevel::kMemoryAndDisk, now);
  spark_.Count(mapped, now);  // Materialize.
  EXPECT_FALSE(broadcast->destroyed());
  cache_.Reuse(Key("mm"), &now);  // Reuse runs the lazy GC pass.
  EXPECT_TRUE(broadcast->destroyed());
  EXPECT_GT(cache_.spark_manager().stats().broadcasts_destroyed, 0);
}

TEST_F(CacheTest, LazyCleanupProtectsPendingRdds) {
  double now = 0.0;
  auto m = kernels::Rand(100, 10, 0, 1, 1.0, 10);
  auto w = kernels::Rand(10, 10, 0, 1, 1.0, 11);
  auto x = spark_.Parallelize("X", m, 2);
  auto broadcast = spark_.CreateBroadcast(w);
  auto mapped = spark::Rdd::Narrow(
      "mapmm", {x}, 100, 10,
      [w](const std::vector<const spark::Partition*>& in) {
        return kernels::MatMult(*in[0]->data, *w);
      });
  mapped->AddBroadcastDep(broadcast);
  // Materialized consumer AND a pending (unmaterialized) consumer that still
  // needs the broadcast.
  auto downstream = spark::Rdd::Narrow(
      "down", {mapped}, 100, 10,
      [](const std::vector<const spark::Partition*>& in) {
        return in[0]->data;
      });
  cache_.PutRdd(Key("down"), downstream, 5.0, 1, StorageLevel::kMemoryAndDisk,
                now);
  cache_.PutHost(Key("o"), kernels::Rand(2, 2, 0, 1, 1.0, 12), 1.0, 1, &now);
  cache_.Reuse(Key("o"), &now);
  EXPECT_FALSE(broadcast->destroyed());  // Protected by the pending RDD.
}

// --- GPU cache manager (Algorithm 1 / Eq. 2) ---------------------------------

TEST_F(CacheTest, GpuAllocateFastPath) {
  double now = 0.0;
  auto object = gpu_cache_.Allocate(1024, &now);
  EXPECT_EQ(object->ref_count, 1);
  EXPECT_FALSE(object->in_free_list);
}

TEST_F(CacheTest, GpuReleaseMovesToFreeList) {
  double now = 0.0;
  auto object = gpu_cache_.Allocate(1024, &now);
  gpu_cache_.Release(object, &now);
  EXPECT_TRUE(object->in_free_list);
  EXPECT_EQ(gpu_cache_.free_list_size(), 1u);
  EXPECT_EQ(gpu_.stats().frees, 0);  // No cudaFree: recyclable.
}

TEST_F(CacheTest, GpuRefCountSharing) {
  double now = 0.0;
  auto object = gpu_cache_.Allocate(1024, &now);
  gpu_cache_.AddRef(object);
  gpu_cache_.Release(object, &now);
  EXPECT_FALSE(object->in_free_list);  // Still one live reference.
  gpu_cache_.Release(object, &now);
  EXPECT_TRUE(object->in_free_list);
}

TEST_F(CacheTest, GpuExactSizeRecyclingSkipsCudaMalloc) {
  double now = 0.0;
  // Fill the 1 MB device, free everything, then allocate the same size.
  std::vector<GpuCacheObjectPtr> objects;
  for (int i = 0; i < 8; ++i) {
    objects.push_back(gpu_cache_.Allocate(128 * 1024, &now));
  }
  for (auto& object : objects) gpu_cache_.Release(object, &now);
  const int64_t mallocs_before = gpu_.stats().mallocs.value();
  auto recycled = gpu_cache_.Allocate(128 * 1024, &now);
  EXPECT_EQ(gpu_.stats().mallocs, mallocs_before);  // No cudaMalloc.
  EXPECT_EQ(gpu_cache_.stats().recycled_exact, 1);
  EXPECT_EQ(recycled->ref_count, 1);
  EXPECT_EQ(recycled->lineage, nullptr);  // Cache link invalidated.
}

TEST_F(CacheTest, GpuFreesJustLargerPointer) {
  double now = 0.0;
  auto big = gpu_cache_.Allocate(900 * 1024, &now);
  gpu_cache_.Release(big, &now);  // 900 KB recyclable; ~124 KB truly free.
  // 200 KB does not fit the remaining space and has no exact-size match:
  // Algorithm 1 frees the just-larger 900 KB pointer, then cudaMallocs.
  auto small = gpu_cache_.Allocate(200 * 1024, &now);
  EXPECT_EQ(gpu_cache_.stats().freed_larger, 1);
  EXPECT_EQ(small->buffer->bytes, 200u * 1024);
}

TEST_F(CacheTest, GpuRepeatedFreesUntilFit) {
  double now = 0.0;
  std::vector<GpuCacheObjectPtr> objects;
  for (int i = 0; i < 8; ++i) {
    objects.push_back(gpu_cache_.Allocate(128 * 1024, &now));
  }
  for (auto& object : objects) gpu_cache_.Release(object, &now);
  // 8 x 128KB free pointers; a 512KB request must free several.
  auto large = gpu_cache_.Allocate(512 * 1024, &now);
  EXPECT_GE(gpu_cache_.stats().freed_for_space, 1);
  EXPECT_EQ(large->buffer->bytes, 512u * 1024);
}

TEST_F(CacheTest, GpuOomWhenLiveVariablesFillDevice) {
  double now = 0.0;
  auto a = gpu_cache_.Allocate(512 * 1024, &now);
  auto b = gpu_cache_.Allocate(500 * 1024, &now);
  (void)a;
  (void)b;
  EXPECT_THROW(gpu_cache_.Allocate(512 * 1024, &now), GpuOutOfMemoryError);
  EXPECT_GE(gpu_cache_.stats().oom_failures, 1);
}

TEST_F(CacheTest, GpuEvictionScorePrefersStaleCheapShallow) {
  double now = 100.0;
  auto stale = gpu_cache_.Allocate(1024, &now);
  auto fresh = gpu_cache_.Allocate(1024, &now);
  auto deep_key = LineageItem::Create(
      "op", "deep",
      {LineageItem::Create("op", "", {LineageItem::Leaf("extern", "X")})});
  auto shallow_key = Key("shallow");
  // stale: old access, shallow lineage, cheap.
  gpu_cache_.Annotate(stale, shallow_key, /*cost=*/0.001, /*now=*/1.0);
  stale->last_access = 1.0;
  // fresh: recent, deep lineage, expensive.
  gpu_cache_.Annotate(fresh, deep_key, 10.0, now);
  gpu_cache_.Release(stale, &now);
  gpu_cache_.Release(fresh, &now);
  // Force a global eviction of exactly one pointer.
  gpu_cache_.EvictPercent(40.0, &now);
  EXPECT_EQ(stale->lineage, nullptr);   // Evicted.
  EXPECT_NE(fresh->lineage, nullptr);   // Kept.
}

TEST_F(CacheTest, GpuReuseMovesFreeToLive) {
  double now = 0.0;
  auto object = gpu_cache_.Allocate(1024, &now);
  gpu_cache_.Annotate(object, Key("g"), 1.0, now);
  gpu_cache_.Release(object, &now);
  EXPECT_TRUE(object->in_free_list);
  gpu_cache_.Reuse(object, now);
  EXPECT_FALSE(object->in_free_list);
  EXPECT_EQ(object->ref_count, 1);
  EXPECT_EQ(gpu_cache_.stats().reused_pointers, 1);
}

TEST_F(CacheTest, GpuPutAndReuseThroughLineageCache) {
  double now = 0.0;
  auto object = gpu_cache_.Allocate(800, &now);
  object->buffer->data = kernels::Rand(10, 10, 0, 1, 1.0, 20);
  gpu_cache_.Release(object, &now);  // Variable went out of scope.
  cache_.PutGpu(Key("gpu"), object, 2.0, 1, now);
  CacheEntryPtr entry = cache_.Reuse(Key("gpu"), &now);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->gpu, object);
  EXPECT_FALSE(object->in_free_list);  // Back in the live list.
}

TEST_F(CacheTest, RecycledGpuEntryInvalidatesOnProbe) {
  double now = 0.0;
  auto object = gpu_cache_.Allocate(800, &now);
  object->buffer->data = kernels::Rand(10, 10, 0, 1, 1.0, 21);
  cache_.PutGpu(Key("gone"), object, 2.0, 1, now);
  // Fill the remaining device memory with a live variable, then release the
  // cached pointer: the next same-size allocation must recycle it.
  auto filler = gpu_cache_.Allocate((1 << 20) - 800, &now);
  (void)filler;
  gpu_cache_.Release(object, &now);
  auto recycled = gpu_cache_.Allocate(800, &now);
  EXPECT_EQ(recycled, object);
  EXPECT_EQ(cache_.Reuse(Key("gone"), &now), nullptr);
  EXPECT_EQ(cache_.stats().invalidated_gpu, 1);
}

TEST_F(CacheTest, D2hEvictionPreservesValueInHostTier) {
  double now = 0.0;
  auto value = kernels::Rand(10, 10, 0, 1, 1.0, 22);
  auto object = gpu_cache_.Allocate(800, &now);
  object->buffer->data = value;
  cache_.PutGpu(Key("spill"), object, 2.0, 1, now);
  gpu_cache_.Release(object, &now);
  gpu_cache_.EvictPercent(100.0, &now, /*preserve_to_host=*/true);
  EXPECT_GT(gpu_cache_.stats().d2h_evictions, 0);
  // The entry survived as a host entry.
  CacheEntryPtr entry = cache_.Reuse(Key("spill"), &now);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, CacheKind::kHostMatrix);
  EXPECT_TRUE(entry->host_value->ApproxEquals(*value));
}

TEST_F(CacheTest, EagerFreeModeSkipsFreeList) {
  GpuCacheManager eager(&gpu_, /*recycling_enabled=*/false);
  double now = 0.0;
  auto object = eager.Allocate(1024, &now);
  const int64_t frees_before = gpu_.stats().frees.value();
  eager.Release(object, &now);
  EXPECT_EQ(gpu_.stats().frees, frees_before + 1);  // Immediate cudaFree.
  EXPECT_EQ(eager.free_list_size(), 0u);
}

// ---------------------------------------------------------------------------
// Durable tier wiring (the deep persistence tests live in persist_test.cc;
// these cover the cache-facing config boundaries).

/// A cache stack with the durable tier dialed by `persist_budget`.
class PersistBoundaryTest : public ::testing::Test {
 protected:
  std::unique_ptr<LineageCache> MakeCache(const std::string& dir,
                                          size_t persist_budget) {
    config_ = TestConfig();
    config_.persist_dir = dir;
    config_.persist_budget_bytes = persist_budget;
    spark_ = std::make_unique<spark::SparkContext>(config_, &cost_model_);
    gpu_ = std::make_unique<gpu::GpuContext>(config_.gpu_memory, &cost_model_);
    gpu_cache_ =
        std::make_unique<GpuCacheManager>(gpu_.get(), /*recycling_enabled=*/true);
    return std::make_unique<LineageCache>(config_, &cost_model_, spark_.get(),
                                          gpu_cache_.get());
  }

  LineageItemPtr StableKey(const std::string& id) {
    return LineageItem::Create(
        "op", id, {LineageItem::Leaf("extern", "stable:" + id)});
  }

  SystemConfig config_;
  sim::CostModel cost_model_;
  std::unique_ptr<spark::SparkContext> spark_;
  std::unique_ptr<gpu::GpuContext> gpu_;
  std::unique_ptr<GpuCacheManager> gpu_cache_;
};

TEST_F(PersistBoundaryTest, ZeroBudgetDisablesTheTier) {
  memphis::testing::TempDir dir("cache-persist-zero");
  auto cache = MakeCache(dir.path(), /*persist_budget=*/0);
  EXPECT_EQ(cache->persist_tier(), nullptr);
  double now = 0.0;
  ASSERT_NE(cache->PutHost(StableKey("a"), kernels::Rand(8, 8, 0, 1, 1.0, 1),
                           50.0, /*delay=*/1, &now),
            nullptr);
  // Harvesting with no tier is a clean no-op, and nothing hits disk.
  EXPECT_EQ(cache->HarvestToDiskNow(), 0);
  EXPECT_TRUE(std::filesystem::is_empty(dir.path()));
}

TEST_F(PersistBoundaryTest, HarvestRespectsDiskBudgetBoundary) {
  memphis::testing::TempDir dir("cache-persist-budget");
  // A budget that holds roughly two of the three harvested matrices: the
  // tier must stay at or under it, evicting oldest-first, and the overflow
  // must never corrupt the tier.
  const size_t one_record = 8 * 8 * sizeof(double) + 256;
  auto cache = MakeCache(dir.path(), 2 * one_record);
  ASSERT_NE(cache->persist_tier(), nullptr);
  double now = 0.0;
  for (const char* id : {"a", "b", "c"}) {
    ASSERT_NE(cache->PutHost(StableKey(id), kernels::Rand(8, 8, 0, 1, 1.0, 7),
                             50.0, /*delay=*/1, &now),
              nullptr);
  }
  EXPECT_GT(cache->HarvestToDiskNow(), 0);
  PersistentTier* tier = cache->persist_tier();
  EXPECT_LE(tier->LiveBytes(), 2 * one_record);
  EXPECT_GT(tier->LiveRecords(), 0u);
  EXPECT_LT(tier->LiveRecords(), 3u);  // At least one overflowed.
  EXPECT_EQ(tier->CheckInvariants(), "");
}

}  // namespace
}  // namespace memphis
