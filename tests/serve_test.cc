// Serving-layer tests: admission shedding, deadline expiry, cross-session
// reuse and cross-tenant isolation through the SharedLineageStore, the
// pool-size determinism lattice, graceful shutdown, and the exactly-once
// metrics-flush invariant. The stress test doubles as the TSan target for
// the serve subsystem (tests/CMakeLists.txt runs it with halt_on_error=1).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/shared_store.h"
#include "common/config.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "matrix/kernels.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "runtime/execution_context.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "serve/session_manager.h"
#include "serve/workloads.h"
#include "testing_util.h"

namespace memphis {
namespace {

using serve::AdmissionConfig;
using serve::AdmissionController;
using serve::MakeWorkloadRequest;
using serve::RequestOutcome;
using serve::RequestResult;
using serve::RequestTicket;
using serve::RequestTicketPtr;
using serve::ScriptRequest;
using serve::ServeConfig;
using serve::SessionManager;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Serve config sized for tests: small inputs, current pool size (so the
/// manager's one-time Resize is a no-op against other tests).
ServeConfig TestConfig(int workers) {
  ServeConfig config;
  config.workers = workers;
  config.session.cp_threads = ThreadPool::Global().num_threads();
  return config;
}

/// A stored-entry factory for SharedLineageStore unit tests: a cached host
/// matrix keyed by a stable (cross-session matchable) extern leaf.
CacheEntryPtr MakeHostEntry(const std::string& id, size_t rows, size_t cols,
                            double compute_cost) {
  auto entry = std::make_shared<CacheEntry>();
  entry->key = LineageItem::Leaf("extern", "stable:" + id);
  entry->kind = CacheKind::kHostMatrix;
  entry->status.store(CacheStatus::kCached);
  entry->host_value = kernels::RandGaussian(rows, cols, /*seed=*/7);
  entry->compute_cost = compute_cost;
  entry->size_bytes = rows * cols * sizeof(double);
  return entry;
}

// ---------------------------------------------------------------------------
// RequestTicket: the exactly-once outcome latch.

TEST(RequestTicketTest, RecordsOutcomeExactlyOnce) {
  RequestTicket ticket;
  const int64_t doubles_before = RequestTicket::DoubleRecordCount();

  RequestResult first;
  first.result_value = 1.0;
  EXPECT_TRUE(ticket.Finish(RequestOutcome::kCompleted, std::move(first)));
  EXPECT_TRUE(ticket.done());

  // The losing Finish is dropped and counted; the first outcome stands.
  RequestResult second;
  second.result_value = 2.0;
  EXPECT_FALSE(ticket.Finish(RequestOutcome::kFailed, std::move(second)));
  EXPECT_EQ(RequestTicket::DoubleRecordCount(), doubles_before + 1);
  EXPECT_EQ(ticket.result().outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(ticket.result().result_value, 1.0);
}

TEST(RequestTicketTest, WaitForTimesOutThenSucceeds) {
  RequestTicket ticket;
  EXPECT_FALSE(ticket.WaitFor(20));

  std::thread finisher([&ticket] {
    SleepMs(20);
    ticket.Finish(RequestOutcome::kCompleted, RequestResult{});
  });
  EXPECT_TRUE(ticket.WaitFor(5000));
  finisher.join();
  EXPECT_TRUE(ticket.done());
}

// ---------------------------------------------------------------------------
// AdmissionController unit behavior.

TEST(AdmissionTest, EnforcesConcurrencyMemoryAndGlobalBudget) {
  AdmissionConfig config;
  config.tenant_max_in_flight = 2;
  config.tenant_memory_quota = 10 << 10;
  config.memory_budget = 16 << 10;
  config.default_reservation = 4 << 10;
  AdmissionController admission(config);

  auto a1 = admission.TryAdmit("a", 0);
  auto a2 = admission.TryAdmit("a", 0);
  EXPECT_TRUE(a1.admitted);
  EXPECT_TRUE(a2.admitted);
  EXPECT_EQ(admission.tenant_in_flight("a"), 2);

  // Third concurrent request from the same tenant: concurrency quota.
  auto a3 = admission.TryAdmit("a", 0);
  EXPECT_FALSE(a3.admitted);
  EXPECT_NE(a3.reason.find("concurrency"), std::string::npos);

  // A different tenant asking for more than its byte quota.
  auto b1 = admission.TryAdmit("b", 12 << 10);
  EXPECT_FALSE(b1.admitted);
  EXPECT_NE(b1.reason.find("tenant memory"), std::string::npos);

  // Within the tenant quota but over the global reserved-bytes ceiling
  // (8 KiB already reserved by tenant a).
  auto b2 = admission.TryAdmit("b", 9 << 10);
  EXPECT_FALSE(b2.admitted);
  EXPECT_NE(b2.reason.find("global"), std::string::npos);

  // Releasing frees both the slot and the bytes.
  admission.Release("a", a1.reserved);
  EXPECT_EQ(admission.tenant_in_flight("a"), 1);
  EXPECT_TRUE(admission.TryAdmit("a", 0).admitted);
  admission.Release("a", a2.reserved);
  EXPECT_TRUE(admission.TryAdmit("b", 9 << 10).admitted);
}

// ---------------------------------------------------------------------------
// SharedLineageStore unit behavior.

TEST(SharedStoreTest, SkipsSessionLocalKeys) {
  // BindMatrix identities ("name@counter") can never match across sessions.
  auto session_local = LineageItem::Leaf("extern", "X@42");
  auto stable = LineageItem::Leaf("extern", "serve:X:4x4:1");
  auto literal = LineageItem::Leaf("literal", "3.5");
  EXPECT_TRUE(LineageHasSessionLocalLeaf(session_local));
  EXPECT_FALSE(LineageHasSessionLocalLeaf(stable));
  EXPECT_FALSE(LineageHasSessionLocalLeaf(literal));

  // A composite reaching the session-local leaf is tainted too.
  auto composite = LineageItem::Create(
      "matmult", "", {session_local, stable});
  EXPECT_TRUE(LineageHasSessionLocalLeaf(composite));

  SharedLineageStore store(/*tenant_quota_bytes=*/0);
  auto entry = MakeHostEntry("x", 4, 4, 100.0);
  entry->key = session_local;
  EXPECT_FALSE(store.Put("a", entry));
  EXPECT_EQ(store.TotalEntries(), 0u);
  EXPECT_EQ(store.CheckInvariants(), "");
}

TEST(SharedStoreTest, PartitionedEvictionNeverCrossesTenants) {
  // Each 4x4 double entry is 128 bytes; the quota fits exactly two.
  const size_t kEntryBytes = 4 * 4 * sizeof(double);
  SharedLineageStore store(2 * kEntryBytes);

  ASSERT_TRUE(store.Put("b", MakeHostEntry("b0", 4, 4, 50.0)));
  ASSERT_TRUE(store.Put("b", MakeHostEntry("b1", 4, 4, 60.0)));

  // Overfill tenant a: evictions must land in a's partition only.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Put(
        "a", MakeHostEntry("a" + std::to_string(i), 4, 4, 10.0 * (i + 1))));
  }
  EXPECT_LE(store.PartitionBytes("a"), 2 * kEntryBytes);
  EXPECT_EQ(store.PartitionEntries("a"), 2u);
  EXPECT_EQ(store.PartitionEntries("b"), 2u);
  EXPECT_EQ(store.CheckInvariants(), "");

  // Victims are the cheapest-to-recompute entries, so the two most
  // expensive survive.
  EXPECT_TRUE(store.Contains("a", LineageItem::Leaf("extern", "stable:a3")));
  EXPECT_TRUE(store.Contains("a", LineageItem::Leaf("extern", "stable:a4")));
  EXPECT_FALSE(store.Contains("a", LineageItem::Leaf("extern", "stable:a0")));

  // An entry alone bigger than the quota is rejected outright.
  EXPECT_FALSE(store.Put("a", MakeHostEntry("big", 8, 8, 1000.0)));
  EXPECT_EQ(store.PartitionEntries("a"), 2u);

  // Partition visibility: a's keys are invisible to b, but the global (""
  // partition) is visible to everyone.
  EXPECT_FALSE(store.Contains("b", LineageItem::Leaf("extern", "stable:a3")));
  ASSERT_TRUE(store.Put("", MakeHostEntry("g0", 4, 4, 5.0)));
  EXPECT_TRUE(store.Contains("b", LineageItem::Leaf("extern", "stable:g0")));
  EXPECT_EQ(store.CheckInvariants(), "");
}

// ---------------------------------------------------------------------------
// SessionManager: admission shedding, queue-full, deadlines.

TEST(ServeTest, RejectsOverTenantConcurrencyWithRetryAfter) {
  ServeConfig config = TestConfig(/*workers=*/1);
  config.admission.tenant_max_in_flight = 1;
  SessionManager manager(config);
  manager.PauseForTest();

  auto ok = manager.Submit(
      MakeWorkloadRequest("alice", "stats", 64, 8, /*seed=*/3));
  EXPECT_FALSE(ok->done());

  // Second in-flight request from the same tenant is shed synchronously.
  auto shed = manager.Submit(
      MakeWorkloadRequest("alice", "stats", 64, 8, /*seed=*/3));
  ASSERT_TRUE(shed->done());
  EXPECT_EQ(shed->result().outcome, RequestOutcome::kRejected);
  EXPECT_NE(shed->result().reject_reason.find("concurrency"),
            std::string::npos);
  EXPECT_GT(shed->result().retry_after_ms, 0.0);

  // Another tenant is unaffected by alice's quota.
  auto bob = manager.Submit(
      MakeWorkloadRequest("bob", "stats", 64, 8, /*seed=*/3));
  EXPECT_FALSE(bob->done());

  manager.ResumeForTest();
  ok->Wait();
  bob->Wait();
  EXPECT_EQ(ok->result().outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(bob->result().outcome, RequestOutcome::kCompleted);
  EXPECT_TRUE(manager.Shutdown());
}

TEST(ServeTest, RejectsWhenQueueFull) {
  ServeConfig config = TestConfig(/*workers=*/1);
  config.queue_capacity = 1;
  config.admission.tenant_max_in_flight = 8;
  SessionManager manager(config);
  manager.PauseForTest();

  auto queued = manager.Submit(
      MakeWorkloadRequest("alice", "stats", 64, 8, /*seed=*/3));
  ASSERT_EQ(manager.QueueDepth(), 1u);

  auto shed = manager.Submit(
      MakeWorkloadRequest("alice", "stats", 64, 8, /*seed=*/3));
  ASSERT_TRUE(shed->done());
  EXPECT_EQ(shed->result().outcome, RequestOutcome::kRejected);
  EXPECT_EQ(shed->result().reject_reason, "queue full");
  EXPECT_GT(shed->result().retry_after_ms, 0.0);
  // The rolled-back reservation frees the admission slot immediately.
  EXPECT_EQ(manager.admission().tenant_in_flight("alice"), 1);

  manager.ResumeForTest();
  queued->Wait();
  EXPECT_EQ(queued->result().outcome, RequestOutcome::kCompleted);
  EXPECT_TRUE(manager.Shutdown());
}

TEST(ServeTest, DeadlineExpiresWhileQueued) {
  ServeConfig config = TestConfig(/*workers=*/1);
  SessionManager manager(config);
  manager.PauseForTest();

  ScriptRequest request = MakeWorkloadRequest("alice", "stats", 64, 8, 3);
  request.deadline_ms = 5;
  auto expired = manager.Submit(request);

  // Let the deadline pass while the (paused) workers ignore the queue.
  SleepMs(40);
  manager.ResumeForTest();
  expired->Wait();
  EXPECT_EQ(expired->result().outcome, RequestOutcome::kDeadlineExpired);
  EXPECT_GE(expired->result().queue_ms, 5.0);
  EXPECT_FALSE(expired->result().has_result);
  // The slot was released on the expiry path.
  EXPECT_EQ(manager.admission().tenant_in_flight("alice"), 0);
  EXPECT_TRUE(manager.Shutdown());
}

TEST(ServeTest, PriorityOrdersQueuedRequests) {
  ServeConfig config = TestConfig(/*workers=*/1);
  SessionManager manager(config);
  manager.PauseForTest();

  ScriptRequest low = MakeWorkloadRequest("alice", "stats", 64, 8, 3);
  low.priority = 0;
  ScriptRequest high = MakeWorkloadRequest("alice", "stats", 64, 8, 3);
  high.priority = 5;
  auto low_ticket = manager.Submit(low);
  auto high_ticket = manager.Submit(high);

  manager.ResumeForTest();
  low_ticket->Wait();
  high_ticket->Wait();
  ASSERT_EQ(low_ticket->result().outcome, RequestOutcome::kCompleted);
  ASSERT_EQ(high_ticket->result().outcome, RequestOutcome::kCompleted);
  // The later-submitted high-priority request was picked up first: it never
  // waited behind low's execution, so its queue time is strictly smaller.
  EXPECT_LT(high_ticket->result().queue_ms, low_ticket->result().queue_ms);
  EXPECT_TRUE(manager.Shutdown());
}

TEST(ServeTest, MalformedProgramFailsExplicitly) {
  ServeConfig config = TestConfig(/*workers=*/1);
  SessionManager manager(config);

  ScriptRequest request;
  request.tenant = "alice";
  request.source = "this is not dml;";
  auto ticket = manager.Submit(request);
  ticket->Wait();
  EXPECT_EQ(ticket->result().outcome, RequestOutcome::kFailed);
  EXPECT_FALSE(ticket->result().error.empty());
  EXPECT_EQ(manager.admission().tenant_in_flight("alice"), 0);
  EXPECT_TRUE(manager.Shutdown());
}

// ---------------------------------------------------------------------------
// Cross-session reuse and cross-tenant isolation.

TEST(ServeTest, CrossSessionReuseSameTenantIsDeterministic) {
  // One worker makes the session-churn sequence deterministic: alice warms
  // the store, bob forces a rebuild (evicting alice's session), and alice's
  // second request can only reuse via the shared store.
  ServeConfig config = TestConfig(/*workers=*/1);
  SessionManager manager(config);

  auto first = manager.Submit(
      MakeWorkloadRequest("alice", "ridge", 256, 16, /*seed=*/11));
  first->Wait();
  ASSERT_EQ(first->result().outcome, RequestOutcome::kCompleted);
  ASSERT_TRUE(first->result().has_result);
  EXPECT_GT(manager.mutable_store()->PartitionEntries("alice"), 0u);

  auto other = manager.Submit(
      MakeWorkloadRequest("bob", "ridge", 256, 16, /*seed=*/11));
  other->Wait();
  ASSERT_EQ(other->result().outcome, RequestOutcome::kCompleted);

  auto second = manager.Submit(
      MakeWorkloadRequest("alice", "ridge", 256, 16, /*seed=*/11));
  second->Wait();
  ASSERT_EQ(second->result().outcome, RequestOutcome::kCompleted);

  // The second session was warmed from alice's partition, the warmed
  // entries were actually hit, and reuse is value-preserving: bitwise the
  // same loss as the cold run.
  EXPECT_GT(second->result().warmed_entries, 0);
  EXPECT_GT(second->result().cross_session_hits, 0);
  EXPECT_EQ(second->result().result_value, first->result().result_value);
  EXPECT_EQ(manager.mutable_store()->CheckInvariants(), "");
  EXPECT_TRUE(manager.Shutdown());
}

TEST(ServeTest, RestartedTenantReusesAcrossProcessesDeterministically) {
  // The persistent-store variant of CrossSessionReuseSameTenantIsDeterministic:
  // the reuse happens across a manager *restart*, so it can only flow through
  // the durable tier's rehydration.
  memphis::testing::TempDir dir("serve-restart");
  ServeConfig config = TestConfig(/*workers=*/1);
  config.store_persist_dir = dir.path();
  config.store_persist_budget = 8ull << 20;

  double cold_value = 0.0;
  {
    SessionManager manager(config);
    auto first = manager.Submit(
        MakeWorkloadRequest("alice", "ridge", 256, 16, /*seed=*/11));
    first->Wait();
    ASSERT_EQ(first->result().outcome, RequestOutcome::kCompleted);
    ASSERT_TRUE(first->result().has_result);
    cold_value = first->result().result_value;
    EXPECT_GT(manager.mutable_store()->PartitionEntries("alice"), 0u);
    EXPECT_TRUE(manager.Shutdown());
  }

  SessionManager restarted(config);
  // Alice's partition is back before any request runs, and bob still starts
  // cold: rehydration preserves tenant isolation.
  EXPECT_GT(restarted.mutable_store()->PartitionEntries("alice"), 0u);
  auto bob = restarted.Submit(
      MakeWorkloadRequest("bob", "ridge", 256, 16, /*seed=*/11));
  bob->Wait();
  ASSERT_EQ(bob->result().outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(bob->result().warmed_entries, 0);

  auto second = restarted.Submit(
      MakeWorkloadRequest("alice", "ridge", 256, 16, /*seed=*/11));
  second->Wait();
  ASSERT_EQ(second->result().outcome, RequestOutcome::kCompleted);
  EXPECT_GT(second->result().warmed_entries, 0);
  EXPECT_GT(second->result().cross_session_hits, 0);
  // Reuse through disk is value-preserving: bitwise the pre-restart result.
  EXPECT_EQ(second->result().result_value, cold_value);
  EXPECT_EQ(restarted.mutable_store()->CheckInvariants(), "");
  EXPECT_TRUE(restarted.Shutdown());
}

TEST(ServeTest, CrossTenantCacheIsolation) {
  ServeConfig config = TestConfig(/*workers=*/1);
  SessionManager manager(config);

  auto alice = manager.Submit(
      MakeWorkloadRequest("alice", "ridge", 256, 16, /*seed=*/11));
  alice->Wait();
  ASSERT_EQ(alice->result().outcome, RequestOutcome::kCompleted);
  ASSERT_GT(manager.mutable_store()->PartitionEntries("alice"), 0u);

  // Bob submits the *identical* workload. His session must start cold: no
  // entry of alice's partition is warmed into it, and nothing he could hit
  // was seeded across the tenant boundary.
  auto bob = manager.Submit(
      MakeWorkloadRequest("bob", "ridge", 256, 16, /*seed=*/11));
  bob->Wait();
  ASSERT_EQ(bob->result().outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(bob->result().warmed_entries, 0);
  EXPECT_EQ(bob->result().cross_session_hits, 0);

  // Both partitions exist independently afterwards.
  EXPECT_GT(manager.mutable_store()->PartitionEntries("alice"), 0u);
  EXPECT_GT(manager.mutable_store()->PartitionEntries("bob"), 0u);
  EXPECT_EQ(manager.mutable_store()->CheckInvariants(), "");
  EXPECT_TRUE(manager.Shutdown());
}

TEST(ServeTest, PerSessionModeHasNoStoreAndNoCarryover) {
  ServeConfig config = TestConfig(/*workers=*/1);
  config.shared_cache = false;
  SessionManager manager(config);
  EXPECT_EQ(manager.mutable_store(), nullptr);

  auto first = manager.Submit(
      MakeWorkloadRequest("alice", "ridge", 256, 16, /*seed=*/11));
  auto second = manager.Submit(
      MakeWorkloadRequest("alice", "ridge", 256, 16, /*seed=*/11));
  first->Wait();
  second->Wait();
  ASSERT_EQ(first->result().outcome, RequestOutcome::kCompleted);
  ASSERT_EQ(second->result().outcome, RequestOutcome::kCompleted);
  // The one-session-per-job baseline: nothing crosses request boundaries.
  EXPECT_EQ(second->result().warmed_entries, 0);
  EXPECT_EQ(second->result().cross_session_hits, 0);
  EXPECT_EQ(second->result().result_value, first->result().result_value);
  EXPECT_TRUE(manager.Shutdown());
}

// ---------------------------------------------------------------------------
// Determinism lattice: the full workload set at pool sizes 1, 4, 8.

TEST(ServeTest, LatticeDeterministicAcrossPoolSizes) {
  const std::vector<std::string> names = serve::WorkloadNames();
  auto run_mix = [&names](int cp_threads) {
    ServeConfig config;
    config.workers = 2;
    config.session.cp_threads = cp_threads;
    SessionManager manager(config);
    std::vector<RequestTicketPtr> tickets;
    for (int i = 0; i < 6; ++i) {
      const std::string tenant = i % 2 == 0 ? "alice" : "bob";
      tickets.push_back(manager.Submit(MakeWorkloadRequest(
          tenant, names[i % names.size()], 128, 12, /*seed=*/5)));
    }
    std::vector<double> values;
    for (const auto& ticket : tickets) {
      ticket->Wait();
      EXPECT_EQ(ticket->result().outcome, RequestOutcome::kCompleted);
      EXPECT_TRUE(ticket->result().has_result);
      values.push_back(ticket->result().result_value);
    }
    EXPECT_EQ(manager.mutable_store()->CheckInvariants(), "");
    EXPECT_TRUE(manager.Shutdown());
    return values;
  };

  const int64_t violations_before = RankViolationCount();
  const std::vector<double> at1 = run_mix(1);
  const std::vector<double> at4 = run_mix(4);
  const std::vector<double> at8 = run_mix(8);
  // The threading-model contract (DESIGN.md): chunk structure is pool-size
  // independent, so the serve results are bitwise identical at any size.
  EXPECT_EQ(at1, at4);
  EXPECT_EQ(at1, at8);
  EXPECT_EQ(RankViolationCount(), violations_before);
}

// ---------------------------------------------------------------------------
// Concurrency stress: many tenants, concurrent submitters (TSan target).

TEST(ServeStressTest, ManyTenantsConcurrentSubmittersAccountExactly) {
  ServeConfig config = TestConfig(/*workers=*/4);
  config.queue_capacity = 8;
  config.admission.tenant_max_in_flight = 2;
  SessionManager manager(config);

  const int64_t doubles_before = RequestTicket::DoubleRecordCount();
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 8;
  const std::vector<std::string> names = serve::WorkloadNames();

  std::vector<std::vector<RequestTicketPtr>> tickets(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        ScriptRequest request = MakeWorkloadRequest(
            "tenant" + std::to_string((s + i) % 3),
            names[i % names.size()], 64, 8, /*seed=*/3);
        request.priority = i % 2;
        if (i % 4 == 3) request.deadline_ms = 0.01;  // Near-certain expiry.
        tickets[s].push_back(manager.Submit(request));
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();

  // Every ticket reaches exactly one terminal outcome; the partition over
  // outcomes is exact and nothing is double-recorded.
  int completed = 0, rejected = 0, expired = 0, failed = 0, pending = 0;
  for (const auto& per_submitter : tickets) {
    for (const auto& ticket : per_submitter) {
      ticket->Wait();
      switch (ticket->result().outcome) {
        case RequestOutcome::kCompleted: ++completed; break;
        case RequestOutcome::kRejected: ++rejected; break;
        case RequestOutcome::kDeadlineExpired: ++expired; break;
        case RequestOutcome::kFailed: ++failed; break;
        case RequestOutcome::kPending: ++pending; break;
      }
    }
  }
  EXPECT_EQ(pending, 0);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(completed + rejected + expired, kSubmitters * kPerSubmitter);
  EXPECT_GT(completed, 0);
  EXPECT_EQ(RequestTicket::DoubleRecordCount(), doubles_before);

  EXPECT_TRUE(manager.Shutdown());
  // All reservations returned on every terminal path.
  EXPECT_EQ(manager.admission().total_reserved(), 0u);
  EXPECT_EQ(manager.mutable_store()->CheckInvariants(), "");
}

// The reuse journal is an exact record under concurrency: with the journal
// on, the stress traffic's kProbe event count equals the cache probes the
// requests actually observed, and every probe has exactly one hit-or-miss
// outcome -- the invariant memphis_explain --verify gates in CI. Under the
// TSan build this doubles as the race canary for journal emission from
// worker, submitter, and harvest threads at once.
TEST(ServeStressTest, JournalRecordsEveryProbeExactlyOnce) {
  obs::ResetJournal();
  obs::EnableJournal(true);

  ServeConfig config = TestConfig(/*workers=*/4);
  config.queue_capacity = 16;
  config.admission.tenant_max_in_flight = 2;
  SessionManager manager(config);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 6;
  const std::vector<std::string> names = serve::WorkloadNames();
  std::vector<std::vector<RequestTicketPtr>> tickets(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        tickets[s].push_back(manager.Submit(MakeWorkloadRequest(
            "journal-tenant" + std::to_string((s + i) % 2),
            names[i % names.size()], 64, 8, /*seed=*/5)));
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();

  // cache_probes is the per-request delta of the session cache's probe
  // stat -- the same counter every journal kProbe is emitted against, so
  // the sums must agree exactly (rejected/expired requests report 0).
  int64_t result_probes = 0;
  int64_t result_hits = 0;
  for (const auto& per_submitter : tickets) {
    for (const auto& ticket : per_submitter) {
      ticket->Wait();
      result_probes += ticket->result().cache_probes;
      result_hits += ticket->result().cache_hits;
    }
  }
  EXPECT_TRUE(manager.Shutdown());
  obs::EnableJournal(false);

  // Workers and submitters are joined: the drain is quiescent.
  const obs::JournalSnapshot snapshot = obs::CollectJournal();
  ASSERT_EQ(snapshot.dropped, 0u) << "ring too small for an exact record";
  EXPECT_EQ(snapshot.emitted, snapshot.events.size());
  int64_t probes = 0, hits = 0, misses = 0;
  for (const obs::JournalEvent& event : snapshot.events) {
    switch (event.kind) {
      case obs::JournalKind::kProbe: ++probes; break;
      case obs::JournalKind::kHit: ++hits; break;
      case obs::JournalKind::kMiss: ++misses; break;
      default: break;
    }
  }
  EXPECT_EQ(probes, result_probes);
  EXPECT_EQ(hits, result_hits);
  EXPECT_EQ(probes, hits + misses);
  EXPECT_GT(probes, 0);
  obs::ResetJournal();
}

// Two tenants running disjoint workloads produce disjoint tenant-labeled
// SLO metrics: each tenant's latency/queue histograms count exactly its own
// requests, and neither tenant's failure/shed counters move. Tenant names
// are unique to this test so global-registry state from other tests cannot
// leak in.
TEST(ServeTest, TenantSloMetricsStayDisjoint) {
  const std::vector<std::string> names = serve::WorkloadNames();
  ASSERT_GE(names.size(), 2u);
  ServeConfig config = TestConfig(/*workers=*/2);
  SessionManager manager(config);

  constexpr int kAlphaRequests = 3;
  constexpr int kBetaRequests = 2;
  std::vector<RequestTicketPtr> tickets;
  for (int i = 0; i < kAlphaRequests; ++i) {
    tickets.push_back(manager.Submit(
        MakeWorkloadRequest("slo_alpha", names[0], 64, 8, /*seed=*/3)));
  }
  for (int i = 0; i < kBetaRequests; ++i) {
    tickets.push_back(manager.Submit(
        MakeWorkloadRequest("slo_beta", names[1], 48, 6, /*seed=*/4)));
  }
  for (const auto& ticket : tickets) {
    ticket->Wait();
    ASSERT_EQ(ticket->result().outcome, RequestOutcome::kCompleted);
  }
  EXPECT_TRUE(manager.Shutdown());

  // Registry-owned, so they survive session teardown and manager shutdown.
  auto& registry = obs::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetHistogram("serve.tenant_slo_alpha.latency_ms")
                ->count(), kAlphaRequests);
  EXPECT_EQ(registry.GetHistogram("serve.tenant_slo_alpha.queue_ms")->count(),
            kAlphaRequests);
  EXPECT_EQ(registry.GetCounter("serve.tenant_slo_alpha.completed")->value(),
            kAlphaRequests);
  EXPECT_EQ(registry.GetHistogram("serve.tenant_slo_beta.latency_ms")
                ->count(), kBetaRequests);
  EXPECT_EQ(registry.GetHistogram("serve.tenant_slo_beta.queue_ms")->count(),
            kBetaRequests);
  EXPECT_EQ(registry.GetCounter("serve.tenant_slo_beta.completed")->value(),
            kBetaRequests);
  for (const char* tenant : {"slo_alpha", "slo_beta"}) {
    const std::string prefix = std::string("serve.tenant_") + tenant;
    EXPECT_EQ(registry.GetCounter(prefix + ".failed")->value(), 0);
    EXPECT_EQ(registry.GetCounter(prefix + ".shed")->value(), 0);
    EXPECT_GT(registry.GetCounter(prefix + ".probes")->value(), 0);
    const double hit_rate =
        registry.GetGauge(prefix + ".hit_rate")->value();
    EXPECT_GE(hit_rate, 0.0);
    EXPECT_LE(hit_rate, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Graceful shutdown.

TEST(ServeTest, ShutdownRejectsQueuedAndRefusesNewWork) {
  ServeConfig config = TestConfig(/*workers=*/1);
  SessionManager manager(config);
  manager.PauseForTest();

  std::vector<RequestTicketPtr> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(manager.Submit(
        MakeWorkloadRequest("alice", "stats", 64, 8, /*seed=*/3)));
  }
  ASSERT_EQ(manager.QueueDepth(), 3u);

  // Shutdown while paused: nothing in flight, everything queued is shed
  // explicitly, and the drain completes in time.
  EXPECT_TRUE(manager.Shutdown());
  for (const auto& ticket : queued) {
    ASSERT_TRUE(ticket->done());
    EXPECT_EQ(ticket->result().outcome, RequestOutcome::kRejected);
    EXPECT_EQ(ticket->result().reject_reason, "shutting down");
  }
  EXPECT_EQ(manager.admission().total_reserved(), 0u);

  // Submits after shutdown are shed, never silently dropped.
  auto late = manager.Submit(
      MakeWorkloadRequest("alice", "stats", 64, 8, /*seed=*/3));
  ASSERT_TRUE(late->done());
  EXPECT_EQ(late->result().outcome, RequestOutcome::kRejected);
  EXPECT_EQ(late->result().reject_reason, "shutting down");

  // Shutdown is idempotent.
  EXPECT_TRUE(manager.Shutdown());
}

TEST(ServeTest, ShutdownLetsInFlightRequestsFinish) {
  ServeConfig config = TestConfig(/*workers=*/2);
  SessionManager manager(config);

  std::vector<RequestTicketPtr> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(manager.Submit(
        MakeWorkloadRequest("alice", "ridge", 256, 16, /*seed=*/11)));
  }
  // Shut down immediately: whatever was picked up completes, the rest is
  // rejected -- but every ticket terminates.
  EXPECT_TRUE(manager.Shutdown());
  for (const auto& ticket : tickets) {
    ASSERT_TRUE(ticket->done());
    const RequestOutcome outcome = ticket->result().outcome;
    EXPECT_TRUE(outcome == RequestOutcome::kCompleted ||
                outcome == RequestOutcome::kRejected)
        << ToString(outcome);
  }
  EXPECT_EQ(manager.admission().total_reserved(), 0u);
}

// ---------------------------------------------------------------------------
// ThreadPool drain (serve shutdown building block).

TEST(ThreadPoolDrainTest, DrainsIdleAndBusyPools) {
  ThreadPool& pool = ThreadPool::Global();
  EXPECT_TRUE(pool.Drain(50));  // Idle pool drains immediately.

  std::atomic<bool> started{false};
  std::thread runner([&] {
    pool.ParallelFor(0, 8, 1, [&](size_t, size_t) {
      started.store(true);
      SleepMs(20);
    });
  });
  while (!started.load()) std::this_thread::yield();
  // The job finishes on its own; Drain observes the retirement.
  EXPECT_TRUE(pool.Drain(5000));
  runner.join();
  EXPECT_TRUE(pool.Drain(50));
}

// ---------------------------------------------------------------------------
// Exactly-once metrics flush under session churn.

TEST(MetricsFlushTest, SessionChurnFlushesEachContextExactlyOnce) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* flushed = registry.GetCounter("exec.futures_waited");
  obs::Counter* duplicates = registry.GetCounter("obs.duplicate_flushes");
  const int64_t flushed_before = flushed->value();
  const int64_t duplicates_before = duplicates->value();

  constexpr int kThreads = 4;
  constexpr int kContextsPerThread = 4;
  SystemConfig config;
  config.cp_threads = ThreadPool::Global().num_threads();

  std::vector<std::thread> churners;
  churners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    churners.emplace_back([&config, t] {
      for (int i = 0; i < kContextsPerThread; ++i) {
        ExecutionContext ctx(config);
        ctx.stats().futures_waited.Add(3);
        if ((t + i) % 2 == 0) {
          // The serve shutdown path: explicit flush, then destruction. The
          // destructor's second attempt must be suppressed (and counted).
          EXPECT_TRUE(ctx.FlushMetricsToGlobal());
          EXPECT_FALSE(ctx.FlushMetricsToGlobal());
        }
        // Destructor flushes (or is suppressed) here.
      }
    });
  }
  for (std::thread& churner : churners) churner.join();

  // Every context's increments land in the global registry exactly once:
  // the delta is exact, not doubled and not dropped.
  constexpr int64_t kContexts = kThreads * kContextsPerThread;
  EXPECT_EQ(flushed->value() - flushed_before, 3 * kContexts);
  // Half the contexts flushed explicitly twice (one suppressed) and were
  // then destroyed (another suppressed): 2 suppressions each.
  EXPECT_EQ(duplicates->value() - duplicates_before, kContexts);
}

}  // namespace
}  // namespace memphis
