#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/status.h"
#include "matrix/kernels.h"
#include "matrix/transform_kernels.h"

namespace memphis {
namespace {

const double kNan = std::numeric_limits<double>::quiet_NaN();

MatrixPtr M(size_t rows, size_t cols, std::vector<double> values) {
  return MatrixBlock::Create(rows, cols, std::move(values));
}

TEST(TransformTest, IsMissingDetectsNan) {
  EXPECT_TRUE(kernels::IsMissing(kNan));
  EXPECT_FALSE(kernels::IsMissing(0.0));
  EXPECT_FALSE(kernels::IsMissing(1e308));
}

TEST(TransformTest, ImputeByMeanFillsNan) {
  auto a = M(3, 2, {1, 10, kNan, 20, 3, kNan});
  auto out = kernels::ImputeByMean(*a);
  EXPECT_EQ(out->At(1, 0), 2.0);   // mean(1, 3)
  EXPECT_EQ(out->At(2, 1), 15.0);  // mean(10, 20)
  EXPECT_EQ(out->At(0, 0), 1.0);   // observed values untouched
}

TEST(TransformTest, ImputeByMeanAllMissingColumnBecomesZero) {
  auto a = M(2, 1, {kNan, kNan});
  auto out = kernels::ImputeByMean(*a);
  EXPECT_EQ(out->At(0, 0), 0.0);
  EXPECT_EQ(out->At(1, 0), 0.0);
}

TEST(TransformTest, ImputeByModePicksMostFrequent) {
  auto a = M(5, 1, {2, 2, 3, kNan, 2});
  auto out = kernels::ImputeByMode(*a);
  EXPECT_EQ(out->At(3, 0), 2.0);
}

TEST(TransformTest, OutlierByIqrWinsorizes) {
  std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8, 9, 1000};
  auto a = M(10, 1, values);
  auto out = kernels::OutlierByIQR(*a);
  EXPECT_LT(out->At(9, 0), 20.0);  // Outlier clamped near the upper fence.
  EXPECT_EQ(out->At(4, 0), 5.0);   // Inliers untouched.
}

TEST(TransformTest, OutlierByIqrPassesNanThrough) {
  auto a = M(4, 1, {1, 2, kNan, 3});
  auto out = kernels::OutlierByIQR(*a);
  EXPECT_TRUE(std::isnan(out->At(2, 0)));
}

TEST(TransformTest, StandardScaleMoments) {
  auto a = M(4, 1, {2, 4, 6, 8});
  auto out = kernels::StandardScale(*a);
  EXPECT_NEAR(kernels::Sum(*out), 0.0, 1e-9);
  double sq = 0.0;
  for (size_t r = 0; r < 4; ++r) sq += out->At(r, 0) * out->At(r, 0);
  EXPECT_NEAR(sq / 4.0, 1.0, 1e-9);
}

TEST(TransformTest, StandardScaleConstantColumnIsZero) {
  auto out = kernels::StandardScale(*M(3, 1, {5, 5, 5}));
  EXPECT_EQ(kernels::Sum(*out), 0.0);
}

TEST(TransformTest, MinMaxScaleRange) {
  auto out = kernels::MinMaxScale(*M(3, 1, {10, 20, 30}));
  EXPECT_TRUE(out->ApproxEquals(*M(3, 1, {0, 0.5, 1})));
}

TEST(TransformTest, UnderSampleBalances) {
  const size_t n = 400;
  auto x = kernels::Rand(n, 3, 0, 1, 1.0, 1);
  auto labels = std::make_shared<MatrixBlock>(n, 1, 0.0);
  for (size_t r = 0; r < 40; ++r) labels->At(r, 0) = 1.0;  // 10% positives.
  auto sampled = kernels::UnderSample(*x, *labels, 7);
  EXPECT_LT(sampled->rows(), n);
  EXPECT_GE(sampled->rows(), 40u);  // All minority rows kept.
}

TEST(TransformTest, UnderSampleBalancedInputUnchanged) {
  auto x = kernels::Rand(10, 2, 0, 1, 1.0, 2);
  auto labels = std::make_shared<MatrixBlock>(10, 1, 0.0);
  for (size_t r = 0; r < 5; ++r) labels->At(r, 0) = 1.0;
  auto sampled = kernels::UnderSample(*x, *labels, 7);
  EXPECT_EQ(sampled->rows(), 10u);
}

TEST(TransformTest, UnderSampleDeterministic) {
  auto x = kernels::Rand(200, 2, 0, 1, 1.0, 3);
  auto labels = std::make_shared<MatrixBlock>(200, 1, 0.0);
  for (size_t r = 0; r < 20; ++r) labels->At(r, 0) = 1.0;
  auto a = kernels::UnderSample(*x, *labels, 9);
  auto b = kernels::UnderSample(*x, *labels, 9);
  EXPECT_TRUE(a->ApproxEquals(*b));
}

TEST(TransformTest, PcaShapeAndDeterminism) {
  auto x = kernels::RandGaussian(50, 8, 5);
  auto p1 = kernels::Pca(*x, 3);
  auto p2 = kernels::Pca(*x, 3);
  EXPECT_EQ(p1->rows(), 50u);
  EXPECT_EQ(p1->cols(), 3u);
  EXPECT_TRUE(p1->ApproxEquals(*p2));
}

TEST(TransformTest, PcaCapturesDominantDirection) {
  // Data varying only along the first column: PC1 scores reproduce it (up
  // to sign and scaling).
  auto x = std::make_shared<MatrixBlock>(20, 3, 0.0);
  for (size_t r = 0; r < 20; ++r) x->At(r, 0) = static_cast<double>(r);
  auto scores = kernels::Pca(*x, 1);
  // Monotone in r.
  for (size_t r = 1; r < 20; ++r) {
    EXPECT_GT(std::fabs(scores->At(r, 0) - scores->At(0, 0)),
              std::fabs(scores->At(r - 1, 0) - scores->At(0, 0)) - 1e-9);
  }
}

TEST(TransformTest, RecodeAssignsDenseCodes) {
  auto a = M(4, 1, {7.5, 3.0, 7.5, 9.0});
  auto out = kernels::Recode(*a);
  EXPECT_EQ(out->At(0, 0), 1.0);
  EXPECT_EQ(out->At(1, 0), 2.0);
  EXPECT_EQ(out->At(2, 0), 1.0);
  EXPECT_EQ(out->At(3, 0), 3.0);
}

TEST(TransformTest, BinEquiWidth) {
  auto a = M(4, 1, {0, 3, 7, 10});
  auto out = kernels::Bin(*a, 2);
  EXPECT_EQ(out->At(0, 0), 1.0);
  EXPECT_EQ(out->At(1, 0), 1.0);
  EXPECT_EQ(out->At(2, 0), 2.0);
  EXPECT_EQ(out->At(3, 0), 2.0);
}

TEST(TransformTest, BinConstantColumn) {
  auto out = kernels::Bin(*M(3, 1, {4, 4, 4}), 5);
  EXPECT_EQ(out->At(0, 0), 1.0);
  EXPECT_EQ(out->At(2, 0), 1.0);
}

TEST(TransformTest, OneHotWidths) {
  auto a = M(2, 2, {1, 2, 3, 1});
  auto out = kernels::OneHot(*a);
  // Column widths: 3 (codes up to 3) and 2 -> 5 indicator columns.
  EXPECT_EQ(out->cols(), 5u);
  EXPECT_TRUE(out->ApproxEquals(*M(2, 5, {1, 0, 0, 0, 1, 0, 0, 1, 1, 0})));
}

TEST(TransformTest, OneHotRowsSumToColumns) {
  auto a = kernels::Bin(*kernels::Rand(30, 4, 0, 1, 1.0, 8), 5);
  auto out = kernels::OneHot(*a);
  for (size_t r = 0; r < out->rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < out->cols(); ++c) sum += out->At(r, c);
    EXPECT_EQ(sum, 4.0);  // One indicator per original column.
  }
}

}  // namespace
}  // namespace memphis
