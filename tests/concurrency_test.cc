// Concurrency tests: thread-pool semantics, bitwise determinism of the
// parallel kernels and Spark jobs across pool sizes, and a multi-threaded
// stress test of the sharded LineageCache. Built to run under
// -DMEMPHIS_SANITIZE=thread as well (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cache/lineage_cache.h"
#include "common/thread_pool.h"
#include "matrix/kernels.h"
#include "spark/spark_context.h"

namespace memphis {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool semantics.
// ---------------------------------------------------------------------------

class PoolTest : public ::testing::Test {
 protected:
  ~PoolTest() override { ThreadPool::Global().Resize(1); }
};

TEST_F(PoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool::Global().Resize(4);
  std::vector<std::atomic<int>> touched(1000);
  ParallelFor(0, 1000, 7, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++touched[i];
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i], 1) << "index " << i;
  }
}

TEST_F(PoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool::Global().Resize(4);
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(PoolTest, GrainLargerThanRangeRunsOneInlineChunk) {
  ThreadPool::Global().Resize(4);
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelFor(3, 10, 100, [&](size_t lo, size_t hi) {
    chunks.emplace_back(lo, hi);  // Single chunk -> no data race.
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<size_t, size_t>{3, 10}));
}

TEST_F(PoolTest, ChunkBoundariesIndependentOfPoolSize) {
  auto boundaries = [](int pool_size) {
    ThreadPool::Global().Resize(pool_size);
    Mutex mu{LockRank::kTest, "test-chunks"};
    std::vector<std::pair<size_t, size_t>> chunks;
    ParallelFor(0, 103, 10, [&](size_t lo, size_t hi) {
      MutexLock lock(mu);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = boundaries(1);
  EXPECT_EQ(serial.size(), 11u);  // ceil(103 / 10).
  EXPECT_EQ(boundaries(2), serial);
  EXPECT_EQ(boundaries(8), serial);
}

TEST_F(PoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool::Global().Resize(4);
  std::vector<std::atomic<int>> touched(64 * 64);
  ParallelFor(0, 64, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ParallelFor(0, 64, 8, [&, i](size_t jlo, size_t jhi) {
        for (size_t j = jlo; j < jhi; ++j) ++touched[i * 64 + j];
      });
    }
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    ASSERT_EQ(touched[i], 1) << "index " << i;
  }
}

TEST_F(PoolTest, FirstChunkExceptionPropagates) {
  ThreadPool::Global().Resize(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 5,
                  [&](size_t lo, size_t) {
                    if (lo == 45) throw std::runtime_error("chunk failure");
                  }),
      std::runtime_error);
}

TEST_F(PoolTest, ResizeIsIdempotentAndReusable) {
  ThreadPool::Global().Resize(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  ThreadPool::Global().Resize(3);  // No-op.
  std::atomic<int> total{0};
  ParallelFor(0, 50, 5, [&](size_t lo, size_t hi) {
    total += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(total, 50);
  ThreadPool::Global().Resize(1);
  ParallelFor(0, 50, 5, [&](size_t lo, size_t hi) {
    total += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(total, 100);
}

// ---------------------------------------------------------------------------
// Kernel determinism: results must be bitwise identical to the serial
// reference at every pool size. All shapes exceed the parallel thresholds
// (>= 16k elements; matmult >= 2^20 flops) so the parallel paths really run.
// ---------------------------------------------------------------------------

class KernelDeterminismTest : public ::testing::Test {
 protected:
  ~KernelDeterminismTest() override { ThreadPool::Global().Resize(1); }

  /// Runs `compute` at pool sizes 1, 4, and 8 and expects bitwise-identical
  /// matrices (EXPECT_EQ on the raw value vectors -- no tolerance).
  template <typename Fn>
  void ExpectPoolSizeInvariant(Fn compute) {
    ThreadPool::Global().Resize(1);
    const MatrixPtr serial = compute();
    for (int threads : {4, 8}) {
      ThreadPool::Global().Resize(threads);
      const MatrixPtr parallel = compute();
      EXPECT_EQ(serial->values(), parallel->values())
          << "pool size " << threads;
    }
  }

  template <typename Fn>
  void ExpectScalarPoolSizeInvariant(Fn compute) {
    ThreadPool::Global().Resize(1);
    const double serial = compute();
    for (int threads : {4, 8}) {
      ThreadPool::Global().Resize(threads);
      const double parallel = compute();
      EXPECT_EQ(serial, parallel) << "pool size " << threads;
    }
  }
};

/// Reference matmult: the seed's serial i-k-j loop, verbatim.
MatrixPtr NaiveMatMult(const MatrixBlock& a, const MatrixBlock& b) {
  auto out = std::make_shared<MatrixBlock>(a.rows(), b.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double av = a.At(i, k);
      if (av == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        out->At(i, j) += av * b.At(k, j);
      }
    }
  }
  return out;
}

TEST_F(KernelDeterminismTest, BlockedMatMultMatchesNaiveBitwise) {
  // The cache-blocked loop accumulates each (i, j) over ascending k exactly
  // like the naive loop, so equality is exact, not approximate. 150x80x60 =
  // 1.44M flops exceeds the parallel threshold; 500 columns of B exceed one
  // k-panel is false (k=80 < 256) so also check a k > 256 shape.
  auto a = kernels::Rand(150, 80, -1, 1, 0.9, 1);  // Sparse: hits the skip.
  auto b = kernels::Rand(80, 60, -1, 1, 1.0, 2);
  ThreadPool::Global().Resize(8);
  EXPECT_EQ(kernels::MatMult(*a, *b)->values(), NaiveMatMult(*a, *b)->values());

  auto c = kernels::Rand(40, 700, -1, 1, 1.0, 3);  // k spans 3 cache panels.
  auto d = kernels::Rand(700, 30, -1, 1, 1.0, 4);
  EXPECT_EQ(kernels::MatMult(*c, *d)->values(), NaiveMatMult(*c, *d)->values());
}

TEST_F(KernelDeterminismTest, MatMultPoolSizeInvariant) {
  auto a = kernels::Rand(300, 200, -1, 1, 1.0, 5);
  auto b = kernels::Rand(200, 150, -1, 1, 1.0, 6);
  ExpectPoolSizeInvariant([&] { return kernels::MatMult(*a, *b); });
}

TEST_F(KernelDeterminismTest, ElementwisePoolSizeInvariant) {
  auto a = kernels::Rand(200, 100, -2, 2, 1.0, 7);   // 20k elements.
  auto b = kernels::Rand(200, 100, 1, 3, 1.0, 8);
  auto col = kernels::Rand(200, 1, -1, 1, 1.0, 9);   // Column broadcast.
  auto row = kernels::Rand(1, 100, -1, 1, 1.0, 10);  // Row broadcast.
  ExpectPoolSizeInvariant(
      [&] { return kernels::Binary(kernels::BinaryOp::kDiv, *a, *b); });
  ExpectPoolSizeInvariant(
      [&] { return kernels::Binary(kernels::BinaryOp::kAdd, *a, *col); });
  ExpectPoolSizeInvariant(
      [&] { return kernels::Binary(kernels::BinaryOp::kMul, *a, *row); });
  ExpectPoolSizeInvariant(
      [&] { return kernels::ScalarOp(kernels::BinaryOp::kPow, *a, 2.0); });
  ExpectPoolSizeInvariant(
      [&] { return kernels::Unary(kernels::UnaryOp::kSigmoid, *a); });
}

TEST_F(KernelDeterminismTest, TransposePoolSizeInvariant) {
  auto a = kernels::Rand(150, 130, -1, 1, 1.0, 11);  // Off-tile-size shape.
  ExpectPoolSizeInvariant([&] { return kernels::Transpose(*a); });
  // Tiling is a pure permutation of reads: exact round trip.
  auto back = kernels::Transpose(*kernels::Transpose(*a));
  EXPECT_EQ(back->values(), a->values());
}

TEST_F(KernelDeterminismTest, AggregatesPoolSizeInvariant) {
  auto a = kernels::Rand(200, 100, -3, 3, 1.0, 12);
  ExpectScalarPoolSizeInvariant([&] { return kernels::Sum(*a); });
  ExpectScalarPoolSizeInvariant([&] { return kernels::Mean(*a); });
  ExpectScalarPoolSizeInvariant([&] { return kernels::Min(*a); });
  ExpectScalarPoolSizeInvariant([&] { return kernels::Max(*a); });
  ExpectPoolSizeInvariant([&] { return kernels::ColSums(*a); });
  ExpectPoolSizeInvariant([&] { return kernels::ColMins(*a); });
  ExpectPoolSizeInvariant([&] { return kernels::ColMaxs(*a); });
  ExpectPoolSizeInvariant([&] { return kernels::ColVars(*a); });
  ExpectPoolSizeInvariant([&] { return kernels::RowSums(*a); });
  ExpectPoolSizeInvariant([&] { return kernels::RowMaxs(*a); });
  ExpectPoolSizeInvariant([&] { return kernels::RowIndexMax(*a); });
}

// ---------------------------------------------------------------------------
// Spark: concurrent task execution must keep both the collected values and
// the *simulated* timings bitwise identical to the sequential schedule.
// ---------------------------------------------------------------------------

TEST(SparkConcurrencyTest, JobResultsAndSimTimesPoolSizeInvariant) {
  SystemConfig config;
  config.mem_scale = 1.0;
  config.num_executors = 2;
  config.cores_per_executor = 4;
  config.executor_memory = 64ull << 20;

  auto m = kernels::Rand(120, 6, -1, 1, 1.0, 21);
  auto run_job = [&] {
    sim::CostModel cost_model;
    spark::SparkContext sc(config, &cost_model);
    spark::RddPtr x = sc.Parallelize("X", m, 6);
    spark::RddPtr scaled = spark::Rdd::Narrow(
        "x2", {x}, 120, 6, [](const std::vector<const spark::Partition*>& in) {
          return kernels::ScalarOp(kernels::BinaryOp::kMul, *in[0]->data, 3.0);
        });
    spark::RddPtr sums = spark::Rdd::Aggregate(
        "colsums", scaled, 1, 6,
        [](const spark::Partition& part) { return kernels::ColSums(*part.data); });
    return sc.Collect(sums, 0.0);
  };

  ThreadPool::Global().Resize(1);
  auto serial = run_job();
  for (int threads : {4, 8}) {
    ThreadPool::Global().Resize(threads);
    auto parallel = run_job();
    // Values bitwise equal: the reduce side combines partials in
    // partition-index order regardless of which task finished first.
    EXPECT_EQ(serial.value->values(), parallel.value->values());
    // Simulated time exactly equal: wave-time accounting is computed on the
    // calling thread, outside the parallel region.
    EXPECT_EQ(serial.completed_at, parallel.completed_at);
  }
  ThreadPool::Global().Resize(1);
}

// ---------------------------------------------------------------------------
// LineageCache under concurrent probe/put/remove.
// ---------------------------------------------------------------------------

class CacheConcurrencyTest : public ::testing::Test {
 protected:
  static SystemConfig TestConfig() {
    SystemConfig config;
    config.mem_scale = 1.0;
    config.num_executors = 2;
    config.cores_per_executor = 4;
    config.executor_memory = 8ull << 20;
    config.driver_lineage_cache = 16 << 10;  // Tiny: forces spills/evictions.
    config.gpu_memory = 1 << 20;
    return config;
  }

  CacheConcurrencyTest()
      : config_(TestConfig()),
        spark_(config_, &cost_model_),
        gpu_(config_.gpu_memory, &cost_model_),
        gpu_cache_(&gpu_, /*recycling_enabled=*/true),
        cache_(config_, &cost_model_, &spark_, &gpu_cache_) {}

  static LineageItemPtr Key(const std::string& tag) {
    return LineageItem::Create("op", tag,
                               {LineageItem::Leaf("extern", "X")});
  }

  SystemConfig config_;
  sim::CostModel cost_model_;
  spark::SparkContext spark_;
  gpu::GpuContext gpu_;
  GpuCacheManager gpu_cache_;
  LineageCache cache_;
};

TEST_F(CacheConcurrencyTest, ConcurrentProbePutRemoveKeepsInvariants) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeys = 48;  // Overlapping key space across all threads.

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      std::mt19937 rng(1234u + static_cast<unsigned>(t));
      double now = 0.0;
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int id = static_cast<int>(rng() % kKeys);
        const std::string tag = "h" + std::to_string(id);
        switch (rng() % 8) {
          case 0:
          case 1:
          case 2: {  // Probe (the hot path).
            CacheEntryPtr entry = cache_.Reuse(Key(tag), &now);
            if (entry != nullptr &&
                entry->kind == CacheKind::kHostMatrix &&
                entry->host_value != nullptr) {
              // Value integrity: every putter stores the same encoding.
              ASSERT_EQ(entry->host_value->At(0, 0), static_cast<double>(id));
            }
            break;
          }
          case 3:
          case 4: {  // Immediate put.
            cache_.PutHost(Key(tag), MatrixBlock::Create(8, 8, id),
                           /*compute_cost=*/1.0 + id, /*delay=*/1, &now);
            break;
          }
          case 5: {  // Delayed put: exercises the placeholder countdown.
            const std::string dtag = "d" + std::to_string(id);
            cache_.PutHost(Key(dtag), MatrixBlock::Create(4, 4, id), 1.0,
                           /*delay=*/3, &now);
            cache_.Reuse(Key(dtag), &now);
            break;
          }
          case 6: {  // Scalar tier.
            const std::string stag = "s" + std::to_string(id);
            cache_.PutScalar(Key(stag), static_cast<double>(id), 1.0,
                             /*delay=*/1, &now);
            CacheEntryPtr entry = cache_.Reuse(Key(stag), &now);
            if (entry != nullptr && entry->kind == CacheKind::kScalar) {
              ASSERT_EQ(entry->scalar_value, static_cast<double>(id));
            }
            break;
          }
          case 7: {  // Removal.
            cache_.Remove(Key(tag));
            break;
          }
        }
        now += 0.001;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Every probe resolved to exactly one hit or one miss -- no lost or
  // double-counted updates.
  const auto& stats = cache_.stats();
  EXPECT_EQ(stats.probes, stats.TotalHits() + stats.misses);
  EXPECT_GT(stats.probes, 0);
  EXPECT_GT(stats.puts, 0);

  // Post-join integrity sweep: every surviving entry holds the value its
  // key encodes.
  double now = 1000.0;
  for (int id = 0; id < kKeys; ++id) {
    CacheEntryPtr entry = cache_.Reuse(Key("h" + std::to_string(id)), &now);
    if (entry != nullptr) {
      ASSERT_NE(entry->host_value, nullptr);
      EXPECT_EQ(entry->host_value->At(0, 0), static_cast<double>(id));
    }
    entry = cache_.Reuse(Key("s" + std::to_string(id)), &now);
    if (entry != nullptr) {
      EXPECT_EQ(entry->scalar_value, static_cast<double>(id));
    }
  }
}

// Regression for the unsynchronized-sweep bug the sync migration surfaced:
// CheckInvariants used to read host-tier accounting and non-atomic entry
// fields (backend pointers, size_bytes) without tier_mu_, racing concurrent
// Put/Remove. It now takes the tier lock for the whole sweep, so running it
// in a tight loop against mutating writers must stay race-free (TSan) and
// report no violations.
TEST_F(CacheConcurrencyTest, CheckInvariantsIsSafeDuringConcurrentMutation) {
  std::atomic<bool> done{false};
  std::thread checker([&] {
    while (!done) {
      const std::string violation = cache_.CheckInvariants();
      ASSERT_EQ(violation, "");
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([this, t] {
      std::mt19937 rng(99u + static_cast<unsigned>(t));
      double now = 0.0;
      for (int op = 0; op < 2000; ++op) {
        const int id = static_cast<int>(rng() % 24);
        const std::string tag = "inv" + std::to_string(id);
        switch (rng() % 4) {
          case 0:
            cache_.PutHost(Key(tag), MatrixBlock::Create(8, 8, id), 1.0 + id,
                           /*delay=*/1, &now);
            break;
          case 1:
            cache_.PutHost(Key("invd" + std::to_string(id)),
                           MatrixBlock::Create(4, 4, id), 1.0, /*delay=*/3,
                           &now);
            break;
          case 2:
            cache_.Reuse(Key(tag), &now);
            break;
          case 3:
            cache_.Remove(Key(tag));
            break;
        }
        now += 0.001;
      }
    });
  }
  for (auto& writer : writers) writer.join();
  done = true;
  checker.join();
  EXPECT_EQ(cache_.CheckInvariants(), "");
}

TEST_F(CacheConcurrencyTest, ParallelForTasksShareTheCache) {
  // Kernels-on-pool-workers probing the cache, as concurrent Spark tasks do.
  ThreadPool::Global().Resize(4);
  std::atomic<int> found{0};
  double now = 0.0;
  for (int id = 0; id < 16; ++id) {
    cache_.PutScalar(Key("w" + std::to_string(id)), id, 1.0, 1, &now);
  }
  ParallelFor(0, 256, 4, [&](size_t lo, size_t hi) {
    double local_now = 1.0;
    for (size_t i = lo; i < hi; ++i) {
      const int id = static_cast<int>(i % 16);
      CacheEntryPtr entry =
          cache_.Reuse(Key("w" + std::to_string(id)), &local_now);
      if (entry != nullptr && entry->scalar_value == id) ++found;
    }
  });
  ThreadPool::Global().Resize(1);
  EXPECT_EQ(found, 256);
}

}  // namespace
}  // namespace memphis
