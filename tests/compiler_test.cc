#include <gtest/gtest.h>

#include <algorithm>

#include "common/status.h"
#include "compiler/fusion.h"
#include "compiler/linearize.h"
#include "compiler/op_registry.h"
#include "compiler/placement.h"
#include "compiler/program.h"

namespace memphis::compiler {
namespace {

/// Resolver with explicit per-variable shapes/locations.
class FakeResolver {
 public:
  FakeResolver& Add(const std::string& name, size_t rows, size_t cols,
                    Backend location = Backend::kCP) {
    vars_[name] = VarInfo{{rows, cols}, location};
    return *this;
  }
  ShapeResolver Fn() const {
    auto vars = vars_;
    return [vars](const std::string& name) -> VarInfo {
      auto it = vars.find(name);
      return it == vars.end() ? VarInfo{{1, 1}, Backend::kCP} : it->second;
    };
  }

 private:
  std::unordered_map<std::string, VarInfo> vars_;
};

SystemConfig LocalConfig() {
  SystemConfig config;
  config.mem_scale = 1.0;
  config.operation_memory = 1 << 20;  // 1 MB: ops above this go to Spark.
  config.gpu_offload_min_flops = 1e9;
  return config;
}

CompileOptions NoOpts() {
  CompileOptions options;
  options.async_operators = false;
  options.max_parallelize = false;
  options.checkpoint_placement = false;
  return options;
}

int CountOpcode(const CompileResult& result, const std::string& opcode) {
  int count = 0;
  for (const auto& inst : result.instructions) count += inst.opcode == opcode;
  return count;
}

const Instruction* FindInst(const CompileResult& result,
                            const std::string& opcode) {
  for (const auto& inst : result.instructions) {
    if (inst.opcode == opcode) return &inst;
  }
  return nullptr;
}

TEST(OpRegistryTest, KnownAndUnknownOps) {
  EXPECT_NE(FindOp("matmult"), nullptr);
  EXPECT_NE(FindOp("conv2d"), nullptr);
  EXPECT_EQ(FindOp("frobnicate"), nullptr);
  EXPECT_GT(RegisteredOps().size(), 40u);
}

TEST(OpRegistryTest, ShapeInference) {
  const OpSpec* mm = FindOp("matmult");
  Shape out = mm->infer({{3, 4}, {4, 7}}, {});
  EXPECT_EQ(out.rows, 3u);
  EXPECT_EQ(out.cols, 7u);
  const OpSpec* tsmm = FindOp("tsmm");
  out = tsmm->infer({{100, 5}}, {});
  EXPECT_EQ(out.rows, 5u);
  EXPECT_EQ(out.cols, 5u);
}

TEST(CompileTest, CseMergesIdenticalSubexpressions) {
  HopDag dag;
  auto x = dag.Read("X");
  // Two separately-built t(X)%*%X expressions.
  auto a = dag.Op("matmult", {dag.Op("transpose", {x}), x});
  auto b = dag.Op("matmult", {dag.Op("transpose", {x}), x});
  dag.Write("s", dag.Op("+", {a, b}));
  auto result = CompileDag(dag, LocalConfig(),
                           FakeResolver().Add("X", 100, 10).Fn(), NoOpts());
  EXPECT_EQ(CountOpcode(result, "tsmm"), 1);  // Merged, then fused.
}

TEST(CompileTest, NondeterministicOpsNotMerged) {
  HopDag dag;
  // Unseeded rand (seed < 0): two instances must stay distinct.
  auto a = dag.Op("rand", {}, {4, 4, 0, 1, 1, -1});
  auto b = dag.Op("rand", {}, {4, 4, 0, 1, 1, -1});
  dag.Write("s", dag.Op("+", {a, b}));
  auto result =
      CompileDag(dag, LocalConfig(), FakeResolver().Fn(), NoOpts());
  EXPECT_EQ(CountOpcode(result, "rand"), 2);
  const Instruction* inst = FindInst(result, "rand");
  EXPECT_TRUE(inst->nondeterministic);
  EXPECT_NE(inst->nonce, 0u);
}

TEST(CompileTest, SeededRandMerges) {
  HopDag dag;
  auto a = dag.Op("rand", {}, {4, 4, 0, 1, 1, 7});
  auto b = dag.Op("rand", {}, {4, 4, 0, 1, 1, 7});
  dag.Write("s", dag.Op("+", {a, b}));
  auto result =
      CompileDag(dag, LocalConfig(), FakeResolver().Fn(), NoOpts());
  EXPECT_EQ(CountOpcode(result, "rand"), 1);
}

TEST(CompileTest, TsmmRewriteFusesPattern) {
  HopDag dag;
  auto x = dag.Read("X");
  dag.Write("mm", dag.Op("matmult", {dag.Op("transpose", {x}), x}));
  auto result = CompileDag(dag, LocalConfig(),
                           FakeResolver().Add("X", 50, 4).Fn(), NoOpts());
  EXPECT_EQ(CountOpcode(result, "tsmm"), 1);
  EXPECT_EQ(CountOpcode(result, "matmult"), 0);
  EXPECT_EQ(CountOpcode(result, "transpose"), 0);  // Dead after fusion.
}

TEST(CompileTest, Tsmm2RewriteForCrossProducts) {
  HopDag dag;
  auto a = dag.Read("A");
  auto b = dag.Read("B");
  dag.Write("m", dag.Op("matmult", {dag.Op("transpose", {a}), b}));
  auto result = CompileDag(
      dag, LocalConfig(),
      FakeResolver().Add("A", 50, 3).Add("B", 50, 4).Fn(), NoOpts());
  EXPECT_EQ(CountOpcode(result, "tsmm2"), 1);
}

TEST(CompileTest, SmallOpsStayLocal) {
  HopDag dag;
  auto x = dag.Read("X");
  dag.Write("y", dag.Op("+", {x, dag.Literal(1.0)}));
  auto result = CompileDag(dag, LocalConfig(),
                           FakeResolver().Add("X", 10, 10).Fn(), NoOpts());
  for (const auto& inst : result.instructions) {
    EXPECT_EQ(inst.backend, Backend::kCP);
  }
}

TEST(CompileTest, LargeOpsPlacedOnSpark) {
  HopDag dag;
  auto x = dag.Read("X");  // 512K x 4 = 16 MB > 1 MB operation memory.
  dag.Write("y", dag.Op("relu", {x}));
  auto result = CompileDag(dag, LocalConfig(),
                           FakeResolver().Add("X", 1 << 19, 4).Fn(),
                           NoOpts());
  const Instruction* relu = FindInst(result, "relu");
  ASSERT_NE(relu, nullptr);
  EXPECT_EQ(relu->backend, Backend::kSpark);
  // CP input feeding a Spark op gets a parallelize transfer.
  EXPECT_EQ(CountOpcode(result, "parallelize"), 1);
}

TEST(CompileTest, ComputeIntensiveOpsGoToGpu) {
  HopDag dag;
  auto a = dag.Read("A");
  auto b = dag.Read("B");
  dag.Write("c", dag.Op("matmult", {a, b}));  // 2*256^3 flops > 1e7.
  SystemConfig config = LocalConfig();
  config.gpu_offload_min_flops = 1e7;  // Inputs (512 KB) stay under the
                                       // Spark threshold; flops dominate.
  auto result = CompileDag(
      dag, config,
      FakeResolver().Add("A", 256, 256).Add("B", 256, 256).Fn(), NoOpts());
  const Instruction* mm = FindInst(result, "matmult");
  ASSERT_NE(mm, nullptr);
  EXPECT_EQ(mm->backend, Backend::kGpu);
  EXPECT_EQ(CountOpcode(result, "h2d"), 2);  // Both inputs uploaded.
  // The output stays device-resident (multi-backend variables); a d2h is
  // inserted only when a local consumer needs it.
  EXPECT_EQ(CountOpcode(result, "d2h"), 0);
}

TEST(CompileTest, ForcedBackendWins) {
  HopDag dag;
  auto x = dag.Read("X");
  auto relu = dag.Op("relu", {x});
  relu->ForceBackend(Backend::kGpu);
  dag.Write("y", relu);
  auto result = CompileDag(dag, LocalConfig(),
                           FakeResolver().Add("X", 4, 4).Fn(), NoOpts());
  EXPECT_EQ(FindInst(result, "relu")->backend, Backend::kGpu);
}

TEST(CompileTest, SparkResultConsumedLocallyGetsCollect) {
  HopDag dag;
  auto x = dag.Read("X");
  auto mm = dag.Op("tsmm", {x});         // Spark (X is large).
  dag.Write("s", dag.Op("solve", {mm, dag.Op("tsmm", {x})}));  // CP-only op.
  auto result = CompileDag(dag, LocalConfig(),
                           FakeResolver().Add("X", 1 << 19, 4).Fn(),
                           NoOpts());
  EXPECT_GE(CountOpcode(result, "collect"), 1);
  EXPECT_EQ(FindInst(result, "solve")->backend, Backend::kCP);
}

TEST(CompileTest, SmallCpInputBroadcastToSpark) {
  HopDag dag;
  auto x = dag.Read("X");   // Large, Spark-resident.
  auto v = dag.Read("v");   // Small local row vector.
  dag.Write("y", dag.Op("+", {x, v}));
  auto result = CompileDag(
      dag, LocalConfig(),
      FakeResolver().Add("X", 1 << 19, 4, Backend::kSpark).Add("v", 1, 4).Fn(),
      NoOpts());
  EXPECT_EQ(CountOpcode(result, "bcast"), 1);
}

TEST(CompileTest, TransferHopsSharedAcrossConsumers) {
  HopDag dag;
  auto x = dag.Read("X");
  auto mm = dag.Op("tsmm", {x});  // Spark.
  // Two CP consumers of the same Spark result: one collect.
  dag.Write("a", dag.Op("solve", {mm, mm}));
  dag.Write("b", dag.Op("diag", {mm}));
  auto result = CompileDag(dag, LocalConfig(),
                           FakeResolver().Add("X", 1 << 19, 4).Fn(),
                           NoOpts());
  EXPECT_EQ(CountOpcode(result, "collect"), 1);
}

TEST(CompileTest, PrefetchRewriteMarksChainRootsAsync) {
  HopDag dag;
  auto x = dag.Read("X");
  auto mm = dag.Op("tsmm", {x});
  dag.Write("a", dag.Op("diag", {mm}));
  CompileOptions options = NoOpts();
  options.async_operators = true;
  auto result = CompileDag(dag, LocalConfig(),
                           FakeResolver().Add("X", 1 << 19, 4).Fn(), options);
  const Instruction* collect = FindInst(result, "collect");
  ASSERT_NE(collect, nullptr);
  EXPECT_TRUE(collect->async);
}

TEST(CompileTest, CheckpointInjectedForSharedJobs) {
  HopDag dag;
  auto x = dag.Read("X");
  auto shared = dag.Op("relu", {x});  // Spark (large).
  // Two independent aggregates -> two jobs sharing `shared`.
  auto agg1 = dag.Op("colSums", {shared});
  auto agg2 = dag.Op("sum", {shared});
  dag.Write("a", dag.Op("diag", {agg1}));
  dag.Write("b", dag.Op("+", {agg2, dag.Literal(1.0)}));
  CompileOptions options = NoOpts();
  options.checkpoint_placement = true;
  auto result = CompileDag(dag, LocalConfig(),
                           FakeResolver().Add("X", 1 << 19, 4).Fn(), options);
  EXPECT_EQ(CountOpcode(result, "checkpoint"), 1);
}

TEST(CompileTest, LoopVarCheckpointWrapsSparkOutput) {
  HopDag dag;
  auto w = dag.Read("W");
  dag.Write("W", dag.Op("relu", {w}));
  CompileOptions options = NoOpts();
  options.checkpoint_placement = true;
  options.checkpoint_vars = {"W"};
  auto result = CompileDag(
      dag, LocalConfig(),
      FakeResolver().Add("W", 1 << 19, 4, Backend::kSpark).Fn(), options);
  EXPECT_EQ(CountOpcode(result, "checkpoint"), 1);
}

TEST(LinearizeTest, DepthFirstRespectsDependencies) {
  HopDag dag;
  auto x = dag.Read("X");
  auto a = dag.Op("relu", {x});
  auto b = dag.Op("+", {a, x});
  dag.Write("y", b);
  auto order = LinearizeDepthFirst(dag.outputs());
  std::unordered_map<int, size_t> position;
  for (size_t i = 0; i < order.size(); ++i) position[order[i]->id()] = i;
  for (const auto& hop : order) {
    for (const auto& input : hop->inputs()) {
      EXPECT_LT(position[input->id()], position[hop->id()]);
    }
  }
}

TEST(LinearizeTest, MaxParallelizeOrdersLongChainsFirst) {
  // Two Spark chains of different lengths feeding local consumers; the
  // longer chain's collect must be linearized first (Algorithm 2).
  HopDag dag;
  auto x = dag.Read("X");
  // Short chain: one Spark op.
  auto short_chain = dag.Op("colSums", {x});
  // Long chain: three Spark ops.
  auto long_chain =
      dag.Op("colSums", {dag.Op("relu", {dag.Op("+", {x, dag.Literal(1.0)})})});
  dag.Write("a", dag.Op("diag", {short_chain}));
  dag.Write("b", dag.Op("diag", {long_chain}));

  SystemConfig config = LocalConfig();
  auto result = CompileDag(dag, config,
                           FakeResolver().Add("X", 1 << 19, 4).Fn(),
                           [] {
                             CompileOptions o;
                             o.async_operators = true;
                             o.max_parallelize = true;
                             o.checkpoint_placement = false;
                             return o;
                           }());
  // Find the two collects; the one whose subtree has more Spark ops comes
  // first in the instruction stream.
  std::vector<size_t> collect_positions;
  std::vector<int> spark_ops_before;
  int spark_seen = 0;
  for (size_t i = 0; i < result.instructions.size(); ++i) {
    const auto& inst = result.instructions[i];
    if (inst.backend == Backend::kSpark && inst.opcode != "collect" &&
        inst.opcode != "parallelize") {
      ++spark_seen;
    }
    if (inst.opcode == "collect") {
      collect_positions.push_back(i);
      spark_ops_before.push_back(spark_seen);
    }
  }
  ASSERT_EQ(collect_positions.size(), 2u);
  // First collect closes the long chain: 3 spark ops precede it.
  EXPECT_GE(spark_ops_before[0], 3);
}

TEST(LinearizeTest, AllLocalFallsBackToDepthFirst) {
  HopDag dag;
  auto x = dag.Read("X");
  dag.Write("y", dag.Op("relu", {x}));
  auto df = LinearizeDepthFirst(dag.outputs());
  auto mp = LinearizeMaxParallelize(dag.outputs());
  ASSERT_EQ(df.size(), mp.size());
  for (size_t i = 0; i < df.size(); ++i) EXPECT_EQ(df[i], mp[i]);
}

TEST(ProgramTest, AutoTuningSetsDelayFactors) {
  // Loop-independent block -> n=1; loop-dependent block -> n=4.
  Program program;
  auto loop = MakeForBlock("i", {1, 2, 3});
  auto reusable = MakeBasicBlock();
  {
    auto& dag = reusable->dag();
    dag.Write("a", dag.Op("relu", {dag.Read("X")}));
  }
  auto dependent = MakeBasicBlock();
  {
    auto& dag = dependent->dag();
    dag.Write("b", dag.Op("+", {dag.Read("X"), dag.Read("i")}));
  }
  loop->body = {reusable, dependent};
  program.blocks.push_back(loop);

  SystemConfig config;
  config.auto_parameter_tuning = true;
  config.checkpoint_placement = false;
  config.eviction_injection = false;
  OptimizeProgram(&program, config);

  EXPECT_EQ(reusable->delay_factor, 1);
  EXPECT_EQ(reusable->storage_level, StorageLevel::kMemoryAndDisk);
  EXPECT_GE(dependent->delay_factor, 2);
  EXPECT_EQ(dependent->storage_level, StorageLevel::kMemoryOnly);
}

TEST(ProgramTest, LoopCheckpointPlanningFindsUpdatedVars) {
  Program program;
  auto loop = MakeForBlock("i", {1, 2});
  auto body = MakeBasicBlock();
  {
    auto& dag = body->dag();
    auto w = dag.Read("W");
    dag.Write("W", dag.Op("relu", {w}));  // W updated each iteration.
    dag.Write("other", dag.Op("relu", {dag.Read("X")}));
  }
  loop->body = {body};
  program.blocks.push_back(loop);
  SystemConfig config;
  config.checkpoint_placement = true;
  config.auto_parameter_tuning = false;
  config.eviction_injection = false;
  OptimizeProgram(&program, config);
  EXPECT_EQ(body->checkpoint_vars.count("W"), 1u);
  EXPECT_EQ(body->checkpoint_vars.count("other"), 0u);
}

TEST(ProgramTest, EvictionInjectedBetweenShiftingGpuPatterns) {
  auto make_model_loop = [](double filters) {
    auto loop = MakeForBlock("b", {1, 2});
    auto block = MakeBasicBlock();
    auto& dag = block->dag();
    dag.Write("f", dag.Op("conv2d", {dag.Read("img"), dag.Read("w")},
                          {3, 16, 16, filters, 3, 3, 1, 1}));
    loop->body = {block};
    return loop;
  };
  Program program;
  program.blocks.push_back(make_model_loop(8));
  program.blocks.push_back(make_model_loop(32));  // Different pattern.
  SystemConfig config;
  config.eviction_injection = true;
  config.enable_gpu = true;
  config.checkpoint_placement = false;
  config.auto_parameter_tuning = false;
  OptimizeProgram(&program, config);
  ASSERT_EQ(program.blocks.size(), 3u);
  EXPECT_EQ(program.blocks[1]->kind(), Block::Kind::kEvict);
}

TEST(ProgramTest, NoEvictionForRepeatingPatterns) {
  auto make_loop = [] {
    auto loop = MakeForBlock("b", {1, 2});
    auto block = MakeBasicBlock();
    auto& dag = block->dag();
    dag.Write("f", dag.Op("conv2d", {dag.Read("img"), dag.Read("w")},
                          {3, 16, 16, 8, 3, 3, 1, 1}));
    loop->body = {block};
    return loop;
  };
  Program program;
  program.blocks.push_back(make_loop());
  program.blocks.push_back(make_loop());  // Same pattern repeats.
  SystemConfig config;
  config.eviction_injection = true;
  config.checkpoint_placement = false;
  config.auto_parameter_tuning = false;
  OptimizeProgram(&program, config);
  EXPECT_EQ(program.blocks.size(), 2u);
}

TEST(ProgramTest, OptimizeIsIdempotent) {
  Program program;
  auto loop = MakeForBlock("i", {1});
  auto block = MakeBasicBlock();
  block->dag().Write("a", block->dag().Op("relu", {block->dag().Read("X")}));
  loop->body = {block};
  program.blocks.push_back(loop);
  SystemConfig config;
  OptimizeProgram(&program, config);
  const int delay = block->delay_factor;
  OptimizeProgram(&program, config);  // No-op on second call.
  EXPECT_EQ(block->delay_factor, delay);
}

TEST(CompileTest, UnknownOpcodeThrows) {
  HopDag dag;
  dag.Write("y", dag.Op("nonsense", {dag.Read("X")}));
  EXPECT_THROW(CompileDag(dag, LocalConfig(),
                          FakeResolver().Add("X", 4, 4).Fn(), NoOpts()),
               MemphisError);
}

TEST(CompileTest, CompileDoesNotMutateSourceDag) {
  HopDag dag;
  auto x = dag.Read("X");
  dag.Write("mm", dag.Op("matmult", {dag.Op("transpose", {x}), x}));
  const size_t hops_before = dag.all_hops().size();
  auto r1 = CompileDag(dag, LocalConfig(),
                       FakeResolver().Add("X", 50, 4).Fn(), NoOpts());
  auto r2 = CompileDag(dag, LocalConfig(),
                       FakeResolver().Add("X", 50, 4).Fn(), NoOpts());
  EXPECT_EQ(dag.all_hops().size(), hops_before);
  EXPECT_EQ(dag.all_hops()[2]->opcode(), "matmult");  // Not fused in place.
  EXPECT_EQ(r1.instructions.size(), r2.instructions.size());
}

// --- operator fusion (tile-at-a-time groups; see compiler/fusion.h) ---------

TEST(FusionTest, ElementwiseChainFusesIntoOneGroup) {
  HopDag dag;
  auto x = dag.Read("X");
  auto y = dag.Read("Y");
  auto z = dag.Read("Z");
  dag.Write("out", dag.Op("exp", {dag.Op("+", {dag.Op("*", {x, y}), z})}));
  auto result = CompileDag(
      dag, LocalConfig(),
      FakeResolver().Add("X", 100, 10).Add("Y", 100, 10).Add("Z", 100, 10).Fn(),
      NoOpts());
  EXPECT_EQ(CountOpcode(result, "fused"), 1);
  EXPECT_EQ(CountOpcode(result, "*"), 0);
  EXPECT_EQ(CountOpcode(result, "+"), 0);
  EXPECT_EQ(CountOpcode(result, "exp"), 0);
  const Instruction* inst = FindInst(result, "fused");
  ASSERT_NE(inst, nullptr);
  ASSERT_NE(inst->fused, nullptr);
  EXPECT_EQ(inst->fused->recipes.size(), 3u);
  EXPECT_EQ(inst->fused->recipes.back().opcode, "exp");  // Root last.
  EXPECT_EQ(inst->fused->num_inputs, 3u);
  EXPECT_EQ(inst->fused->program.ops.size(), 3u);
  EXPECT_EQ(inst->out_shape.rows, 100u);
  EXPECT_EQ(inst->out_shape.cols, 10u);
  EXPECT_EQ(inst->input_slots.size(), 3u);
}

TEST(FusionTest, ReduceRootFusesItsMapChain) {
  HopDag dag;
  dag.Write("s", dag.Op("sum", {dag.Op("sigmoid", {dag.Read("X")})}));
  auto result = CompileDag(dag, LocalConfig(),
                           FakeResolver().Add("X", 200, 10).Fn(), NoOpts());
  EXPECT_EQ(CountOpcode(result, "fused"), 1);
  EXPECT_EQ(CountOpcode(result, "sum"), 0);
  EXPECT_EQ(CountOpcode(result, "sigmoid"), 0);
  const Instruction* inst = FindInst(result, "fused");
  ASSERT_NE(inst->fused, nullptr);
  EXPECT_EQ(inst->fused->program.reduce, kernels::TileReduce::kSum);
  EXPECT_EQ(inst->fused->recipes.back().opcode, "sum");
  EXPECT_EQ(inst->out_shape.Cells(), 1u);
}

TEST(FusionTest, OutputBoundIntermediateStaysMaterialized) {
  // t is program-visible: swallowing it would lose its binding (and its
  // reuse point), so exp compiles alone and nothing fuses.
  HopDag dag;
  auto t = dag.Op("+", {dag.Read("X"), dag.Read("Y")});
  dag.Write("t", t);
  dag.Write("out", dag.Op("exp", {t}));
  auto result = CompileDag(
      dag, LocalConfig(),
      FakeResolver().Add("X", 100, 10).Add("Y", 100, 10).Fn(), NoOpts());
  EXPECT_EQ(CountOpcode(result, "fused"), 0);
  EXPECT_EQ(CountOpcode(result, "+"), 1);
  EXPECT_EQ(CountOpcode(result, "exp"), 1);
}

TEST(FusionTest, SharedCheapIntermediateIsDuplicated) {
  // One shared one-op intermediate: recomputing it (2 * cells) beats a
  // materialized round-trip (3 * cells), so both consumers swallow a copy.
  HopDag dag;
  auto t = dag.Op("+", {dag.Read("X"), dag.Read("Y")});
  dag.Write("a", dag.Op("exp", {t}));
  dag.Write("b", dag.Op("abs", {t}));
  auto result = CompileDag(
      dag, LocalConfig(),
      FakeResolver().Add("X", 100, 10).Add("Y", 100, 10).Fn(), NoOpts());
  EXPECT_EQ(CountOpcode(result, "fused"), 2);
  EXPECT_EQ(CountOpcode(result, "+"), 0);
  for (const auto& inst : result.instructions) {
    if (inst.opcode != "fused") continue;
    ASSERT_NE(inst.fused, nullptr);
    EXPECT_EQ(inst.fused->recipes.size(), 2u);
  }
}

TEST(FusionTest, SharedChainBecomesAMaterializationPoint) {
  // The shared intermediate heads a two-op chain: duplicating it into both
  // groups would recompute the whole chain twice (4 * cells), while
  // materializing it costs one write plus two reads (3 * cells). The plan
  // enumeration must pick the materialization point, leaving one fused
  // group rooted at t and two unfused consumers.
  HopDag dag;
  auto t = dag.Op("exp", {dag.Op("+", {dag.Read("X"), dag.Read("Y")})});
  dag.Write("a", dag.Op("sqrt", {t}));
  dag.Write("b", dag.Op("abs", {t}));
  auto result = CompileDag(
      dag, LocalConfig(),
      FakeResolver().Add("X", 100, 10).Add("Y", 100, 10).Fn(), NoOpts());
  EXPECT_EQ(CountOpcode(result, "fused"), 1);
  EXPECT_EQ(CountOpcode(result, "sqrt"), 1);
  EXPECT_EQ(CountOpcode(result, "abs"), 1);
  EXPECT_EQ(CountOpcode(result, "+"), 0);
  EXPECT_EQ(CountOpcode(result, "exp"), 0);
  const Instruction* inst = FindInst(result, "fused");
  ASSERT_NE(inst->fused, nullptr);
  EXPECT_EQ(inst->fused->recipes.back().opcode, "exp");
}

TEST(FusionTest, BroadcastOperandBecomesRowInput) {
  HopDag dag;
  auto a = dag.Op("-", {dag.Read("X"), dag.Read("mu")});
  dag.Write("out", dag.Op("abs", {a}));
  auto result = CompileDag(
      dag, LocalConfig(),
      FakeResolver().Add("X", 100, 10).Add("mu", 1, 10).Fn(), NoOpts());
  EXPECT_EQ(CountOpcode(result, "fused"), 1);
  const Instruction* inst = FindInst(result, "fused");
  ASSERT_NE(inst->fused, nullptr);
  ASSERT_EQ(inst->fused->program.inputs.size(), 2u);
  EXPECT_EQ(inst->fused->program.inputs[0], kernels::TileInput::kFull);
  EXPECT_EQ(inst->fused->program.inputs[1], kernels::TileInput::kRow);
}

TEST(FusionTest, NonFusableProducersStayOutside) {
  // matmult can never join a group; exp alone has no interior, so the
  // stream compiles exactly as without the pass.
  HopDag dag;
  dag.Write("out", dag.Op("exp", {dag.Op("matmult",
                                         {dag.Read("X"), dag.Read("W")})}));
  auto result = CompileDag(
      dag, LocalConfig(),
      FakeResolver().Add("X", 100, 10).Add("W", 10, 4).Fn(), NoOpts());
  EXPECT_EQ(CountOpcode(result, "fused"), 0);
  EXPECT_EQ(CountOpcode(result, "matmult"), 1);
  EXPECT_EQ(CountOpcode(result, "exp"), 1);
}

TEST(FusionTest, ConfigSwitchDisablesThePass) {
  HopDag dag;
  dag.Write("out", dag.Op("exp", {dag.Op("+", {dag.Read("X"),
                                               dag.Read("Y")})}));
  SystemConfig config = LocalConfig();
  config.operator_fusion = false;
  auto result = CompileDag(
      dag, config, FakeResolver().Add("X", 100, 10).Add("Y", 100, 10).Fn(),
      NoOpts());
  EXPECT_EQ(CountOpcode(result, "fused"), 0);
  EXPECT_EQ(CountOpcode(result, "+"), 1);
  EXPECT_EQ(CountOpcode(result, "exp"), 1);
}

}  // namespace
}  // namespace memphis::compiler
