// Properties of the virtual-time engine: timelines never run backwards,
// multi-lane reservations never exceed lane capacity, and the max-compose
// future semantics match a straightforward event-order oracle.

#include <gtest/gtest.h>

#include <queue>

#include "common/rng.h"
#include "sim/timeline.h"

namespace memphis::sim {
namespace {

class TimelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(TimelineProperty, ReservationsMonotoneAndNonOverlapping) {
  Rng rng(GetParam());
  Timeline timeline("t");
  double now = 0.0;
  double previous_end = 0.0;
  double total = 0.0;
  for (int i = 0; i < 200; ++i) {
    now += rng.NextDouble() * 0.01;  // Caller's clock advances arbitrarily.
    const double duration = rng.NextDouble() * 0.02;
    const double end = timeline.Reserve(now, duration);
    // FIFO: each completion is no earlier than the previous one, and no
    // earlier than issue time + duration.
    EXPECT_GE(end, previous_end);
    EXPECT_GE(end + 1e-15, now + duration);
    previous_end = end;
    total += duration;
    EXPECT_NEAR(timeline.busy_time(), total, 1e-12);
  }
  // The resource can never be busier than the elapsed horizon.
  EXPECT_LE(timeline.busy_time(), timeline.available_at() + 1e-12);
}

TEST_P(TimelineProperty, MultiLaneNeverExceedsParallelism) {
  Rng rng(GetParam() + 100);
  const int lanes = 1 + static_cast<int>(rng.NextInt(4));
  MultiLaneTimeline timeline("cluster", lanes);
  struct Interval {
    double start;
    double end;
  };
  std::vector<Interval> intervals;
  double now = 0.0;
  for (int i = 0; i < 150; ++i) {
    now += rng.NextDouble() * 0.005;
    const double duration = 0.001 + rng.NextDouble() * 0.02;
    const double end = timeline.Reserve(now, duration);
    EXPECT_GE(end + 1e-15, now + duration);
    intervals.push_back({end - duration, end});
  }
  // Sweep: concurrency never exceeds the lane count.
  std::vector<std::pair<double, int>> events;
  for (const auto& interval : intervals) {
    // `end - duration` can land a few ulps before the true start; nudge the
    // open event so back-to-back reservations on one lane don't register as
    // spuriously concurrent.
    events.emplace_back(interval.start + 1e-9, +1);
    events.emplace_back(interval.end, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              return a.first < b.first ||
                     (a.first == b.first && a.second < b.second);
            });
  int active = 0;
  for (const auto& [time, delta] : events) {
    active += delta;
    EXPECT_LE(active, lanes);
    EXPECT_GE(active, 0);
  }
}

TEST_P(TimelineProperty, MoreLanesNeverSlower) {
  Rng rng(GetParam() + 200);
  std::vector<double> durations;
  for (int i = 0; i < 60; ++i) durations.push_back(rng.NextDouble() * 0.01);
  auto makespan = [&](int lanes) {
    MultiLaneTimeline timeline("t", lanes);
    double last = 0.0;
    for (double duration : durations) {
      last = std::max(last, timeline.Reserve(0.0, duration));
    }
    return last;
  };
  const double one = makespan(1);
  const double two = makespan(2);
  const double four = makespan(4);
  EXPECT_LE(two, one + 1e-15);
  EXPECT_LE(four, two + 1e-15);
  double total = 0.0;
  for (double duration : durations) total += duration;
  EXPECT_NEAR(one, total, 1e-12);         // One lane = serial sum.
  EXPECT_GE(four + 1e-12, total / 4.0);   // Lower bound: perfect split.
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace memphis::sim
