#include <gtest/gtest.h>

#include "common/status.h"
#include "lineage/lineage_item.h"
#include "lineage/lineage_map.h"
#include "lineage/lineage_serde.h"

namespace memphis {
namespace {

TEST(LineageItemTest, LeafProperties) {
  auto leaf = LineageItem::Leaf("extern", "X");
  EXPECT_EQ(leaf->opcode(), "extern");
  EXPECT_EQ(leaf->data(), "X");
  EXPECT_EQ(leaf->height(), 0);
  EXPECT_TRUE(leaf->inputs().empty());
}

TEST(LineageItemTest, HeightIsLongestPath) {
  auto a = LineageItem::Leaf("extern", "a");
  auto b = LineageItem::Create("op1", "", {a});
  auto c = LineageItem::Create("op2", "", {a, b});
  EXPECT_EQ(b->height(), 1);
  EXPECT_EQ(c->height(), 2);
}

TEST(LineageItemTest, HashEqualForStructurallyEqualDags) {
  auto x1 = LineageItem::Leaf("extern", "X");
  auto x2 = LineageItem::Leaf("extern", "X");
  auto a = LineageItem::Create("tsmm", "", {x1});
  auto b = LineageItem::Create("tsmm", "", {x2});
  EXPECT_EQ(a->hash(), b->hash());
}

TEST(LineageItemTest, HashDiffersOnOpcodeDataInputs) {
  auto x = LineageItem::Leaf("extern", "X");
  auto y = LineageItem::Leaf("extern", "Y");
  EXPECT_NE(LineageItem::Create("a", "", {x})->hash(),
            LineageItem::Create("b", "", {x})->hash());
  EXPECT_NE(LineageItem::Create("a", "1", {x})->hash(),
            LineageItem::Create("a", "2", {x})->hash());
  EXPECT_NE(LineageItem::Create("a", "", {x})->hash(),
            LineageItem::Create("a", "", {y})->hash());
}

TEST(LineageEqualsTest, StructuralEqualityAcrossObjects) {
  auto make = [] {
    auto x = LineageItem::Leaf("extern", "X");
    auto t = LineageItem::Create("transpose", "", {x});
    return LineageItem::Create("matmult", "", {t, x});
  };
  EXPECT_TRUE(LineageEquals(make(), make()));
}

TEST(LineageEqualsTest, DetectsDeepDifference) {
  auto x = LineageItem::Leaf("extern", "X");
  auto y = LineageItem::Leaf("extern", "Y");
  auto a = LineageItem::Create("matmult", "",
                               {LineageItem::Create("transpose", "", {x}), x});
  auto b = LineageItem::Create("matmult", "",
                               {LineageItem::Create("transpose", "", {x}), y});
  EXPECT_FALSE(LineageEquals(a, b));
}

TEST(LineageEqualsTest, SharedSubDagIdentityShortCircuit) {
  // Deep shared chain: equality must terminate quickly via identity.
  auto node = LineageItem::Leaf("extern", "X");
  for (int i = 0; i < 2000; ++i) {
    node = LineageItem::Create("op", std::to_string(i % 3), {node, node});
  }
  EXPECT_TRUE(LineageEquals(node, node));
}

TEST(LineageEqualsTest, MemoizationHandlesDiamonds) {
  auto build = [] {
    auto x = LineageItem::Leaf("extern", "X");
    auto a = LineageItem::Create("a", "", {x});
    auto b = LineageItem::Create("b", "", {a, a});  // Diamond over `a`.
    return LineageItem::Create("c", "", {b, a});
  };
  EXPECT_TRUE(LineageEquals(build(), build()));
}

TEST(LineageEqualsTest, NullHandling) {
  LineageItemPtr null;
  auto x = LineageItem::Leaf("extern", "X");
  EXPECT_TRUE(LineageEquals(null, null));
  EXPECT_FALSE(LineageEquals(null, x));
  EXPECT_FALSE(LineageEquals(x, null));
}

TEST(LineageDagSizeTest, CountsDistinctNodes) {
  auto x = LineageItem::Leaf("extern", "X");
  auto a = LineageItem::Create("a", "", {x});
  auto b = LineageItem::Create("b", "", {a, a});
  EXPECT_EQ(LineageDagSize(b), 3u);
  EXPECT_EQ(LineageDagSize(nullptr), 0u);
}

TEST(LineageMapTest, TraceBuildsFromLiveVariables) {
  LineageMap map;
  map.Set("X", LineageItem::Leaf("extern", "X"));
  auto item = map.Trace("Y", "transpose", "", {"X"});
  EXPECT_EQ(item->opcode(), "transpose");
  EXPECT_EQ(item->inputs()[0]->data(), "X");
  EXPECT_EQ(map.Get("Y"), item);
}

TEST(LineageMapTest, UnknownInputBecomesExternLeaf) {
  LineageMap map;
  auto item = map.Trace("Y", "op", "", {"unbound"});
  EXPECT_EQ(item->inputs()[0]->opcode(), "extern");
  EXPECT_EQ(item->inputs()[0]->data(), "unbound");
}

TEST(LineageMapTest, SetRemoveClear) {
  LineageMap map;
  map.Set("a", LineageItem::Leaf("extern", "a"));
  EXPECT_EQ(map.size(), 1u);
  map.Remove("a");
  EXPECT_EQ(map.Get("a"), nullptr);
  map.Set("b", LineageItem::Leaf("extern", "b"));
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
}

TEST(LineageMapTest, CompactionIncreasesSharing) {
  // After replacing a variable's entry with a cache key, the two DAGs share
  // the sub-DAG by object identity.
  LineageMap map;
  map.Set("X", LineageItem::Leaf("extern", "X"));
  auto first = map.Trace("v1", "tsmm", "", {"X"});
  auto probe = map.Trace("v2", "tsmm", "", {"X"});
  EXPECT_TRUE(LineageEquals(first, probe));
  EXPECT_NE(first.get(), probe.get());
  map.Set("v2", first);  // Compaction (Figure 5).
  EXPECT_EQ(map.Get("v1").get(), map.Get("v2").get());
}

TEST(LineageSerdeTest, RoundTripPreservesStructure) {
  auto x = LineageItem::Leaf("extern", "X");
  auto t = LineageItem::Create("transpose", "", {x});
  auto mm = LineageItem::Create("matmult", "", {t, x});
  const std::string log = SerializeLineage(mm);
  auto restored = DeserializeLineage(log);
  EXPECT_TRUE(LineageEquals(mm, restored));
}

TEST(LineageSerdeTest, SharingPreserved) {
  auto x = LineageItem::Leaf("extern", "X");
  auto a = LineageItem::Create("a", "", {x});
  auto b = LineageItem::Create("b", "", {a, a});
  auto restored = DeserializeLineage(SerializeLineage(b));
  // Shared child written once -> restored DAG has 3 nodes, not 4.
  EXPECT_EQ(LineageDagSize(restored), 3u);
  EXPECT_EQ(restored->inputs()[0].get(), restored->inputs()[1].get());
}

TEST(LineageSerdeTest, EscapesSpecialCharacters) {
  auto leaf = LineageItem::Leaf("op\twith\ttabs", "data\nwith\nnewlines\\");
  auto restored = DeserializeLineage(SerializeLineage(leaf));
  EXPECT_EQ(restored->opcode(), "op\twith\ttabs");
  EXPECT_EQ(restored->data(), "data\nwith\nnewlines\\");
}

TEST(LineageSerdeTest, MalformedLogThrows) {
  EXPECT_THROW(DeserializeLineage(""), MemphisError);
  EXPECT_THROW(DeserializeLineage("not a log"), MemphisError);
  EXPECT_THROW(DeserializeLineage("0\top\t\t99\n"), MemphisError);
}

TEST(LineageSerdeTest, LogSizeProportionalToDagNotTree) {
  // A chain of binary ops over shared inputs would explode as a tree.
  auto node = LineageItem::Leaf("extern", "X");
  for (int i = 0; i < 30; ++i) {
    node = LineageItem::Create("op", std::to_string(i), {node, node});
  }
  const std::string log = SerializeLineage(node);
  EXPECT_LT(log.size(), 2000u);  // 31 lines, not 2^30.
}

}  // namespace
}  // namespace memphis
