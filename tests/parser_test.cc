#include <gtest/gtest.h>

#include "common/status.h"
#include "compiler/parser.h"
#include "core/system.h"
#include "matrix/kernels.h"

namespace memphis::compiler {
namespace {

MemphisSystem MakeSystem() {
  SystemConfig config;
  config.reuse_mode = ReuseMode::kMemphis;
  return MemphisSystem(config);
}

TEST(ParserTest, SimpleAssignment) {
  auto block = ParseScript("y = X + 1;");
  ASSERT_EQ(block->dag().output_names().size(), 1u);
  EXPECT_EQ(block->dag().output_names()[0], "y");
}

TEST(ParserTest, PrecedenceMultiplicationBeforeAddition) {
  MemphisSystem system = MakeSystem();
  system.ctx().BindMatrix("a", MatrixBlock::Create(1, 1, 2.0));
  auto block = ParseScript("r = a + 3 * 4;");
  system.Run(*block);
  EXPECT_EQ(system.ctx().FetchScalar("r"), 14.0);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  MemphisSystem system = MakeSystem();
  system.ctx().BindMatrix("a", MatrixBlock::Create(1, 1, 2.0));
  auto block = ParseScript("r = (a + 3) * 4;");
  system.Run(*block);
  EXPECT_EQ(system.ctx().FetchScalar("r"), 20.0);
}

TEST(ParserTest, PowerIsRightAssociative) {
  MemphisSystem system = MakeSystem();
  system.ctx().BindMatrix("two", MatrixBlock::Create(1, 1, 2.0));
  auto block = ParseScript("r = two ^ 3 ^ 2;");  // 2^(3^2) = 512.
  system.Run(*block);
  EXPECT_EQ(system.ctx().FetchScalar("r"), 512.0);
}

TEST(ParserTest, MatrixMultiplyAndTranspose) {
  MemphisSystem system = MakeSystem();
  auto x = kernels::RandGaussian(40, 6, 1);
  system.ctx().BindMatrix("X", x);
  auto block = ParseScript("gram = t(X) %*% X;");
  system.Run(*block);
  auto expected = kernels::MatMult(*kernels::Transpose(*x), *x);
  EXPECT_TRUE(system.ctx().FetchMatrix("gram")->ApproxEquals(*expected, 1e-9));
}

TEST(ParserTest, FunctionWithNumericArguments) {
  MemphisSystem system = MakeSystem();
  auto block = ParseScript("ones = rand(4, 3, 1, 1, 1, 7); s = sum(ones);");
  system.Run(*block);
  EXPECT_EQ(system.ctx().FetchScalar("s"), 12.0);
}

TEST(ParserTest, LocalsChainAcrossStatements) {
  MemphisSystem system = MakeSystem();
  system.ctx().BindMatrix("X", kernels::RandGaussian(30, 4, 2));
  system.ctx().BindMatrix("y", kernels::RandGaussian(30, 1, 3));
  auto block = ParseScript(R"(
    # Example 4.1 in script form.
    A = t(X) %*% X + diag(rand(4, 1, 1, 1, 1, 7) * 0.5);
    b = t(t(y) %*% X);
    beta = solve(A, b);
  )");
  system.Run(*block);
  EXPECT_EQ(system.ctx().FetchMatrix("beta")->rows(), 4u);
  // Verify against the programmatic computation.
  auto x = system.ctx().FetchMatrix("X");
  auto yv = system.ctx().FetchMatrix("y");
  auto xt = kernels::Transpose(*x);
  auto a = kernels::Binary(
      kernels::BinaryOp::kAdd, *kernels::MatMult(*xt, *x),
      *kernels::Diag(*MatrixBlock::Create(4, 1, 0.5)));
  auto expected = kernels::Solve(*a, *kernels::MatMult(*xt, *yv));
  EXPECT_TRUE(system.ctx().FetchMatrix("beta")->ApproxEquals(*expected, 1e-9));
}

TEST(ParserTest, ComparisonOperators) {
  MemphisSystem system = MakeSystem();
  system.ctx().BindMatrix("v", MatrixBlock::Create(1, 3,
                                                   std::vector<double>{-1, 0, 2}));
  auto block = ParseScript("m = v > 0; s = sum(m);");
  system.Run(*block);
  EXPECT_EQ(system.ctx().FetchScalar("s"), 1.0);
}

TEST(ParserTest, NegativeLiterals) {
  MemphisSystem system = MakeSystem();
  system.ctx().BindMatrix("a", MatrixBlock::Create(1, 1, 10.0));
  auto block = ParseScript("r = a * -2;");
  system.Run(*block);
  EXPECT_EQ(system.ctx().FetchScalar("r"), -20.0);
}

TEST(ParserTest, CommentsIgnored) {
  auto block = ParseScript("x = 1 + 1;  # trailing comment\n# full line\n");
  EXPECT_EQ(block->dag().output_names().size(), 1u);
}

TEST(ParserTest, ReuseWorksThroughScripts) {
  MemphisSystem system = MakeSystem();
  system.ctx().BindMatrix("X", kernels::RandGaussian(64, 8, 4));
  auto block = ParseScript("g = tsmm(X);");
  system.Run(*block);
  system.Run(*block);
  system.Run(*block);
  EXPECT_GT(system.ctx().cache().stats().TotalHits(), 0);
}

TEST(ParserTest, SyntaxErrorsCarryPositions) {
  EXPECT_THROW(ParseScript("x = ;"), MemphisError);
  EXPECT_THROW(ParseScript("x = 1 + ;"), MemphisError);
  EXPECT_THROW(ParseScript("= 1;"), MemphisError);
  EXPECT_THROW(ParseScript("x = 1"), MemphisError);       // Missing ';'.
  EXPECT_THROW(ParseScript("x = frob(1);"), MemphisError);  // Unknown fn.
  EXPECT_THROW(ParseScript(""), MemphisError);
  EXPECT_THROW(ParseScript("x = 1; @"), MemphisError);
}

TEST(ParserTest, ProgramWithForLoop) {
  MemphisSystem system = MakeSystem();
  system.ctx().BindMatrix("X", kernels::RandGaussian(16, 2, 5));
  system.ctx().BindScalar("acc", 0.0);
  Program program = ParseProgram(R"(
    total = sum(X);
    for (i in 1:4) {
      acc = acc + i;
    }
  )");
  ASSERT_EQ(program.blocks.size(), 2u);
  EXPECT_EQ(program.blocks[1]->kind(), Block::Kind::kFor);
  system.Run(program);
  EXPECT_EQ(system.ctx().FetchScalar("acc"), 10.0);
  EXPECT_NEAR(system.ctx().FetchScalar("total"),
              kernels::Sum(*system.ctx().FetchMatrix("X")), 1e-9);
}

TEST(ParserTest, ProgramLoopGetsCompilerRewrites) {
  // The parsed loop participates in the loop-checkpoint planning pass.
  Program program = ParseProgram(R"(
    for (i in 1:3) {
      W = relu(W);
    }
  )");
  SystemConfig config;
  OptimizeProgram(&program, config);
  auto* loop = static_cast<ForBlock*>(program.blocks[0].get());
  auto* body = static_cast<BasicBlock*>(loop->body[0].get());
  EXPECT_EQ(body->checkpoint_vars.count("W"), 1u);
}

}  // namespace
}  // namespace memphis::compiler
