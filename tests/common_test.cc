#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/config.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/util.h"

namespace memphis {
namespace {

TEST(HashTest, Fnv1aIsDeterministic) {
  EXPECT_EQ(Fnv1a("memphis"), Fnv1a("memphis"));
  EXPECT_NE(Fnv1a("memphis"), Fnv1a("memphi"));
  EXPECT_NE(Fnv1a(std::string_view("a", 1)), Fnv1a(std::string_view("ab", 2)));
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashInt(1), HashInt(2)),
            HashCombine(HashInt(2), HashInt(1)));
}

TEST(HashTest, HashIntAvoidsTrivialCollisions) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(HashInt(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextInt(13), 13u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(UtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3.5 * 1024 * 1024), "3.5 MB");
}

TEST(UtilTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(FormatSeconds(0.0021), "2.10ms");
  EXPECT_EQ(FormatSeconds(3e-6), "3.00us");
}

TEST(UtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(1, 100), 1u);
}

TEST(UtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ConfigTest, ScaledAppliesMemScale) {
  SystemConfig config;
  config.mem_scale = 0.5;
  config.driver_memory = 100;
  config.gpu_memory = 64;
  SystemConfig scaled = config.Scaled();
  EXPECT_EQ(scaled.driver_memory, 50u);
  EXPECT_EQ(scaled.gpu_memory, 32u);
  EXPECT_EQ(scaled.mem_scale, 1.0);
}

TEST(ConfigTest, ScaledPreservesNonByteFields) {
  SystemConfig config;
  config.num_executors = 4;
  config.default_delay_factor = 3;
  SystemConfig scaled = config.Scaled();
  EXPECT_EQ(scaled.num_executors, 4);
  EXPECT_EQ(scaled.default_delay_factor, 3);
}

TEST(ConfigTest, ModeNames) {
  EXPECT_STREQ(ToString(ReuseMode::kNone), "Base");
  EXPECT_STREQ(ToString(ReuseMode::kMemphis), "MPH");
  EXPECT_STREQ(ToString(Backend::kSpark), "SP");
}

TEST(StatusTest, CheckThrowsWithContext) {
  try {
    MEMPHIS_CHECK_MSG(false, "context message");
    FAIL() << "expected throw";
  } catch (const MemphisError& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

TEST(StatusTest, GpuOomIsMemphisError) {
  EXPECT_THROW(throw GpuOutOfMemoryError("full"), MemphisError);
}

}  // namespace
}  // namespace memphis
