#ifndef MEMPHIS_TESTS_TESTING_UTIL_H_
#define MEMPHIS_TESTS_TESTING_UTIL_H_

// Shared helpers for the gtest suites: the MEMPHIS_TEST_SEED environment
// override (rerun a randomized suite under a specific seed without
// recompiling) and matrix/scalar comparison built on the same Tolerance
// policy the metamorphic fuzzer uses, replacing per-test 1e-9 literals.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>

#include "common/tolerance.h"
#include "matrix/matrix_block.h"

namespace memphis::testing {

/// RAII scratch directory for tests that touch disk (the durable tier's
/// segment files). Created unique under the system temp dir, recursively
/// removed on destruction, so test segment files never leak into the tree.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "memphis-test") {
    static std::atomic<uint64_t> counter{0};
    const uint64_t id = counter.fetch_add(1);
    std::error_code ec;
    const auto base = std::filesystem::temp_directory_path(ec);
    path_ = (base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                     std::to_string(id)))
                .string();
    std::filesystem::remove_all(path_, ec);
    std::filesystem::create_directories(path_, ec);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  /// A path inside the directory.
  std::string Sub(const std::string& name) const {
    return (std::filesystem::path(path_) / name).string();
  }

 private:
  std::string path_;
};

/// Base seed for a randomized suite. Returns `fallback` unless the
/// MEMPHIS_TEST_SEED environment variable is set to a non-negative integer,
/// in which case that value wins -- so a failure seen in a fuzz campaign or
/// CI log can be replayed exactly: MEMPHIS_TEST_SEED=1165 ctest -R property.
inline uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("MEMPHIS_TEST_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return static_cast<uint64_t>(parsed);
}

/// The historical test tolerance: 1e-9 absolute plus a matching relative
/// term and a few ULPs of slack (see common/tolerance.h for the policy).
inline Tolerance DefaultTol() { return Tolerance{}; }

/// gtest predicate: EXPECT_TRUE(ScalarsClose(a, b)) with a diagnostic that
/// prints both values to full precision on failure.
inline ::testing::AssertionResult ScalarsClose(
    double actual, double expected, const Tolerance& tol = Tolerance{}) {
  if (Close(actual, expected, tol)) return ::testing::AssertionSuccess();
  std::ostringstream oss;
  oss.precision(17);
  oss << "scalars differ: actual=" << actual << " expected=" << expected
      << " |diff|=" << std::fabs(actual - expected);
  return ::testing::AssertionFailure() << oss.str();
}

/// gtest predicate: EXPECT_TRUE(MatricesClose(*a, *b)). Cell-wise Close()
/// under `tol`; on failure reports the first mismatching cell.
inline ::testing::AssertionResult MatricesClose(
    const MatrixBlock& actual, const MatrixBlock& expected,
    const Tolerance& tol = Tolerance{}) {
  if (actual.rows() != expected.rows() || actual.cols() != expected.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: actual " << actual.rows() << "x"
           << actual.cols() << " vs expected " << expected.rows() << "x"
           << expected.cols();
  }
  for (size_t r = 0; r < actual.rows(); ++r) {
    for (size_t c = 0; c < actual.cols(); ++c) {
      if (!Close(actual.At(r, c), expected.At(r, c), tol)) {
        std::ostringstream oss;
        oss.precision(17);
        oss << "cell (" << r << "," << c
            << ") differs: actual=" << actual.At(r, c)
            << " expected=" << expected.At(r, c);
        return ::testing::AssertionFailure() << oss.str();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace memphis::testing

#endif  // MEMPHIS_TESTS_TESTING_UTIL_H_
