#include <gtest/gtest.h>

#include "core/system.h"
#include "matrix/kernels.h"
#include "matrix/nn_kernels.h"

namespace memphis {
namespace {

SystemConfig TwoGpuConfig() {
  SystemConfig config;
  config.reuse_mode = ReuseMode::kMemphis;
  config.num_gpus = 2;
  config.gpu_offload_min_flops = 1e5;
  return config;
}

TEST(MultiGpuTest, ContextOwnsSeparateDevices) {
  MemphisSystem system(TwoGpuConfig());
  auto& ctx = system.ctx();
  EXPECT_EQ(ctx.num_gpus(), 2);
  EXPECT_NE(&ctx.gpu(0), &ctx.gpu(1));
  EXPECT_NE(&ctx.gpu_cache(0), &ctx.gpu_cache(1));
  EXPECT_EQ(ctx.gpu_cache(0).device(), 0);
  EXPECT_EQ(ctx.gpu_cache(1).device(), 1);
}

TEST(MultiGpuTest, AllocationsCarryDeviceAndOwner) {
  MemphisSystem system(TwoGpuConfig());
  double now = 0.0;
  auto a = system.ctx().gpu_cache(0).Allocate(1024, &now);
  auto b = system.ctx().gpu_cache(1).Allocate(1024, &now);
  EXPECT_EQ(a->device, 0);
  EXPECT_EQ(b->device, 1);
  EXPECT_EQ(a->owner, &system.ctx().gpu_cache(0));
  EXPECT_EQ(b->owner, &system.ctx().gpu_cache(1));
}

TEST(MultiGpuTest, IndependentChainsSpreadAcrossDevices) {
  MemphisSystem system(TwoGpuConfig());
  auto& ctx = system.ctx();
  ctx.BindMatrixWithId("A", kernels::RandGaussian(128, 128, 1), "mg:A");
  ctx.BindMatrixWithId("B", kernels::RandGaussian(128, 128, 2), "mg:B");
  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    // Two independent device chains.
    dag.Write("c1", dag.Op("relu", {dag.Op("matmult", {dag.Read("A"),
                                                       dag.Read("A")})}));
    dag.Write("c2", dag.Op("relu", {dag.Op("matmult", {dag.Read("B"),
                                                       dag.Read("B")})}));
  }
  system.Run(*block);
  // Both devices saw kernels (least-loaded placement alternates).
  EXPECT_GT(ctx.gpu(0).stats().kernels, 0);
  EXPECT_GT(ctx.gpu(1).stats().kernels, 0);
  // Results are correct regardless of placement.
  auto a = ctx.FetchMatrix("A");
  auto expected = kernels::Relu(*kernels::MatMult(*a, *a));
  EXPECT_TRUE(ctx.FetchMatrix("c1")->ApproxEquals(*expected, 1e-9));
}

TEST(MultiGpuTest, DeviceChainsStayLocal) {
  MemphisSystem system(TwoGpuConfig());
  auto& ctx = system.ctx();
  ctx.BindMatrixWithId("A", kernels::RandGaussian(96, 96, 3), "mg2:A");
  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    auto mm = dag.Op("matmult", {dag.Read("A"), dag.Read("A")});
    dag.Write("out", dag.Op("relu", {dag.Op("softmax", {mm})}));
  }
  system.Run(*block);
  // A single dependent chain runs entirely on one device (input affinity).
  const int64_t k0 = ctx.gpu(0).stats().kernels.value();
  const int64_t k1 = ctx.gpu(1).stats().kernels.value();
  EXPECT_TRUE(k0 == 0 || k1 == 0) << k0 << " vs " << k1;
}

TEST(MultiGpuTest, ReuseWorksAcrossDeviceCaches) {
  MemphisSystem system(TwoGpuConfig());
  auto& ctx = system.ctx();
  ctx.BindMatrixWithId("A", kernels::RandGaussian(96, 96, 4), "mg3:A");
  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    dag.Write("out", dag.Op("matmult", {dag.Read("A"), dag.Read("A")}));
  }
  system.Run(*block);
  system.Run(*block);
  system.Run(*block);
  EXPECT_GT(ctx.cache().stats().hits_gpu, 0);
}

TEST(MultiGpuTest, TwoGpusOverlapIndependentWork) {
  auto run = [](int gpus) {
    SystemConfig config = TwoGpuConfig();
    config.num_gpus = gpus;
    // Slow device rate so kernel time dominates host-side latencies and the
    // cross-device overlap is observable.
    sim::CostModel cm;
    cm.gpu_gflops = 0.5;
    MemphisSystem system(config, cm);
    auto& ctx = system.ctx();
    ctx.BindMatrixWithId("A", kernels::RandGaussian(160, 160, 5), "mg4:A");
    ctx.BindMatrixWithId("B", kernels::RandGaussian(160, 160, 6), "mg4:B");
    auto block = compiler::MakeBasicBlock();
    {
      auto& dag = block->dag();
      // Two independent heavy chains ending in local sums: with two devices
      // the chains run concurrently.
      auto c1 = dag.Op("matmult", {dag.Op("matmult", {dag.Read("A"),
                                                      dag.Read("A")}),
                                   dag.Read("A")});
      auto c2 = dag.Op("matmult", {dag.Op("matmult", {dag.Read("B"),
                                                      dag.Read("B")}),
                                   dag.Read("B")});
      dag.Write("s", dag.Op("+", {dag.Op("sum", {c1}), dag.Op("sum", {c2})}));
    }
    system.Run(*block);
    ctx.FetchScalar("s");
    return system.ElapsedSeconds();
  };
  EXPECT_LT(run(2), run(1));
}

}  // namespace
}  // namespace memphis
