#include <gtest/gtest.h>

#include <cmath>

#include "common/status.h"
#include "matrix/kernels.h"
#include "matrix/nn_kernels.h"

namespace memphis {
namespace {

using kernels::TensorShape;

MatrixPtr M(size_t rows, size_t cols, std::vector<double> values) {
  return MatrixBlock::Create(rows, cols, std::move(values));
}

TEST(NnTest, ReluClampsNegatives) {
  auto out = kernels::Relu(*M(1, 4, {-2, -0.5, 0, 3}));
  EXPECT_TRUE(out->ApproxEquals(*M(1, 4, {0, 0, 0, 3})));
}

TEST(NnTest, ReluBackwardMasksByPreActivation) {
  auto pre = M(1, 3, {-1, 0, 2});
  auto up = M(1, 3, {10, 20, 30});
  auto out = kernels::ReluBackward(*pre, *up);
  EXPECT_TRUE(out->ApproxEquals(*M(1, 3, {0, 0, 30})));
}

TEST(NnTest, SoftmaxRowsSumToOne) {
  auto out = kernels::Softmax(*M(2, 3, {1, 2, 3, -1, 0, 1}));
  for (size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 3; ++c) {
      sum += out->At(r, c);
      EXPECT_GT(out->At(r, c), 0.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(NnTest, SoftmaxNumericallyStable) {
  auto out = kernels::Softmax(*M(1, 2, {1000, 1001}));
  EXPECT_FALSE(std::isnan(out->At(0, 0)));
  EXPECT_NEAR(out->At(0, 0) + out->At(0, 1), 1.0, 1e-12);
  EXPECT_GT(out->At(0, 1), out->At(0, 0));
}

TEST(NnTest, DropoutDeterministicPerSeed) {
  auto x = kernels::Rand(10, 10, 1, 2, 1.0, 1);
  auto a = kernels::Dropout(*x, 0.5, 42);
  auto b = kernels::Dropout(*x, 0.5, 42);
  auto c = kernels::Dropout(*x, 0.5, 43);
  EXPECT_TRUE(a->ApproxEquals(*b));
  EXPECT_FALSE(a->ApproxEquals(*c));
}

TEST(NnTest, DropoutInvertedScaling) {
  auto x = MatrixBlock::Create(100, 100, 1.0);
  auto out = kernels::Dropout(*x, 0.8, 7);
  // Kept cells are scaled by 1/keep; expectation stays ~1.
  EXPECT_NEAR(kernels::Mean(*out), 1.0, 0.05);
  for (size_t i = 0; i < out->size(); ++i) {
    EXPECT_TRUE(out->data()[i] == 0.0 ||
                std::fabs(out->data()[i] - 1.25) < 1e-12);
  }
}

TEST(NnTest, DropoutKeepOneIsIdentity) {
  auto x = kernels::Rand(5, 5, 0, 1, 1.0, 2);
  EXPECT_TRUE(kernels::Dropout(*x, 1.0, 3)->ApproxEquals(*x));
}

TEST(NnTest, AffineMatchesManual) {
  auto x = M(1, 2, {1, 2});
  auto w = M(2, 2, {1, 0, 0, 1});
  auto bias = M(1, 2, {10, 20});
  auto out = kernels::Affine(*x, *w, *bias);
  EXPECT_TRUE(out->ApproxEquals(*M(1, 2, {11, 22})));
}

TEST(NnTest, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  TensorShape in{1, 3, 3};
  auto x = kernels::Rand(2, 9, -1, 1, 1.0, 4);
  auto filter = M(1, 1, {1});
  TensorShape out_shape;
  auto out = kernels::Conv2d(*x, *filter, in, 1, 1, 0, 1, &out_shape);
  EXPECT_TRUE(out->ApproxEquals(*x));
  EXPECT_EQ(out_shape.channels, 1u);
  EXPECT_EQ(out_shape.height, 3u);
}

TEST(NnTest, Conv2dSumKernel) {
  // 3x3 all-ones filter with padding 1 computes neighborhood sums.
  TensorShape in{1, 3, 3};
  auto x = M(1, 9, {1, 1, 1, 1, 1, 1, 1, 1, 1});
  auto filter = MatrixBlock::Create(1, 9, 1.0);
  auto out = kernels::Conv2d(*x, *filter, in, 3, 3, 1, 1, nullptr);
  EXPECT_EQ(out->At(0, 4), 9.0);  // Center: full 3x3 neighborhood.
  EXPECT_EQ(out->At(0, 0), 4.0);  // Corner: 2x2 neighborhood.
}

TEST(NnTest, Conv2dStrideShrinksOutput) {
  TensorShape in{2, 8, 8};
  auto x = kernels::Rand(3, in.Size(), 0, 1, 1.0, 5);
  auto filter = kernels::Rand(4, 2 * 9, -1, 1, 1.0, 6);
  TensorShape out_shape;
  auto out = kernels::Conv2d(*x, *filter, in, 3, 3, 1, 2, &out_shape);
  EXPECT_EQ(out_shape.height, 4u);
  EXPECT_EQ(out_shape.width, 4u);
  EXPECT_EQ(out->cols(), 4u * 4 * 4);
}

TEST(NnTest, Conv2dMultiChannelAccumulates) {
  TensorShape in{2, 1, 1};
  auto x = M(1, 2, {3, 5});           // Two channels of one pixel.
  auto filter = M(1, 2, {10, 100});   // 1x1 kernel per channel.
  auto out = kernels::Conv2d(*x, *filter, in, 1, 1, 0, 1, nullptr);
  EXPECT_EQ(out->At(0, 0), 530.0);
}

TEST(NnTest, MaxPoolPicksMaxima) {
  TensorShape in{1, 2, 2};
  auto x = M(1, 4, {1, 5, 3, 2});
  TensorShape out_shape;
  auto out = kernels::MaxPool(*x, in, 2, &out_shape);
  EXPECT_EQ(out->At(0, 0), 5.0);
  EXPECT_EQ(out_shape.height, 1u);
}

TEST(NnTest, MaxPoolPerChannel) {
  TensorShape in{2, 2, 2};
  auto x = M(1, 8, {1, 2, 3, 4, 8, 7, 6, 5});
  auto out = kernels::MaxPool(*x, in, 2, nullptr);
  EXPECT_EQ(out->At(0, 0), 4.0);
  EXPECT_EQ(out->At(0, 1), 8.0);
}

TEST(NnTest, Conv2dFlopsFormula) {
  TensorShape in{3, 4, 4};
  // out 4x4, per output: 3*3*3 MACs * 2.
  EXPECT_EQ(kernels::Conv2dFlops(2, in, 8, 3, 3, 1, 1),
            2.0 * 2 * 8 * 16 * 27);
}

}  // namespace
}  // namespace memphis
