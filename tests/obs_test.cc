// Tests for the observability layer (src/obs/): the metrics primitives and
// registry, the trace collector's ring accounting, disabled-mode cost
// contract, quiescence enforcement, and Chrome-trace export; the reuse
// journal's accounting and request-context stamping; the crash flight
// recorder; and the snapshot exporter's late-flush landing pad.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/system.h"
#include "matrix/kernels.h"
#include "obs/exporter.h"
#include "obs/flight.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "sim/timeline.h"

namespace memphis {
namespace {

// --- metrics primitives -----------------------------------------------------

TEST(MetricsTest, CounterIsDropInForInt64) {
  obs::Counter counter;
  ++counter;
  counter += 4;
  counter.Add(5);
  EXPECT_EQ(counter, 10);  // Implicit conversion, like the old plain fields.
  EXPECT_EQ(counter.value(), 10);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(MetricsTest, GaugeAccumulatesAndSets) {
  obs::Gauge gauge;
  gauge += 1.5;
  gauge.Add(2.5);
  EXPECT_DOUBLE_EQ(gauge, 4.0);
  gauge.Set(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.0);
}

TEST(MetricsTest, HistogramBucketBoundariesAreExact) {
  // Bucket i covers [lowest * 2^i, lowest * 2^(i+1)): the lower bound must
  // land in bucket i exactly -- no log() rounding slop -- and the largest
  // representable value strictly below it in bucket i-1.
  for (double lowest : {1.0, 1e-6, 1e-9, 3.0}) {
    obs::Histogram h(lowest);
    for (int i = 0; i < obs::Histogram::kNumBuckets; ++i) {
      const double bound = h.BucketLowerBound(i);
      EXPECT_EQ(h.BucketIndex(bound), i)
          << "lowest=" << lowest << " bucket=" << i;
      if (i > 0) {
        EXPECT_EQ(h.BucketIndex(std::nextafter(bound, 0.0)), i - 1)
            << "lowest=" << lowest << " bucket=" << i;
      }
    }
  }
}

TEST(MetricsTest, HistogramClampsOutOfRangeValues) {
  obs::Histogram h(1.0);
  EXPECT_EQ(h.BucketIndex(0.0), 0);
  EXPECT_EQ(h.BucketIndex(-5.0), 0);
  EXPECT_EQ(h.BucketIndex(0.25), 0);  // Below `lowest` lands in bucket 0.
  EXPECT_EQ(h.BucketIndex(std::ldexp(1.0, 200)),
            obs::Histogram::kNumBuckets - 1);
}

TEST(MetricsTest, HistogramQuantilesPickBucketLowerBounds) {
  obs::Histogram h(1.0);
  for (int i = 0; i < 50; ++i) h.Record(1.0);  // bucket 0
  for (int i = 0; i < 30; ++i) h.Record(2.0);  // bucket 1
  for (int i = 0; i < 20; ++i) h.Record(4.0);  // bucket 2
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 1.9);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 1.0);  // rank 50 is the last 1.0.
  EXPECT_DOUBLE_EQ(h.Quantile(0.80), 2.0);  // rank 80 is the last 2.0.
  EXPECT_DOUBLE_EQ(h.Quantile(0.95), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 4.0);
}

TEST(MetricsTest, HistogramMergePreservesBucketsAndExtrema) {
  obs::Histogram a(1.0);
  obs::Histogram b(1.0);
  a.Record(1.0);
  a.Record(8.0);
  b.Record(2.0);
  b.Record(32.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 32.0);
  EXPECT_EQ(a.BucketCount(1), 1);  // The 2.0 arrived in its exact bucket.
  EXPECT_EQ(a.BucketCount(5), 1);  // And the 32.0.
}

// --- registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, OwnedMetricsAreIdentityStable) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("x.count");
  EXPECT_EQ(counter, registry.GetCounter("x.count"));
  obs::Histogram* histogram = registry.GetHistogram("x.hist", 1e-3);
  EXPECT_EQ(histogram, registry.GetHistogram("x.hist"));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, SnapshotCoversAllFlavors) {
  obs::MetricsRegistry registry;
  obs::Counter external;
  external += 7;
  registry.Register("ext.counter", &external);
  registry.GetGauge("own.gauge")->Set(2.5);
  registry.RegisterCallback("cb.depth", [] { return 42.0; });
  registry.GetHistogram("own.hist", 1.0)->Record(4.0);

  const auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  // std::map ordering: names come back sorted.
  EXPECT_EQ(samples[0].name, "cb.depth");
  EXPECT_DOUBLE_EQ(samples[0].value, 42.0);
  EXPECT_EQ(samples[1].name, "ext.counter");
  EXPECT_DOUBLE_EQ(samples[1].value, 7.0);
  EXPECT_EQ(samples[2].name, "own.gauge");
  EXPECT_EQ(samples[3].name, "own.hist");
  EXPECT_EQ(samples[3].count, 1);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"ext.counter\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"own.hist\": {\"count\": 1"), std::string::npos)
      << json;
}

TEST(MetricsRegistryTest, FlushIntoAccumulates) {
  obs::MetricsRegistry source;
  obs::Counter counter;
  counter += 5;
  source.Register("test.counter", &counter);
  source.GetGauge("test.gauge")->Set(2.0);
  source.RegisterCallback("test.callback", [] { return 7.0; });
  source.GetHistogram("test.hist", 1.0)->Record(2.0);

  obs::MetricsRegistry target;
  source.FlushInto(&target);
  source.FlushInto(&target);
  EXPECT_EQ(target.GetCounter("test.counter")->value(), 10);  // Counters add.
  EXPECT_DOUBLE_EQ(target.GetGauge("test.gauge")->value(), 4.0);  // Add.
  EXPECT_DOUBLE_EQ(target.GetGauge("test.callback")->value(),
                   7.0);  // Last value wins.
  EXPECT_EQ(target.GetHistogram("test.hist")->count(), 2);  // Buckets merge.
  EXPECT_EQ(target.GetHistogram("test.hist")->BucketCount(1), 2);
}

// --- trace collector --------------------------------------------------------

TEST(TraceTest, DisabledMacrosEmitNothing) {
  obs::EnableTracing(false);
  obs::ResetTrace();
  for (int i = 0; i < 100; ++i) {
    MEMPHIS_TRACE_SPAN1("test", "span", "i", static_cast<double>(i));
    MEMPHIS_TRACE_INSTANT2("test", "instant", "a", 1.0, "b", 2.0);
  }
  const obs::TraceSnapshot snapshot = obs::CollectTrace();
  EXPECT_EQ(snapshot.emitted, 0u);
  EXPECT_EQ(snapshot.dropped, 0u);
  EXPECT_TRUE(snapshot.events.empty());
}

TEST(TraceTest, ScopedSpanBalancesEvenIfFlagFlipsMidSpan) {
  obs::EnableTracing(true);
  obs::ResetTrace();
  {
    MEMPHIS_TRACE_SPAN("test", "outer");
    obs::EnableTracing(false);  // Destructor must still emit the 'E'.
  }
  obs::EnableTracing(false);
  const obs::TraceSnapshot snapshot = obs::CollectTrace();
  ASSERT_EQ(snapshot.events.size(), 2u);
  EXPECT_EQ(snapshot.events[0].ph, 'B');
  EXPECT_EQ(snapshot.events[1].ph, 'E');
  obs::ResetTrace();
}

TEST(TraceTest, InternReturnsStablePointers) {
  const char* a = obs::Intern("op:matmult");
  const char* b = obs::Intern("op:" + std::string("matmult"));
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "op:matmult");
}

TEST(TraceTest, SimTimelineReservationsLandOnLanes) {
  obs::EnableTracing(true);
  obs::ResetTrace();
  sim::Timeline timeline("test-resource");
  timeline.Reserve(0.0, 0.5, "work-a");
  timeline.Reserve(0.0, 0.25);  // Unlabeled: the timeline's name is used.
  sim::MultiLaneTimeline lanes("test-lanes", 2);
  lanes.Reserve(0.0, 1.0, "job");
  lanes.Reserve(0.0, 1.0, "job");
  obs::EnableTracing(false);

  const obs::TraceSnapshot snapshot = obs::CollectTrace();
  ASSERT_EQ(snapshot.events.size(), 4u);
  for (const obs::TraceEvent& event : snapshot.events) {
    EXPECT_EQ(event.ph, 'X');
    EXPECT_GE(event.lane, 0);
    EXPECT_STREQ(event.cat, "sim");
  }
  EXPECT_STREQ(snapshot.events[0].name, "work-a");
  EXPECT_DOUBLE_EQ(snapshot.events[0].dur_us, 0.5 * 1e6);
  EXPECT_STREQ(snapshot.events[1].name, "test-resource");
  // Second Reserve on the serial timeline queues FIFO behind the first.
  EXPECT_DOUBLE_EQ(snapshot.events[1].ts_us, 0.5 * 1e6);
  // The two concurrent jobs land on *different* lanes at t=0.
  EXPECT_NE(snapshot.events[2].lane, snapshot.events[3].lane);
  obs::ResetTrace();
}

// No lost-event accounting under ring wrap-around: 8 threads each emit
// enough to overflow a deliberately tiny ring; emitted == collected +
// dropped must hold exactly, and every surviving ring holds exactly its
// capacity of the newest events.
TEST(TraceTest, ConcurrentEmissionAccountsForEveryEvent) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 1000;  // 2000 events; ring holds 1024.
  constexpr uint64_t kCapacity = 1024;

  obs::ResetTrace();
  obs::SetTraceRingCapacity(kCapacity);
  obs::EnableTracing(true);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        MEMPHIS_TRACE_SPAN2("test", "work", "thread", static_cast<double>(t),
                            "i", static_cast<double>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  obs::EnableTracing(false);

  const obs::TraceSnapshot snapshot = obs::CollectTrace();
  const uint64_t expected_emitted = uint64_t{kThreads} * kSpansPerThread * 2;
  EXPECT_EQ(snapshot.emitted, expected_emitted);
  EXPECT_EQ(snapshot.events.size(), uint64_t{kThreads} * kCapacity);
  EXPECT_EQ(snapshot.emitted, snapshot.events.size() + snapshot.dropped);
  obs::ResetTrace();
  obs::SetTraceRingCapacity(size_t{1} << 17);  // Restore the default.
}

// Pool threads share the collector with the driver thread: emission from
// inside ParallelFor chunks must be race-free (this test is the TSan canary)
// and the accounting invariant must still hold with the pool's own
// instrumentation (parallel-for/chunk spans) interleaved.
TEST(TraceTest, PoolThreadsEmitConcurrently) {
  obs::ResetTrace();
  obs::EnableTracing(true);
  ThreadPool::Global().Resize(8);
  constexpr int kItems = 4096;
  std::vector<double> sink(kItems, 0.0);
  ThreadPool::Global().ParallelFor(0, kItems, 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      MEMPHIS_TRACE_INSTANT1("test", "item", "i", static_cast<double>(i));
      sink[i] = static_cast<double>(i);
    }
  });
  ThreadPool::Global().Resize(1);
  obs::EnableTracing(false);

  const obs::TraceSnapshot snapshot = obs::CollectTrace();
  EXPECT_GE(snapshot.emitted, static_cast<uint64_t>(kItems));
  EXPECT_EQ(snapshot.emitted, snapshot.events.size() + snapshot.dropped);
  int instants = 0;
  for (const obs::TraceEvent& event : snapshot.events) {
    if (event.ph == 'i' && std::string(event.name) == "item") ++instants;
  }
  EXPECT_LE(instants, kItems);
  if (snapshot.dropped == 0) {
    EXPECT_EQ(instants, kItems);  // No ring wrapped: every item survived.
  }
  obs::ResetTrace();
}

// --- export -----------------------------------------------------------------

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceExportTest, WritesBalancedChromeTrace) {
  obs::ResetTrace();
  obs::EnableTracing(true);
  {
    MEMPHIS_TRACE_SPAN("test", "outer");
    MEMPHIS_TRACE_SPAN1("test", "inner", "k", 1.0);
    MEMPHIS_TRACE_INSTANT("test", "tick");
  }
  // An unmatched 'B' (as left behind by ring wrap-around): the exporter
  // must synthesize its closing 'E' so the file stays stack-balanced.
  obs::EmitBegin("test", "unclosed");
  sim::Timeline timeline("export-lane");
  timeline.Reserve(0.0, 1.0, "sim-work");
  obs::EnableTracing(false);

  const std::string path = ::testing::TempDir() + "/obs_export_test.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path));
  const std::string json = ReadFile(path);

  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("wall-clock"), std::string::npos);
  EXPECT_NE(json.find("simulated-time"), std::string::npos);
  EXPECT_NE(json.find("export-lane"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""),
            CountOccurrences(json, "\"ph\":\"E\""));
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"unclosed\""), 2);  // B + E.
  std::remove(path.c_str());
  obs::ResetTrace();
}

// --- quiescence enforcement -------------------------------------------------

std::atomic<bool> g_pause_armed{false};
std::atomic<bool> g_in_window{false};
std::atomic<bool> g_release{false};

// Traps the first emission after arming inside the mid-emission window until
// the test releases it (the hook runs on the emitting thread, between its
// mid-flight registration and the ring push).
void PauseFirstEmission() {
  if (!g_pause_armed.exchange(false)) return;
  g_in_window.store(true);
  while (!g_release.load()) std::this_thread::yield();
}

// The drain contract is enforced, not just documented: CollectTrace while a
// worker is mid-emission is a detected violation (counted here, an abort in
// production), and becomes legal again once the emitter finished.
TEST(TraceQuiescenceTest, CollectWhileEmittingIsDetected) {
  obs::ResetTrace();
  obs::EnableTracing(true);
  obs::SetTraceQuiescenceAbortForTest(false);
  obs::SetTraceEmissionPauseHookForTest(&PauseFirstEmission);
  g_release.store(false);
  g_in_window.store(false);
  g_pause_armed.store(true);

  const int64_t before = obs::TraceQuiescenceViolations();
  std::thread emitter([] { MEMPHIS_TRACE_INSTANT("test", "mid-emission"); });
  while (!g_in_window.load()) std::this_thread::yield();
  obs::CollectTrace();  // Mid-emission drain: must be caught.
  EXPECT_EQ(obs::TraceQuiescenceViolations(), before + 1);

  g_release.store(true);
  emitter.join();
  const int64_t held = obs::TraceQuiescenceViolations();
  obs::CollectTrace();  // Emitter joined: draining is legal again.
  EXPECT_EQ(obs::TraceQuiescenceViolations(), held);

  obs::SetTraceEmissionPauseHookForTest(nullptr);
  obs::SetTraceQuiescenceAbortForTest(true);
  obs::EnableTracing(false);
  obs::ResetTrace();
}

// --- reuse journal ----------------------------------------------------------

TEST(JournalTest, DisabledMacroCostsOneLoadAndEvaluatesNoArgs) {
  obs::EnableJournal(false);
  obs::ResetJournal();
  int evaluations = 0;
  for (int i = 0; i < 100; ++i) {
    MEMPHIS_JOURNAL(kProbe, kHost, kNone,
                    static_cast<uint64_t>(++evaluations), 1.0, 2.0);
  }
  EXPECT_EQ(evaluations, 0);  // Args must not be evaluated while disabled.
  const obs::JournalSnapshot snapshot = obs::CollectJournal();
  EXPECT_EQ(snapshot.emitted, 0u);
  EXPECT_TRUE(snapshot.events.empty());
}

TEST(JournalTest, StampsRequestContextOnEveryEvent) {
  obs::ResetJournal();
  obs::EnableJournal(true);
  {
    obs::RequestContext context;
    context.rid = 7;
    context.tenant = "tenant-seven";
    obs::ScopedRequestContext scope(context);
    MEMPHIS_JOURNAL(kProbe, kHost, kNone, 0xabc, 2.0, 128.0);
    MEMPHIS_JOURNAL(kHit, kHost, kNone, 0xabc, 2.0, 128.0);
  }
  MEMPHIS_JOURNAL(kEvict, kHost, kQuota, 0xdef, 1.0, 64.0);  // Background.
  obs::EnableJournal(false);

  const obs::JournalSnapshot snapshot = obs::CollectJournal();
  ASSERT_EQ(snapshot.events.size(), 3u);
  EXPECT_EQ(snapshot.events[0].rid, 7u);
  EXPECT_STREQ(snapshot.events[0].tenant, "tenant-seven");
  EXPECT_EQ(snapshot.events[0].kind, obs::JournalKind::kProbe);
  EXPECT_EQ(snapshot.events[1].rid, 7u);
  EXPECT_EQ(snapshot.events[2].rid, 0u);  // No request in scope.
  EXPECT_EQ(snapshot.events[2].reason, obs::JournalReason::kQuota);
  obs::ResetJournal();
}

TEST(JournalTest, ConcurrentEmissionAccountsForEveryEvent) {
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 2000;  // Ring holds 1024: must wrap.
  constexpr uint64_t kCapacity = 1024;

  obs::ResetJournal();
  obs::SetJournalRingCapacity(kCapacity);
  obs::EnableJournal(true);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::RequestContext context;
      context.rid = static_cast<uint64_t>(t) + 1;
      context.tenant = "stress";
      obs::ScopedRequestContext scope(context);
      for (int i = 0; i < kEventsPerThread; ++i) {
        MEMPHIS_JOURNAL(kProbe, kHost, kNone, static_cast<uint64_t>(i), 1.0,
                        8.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  obs::EnableJournal(false);

  const obs::JournalSnapshot snapshot = obs::CollectJournal();
  EXPECT_EQ(snapshot.emitted, uint64_t{kThreads} * kEventsPerThread);
  EXPECT_EQ(snapshot.events.size(), uint64_t{kThreads} * kCapacity);
  EXPECT_EQ(snapshot.emitted, snapshot.events.size() + snapshot.dropped);
  obs::ResetJournal();
  obs::SetJournalRingCapacity(size_t{1} << 17);  // Restore the default.
}

TEST(JournalExportTest, WritesExplainableJson) {
  obs::ResetJournal();
  obs::EnableJournal(true);
  {
    obs::RequestContext context;
    context.rid = 9;
    context.tenant = "export-tenant";
    obs::ScopedRequestContext scope(context);
    MEMPHIS_JOURNAL(kProbe, kNone, kNone, 0x77, 0.0, 0.0);
    MEMPHIS_JOURNAL(kMiss, kNone, kPlaceholder, 0x77, 0.0, 0.0);
  }
  obs::EnableJournal(false);

  const std::string path = ::testing::TempDir() + "/journal_export_test.json";
  ASSERT_TRUE(obs::WriteJournalJson(path));
  const std::string json = ReadFile(path);
  EXPECT_NE(json.find("\"memphis_journal\":1"), std::string::npos);
  EXPECT_NE(json.find("\"emitted\":2"), std::string::npos);
  EXPECT_NE(json.find("{\"rid\":9,"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"probe\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"placeholder\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"export-tenant\""), std::string::npos);
  std::remove(path.c_str());
  obs::ResetJournal();
}

// --- crash flight recorder --------------------------------------------------

TEST(FlightRecorderTest, OnDemandDumpCarriesBothTails) {
  obs::ResetTrace();
  obs::ResetJournal();
  obs::EnableTracing(true);
  obs::EnableJournal(true);
  obs::EnableFlightRecorder(::testing::TempDir());
  {
    obs::RequestContext context;
    context.rid = 77;
    context.tenant = "flight-tenant";
    obs::ScopedRequestContext scope(context);
    obs::ScopedSpanReq span("test", "flight-span", context.rid);
    MEMPHIS_JOURNAL(kProbe, kHost, kNone, 0x42, 3.0, 256.0);
    MEMPHIS_JOURNAL(kHit, kHost, kNone, 0x42, 3.0, 256.0);
  }
  const int64_t dumps_before = obs::FlightDumpCount();
  const std::string path = obs::DumpFlightRecord("test-dump");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(obs::FlightDumpCount(), dumps_before + 1);

  const std::string json = ReadFile(path);
  EXPECT_NE(json.find("\"memphis_flight\":1"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"test-dump\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_tail\":["), std::string::npos);
  EXPECT_NE(json.find("\"journal_tail\":["), std::string::npos);
  EXPECT_NE(json.find("\"rid\":77"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"flight-tenant\""), std::string::npos);

  std::remove(path.c_str());
  obs::DisableFlightRecorder();
  obs::EnableTracing(false);
  obs::EnableJournal(false);
  obs::ResetTrace();
  obs::ResetJournal();
}

// A lock-rank inversion must trigger a dump through the sync-layer hook (the
// validator in no-abort mode stands in for the production abort). Skipped
// when the rank validator is compiled out (release builds without
// MEMPHIS_SYNC_VALIDATE=1): the hook never fires without it.
TEST(FlightRecorderTest, RankInversionTriggersDump) {
  if (!SyncValidatorEnabled()) {
    GTEST_SKIP() << "rank validator disabled (MEMPHIS_SYNC_VALIDATE=0?)";
  }
  obs::EnableTracing(true);
  MEMPHIS_TRACE_INSTANT("test", "pre-violation");  // A non-empty tail.
  obs::EnableFlightRecorder(::testing::TempDir());
  const int64_t dumps_before = obs::FlightDumpCount();
  SetSyncValidatorAbortForTest(false);
  {
    Mutex outer(LockRank::kMetrics, "flight-test-outer");
    Mutex inner(LockRank::kPool, "flight-test-inner");
    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);  // Rank 8 under rank 11: violation.
  }
  SetSyncValidatorAbortForTest(true);
  obs::DisableFlightRecorder();
  EXPECT_EQ(obs::FlightDumpCount(), dumps_before + 1);

  const std::string path = ::testing::TempDir() + "/memphis_flight_" +
                           std::to_string(getpid()) + ".json";
  const std::string json = ReadFile(path);
  EXPECT_NE(json.find("\"memphis_flight\":1"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"lock rank inversion\""),
            std::string::npos);
  std::remove(path.c_str());
  obs::EnableTracing(false);
  obs::ResetTrace();
}

// --- end to end through the runtime ----------------------------------------

TEST(ObsRuntimeTest, ExecutionContextRegistersComponentMetrics) {
  SystemConfig config;
  config.reuse_mode = ReuseMode::kMemphis;
  MemphisSystem system(config);
  auto block = compiler::MakeBasicBlock();
  {
    auto& dag = block->dag();
    auto gram = dag.Op("matmult", {dag.Op("transpose", {dag.Read("X")}),
                                   dag.Read("X")});
    dag.Write("g", gram);
  }
  system.ctx().BindMatrix("X", kernels::RandGaussian(64, 8, 3));
  system.Run(*block);
  system.Run(*block);  // Second run hits the lineage cache.

  const std::string text = system.ctx().metrics().ToText();
  for (const char* name :
       {"exec.cp_instructions", "cache.probes", "cache.hit_ratio",
        "spark.jobs", "gpu0.mallocs", "gpucache0.recycled_exact",
        "arena0.allocated_bytes", "bm.storage_used", "hostcache.used_bytes",
        "cache.evictions"}) {
    EXPECT_NE(text.find(name), std::string::npos) << "missing " << name;
  }
  EXPECT_GT(system.ctx().stats().cp_instructions.value(), 0);
  EXPECT_GT(system.ctx().cache().stats().probes.value(), 0);
  // The StatsReport is now just the registry's text dump plus a header.
  const std::string report = system.StatsReport();
  EXPECT_NE(report.find("mode=MPH"), std::string::npos);
  EXPECT_NE(report.find("exec.cp_instructions"), std::string::npos);
}

TEST(ObsRuntimeTest, ContextFlushesIntoGlobalRegistryOnDestruction) {
  const int64_t before =
      obs::MetricsRegistry::Global().GetCounter("exec.cp_instructions")
          ->value();
  int64_t executed = 0;
  {
    SystemConfig config;
    config.reuse_mode = ReuseMode::kNone;
    MemphisSystem system(config);
    auto block = compiler::MakeBasicBlock();
    {
      auto& dag = block->dag();
      dag.Write("s", dag.Op("sum", {dag.Read("X")}));
    }
    system.ctx().BindMatrix("X", kernels::RandGaussian(8, 4, 11));
    system.Run(*block);
    executed = system.ctx().stats().cp_instructions.value();
    EXPECT_GT(executed, 0);
  }
  const int64_t after =
      obs::MetricsRegistry::Global().GetCounter("exec.cp_instructions")
          ->value();
  EXPECT_EQ(after, before + executed);
}

// A context that flushes after the exporter stopped (session destroyed by
// whoever held the last reference) must not silently drop its entries from
// the exported file: the flush is counted under obs.late_flushes and the
// snapshot is re-exported with it included.
TEST(SnapshotExporterTest, LateFlushIsCountedAndReexported) {
  const std::string path = ::testing::TempDir() + "/late_snapshot_test.json";
  obs::SnapshotExporter& exporter = obs::SnapshotExporter::Global();
  ASSERT_TRUE(exporter.Start(path, /*interval_ms=*/0.0));
  exporter.Stop();  // Not running, but the path stays configured.

  obs::Counter* late =
      obs::MetricsRegistry::Global().GetCounter("obs.late_flushes");
  const int64_t late_before = late->value();
  const int64_t snapshots_before = exporter.snapshots_written();
  {
    SystemConfig config;
    config.reuse_mode = ReuseMode::kNone;
    MemphisSystem system(config);
    auto block = compiler::MakeBasicBlock();
    {
      auto& dag = block->dag();
      dag.Write("s", dag.Op("sum", {dag.Read("X")}));
    }
    system.ctx().BindMatrix("X", kernels::RandGaussian(8, 4, 11));
    system.Run(*block);
  }  // Destruction flushes -- late, because the exporter already stopped.

  EXPECT_EQ(late->value(), late_before + 1);
  EXPECT_EQ(exporter.snapshots_written(), snapshots_before + 1);
  const std::string json = ReadFile(path);
  EXPECT_NE(json.find("\"obs.late_flushes\""), std::string::npos);
  EXPECT_NE(json.find("\"exec.cp_instructions\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace memphis
