// Integration tests over the end-to-end workloads of Table 3: every
// pipeline must run to completion under Base and MEMPHIS, produce identical
// quality metrics (reuse transparency at workload granularity), and show the
// speedup direction the paper reports.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workloads/builtins.h"
#include "workloads/cleaning.h"
#include "workloads/datasets.h"
#include "workloads/dnn.h"
#include "workloads/pipelines.h"

namespace memphis::workloads {
namespace {

TEST(DatasetsTest, ScaleDimAndNominal) {
  EXPECT_EQ(ScaleDim(3200), 100u);
  EXPECT_EQ(ScaleDim(10), 1u);  // Floored at 1.
  EXPECT_NEAR(NominalGb(1 << 27, 1), 1.0, 1e-9);
}

TEST(DatasetsTest, GeneratorsAreDeterministic) {
  auto a = SyntheticRegression(50, 4, 9);
  auto b = SyntheticRegression(50, 4, 9);
  EXPECT_TRUE(a.X->ApproxEquals(*b.X));
  EXPECT_TRUE(a.y->ApproxEquals(*b.y));
}

TEST(DatasetsTest, ApsLikeHasMissingValuesAndImbalance) {
  auto aps = ApsLike(2000, 20, 0.05, 3);
  size_t missing = 0;
  for (size_t i = 0; i < aps.X->size(); ++i) {
    missing += std::isnan(aps.X->data()[i]);
  }
  const double rate =
      static_cast<double>(missing) / static_cast<double>(aps.X->size());
  EXPECT_GT(rate, 0.02);
  EXPECT_LT(rate, 0.10);
  const double positives = kernels::Sum(*aps.y);
  EXPECT_LT(positives / 2000.0, 0.1);  // Failure labels are rare.
}

TEST(DatasetsTest, WordStreamHasHeavyDuplicates) {
  auto stream = Wmt14WordStream(2000, 1000, 4);
  std::set<int> unique(stream.begin(), stream.end());
  // Zipf: far fewer unique words than stream positions.
  EXPECT_LT(unique.size(), 1200u);
  EXPECT_GT(unique.size(), 50u);
}

TEST(DatasetsTest, ImageDuplicates) {
  kernels::TensorShape shape{1, 4, 4};
  auto images = ImagesLike(200, shape, 0.5, 5);
  size_t duplicates = 0;
  std::set<uint64_t> seen;
  for (size_t r = 0; r < 200; ++r) {
    auto row = kernels::Slice(*images, r, r + 1, 0, shape.Size());
    duplicates += !seen.insert(row->ContentHash()).second;
  }
  EXPECT_GT(duplicates, 50u);
}

TEST(BuiltinsTest, LinRegSolvesWellConditionedSystem) {
  SystemConfig config;
  config.reuse_mode = ReuseMode::kMemphis;
  MemphisSystem system(config);
  auto data = SyntheticRegression(500, 6, 11);
  system.ctx().BindMatrixWithId("Xb", data.X, "t:X");
  system.ctx().BindMatrixWithId("yb", data.y, "t:y");
  LinRegDS linreg(6);
  linreg.Run(system, "Xb", "yb", 0.001, "beta");
  // Prediction error far below label variance.
  auto beta = system.ctx().FetchMatrix("beta");
  auto pred = kernels::MatMult(*data.X, *beta);
  auto err = kernels::Binary(kernels::BinaryOp::kSub, *pred, *data.y);
  const double mse = kernels::Sum(*kernels::Binary(
                         kernels::BinaryOp::kMul, *err, *err)) /
                     500.0;
  EXPECT_LT(mse, 0.05);
}

TEST(BuiltinsTest, PnmfReducesResidual) {
  SystemConfig config;
  config.reuse_mode = ReuseMode::kMemphis;
  MemphisSystem system(config);
  system.ctx().BindMatrixWithId("Xr", MovieLensLike(120, 40, 0.3, 6),
                                "t:ml");
  Pnmf pnmf(4);
  const double after_two = [&] {
    MemphisSystem fresh(config);
    fresh.ctx().BindMatrixWithId("Xr", MovieLensLike(120, 40, 0.3, 6), "t:ml");
    return Pnmf(4).Run(fresh, "Xr", 2);
  }();
  const double after_ten = pnmf.Run(system, "Xr", 10);
  EXPECT_LT(after_ten, after_two);
}

TEST(CleaningTest, PipelinesShareLongPrefixes) {
  const auto pipelines = EnumerateCleanPipelines();
  EXPECT_EQ(pipelines.size(), 12u);
  int shared_prefixes = 0;
  for (size_t i = 1; i < pipelines.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (pipelines[i][0] == pipelines[j][0] &&
          pipelines[i].size() > 1 && pipelines[j].size() > 1 &&
          pipelines[i][1] == pipelines[j][1]) {
        ++shared_prefixes;
      }
    }
  }
  EXPECT_GT(shared_prefixes, 5);
}

TEST(DnnTest, CnnForwardShapesConsistent) {
  SystemConfig config;
  config.reuse_mode = ReuseMode::kNone;
  MemphisSystem system(config);
  kernels::TensorShape shape{3, 16, 16};
  CnnModel model = SmallCnnA(shape, 10);
  BindCnnWeights(system.ctx(), model, "m", 3);
  auto fwd = BuildCnnForward(model, "m", "img", "scores", -1, false);
  system.ctx().BindMatrixWithId("img", ImagesLike(8, shape, 0.0, 4), "t:img");
  system.Run(*fwd);
  auto scores = system.ctx().FetchMatrix("scores");
  EXPECT_EQ(scores->rows(), 8u);
  EXPECT_EQ(scores->cols(), 10u);
  // Softmax rows sum to one.
  for (size_t r = 0; r < 8; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 10; ++c) sum += scores->At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DnnTest, ExtractionPointsWithinModel) {
  CnnModel model = Vgg16Like({3, 16, 16}, 10);
  for (int point : TransferExtractionPoints(model)) {
    EXPECT_GT(point, 0);
    EXPECT_LE(point, static_cast<int>(model.layers.size()));
  }
}

TEST(PipelinesTest, ConfigPresetsMatchBaselines) {
  EXPECT_EQ(MakeConfig(Baseline::kBase).reuse_mode, ReuseMode::kNone);
  EXPECT_FALSE(MakeConfig(Baseline::kBase).async_operators);
  EXPECT_TRUE(MakeConfig(Baseline::kBaseAsync).async_operators);
  EXPECT_EQ(MakeConfig(Baseline::kLima).reuse_mode, ReuseMode::kLima);
  EXPECT_EQ(MakeConfig(Baseline::kMemphis).reuse_mode, ReuseMode::kMemphis);
  EXPECT_FALSE(MakeConfig(Baseline::kMemphisNoAsync).async_operators);
  EXPECT_FALSE(
      MakeConfig(Baseline::kMemphisFineOnly).multi_level_reuse);
  EXPECT_TRUE(MakeConfig(Baseline::kPyTorch).gpu_recycling);
}

TEST(PipelinesTest, HcvMemphisFasterAndSameQuality) {
  RunResult base = RunHcv(Baseline::kBase, 64000, 640, 3, 4);
  RunResult mph = RunHcv(Baseline::kMemphis, 64000, 640, 3, 4);
  EXPECT_LT(mph.seconds, base.seconds);
  EXPECT_NEAR(mph.quality, base.quality, 1e-9);  // Reuse transparency.
}

TEST(PipelinesTest, PnmfCheckpointsBeatBaseAtHighIterations) {
  // Large enough that X is distributed and checkpoints matter.
  RunResult base = RunPnmf(Baseline::kBase, 4000, 256, 8, 6);
  RunResult mph = RunPnmf(Baseline::kMemphis, 4000, 256, 8, 6);
  EXPECT_LT(mph.seconds, base.seconds);
  EXPECT_NEAR(mph.quality, base.quality, 1e-6);
}

TEST(PipelinesTest, En2deReusePaysOff) {
  RunResult base = RunEn2de(Baseline::kBase, 300);
  RunResult mph = RunEn2de(Baseline::kMemphis, 300);
  EXPECT_LT(mph.seconds, base.seconds);
  EXPECT_NEAR(mph.quality, base.quality, 1e-9);  // Same predictions.
}

TEST(PipelinesTest, GpuEnsembleDuplicatesReused) {
  RunResult base = RunGpuEnsemble(Baseline::kBase, 64, 8, 0.6);
  RunResult mph = RunGpuEnsemble(Baseline::kMemphis, 64, 8, 0.6);
  EXPECT_LT(mph.seconds, base.seconds);
  EXPECT_NEAR(mph.quality, base.quality, 1e-9);
}

TEST(PipelinesTest, SparkEagerCachingIsSlowerThanLazy) {
  RunResult eager =
      RunSparkCachingMicro(Baseline::kBase, /*eager=*/true, 24, 4, 0.33);
  RunResult lazy =
      RunSparkCachingMicro(Baseline::kBase, /*eager=*/false, 24, 4, 0.33);
  RunResult mph =
      RunSparkCachingMicro(Baseline::kMemphis, /*eager=*/false, 24, 4, 0.33);
  EXPECT_GT(eager.seconds, 2.0 * lazy.seconds);  // Figure 2(c): ~10x.
  EXPECT_LT(mph.seconds, lazy.seconds);          // Reuse beats no caching.
  EXPECT_NEAR(mph.quality, lazy.quality, 1e-6);
}

TEST(PipelinesTest, CleanRunsAllPipelinesUnderBothModes) {
  RunResult base = RunClean(Baseline::kBase, 8);
  RunResult mph = RunClean(Baseline::kMemphis, 8);
  EXPECT_LT(mph.seconds, base.seconds);
  EXPECT_GT(base.quality, 0.3);  // Downstream accuracy is sane.
}

TEST(PipelinesTest, HdropRunsWithIdpReuse) {
  RunResult base = RunHdrop(Baseline::kBase, 4, {0.1, 0.3});
  RunResult mph = RunHdrop(Baseline::kMemphis, 4, {0.1, 0.3});
  EXPECT_LT(mph.seconds, base.seconds);
}

TEST(PipelinesTest, HbandImprovesWithReuse) {
  RunResult base = RunHband(Baseline::kBase, 27200, 1504, 4, 2);
  RunResult mph = RunHband(Baseline::kMemphis, 27200, 1504, 4, 2);
  EXPECT_LT(mph.seconds, base.seconds);
}

TEST(PipelinesTest, TlvisPrefixReusePaysOff) {
  RunResult base = RunTlvis(Baseline::kBase, 64, /*imagenet=*/false);
  RunResult mph = RunTlvis(Baseline::kMemphis, 64, /*imagenet=*/false);
  EXPECT_LT(mph.seconds, base.seconds);
}

TEST(PipelinesTest, L2svmMicroSmallInputsShowOverhead) {
  // Figure 11(a): for tiny inputs, Probe mode is slower than Base.
  RunResult base = RunL2svmMicro(Baseline::kBase, 800, 6, 10, 0.0);
  SystemConfig probe_config;  // ProbeOnly is not a public Baseline; emulate.
  RunResult probe = RunL2svmMicro(Baseline::kMemphis, 800, 6, 10, 0.0);
  EXPECT_GE(probe.seconds, base.seconds);  // Overhead, no reuse to win back.
}

}  // namespace
}  // namespace memphis::workloads
