// Distributed-vs-local equivalence for every Spark-capable operator: the
// same block is executed once with Spark placement forced (tiny operation
// memory) and once purely locally; results must match exactly. This pins
// down the executor's distributed implementations (narrow maps, zips,
// aggregates, broadcast multiplies, two-phase statistics).

#include <gtest/gtest.h>

#include "core/system.h"
#include "matrix/kernels.h"

namespace memphis {
namespace {

using compiler::HopDag;
using compiler::HopPtr;

struct SparkOpCase {
  const char* name;
  /// Builds the op under test over inputs "X" (n x c) and "V" (1 x c).
  std::function<HopPtr(HopDag&, HopPtr x, HopPtr v)> build;
};

class SparkOpEquivalence : public ::testing::TestWithParam<SparkOpCase> {};

TEST_P(SparkOpEquivalence, DistributedMatchesLocal) {
  const SparkOpCase& test_case = GetParam();
  auto x = kernels::Rand(3000, 12, 0.1, 2.0, 1.0, 11);
  auto v = kernels::Rand(1, 12, 0.5, 1.5, 1.0, 12);

  auto run = [&](bool distributed) {
    SystemConfig config;
    config.mem_scale = 1.0;
    config.reuse_mode = ReuseMode::kNone;
    config.enable_gpu = false;
    config.operation_memory = distributed ? (16 << 10) : (256 << 20);
    MemphisSystem system(config);
    system.ctx().BindMatrix("X", x);
    system.ctx().BindMatrix("V", v);
    auto block = compiler::MakeBasicBlock();
    HopDag& dag = block->dag();
    dag.Write("out", test_case.build(dag, dag.Read("X"), dag.Read("V")));
    system.Run(*block);
    if (distributed) {
      EXPECT_GT(system.ctx().stats().sp_instructions, 0)
          << test_case.name << " never ran distributed";
    }
    return system.ctx().FetchMatrix("out");
  };

  MatrixPtr local = run(false);
  MatrixPtr distributed = run(true);
  EXPECT_TRUE(distributed->ApproxEquals(*local, 1e-9)) << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, SparkOpEquivalence,
    ::testing::Values(
        SparkOpCase{"relu",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("relu", {x});
                    }},
        SparkOpCase{"exp_scaled",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("exp", {d.Op("*", {x, d.Literal(0.1)})});
                    }},
        SparkOpCase{"add_row_vector",
                    [](HopDag& d, HopPtr x, HopPtr v) {
                      return d.Op("+", {x, v});
                    }},
        SparkOpCase{"zip_two_rdds",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("*", {d.Op("relu", {x}),
                                        d.Op("+", {x, d.Literal(1.0)})});
                    }},
        SparkOpCase{"tsmm",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("tsmm", {x});
                    }},
        SparkOpCase{"tsmm2_local_left",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      // t(X[:,0:1]-ish vector) %*% X via transpose pattern.
                      auto y = d.Op("rowSums", {x});
                      return d.Op("matmult", {d.Op("transpose", {y}), x});
                    }},
        SparkOpCase{"mapmm_right",
                    [](HopDag& d, HopPtr x, HopPtr v) {
                      return d.Op("matmult", {x, d.Op("transpose", {v})});
                    }},
        SparkOpCase{"colSums",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("transpose", {d.Op("colSums", {x})});
                    }},
        SparkOpCase{"sum",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("sum", {x});
                    }},
        SparkOpCase{"mean",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("mean", {x});
                    }},
        SparkOpCase{"min_agg",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("min_agg", {x});
                    }},
        SparkOpCase{"max_agg",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("max_agg", {x});
                    }},
        SparkOpCase{"rowSums",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("sum", {d.Op("*", {d.Op("rowSums", {x}),
                                                     d.Literal(2.0)})});
                    }},
        SparkOpCase{"rowIndexMax",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("sum", {d.Op("rowIndexMax", {x})});
                    }},
        SparkOpCase{"scale_two_phase",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("scale", {x});
                    }},
        SparkOpCase{"minmax_two_phase",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("minmax", {x});
                    }},
        SparkOpCase{"imputeMean_two_phase",
                    [](HopDag& d, HopPtr x, HopPtr) {
                      return d.Op("imputeMean", {x});
                    }},
        SparkOpCase{"chained_pipeline",
                    [](HopDag& d, HopPtr x, HopPtr v) {
                      auto normalized = d.Op("scale", {x});
                      auto shifted = d.Op("+", {normalized, v});
                      return d.Op("tsmm", {d.Op("relu", {shifted})});
                    }}),
    [](const ::testing::TestParamInfo<SparkOpCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace memphis
