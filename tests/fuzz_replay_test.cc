// End-to-end round trip of the fuzzer's failure pipeline: an intentionally
// injected kernel bug must be (1) caught by mode-lattice differencing,
// (2) minimized by the shrinker to a handful of statements, (3) written to
// a corpus as a standalone .dml + config JSON pair, and (4) reproduced
// byte-for-byte by the replay path from those files alone.

#include <gtest/gtest.h>

#include <string>

#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/lattice.h"
#include "fuzz/shrinker.h"
#include "runtime/fault_injection.h"
#include "testing_util.h"

namespace memphis::fuzz {
namespace {

/// The base lattice point with a deterministic tsmm fault armed: every tsmm
/// execution inside the system (but never inside the oracle) returns a
/// result with one cell scaled by 1.001.
LatticePoint FaultedPoint() {
  LatticePoint point = SmokeLattice().front();
  point.name = "base-tsmm-fault";
  point.fault.opcode = "tsmm";
  point.fault.relative_error = 1e-3;
  return point;
}

struct Divergence {
  GeneratedProgram program;
  DivergenceInfo info;
};

/// Scans consecutive generator seeds until one program trips the injected
/// fault (i.e. actually executes a tsmm and the perturbation survives to an
/// output). With the default generator mix this lands within a few seeds.
Divergence FindDivergence(const LatticePoint& point, const Tolerance& tol) {
  const uint64_t base = memphis::testing::TestSeed(1);
  for (uint64_t seed = base; seed < base + 60; ++seed) {
    Divergence found;
    found.program = GenerateProgram(seed);
    const PointVerdict verdict =
        ClassifyPoint(found.program, point, tol, &found.info);
    if (verdict == PointVerdict::kDiverge && !found.info.variable.empty()) {
      return found;
    }
  }
  ADD_FAILURE() << "no seed in [" << base << "," << base + 60
                << ") tripped the injected tsmm fault";
  return {};
}

TEST(FuzzReplay, InjectedBugIsCaughtShrunkAndReplayedExactly) {
  const LatticePoint point = FaultedPoint();
  const Tolerance tol;
  Divergence found = FindDivergence(point, tol);
  ASSERT_FALSE(found.program.Script().empty());

  // Shrink: the minimized program must still diverge and be tiny -- the
  // injected fault needs only one tsmm statement plus (at most) a consumer.
  GeneratedProgram shrunk = ShrinkProgram(found.program, point, tol);
  EXPECT_LE(shrunk.statements.size(), 5u)
      << "shrunk script:\n" << shrunk.Script();
  EXPECT_LE(shrunk.statements.size(), found.program.statements.size());

  // Re-classify the shrunk program to record its own divergence signature
  // (shrinking can change which variable diverges first).
  DivergenceInfo info;
  ASSERT_EQ(ClassifyPoint(shrunk, point, tol, &info), PointVerdict::kDiverge);
  ASSERT_FALSE(info.variable.empty());

  // Corpus round trip: write .dml + .json, then load and replay from the
  // files alone. The replay must reproduce the divergence AND the recorded
  // ContentHash of the diverging output -- byte-for-byte determinism.
  Repro repro;
  repro.program = shrunk;
  repro.point = point;
  repro.tolerance = tol;
  repro.variable = info.variable;
  repro.expected_hash = info.compiled_hash;
  repro.detail = info.detail;
  const std::string dir = ::testing::TempDir() + "memphis_fuzz_replay";
  const std::string stem = WriteRepro(repro, dir, "injected-tsmm");

  Repro loaded = LoadRepro(stem + ".dml", stem + ".json");
  EXPECT_EQ(loaded.point.name, point.name);
  EXPECT_EQ(loaded.point.fault.opcode, "tsmm");
  EXPECT_EQ(loaded.variable, info.variable);
  EXPECT_EQ(loaded.expected_hash, info.compiled_hash);

  ReplayOutcome outcome = ReplayRepro(loaded);
  EXPECT_TRUE(outcome.diverged) << outcome.detail;
  EXPECT_TRUE(outcome.hash_match) << outcome.detail;
}

TEST(FuzzReplay, DisarmedFaultDoesNotDiverge) {
  // The same corpus entry with the fault stripped from its config must run
  // clean: the serialized KernelFault is the only source of the divergence.
  const LatticePoint point = FaultedPoint();
  const Tolerance tol;
  Divergence found = FindDivergence(point, tol);
  ASSERT_FALSE(found.program.Script().empty());

  Repro repro;
  repro.program = found.program;
  repro.point = point;
  repro.point.fault = KernelFault{};  // opcode empty: disarmed.
  repro.tolerance = tol;
  repro.variable = found.info.variable;
  repro.expected_hash = found.info.compiled_hash;
  const std::string dir = ::testing::TempDir() + "memphis_fuzz_replay";
  const std::string stem = WriteRepro(repro, dir, "disarmed-tsmm");

  ReplayOutcome outcome = ReplayRepro(LoadRepro(stem + ".dml", stem + ".json"));
  EXPECT_FALSE(outcome.diverged) << outcome.detail;
}

}  // namespace
}  // namespace memphis::fuzz
