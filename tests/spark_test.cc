#include <gtest/gtest.h>

#include "common/status.h"
#include "matrix/kernels.h"
#include "spark/block_manager.h"
#include "spark/spark_context.h"

namespace memphis::spark {
namespace {

SystemConfig TestConfig() {
  SystemConfig config;
  config.mem_scale = 1.0;  // Explicit byte budgets below.
  config.num_executors = 2;
  config.cores_per_executor = 4;
  config.executor_memory = 64ull << 20;  // 64 MB/executor.
  return config;
}

class SparkTest : public ::testing::Test {
 protected:
  SparkTest() : sc_(TestConfig(), &cost_model_) {}

  sim::CostModel cost_model_;
  SparkContext sc_;
};

TEST_F(SparkTest, ParallelizeSplitsRowsEvenly) {
  auto m = kernels::Rand(100, 4, 0, 1, 1.0, 1);
  RddPtr rdd = sc_.Parallelize("X", m, 4);
  EXPECT_EQ(rdd->num_partitions(), 4);
  EXPECT_EQ(rdd->rows(), 100u);
  auto result = sc_.Collect(rdd, 0.0);
  EXPECT_TRUE(result.value->ApproxEquals(*m));
  EXPECT_GT(result.completed_at, 0.0);
}

TEST_F(SparkTest, NarrowTransformationIsLazy) {
  auto m = kernels::Rand(50, 2, 0, 1, 1.0, 2);
  RddPtr x = sc_.Parallelize("X", m, 2);
  const int jobs_before = sc_.stats().jobs;
  RddPtr doubled = Rdd::Narrow(
      "x2", {x}, 50, 2, [](const std::vector<const Partition*>& in) {
        return kernels::ScalarOp(kernels::BinaryOp::kMul, *in[0]->data, 2.0);
      });
  EXPECT_EQ(sc_.stats().jobs, jobs_before);  // Nothing ran yet.
  auto result = sc_.Collect(doubled, 0.0);
  EXPECT_EQ(sc_.stats().jobs, jobs_before + 1);
  EXPECT_TRUE(result.value->ApproxEquals(
      *kernels::ScalarOp(kernels::BinaryOp::kMul, *m, 2.0)));
}

TEST_F(SparkTest, AggregateSumsPartials) {
  auto m = kernels::Rand(40, 3, 0, 1, 1.0, 3);
  RddPtr x = sc_.Parallelize("X", m, 4);
  RddPtr sums = Rdd::Aggregate(
      "colsums", x, 1, 3,
      [](const Partition& part) { return kernels::ColSums(*part.data); });
  auto result = sc_.Collect(sums, 0.0);
  EXPECT_TRUE(result.value->ApproxEquals(*kernels::ColSums(*m)));
}

TEST_F(SparkTest, AggregateMinCombiner) {
  auto m = kernels::Rand(40, 3, -5, 5, 1.0, 4);
  RddPtr x = sc_.Parallelize("X", m, 4);
  RddPtr mins = Rdd::Aggregate(
      "colmins", x, 1, 3,
      [](const Partition& part) { return kernels::ColMins(*part.data); },
      kernels::BinaryOp::kMin);
  auto result = sc_.Collect(mins, 0.0);
  EXPECT_TRUE(result.value->ApproxEquals(*kernels::ColMins(*m)));
}

TEST_F(SparkTest, TsmmViaAggregateMatchesLocal) {
  auto m = kernels::Rand(60, 5, -1, 1, 1.0, 5);
  RddPtr x = sc_.Parallelize("X", m, 3);
  RddPtr mm = Rdd::Aggregate("tsmm", x, 5, 5, [](const Partition& part) {
    auto t = kernels::Transpose(*part.data);
    return kernels::MatMult(*t, *part.data);
  });
  auto result = sc_.Collect(mm, 0.0);
  auto expected = kernels::MatMult(*kernels::Transpose(*m), *m);
  EXPECT_TRUE(result.value->ApproxEquals(*expected, 1e-9));
}

TEST_F(SparkTest, RowRangeAwareClosures) {
  // Broadcast-style left multiply: y^T X with y sliced per partition.
  auto x_mat = kernels::Rand(30, 4, -1, 1, 1.0, 6);
  auto y = kernels::Rand(30, 1, -1, 1, 1.0, 7);
  auto yt = kernels::Transpose(*y);
  RddPtr x = sc_.Parallelize("X", x_mat, 3);
  RddPtr ytx = Rdd::Aggregate("ytx", x, 1, 4, [yt](const Partition& part) {
    auto slice = kernels::Slice(*yt, 0, 1, part.row_lo, part.row_hi);
    return kernels::MatMult(*slice, *part.data);
  });
  auto result = sc_.Collect(ytx, 0.0);
  EXPECT_TRUE(result.value->ApproxEquals(*kernels::MatMult(*yt, *x_mat)));
}

TEST_F(SparkTest, SinglePartitionParentReplicates) {
  auto m = kernels::Rand(20, 2, 0, 1, 1.0, 8);
  RddPtr x = sc_.Parallelize("X", m, 4);
  RddPtr sums = Rdd::Aggregate(
      "sums", x, 1, 2,
      [](const Partition& part) { return kernels::ColSums(*part.data); });
  // Subtract the (1-partition) aggregate from every partition.
  RddPtr centered = Rdd::Narrow(
      "centered", {x, sums}, 20, 2,
      [](const std::vector<const Partition*>& in) {
        return kernels::Binary(kernels::BinaryOp::kSub, *in[0]->data,
                               *in[1]->data);
      });
  auto result = sc_.Collect(centered, 0.0);
  auto expected = kernels::Binary(kernels::BinaryOp::kSub, *m,
                                  *kernels::ColSums(*m));
  EXPECT_TRUE(result.value->ApproxEquals(*expected));
}

TEST_F(SparkTest, PersistSkipsRecomputationAndSpeedsUpJobs) {
  auto m = kernels::Rand(200, 8, 0, 1, 1.0, 9);
  RddPtr x = sc_.Parallelize("X", m, 4);
  RddPtr heavy = Rdd::Narrow(
      "heavy", {x}, 200, 8, [](const std::vector<const Partition*>& in) {
        return kernels::Unary(kernels::UnaryOp::kExp, *in[0]->data);
      });
  heavy->set_per_partition_flops(1e9);  // Expensive transformation.
  sc_.Persist(heavy, StorageLevel::kMemoryAndDisk);
  EXPECT_FALSE(sc_.IsMaterialized(heavy));  // persist() is lazy.

  auto first = sc_.Collect(heavy, 0.0);
  EXPECT_TRUE(sc_.IsMaterialized(heavy));
  const double first_duration = first.completed_at;

  auto second = sc_.Collect(heavy, first.completed_at);
  const double second_duration = second.completed_at - first.completed_at;
  EXPECT_LT(second_duration, first_duration / 2.0);
  EXPECT_TRUE(second.value->ApproxEquals(*first.value));
}

TEST_F(SparkTest, UnpersistFreesStorage) {
  auto m = kernels::Rand(100, 8, 0, 1, 1.0, 10);
  RddPtr x = sc_.Parallelize("X", m, 2);
  sc_.Persist(x, StorageLevel::kMemoryOnly);
  sc_.Count(x, 0.0);
  EXPECT_GT(sc_.CachedMemoryBytes(x), 0u);
  const size_t used_before = sc_.block_manager().storage_used();
  sc_.Unpersist(x);
  EXPECT_EQ(sc_.CachedMemoryBytes(x), 0u);
  EXPECT_LT(sc_.block_manager().storage_used(), used_before);
}

TEST_F(SparkTest, ShuffleFilesSkipMapSide) {
  auto m = kernels::Rand(60, 4, 0, 1, 1.0, 11);
  RddPtr x = sc_.Parallelize("X", m, 3);
  RddPtr agg = Rdd::Aggregate(
      "agg", x, 1, 4,
      [](const Partition& part) { return kernels::ColSums(*part.data); });
  auto first = sc_.Collect(agg, 0.0);
  EXPECT_TRUE(agg->shuffle_files_written());
  // A second job over the same aggregate reads retained shuffle files.
  RddPtr shifted = Rdd::Narrow(
      "shift", {agg}, 1, 4, [](const std::vector<const Partition*>& in) {
        return kernels::ScalarOp(kernels::BinaryOp::kAdd, *in[0]->data, 1.0);
      });
  auto second = sc_.Collect(shifted, first.completed_at);
  EXPECT_TRUE(second.value->ApproxEquals(
      *kernels::ScalarOp(kernels::BinaryOp::kAdd, *first.value, 1.0)));
}

TEST_F(SparkTest, ReduceActionAggregatesOnDriver) {
  auto m = kernels::Rand(50, 2, 0, 1, 1.0, 12);
  RddPtr x = sc_.Parallelize("X", m, 5);
  auto result = sc_.Reduce(
      x, [](const Partition& part) { return kernels::ColSums(*part.data); },
      0.0);
  EXPECT_TRUE(result.value->ApproxEquals(*kernels::ColSums(*m)));
}

TEST_F(SparkTest, BroadcastLifecycle) {
  auto value = kernels::Rand(10, 10, 0, 1, 1.0, 13);
  BroadcastPtr broadcast = sc_.CreateBroadcast(value);
  EXPECT_EQ(sc_.broadcast_manager().DriverRetainedBytes(), 800u);
  EXPECT_FALSE(broadcast->transferred());
  sc_.DestroyBroadcast(broadcast);
  EXPECT_TRUE(broadcast->destroyed());
  EXPECT_EQ(sc_.broadcast_manager().DriverRetainedBytes(), 0u);
  sc_.DestroyBroadcast(broadcast);  // Idempotent.
}

TEST_F(SparkTest, BroadcastTransferChargedOnFirstJob) {
  auto m = kernels::Rand(40, 2, 0, 1, 1.0, 14);
  auto w = kernels::Rand(2, 2, 0, 1, 1.0, 15);
  RddPtr x = sc_.Parallelize("X", m, 2);
  BroadcastPtr broadcast = sc_.CreateBroadcast(w);
  RddPtr mapped = Rdd::Narrow(
      "mapmm", {x}, 40, 2, [w](const std::vector<const Partition*>& in) {
        return kernels::MatMult(*in[0]->data, *w);
      });
  mapped->AddBroadcastDep(broadcast);
  EXPECT_FALSE(broadcast->transferred());
  sc_.Collect(mapped, 0.0);
  EXPECT_TRUE(broadcast->transferred());
}

TEST_F(SparkTest, JobsSerializeOnClusterTimeline) {
  auto m = kernels::Rand(50, 2, 0, 1, 1.0, 16);
  RddPtr x = sc_.Parallelize("X", m, 2);
  auto first = sc_.Count(x, 0.0);
  // Second job issued at time 0 still starts after the first finishes.
  auto second = sc_.Count(x, 0.0);
  EXPECT_GE(second.completed_at, first.completed_at);
}

TEST(BlockManagerTest, MaterializeAndGet) {
  BlockManager bm(1 << 20);
  SystemConfig config;
  sim::CostModel cm;
  auto m = kernels::Rand(10, 10, 0, 1, 1.0, 1);
  RddPtr rdd = Rdd::Source("s", 1, 10, 10, [m](int) {
    return Partition{0, 10, m};
  });
  rdd->MarkPersisted(StorageLevel::kMemoryOnly);
  auto partitions = std::make_shared<std::vector<Partition>>();
  partitions->push_back(Partition{0, 10, m});
  EXPECT_EQ(bm.Materialize(rdd, partitions), 0u);
  EXPECT_TRUE(bm.IsMaterialized(rdd->id()));
  EXPECT_EQ(bm.MemoryBytes(rdd->id()), 800u);
  EXPECT_NE(bm.Get(rdd->id()), nullptr);
}

TEST(BlockManagerTest, LruSpillPrefersOldRdds) {
  BlockManager bm(2000);  // Fits two 800-byte RDDs, not three.
  auto make_rdd = [](uint64_t seed, StorageLevel level) {
    auto m = kernels::Rand(10, 10, 0, 1, 1.0, seed);
    RddPtr rdd = Rdd::Source("s", 1, 10, 10,
                             [m](int) { return Partition{0, 10, m}; });
    rdd->MarkPersisted(level);
    auto partitions = std::make_shared<std::vector<Partition>>();
    partitions->push_back(Partition{0, 10, m});
    return std::make_pair(rdd, partitions);
  };
  auto [rdd1, p1] = make_rdd(1, StorageLevel::kMemoryAndDisk);
  auto [rdd2, p2] = make_rdd(2, StorageLevel::kMemoryAndDisk);
  auto [rdd3, p3] = make_rdd(3, StorageLevel::kMemoryAndDisk);
  bm.Materialize(rdd1, p1);
  bm.Materialize(rdd2, p2);
  bm.Get(rdd2->id());  // Touch rdd2: rdd1 becomes LRU.
  bm.Materialize(rdd3, p3);
  EXPECT_GT(bm.DiskBytes(rdd1->id()), 0u);  // rdd1 spilled.
  EXPECT_EQ(bm.DiskBytes(rdd2->id()), 0u);
  EXPECT_NE(bm.Get(rdd1->id()), nullptr);   // Disk-backed: still readable.
}

TEST(BlockManagerTest, MemoryOnlyDropForcesRecompute) {
  BlockManager bm(1000);
  auto make_rdd = [](uint64_t seed) {
    auto m = kernels::Rand(10, 10, 0, 1, 1.0, seed);
    RddPtr rdd = Rdd::Source("s", 1, 10, 10,
                             [m](int) { return Partition{0, 10, m}; });
    rdd->MarkPersisted(StorageLevel::kMemoryOnly);
    auto partitions = std::make_shared<std::vector<Partition>>();
    partitions->push_back(Partition{0, 10, m});
    return std::make_pair(rdd, partitions);
  };
  auto [rdd1, p1] = make_rdd(1);
  auto [rdd2, p2] = make_rdd(2);
  bm.Materialize(rdd1, p1);
  bm.Materialize(rdd2, p2);  // Evicts (drops) rdd1's partitions.
  EXPECT_EQ(bm.Get(rdd1->id()), nullptr);  // Dropped: must recompute.
  EXPECT_GT(bm.num_dropped_partitions(), 0u);
}

TEST(BlockManagerTest, EvictRemovesAccounting) {
  BlockManager bm(1 << 20);
  auto m = kernels::Rand(10, 10, 0, 1, 1.0, 1);
  RddPtr rdd = Rdd::Source("s", 1, 10, 10,
                           [m](int) { return Partition{0, 10, m}; });
  rdd->MarkPersisted(StorageLevel::kMemoryOnly);
  auto partitions = std::make_shared<std::vector<Partition>>();
  partitions->push_back(Partition{0, 10, m});
  bm.Materialize(rdd, partitions);
  EXPECT_EQ(bm.Evict(rdd->id()), 800u);
  EXPECT_FALSE(bm.IsMaterialized(rdd->id()));
  EXPECT_EQ(bm.storage_used(), 0u);
}

TEST_F(SparkTest, EvictedCachedRddRecomputesCorrectly) {
  // Fill storage so a MEMORY_ONLY RDD is dropped, then verify the recompute
  // path produces the same values (Spark lineage-based recovery).
  auto m = kernels::Rand(500, 8, 0, 1, 1.0, 17);
  RddPtr x = sc_.Parallelize("X", m, 4);
  RddPtr mapped = Rdd::Narrow(
      "m", {x}, 500, 8, [](const std::vector<const Partition*>& in) {
        return kernels::ScalarOp(kernels::BinaryOp::kAdd, *in[0]->data, 1.0);
      });
  sc_.Persist(mapped, StorageLevel::kMemoryOnly);
  auto first = sc_.Collect(mapped, 0.0);
  sc_.block_manager().Evict(mapped->id());
  auto second = sc_.Collect(mapped, first.completed_at);
  EXPECT_TRUE(second.value->ApproxEquals(*first.value));
}

}  // namespace
}  // namespace memphis::spark
