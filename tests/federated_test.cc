#include <gtest/gtest.h>

#include "federated/federated.h"
#include "matrix/kernels.h"

namespace memphis::federated {
namespace {

SystemConfig SiteConfig() {
  SystemConfig config;
  config.reuse_mode = ReuseMode::kMemphis;
  config.enable_gpu = false;
  return config;
}

std::shared_ptr<compiler::BasicBlock> GramBlock() {
  auto block = compiler::MakeBasicBlock();
  auto& dag = block->dag();
  dag.Write("gram", dag.Op("tsmm", {dag.Read("X")}));
  dag.Write("xty", dag.Op("matmult",
                          {dag.Op("transpose", {dag.Read("X")}),
                           dag.Read("y")}));
  return block;
}

TEST(FederatedTest, PartitioningCoversAllRows) {
  FederatedCoordinator fed(3, SiteConfig());
  auto x = kernels::RandGaussian(100, 4, 1);
  fed.Distribute("X", x);
  size_t total = 0;
  for (int i = 0; i < 3; ++i) {
    // Asserting shard coverage, not moving data between sites.
    total += fed.site(i).ctx()  // memphis-lint: allow(site-state) -- test
                 .FetchMatrix("X")
                 ->rows();
  }
  EXPECT_EQ(total, 100u);
}

TEST(FederatedTest, FederatedGramMatchesCentralized) {
  // sum_i X_i^T X_i == X^T X when X is row-partitioned.
  FederatedCoordinator fed(4, SiteConfig());
  auto x = kernels::RandGaussian(200, 6, 2);
  auto y = kernels::RandGaussian(200, 1, 3);
  fed.Distribute("X", x);
  fed.Distribute("y", y);
  fed.RunRound(GramBlock);
  MatrixPtr gram = fed.AggregateSum("gram");
  MatrixPtr xty = fed.AggregateSum("xty");
  auto xt = kernels::Transpose(*x);
  EXPECT_TRUE(gram->ApproxEquals(*kernels::MatMult(*xt, *x), 1e-9));
  EXPECT_TRUE(xty->ApproxEquals(*kernels::MatMult(*xt, *y), 1e-9));
}

TEST(FederatedTest, LocalReuseAcrossRounds) {
  // Repeated rounds over the same shards hit every site's local cache
  // ("local lineage-based reuse directly applies", Section 5.4).
  FederatedCoordinator fed(2, SiteConfig());
  fed.Distribute("X", kernels::RandGaussian(80, 4, 4));
  fed.Distribute("y", kernels::RandGaussian(80, 1, 5));
  fed.RunRound(GramBlock);
  const double first_round = fed.ElapsedSeconds();
  fed.RunRound(GramBlock);
  fed.RunRound(GramBlock);
  EXPECT_GT(fed.TotalSiteHits(), 0);
  // Later rounds are (much) cheaper than the first.
  EXPECT_LT(fed.ElapsedSeconds() - first_round, first_round);
}

TEST(FederatedTest, BroadcastBindChangesPerRound) {
  FederatedCoordinator fed(2, SiteConfig());
  fed.Distribute("X", kernels::RandGaussian(64, 3, 6));
  auto block_builder = [] {
    auto block = compiler::MakeBasicBlock();
    auto& dag = block->dag();
    dag.Write("pred", dag.Op("matmult", {dag.Read("X"), dag.Read("w")}));
    return block;
  };
  auto w1 = kernels::RandGaussian(3, 1, 7);
  fed.BroadcastBind("w", w1, "w:round1");
  fed.RunRound(block_builder);
  MatrixPtr pred1 = fed.CollectRows("pred");
  auto w2 = kernels::RandGaussian(3, 1, 8);
  fed.BroadcastBind("w", w2, "w:round2");
  fed.RunRound(block_builder);
  MatrixPtr pred2 = fed.CollectRows("pred");
  EXPECT_FALSE(pred1->ApproxEquals(*pred2));  // New model -> new result.
  EXPECT_EQ(pred1->rows(), 64u);
}

TEST(FederatedTest, SitesRunInParallelVirtualTime) {
  // One round costs the coordinator the *slowest* site delta, not the sum.
  FederatedCoordinator fed(4, SiteConfig());
  fed.Distribute("X", kernels::RandGaussian(4000, 16, 9));
  fed.Distribute("y", kernels::RandGaussian(4000, 1, 10));
  const double coordinator_before = fed.ElapsedSeconds();
  std::vector<double> site_before;
  for (int i = 0; i < 4; ++i) {
    site_before.push_back(fed.site(i).ElapsedSeconds());
  }
  fed.RunRound(GramBlock);
  double sum_of_deltas = 0.0;
  double slowest = 0.0;
  for (int i = 0; i < 4; ++i) {
    const double delta = fed.site(i).ElapsedSeconds() - site_before[i];
    sum_of_deltas += delta;
    slowest = std::max(slowest, delta);
  }
  const double round = fed.ElapsedSeconds() - coordinator_before;
  EXPECT_LT(round, sum_of_deltas);
  EXPECT_NEAR(round, slowest, 1e-12);
}

TEST(FederatedTest, SingleSiteDegeneratesToLocal) {
  FederatedCoordinator fed(1, SiteConfig());
  auto x = kernels::RandGaussian(50, 4, 11);
  fed.Distribute("X", x);
  // Inspecting the lone site's shard, not moving data between sites.
  EXPECT_TRUE(fed.site(0).ctx()  // memphis-lint: allow(site-state) -- test
                  .FetchMatrix("X")
                  ->ApproxEquals(*x));
}

}  // namespace
}  // namespace memphis::federated
