// Structural invariants of compiled instruction streams, checked over
// randomly generated DAGs and placements:
//  * topological order (inputs precede consumers),
//  * cross-backend edges always routed through a transfer instruction,
//  * last_use liveness metadata is exact,
//  * async flags only on legal roots,
//  * every emitted instruction resolves against the op registry.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "compiler/fusion.h"
#include "compiler/op_registry.h"
#include "compiler/placement.h"
#include "compiler/program.h"

namespace memphis::compiler {
namespace {

bool IsTransfer(const std::string& opcode) {
  return opcode == "collect" || opcode == "parallelize" || opcode == "bcast" ||
         opcode == "h2d" || opcode == "d2h" || opcode == "checkpoint";
}

std::shared_ptr<BasicBlock> RandomBlock(Rng* rng) {
  auto block = MakeBasicBlock();
  HopDag& dag = block->dag();
  std::vector<HopPtr> full{dag.Read("X")};
  std::vector<HopPtr> gram;
  auto pick = [&](std::vector<HopPtr>& pool) {
    return pool[rng->NextInt(pool.size())];
  };
  const int ops = 5 + static_cast<int>(rng->NextInt(12));
  for (int i = 0; i < ops; ++i) {
    switch (rng->NextInt(7)) {
      case 0:
        full.push_back(dag.Op("relu", {pick(full)}));
        break;
      case 1:
        full.push_back(dag.Op("+", {pick(full), pick(full)}));
        break;
      case 2:
        gram.push_back(dag.Op("tsmm", {pick(full)}));
        break;
      case 3:
        if (!gram.empty()) {
          full.push_back(dag.Op("matmult", {pick(full), pick(gram)}));
        } else {
          full.push_back(dag.Op("exp", {dag.Op("*", {pick(full),
                                                     dag.Literal(0.01)})}));
        }
        break;
      case 4: {
        auto hop = dag.Op("abs", {pick(full)});
        if (rng->NextDouble() < 0.3) hop->ForceBackend(Backend::kGpu);
        full.push_back(hop);
        break;
      }
      case 5:
        full.push_back(dag.Op("scale", {pick(full)}));
        break;
      default:
        if (!gram.empty() && rng->NextDouble() < 0.5) {
          gram.push_back(dag.Op("relu", {pick(gram)}));
        } else {
          full.push_back(dag.Op("-", {pick(full), dag.Literal(0.5)}));
        }
        break;
    }
  }
  dag.Write("out", full.back());
  if (!gram.empty()) dag.Write("aux", gram.back());
  dag.Write("s", dag.Op("sum", {full.back()}));
  return block;
}

class WellFormed : public ::testing::TestWithParam<int> {};

TEST_P(WellFormed, CompiledStreamInvariants) {
  Rng rng(GetParam());
  auto block = RandomBlock(&rng);

  SystemConfig config;
  config.mem_scale = 1.0;
  // Randomized placement pressure: sometimes everything is local,
  // sometimes Spark-heavy, sometimes GPU-heavy.
  config.operation_memory = rng.NextDouble() < 0.5 ? (64 << 10) : (256 << 20);
  config.gpu_offload_min_flops = rng.NextDouble() < 0.5 ? 1e4 : 1e12;
  CompileOptions options;
  options.async_operators = rng.NextDouble() < 0.7;
  options.max_parallelize = rng.NextDouble() < 0.7;
  options.checkpoint_placement = rng.NextDouble() < 0.7;

  const size_t rows = 500 + rng.NextInt(4000);
  ShapeResolver resolver = [rows](const std::string&) {
    return VarInfo{{rows, 8}, Backend::kCP};
  };
  CompileResult result = CompileDag(block->dag(), config, resolver, options);

  ASSERT_EQ(result.instructions.size(), result.order.size());
  ASSERT_EQ(result.last_use.size(), result.instructions.size());

  // Recomputed last-use oracle.
  std::vector<int> oracle(result.instructions.size(), -1);
  for (size_t i = 0; i < result.instructions.size(); ++i) {
    const Instruction& inst = result.instructions[i];
    EXPECT_EQ(inst.output_slot, static_cast<int>(i));
    for (int slot : inst.input_slots) {
      // Topological: inputs strictly precede consumers.
      EXPECT_LT(slot, static_cast<int>(i)) << "at " << inst.DebugString();
      oracle[slot] = static_cast<int>(i);
    }
    // Opcode resolvable (or a structural pseudo-op). Fused groups carry
    // their compiled tile program instead of a registry entry.
    if (inst.opcode == "fused") {
      EXPECT_NE(inst.fused, nullptr) << inst.DebugString();
      EXPECT_FALSE(inst.fused->recipes.empty()) << inst.DebugString();
    } else if (inst.opcode != "read" && inst.opcode != "literal" &&
               !IsTransfer(inst.opcode)) {
      EXPECT_NE(FindOp(inst.opcode), nullptr) << inst.opcode;
    }
    // Async flags only on legal chain roots / broadcasts.
    if (inst.async) {
      EXPECT_TRUE(inst.opcode == "collect" || inst.opcode == "d2h" ||
                  inst.opcode == "bcast")
          << inst.DebugString();
    }
  }
  EXPECT_EQ(result.last_use, oracle);

  // Cross-backend edges are always bridged by transfers (or scalars).
  for (const auto& inst : result.instructions) {
    if (IsTransfer(inst.opcode)) continue;
    for (int slot : inst.input_slots) {
      const Instruction& producer = result.instructions[slot];
      if (producer.backend == inst.backend) continue;
      const bool producer_bridges = IsTransfer(producer.opcode);
      const bool scalar_edge = producer.out_shape.Cells() <= 1 &&
                               producer.backend == Backend::kCP;
      const bool literal_edge = producer.opcode == "literal" ||
                                producer.opcode == "read";
      EXPECT_TRUE(producer_bridges || scalar_edge || literal_edge)
          << producer.DebugString() << "  ->  " << inst.DebugString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WellFormed, ::testing::Range(1, 31));

}  // namespace
}  // namespace memphis::compiler
