#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/timeline.h"

namespace memphis::sim {
namespace {

TEST(TimelineTest, ReserveSequencesWork) {
  Timeline timeline("t");
  EXPECT_EQ(timeline.Reserve(0.0, 2.0), 2.0);
  // Issued at t=1 but the resource is busy until 2: starts at 2.
  EXPECT_EQ(timeline.Reserve(1.0, 3.0), 5.0);
  EXPECT_EQ(timeline.available_at(), 5.0);
}

TEST(TimelineTest, IdleGapsRespected) {
  Timeline timeline("t");
  timeline.Reserve(0.0, 1.0);
  // Issued at t=10, after the resource idled.
  EXPECT_EQ(timeline.Reserve(10.0, 1.0), 11.0);
}

TEST(TimelineTest, BusyTimeAccumulates) {
  Timeline timeline("t");
  timeline.Reserve(0.0, 2.0);
  timeline.Reserve(0.0, 3.0);
  EXPECT_EQ(timeline.busy_time(), 5.0);
  timeline.Reset();
  EXPECT_EQ(timeline.busy_time(), 0.0);
  EXPECT_EQ(timeline.available_at(), 0.0);
}

TEST(CostModelTest, CpOpRoofline) {
  CostModel cm;
  // Compute bound: many flops, few bytes.
  const double compute_bound = cm.CpOpTime(2e10, 8);
  EXPECT_NEAR(compute_bound, cm.cp_inst_overhead + 1.0, 1e-9);
  // Memory bound: few flops, many bytes.
  const double memory_bound = cm.CpOpTime(1, cm.cpu_mem_bandwidth);
  EXPECT_NEAR(memory_bound, cm.cp_inst_overhead + 1.0, 1e-9);
}

TEST(CostModelTest, TransferTimesScaleWithBytes) {
  CostModel cm;
  EXPECT_GT(cm.ShuffleTime(2e9), cm.ShuffleTime(1e9));
  EXPECT_NEAR(cm.ShuffleTime(15e9), 1.0, 1e-9);  // Table 2: 15 GB/s.
  EXPECT_NEAR(cm.H2DTime(6.1e9) - cm.gpu_sync_latency, 1.0, 1e-9);  // 6.1 GB/s.
}

TEST(CostModelTest, BroadcastGrowsLogarithmically) {
  CostModel cm;
  const double two = cm.BroadcastTime(1e9, 2);
  const double sixteen = cm.BroadcastTime(1e9, 16);
  EXPECT_GT(sixteen, two);
  EXPECT_LT(sixteen, two * 4.0);  // log2(16)=4 rounds vs 1, sub-linear in n.
}

TEST(CostModelTest, GpuAllocationDominatesSmallKernels) {
  // The Figure 2(d) phenomenon: for a small affine kernel, cudaMalloc +
  // cudaFree latency exceeds the kernel compute by a wide margin.
  CostModel cm;
  const double kernel = cm.GpuKernelTime(/*flops=*/60e6, /*bytes=*/1e6);
  const double alloc_free = cm.gpu_malloc_latency + cm.gpu_free_latency;
  EXPECT_GT(alloc_free / kernel, 1.5);
}

TEST(CostModelTest, GpuCopySlowerThanCompute) {
  // Figure 2(d): the D2H copy of the reference affine output (512 KB) takes
  // roughly an order of magnitude longer than the kernel itself.
  CostModel cm;
  const double kernel = cm.GpuKernelTime(60e6, 512 * 1024);
  const double copy = cm.D2HTime(512 * 1024);
  EXPECT_GT(copy / kernel, 4.0);
  EXPECT_LT(copy / kernel, 20.0);
}

TEST(CostModelTest, SparkTaskComputeRoofline) {
  CostModel cm;
  EXPECT_NEAR(cm.SparkTaskCompute(cm.executor_gflops * 1e9, 0), 1.0, 1e-9);
}

}  // namespace
}  // namespace memphis::sim
