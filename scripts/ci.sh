#!/usr/bin/env bash
# CI matrix for MEMPHIS: a plain release build plus AddressSanitizer and
# ThreadSanitizer builds, each running the full tier-1 ctest suite (which
# includes the fuzz smoke and replay suites) and a short memphis_fuzz
# campaign over the default mode lattice.
#
# Usage:
#   scripts/ci.sh            # full matrix: plain, asan, tsan
#   scripts/ci.sh plain      # one configuration
#   FUZZ_RUNS=500 scripts/ci.sh asan
#
# Build trees land in build-ci-<config>/ (kept between runs for incremental
# rebuilds). Exits non-zero on the first failing configuration.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
FUZZ_RUNS="${FUZZ_RUNS:-100}"
CONFIGS=("$@")
if [[ ${#CONFIGS[@]} -eq 0 ]]; then
  CONFIGS=(plain asan tsan)
fi

run_config() {
  local config="$1"
  local build_dir="${REPO_ROOT}/build-ci-${config}"
  local sanitize=""
  case "${config}" in
    plain) sanitize="" ;;
    asan)  sanitize="address" ;;
    tsan)  sanitize="thread" ;;
    *) echo "unknown config '${config}' (want plain|asan|tsan)" >&2; return 2 ;;
  esac

  echo "=== [${config}] configure (MEMPHIS_SANITIZE='${sanitize}') ==="
  mkdir -p "${build_dir}"
  cmake -S "${REPO_ROOT}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DMEMPHIS_SANITIZE="${sanitize}" > "${build_dir}/ci-cmake.log" 2>&1 \
    || { cat "${build_dir}/ci-cmake.log"; return 1; }

  echo "=== [${config}] build (-j${JOBS}) ==="
  cmake --build "${build_dir}" -j "${JOBS}" > "${build_dir}/ci-build.log" 2>&1 \
    || { tail -50 "${build_dir}/ci-build.log"; return 1; }

  echo "=== [${config}] ctest ==="
  ctest --test-dir "${build_dir}" -j "${JOBS}" --output-on-failure

  if [[ "${config}" == "plain" ]]; then
    echo "=== [${config}] trace/metrics validation ==="
    # End-to-end observability check: run a three-backend workload with the
    # collector on, then assert the Chrome trace is Perfetto-loadable
    # (balanced spans, monotone timestamps, both clock domains) and the
    # metrics snapshot carries the report keys.
    (cd "${build_dir}" \
       && ./bench/bench_fig13b_pnmf --trace=ci-trace.json \
            --metrics=ci-metrics.json > /dev/null)
    python3 "${REPO_ROOT}/scripts/validate_trace.py" \
      "${build_dir}/ci-trace.json" "${build_dir}/ci-metrics.json"
  fi

  echo "=== [${config}] memphis_fuzz --runs ${FUZZ_RUNS} ==="
  # The fuzz campaign must come back clean: any divergence is a real
  # compiler/runtime bug (the corpus pair is written for offline triage).
  "${build_dir}/src/memphis_fuzz" --runs "${FUZZ_RUNS}" --seed 1 \
    --corpus "${build_dir}/fuzz-corpus"

  echo "=== [${config}] OK ==="
}

for config in "${CONFIGS[@]}"; do
  run_config "${config}"
done
echo "=== CI matrix passed: ${CONFIGS[*]} ==="
