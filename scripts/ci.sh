#!/usr/bin/env bash
# CI matrix for MEMPHIS: a plain release build plus AddressSanitizer,
# ThreadSanitizer, and UndefinedBehaviorSanitizer builds, each running the
# full tier-1 ctest suite (which includes the fuzz smoke and replay suites,
# and the memphis_lint invariant checks) and a short memphis_fuzz campaign
# over the default mode lattice.
# When clang++ is on PATH, a fourth "tsa" configuration compiles everything
# with -DMEMPHIS_THREAD_SAFETY=ON so the thread-safety annotations in
# src/common/sync.h are verified as compile errors; it is skipped (with a
# notice) on hosts without clang. The plain configuration also runs
# clang-tidy over the compile database when clang-tidy is available.
#
# Usage:
#   scripts/ci.sh            # full matrix: plain, asan, tsan, ubsan [, tsa]
#   scripts/ci.sh plain      # one configuration
#   FUZZ_RUNS=500 scripts/ci.sh asan
#   PERSIST_KILLS=1000 scripts/ci.sh plain   # longer kill-replay campaign
#
# Build trees land in build-ci-<config>/ (kept between runs for incremental
# rebuilds). Exits non-zero on the first failing configuration.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
FUZZ_RUNS="${FUZZ_RUNS:-100}"
VERIFY_RUNS="${VERIFY_RUNS:-100}"
PERSIST_KILLS="${PERSIST_KILLS:-200}"
CONFIGS=("$@")
if [[ ${#CONFIGS[@]} -eq 0 ]]; then
  CONFIGS=(plain asan tsan ubsan)
  if command -v clang++ > /dev/null; then
    CONFIGS+=(tsa)
  else
    echo "--- clang++ not on PATH: skipping the tsa (thread-safety) config"
  fi
fi

# The invariant linter is cheap and source-only: run it before any build so
# a violation fails the pipeline in seconds. It also runs inside every
# configuration's ctest (as the memphis_lint / memphis_lint_selftest tests).
echo "=== memphis_lint (pre-build) ==="
python3 "${REPO_ROOT}/scripts/memphis_lint.py" --self-test
python3 "${REPO_ROOT}/scripts/memphis_lint.py" --root "${REPO_ROOT}"

run_config() {
  local config="$1"
  local build_dir="${REPO_ROOT}/build-ci-${config}"
  local sanitize=""
  local extra_flags=()
  case "${config}" in
    plain) sanitize=""
           extra_flags+=(-DCMAKE_EXPORT_COMPILE_COMMANDS=ON) ;;
    asan)  sanitize="address" ;;
    tsan)  sanitize="thread" ;;
    ubsan) sanitize="undefined" ;;
    tsa)
      # Clang Thread Safety Analysis build: GUARDED_BY/REQUIRES violations
      # are compile errors. Requires clang++ (the annotations are no-ops
      # under GCC, so a GCC "tsa" build would verify nothing).
      if ! command -v clang++ > /dev/null; then
        echo "--- [tsa] clang++ not on PATH: skipped"
        return 0
      fi
      extra_flags+=(-DCMAKE_CXX_COMPILER=clang++ -DMEMPHIS_THREAD_SAFETY=ON)
      ;;
    *) echo "unknown config '${config}' (want plain|asan|tsan|ubsan|tsa)" >&2
       return 2 ;;
  esac

  echo "=== [${config}] configure (MEMPHIS_SANITIZE='${sanitize}') ==="
  mkdir -p "${build_dir}"
  cmake -S "${REPO_ROOT}" -B "${build_dir}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DMEMPHIS_SANITIZE="${sanitize}" \
    "${extra_flags[@]}" > "${build_dir}/ci-cmake.log" 2>&1 \
    || { cat "${build_dir}/ci-cmake.log"; return 1; }

  echo "=== [${config}] build (-j${JOBS}) ==="
  cmake --build "${build_dir}" -j "${JOBS}" > "${build_dir}/ci-build.log" 2>&1 \
    || { tail -50 "${build_dir}/ci-build.log"; return 1; }

  echo "=== [${config}] ctest ==="
  ctest --test-dir "${build_dir}" -j "${JOBS}" --output-on-failure

  if [[ "${config}" == "plain" ]]; then
    if command -v clang-tidy > /dev/null; then
      echo "=== [${config}] clang-tidy (best effort) ==="
      # Curated checks from .clang-tidy over the compile database. Findings
      # are reported but do not fail CI: host clang-tidy versions differ and
      # the blocking gates are memphis_lint and the tsa config.
      find "${REPO_ROOT}/src" -name '*.cc' -print0 \
        | xargs -0 clang-tidy -p "${build_dir}" --quiet \
        || echo "--- clang-tidy reported findings (non-blocking)"
    else
      echo "--- clang-tidy not on PATH: skipped"
    fi

    echo "=== [${config}] trace/metrics validation ==="
    # End-to-end observability check: run a three-backend workload with the
    # collector on, then assert the Chrome trace is Perfetto-loadable
    # (balanced spans, monotone timestamps, both clock domains) and the
    # metrics snapshot carries the report keys.
    (cd "${build_dir}" \
       && ./bench/bench_fig13b_pnmf --trace=ci-trace.json \
            --metrics=ci-metrics.json > /dev/null)
    python3 "${REPO_ROOT}/scripts/validate_trace.py" \
      "${build_dir}/ci-trace.json" "${build_dir}/ci-metrics.json"
  fi

  echo "=== [${config}] serve ==="
  # Serving-layer gate. Plain: the bench_serve smoke traffic must produce a
  # schema-valid BENCH_serve.json whose shared-cache mode materially beats
  # the per-session baseline's lineage hit rate. TSan: the concurrent-
  # submitter stress test re-runs with halt_on_error so any data race in
  # the serve subsystem fails this step by itself (ctest already ran the
  # whole serve suite; this is the targeted repeat for triage).
  if [[ "${config}" == "plain" ]]; then
    # This run doubles as the observer-effect gate: BENCH_serve.json carries
    # the tracing+journal-on vs -off wall clocks and validate_bench fails if
    # the observed run is more than 3% slower.
    (cd "${build_dir}/bench" && ./bench_serve --smoke > /dev/null)
    python3 "${REPO_ROOT}/scripts/validate_bench.py" \
      "${build_dir}/bench/BENCH_serve.json"

    echo "=== [${config}] request explainability ==="
    # Re-run the smoke traffic with the collector and the journal on (cwd is
    # the build root so this BENCH_serve.json, which skips the observer
    # section, does not clobber the one validated above). The Chrome trace
    # must carry rid args + flow linkage on every serve-path span, and the
    # journal must be a complete record -- every probe with exactly one
    # hit-or-miss outcome, zero ring drops -- that memphis_explain can
    # verify and render per request.
    (cd "${build_dir}" \
       && ./bench/bench_serve --smoke --trace=ci-serve-trace.json \
            --journal=ci-serve-journal.json > /dev/null)
    python3 "${REPO_ROOT}/scripts/validate_trace.py" \
      "${build_dir}/ci-serve-trace.json" --require-rid
    "${build_dir}/src/memphis_explain" \
      "${build_dir}/ci-serve-journal.json" --verify
    "${build_dir}/src/memphis_explain" \
      "${build_dir}/ci-serve-journal.json" --request 1 > /dev/null

    echo "=== [${config}] flight recorder ==="
    # Inject a lock-rank inversion (validator forced on, no-abort mode); the
    # armed recorder must write a schema-valid post-mortem dump.
    flight_dump="$("${build_dir}/src/memphis_flight_probe" "${build_dir}" \
                   2> /dev/null)"
    python3 "${REPO_ROOT}/scripts/validate_flight.py" "${flight_dump}"
  elif [[ "${config}" == "tsan" ]]; then
    TSAN_OPTIONS=halt_on_error=1 "${build_dir}/tests/serve_test" \
      --gtest_filter='ServeStressTest.*' > /dev/null \
      || { echo "--- [tsan] serve stress test failed"; return 1; }
    echo "--- [tsan] serve stress test clean"
  else
    echo "--- [${config}] serve gate runs in plain/tsan only"
  fi

  if [[ "${config}" == "plain" ]]; then
    echo "=== [${config}] fusion ==="
    # Operator-fusion gate: the fused tile interpreter must keep its
    # one-memory-pass wall-clock edge on the elementwise-chain micro, never
    # add simulated cost on the paper pipelines, and leave every
    # fused-vs-unfused identity check at exactly 1 (bitwise results).
    (cd "${build_dir}/bench" && ./bench_fusion > /dev/null)
    python3 "${REPO_ROOT}/scripts/validate_bench.py" \
      "${build_dir}/bench/BENCH_fusion.json"

    echo "=== [${config}] persist ==="
    # Durable-tier gate, two halves. (1) The warm-restart bench: a second
    # SessionManager over the cold run's persist directory must serve every
    # tenant's first request from rehydrated disk state (warm first-request
    # hit rate > 0 vs an exact cold 0.0) with bitwise-identical answers.
    # (2) The kill-replay fuzz campaign: PERSIST_KILLS random crash points
    # (torn tails, flipped bits) against random segment logs, each of which
    # must recover to exactly the surviving-record oracle -- any divergence
    # writes a repro JSON into the corpus directory and fails this step.
    (cd "${build_dir}/bench" && ./bench_persist --smoke > /dev/null)
    python3 "${REPO_ROOT}/scripts/validate_bench.py" \
      "${build_dir}/bench/BENCH_persist.json"
    "${build_dir}/src/memphis_fuzz" --persist-kills "${PERSIST_KILLS}" \
      --seed 7 --corpus "${build_dir}/fuzz-corpus" \
      --persist-dir "${build_dir}/persist-fuzz-work"
  fi

  if [[ "${config}" == "plain" ]]; then
    echo "=== [${config}] geo-distributed serving fabric ==="
    # Fabric gate: the federated-serve smoke bench must show cross-site
    # reuse (shared hit rate > 0 vs an exact isolated 0.0), stale-bounded
    # async rounds strictly faster than the synchronous coordinator under
    # skewed site speeds, bitwise-identical aggregates on both comparisons,
    # and exactly-once site-kill accounting (completed + shed + failed_over
    # == affected). Virtual time makes every one of these exact, so the
    # validator has no noise allowances here.
    (cd "${build_dir}/bench" && ./bench_federated_serve --smoke > /dev/null)
    python3 "${REPO_ROOT}/scripts/validate_bench.py" \
      "${build_dir}/bench/BENCH_federated_serve.json"
  fi

  if [[ "${config}" == "plain" ]]; then
    echo "=== [${config}] static plan verifier ==="
    # Verifier gate, two halves. (1) Every repro pair in the checked-in fuzz
    # replay corpus must still reproduce its recorded divergence with the
    # full verifier forced on -- the verifier may never reject a plan the
    # Executor accepts. (2) A generate-and-verify campaign: VERIFY_RUNS
    # random programs across the whole lattice with --verify-plans, where
    # any verifier rejection classifies as a divergence and fails the step.
    shopt -s nullglob
    for script in "${REPO_ROOT}/fuzz/corpus"/*.dml; do
      "${build_dir}/src/memphis_fuzz" --replay "${script}" \
        --config "${script%.dml}.json" --verify-plans > /dev/null \
        || { echo "--- corpus repro failed under the verifier: ${script}"
             return 1; }
    done
    shopt -u nullglob
    "${build_dir}/src/memphis_fuzz" --runs "${VERIFY_RUNS}" --seed 11 \
      --verify-plans --corpus "${build_dir}/fuzz-corpus"
  fi

  echo "=== [${config}] memphis_fuzz --runs ${FUZZ_RUNS} ==="
  # The fuzz campaign must come back clean: any divergence is a real
  # compiler/runtime bug (the corpus pair is written for offline triage).
  "${build_dir}/src/memphis_fuzz" --runs "${FUZZ_RUNS}" --seed 1 \
    --corpus "${build_dir}/fuzz-corpus"

  echo "=== [${config}] OK ==="
}

for config in "${CONFIGS[@]}"; do
  run_config "${config}"
done
echo "=== CI matrix passed: ${CONFIGS[*]} ==="
