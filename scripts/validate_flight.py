#!/usr/bin/env python3
"""Schema check for a crash flight-recorder dump (obs/flight.cc).

Usage:
    validate_flight.py memphis_flight_<pid>.json

CI produces the dump deterministically with memphis_flight_probe (an
injected lock-rank inversion with the validator in no-abort mode) and this
script asserts the post-mortem artifact is actually usable:

  * valid JSON with the memphis_flight version marker;
  * a non-empty reason string and the probe's pid;
  * emitted/dropped accounting for both the trace and journal tails;
  * trace_tail: every event has name/cat/ph/ts/tid, phases are from the
    emitter's alphabet, timestamps are sorted (the dump is a tail, oldest
    first), and at least one event carries the probe's rid;
  * journal_tail: every event has rid/kind/tier/reason/key, kinds/tiers
    are from the journal's vocabulary, and the probe's request-scoped
    probe + miss pair is present with its tenant label.
"""

import json
import sys

TRACE_PHASES = {"B", "E", "i", "X"}
JOURNAL_KINDS = {"probe", "hit", "miss", "put", "evict", "harvest",
                 "promote", "warm", "shed"}
JOURNAL_TIERS = {"none", "host", "scalar", "rdd", "gpu", "disk", "store"}


def fail(message):
    print(f"validate_flight: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {path}: {error}")

    if doc.get("memphis_flight") != 1:
        fail(f"{path}: missing memphis_flight version marker")
    if not doc.get("reason"):
        fail(f"{path}: empty reason")
    if not isinstance(doc.get("pid"), int) or doc["pid"] <= 0:
        fail(f"{path}: bad pid: {doc.get('pid')}")
    for key in ("trace_emitted", "trace_dropped", "journal_emitted",
                "journal_dropped"):
        value = doc.get(key)
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: bad {key}: {value}")

    trace = doc.get("trace_tail")
    if not isinstance(trace, list) or not trace:
        fail(f"{path}: empty trace_tail")
    last_ts = float("-inf")
    rids = set()
    for event in trace:
        for key in ("name", "cat", "ph", "ts", "tid", "rid"):
            if key not in event:
                fail(f"{path}: trace event missing {key}: {event}")
        if event["ph"] not in TRACE_PHASES:
            fail(f"{path}: unexpected trace phase: {event}")
        if event["ts"] < last_ts:
            fail(f"{path}: trace_tail not sorted by ts at {event}")
        last_ts = event["ts"]
        rids.add(event["rid"])
    if not any(rid > 0 for rid in rids):
        fail(f"{path}: no request-scoped trace event in the tail")

    journal = doc.get("journal_tail")
    if not isinstance(journal, list) or not journal:
        fail(f"{path}: empty journal_tail")
    kinds_by_rid = {}
    tenants = set()
    for event in journal:
        for key in ("rid", "ts", "kind", "tier", "reason", "key", "tid"):
            if key not in event:
                fail(f"{path}: journal event missing {key}: {event}")
        if event["kind"] not in JOURNAL_KINDS:
            fail(f"{path}: unexpected journal kind: {event}")
        if event["tier"] not in JOURNAL_TIERS:
            fail(f"{path}: unexpected journal tier: {event}")
        kinds_by_rid.setdefault(event["rid"], set()).add(event["kind"])
        if event.get("tenant"):
            tenants.add(event["tenant"])
    scoped = {rid: kinds for rid, kinds in kinds_by_rid.items() if rid > 0}
    if not any({"probe", "miss"} <= kinds or {"probe", "hit"} <= kinds
               for kinds in scoped.values()):
        fail(f"{path}: no request-scoped probe with an outcome in the tail")
    if not tenants:
        fail(f"{path}: no tenant label on any journal event")

    print(f"validate_flight: {path}: OK (reason {doc['reason']!r}, "
          f"{len(trace)} trace + {len(journal)} journal tail events, "
          f"tenants {sorted(tenants)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
