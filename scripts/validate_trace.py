#!/usr/bin/env python3
"""Validates MEMPHIS observability outputs in CI.

Usage:
    validate_trace.py TRACE.json [METRICS.json] [--require-rid]

Checks that the Chrome trace-event file written by --trace=<file> is
well-formed enough to load in Perfetto / chrome://tracing:

  * valid JSON with a `traceEvents` list;
  * both clock domains present: wall-clock events (pid 1) and
    simulated-time lane events (pid 2) -- the sim lane is only required
    for simulator workloads (not under --require-rid, below);
  * per (pid, tid) track: 'B'/'E' events balance as a stack with matching
    names (the exporter repairs ring wrap-around, so an unbalanced file is
    an exporter bug);
  * timestamps are monotone non-decreasing within each track;
  * 'X' (complete) events have non-negative durations;
  * flow events ('s'/'t'/'f') carry an id, and each flow id has exactly one
    flow-start ('s');
  * the instrumented subsystems all show up: exec, cache, spark, sim.

With --require-rid (serve-path traces): every serve-category span/instant
except the known request-free sites must carry an integer "rid" arg, rid
args must be consistent with the flow ids linking the spans, and at least
one flow must exist (a serve trace with no request flows means the
request-context plumbing regressed). Serve traffic runs real tiles, so
the simulated-time lane and the spark/sim categories are not required;
the serve/exec/cache subsystems must show up instead.

And that the metrics JSON written by --metrics=<file> carries the keys the
paper's reports are built from (values may legitimately be zero for
workloads that skip a backend).
"""

import json
import sys

REQUIRED_CATEGORIES = {"exec", "cache", "spark", "sim"}
REQUIRED_SERVE_CATEGORIES = {"serve", "exec", "cache"}

# Serve-category spans sanctioned to carry no rid (matching the
# allow(span-rid) pragmas in src/): sites that genuinely run outside any
# request scope.
SERVE_GLOBAL_NAMES = {"shutdown"}

REQUIRED_METRIC_KEYS = [
    "cache.hit_ratio",
    "cache.evictions",
    "cache.probes",
    "spark.stage_time_s",
    "spark.job_duration_s",
    "spark.shuffle_bytes",
    "gpu0.alloc_bytes",
    "exec.cp_instructions",
    "pool.chunks",
]


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path, require_rid=False):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: not readable JSON: {err}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")

    pids = set()
    categories = set()
    # (pid, tid) -> open 'B' name stack, and last timestamp seen.
    stacks = {}
    last_ts = {}
    flow_starts = {}  # flow id -> count of 's' events.
    flow_steps = {}   # flow id -> count of 't'/'f' events.
    rids_seen = set()
    for event in events:
        ph = event.get("ph")
        if ph == "M":  # metadata (process/thread names)
            continue
        pid, tid = event.get("pid"), event.get("tid")
        ts = event.get("ts")
        if pid is None or tid is None or ts is None:
            fail(f"{path}: event missing pid/tid/ts: {event}")
        pids.add(pid)
        categories.add(event.get("cat", ""))
        track = (pid, tid)

        if ts < last_ts.get(track, float("-inf")):
            fail(
                f"{path}: non-monotone ts on track {track}: "
                f"{ts} after {last_ts[track]} ({event.get('name')})"
            )
        last_ts[track] = ts

        rid = event.get("args", {}).get("rid")
        if rid is not None:
            if not isinstance(rid, int) or rid < 1:
                fail(f"{path}: non-positive or non-integer rid: {event}")
            rids_seen.add(rid)

        if ph == "B":
            stacks.setdefault(track, []).append(event.get("name"))
            if (
                require_rid
                and event.get("cat") == "serve"
                and event.get("name") not in SERVE_GLOBAL_NAMES
                and rid is None
            ):
                fail(f"{path}: serve span without a rid arg: {event}")
        elif ph == "E":
            stack = stacks.get(track, [])
            if not stack:
                fail(f"{path}: orphan 'E' on track {track}: {event}")
            opened = stack.pop()
            name = event.get("name")
            # Chrome allows nameless 'E'; when named it must match the top.
            if name and name != opened:
                fail(
                    f"{path}: mismatched span on track {track}: "
                    f"'E' {name!r} closes 'B' {opened!r}"
                )
        elif ph == "X":
            if event.get("dur", 0) < 0:
                fail(f"{path}: negative duration: {event}")
        elif ph == "i":
            if (
                require_rid
                and event.get("cat") == "serve"
                and event.get("name") not in SERVE_GLOBAL_NAMES
                and rid is None
            ):
                fail(f"{path}: serve instant without a rid arg: {event}")
        elif ph in ("s", "t", "f"):
            flow_id = event.get("id")
            if flow_id is None:
                fail(f"{path}: flow event without an id: {event}")
            if ph == "s":
                flow_starts[flow_id] = flow_starts.get(flow_id, 0) + 1
            else:
                flow_steps[flow_id] = flow_steps.get(flow_id, 0) + 1
        else:
            fail(f"{path}: unexpected phase {ph!r}: {event}")

    for track, stack in stacks.items():
        if stack:
            fail(f"{path}: {len(stack)} unclosed 'B' on track {track}: {stack}")

    for flow_id, count in flow_starts.items():
        if count != 1:
            fail(f"{path}: flow {flow_id} has {count} starts (want 1)")
    for flow_id in flow_steps:
        if flow_id not in flow_starts:
            fail(f"{path}: flow {flow_id} has steps but no start ('s')")

    if require_rid:
        if not flow_starts:
            fail(f"{path}: --require-rid: no request flows in the trace")
        orphans = {f for f in flow_starts if f not in rids_seen}
        if orphans:
            fail(
                f"{path}: flows with no matching rid-stamped span: "
                f"{sorted(orphans)[:5]}"
            )

    if 1 not in pids:
        fail(f"{path}: no wall-clock events (pid 1)")
    if require_rid:
        # Serve traffic runs real tiles: no simulator lane, no spark stage.
        missing = REQUIRED_SERVE_CATEGORIES - categories
    else:
        if 2 not in pids:
            fail(f"{path}: no simulated-time lane events (pid 2)")
        missing = REQUIRED_CATEGORIES - categories
    if missing:
        fail(f"{path}: missing categories: {sorted(missing)}")

    spans = sum(1 for e in events if e.get("ph") in ("B", "X"))
    flows = len(flow_starts)
    print(
        f"validate_trace: {path}: OK "
        f"({len(events)} events, {spans} spans, {flows} request flows, "
        f"pids {sorted(pids)}, "
        f"categories {sorted(c for c in categories if c)})"
    )


def validate_metrics(path):
    try:
        with open(path) as f:
            metrics = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: not readable JSON: {err}")
    if not isinstance(metrics, dict):
        fail(f"{path}: expected a JSON object")

    missing = [key for key in REQUIRED_METRIC_KEYS if key not in metrics]
    if missing:
        fail(f"{path}: missing metric keys: {missing}")

    if not metrics["exec.cp_instructions"] > 0:
        fail(f"{path}: exec.cp_instructions is zero -- nothing executed?")
    stage = metrics["spark.stage_time_s"]
    if not (isinstance(stage, dict) and "p95" in stage and "count" in stage):
        fail(f"{path}: spark.stage_time_s is not a histogram object: {stage}")

    print(f"validate_trace: {path}: OK ({len(metrics)} metrics)")


def main():
    args = sys.argv[1:]
    require_rid = "--require-rid" in args
    args = [a for a in args if a != "--require-rid"]
    if len(args) < 1 or len(args) > 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    validate_trace(args[0], require_rid=require_rid)
    if len(args) == 2:
        validate_metrics(args[1])


if __name__ == "__main__":
    main()
