#!/usr/bin/env python3
"""Validates MEMPHIS observability outputs in CI.

Usage:
    validate_trace.py TRACE.json [METRICS.json]

Checks that the Chrome trace-event file written by --trace=<file> is
well-formed enough to load in Perfetto / chrome://tracing:

  * valid JSON with a `traceEvents` list;
  * both clock domains present: wall-clock events (pid 1) and
    simulated-time lane events (pid 2);
  * per (pid, tid) track: 'B'/'E' events balance as a stack with matching
    names (the exporter repairs ring wrap-around, so an unbalanced file is
    an exporter bug);
  * timestamps are monotone non-decreasing within each track;
  * 'X' (complete) events have non-negative durations;
  * the instrumented subsystems all show up: exec, cache, spark, sim.

And that the metrics JSON written by --metrics=<file> carries the keys the
paper's reports are built from (values may legitimately be zero for
workloads that skip a backend).
"""

import json
import sys

REQUIRED_CATEGORIES = {"exec", "cache", "spark", "sim"}

REQUIRED_METRIC_KEYS = [
    "cache.hit_ratio",
    "cache.evictions",
    "cache.probes",
    "spark.stage_time_s",
    "spark.job_duration_s",
    "spark.shuffle_bytes",
    "gpu0.alloc_bytes",
    "exec.cp_instructions",
    "pool.chunks",
]


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: not readable JSON: {err}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")

    pids = set()
    categories = set()
    # (pid, tid) -> open 'B' name stack, and last timestamp seen.
    stacks = {}
    last_ts = {}
    for event in events:
        ph = event.get("ph")
        if ph == "M":  # metadata (process/thread names)
            continue
        pid, tid = event.get("pid"), event.get("tid")
        ts = event.get("ts")
        if pid is None or tid is None or ts is None:
            fail(f"{path}: event missing pid/tid/ts: {event}")
        pids.add(pid)
        categories.add(event.get("cat", ""))
        track = (pid, tid)

        if ts < last_ts.get(track, float("-inf")):
            fail(
                f"{path}: non-monotone ts on track {track}: "
                f"{ts} after {last_ts[track]} ({event.get('name')})"
            )
        last_ts[track] = ts

        if ph == "B":
            stacks.setdefault(track, []).append(event.get("name"))
        elif ph == "E":
            stack = stacks.get(track, [])
            if not stack:
                fail(f"{path}: orphan 'E' on track {track}: {event}")
            opened = stack.pop()
            name = event.get("name")
            # Chrome allows nameless 'E'; when named it must match the top.
            if name and name != opened:
                fail(
                    f"{path}: mismatched span on track {track}: "
                    f"'E' {name!r} closes 'B' {opened!r}"
                )
        elif ph == "X":
            if event.get("dur", 0) < 0:
                fail(f"{path}: negative duration: {event}")
        elif ph != "i":
            fail(f"{path}: unexpected phase {ph!r}: {event}")

    for track, stack in stacks.items():
        if stack:
            fail(f"{path}: {len(stack)} unclosed 'B' on track {track}: {stack}")

    if 1 not in pids:
        fail(f"{path}: no wall-clock events (pid 1)")
    if 2 not in pids:
        fail(f"{path}: no simulated-time lane events (pid 2)")
    missing = REQUIRED_CATEGORIES - categories
    if missing:
        fail(f"{path}: missing categories: {sorted(missing)}")

    spans = sum(1 for e in events if e.get("ph") in ("B", "X"))
    print(
        f"validate_trace: {path}: OK "
        f"({len(events)} events, {spans} spans, pids {sorted(pids)}, "
        f"categories {sorted(c for c in categories if c)})"
    )


def validate_metrics(path):
    try:
        with open(path) as f:
            metrics = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"{path}: not readable JSON: {err}")
    if not isinstance(metrics, dict):
        fail(f"{path}: expected a JSON object")

    missing = [key for key in REQUIRED_METRIC_KEYS if key not in metrics]
    if missing:
        fail(f"{path}: missing metric keys: {missing}")

    if not metrics["exec.cp_instructions"] > 0:
        fail(f"{path}: exec.cp_instructions is zero -- nothing executed?")
    stage = metrics["spark.stage_time_s"]
    if not (isinstance(stage, dict) and "p95" in stage and "count" in stage):
        fail(f"{path}: spark.stage_time_s is not a histogram object: {stage}")

    print(f"validate_trace: {path}: OK ({len(metrics)} metrics)")


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    validate_trace(sys.argv[1])
    if len(sys.argv) == 3:
        validate_metrics(sys.argv[2])


if __name__ == "__main__":
    main()
