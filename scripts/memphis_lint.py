#!/usr/bin/env python3
"""MEMPHIS project-invariant linter (tier-1; see DESIGN.md section 5d).

Enforces ten repo invariants that neither the compiler nor the test suite
can check directly:

  raw-sync      Raw std synchronization primitives (std::mutex,
                std::lock_guard, std::unique_lock, std::condition_variable,
                ...) are banned outside src/common/sync.h. Every lock must be
                a memphis::Mutex / SharedMutex so it carries a lock rank and
                thread-safety annotations.

  wall-clock    Simulated-time code (src/spark/, src/gpu/, src/sim/) must
                never read the wall clock: simulated timestamps come from
                sim::Timeline. A wall-clock read there silently corrupts the
                two-clock-domain trace contract.

  trace-pairs   Every MEMPHIS_TRACE_BEGIN(cat, name) must have a matching
                MEMPHIS_TRACE_END(cat, name) in the same function, and no END
                may appear without an open BEGIN. (Scope-shaped spans should
                use MEMPHIS_TRACE_SPAN instead.)

  metric-names  Metric keys registered on a MetricsRegistry follow the dotted
                lower_snake convention: "component.metric_name" (at least one
                dot; [a-z0-9_] segments). Literal fragments of concatenated
                names may not contain uppercase or spaces.

  serve-outcome Request outcomes in the serving layer are recorded exactly
                once, through RequestTicket::Finish; `outcome =` writes in
                src/serve/ outside request.h/request.cc bypass that latch.

  fused-probe   The fused-kernel tile interpreter (src/matrix/fused_kernel.*)
                must never touch the lineage cache: fused-group reuse is
                decided once per group in Executor::ExecuteFused, before any
                tile streams. A probe inside the tile loop would turn the
                single composite-key probe into O(tiles) probes serialized
                on the cache mutex.

  span-rid      Trace emissions on the serving path (src/serve/, src/cache/)
                must carry the request id: use the MEMPHIS_TRACE_*_REQ
                variants (obs/trace.h) so every span/instant joins its
                request's flow in the exported trace and memphis_explain can
                attribute it. Plain MEMPHIS_TRACE_SPAN*/INSTANT* there is a
                finding; genuinely request-free sites (startup scans,
                background harvest threads, manager-wide shutdown) carry an
                allow(span-rid) pragma with a justification.

  layering      The src/ include graph must respect the documented library
                link order: sync < obs < common < {sim, matrix, lineage} <
                {spark, gpu} < cache < compiler < runtime < core <
                {federated, serve, workloads, fuzz}. A project include that
                reaches *up* this order (e.g. obs/ including cache/) is a
                layering inversion: it would make the CMake link order
                cyclic and lets low-level components grow hidden upward
                dependencies. Same-layer includes are fine.

  site-state    Cross-site state moves only through the fabric exchange API
                (FabricStore publish/warm/rewarm, FederatedCoordinator
                broadcast/fetch): reaching into another site's execution
                context via `site(i).ctx()` outside src/fabric/ and
                src/federated/ bypasses the exchange cost model, so the
                transfer is never charged and the geo-distributed timing
                claims quietly rot. Test assertions that must inspect
                per-site state directly carry an allow(site-state) pragma.

  raw-io        Raw write-side file IO (fopen, fwrite, fsync, fdatasync,
                pwrite, bare POSIX open/write) is banned in src/ outside
                src/cache/persist*. Durable bytes flow through the segment
                log so the recovery invariants (checksums, torn-tail
                truncation) stay centralized; a stray fwrite elsewhere is a
                file recovery will never be able to trust. Stream-based text
                outputs (std::ofstream for bench/corpus JSON) are fine.

A finding on a specific line can be waived with an inline pragma comment:

    foo();  // memphis-lint: allow(<rule>) -- justification

Exit status: 0 clean, 1 findings, 2 usage/self-test error.
Run `memphis_lint.py --self-test` to check the linter against embedded
known-good / known-bad snippets (also wired as a ctest).
"""

import argparse
import os
import re
import sys

# --- file discovery ---------------------------------------------------------

SOURCE_DIRS = ("src", "tests")
SOURCE_EXTS = (".h", ".cc")
SYNC_HEADER = os.path.join("src", "common", "sync.h")
SIM_TIME_DIRS = (
    os.path.join("src", "spark"),
    os.path.join("src", "gpu"),
    os.path.join("src", "sim"),
)

ALLOW_RE = re.compile(r"memphis-lint:\s*allow\(([a-z-]+)\)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def find_sources(root):
    out = []
    for base in SOURCE_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, base)):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    out.append(os.path.join(dirpath, name))
    return out


# --- lexing helpers ---------------------------------------------------------

def mask_comments(text):
    """Replaces comment bodies with spaces, preserving newlines and columns.

    String literals are respected so "// not a comment" inside a string
    survives. Handles //, /* */, and raw strings R"delim(...)delim".
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"' or c == "'":
            i = _skip_literal(text, i)
        elif c == "R" and text[i + 1 : i + 2] == '"':
            i = _skip_raw_literal(text, i)
        elif c == "/" and text[i + 1 : i + 2] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and text[i + 1 : i + 2] == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            for j in range(i, end):
                if text[j] != "\n":
                    out[j] = " "
            i = end
        else:
            i += 1
    return "".join(out)


def mask_literals(text):
    """Blanks the contents of string/char literals (keeps the quotes).

    Input should already be comment-masked. Raw strings are blanked too.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "R" and text[i + 1 : i + 2] == '"':
            end = _skip_raw_literal(text, i)
            for j in range(i + 1, end):
                if text[j] != "\n":
                    out[j] = " "
            i = end
        elif c == '"' or c == "'":
            end = _skip_literal(text, i)
            for j in range(i + 1, end - 1):
                if text[j] != "\n":
                    out[j] = " "
            i = end
        else:
            i += 1
    return "".join(out)


def _skip_literal(text, i):
    """Returns the index one past the closing quote of the literal at i."""
    quote = text[i]
    i += 1
    n = len(text)
    while i < n:
        if text[i] == "\\":
            i += 2
        elif text[i] == quote:
            return i + 1
        elif text[i] == "\n":
            return i  # Unterminated (not valid C++); stop at the newline.
        else:
            i += 1
    return n


def _skip_raw_literal(text, i):
    """Returns the index one past a raw string literal R"delim(...)delim"."""
    open_paren = text.find("(", i + 2)
    if open_paren == -1:
        return len(text)
    delim = text[i + 2 : open_paren]
    close = text.find(")" + delim + '"', open_paren + 1)
    if close == -1:
        return len(text)
    return close + len(delim) + 2


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def allowed_rules(original_lines, line):
    if 1 <= line <= len(original_lines):
        return set(ALLOW_RE.findall(original_lines[line - 1]))
    return set()


# --- rule: raw-sync ---------------------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_|timed_|shared_)?mutex\b"
    r"|\bstd\s*::\s*(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|\bstd\s*::\s*condition_variable(?:_any)?\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>"
)


def check_raw_sync(path, rel, text, original_lines):
    if rel.replace(os.sep, "/") == SYNC_HEADER.replace(os.sep, "/"):
        return []
    findings = []
    masked = mask_literals(mask_comments(text))
    for match in RAW_SYNC_RE.finditer(masked):
        line = line_of(masked, match.start())
        if "raw-sync" in allowed_rules(original_lines, line):
            continue
        findings.append(Finding(
            path, line, "raw-sync",
            f"raw '{' '.join(match.group(0).split())}' -- use the "
            "memphis::Mutex/SharedMutex/CondVar wrappers from "
            "common/sync.h (ranked + annotated)"))
    return findings


# --- rule: wall-clock -------------------------------------------------------

WALL_CLOCK_RE = re.compile(
    r"\bstd\s*::\s*chrono\s*::\s*"
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b"
    r"|\bgettimeofday\b|\bclock_gettime\b|\btimespec_get\b"
    r"|\bstd\s*::\s*time\b|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)


def check_wall_clock(path, rel, text, original_lines):
    rel_posix = rel.replace(os.sep, "/")
    if not any(rel_posix.startswith(d.replace(os.sep, "/") + "/")
               for d in SIM_TIME_DIRS):
        return []
    findings = []
    masked = mask_literals(mask_comments(text))
    for match in WALL_CLOCK_RE.finditer(masked):
        line = line_of(masked, match.start())
        if "wall-clock" in allowed_rules(original_lines, line):
            continue
        findings.append(Finding(
            path, line, "wall-clock",
            f"wall-clock read '{' '.join(match.group(0).split())}' in "
            "simulated-time code -- timestamps here must come from "
            "sim::Timeline"))
    return findings


# --- rule: trace-pairs ------------------------------------------------------

TRACE_MACRO_RE = re.compile(r"\bMEMPHIS_TRACE_(BEGIN|END)\s*\(")
# Block headers that are NOT function bodies despite a ')' before '{'.
CONTROL_KEYWORD_RE = re.compile(
    r"\b(?:if|for|while|switch|catch|else)\s*(?:\(|$)")


def _first_arg_span(text, open_paren):
    """Returns (end_index, [literal texts], full_args_text) of a call's args.

    `open_paren` indexes the '(' of the call; scans to its matching ')'.
    """
    depth = 0
    i = open_paren
    n = len(text)
    start = open_paren + 1
    while i < n:
        c = text[i]
        if c == '"' or c == "'":
            i = _skip_literal(text, i)
            continue
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i, text[start:i]
        i += 1
    return n, text[start:n]


def check_trace_pairs(path, rel, text, original_lines):
    findings = []
    masked = mask_comments(text)
    # Pass 1: collect macro sites (line, kind, normalized-args).
    sites = []
    for match in TRACE_MACRO_RE.finditer(masked):
        open_paren = masked.find("(", match.end() - 1)
        _, args = _first_arg_span(masked, open_paren)
        key = " ".join(args.split())
        sites.append((match.start(), line_of(masked, match.start()),
                      match.group(1), key))
    if not sites:
        return []

    # Pass 2: walk braces over a literal-blanked view; function bodies are
    # blocks whose header ends with ')' (plus qualifiers) and is not a
    # control statement. BEGIN/END inside nested plain blocks attribute to
    # the nearest enclosing function frame.
    blanked = mask_literals(masked)
    site_iter = iter(sites)
    next_site = next(site_iter, None)
    frames = []  # (is_function, header_line, {key: [(line, count)...]})
    header_start = 0
    i, n = 0, len(blanked)

    def note(kind, key, line):
        for frame in reversed(frames):
            if frame[0]:
                open_spans = frame[2].setdefault(key, [])
                if kind == "BEGIN":
                    open_spans.append(line)
                elif not open_spans:
                    if "trace-pairs" not in allowed_rules(original_lines,
                                                          line):
                        findings.append(Finding(
                            path, line, "trace-pairs",
                            f"MEMPHIS_TRACE_END({key}) with no open "
                            "MEMPHIS_TRACE_BEGIN in this function"))
                else:
                    open_spans.pop()
                return
        # Macro at namespace scope (inside another macro definition, say):
        # skip pairing rather than guess.

    while i < n:
        while next_site is not None and next_site[0] <= i:
            note(next_site[2], next_site[3], next_site[1])
            next_site = next(site_iter, None)
        c = blanked[i]
        if c == "{":
            header = blanked[header_start:i].strip()
            header = header.rsplit(";", 1)[-1].rsplit("}", 1)[-1].strip()
            is_function = (
                bool(re.search(r"\)\s*(?:const|noexcept|override|final|"
                               r"mutable|->\s*[\w:<>,&*\s]+)?\s*$", header))
                and not CONTROL_KEYWORD_RE.search(header))
            frames.append((is_function, line_of(blanked, i), {}))
            header_start = i + 1
        elif c == "}":
            if frames:
                is_function, _, opens = frames.pop()
                for key, lines in opens.items():
                    for line in lines:
                        if "trace-pairs" in allowed_rules(original_lines,
                                                          line):
                            continue
                        findings.append(Finding(
                            path, line, "trace-pairs",
                            f"MEMPHIS_TRACE_BEGIN({key}) is never ENDed "
                            "in this function -- add MEMPHIS_TRACE_END or "
                            "use MEMPHIS_TRACE_SPAN"))
            header_start = i + 1
        elif c == ";":
            header_start = i + 1
        i += 1
    while next_site is not None:
        note(next_site[2], next_site[3], next_site[1])
        next_site = next(site_iter, None)
    return findings


# --- rule: metric-names -----------------------------------------------------

METRIC_CALL_RE = re.compile(
    r"\b(?:RegisterCallback|Register|GetCounter|GetGauge|GetHistogram)"
    r"\s*\(")
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
METRIC_FRAGMENT_RE = re.compile(r"^[a-z0-9_.]*$")
STRING_LITERAL_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def check_metric_names(path, rel, text, original_lines):
    findings = []
    masked = mask_comments(text)
    for match in METRIC_CALL_RE.finditer(masked):
        open_paren = masked.find("(", match.end() - 1)
        _, args = _first_arg_span(masked, open_paren)
        # First argument only: cut at the first top-level comma.
        first = _cut_first_arg(args)
        literals = STRING_LITERAL_RE.findall(first)
        if not literals:
            continue  # Name built elsewhere; conventions checked there.
        line = line_of(masked, match.start())
        if "metric-names" in allowed_rules(original_lines, line):
            continue
        whole = first.strip()
        if len(literals) == 1 and whole == f'"{literals[0]}"':
            if not METRIC_NAME_RE.match(literals[0]):
                findings.append(Finding(
                    path, line, "metric-names",
                    f'metric name "{literals[0]}" violates the '
                    '"component.metric_name" convention '
                    "(lower_snake segments, at least one dot)"))
        else:
            for fragment in literals:
                if not METRIC_FRAGMENT_RE.match(fragment):
                    findings.append(Finding(
                        path, line, "metric-names",
                        f'metric-name fragment "{fragment}" contains '
                        "characters outside [a-z0-9_.]"))
    return findings


def _cut_first_arg(args):
    depth = 0
    i, n = 0, len(args)
    while i < n:
        c = args[i]
        if c == '"' or c == "'":
            i = _skip_literal(args, i)
            continue
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            return args[:i]
        i += 1
    return args


# --- rule: serve-outcome ----------------------------------------------------

SERVE_DIR = os.path.join("src", "serve")
SERVE_OUTCOME_EXEMPT = (
    os.path.join("src", "serve", "request.h"),   # RequestResult's default.
    os.path.join("src", "serve", "request.cc"),  # RequestTicket::Finish.
)
OUTCOME_WRITE_RE = re.compile(r"\boutcome\s*=(?![=])")


def check_serve_outcome(path, rel, text, original_lines):
    """Request outcomes are recorded exactly once, through
    RequestTicket::Finish (src/serve/request.cc). Any other `outcome =`
    write in src/serve/ would bypass the exactly-once latch, so it is a
    finding even when it happens to be benign."""
    if not rel.startswith(SERVE_DIR + os.sep):
        return []
    if rel in SERVE_OUTCOME_EXEMPT:
        return []
    findings = []
    masked = mask_comments(text)
    for match in OUTCOME_WRITE_RE.finditer(masked):
        line = line_of(masked, match.start())
        if "serve-outcome" in allowed_rules(original_lines, line):
            continue
        findings.append(Finding(
            path, line, "serve-outcome",
            "request outcomes must be recorded exactly once through "
            "RequestTicket::Finish (src/serve/request.cc); do not assign "
            "`outcome` directly"))
    return findings


# --- rule: fused-probe ------------------------------------------------------

FUSED_KERNEL_FILES = tuple(
    os.path.join("src", "matrix", name).replace(os.sep, "/")
    for name in ("fused_kernel.h", "fused_kernel.cc"))
FUSED_PROBE_CODE_RE = re.compile(
    r"\bLineageCache\b|[.>]\s*Reuse\s*\(|\bProbe\s*\(")
FUSED_PROBE_INCLUDE_RE = re.compile(r'#\s*include\s*"cache/[^"\n]*"')


def check_fused_probe(path, rel, text, original_lines):
    """The tile interpreter streams cache-sized subtiles on the shared pool;
    a lineage-cache touch per tile would turn the design's one composite-key
    probe per group into O(tiles) probes under the cache mutex. All reuse
    decisions happen in Executor::ExecuteFused, before tiles stream."""
    if rel.replace(os.sep, "/") not in FUSED_KERNEL_FILES:
        return []
    findings = []
    comment_masked = mask_comments(text)
    masked = mask_literals(comment_masked)
    for match in FUSED_PROBE_CODE_RE.finditer(masked):
        line = line_of(masked, match.start())
        if "fused-probe" in allowed_rules(original_lines, line):
            continue
        findings.append(Finding(
            path, line, "fused-probe",
            f"cache probe '{' '.join(match.group(0).split())}' in the tile "
            "interpreter -- fused-group reuse is decided once per group in "
            "Executor::ExecuteFused, never per tile"))
    for match in FUSED_PROBE_INCLUDE_RE.finditer(comment_masked):
        line = line_of(comment_masked, match.start())
        if "fused-probe" in allowed_rules(original_lines, line):
            continue
        findings.append(Finding(
            path, line, "fused-probe",
            "the tile interpreter must not depend on cache/ headers -- it "
            "runs below the reuse layer"))
    return findings


# --- rule: span-rid ---------------------------------------------------------

SPAN_RID_DIRS = (
    os.path.join("src", "serve"),
    os.path.join("src", "cache"),
)
# The _REQ variants never match: after SPAN/SPAN1/... the next character is
# '_' (of _REQ), not '('. BEGIN/END pairs are exempt (they are rare,
# lint-paired separately, and their call sites predate request scoping).
PLAIN_SPAN_RE = re.compile(r"\bMEMPHIS_TRACE_(?:SPAN[12]?|INSTANT[12]?)\s*\(")


def check_span_rid(path, rel, text, original_lines):
    """Serving-path traces must be attributable to a request: a span without
    a rid is invisible to memphis_explain and breaks the per-request flow in
    the exported trace. Sites that genuinely run outside any request scope
    (construction, background threads, shutdown) say so with a pragma."""
    rel_posix = rel.replace(os.sep, "/")
    if not any(rel_posix.startswith(d.replace(os.sep, "/") + "/")
               for d in SPAN_RID_DIRS):
        return []
    findings = []
    masked = mask_literals(mask_comments(text))
    for match in PLAIN_SPAN_RE.finditer(masked):
        line = line_of(masked, match.start())
        if "span-rid" in allowed_rules(original_lines, line):
            continue
        macro = " ".join(match.group(0).split()).rstrip("(").rstrip()
        findings.append(Finding(
            path, line, "span-rid",
            f"'{macro}' on the serving path carries no request id -- use "
            f"{macro}_REQ (obs/trace.h) so the span joins the request's "
            "flow, or waive a genuinely request-free site with "
            "allow(span-rid)"))
    return findings


# --- rule: site-state -------------------------------------------------------

SITE_STATE_DIRS = (
    os.path.join("src", "fabric"),
    os.path.join("src", "federated"),
)
# A poke is the specific shape `site(<args>).ctx(` (by ref or pointer): the
# per-site ExecutionContext is the state the exchange API exists to mediate.
# `site(i).ElapsedSeconds()` and friends are read-only clock queries, fine.
SITE_STATE_RE = re.compile(
    r"(?:\.|->)\s*site\s*\([^()]*\)\s*(?:\.|->)\s*ctx\s*\(")


def check_site_state(path, rel, text, original_lines):
    """Cross-site data flows only through the fabric exchange API, where
    every transfer is charged bytes x link cost. A direct `site(i).ctx()`
    poke from outside src/fabric/ + src/federated/ moves state between
    sites for free, silently breaking the inter-site cost model."""
    rel_posix = rel.replace(os.sep, "/")
    if any(rel_posix.startswith(d.replace(os.sep, "/") + "/")
           for d in SITE_STATE_DIRS):
        return []
    findings = []
    masked = mask_literals(mask_comments(text))
    for match in SITE_STATE_RE.finditer(masked):
        line = line_of(masked, match.start())
        if "site-state" in allowed_rules(original_lines, line):
            continue
        findings.append(Finding(
            path, line, "site-state",
            "direct `site(i).ctx()` poke outside src/fabric/ + "
            "src/federated/ -- cross-site state moves only through the "
            "fabric exchange API (FabricStore / coordinator broadcast-"
            "fetch) so every transfer is charged; waive a test-only "
            "inspection with allow(site-state)"))
    return findings


# --- rule: raw-io -----------------------------------------------------------

RAW_IO_EXEMPT_PREFIX = os.path.join("src", "cache", "persist")
# Write-side byte IO only. The lookbehind rejects member calls (f.write),
# pointers (file->write), qualified names other than std:: (handled by \b on
# the function name), and identifier suffixes (reopen -> open).
RAW_IO_RE = re.compile(
    r"(?<![\w.>])(?:std\s*::\s*)?(?:fopen|fwrite|fsync|fdatasync|pwrite)"
    r"\s*\("
    r"|(?<![\w.>:])(?:open|write)\s*\(\s*[\w\"/]"
)


def check_raw_io(path, rel, text, original_lines):
    """Durable bytes are written exclusively by the segment log
    (src/cache/persist*): its records are checksummed and its recovery scan
    knows how to truncate a torn tail. A raw write anywhere else in src/
    creates a file that crash recovery can never vouch for."""
    rel_posix = rel.replace(os.sep, "/")
    if not rel_posix.startswith("src/"):
        return []
    if rel_posix.startswith(RAW_IO_EXEMPT_PREFIX.replace(os.sep, "/")):
        return []
    findings = []
    masked = mask_literals(mask_comments(text))
    for match in RAW_IO_RE.finditer(masked):
        line = line_of(masked, match.start())
        if "raw-io" in allowed_rules(original_lines, line):
            continue
        token = " ".join(match.group(0).split()).rstrip("(\"/ ").rstrip()
        findings.append(Finding(
            path, line, "raw-io",
            f"raw file IO '{token}' outside src/cache/persist* -- durable "
            "bytes must go through PersistentTier (checksummed, torn-tail "
            "recoverable); use std::ofstream for plain text outputs"))
    return findings


# --- rule: layering ---------------------------------------------------------

# The documented library link order (see src/CMakeLists.txt and DESIGN.md
# section 5d): each src/ subdirectory gets a layer number, and a file may
# include project headers only from its own layer or below. src/common/sync.*
# is special-cased below obs (memphis_obs links memphis_sync; the rest of
# common/ sits above obs because status/config use the metrics registry).
LAYER_OF_DIR = {
    "obs": 1,
    "common": 2,
    "sim": 3,
    "matrix": 3,
    "lineage": 3,
    "spark": 4,
    "gpu": 4,
    "cache": 5,
    "compiler": 6,
    "runtime": 7,
    "core": 8,
    "federated": 9,
    "serve": 9,
    "workloads": 9,
    "fuzz": 9,
    "fabric": 10,
}
SYNC_LAYER = 0
LAYER_NAMES = {SYNC_LAYER: "sync"}
for _dir, _layer in LAYER_OF_DIR.items():
    LAYER_NAMES.setdefault(_layer, _dir)

PROJECT_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"\n]+)"')


def _layer_of(rel_posix):
    """Layer of a src/-relative POSIX path; None when it has no layer
    (unknown directory, or a path outside src/)."""
    parts = rel_posix.split("/")
    if len(parts) < 2:
        return None
    if parts[0] == "common" and parts[1].startswith("sync."):
        return SYNC_LAYER
    return LAYER_OF_DIR.get(parts[0])


def check_layering(path, rel, text, original_lines):
    """Project includes may never reach up the link order: an upward include
    (obs/ -> cache/, say) is a dependency the CMake library graph cannot
    express without a cycle, and it couples a low layer to policy that
    belongs above it."""
    rel_posix = rel.replace(os.sep, "/")
    if not rel_posix.startswith("src/"):
        return []
    here = _layer_of(rel_posix[len("src/"):])
    if here is None:
        return []
    findings = []
    masked = mask_comments(text)
    for match in PROJECT_INCLUDE_RE.finditer(masked):
        target = _layer_of(match.group(1))
        if target is None or target <= here:
            continue
        line = line_of(masked, match.start())
        if "layering" in allowed_rules(original_lines, line):
            continue
        findings.append(Finding(
            path, line, "layering",
            f'include "{match.group(1)}" reaches up the link order: '
            f"{LAYER_NAMES[here]} (layer {here}) may not depend on "
            f"{LAYER_NAMES[target]} (layer {target})"))
    return findings


# --- driver -----------------------------------------------------------------

RULES = (check_raw_sync, check_wall_clock, check_trace_pairs,
         check_metric_names, check_serve_outcome, check_fused_probe,
         check_span_rid, check_site_state, check_raw_io, check_layering)


def lint_file(path, rel):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(path, 0, "io", str(e))]
    original_lines = text.splitlines()
    findings = []
    for rule in RULES:
        findings.extend(rule(path, rel, text, original_lines))
    return findings


def lint_tree(root):
    findings = []
    for path in find_sources(root):
        rel = os.path.relpath(path, root)
        findings.extend(lint_file(path, rel))
    return findings


# --- self test --------------------------------------------------------------

def _expect(findings, rule, count, label, errors):
    got = sum(1 for f in findings if f.rule == rule)
    if got != count:
        errors.append(f"{label}: expected {count} {rule} finding(s), got "
                      f"{got}: {[str(f) for f in findings]}")


def self_test():
    errors = []

    bad_sync = """
    #include <mutex>
    std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    std::condition_variable cv;
    memphis::Mutex ok{LockRank::kPool, "x"};  // wrapper: fine.
    std::mutex waived;  // memphis-lint: allow(raw-sync) -- self-test
    """
    # 1 include + 1 decl + 2 on the lock_guard line + 1 cv; waived line: 0.
    _expect(lint_stub("src/cache/x.cc", bad_sync), "raw-sync", 5,
            "bad_sync", errors)
    _expect(lint_stub(SYNC_HEADER, bad_sync), "raw-sync", 0,
            "sync.h exempt", errors)
    _expect(lint_stub("src/cache/x.cc",
                      'const char* s = "std::mutex in a string";'),
            "raw-sync", 0, "literal is not code", errors)
    _expect(lint_stub("src/cache/x.cc", "// std::mutex in a comment"),
            "raw-sync", 0, "comment is not code", errors)

    bad_clock = """
    double NowUs() { return std::chrono::steady_clock::now(); }
    double t = time(nullptr);
    double ok = timeline.Now();
    double waived =
        gettimeofday(&tv, 0);  // memphis-lint: allow(wall-clock) -- ok
    """
    _expect(lint_stub("src/sim/x.cc", bad_clock), "wall-clock", 2,
            "bad_clock sim", errors)
    _expect(lint_stub("src/matrix/x.cc", bad_clock), "wall-clock", 0,
            "wall clock fine outside sim dirs", errors)

    bad_trace = """
    void Balanced() {
      MEMPHIS_TRACE_BEGIN("cat", "a");
      if (x) { work(); }
      MEMPHIS_TRACE_END("cat", "a");
    }
    void Unclosed() {
      MEMPHIS_TRACE_BEGIN("cat", "b");
    }
    void Orphan() {
      MEMPHIS_TRACE_END("cat", "c");
    }
    """
    _expect(lint_stub("src/runtime/x.cc", bad_trace), "trace-pairs", 2,
            "bad_trace", errors)
    good_trace = """
    void CrossBranch(bool x) {
      MEMPHIS_TRACE_BEGIN("cat", "a");
      for (;;) { work(); }
      MEMPHIS_TRACE_END("cat", "a");
    }
    struct S {
      void Method() const {
        MEMPHIS_TRACE_BEGIN("m", "n");
        MEMPHIS_TRACE_END("m", "n");
      }
    };
    """
    _expect(lint_stub("src/runtime/x.cc", good_trace), "trace-pairs", 0,
            "good_trace", errors)

    bad_metrics = """
    registry->Register("cache.probes", &c);          // ok
    registry.GetCounter("nodots");                   // bad: no dot
    registry.GetGauge("Upper.case");                 // bad: uppercase
    registry.GetHistogram("exec.op_ms", 1e-6);       // ok
    registry.RegisterCallback("pool.queue_depth", f);  // ok
    registry.GetGauge("arena" + dev + ".allocated_bytes");  // ok fragments
    registry.GetCounter(prefix + "Bad Fragment");    // bad fragment
    registry.GetCounter(runtime_name);               // non-literal: skipped
    RegisterSimLane("Spark Lane");                   // not a metric call
    """
    _expect(lint_stub("src/obs/x.cc", bad_metrics), "metric-names", 3,
            "bad_metrics", errors)

    bad_outcome = """
    void Finish(RequestResult* r) {
      r->outcome = RequestOutcome::kCompleted;
      if (r->outcome == RequestOutcome::kCompleted) { ok(); }  // read: fine
      local.outcome = RequestOutcome::kFailed;
    }
    """
    _expect(lint_stub("src/serve/session_manager.cc", bad_outcome),
            "serve-outcome", 2, "bad_outcome", errors)
    _expect(lint_stub("src/serve/request.cc", bad_outcome),
            "serve-outcome", 0, "request.cc is the sanctioned writer",
            errors)
    _expect(lint_stub("src/runtime/x.cc", bad_outcome),
            "serve-outcome", 0, "outcome writes outside src/serve are fine",
            errors)
    waived_outcome = (
        "void F(RequestResult* r) {\n"
        "  r->outcome = RequestOutcome::kFailed;"
        "  // memphis-lint: allow(serve-outcome) -- self-test\n"
        "}\n")
    _expect(lint_stub("src/serve/admission.cc", waived_outcome),
            "serve-outcome", 0, "waived outcome write", errors)
    _expect(lint_stub("src/serve/admission.cc",
                      "// outcome = in a comment\n"),
            "serve-outcome", 0, "comment is not code", errors)

    bad_fused = """
    #include "cache/lineage_cache.h"
    void RunTile() {
      auto hit = cache->Reuse(item, now);
      if (cache.Probe(key)) { skip(); }
      LineageCache* stash;
    }
    """
    # 1 include + 1 ->Reuse( + 1 Probe( + 1 LineageCache.
    _expect(lint_stub("src/matrix/fused_kernel.cc", bad_fused),
            "fused-probe", 4, "bad_fused", errors)
    _expect(lint_stub("src/runtime/executor.cc", bad_fused),
            "fused-probe", 0, "probes fine outside the tile interpreter",
            errors)
    waived_fused = (
        "void F() {\n"
        "  cache->Reuse(item, now);"
        "  // memphis-lint: allow(fused-probe) -- self-test\n"
        "}\n")
    _expect(lint_stub("src/matrix/fused_kernel.h", waived_fused),
            "fused-probe", 0, "waived probe", errors)
    _expect(lint_stub("src/matrix/fused_kernel.cc",
                      "// cache->Reuse( in a comment\n"),
            "fused-probe", 0, "comment is not code", errors)

    bad_span = """
    void Serve() {
      MEMPHIS_TRACE_SPAN("serve", "request");
      MEMPHIS_TRACE_SPAN1("cache", "probe", "k", v);
      MEMPHIS_TRACE_SPAN2("gpu", "alloc", "k", v, "k2", v2);
      MEMPHIS_TRACE_INSTANT("cache", "miss");
      MEMPHIS_TRACE_INSTANT1("cache", "hit", "kind", k);
      MEMPHIS_TRACE_SPAN_REQ("serve", "request");          // rid: fine
      MEMPHIS_TRACE_INSTANT1_REQ("cache", "hit", "k", v);  // rid: fine
      MEMPHIS_TRACE_SPAN("serve", "shutdown");  // memphis-lint: allow(span-rid) -- self-test
    }
    """
    # SPAN + SPAN1 + SPAN2 + INSTANT + INSTANT1; _REQ and waived: 0.
    _expect(lint_stub("src/serve/x.cc", bad_span), "span-rid", 5,
            "bad_span serve", errors)
    _expect(lint_stub("src/cache/x.cc", bad_span), "span-rid", 5,
            "bad_span cache", errors)
    _expect(lint_stub("src/runtime/x.cc", bad_span), "span-rid", 0,
            "plain spans fine outside the serving path", errors)
    _expect(lint_stub("src/serve/x.cc",
                      '// MEMPHIS_TRACE_SPAN("serve", "in a comment")\n'),
            "span-rid", 0, "comment is not code", errors)
    _expect(lint_stub("src/serve/x.cc",
                      'const char* s = "MEMPHIS_TRACE_SPAN(";\n'),
            "span-rid", 0, "literal is not code", errors)

    bad_site = """
    void Peek(federated::FederatedCoordinator& fed) {
      auto& ctx = fed.site(0).ctx();
      fed.site(i)->ctx().FetchMatrix("X");
      coordinator->site(tenant_site).ctx().cache();
      fed.site(2).ctx().FetchMatrix("X");  // memphis-lint: allow(site-state) -- self-test
      int n = fed.num_sites();                  // read-only query: fine
      store.WarmSite(0, tenant, &cache, &now);  // exchange API: fine
      double t = fed.site(1).ElapsedSeconds();  // clock query: fine
    }
    """
    # ref poke + pointer poke + pointer receiver; waived line: 0.
    _expect(lint_stub("src/serve/x.cc", bad_site), "site-state", 3,
            "bad_site serve", errors)
    _expect(lint_stub("tests/x_test.cc", bad_site), "site-state", 3,
            "bad_site tests", errors)
    _expect(lint_stub("src/fabric/rounds.cc", bad_site), "site-state", 0,
            "fabric is the sanctioned exchange layer", errors)
    _expect(lint_stub("src/federated/federated.cc", bad_site), "site-state",
            0, "federated owns its sites", errors)
    _expect(lint_stub("src/serve/x.cc",
                      "// fed.site(0).ctx() in a comment\n"),
            "site-state", 0, "comment is not code", errors)
    _expect(lint_stub("src/serve/x.cc",
                      'const char* s = "fed.site(0).ctx()";\n'),
            "site-state", 0, "literal is not code", errors)

    bad_io = """
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite(buf.data(), 1, buf.size(), f);
    fsync(fd);
    pwrite(fd, buf, len, off);
    int fd2 = open("/tmp/x", O_WRONLY);
    stream.write(buf, len);                        // member call: fine
    out->write(buf, len);                          // member call: fine
    file.open(path);                               // member call: fine
    std::ofstream ofs(path);                       // stream IO: fine
    fsync(fd3);  // memphis-lint: allow(raw-io) -- self-test
    """
    # fopen + fwrite + fsync + pwrite + bare open; waived fsync line: 0.
    _expect(lint_stub("src/runtime/x.cc", bad_io), "raw-io", 5,
            "bad_io", errors)
    _expect(lint_stub("src/cache/persist.cc", bad_io), "raw-io", 0,
            "persist.cc is the sanctioned writer", errors)
    _expect(lint_stub("src/cache/persist_harvest.cc", bad_io), "raw-io", 0,
            "persist* prefix exempt", errors)
    _expect(lint_stub("tests/persist_test.cc", bad_io), "raw-io", 0,
            "raw IO fine outside src/", errors)
    _expect(lint_stub("src/obs/x.cc",
                      'const char* s = "call fwrite(buf) maybe";\n'),
            "raw-io", 0, "literal is not code", errors)
    _expect(lint_stub("src/obs/x.cc", "// fopen(path) in a comment\n"),
            "raw-io", 0, "comment is not code", errors)

    bad_layers = """
    #include "cache/lineage_cache.h"
    #include "runtime/executor.h"
    #include "common/config.h"
    #include "obs/trace.h"
    #include <vector>
    #include "serve/session_manager.h"  // memphis-lint: allow(layering) -- self-test
    """
    # cache (5), runtime (7), and common (2) all sit above obs (1); the
    # same-dir obs include, the std header, and the waived line are fine.
    _expect(lint_stub("src/obs/trace.cc", bad_layers), "layering", 3,
            "bad_layers obs", errors)
    _expect(lint_stub("src/core/system.cc", bad_layers), "layering", 0,
            "core may include everything below it", errors)
    _expect(lint_stub("src/common/sync.h", '#include "obs/trace.h"\n'),
            "layering", 1, "sync sits below obs", errors)
    _expect(lint_stub("src/common/status.h", '#include "obs/trace.h"\n'),
            "layering", 0, "the rest of common sits above obs", errors)
    _expect(lint_stub("src/matrix/x.cc", '#include "lineage/item.h"\n'),
            "layering", 0, "same-layer include is fine", errors)
    _expect(lint_stub("tests/x.cc", bad_layers), "layering", 0,
            "tests may include any layer", errors)
    _expect(lint_stub("src/obs/x.cc",
                      '// #include "cache/lineage_cache.h" in a comment\n'),
            "layering", 0, "comment is not code", errors)

    if errors:
        for error in errors:
            print("SELF-TEST FAIL:", error, file=sys.stderr)
        return 2
    print("memphis_lint self-test: all rules behave as specified.")
    return 0


def lint_stub(rel, text):
    original_lines = text.splitlines()
    findings = []
    for rule in RULES:
        findings.extend(rule(rel, rel, text, original_lines))
    return findings


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/ and tests/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's embedded self-checks")
    parser.add_argument("files", nargs="*",
                        help="lint only these files (paths relative to root)")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"memphis_lint: no src/ under --root {root}", file=sys.stderr)
        return 2

    if args.files:
        findings = []
        for rel in args.files:
            findings.extend(lint_file(os.path.join(root, rel), rel))
    else:
        findings = lint_tree(root)

    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        print(finding)
    if findings:
        print(f"memphis_lint: {len(findings)} finding(s).", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
