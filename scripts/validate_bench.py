#!/usr/bin/env python3
"""Schema and invariant checks for bench result JSON files.

Currently validates BENCH_serve.json (the serving-layer benchmark). CI runs
this right after bench_serve so a malformed result file -- or a serving
regression that erases the shared-cache advantage -- fails the pipeline:

  python3 scripts/validate_bench.py BENCH_serve.json

Checks:
  * top-level schema (bench name, tables, metrics snapshot);
  * the three tables exist with the expected series and row labels;
  * latency quantiles are positive and monotone (p50 <= p95 <= p99);
  * outcome accounting in the overload table is exact and shows explicit
    shedding (rejections/expiries, never silent drops);
  * shared mode's lineage hit rate materially beats per-session mode's
    (the tentpole claim; the p95 comparison is reported but advisory,
    since wall-clock timing on loaded CI hosts is noisy);
  * the metrics snapshot carries the serve.* counters.
"""

import json
import sys

REQUIRED_METRICS = (
    "serve.submitted",
    "serve.admitted",
    "serve.completed",
    "serve.rejected",
    "serve.session_reuse",
    "serve.session_rebuild",
    "serve.store.puts",
    "serve.store.warmed",
    "serve.double_records",
)

# Shared mode must beat per-session mode's hit rate by at least this much
# (absolute). The bench shows ~0.87 vs ~0.00; 0.2 leaves a wide margin.
MIN_HIT_RATE_GAIN = 0.2


def fail(message):
    print(f"validate_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def find_table(doc, title):
    for table in doc.get("tables", []):
        if table.get("title") == title:
            return table
    fail(f"missing table {title!r}")


def rows_by_config(table):
    rows = {}
    for row in table.get("rows", []):
        if "config" not in row or "seconds" not in row:
            fail(f"table {table['title']!r}: row missing config/seconds")
        if len(row["seconds"]) != len(table.get("series", [])):
            fail(f"table {table['title']!r} row {row['config']!r}: "
                 f"{len(row['seconds'])} values for "
                 f"{len(table.get('series', []))} series")
        rows[row["config"]] = row["seconds"]
    return rows


def check_serve(doc):
    if doc.get("bench") != "serve":
        fail(f"expected bench 'serve', got {doc.get('bench')!r}")
    if doc.get("wall_ms", 0) <= 0:
        fail("wall_ms must be positive")

    latency = find_table(doc, "Serve latency (s)")
    if latency.get("series") != ["per-session", "shared"]:
        fail(f"latency series mismatch: {latency.get('series')}")
    quantiles = rows_by_config(latency)
    for label in ("p50", "p95", "p99", "mean"):
        if label not in quantiles:
            fail(f"latency table missing row {label!r}")
        if any(v <= 0 for v in quantiles[label]):
            fail(f"latency {label} has non-positive values: {quantiles[label]}")
    for column in range(2):
        p50, p95, p99 = (quantiles["p50"][column], quantiles["p95"][column],
                         quantiles["p99"][column])
        if not p50 <= p95 <= p99:
            fail(f"non-monotone quantiles in column {column}: "
                 f"{p50} / {p95} / {p99}")

    reuse = find_table(doc, "Serve reuse")
    if reuse.get("series") != ["per-session", "shared"]:
        fail(f"reuse series mismatch: {reuse.get('series')}")
    rates = rows_by_config(reuse)
    if "lineage_hit_rate" not in rates:
        fail("reuse table missing lineage_hit_rate")
    per_session_rate, shared_rate = rates["lineage_hit_rate"]
    for rate in (per_session_rate, shared_rate):
        if not 0.0 <= rate <= 1.0:
            fail(f"hit rate out of [0, 1]: {rate}")
    if shared_rate < per_session_rate + MIN_HIT_RATE_GAIN:
        fail(f"shared hit rate {shared_rate:.3f} does not materially beat "
             f"per-session {per_session_rate:.3f} "
             f"(need +{MIN_HIT_RATE_GAIN})")

    overload = find_table(doc, "Serve overload")
    counts = rows_by_config(overload)
    for label in ("completed", "rejected", "expired", "failed", "total"):
        if label not in counts:
            fail(f"overload table missing row {label!r}")
        value = counts[label][0]
        if value < 0 or value != int(value):
            fail(f"overload {label} is not a non-negative count: {value}")
    parts = sum(counts[label][0]
                for label in ("completed", "rejected", "expired", "failed"))
    if parts != counts["total"][0] or counts["total"][0] <= 0:
        fail(f"overload outcomes do not partition the total: "
             f"{parts} vs {counts['total'][0]}")
    if counts["failed"][0] != 0:
        fail(f"overload produced failures: {counts['failed'][0]}")
    if counts["rejected"][0] + counts["expired"][0] <= 0:
        fail("overload shed nothing: expected explicit rejections/expiries")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail("metrics snapshot missing")
    for key in REQUIRED_METRICS:
        if key not in metrics:
            fail(f"metrics snapshot missing {key!r}")
    if metrics["serve.double_records"] != 0:
        fail(f"serve.double_records = {metrics['serve.double_records']} "
             "(an outcome was recorded twice)")

    # Advisory: the latency claim. Timing on shared CI hosts is too noisy
    # to gate on, so a miss is a loud warning, not a failure.
    if quantiles["p95"][1] > quantiles["p95"][0]:
        print(f"validate_bench: WARNING: shared p95 {quantiles['p95'][1]:.4f}s "
              f"not below per-session {quantiles['p95'][0]:.4f}s")
    print(f"validate_bench: OK: hit rate {per_session_rate:.3f} -> "
          f"{shared_rate:.3f}, p95 {quantiles['p95'][0] * 1e3:.2f}ms -> "
          f"{quantiles['p95'][1] * 1e3:.2f}ms, overload shed "
          f"{int(counts['rejected'][0] + counts['expired'][0])}"
          f"/{int(counts['total'][0])}")


def main():
    if len(sys.argv) != 2:
        print("usage: validate_bench.py BENCH_serve.json", file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {sys.argv[1]}: {error}")
    check_serve(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())
