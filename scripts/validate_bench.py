#!/usr/bin/env python3
"""Schema and invariant checks for bench result JSON files.

Validates BENCH_serve.json (serving layer), BENCH_fusion.json (operator
fusion), and BENCH_persist.json (durable tier); the file's "bench" field
selects the checker. CI runs this right after each bench so a malformed
result file -- or a regression that erases the benchmark's headline claim --
fails the pipeline:

  python3 scripts/validate_bench.py BENCH_serve.json
  python3 scripts/validate_bench.py BENCH_fusion.json
  python3 scripts/validate_bench.py BENCH_persist.json

Serve checks:
  * top-level schema (bench name, tables, metrics snapshot);
  * the three tables exist with the expected series and row labels;
  * latency quantiles are positive and monotone (p50 <= p95 <= p99);
  * outcome accounting in the overload table is exact and shows explicit
    shedding (rejections/expiries, never silent drops);
  * shared mode's lineage hit rate materially beats per-session mode's
    (the tentpole claim; the p95 comparison is reported but advisory,
    since wall-clock timing on loaded CI hosts is noisy);
  * the observer effect is bounded: the same shared-mode traffic with
    tracing + journal enabled must finish within 3% of the disabled run
    (min-of-5 both legs, plus a 2ms absolute allowance for pure timer
    noise on sub-100ms smoke runs) -- note the table is absent when the
    bench ran with --trace/--journal, so validate only unobserved runs;
  * the metrics snapshot carries the serve.* counters.

Fusion checks:
  * fused wall-clock <= unfused on the elementwise-chain micro (the
    one-memory-pass claim; min-of-5 timing, small noise allowance);
  * fused simulated seconds <= unfused on every paper pipeline, with a
    measurable (> 1x) speedup on at least one;
  * every identity check is exactly 1 (fusion never changes results);
  * the metrics snapshot carries fusion.* counters showing groups actually
    formed and executed, with zero fallbacks in a clean bench run.

Persist checks:
  * the cold phase's first-request hit rate is exactly 0 (an empty
    directory has nothing to hit) while the warm phase's is positive --
    the restart claim: bytes written by the cold phase's shutdown came
    back through the segment log;
  * the warm phase saw cross-session hits;
  * latency rows are positive;
  * every cross-restart identity check is exactly 1 (a warm restart never
    changes an answer);
  * the metrics snapshot shows the disk tier actually wrote and re-read
    bytes, the store rehydrated entries, and recovery saw zero corrupt
    records in a clean run.

Federated-serve checks (BENCH_federated_serve.json):
  * cross-site reuse: shared hit rate > 0 while the isolated leg is exactly
    0.000, with every aggregate bitwise-identical between the two legs;
  * async vs sync: stale-bounded rounds finish strictly sooner than the
    synchronous coordinator under skewed site speeds (virtual time, so the
    gate is exact, no noise allowance), with stale contributions actually
    used and bitwise-identical aggregates;
  * site kill: completed + shed + failed_over == affected (exactly-once,
    never a silent drop), and every failed-over request completed at a
    survivor;
  * the metrics snapshot carries the federated.* and fabric.* counters and
    shows cross-site fetches were charged (fabric.exchange_bytes > 0).
"""

import json
import sys

REQUIRED_METRICS = (
    "serve.submitted",
    "serve.admitted",
    "serve.completed",
    "serve.rejected",
    "serve.session_reuse",
    "serve.session_rebuild",
    "serve.store.puts",
    "serve.store.warmed",
    "serve.double_records",
)

# Shared mode must beat per-session mode's hit rate by at least this much
# (absolute). The bench shows ~0.87 vs ~0.00; 0.2 leaves a wide margin.
MIN_HIT_RATE_GAIN = 0.2

# Observer-effect gate: tracing + journal enabled must stay within 3% of the
# disabled wall clock (the observability layer's cost contract). The small
# absolute slack absorbs scheduler-granularity timer noise on the sub-100ms
# smoke runs without weakening the percentage claim on real runs.
OBSERVER_MAX_OVERHEAD = 1.03
OBSERVER_ABS_SLACK_S = 0.002

# Verifier-effect gate: the static plan verifier in its release mode
# (summary) must stay within 2% of the verifier-off wall clock. The full
# mode is reported in the table but not gated -- debug/fuzz builds pay for
# re-derivation by design. The absolute slack is wider than the observer
# gate's: the smoke legs are sub-100ms and the summary/full columns invert
# run to run, so multi-millisecond scheduler jitter dominates the verifier's
# actual (memoized, once-per-unique-plan) cost; on real-length runs the
# percentage term governs.
VERIFIER_MAX_OVERHEAD = 1.02
VERIFIER_ABS_SLACK_S = 0.005


def fail(message):
    print(f"validate_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def find_table(doc, title):
    for table in doc.get("tables", []):
        if table.get("title") == title:
            return table
    fail(f"missing table {title!r}")


def rows_by_config(table):
    rows = {}
    for row in table.get("rows", []):
        if "config" not in row or "seconds" not in row:
            fail(f"table {table['title']!r}: row missing config/seconds")
        if len(row["seconds"]) != len(table.get("series", [])):
            fail(f"table {table['title']!r} row {row['config']!r}: "
                 f"{len(row['seconds'])} values for "
                 f"{len(table.get('series', []))} series")
        rows[row["config"]] = row["seconds"]
    return rows


def check_serve(doc):
    if doc.get("bench") != "serve":
        fail(f"expected bench 'serve', got {doc.get('bench')!r}")
    if doc.get("wall_ms", 0) <= 0:
        fail("wall_ms must be positive")

    latency = find_table(doc, "Serve latency (s)")
    if latency.get("series") != ["per-session", "shared"]:
        fail(f"latency series mismatch: {latency.get('series')}")
    quantiles = rows_by_config(latency)
    for label in ("p50", "p95", "p99", "mean"):
        if label not in quantiles:
            fail(f"latency table missing row {label!r}")
        if any(v <= 0 for v in quantiles[label]):
            fail(f"latency {label} has non-positive values: {quantiles[label]}")
    for column in range(2):
        p50, p95, p99 = (quantiles["p50"][column], quantiles["p95"][column],
                         quantiles["p99"][column])
        if not p50 <= p95 <= p99:
            fail(f"non-monotone quantiles in column {column}: "
                 f"{p50} / {p95} / {p99}")

    reuse = find_table(doc, "Serve reuse")
    if reuse.get("series") != ["per-session", "shared"]:
        fail(f"reuse series mismatch: {reuse.get('series')}")
    rates = rows_by_config(reuse)
    if "lineage_hit_rate" not in rates:
        fail("reuse table missing lineage_hit_rate")
    per_session_rate, shared_rate = rates["lineage_hit_rate"]
    for rate in (per_session_rate, shared_rate):
        if not 0.0 <= rate <= 1.0:
            fail(f"hit rate out of [0, 1]: {rate}")
    if shared_rate < per_session_rate + MIN_HIT_RATE_GAIN:
        fail(f"shared hit rate {shared_rate:.3f} does not materially beat "
             f"per-session {per_session_rate:.3f} "
             f"(need +{MIN_HIT_RATE_GAIN})")

    observer = find_table(doc, "Serve observer effect (s)")
    if observer.get("series") != ["disabled", "enabled"]:
        fail(f"observer series mismatch: {observer.get('series')}")
    walls = rows_by_config(observer)
    if "wall_min_of_7" not in walls:
        fail("observer table missing wall_min_of_7")
    disabled_s, enabled_s = walls["wall_min_of_7"]
    if disabled_s <= 0 or enabled_s <= 0:
        fail(f"non-positive observer wall times: {disabled_s} / {enabled_s}")
    if enabled_s > disabled_s * OBSERVER_MAX_OVERHEAD + OBSERVER_ABS_SLACK_S:
        fail(f"observer effect: tracing+journal run {enabled_s:.4f}s exceeds "
             f"disabled {disabled_s:.4f}s by more than "
             f"{(OBSERVER_MAX_OVERHEAD - 1) * 100:.0f}% "
             f"(ratio {enabled_s / disabled_s:.3f})")

    verifier = find_table(doc, "Serve verifier effect (s)")
    if verifier.get("series") != ["off", "summary", "full"]:
        fail(f"verifier series mismatch: {verifier.get('series')}")
    verifier_walls = rows_by_config(verifier)
    if "wall_min_of_7" not in verifier_walls:
        fail("verifier table missing wall_min_of_7")
    off_s, summary_s, full_s = verifier_walls["wall_min_of_7"]
    if off_s <= 0 or summary_s <= 0 or full_s <= 0:
        fail(f"non-positive verifier wall times: "
             f"{off_s} / {summary_s} / {full_s}")
    if summary_s > off_s * VERIFIER_MAX_OVERHEAD + VERIFIER_ABS_SLACK_S:
        fail(f"verifier effect: summary-mode run {summary_s:.4f}s exceeds "
             f"verifier-off {off_s:.4f}s by more than "
             f"{(VERIFIER_MAX_OVERHEAD - 1) * 100:.0f}% "
             f"(ratio {summary_s / off_s:.3f})")

    overload = find_table(doc, "Serve overload")
    counts = rows_by_config(overload)
    for label in ("completed", "rejected", "expired", "failed", "total"):
        if label not in counts:
            fail(f"overload table missing row {label!r}")
        value = counts[label][0]
        if value < 0 or value != int(value):
            fail(f"overload {label} is not a non-negative count: {value}")
    parts = sum(counts[label][0]
                for label in ("completed", "rejected", "expired", "failed"))
    if parts != counts["total"][0] or counts["total"][0] <= 0:
        fail(f"overload outcomes do not partition the total: "
             f"{parts} vs {counts['total'][0]}")
    if counts["failed"][0] != 0:
        fail(f"overload produced failures: {counts['failed'][0]}")
    if counts["rejected"][0] + counts["expired"][0] <= 0:
        fail("overload shed nothing: expected explicit rejections/expiries")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail("metrics snapshot missing")
    for key in REQUIRED_METRICS:
        if key not in metrics:
            fail(f"metrics snapshot missing {key!r}")
    if metrics["serve.double_records"] != 0:
        fail(f"serve.double_records = {metrics['serve.double_records']} "
             "(an outcome was recorded twice)")

    # Advisory: the latency claim. Timing on shared CI hosts is too noisy
    # to gate on, so a miss is a loud warning, not a failure.
    if quantiles["p95"][1] > quantiles["p95"][0]:
        print(f"validate_bench: WARNING: shared p95 {quantiles['p95'][1]:.4f}s "
              f"not below per-session {quantiles['p95'][0]:.4f}s")
    print(f"validate_bench: OK: hit rate {per_session_rate:.3f} -> "
          f"{shared_rate:.3f}, p95 {quantiles['p95'][0] * 1e3:.2f}ms -> "
          f"{quantiles['p95'][1] * 1e3:.2f}ms, observer effect "
          f"{enabled_s / disabled_s:.3f}x, verifier effect "
          f"{summary_s / off_s:.3f}x (full {full_s / off_s:.3f}x), "
          f"overload shed "
          f"{int(counts['rejected'][0] + counts['expired'][0])}"
          f"/{int(counts['total'][0])}")


REQUIRED_FUSION_METRICS = ("fusion.groups_formed", "fusion.ops_fused",
                           "fusion.groups_executed", "fusion.composite_hits",
                           "fusion.fallback_unfused")

# Wall-clock noise allowance on the micro: the bench reports ~2x, so even a
# heavily loaded CI host has a wide margin before this trips.
MICRO_WALL_TOLERANCE = 1.05
# Simulated seconds are deterministic; the tolerance only absorbs printf
# rounding in the JSON.
SIM_TOLERANCE = 1.0001


def check_fusion(doc):
    if doc.get("bench") != "fusion":
        fail(f"expected bench 'fusion', got {doc.get('bench')!r}")
    if doc.get("wall_ms", 0) <= 0:
        fail("wall_ms must be positive")

    micro = find_table(
        doc, "Fusion micro: 6-op elementwise chain, wall seconds (min of 5)")
    if micro.get("series") != ["unfused", "fused"]:
        fail(f"micro series mismatch: {micro.get('series')}")
    micro_rows = rows_by_config(micro)
    if "2048x2048 chain" not in micro_rows:
        fail("micro table missing the 2048x2048 chain row")
    unfused_wall, fused_wall = micro_rows["2048x2048 chain"]
    if unfused_wall <= 0 or fused_wall <= 0:
        fail(f"non-positive micro wall times: {unfused_wall} / {fused_wall}")
    if fused_wall > unfused_wall * MICRO_WALL_TOLERANCE:
        fail(f"fused micro wall {fused_wall:.4f}s exceeds unfused "
             f"{unfused_wall:.4f}s: tile streaming lost its one-pass edge")

    pipelines = find_table(doc, "Fusion on paper pipelines, simulated seconds")
    if pipelines.get("series") != ["MPH-NF", "MPH"]:
        fail(f"pipeline series mismatch: {pipelines.get('series')}")
    pipeline_rows = rows_by_config(pipelines)
    if not pipeline_rows:
        fail("pipeline table has no rows")
    best_speedup = 0.0
    for label, (unfused, fused) in pipeline_rows.items():
        if unfused <= 0 or fused <= 0:
            fail(f"pipeline {label!r}: non-positive seconds")
        if fused > unfused * SIM_TOLERANCE:
            fail(f"pipeline {label!r}: fused {fused} slower than unfused "
                 f"{unfused} (fusion must never add simulated cost)")
        best_speedup = max(best_speedup, unfused / fused)
    if best_speedup <= 1.0:
        fail("no pipeline shows a measurable fused speedup (> 1x)")

    identity = find_table(doc,
                          "Fusion identity checks (1 = fused equals unfused)")
    for row in identity.get("rows", []):
        if row.get("seconds") != [1.0]:
            fail(f"identity check {row.get('config')!r} failed: "
                 f"{row.get('seconds')} (fusion changed a result)")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail("metrics snapshot missing")
    for key in REQUIRED_FUSION_METRICS:
        if key not in metrics:
            fail(f"metrics snapshot missing {key!r}")
    if metrics["fusion.groups_formed"] <= 0:
        fail("fusion.groups_formed is zero: the pass never fired")
    if metrics["fusion.groups_executed"] <= 0:
        fail("fusion.groups_executed is zero: groups formed but never ran")
    if metrics["fusion.fallback_unfused"] != 0:
        fail(f"fusion.fallback_unfused = {metrics['fusion.fallback_unfused']} "
             "(a clean bench run should never hit the fallback path)")

    print(f"validate_bench: OK: micro {unfused_wall:.4f}s -> "
          f"{fused_wall:.4f}s ({unfused_wall / fused_wall:.2f}x), best "
          f"pipeline speedup {best_speedup:.2f}x, "
          f"{int(metrics['fusion.groups_formed'])} groups / "
          f"{int(metrics['fusion.ops_fused'])} ops fused, identities hold")


REQUIRED_PERSIST_METRICS = ("persist.puts", "persist.hits",
                            "persist.bytes_written", "persist.bytes_read",
                            "persist.corrupt_records",
                            "serve.store.rehydrated")


def check_persist(doc):
    if doc.get("bench") != "persist":
        fail(f"expected bench 'persist', got {doc.get('bench')!r}")
    if doc.get("wall_ms", 0) <= 0:
        fail("wall_ms must be positive")

    reuse = find_table(doc, "Persist warm restart, first request per tenant")
    if reuse.get("series") != ["cold", "warm"]:
        fail(f"reuse series mismatch: {reuse.get('series')}")
    rates = rows_by_config(reuse)
    for label in ("lineage_hit_rate", "cross_session_hits_per_req",
                  "warmed_per_req"):
        if label not in rates:
            fail(f"reuse table missing row {label!r}")
    cold_rate, warm_rate = rates["lineage_hit_rate"]
    if cold_rate != 0.0:
        fail(f"cold first-request hit rate is {cold_rate}, expected exactly 0 "
             "(the cold phase starts from an empty directory)")
    if warm_rate <= 0.0:
        fail(f"warm first-request hit rate is {warm_rate}: nothing survived "
             "the restart, the durable tier's headline claim is gone")
    if rates["cross_session_hits_per_req"][1] <= 0.0:
        fail("warm phase saw no cross-session hits")

    latency = find_table(doc, "Persist restart latency (s)")
    if latency.get("series") != ["cold", "warm"]:
        fail(f"latency series mismatch: {latency.get('series')}")
    times = rows_by_config(latency)
    for label in ("first_request_mean", "mean"):
        if label not in times:
            fail(f"latency table missing row {label!r}")
        if any(v <= 0 for v in times[label]):
            fail(f"latency {label} has non-positive values: {times[label]}")

    identity = find_table(doc,
                          "Persist identity checks (1 = warm equals cold)")
    if not identity.get("rows"):
        fail("identity table has no rows")
    for row in identity["rows"]:
        if row.get("seconds") != [1.0]:
            fail(f"identity check {row.get('config')!r} failed: "
                 f"{row.get('seconds')} (a restart changed a result)")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail("metrics snapshot missing")
    for key in REQUIRED_PERSIST_METRICS:
        if key not in metrics:
            fail(f"metrics snapshot missing {key!r}")
    if metrics["persist.puts"] <= 0 or metrics["persist.bytes_written"] <= 0:
        fail("the durable tier never wrote anything")
    if metrics["persist.hits"] <= 0 or metrics["persist.bytes_read"] <= 0:
        fail("the durable tier never served a read back")
    if metrics["serve.store.rehydrated"] <= 0:
        fail("the warm phase rehydrated nothing from disk")
    if metrics["persist.corrupt_records"] != 0:
        fail(f"persist.corrupt_records = {metrics['persist.corrupt_records']} "
             "(a clean bench run should never see a bad checksum)")

    print(f"validate_bench: OK: first-request hit rate {cold_rate:.3f} -> "
          f"{warm_rate:.3f} across restart, "
          f"{int(metrics['serve.store.rehydrated'])} entries rehydrated, "
          f"{int(metrics['persist.bytes_written'])} bytes logged, "
          "identities hold")


REQUIRED_FEDERATED_METRICS = ("federated.rounds", "federated.transfer_bytes",
                              "fabric.rounds", "fabric.stale_contributions",
                              "fabric.store.publishes",
                              "fabric.store.cross_site_warms",
                              "fabric.exchange_bytes", "fabric.submitted",
                              "fabric.shed", "fabric.failed_over")


def check_federated_serve(doc):
    if doc.get("bench") != "federated_serve":
        fail(f"expected bench 'federated_serve', got {doc.get('bench')!r}")
    if doc.get("wall_ms", 0) <= 0:
        fail("wall_ms must be positive")

    reuse = find_table(doc, "Federated cross-site reuse")
    if reuse.get("series") != ["isolated", "shared"]:
        fail(f"reuse series mismatch: {reuse.get('series')}")
    reuse_rows = rows_by_config(reuse)
    for label in ("cross_site_hit_rate", "fabric_store_entries",
                  "final_seconds", "bitwise_identical"):
        if label not in reuse_rows:
            fail(f"reuse table missing row {label!r}")
    isolated_rate, shared_rate = reuse_rows["cross_site_hit_rate"]
    if isolated_rate != 0.0:
        fail(f"isolated cross-site hit rate is {isolated_rate}, expected "
             "exactly 0 (no fabric store means nothing can cross sites)")
    if shared_rate <= 0.0:
        fail(f"shared cross-site hit rate is {shared_rate}: the fabric "
             "store never warmed a site, the cross-site reuse claim is gone")
    if reuse_rows["fabric_store_entries"][1] <= 0:
        fail("the fabric store holds no entries after the shared run")
    if reuse_rows["bitwise_identical"] != [1.0, 1.0]:
        fail(f"cross-site reuse changed an aggregate: "
             f"bitwise_identical = {reuse_rows['bitwise_identical']}")

    speed = find_table(doc, "Federated async vs sync (skewed speeds)")
    if speed.get("series") != ["sync", "async"]:
        fail(f"async-vs-sync series mismatch: {speed.get('series')}")
    speed_rows = rows_by_config(speed)
    for label in ("final_seconds", "rounds_per_second", "stale_contributions",
                  "fresh_transfers", "bitwise_identical"):
        if label not in speed_rows:
            fail(f"async-vs-sync table missing row {label!r}")
    sync_s, async_s = speed_rows["final_seconds"]
    if sync_s <= 0 or async_s <= 0:
        fail(f"non-positive final times: {sync_s} / {async_s}")
    # Virtual time is deterministic, so the gate is strict: with one
    # straggler, stale-bounded rounds must finish sooner than lockstep.
    if async_s >= sync_s:
        fail(f"async final time {async_s} is not below sync {sync_s}: "
             "a slow site stalled the fleet")
    sync_tput, async_tput = speed_rows["rounds_per_second"]
    if async_tput < sync_tput:
        fail(f"async throughput {async_tput} below sync {sync_tput}")
    if speed_rows["stale_contributions"][1] <= 0:
        fail("async run used no stale contributions: the staleness bound "
             "never engaged, so the comparison is vacuous")
    if speed_rows["bitwise_identical"] != [1.0, 1.0]:
        fail(f"staleness changed an aggregate: "
             f"bitwise_identical = {speed_rows['bitwise_identical']}")

    kill = find_table(doc, "Fabric site-kill accounting")
    counts = rows_by_config(kill)
    for label in ("affected", "completed", "shed", "failed_over", "accounted",
                  "exactly_once", "resolved_completed"):
        if label not in counts:
            fail(f"site-kill table missing row {label!r}")
        value = counts[label][0]
        if value < 0 or value != int(value):
            fail(f"site-kill {label} is not a non-negative count: {value}")
    affected = counts["affected"][0]
    accounted = (counts["completed"][0] + counts["shed"][0] +
                 counts["failed_over"][0])
    if affected <= 0:
        fail("site kill affected no requests: the scenario never fired")
    if accounted != affected or counts["exactly_once"][0] != 1.0:
        fail(f"site-kill accounting is not exactly-once: "
             f"{accounted} accounted vs {affected} affected")
    if counts["resolved_completed"][0] < counts["failed_over"][0]:
        fail(f"only {counts['resolved_completed'][0]} failed-over requests "
             f"completed at a survivor (expected >= "
             f"{counts['failed_over'][0]})")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail("metrics snapshot missing")
    for key in REQUIRED_FEDERATED_METRICS:
        if key not in metrics:
            fail(f"metrics snapshot missing {key!r}")
    if metrics["fabric.rounds"] <= 0:
        fail("fabric.rounds is zero: the round engine never ran")
    if metrics["fabric.exchange_bytes"] <= 0:
        fail("fabric.exchange_bytes is zero: cross-site fetches were free")

    print(f"validate_bench: OK: cross-site hit rate {isolated_rate:.3f} -> "
          f"{shared_rate:.3f}, async {sync_s / async_s:.2f}x faster than "
          f"sync at bitwise-identical aggregates, site kill accounted "
          f"{int(accounted)}/{int(affected)} exactly once")


CHECKERS = {"serve": check_serve, "fusion": check_fusion,
            "persist": check_persist,
            "federated_serve": check_federated_serve}


def main():
    if len(sys.argv) != 2:
        print("usage: validate_bench.py BENCH_<name>.json", file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {sys.argv[1]}: {error}")
    checker = CHECKERS.get(doc.get("bench"))
    if checker is None:
        fail(f"no checker for bench {doc.get('bench')!r} "
             f"(known: {sorted(CHECKERS)})")
    checker(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())
