# Empty dependencies file for gridsearch_linreg.
# This may be replaced when dependencies are built.
