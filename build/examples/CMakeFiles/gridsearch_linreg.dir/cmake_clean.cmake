file(REMOVE_RECURSE
  "CMakeFiles/gridsearch_linreg.dir/gridsearch_linreg.cpp.o"
  "CMakeFiles/gridsearch_linreg.dir/gridsearch_linreg.cpp.o.d"
  "gridsearch_linreg"
  "gridsearch_linreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsearch_linreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
