# Empty dependencies file for script_runner.
# This may be replaced when dependencies are built.
