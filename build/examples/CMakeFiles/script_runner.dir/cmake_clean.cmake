file(REMOVE_RECURSE
  "CMakeFiles/script_runner.dir/script_runner.cpp.o"
  "CMakeFiles/script_runner.dir/script_runner.cpp.o.d"
  "script_runner"
  "script_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
