file(REMOVE_RECURSE
  "CMakeFiles/cleaning_enum.dir/cleaning_enum.cpp.o"
  "CMakeFiles/cleaning_enum.dir/cleaning_enum.cpp.o.d"
  "cleaning_enum"
  "cleaning_enum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaning_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
