# Empty compiler generated dependencies file for cleaning_enum.
# This may be replaced when dependencies are built.
