file(REMOVE_RECURSE
  "CMakeFiles/lineage_debugging.dir/lineage_debugging.cpp.o"
  "CMakeFiles/lineage_debugging.dir/lineage_debugging.cpp.o.d"
  "lineage_debugging"
  "lineage_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineage_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
