# Empty dependencies file for lineage_debugging.
# This may be replaced when dependencies are built.
