# Empty compiler generated dependencies file for ensemble_gpu_scoring.
# This may be replaced when dependencies are built.
