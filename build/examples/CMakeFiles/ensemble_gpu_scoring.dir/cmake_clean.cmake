file(REMOVE_RECURSE
  "CMakeFiles/ensemble_gpu_scoring.dir/ensemble_gpu_scoring.cpp.o"
  "CMakeFiles/ensemble_gpu_scoring.dir/ensemble_gpu_scoring.cpp.o.d"
  "ensemble_gpu_scoring"
  "ensemble_gpu_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_gpu_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
