# Empty dependencies file for federated_gram.
# This may be replaced when dependencies are built.
