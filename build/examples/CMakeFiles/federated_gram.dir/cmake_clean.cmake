file(REMOVE_RECURSE
  "CMakeFiles/federated_gram.dir/federated_gram.cpp.o"
  "CMakeFiles/federated_gram.dir/federated_gram.cpp.o.d"
  "federated_gram"
  "federated_gram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_gram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
