# Empty compiler generated dependencies file for lineage_query_test.
# This may be replaced when dependencies are built.
