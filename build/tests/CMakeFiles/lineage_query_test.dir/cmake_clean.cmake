file(REMOVE_RECURSE
  "CMakeFiles/lineage_query_test.dir/lineage_query_test.cc.o"
  "CMakeFiles/lineage_query_test.dir/lineage_query_test.cc.o.d"
  "lineage_query_test"
  "lineage_query_test.pdb"
  "lineage_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineage_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
