
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/concurrency_test.cc" "tests/CMakeFiles/concurrency_test.dir/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/concurrency_test.dir/concurrency_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/memphis_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_federated.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_lineage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
