file(REMOVE_RECURSE
  "CMakeFiles/wellformed_test.dir/wellformed_test.cc.o"
  "CMakeFiles/wellformed_test.dir/wellformed_test.cc.o.d"
  "wellformed_test"
  "wellformed_test.pdb"
  "wellformed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wellformed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
