file(REMOVE_RECURSE
  "CMakeFiles/timeline_property_test.dir/timeline_property_test.cc.o"
  "CMakeFiles/timeline_property_test.dir/timeline_property_test.cc.o.d"
  "timeline_property_test"
  "timeline_property_test.pdb"
  "timeline_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
