# Empty dependencies file for timeline_property_test.
# This may be replaced when dependencies are built.
