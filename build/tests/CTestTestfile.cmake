# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/lineage_test[1]_include.cmake")
include("/root/repo/build/tests/lineage_query_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/timeline_property_test[1]_include.cmake")
include("/root/repo/build/tests/spark_test[1]_include.cmake")
include("/root/repo/build/tests/spark_ops_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/wellformed_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/multigpu_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/pipelines_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/federated_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
