# Empty dependencies file for memphis_common.
# This may be replaced when dependencies are built.
