file(REMOVE_RECURSE
  "CMakeFiles/memphis_common.dir/common/config.cc.o"
  "CMakeFiles/memphis_common.dir/common/config.cc.o.d"
  "CMakeFiles/memphis_common.dir/common/hash.cc.o"
  "CMakeFiles/memphis_common.dir/common/hash.cc.o.d"
  "CMakeFiles/memphis_common.dir/common/rng.cc.o"
  "CMakeFiles/memphis_common.dir/common/rng.cc.o.d"
  "CMakeFiles/memphis_common.dir/common/status.cc.o"
  "CMakeFiles/memphis_common.dir/common/status.cc.o.d"
  "CMakeFiles/memphis_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/memphis_common.dir/common/thread_pool.cc.o.d"
  "CMakeFiles/memphis_common.dir/common/util.cc.o"
  "CMakeFiles/memphis_common.dir/common/util.cc.o.d"
  "libmemphis_common.a"
  "libmemphis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
