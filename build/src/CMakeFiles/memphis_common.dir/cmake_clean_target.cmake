file(REMOVE_RECURSE
  "libmemphis_common.a"
)
