
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spark/block_manager.cc" "src/CMakeFiles/memphis_spark.dir/spark/block_manager.cc.o" "gcc" "src/CMakeFiles/memphis_spark.dir/spark/block_manager.cc.o.d"
  "/root/repo/src/spark/broadcast.cc" "src/CMakeFiles/memphis_spark.dir/spark/broadcast.cc.o" "gcc" "src/CMakeFiles/memphis_spark.dir/spark/broadcast.cc.o.d"
  "/root/repo/src/spark/dag_scheduler.cc" "src/CMakeFiles/memphis_spark.dir/spark/dag_scheduler.cc.o" "gcc" "src/CMakeFiles/memphis_spark.dir/spark/dag_scheduler.cc.o.d"
  "/root/repo/src/spark/rdd.cc" "src/CMakeFiles/memphis_spark.dir/spark/rdd.cc.o" "gcc" "src/CMakeFiles/memphis_spark.dir/spark/rdd.cc.o.d"
  "/root/repo/src/spark/spark_context.cc" "src/CMakeFiles/memphis_spark.dir/spark/spark_context.cc.o" "gcc" "src/CMakeFiles/memphis_spark.dir/spark/spark_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/memphis_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
