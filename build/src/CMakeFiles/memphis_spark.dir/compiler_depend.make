# Empty compiler generated dependencies file for memphis_spark.
# This may be replaced when dependencies are built.
