file(REMOVE_RECURSE
  "CMakeFiles/memphis_spark.dir/spark/block_manager.cc.o"
  "CMakeFiles/memphis_spark.dir/spark/block_manager.cc.o.d"
  "CMakeFiles/memphis_spark.dir/spark/broadcast.cc.o"
  "CMakeFiles/memphis_spark.dir/spark/broadcast.cc.o.d"
  "CMakeFiles/memphis_spark.dir/spark/dag_scheduler.cc.o"
  "CMakeFiles/memphis_spark.dir/spark/dag_scheduler.cc.o.d"
  "CMakeFiles/memphis_spark.dir/spark/rdd.cc.o"
  "CMakeFiles/memphis_spark.dir/spark/rdd.cc.o.d"
  "CMakeFiles/memphis_spark.dir/spark/spark_context.cc.o"
  "CMakeFiles/memphis_spark.dir/spark/spark_context.cc.o.d"
  "libmemphis_spark.a"
  "libmemphis_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
