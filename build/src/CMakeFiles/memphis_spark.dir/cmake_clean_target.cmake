file(REMOVE_RECURSE
  "libmemphis_spark.a"
)
