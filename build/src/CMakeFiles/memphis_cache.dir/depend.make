# Empty dependencies file for memphis_cache.
# This may be replaced when dependencies are built.
