file(REMOVE_RECURSE
  "libmemphis_cache.a"
)
