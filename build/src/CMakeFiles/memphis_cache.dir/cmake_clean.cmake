file(REMOVE_RECURSE
  "CMakeFiles/memphis_cache.dir/cache/gpu_cache_manager.cc.o"
  "CMakeFiles/memphis_cache.dir/cache/gpu_cache_manager.cc.o.d"
  "CMakeFiles/memphis_cache.dir/cache/host_cache.cc.o"
  "CMakeFiles/memphis_cache.dir/cache/host_cache.cc.o.d"
  "CMakeFiles/memphis_cache.dir/cache/lineage_cache.cc.o"
  "CMakeFiles/memphis_cache.dir/cache/lineage_cache.cc.o.d"
  "CMakeFiles/memphis_cache.dir/cache/spark_cache_manager.cc.o"
  "CMakeFiles/memphis_cache.dir/cache/spark_cache_manager.cc.o.d"
  "libmemphis_cache.a"
  "libmemphis_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
