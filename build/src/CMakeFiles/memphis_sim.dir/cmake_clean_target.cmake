file(REMOVE_RECURSE
  "libmemphis_sim.a"
)
