file(REMOVE_RECURSE
  "CMakeFiles/memphis_sim.dir/sim/cost_model.cc.o"
  "CMakeFiles/memphis_sim.dir/sim/cost_model.cc.o.d"
  "CMakeFiles/memphis_sim.dir/sim/timeline.cc.o"
  "CMakeFiles/memphis_sim.dir/sim/timeline.cc.o.d"
  "libmemphis_sim.a"
  "libmemphis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
