# Empty compiler generated dependencies file for memphis_sim.
# This may be replaced when dependencies are built.
