# Empty dependencies file for memphis_federated.
# This may be replaced when dependencies are built.
