file(REMOVE_RECURSE
  "libmemphis_federated.a"
)
