file(REMOVE_RECURSE
  "CMakeFiles/memphis_federated.dir/federated/federated.cc.o"
  "CMakeFiles/memphis_federated.dir/federated/federated.cc.o.d"
  "libmemphis_federated.a"
  "libmemphis_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
