file(REMOVE_RECURSE
  "CMakeFiles/memphis_runtime.dir/runtime/execution_context.cc.o"
  "CMakeFiles/memphis_runtime.dir/runtime/execution_context.cc.o.d"
  "CMakeFiles/memphis_runtime.dir/runtime/executor.cc.o"
  "CMakeFiles/memphis_runtime.dir/runtime/executor.cc.o.d"
  "CMakeFiles/memphis_runtime.dir/runtime/instruction.cc.o"
  "CMakeFiles/memphis_runtime.dir/runtime/instruction.cc.o.d"
  "CMakeFiles/memphis_runtime.dir/runtime/recompute.cc.o"
  "CMakeFiles/memphis_runtime.dir/runtime/recompute.cc.o.d"
  "CMakeFiles/memphis_runtime.dir/runtime/stats.cc.o"
  "CMakeFiles/memphis_runtime.dir/runtime/stats.cc.o.d"
  "libmemphis_runtime.a"
  "libmemphis_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
