file(REMOVE_RECURSE
  "libmemphis_runtime.a"
)
