# Empty dependencies file for memphis_runtime.
# This may be replaced when dependencies are built.
