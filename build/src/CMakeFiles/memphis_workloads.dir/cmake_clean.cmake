file(REMOVE_RECURSE
  "CMakeFiles/memphis_workloads.dir/workloads/builtins.cc.o"
  "CMakeFiles/memphis_workloads.dir/workloads/builtins.cc.o.d"
  "CMakeFiles/memphis_workloads.dir/workloads/cleaning.cc.o"
  "CMakeFiles/memphis_workloads.dir/workloads/cleaning.cc.o.d"
  "CMakeFiles/memphis_workloads.dir/workloads/datasets.cc.o"
  "CMakeFiles/memphis_workloads.dir/workloads/datasets.cc.o.d"
  "CMakeFiles/memphis_workloads.dir/workloads/dnn.cc.o"
  "CMakeFiles/memphis_workloads.dir/workloads/dnn.cc.o.d"
  "CMakeFiles/memphis_workloads.dir/workloads/pipelines.cc.o"
  "CMakeFiles/memphis_workloads.dir/workloads/pipelines.cc.o.d"
  "libmemphis_workloads.a"
  "libmemphis_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
