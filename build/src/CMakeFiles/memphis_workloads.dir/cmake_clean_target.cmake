file(REMOVE_RECURSE
  "libmemphis_workloads.a"
)
