# Empty dependencies file for memphis_workloads.
# This may be replaced when dependencies are built.
