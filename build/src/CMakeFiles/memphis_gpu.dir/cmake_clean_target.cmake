file(REMOVE_RECURSE
  "libmemphis_gpu.a"
)
