# Empty compiler generated dependencies file for memphis_gpu.
# This may be replaced when dependencies are built.
