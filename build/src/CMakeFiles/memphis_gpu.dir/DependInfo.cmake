
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/gpu_arena.cc" "src/CMakeFiles/memphis_gpu.dir/gpu/gpu_arena.cc.o" "gcc" "src/CMakeFiles/memphis_gpu.dir/gpu/gpu_arena.cc.o.d"
  "/root/repo/src/gpu/gpu_context.cc" "src/CMakeFiles/memphis_gpu.dir/gpu/gpu_context.cc.o" "gcc" "src/CMakeFiles/memphis_gpu.dir/gpu/gpu_context.cc.o.d"
  "/root/repo/src/gpu/gpu_stream.cc" "src/CMakeFiles/memphis_gpu.dir/gpu/gpu_stream.cc.o" "gcc" "src/CMakeFiles/memphis_gpu.dir/gpu/gpu_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/memphis_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
