file(REMOVE_RECURSE
  "CMakeFiles/memphis_gpu.dir/gpu/gpu_arena.cc.o"
  "CMakeFiles/memphis_gpu.dir/gpu/gpu_arena.cc.o.d"
  "CMakeFiles/memphis_gpu.dir/gpu/gpu_context.cc.o"
  "CMakeFiles/memphis_gpu.dir/gpu/gpu_context.cc.o.d"
  "CMakeFiles/memphis_gpu.dir/gpu/gpu_stream.cc.o"
  "CMakeFiles/memphis_gpu.dir/gpu/gpu_stream.cc.o.d"
  "libmemphis_gpu.a"
  "libmemphis_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
