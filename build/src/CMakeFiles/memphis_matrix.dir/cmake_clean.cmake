file(REMOVE_RECURSE
  "CMakeFiles/memphis_matrix.dir/matrix/kernels.cc.o"
  "CMakeFiles/memphis_matrix.dir/matrix/kernels.cc.o.d"
  "CMakeFiles/memphis_matrix.dir/matrix/matrix_block.cc.o"
  "CMakeFiles/memphis_matrix.dir/matrix/matrix_block.cc.o.d"
  "CMakeFiles/memphis_matrix.dir/matrix/nn_kernels.cc.o"
  "CMakeFiles/memphis_matrix.dir/matrix/nn_kernels.cc.o.d"
  "CMakeFiles/memphis_matrix.dir/matrix/transform_kernels.cc.o"
  "CMakeFiles/memphis_matrix.dir/matrix/transform_kernels.cc.o.d"
  "libmemphis_matrix.a"
  "libmemphis_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
