
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/kernels.cc" "src/CMakeFiles/memphis_matrix.dir/matrix/kernels.cc.o" "gcc" "src/CMakeFiles/memphis_matrix.dir/matrix/kernels.cc.o.d"
  "/root/repo/src/matrix/matrix_block.cc" "src/CMakeFiles/memphis_matrix.dir/matrix/matrix_block.cc.o" "gcc" "src/CMakeFiles/memphis_matrix.dir/matrix/matrix_block.cc.o.d"
  "/root/repo/src/matrix/nn_kernels.cc" "src/CMakeFiles/memphis_matrix.dir/matrix/nn_kernels.cc.o" "gcc" "src/CMakeFiles/memphis_matrix.dir/matrix/nn_kernels.cc.o.d"
  "/root/repo/src/matrix/transform_kernels.cc" "src/CMakeFiles/memphis_matrix.dir/matrix/transform_kernels.cc.o" "gcc" "src/CMakeFiles/memphis_matrix.dir/matrix/transform_kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/memphis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
