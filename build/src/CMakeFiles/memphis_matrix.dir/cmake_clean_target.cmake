file(REMOVE_RECURSE
  "libmemphis_matrix.a"
)
