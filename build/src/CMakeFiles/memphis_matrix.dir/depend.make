# Empty dependencies file for memphis_matrix.
# This may be replaced when dependencies are built.
