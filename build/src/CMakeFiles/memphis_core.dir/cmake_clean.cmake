file(REMOVE_RECURSE
  "CMakeFiles/memphis_core.dir/core/system.cc.o"
  "CMakeFiles/memphis_core.dir/core/system.cc.o.d"
  "libmemphis_core.a"
  "libmemphis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
