# Empty compiler generated dependencies file for memphis_core.
# This may be replaced when dependencies are built.
