file(REMOVE_RECURSE
  "libmemphis_core.a"
)
