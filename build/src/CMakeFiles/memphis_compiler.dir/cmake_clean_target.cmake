file(REMOVE_RECURSE
  "libmemphis_compiler.a"
)
