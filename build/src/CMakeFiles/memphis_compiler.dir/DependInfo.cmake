
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/hop.cc" "src/CMakeFiles/memphis_compiler.dir/compiler/hop.cc.o" "gcc" "src/CMakeFiles/memphis_compiler.dir/compiler/hop.cc.o.d"
  "/root/repo/src/compiler/linearize.cc" "src/CMakeFiles/memphis_compiler.dir/compiler/linearize.cc.o" "gcc" "src/CMakeFiles/memphis_compiler.dir/compiler/linearize.cc.o.d"
  "/root/repo/src/compiler/op_registry.cc" "src/CMakeFiles/memphis_compiler.dir/compiler/op_registry.cc.o" "gcc" "src/CMakeFiles/memphis_compiler.dir/compiler/op_registry.cc.o.d"
  "/root/repo/src/compiler/parser.cc" "src/CMakeFiles/memphis_compiler.dir/compiler/parser.cc.o" "gcc" "src/CMakeFiles/memphis_compiler.dir/compiler/parser.cc.o.d"
  "/root/repo/src/compiler/placement.cc" "src/CMakeFiles/memphis_compiler.dir/compiler/placement.cc.o" "gcc" "src/CMakeFiles/memphis_compiler.dir/compiler/placement.cc.o.d"
  "/root/repo/src/compiler/program.cc" "src/CMakeFiles/memphis_compiler.dir/compiler/program.cc.o" "gcc" "src/CMakeFiles/memphis_compiler.dir/compiler/program.cc.o.d"
  "/root/repo/src/compiler/rewrites.cc" "src/CMakeFiles/memphis_compiler.dir/compiler/rewrites.cc.o" "gcc" "src/CMakeFiles/memphis_compiler.dir/compiler/rewrites.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/memphis_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_lineage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/memphis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
