file(REMOVE_RECURSE
  "CMakeFiles/memphis_compiler.dir/compiler/hop.cc.o"
  "CMakeFiles/memphis_compiler.dir/compiler/hop.cc.o.d"
  "CMakeFiles/memphis_compiler.dir/compiler/linearize.cc.o"
  "CMakeFiles/memphis_compiler.dir/compiler/linearize.cc.o.d"
  "CMakeFiles/memphis_compiler.dir/compiler/op_registry.cc.o"
  "CMakeFiles/memphis_compiler.dir/compiler/op_registry.cc.o.d"
  "CMakeFiles/memphis_compiler.dir/compiler/parser.cc.o"
  "CMakeFiles/memphis_compiler.dir/compiler/parser.cc.o.d"
  "CMakeFiles/memphis_compiler.dir/compiler/placement.cc.o"
  "CMakeFiles/memphis_compiler.dir/compiler/placement.cc.o.d"
  "CMakeFiles/memphis_compiler.dir/compiler/program.cc.o"
  "CMakeFiles/memphis_compiler.dir/compiler/program.cc.o.d"
  "CMakeFiles/memphis_compiler.dir/compiler/rewrites.cc.o"
  "CMakeFiles/memphis_compiler.dir/compiler/rewrites.cc.o.d"
  "libmemphis_compiler.a"
  "libmemphis_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
