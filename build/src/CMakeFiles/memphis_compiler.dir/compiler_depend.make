# Empty compiler generated dependencies file for memphis_compiler.
# This may be replaced when dependencies are built.
