file(REMOVE_RECURSE
  "CMakeFiles/memphis_lineage.dir/lineage/lineage_item.cc.o"
  "CMakeFiles/memphis_lineage.dir/lineage/lineage_item.cc.o.d"
  "CMakeFiles/memphis_lineage.dir/lineage/lineage_map.cc.o"
  "CMakeFiles/memphis_lineage.dir/lineage/lineage_map.cc.o.d"
  "CMakeFiles/memphis_lineage.dir/lineage/lineage_query.cc.o"
  "CMakeFiles/memphis_lineage.dir/lineage/lineage_query.cc.o.d"
  "CMakeFiles/memphis_lineage.dir/lineage/lineage_serde.cc.o"
  "CMakeFiles/memphis_lineage.dir/lineage/lineage_serde.cc.o.d"
  "libmemphis_lineage.a"
  "libmemphis_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memphis_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
