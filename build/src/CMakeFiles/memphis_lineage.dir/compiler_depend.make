# Empty compiler generated dependencies file for memphis_lineage.
# This may be replaced when dependencies are built.
