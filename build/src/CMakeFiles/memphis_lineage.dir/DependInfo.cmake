
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lineage/lineage_item.cc" "src/CMakeFiles/memphis_lineage.dir/lineage/lineage_item.cc.o" "gcc" "src/CMakeFiles/memphis_lineage.dir/lineage/lineage_item.cc.o.d"
  "/root/repo/src/lineage/lineage_map.cc" "src/CMakeFiles/memphis_lineage.dir/lineage/lineage_map.cc.o" "gcc" "src/CMakeFiles/memphis_lineage.dir/lineage/lineage_map.cc.o.d"
  "/root/repo/src/lineage/lineage_query.cc" "src/CMakeFiles/memphis_lineage.dir/lineage/lineage_query.cc.o" "gcc" "src/CMakeFiles/memphis_lineage.dir/lineage/lineage_query.cc.o.d"
  "/root/repo/src/lineage/lineage_serde.cc" "src/CMakeFiles/memphis_lineage.dir/lineage/lineage_serde.cc.o" "gcc" "src/CMakeFiles/memphis_lineage.dir/lineage/lineage_serde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/memphis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
