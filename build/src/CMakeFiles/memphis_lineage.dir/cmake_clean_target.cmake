file(REMOVE_RECURSE
  "libmemphis_lineage.a"
)
