# Empty dependencies file for bench_fig12a_cache_sizes.
# This may be replaced when dependencies are built.
