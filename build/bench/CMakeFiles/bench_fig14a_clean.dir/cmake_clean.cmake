file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14a_clean.dir/bench_fig14a_clean.cc.o"
  "CMakeFiles/bench_fig14a_clean.dir/bench_fig14a_clean.cc.o.d"
  "bench_fig14a_clean"
  "bench_fig14a_clean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14a_clean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
