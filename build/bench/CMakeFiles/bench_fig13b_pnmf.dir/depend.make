# Empty dependencies file for bench_fig13b_pnmf.
# This may be replaced when dependencies are built.
