file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13b_pnmf.dir/bench_fig13b_pnmf.cc.o"
  "CMakeFiles/bench_fig13b_pnmf.dir/bench_fig13b_pnmf.cc.o.d"
  "bench_fig13b_pnmf"
  "bench_fig13b_pnmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13b_pnmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
