file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14d_tlvis.dir/bench_fig14d_tlvis.cc.o"
  "CMakeFiles/bench_fig14d_tlvis.dir/bench_fig14d_tlvis.cc.o.d"
  "bench_fig14d_tlvis"
  "bench_fig14d_tlvis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14d_tlvis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
