# Empty compiler generated dependencies file for bench_fig14d_tlvis.
# This may be replaced when dependencies are built.
