file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14c_en2de.dir/bench_fig14c_en2de.cc.o"
  "CMakeFiles/bench_fig14c_en2de.dir/bench_fig14c_en2de.cc.o.d"
  "bench_fig14c_en2de"
  "bench_fig14c_en2de.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14c_en2de.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
