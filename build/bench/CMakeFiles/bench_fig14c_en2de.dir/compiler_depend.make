# Empty compiler generated dependencies file for bench_fig14c_en2de.
# This may be replaced when dependencies are built.
