file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2d_gpu_overhead.dir/bench_fig2d_gpu_overhead.cc.o"
  "CMakeFiles/bench_fig2d_gpu_overhead.dir/bench_fig2d_gpu_overhead.cc.o.d"
  "bench_fig2d_gpu_overhead"
  "bench_fig2d_gpu_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2d_gpu_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
