# Empty dependencies file for bench_fig2d_gpu_overhead.
# This may be replaced when dependencies are built.
