file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_backends.dir/bench_table2_backends.cc.o"
  "CMakeFiles/bench_table2_backends.dir/bench_table2_backends.cc.o.d"
  "bench_table2_backends"
  "bench_table2_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
