# Empty dependencies file for bench_table2_backends.
# This may be replaced when dependencies are built.
