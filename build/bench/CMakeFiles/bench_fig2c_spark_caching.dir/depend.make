# Empty dependencies file for bench_fig2c_spark_caching.
# This may be replaced when dependencies are built.
