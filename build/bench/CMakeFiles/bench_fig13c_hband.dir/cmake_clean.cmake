file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13c_hband.dir/bench_fig13c_hband.cc.o"
  "CMakeFiles/bench_fig13c_hband.dir/bench_fig13c_hband.cc.o.d"
  "bench_fig13c_hband"
  "bench_fig13c_hband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13c_hband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
