# Empty dependencies file for bench_fig13c_hband.
# This may be replaced when dependencies are built.
