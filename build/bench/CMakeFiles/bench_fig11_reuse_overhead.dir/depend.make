# Empty dependencies file for bench_fig11_reuse_overhead.
# This may be replaced when dependencies are built.
