# Empty dependencies file for bench_fig13a_hcv.
# This may be replaced when dependencies are built.
