file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13a_hcv.dir/bench_fig13a_hcv.cc.o"
  "CMakeFiles/bench_fig13a_hcv.dir/bench_fig13a_hcv.cc.o.d"
  "bench_fig13a_hcv"
  "bench_fig13a_hcv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13a_hcv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
