file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14b_hdrop.dir/bench_fig14b_hdrop.cc.o"
  "CMakeFiles/bench_fig14b_hdrop.dir/bench_fig14b_hdrop.cc.o.d"
  "bench_fig14b_hdrop"
  "bench_fig14b_hdrop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14b_hdrop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
