# Empty dependencies file for bench_fig12b_gpu_eviction.
# This may be replaced when dependencies are built.
