file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12b_gpu_eviction.dir/bench_fig12b_gpu_eviction.cc.o"
  "CMakeFiles/bench_fig12b_gpu_eviction.dir/bench_fig12b_gpu_eviction.cc.o.d"
  "bench_fig12b_gpu_eviction"
  "bench_fig12b_gpu_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12b_gpu_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
