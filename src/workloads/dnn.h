#ifndef MEMPHIS_WORKLOADS_DNN_H_
#define MEMPHIS_WORKLOADS_DNN_H_

#include <string>
#include <vector>

#include "core/system.h"
#include "matrix/nn_kernels.h"

namespace memphis::workloads {

using compiler::BasicBlock;
using BasicBlockPtr = std::shared_ptr<BasicBlock>;

/// One layer of a (scaled-down) CNN configuration.
struct CnnLayer {
  enum class Kind { kConv, kRelu, kPool, kFc, kSoftmax, kResidual };
  Kind kind = Kind::kRelu;
  size_t filters = 0;   // conv / residual: output channels.
  size_t kernel = 3;    // conv kernel size (square).
  size_t pad = 1;
  size_t stride = 1;
  size_t pool = 2;      // pool window.
  size_t out = 0;       // fc output features.
};

/// A named CNN: the three pre-trained models of TLVIS (Section 6.3) are
/// provided as dimension-scaled configurations with the papers' distinctive
/// allocation patterns (AlexNet: large early kernels; VGG16: many uniform
/// 3x3 convs; ResNet18: residual blocks).
struct CnnModel {
  std::string name;
  kernels::TensorShape input;
  std::vector<CnnLayer> layers;
};

CnnModel AlexNetLike(const kernels::TensorShape& input, size_t classes);
CnnModel Vgg16Like(const kernels::TensorShape& input, size_t classes);
CnnModel ResNet18Like(const kernels::TensorShape& input, size_t classes);

/// Two small CNNs with distinct allocation patterns for the GPU-eviction
/// micro benchmark (Figure 12(b)).
CnnModel SmallCnnA(const kernels::TensorShape& input, size_t classes);
CnnModel SmallCnnB(const kernels::TensorShape& input, size_t classes);

/// Generates and binds the model's pre-trained weights as host variables
/// "<prefix>.w<i>"; the executor uploads (and reuses) them on the device.
void BindCnnWeights(ExecutionContext& ctx, const CnnModel& model,
                    const std::string& prefix, uint64_t seed);

/// Builds the forward pass reading "<in_var>" up to layer `up_to` (exclusive
/// end; negative = all layers), writing "<out_var>". All tensor ops are
/// forced onto the GPU when `force_gpu`.
BasicBlockPtr BuildCnnForward(const CnnModel& model, const std::string& prefix,
                              const std::string& in_var,
                              const std::string& out_var, int up_to,
                              bool force_gpu);

/// Indices (into model.layers) after which TLVIS extracts features.
std::vector<int> TransferExtractionPoints(const CnnModel& model);

/// Autoencoder configuration for HDROP: 500-2-500 with a dropout layer.
struct Autoencoder {
  size_t input_dim = 0;
  size_t hidden = 500;
  size_t code = 2;
};

/// Binds AE weights "ae.w1..ae.w4".
void BindAutoencoderWeights(ExecutionContext& ctx, const Autoencoder& ae,
                            uint64_t seed);

/// One training step (forward + backward + SGD update) on variable "batch"
/// with the given dropout keep probability and mask seed. Weight variables
/// are read and re-written, so the step is loop-dependent by construction.
BasicBlockPtr BuildAutoencoderStep(const Autoencoder& ae, double keep_prob,
                                   uint64_t mask_seed, bool force_gpu);

/// EN2DE scorer: 4 fully-connected ReLU layers + softmax over the German
/// vocabulary; reads "emb" (1 x dims), writes "scores".
BasicBlockPtr BuildTranslationScorer(size_t dims, size_t vocab_out,
                                     const std::string& prefix,
                                     bool force_gpu);
void BindTranslationWeights(ExecutionContext& ctx, size_t dims,
                            size_t vocab_out, const std::string& prefix,
                            uint64_t seed);

}  // namespace memphis::workloads

#endif  // MEMPHIS_WORKLOADS_DNN_H_
