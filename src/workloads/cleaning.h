#ifndef MEMPHIS_WORKLOADS_CLEANING_H_
#define MEMPHIS_WORKLOADS_CLEANING_H_

#include <string>
#include <vector>

#include "core/system.h"

namespace memphis::workloads {

using compiler::BasicBlock;
using BasicBlockPtr = std::shared_ptr<BasicBlock>;

/// Data-cleaning primitives (Section 6.3, CLEAN). The order within a
/// pipeline is data-dependent (imputation and outlier removal precede
/// normalization), mirroring the auto-generated pipelines of [114].
enum class CleanPrim {
  kImputeMean,
  kImputeMode,
  kOutlierIQR,
  kScale,
  kMinMax,
  kUnderSample,
  kPca,
};

const char* ToString(CleanPrim primitive);

/// The 12 enumerated cleaning pipelines of the CLEAN workload; pipelines
/// share prefixes, which is where the repeated-primitive reuse comes from.
std::vector<std::vector<CleanPrim>> EnumerateCleanPipelines();

/// Builds one pipeline as a basic block reading "Xdirty" / "ylabels" and
/// writing "Xclean" (and "yclean" when undersampling changes the rows).
BasicBlockPtr BuildCleaningBlock(const std::vector<CleanPrim>& pipeline,
                                 size_t pca_components, uint64_t sample_seed);

}  // namespace memphis::workloads

#endif  // MEMPHIS_WORKLOADS_CLEANING_H_
