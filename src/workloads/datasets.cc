#include "workloads/datasets.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/status.h"
#include "matrix/kernels.h"

namespace memphis::workloads {

size_t ScaleDim(size_t paper_dim) {
  return std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(paper_dim) * kDimScale));
}

double NominalGb(size_t paper_rows, size_t paper_cols) {
  return static_cast<double>(paper_rows) * static_cast<double>(paper_cols) *
         8.0 / (1024.0 * 1024.0 * 1024.0);
}

LabeledData SyntheticRegression(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  auto x = std::make_shared<MatrixBlock>(rows, cols, 0.0);
  for (size_t i = 0; i < rows * cols; ++i) x->data()[i] = rng.NextGaussian();
  // y = X w* + noise for a fixed ground-truth model.
  std::vector<double> w(cols);
  for (size_t c = 0; c < cols; ++c) w[c] = rng.NextGaussian();
  auto y = std::make_shared<MatrixBlock>(rows, 1, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols; ++c) acc += x->At(r, c) * w[c];
    y->At(r, 0) = acc + 0.1 * rng.NextGaussian();
  }
  return {std::move(x), std::move(y)};
}

LabeledData SyntheticClassification(size_t rows, size_t cols, uint64_t seed) {
  LabeledData data = SyntheticRegression(rows, cols, seed);
  auto labels = std::make_shared<MatrixBlock>(rows, 1, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    labels->At(r, 0) = data.y->At(r, 0) >= 0.0 ? 1.0 : -1.0;
  }
  data.y = std::move(labels);
  return data;
}

MatrixPtr MovieLensLike(size_t rows, size_t cols, double sparsity,
                        uint64_t seed) {
  Rng rng(seed);
  auto x = std::make_shared<MatrixBlock>(rows, cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng.NextDouble() < sparsity) {
        x->At(r, c) = 1.0 + std::floor(rng.NextDouble() * 5.0);
      }
    }
  }
  return x;
}

LabeledData ApsLike(size_t rows, size_t cols, double missing_rate,
                    uint64_t seed) {
  Rng rng(seed);
  auto x = std::make_shared<MatrixBlock>(rows, cols, 0.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t c = 0; c < cols; ++c) {
    const double scale = std::exp(rng.NextDouble(0.0, 6.0));
    const bool constant = c % 41 == 0;  // A few degenerate sensor channels.
    for (size_t r = 0; r < rows; ++r) {
      if (rng.NextDouble() < missing_rate) {
        x->At(r, c) = nan;
      } else if (constant) {
        x->At(r, c) = scale;
      } else {
        // Heavy-tailed positive readings with occasional outliers.
        double v = scale * std::fabs(rng.NextGaussian());
        if (rng.NextDouble() < 0.01) v *= 50.0;
        x->At(r, c) = v;
      }
    }
  }
  // Imbalanced failure label (~1.7% positives, like APS).
  auto y = std::make_shared<MatrixBlock>(rows, 1, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    y->At(r, 0) = rng.NextDouble() < 0.017 ? 1.0 : 0.0;
  }
  return {std::move(x), std::move(y)};
}

LabeledData Kdd98Like(size_t rows, size_t numeric, size_t categorical,
                      uint64_t seed) {
  Rng rng(seed);
  const size_t cols = numeric + categorical;
  auto x = std::make_shared<MatrixBlock>(rows, cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < numeric; ++c) {
      x->At(r, c) = std::exp(rng.NextGaussian());  // Skewed donations-like.
    }
    for (size_t c = numeric; c < cols; ++c) {
      const size_t cardinality = 3 + (c % 13);
      x->At(r, c) = static_cast<double>(1 + rng.NextInt(cardinality));
    }
  }
  auto y = std::make_shared<MatrixBlock>(rows, 1, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    y->At(r, 0) = std::max(0.0, rng.NextGaussian() * 10.0 + 5.0);
  }
  return {std::move(x), std::move(y)};
}

std::vector<int> Wmt14WordStream(size_t length, size_t vocab, uint64_t seed) {
  MEMPHIS_CHECK(vocab > 0);
  Rng rng(seed);
  // Zipf-like sampling via the inverse-power transform: word k has
  // probability ~ 1/(k+1)^s, giving the heavy duplicate rate that makes
  // prediction caching effective (Section 6.3, EN2DE).
  const double s = 1.1;
  std::vector<double> cdf(vocab);
  double total = 0.0;
  for (size_t k = 0; k < vocab; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = total;
  }
  std::vector<int> stream(length);
  for (size_t i = 0; i < length; ++i) {
    const double u = rng.NextDouble() * total;
    stream[i] = static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }
  return stream;
}

MatrixPtr WordEmbeddings(size_t vocab, size_t dims, uint64_t seed) {
  return kernels::RandGaussian(vocab, dims, seed);
}

MatrixPtr ImagesLike(size_t n, const kernels::TensorShape& shape,
                     double duplicate_fraction, uint64_t seed) {
  Rng rng(seed);
  const size_t cols = shape.Size();
  auto x = std::make_shared<MatrixBlock>(n, cols, 0.0);
  for (size_t r = 0; r < n; ++r) {
    if (r > 0 && rng.NextDouble() < duplicate_fraction) {
      const size_t src = rng.NextInt(r);
      for (size_t c = 0; c < cols; ++c) x->At(r, c) = x->At(src, c);
    } else {
      for (size_t c = 0; c < cols; ++c) {
        x->At(r, c) = rng.NextDouble();  // Normalized pixel intensities.
      }
    }
  }
  return x;
}

}  // namespace memphis::workloads
