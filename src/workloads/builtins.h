#ifndef MEMPHIS_WORKLOADS_BUILTINS_H_
#define MEMPHIS_WORKLOADS_BUILTINS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/system.h"

namespace memphis::workloads {

using compiler::BasicBlock;
using BasicBlockPtr = std::shared_ptr<BasicBlock>;

/// Direct-solve linear regression (Example 4.1):
///   A = t(X)%*%X + diag(reg); b = t(t(y)%*%X); beta = solve(A, b)
/// Reads "X" (rows x cols), "y" (rows x 1), "reg" (scalar); writes "beta".
/// The core products t(X)%*%X and t(y)%*%X are reg-independent and hence
/// reusable across calls.
class LinRegDS {
 public:
  explicit LinRegDS(size_t cols);

  /// Runs one call as a (deterministic) function for multi-level reuse.
  void Run(MemphisSystem& system, const std::string& x_var,
           const std::string& y_var, double reg, const std::string& out_var);

  BasicBlock& block() { return *block_; }

 private:
  BasicBlockPtr block_;
};

/// L2-regularized SVM-style linear model trained by batch gradient descent
/// (the "core logic of L2SVM" of the micro benchmarks, Section 6.2).
/// Reads "X", "y", "reg", "w"; writes the updated "w" per iteration.
class L2Svm {
 public:
  L2Svm();

  /// Trains for `iterations`; leaves the model in variable `w_var`.
  void Train(MemphisSystem& system, const std::string& x_var,
             const std::string& y_var, double reg, int iterations,
             const std::string& w_var, uint64_t init_seed = 42);

  BasicBlock& iteration_block() { return *iter_block_; }

 private:
  BasicBlockPtr init_block_;
  BasicBlockPtr iter_block_;
};

/// Multinomial logistic regression via softmax gradient descent (MLRG of
/// HBAND). Trains W (cols x classes) in `w_var`.
class MultiLogReg {
 public:
  explicit MultiLogReg(size_t classes);

  void Train(MemphisSystem& system, const std::string& x_var,
             const std::string& y_onehot_var, double reg, int iterations,
             const std::string& w_var, uint64_t init_seed = 43);

 private:
  size_t classes_;
  BasicBlockPtr init_block_;
  BasicBlockPtr iter_block_;
};

/// Poisson non-negative matrix factorization with multiplicative updates
/// (Figure 9(c)): X ~ W H with W distributed and H local.
class Pnmf {
 public:
  Pnmf(size_t rank);

  /// Factorizes the matrix bound to `x_var` for `iterations`; leaves the
  /// factors in "W" and "H". Returns the final reconstruction residual.
  double Run(MemphisSystem& system, const std::string& x_var, int iterations,
             uint64_t seed = 7);

 private:
  size_t rank_;
  BasicBlockPtr init_block_;
  BasicBlockPtr iter_block_;  // One iteration: H update then W update.
};

/// R^2 score block: reads "pred" and "ytest", writes scalar "r2".
BasicBlockPtr MakeR2Block();

/// Prediction block: pred = Xtest %*% beta; reads "Xtest", "beta".
BasicBlockPtr MakePredictBlock();

}  // namespace memphis::workloads

#endif  // MEMPHIS_WORKLOADS_BUILTINS_H_
