#include "workloads/builtins.h"

#include "common/status.h"
#include "matrix/kernels.h"

namespace memphis::workloads {

namespace {
using compiler::HopDag;
using compiler::HopPtr;
}  // namespace

// --- LinRegDS -------------------------------------------------------------------

LinRegDS::LinRegDS(size_t cols) {
  block_ = compiler::MakeBasicBlock();
  HopDag& dag = block_->dag();
  HopPtr x = dag.Read("X");
  HopPtr y = dag.Read("y");
  HopPtr reg = dag.Read("reg");

  // A = t(X)%*%X + diag(reg * ones(cols)); the tsmm rewrite fuses the
  // transpose-multiply into a shuffle-based single-block aggregate.
  HopPtr xt = dag.Op("transpose", {x});
  HopPtr mm = dag.Op("matmult", {xt, x});
  HopPtr ones = dag.Op("rand", {},
                       {static_cast<double>(cols), 1, 1, 1, 1, /*seed=*/11});
  HopPtr lam_vec = dag.Op("*", {ones, reg});
  HopPtr lam_diag = dag.Op("diag", {lam_vec});
  HopPtr a = dag.Op("+", {mm, lam_diag});

  // b = t(t(y)%*%X): the broadcast-based multiply of Figure 2(b).
  HopPtr yt = dag.Op("transpose", {y});
  HopPtr ytx = dag.Op("matmult", {yt, x});
  HopPtr b = dag.Op("transpose", {ytx});

  HopPtr beta = dag.Op("solve", {a, b});
  dag.Write("beta", beta);
}

void LinRegDS::Run(MemphisSystem& system, const std::string& x_var,
                   const std::string& y_var, double reg,
                   const std::string& out_var) {
  ExecutionContext& ctx = system.ctx();
  // Rebind the block's formal parameters to the caller's variables.
  ctx.SetVar("X", ctx.GetVar(x_var));
  ctx.lineage().Set("X", ctx.lineage().Get(x_var));
  ctx.SetVar("y", ctx.GetVar(y_var));
  ctx.lineage().Set("y", ctx.lineage().Get(y_var));
  ctx.BindScalar("reg", reg);

  system.CallFunction("linRegDS", {"X", "y", "reg"}, {"beta"},
                      [&] { system.Run(*block_); });
  if (out_var != "beta") {
    ctx.SetVar(out_var, ctx.GetVar("beta"));
    ctx.lineage().Set(out_var, ctx.lineage().Get("beta"));
  }
}

// --- L2SVM ----------------------------------------------------------------------

L2Svm::L2Svm() {
  // The initialization block depends on the input's column count and is
  // built per Train() call; only the iteration block is shared.
  iter_block_ = compiler::MakeBasicBlock();
  {
    HopDag& dag = iter_block_->dag();
    HopPtr x = dag.Read("X");
    HopPtr y = dag.Read("y");
    HopPtr w = dag.Read("w");
    HopPtr reg = dag.Read("reg");
    HopPtr step = dag.Read("step");
    HopPtr pred = dag.Op("matmult", {x, w});
    HopPtr hinge = dag.Op("max", {dag.Op("-", {dag.Literal(1.0),
                                               dag.Op("*", {pred, y})}),
                                  dag.Literal(0.0)});
    HopPtr mask = dag.Op(">", {hinge, dag.Literal(0.0)});
    HopPtr err = dag.Op("*", {dag.Op("neg", {y}), mask});
    // grad = t(X)%*%err + reg*w, computed as the broadcast pattern
    // t(t(err)%*%X) so Spark can zip partials (tsmm2 rewrite).
    HopPtr xt = dag.Op("transpose", {x});
    HopPtr xe = dag.Op("matmult", {xt, err});
    HopPtr grad = dag.Op("+", {xe, dag.Op("*", {w, reg})});
    HopPtr w_new = dag.Op("-", {w, dag.Op("*", {grad, step})});
    dag.Write("w", w_new);
  }
}

void L2Svm::Train(MemphisSystem& system, const std::string& x_var,
                  const std::string& y_var, double reg, int iterations,
                  const std::string& w_var, uint64_t init_seed) {
  ExecutionContext& ctx = system.ctx();
  ctx.SetVar("X", ctx.GetVar(x_var));
  ctx.lineage().Set("X", ctx.lineage().Get(x_var));
  ctx.SetVar("y", ctx.GetVar(y_var));
  ctx.lineage().Set("y", ctx.lineage().Get(y_var));
  ctx.BindScalar("reg", reg);
  ctx.BindScalar("step", 1e-4);
  ctx.BindScalar("iters", iterations);

  system.CallFunction(
      "l2svm", {"X", "y", "reg", "iters"}, {"w"}, [&] {
        // Deterministic zero-ish init (seeded, so reusable).
        const size_t cols = ctx.GetVar("X").kind == Data::Kind::kRdd
                                ? ctx.GetVar("X").rdd->cols()
                                : ctx.GetVar("X").matrix->cols();
        auto init_dag = compiler::MakeBasicBlock();
        HopPtr w = init_dag->dag().Op(
            "rand", {},
            {static_cast<double>(cols), 1, -1e-3, 1e-3, 1,
             static_cast<double>(init_seed)});
        init_dag->dag().Write("w", w);
        system.Run(*init_dag);
        // Run the loop as a program block so the compiler's loop rewrites
        // (checkpoint placement for the updated w, parameter tuning) apply.
        compiler::Program program;
        std::vector<double> values;
        for (int i = 1; i <= iterations; ++i) values.push_back(i);
        auto loop = compiler::MakeForBlock("svm_i", std::move(values));
        loop->body = {iter_block_};
        program.blocks.push_back(loop);
        system.Run(program);
      });
  if (w_var != "w") {
    ctx.SetVar(w_var, ctx.GetVar("w"));
    ctx.lineage().Set(w_var, ctx.lineage().Get("w"));
  }
}

// --- Multinomial logistic regression -----------------------------------------------

MultiLogReg::MultiLogReg(size_t classes) : classes_(classes) {
  iter_block_ = compiler::MakeBasicBlock();
  HopDag& dag = iter_block_->dag();
  HopPtr x = dag.Read("X");
  HopPtr y = dag.Read("Yonehot");
  HopPtr w = dag.Read("Wml");
  HopPtr reg = dag.Read("reg");
  HopPtr step = dag.Read("step");
  HopPtr scores = dag.Op("matmult", {x, w});
  HopPtr probs = dag.Op("softmax", {scores});
  HopPtr err = dag.Op("-", {probs, y});
  HopPtr xt = dag.Op("transpose", {x});
  HopPtr grad = dag.Op("+", {dag.Op("matmult", {xt, err}),
                             dag.Op("*", {w, reg})});
  HopPtr w_new = dag.Op("-", {w, dag.Op("*", {grad, step})});
  dag.Write("Wml", w_new);
}

void MultiLogReg::Train(MemphisSystem& system, const std::string& x_var,
                        const std::string& y_onehot_var, double reg,
                        int iterations, const std::string& w_var,
                        uint64_t init_seed) {
  ExecutionContext& ctx = system.ctx();
  ctx.SetVar("X", ctx.GetVar(x_var));
  ctx.lineage().Set("X", ctx.lineage().Get(x_var));
  ctx.SetVar("Yonehot", ctx.GetVar(y_onehot_var));
  ctx.lineage().Set("Yonehot", ctx.lineage().Get(y_onehot_var));
  ctx.BindScalar("reg", reg);
  ctx.BindScalar("step", 1e-4);
  ctx.BindScalar("iters", iterations);

  system.CallFunction(
      "mlogreg", {"X", "Yonehot", "reg", "iters"}, {"Wml"}, [&] {
        const size_t cols = ctx.GetVar("X").kind == Data::Kind::kRdd
                                ? ctx.GetVar("X").rdd->cols()
                                : ctx.GetVar("X").matrix->cols();
        auto init = compiler::MakeBasicBlock();
        HopPtr w = init->dag().Op(
            "rand", {},
            {static_cast<double>(cols), static_cast<double>(classes_), -1e-3,
             1e-3, 1, static_cast<double>(init_seed)});
        init->dag().Write("Wml", w);
        system.Run(*init);
        compiler::Program program;
        std::vector<double> values;
        for (int i = 1; i <= iterations; ++i) values.push_back(i);
        auto loop = compiler::MakeForBlock("mlr_i", std::move(values));
        loop->body = {iter_block_};
        program.blocks.push_back(loop);
        system.Run(program);
      });
  if (w_var != "Wml") {
    ctx.SetVar(w_var, ctx.GetVar("Wml"));
    ctx.lineage().Set(w_var, ctx.lineage().Get("Wml"));
  }
}

// --- PNMF ------------------------------------------------------------------------

Pnmf::Pnmf(size_t rank) : rank_(rank) {
  iter_block_ = compiler::MakeBasicBlock();
  HopDag& dag = iter_block_->dag();
  HopPtr x = dag.Read("Xp");
  HopPtr w = dag.Read("W");
  HopPtr h = dag.Read("H");
  HopPtr eps = dag.Literal(1e-8);

  // Q = X / (W %*% H + eps): the elementwise quotient of the Poisson
  // multiplicative updates.
  HopPtr wh = dag.Op("matmult", {w, h});
  HopPtr q = dag.Op("/", {x, dag.Op("+", {wh, eps})});

  // H update: H = H * (t(W) %*% Q) / (colSums(W)^T + eps).
  HopPtr wt = dag.Op("transpose", {w});
  HopPtr wtq = dag.Op("matmult", {wt, q});  // tsmm2: zip partials on Spark.
  HopPtr w_colsums = dag.Op("colSums", {w});
  HopPtr denom_h = dag.Op("+", {dag.Op("transpose", {w_colsums}), eps});
  HopPtr h_new = dag.Op("/", {dag.Op("*", {h, wtq}), denom_h});
  dag.Write("H", h_new);

  // W update (uses the *old* H as in alternating updates of one sweep):
  // W = W * (Q %*% t(H)) / (rowSums(H)^T + eps).
  HopPtr ht = dag.Op("transpose", {h});
  HopPtr qht = dag.Op("matmult", {q, ht});  // mapmm: broadcast t(H).
  HopPtr h_rowsums = dag.Op("rowSums", {h});
  HopPtr denom_w = dag.Op("+", {dag.Op("transpose", {h_rowsums}), eps});
  HopPtr w_new = dag.Op("/", {dag.Op("*", {w, qht}), denom_w});
  dag.Write("W", w_new);
}

double Pnmf::Run(MemphisSystem& system, const std::string& x_var,
                 int iterations, uint64_t seed) {
  ExecutionContext& ctx = system.ctx();
  ctx.SetVar("Xp", ctx.GetVar(x_var));
  ctx.lineage().Set("Xp", ctx.lineage().Get(x_var));
  const Data& x = ctx.GetVar("Xp");
  const size_t rows =
      x.kind == Data::Kind::kRdd ? x.rdd->rows() : x.matrix->rows();
  const size_t cols =
      x.kind == Data::Kind::kRdd ? x.rdd->cols() : x.matrix->cols();

  // Factor initialization (deterministic).
  auto init = compiler::MakeBasicBlock();
  {
    HopDag& dag = init->dag();
    HopPtr w = dag.Op("rand", {},
                      {static_cast<double>(rows), static_cast<double>(rank_),
                       0.01, 1, 1, static_cast<double>(seed)});
    HopPtr h = dag.Op("rand", {},
                      {static_cast<double>(rank_), static_cast<double>(cols),
                       0.01, 1, 1, static_cast<double>(seed + 1)});
    dag.Write("W", w);
    dag.Write("H", h);
  }
  system.Run(*init);

  // The loop program: the checkpoint rewrite detects W/H as loop-updated
  // variables and persists the Spark-resident W each iteration.
  compiler::Program program;
  std::vector<double> iteration_values;
  for (int i = 1; i <= iterations; ++i) {
    iteration_values.push_back(static_cast<double>(i));
  }
  auto loop = compiler::MakeForBlock("pnmf_i", std::move(iteration_values));
  loop->body.push_back(iter_block_);
  program.blocks.push_back(loop);
  system.Run(program);

  // Residual: mean |X - WH| over a collected sample (diagnostic only).
  auto residual = compiler::MakeBasicBlock();
  {
    HopDag& dag = residual->dag();
    HopPtr x_in = dag.Read("Xp");
    HopPtr w = dag.Read("W");
    HopPtr h = dag.Read("H");
    HopPtr err = dag.Op("abs", {dag.Op("-", {x_in, dag.Op("matmult", {w, h})})});
    dag.Write("residual", dag.Op("mean", {err}));
  }
  system.Run(*residual);
  return ctx.FetchScalar("residual");
}

// --- scoring helpers -----------------------------------------------------------------

BasicBlockPtr MakePredictBlock() {
  auto block = compiler::MakeBasicBlock();
  HopDag& dag = block->dag();
  HopPtr x = dag.Read("Xtest");
  HopPtr beta = dag.Read("beta");
  dag.Write("pred", dag.Op("matmult", {x, beta}));
  return block;
}

BasicBlockPtr MakeR2Block() {
  auto block = compiler::MakeBasicBlock();
  HopDag& dag = block->dag();
  HopPtr pred = dag.Read("pred");
  HopPtr y = dag.Read("ytest");
  HopPtr err = dag.Op("-", {y, pred});
  HopPtr ss_res = dag.Op("sum", {dag.Op("*", {err, err})});
  HopPtr centered = dag.Op("-", {y, dag.Op("mean", {y})});
  HopPtr ss_tot = dag.Op("sum", {dag.Op("*", {centered, centered})});
  HopPtr r2 = dag.Op("-", {dag.Literal(1.0), dag.Op("/", {ss_res, ss_tot})});
  dag.Write("r2", r2);
  return block;
}

}  // namespace memphis::workloads
