#ifndef MEMPHIS_WORKLOADS_PIPELINES_H_
#define MEMPHIS_WORKLOADS_PIPELINES_H_

#include <string>
#include <vector>

#include "core/system.h"

namespace memphis::workloads {

/// Outcome of one end-to-end pipeline run.
struct RunResult {
  std::string label;
  double seconds = 0.0;      // Simulated (virtual) execution time.
  std::string stats;         // Component stats report.
  double quality = 0.0;      // Workload-specific quality metric (R^2, ...).
};

/// Baseline configurations of Section 6.1, expressed as config presets of
/// the unified runtime.
enum class Baseline {
  kBase,        // SystemDS without reuse, no async operators.
  kBaseAsync,   // Base-A: Base + asynchronous operators (HCV).
  kBasePar,     // Base-P: Base + parallel feature processing (CLEAN).
  kLima,        // Eager local-only fine-grained reuse.
  kHelix,       // Coarse-grained (function-level) reuse only.
  kCoorDl,      // Input-data-pipeline reuse on CPU only (HDROP).
  kClipper,     // Prediction caching at the host (EN2DE).
  kVista,       // Script-level CSE across transfer-learning pipelines.
  kPyTorch,     // Eager tensors + caching allocator + compiled kernels.
  kPyTorchClr,  // PyTorch with empty_cache() between models.
  kMemphis,     // Full MEMPHIS.
  kMemphisNoAsync,  // MPH-NA: MEMPHIS without asynchronous operators.
  kMemphisFineOnly, // MPH-F: MEMPHIS without multi-level reuse (EN2DE).
  kMemphisNoFusion, // MPH-NF: MEMPHIS without operator fusion (bench axis).
};

const char* ToString(Baseline baseline);

/// Config preset for a baseline (memory budgets at the paper's defaults).
SystemConfig MakeConfig(Baseline baseline);

/// Cost-model preset (PyTorch's compiled kernels / Base-P's parallel
/// feature processing are modeled as rate changes).
sim::CostModel MakeCostModel(Baseline baseline);

// --- end-to-end pipelines (Table 3) -------------------------------------------

/// HCV: grid-search + cross-validated linear regression (Figure 13(a)).
RunResult RunHcv(Baseline baseline, size_t paper_rows, size_t paper_cols,
                 int folds, int num_regs, uint64_t seed = 1);

/// PNMF: Poisson non-negative matrix factorization (Figure 13(b)).
RunResult RunPnmf(Baseline baseline, size_t rows, size_t cols, size_t rank,
                  int iterations, uint64_t seed = 2);

/// HBAND: successive-halving model search + weighted ensemble (Fig. 13(c)).
RunResult RunHband(Baseline baseline, size_t paper_rows, size_t paper_cols,
                   int start_configs, int brackets, uint64_t seed = 3);

/// CLEAN: enumeration of data-cleaning pipelines (Figure 14(a)).
RunResult RunClean(Baseline baseline, int scale_factor, uint64_t seed = 4);

/// HDROP: dropout-rate tuning of an autoencoder (Figure 14(b)).
RunResult RunHdrop(Baseline baseline, int epochs,
                   const std::vector<double>& dropout_rates,
                   uint64_t seed = 5);

/// EN2DE: pre-trained translation scoring (Figure 14(c)).
RunResult RunEn2de(Baseline baseline, size_t words, uint64_t seed = 6);

/// TLVIS: transfer-learning feature extraction (Figure 14(d)).
RunResult RunTlvis(Baseline baseline, size_t images, bool imagenet,
                   uint64_t seed = 7);

// --- micro benchmarks (Section 6.2) ----------------------------------------------

/// Fig. 11 micro: L2SVM core with controllable input size, outer configs,
/// and fraction of repeated hyper-parameters (reusable instructions).
/// `cache_mb`: driver lineage-cache size override in MB (0 = default).
RunResult RunL2svmMicro(Baseline baseline, size_t input_bytes, int configs,
                        int iterations, double reuse_frac, double cache_mb = 0,
                        uint64_t seed = 8);

/// Fig. 12(b) micro: ensemble CNN scoring with duplicate mini-batches.
RunResult RunGpuEnsemble(Baseline baseline, size_t images, int batch_size,
                         double duplicate_frac, uint64_t seed = 9);

/// Fig. 2(c) micro: lazy vs eager RDD caching. `eager` persists and
/// materializes after every transformation.
RunResult RunSparkCachingMicro(Baseline baseline, bool eager, int chains,
                               int chain_length, double reuse_frac,
                               uint64_t seed = 10);

}  // namespace memphis::workloads

#endif  // MEMPHIS_WORKLOADS_PIPELINES_H_
