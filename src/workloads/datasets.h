#ifndef MEMPHIS_WORKLOADS_DATASETS_H_
#define MEMPHIS_WORKLOADS_DATASETS_H_

#include <cstdint>
#include <vector>

#include "matrix/matrix_block.h"
#include "matrix/nn_kernels.h"

namespace memphis::workloads {

/// All paper-scale datasets are shrunk by 1/32 per dimension (so bytes
/// shrink by ~1/1024, matching SystemConfig::mem_scale): placement and
/// memory-pressure behaviour is preserved while benchmarks stay laptop
/// sized. Reports label configurations with the *nominal* (paper) sizes.
inline constexpr double kDimScale = 1.0 / 32.0;

/// Paper-scale dimension -> working (scaled) dimension, floored at 1.
size_t ScaleDim(size_t paper_dim);

/// Nominal gigabytes of an unscaled rows x cols double matrix.
double NominalGb(size_t paper_rows, size_t paper_cols);

struct LabeledData {
  MatrixPtr X;
  MatrixPtr y;
};

/// Dense synthetic regression data (HCV / HBAND; Table 3 "Synthetic").
LabeledData SyntheticRegression(size_t rows, size_t cols, uint64_t seed);

/// Binary-labeled classification data (L2SVM-style, labels in {-1, +1}).
LabeledData SyntheticClassification(size_t rows, size_t cols, uint64_t seed);

/// MovieLens-shaped sparse non-negative ratings matrix (PNMF):
/// `sparsity` fraction of cells hold ratings in [1, 5].
MatrixPtr MovieLensLike(size_t rows, size_t cols, double sparsity,
                        uint64_t seed);

/// APS-shaped sensor data (CLEAN): heavy-tailed positive features with
/// `missing_rate` NaNs, a few constant columns, and an imbalanced binary
/// label (first column).
LabeledData ApsLike(size_t rows, size_t cols, double missing_rate,
                    uint64_t seed);

/// KDD98-shaped mixed data (HDROP): `numeric` continuous columns followed by
/// `categorical` integer-coded columns, plus a regression target.
LabeledData Kdd98Like(size_t rows, size_t numeric, size_t categorical,
                      uint64_t seed);

/// WMT14-shaped token stream (EN2DE): `length` word ids over `vocab` words
/// with a Zipf-like duplicate distribution (high-frequency words repeat).
std::vector<int> Wmt14WordStream(size_t length, size_t vocab, uint64_t seed);

/// Pre-trained 300-d word embeddings (EN2DE).
MatrixPtr WordEmbeddings(size_t vocab, size_t dims, uint64_t seed);

/// Linearized image batch dataset (TLVIS / Fig. 12(b)): `n` images of
/// `shape`, where a `duplicate_fraction` of images are exact repeats of
/// earlier ones (identified downstream by pixel-encoded ids).
MatrixPtr ImagesLike(size_t n, const kernels::TensorShape& shape,
                     double duplicate_fraction, uint64_t seed);

}  // namespace memphis::workloads

#endif  // MEMPHIS_WORKLOADS_DATASETS_H_
