#include "workloads/dnn.h"

#include "common/status.h"
#include "matrix/kernels.h"

namespace memphis::workloads {

namespace {
using compiler::HopDag;
using compiler::HopPtr;

CnnLayer Conv(size_t filters, size_t kernel, size_t pad, size_t stride = 1) {
  CnnLayer layer;
  layer.kind = CnnLayer::Kind::kConv;
  layer.filters = filters;
  layer.kernel = kernel;
  layer.pad = pad;
  layer.stride = stride;
  return layer;
}
CnnLayer Relu() {
  CnnLayer layer;
  layer.kind = CnnLayer::Kind::kRelu;
  return layer;
}
CnnLayer Pool(size_t window = 2) {
  CnnLayer layer;
  layer.kind = CnnLayer::Kind::kPool;
  layer.pool = window;
  return layer;
}
CnnLayer Fc(size_t out) {
  CnnLayer layer;
  layer.kind = CnnLayer::Kind::kFc;
  layer.out = out;
  return layer;
}
CnnLayer SoftmaxLayer() {
  CnnLayer layer;
  layer.kind = CnnLayer::Kind::kSoftmax;
  return layer;
}
CnnLayer Residual(size_t channels) {
  CnnLayer layer;
  layer.kind = CnnLayer::Kind::kResidual;
  layer.filters = channels;
  return layer;
}

/// Tracks the tensor shape through the layer stack.
struct ShapeCursor {
  kernels::TensorShape shape;
  bool flat = false;
  size_t features = 0;

  size_t Flatten() {
    if (!flat) {
      features = shape.Size();
      flat = true;
    }
    return features;
  }
};

}  // namespace

CnnModel AlexNetLike(const kernels::TensorShape& input, size_t classes) {
  // Scaled-down AlexNet: large first kernel and stride, then 3x3 stacks,
  // two FC layers (Conv4..FC7 are the extraction layers, Section 6.3).
  CnnModel model;
  model.name = "alexnet";
  model.input = input;
  model.layers = {Conv(16, 5, 2, 2), Relu(), Pool(),
                  Conv(32, 3, 1),    Relu(),
                  Conv(48, 3, 1),    Relu(),  // "Conv4"
                  Conv(32, 3, 1),    Relu(), Pool(),
                  Fc(128),           Relu(),  // "FC6"
                  Fc(64),            Relu(),  // "FC7"
                  Fc(classes),       SoftmaxLayer()};
  return model;
}

CnnModel Vgg16Like(const kernels::TensorShape& input, size_t classes) {
  CnnModel model;
  model.name = "vgg16";
  model.input = input;
  model.layers = {Conv(16, 3, 1), Relu(), Conv(16, 3, 1), Relu(), Pool(),
                  Conv(32, 3, 1), Relu(), Conv(32, 3, 1), Relu(), Pool(),
                  Conv(48, 3, 1), Relu(),  // "Conv5"
                  Conv(48, 3, 1), Relu(), Pool(),
                  Fc(160),        Relu(),  // "FC6"
                  Fc(64),         Relu(),  // "FC7"
                  Fc(classes),    SoftmaxLayer()};
  return model;
}

CnnModel ResNet18Like(const kernels::TensorShape& input, size_t classes) {
  CnnModel model;
  model.name = "resnet18";
  model.input = input;
  model.layers = {Conv(16, 3, 1),  Relu(),
                  Residual(16),    Residual(16),
                  Pool(),
                  Residual(16),    Residual(16),  // Last four blocks extract.
                  Fc(64),          Relu(),
                  Fc(classes),     SoftmaxLayer()};
  return model;
}

CnnModel SmallCnnA(const kernels::TensorShape& input, size_t classes) {
  CnnModel model;
  model.name = "cnnA";
  model.input = input;
  // Figure 12(b): two conv2d layers (64, 128 channels in the paper; scaled).
  model.layers = {Conv(8, 3, 1),  Relu(), Pool(),
                  Conv(16, 3, 1), Relu(), Pool(),
                  Fc(64),         Relu(), Fc(classes), SoftmaxLayer()};
  return model;
}

CnnModel SmallCnnB(const kernels::TensorShape& input, size_t classes) {
  CnnModel model;
  model.name = "cnnB";
  model.input = input;
  // Three conv2d layers (64, 192, 256 in the paper; scaled).
  model.layers = {Conv(8, 3, 1),  Relu(), Pool(),
                  Conv(24, 3, 1), Relu(),
                  Conv(32, 3, 1), Relu(), Pool(),
                  Fc(64),         Relu(), Fc(classes), SoftmaxLayer()};
  return model;
}

void BindCnnWeights(ExecutionContext& ctx, const CnnModel& model,
                    const std::string& prefix, uint64_t seed) {
  ShapeCursor cursor{model.input, false, 0};
  int index = 0;
  for (const CnnLayer& layer : model.layers) {
    const std::string name = prefix + ".w" + std::to_string(index);
    switch (layer.kind) {
      case CnnLayer::Kind::kConv: {
        auto w = kernels::RandGaussian(
            layer.filters,
            cursor.shape.channels * layer.kernel * layer.kernel,
            seed + index);
        ctx.BindMatrixWithId(name, w, "weights:" + name);
        const size_t oh =
            (cursor.shape.height + 2 * layer.pad - layer.kernel) /
                layer.stride + 1;
        const size_t ow =
            (cursor.shape.width + 2 * layer.pad - layer.kernel) /
                layer.stride + 1;
        cursor.shape = {layer.filters, oh, ow};
        break;
      }
      case CnnLayer::Kind::kResidual: {
        auto w1 = kernels::RandGaussian(
            layer.filters, cursor.shape.channels * 9, seed + index);
        auto w2 = kernels::RandGaussian(layer.filters, layer.filters * 9,
                                        seed + index + 500);
        ctx.BindMatrixWithId(name + "a", w1, "weights:" + name + "a");
        ctx.BindMatrixWithId(name + "b", w2, "weights:" + name + "b");
        cursor.shape.channels = layer.filters;
        break;
      }
      case CnnLayer::Kind::kPool: {
        cursor.shape.height /= layer.pool;
        cursor.shape.width /= layer.pool;
        break;
      }
      case CnnLayer::Kind::kFc: {
        const size_t in = cursor.Flatten();
        auto w = kernels::RandGaussian(in, layer.out, seed + index);
        ctx.BindMatrixWithId(name, w, "weights:" + name);
        cursor.features = layer.out;
        break;
      }
      default:
        break;
    }
    ++index;
  }
}

BasicBlockPtr BuildCnnForward(const CnnModel& model, const std::string& prefix,
                              const std::string& in_var,
                              const std::string& out_var, int up_to,
                              bool force_gpu) {
  auto block = compiler::MakeBasicBlock();
  HopDag& dag = block->dag();
  HopPtr current = dag.Read(in_var);
  ShapeCursor cursor{model.input, false, 0};
  const int end = up_to < 0 ? static_cast<int>(model.layers.size()) : up_to;

  auto force = [force_gpu](const HopPtr& hop) {
    if (force_gpu) hop->ForceBackend(Backend::kGpu);
    return hop;
  };

  int index = 0;
  for (const CnnLayer& layer : model.layers) {
    if (index >= end) break;
    const std::string wname = prefix + ".w" + std::to_string(index);
    switch (layer.kind) {
      case CnnLayer::Kind::kConv: {
        HopPtr w = dag.Read(wname);
        current = force(dag.Op(
            "conv2d", {current, w},
            {static_cast<double>(cursor.shape.channels),
             static_cast<double>(cursor.shape.height),
             static_cast<double>(cursor.shape.width),
             static_cast<double>(layer.filters),
             static_cast<double>(layer.kernel),
             static_cast<double>(layer.kernel),
             static_cast<double>(layer.pad),
             static_cast<double>(layer.stride)}));
        const size_t oh =
            (cursor.shape.height + 2 * layer.pad - layer.kernel) /
                layer.stride + 1;
        const size_t ow =
            (cursor.shape.width + 2 * layer.pad - layer.kernel) /
                layer.stride + 1;
        cursor.shape = {layer.filters, oh, ow};
        break;
      }
      case CnnLayer::Kind::kResidual: {
        HopPtr w1 = dag.Read(wname + "a");
        HopPtr w2 = dag.Read(wname + "b");
        std::vector<double> conv_args = {
            static_cast<double>(cursor.shape.channels),
            static_cast<double>(cursor.shape.height),
            static_cast<double>(cursor.shape.width),
            static_cast<double>(layer.filters), 3, 3, 1, 1};
        HopPtr c1 = force(dag.Op("conv2d", {current, w1}, conv_args));
        HopPtr r1 = force(dag.Op("relu", {c1}));
        std::vector<double> conv_args2 = conv_args;
        conv_args2[0] = static_cast<double>(layer.filters);
        HopPtr c2 = force(dag.Op("conv2d", {r1, w2}, conv_args2));
        HopPtr sum = cursor.shape.channels == layer.filters
                         ? force(dag.Op("+", {c2, current}))
                         : c2;  // Dimension-changing block: no skip.
        current = force(dag.Op("relu", {sum}));
        cursor.shape.channels = layer.filters;
        break;
      }
      case CnnLayer::Kind::kRelu:
        current = force(dag.Op("relu", {current}));
        break;
      case CnnLayer::Kind::kPool:
        current = force(dag.Op(
            "maxpool", {current},
            {static_cast<double>(cursor.shape.channels),
             static_cast<double>(cursor.shape.height),
             static_cast<double>(cursor.shape.width),
             static_cast<double>(layer.pool)}));
        cursor.shape.height /= layer.pool;
        cursor.shape.width /= layer.pool;
        break;
      case CnnLayer::Kind::kFc: {
        cursor.Flatten();
        HopPtr w = dag.Read(wname);
        current = force(dag.Op("matmult", {current, w}));
        cursor.features = layer.out;
        break;
      }
      case CnnLayer::Kind::kSoftmax:
        current = force(dag.Op("softmax", {current}));
        break;
    }
    ++index;
  }
  dag.Write(out_var, current);
  return block;
}

std::vector<int> TransferExtractionPoints(const CnnModel& model) {
  // Feature layers between the mid convolutions and the last FC (frozen
  // pre-trained layers, Section 6.3). Pick every conv/fc boundary in the
  // second half of the stack.
  std::vector<int> points;
  const int n = static_cast<int>(model.layers.size());
  for (int i = n / 2; i < n - 1; ++i) {
    const auto kind = model.layers[i].kind;
    if (kind == CnnLayer::Kind::kConv || kind == CnnLayer::Kind::kFc ||
        kind == CnnLayer::Kind::kResidual) {
      points.push_back(i + 1);  // Extract after this layer.
    }
  }
  if (points.empty()) points.push_back(n - 1);
  return points;
}

// --- autoencoder (HDROP) -----------------------------------------------------------

void BindAutoencoderWeights(ExecutionContext& ctx, const Autoencoder& ae,
                            uint64_t seed) {
  ctx.BindMatrixWithId("ae.w1",
                       kernels::RandGaussian(ae.input_dim, ae.hidden, seed),
                       "weights:ae.w1");
  ctx.BindMatrixWithId("ae.w2",
                       kernels::RandGaussian(ae.hidden, ae.code, seed + 1),
                       "weights:ae.w2");
  ctx.BindMatrixWithId("ae.w3",
                       kernels::RandGaussian(ae.code, ae.hidden, seed + 2),
                       "weights:ae.w3");
  ctx.BindMatrixWithId("ae.w4",
                       kernels::RandGaussian(ae.hidden, ae.input_dim, seed + 3),
                       "weights:ae.w4");
}

BasicBlockPtr BuildAutoencoderStep(const Autoencoder& ae, double keep_prob,
                                   uint64_t mask_seed, bool force_gpu) {
  auto block = compiler::MakeBasicBlock();
  HopDag& dag = block->dag();
  auto force = [force_gpu](const HopPtr& hop) {
    if (force_gpu) hop->ForceBackend(Backend::kGpu);
    return hop;
  };
  HopPtr x = dag.Read("batch");
  HopPtr w1 = dag.Read("ae.w1");
  HopPtr w2 = dag.Read("ae.w2");
  HopPtr w3 = dag.Read("ae.w3");
  HopPtr w4 = dag.Read("ae.w4");
  HopPtr step = dag.Read("ae.step");

  // Forward.
  HopPtr a1 = force(dag.Op("matmult", {x, w1}));
  HopPtr h1 = force(dag.Op("relu", {a1}));
  HopPtr d1 = force(dag.Op("dropout", {h1},
                           {keep_prob, static_cast<double>(mask_seed)}));
  HopPtr z = force(dag.Op("matmult", {d1, w2}));
  HopPtr a3 = force(dag.Op("matmult", {z, w3}));
  HopPtr h3 = force(dag.Op("relu", {a3}));
  HopPtr xhat = force(dag.Op("matmult", {h3, w4}));

  // Backward (squared loss), expressed with the same primitive set.
  HopPtr dout = force(dag.Op("-", {xhat, x}));
  HopPtr dw4 = force(dag.Op("matmult", {dag.Op("transpose", {h3}), dout}));
  HopPtr dh3 = force(dag.Op("*", {dag.Op("matmult",
                                         {dout, dag.Op("transpose", {w4})}),
                                  dag.Op(">", {a3, dag.Literal(0.0)})}));
  HopPtr dw3 = force(dag.Op("matmult", {dag.Op("transpose", {z}), dh3}));
  HopPtr dz = force(dag.Op("matmult", {dh3, dag.Op("transpose", {w3})}));
  HopPtr dw2 = force(dag.Op("matmult", {dag.Op("transpose", {d1}), dz}));
  HopPtr dd1 = force(dag.Op("*", {dag.Op("matmult",
                                         {dz, dag.Op("transpose", {w2})}),
                                  dag.Op(">", {a1, dag.Literal(0.0)})}));
  HopPtr dw1 = force(dag.Op("matmult", {dag.Op("transpose", {x}), dd1}));

  dag.Write("ae.w1", dag.Op("-", {w1, dag.Op("*", {dw1, step})}));
  dag.Write("ae.w2", dag.Op("-", {w2, dag.Op("*", {dw2, step})}));
  dag.Write("ae.w3", dag.Op("-", {w3, dag.Op("*", {dw3, step})}));
  dag.Write("ae.w4", dag.Op("-", {w4, dag.Op("*", {dw4, step})}));
  dag.Write("ae.loss", dag.Op("mean", {dag.Op("*", {dout, dout})}));
  return block;
}

// --- translation scorer (EN2DE) -------------------------------------------------------

void BindTranslationWeights(ExecutionContext& ctx, size_t dims,
                            size_t vocab_out, const std::string& prefix,
                            uint64_t seed) {
  ctx.BindMatrixWithId(prefix + ".w1", kernels::RandGaussian(dims, dims, seed),
                       "weights:" + prefix + ".w1");
  ctx.BindMatrixWithId(prefix + ".w2",
                       kernels::RandGaussian(dims, dims, seed + 1),
                       "weights:" + prefix + ".w2");
  ctx.BindMatrixWithId(prefix + ".w3",
                       kernels::RandGaussian(dims, dims, seed + 2),
                       "weights:" + prefix + ".w3");
  ctx.BindMatrixWithId(prefix + ".w4",
                       kernels::RandGaussian(dims, vocab_out, seed + 3),
                       "weights:" + prefix + ".w4");
}

BasicBlockPtr BuildTranslationScorer(size_t dims, size_t vocab_out,
                                     const std::string& prefix,
                                     bool force_gpu) {
  (void)dims;
  (void)vocab_out;
  auto block = compiler::MakeBasicBlock();
  HopDag& dag = block->dag();
  auto force = [force_gpu](const HopPtr& hop) {
    if (force_gpu) hop->ForceBackend(Backend::kGpu);
    return hop;
  };
  HopPtr current = dag.Read("emb");
  for (int i = 1; i <= 4; ++i) {
    HopPtr w = dag.Read(prefix + ".w" + std::to_string(i));
    current = force(dag.Op("matmult", {current, w}));
    if (i < 4) current = force(dag.Op("relu", {current}));
  }
  HopPtr probs = force(dag.Op("softmax", {current}));
  dag.Write("scores", probs);
  dag.Write("best", dag.Op("rowIndexMax", {probs}));
  return block;
}

}  // namespace memphis::workloads
