#include "workloads/pipelines.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "common/status.h"
#include "matrix/kernels.h"
#include "workloads/builtins.h"
#include "workloads/cleaning.h"
#include "workloads/datasets.h"
#include "workloads/dnn.h"

namespace memphis::workloads {

namespace {
using compiler::HopDag;
using compiler::HopPtr;

std::string Label(Baseline baseline, const std::string& config) {
  return std::string(ToString(baseline)) + " " + config;
}
}  // namespace

const char* ToString(Baseline baseline) {
  switch (baseline) {
    case Baseline::kBase:
      return "Base";
    case Baseline::kBaseAsync:
      return "Base-A";
    case Baseline::kBasePar:
      return "Base-P";
    case Baseline::kLima:
      return "LIMA";
    case Baseline::kHelix:
      return "HELIX";
    case Baseline::kCoorDl:
      return "CoorDL";
    case Baseline::kClipper:
      return "Clipper";
    case Baseline::kVista:
      return "VISTA";
    case Baseline::kPyTorch:
      return "PyTorch";
    case Baseline::kPyTorchClr:
      return "PyTorch-Clr";
    case Baseline::kMemphis:
      return "MPH";
    case Baseline::kMemphisNoAsync:
      return "MPH-NA";
    case Baseline::kMemphisFineOnly:
      return "MPH-F";
    case Baseline::kMemphisNoFusion:
      return "MPH-NF";
  }
  return "?";
}

SystemConfig MakeConfig(Baseline baseline) {
  SystemConfig config;
  // Everything off; presets switch features back on.
  config.reuse_mode = ReuseMode::kNone;
  config.async_operators = false;
  config.eviction_injection = false;
  config.checkpoint_placement = false;
  config.max_parallelize = false;
  config.auto_parameter_tuning = false;
  config.delayed_caching = false;
  config.multi_level_reuse = false;
  config.gpu_recycling = false;
  config.gpu_eager_free = true;

  switch (baseline) {
    case Baseline::kBase:
    case Baseline::kBasePar:
      break;
    case Baseline::kBaseAsync:
      config.async_operators = true;
      config.max_parallelize = true;
      break;
    case Baseline::kLima:
      // Eager, local-only fine-grained reuse.
      config.reuse_mode = ReuseMode::kLima;
      break;
    case Baseline::kCoorDl:
      // CoorDL reuses the CPU input-pipeline component at the script level
      // (see RunHdrop); the runtime itself is a DNN stack with a pooled
      // device allocator and no lineage machinery.
      config.gpu_recycling = true;
      config.gpu_eager_free = false;
      break;
    case Baseline::kHelix:
      config.reuse_mode = ReuseMode::kHelix;
      config.multi_level_reuse = true;
      break;
    case Baseline::kClipper:
      // Prediction caching on a serving stack with a pooled allocator.
      config.reuse_mode = ReuseMode::kHelix;
      config.multi_level_reuse = true;
      config.gpu_recycling = true;
      config.gpu_eager_free = false;
      break;
    case Baseline::kVista:
      // Script-level CSE: the driver code computes shared prefixes once;
      // the runtime itself runs like Base with a pooled GPU allocator.
      config.gpu_recycling = true;
      config.gpu_eager_free = false;
      break;
    case Baseline::kPyTorch:
    case Baseline::kPyTorchClr:
      // Caching pool allocator, no lineage machinery.
      config.gpu_recycling = true;
      config.gpu_eager_free = false;
      break;
    case Baseline::kMemphis:
    case Baseline::kMemphisNoAsync:
    case Baseline::kMemphisFineOnly:
    case Baseline::kMemphisNoFusion:
      config.reuse_mode = ReuseMode::kMemphis;
      config.multi_level_reuse = baseline != Baseline::kMemphisFineOnly;
      config.async_operators = baseline != Baseline::kMemphisNoAsync;
      config.max_parallelize = baseline != Baseline::kMemphisNoAsync;
      config.operator_fusion = baseline != Baseline::kMemphisNoFusion;
      config.eviction_injection = true;
      config.checkpoint_placement = true;
      config.auto_parameter_tuning = true;
      config.delayed_caching = true;
      config.gpu_recycling = true;
      config.gpu_eager_free = false;
      break;
  }
  return config;
}

sim::CostModel MakeCostModel(Baseline baseline) {
  sim::CostModel cm;
  switch (baseline) {
    case Baseline::kBasePar:
      // Base-P: multi-threaded feature processing [23] -- higher local rate.
      cm.cpu_gflops *= 3.0;
      break;
    case Baseline::kPyTorch:
    case Baseline::kPyTorchClr:
      // torch.compile'd kernels and no interpreter between operators.
      cm.cp_inst_overhead /= 4.0;
      cm.gpu_gflops *= 1.5;
      cm.gpu_launch_overhead /= 2.0;
      break;
    default:
      break;
  }
  return cm;
}

namespace {

RunResult Finish(MemphisSystem& system, Baseline baseline,
                 const std::string& config, double quality = 0.0) {
  RunResult result;
  result.label = Label(baseline, config);
  result.seconds = system.ElapsedSeconds();
  result.stats = system.StatsReport();
  result.quality = quality;
  return result;
}

}  // namespace

// --- HCV -------------------------------------------------------------------------

RunResult RunHcv(Baseline baseline, size_t paper_rows, size_t paper_cols,
                 int folds, int num_regs, uint64_t seed) {
  const size_t rows = ScaleDim(paper_rows);
  const size_t cols = ScaleDim(paper_cols);
  SystemConfig config = MakeConfig(baseline);
  config.enable_gpu = false;  // HCV runs on the scale-out cluster.
  MemphisSystem system(config, MakeCostModel(baseline));
  ExecutionContext& ctx = system.ctx();

  LabeledData data = SyntheticRegression(rows, cols, seed);
  // Build per-fold train/test splits once (fold boundaries by row range).
  const size_t fold_rows = rows / folds;
  for (int f = 0; f < folds; ++f) {
    const size_t lo = f * fold_rows;
    const size_t hi = f == folds - 1 ? rows : lo + fold_rows;
    MatrixPtr x_test = kernels::Slice(*data.X, lo, hi, 0, cols);
    MatrixPtr y_test = kernels::Slice(*data.y, lo, hi, 0, 1);
    MatrixPtr x_head = kernels::Slice(*data.X, 0, lo, 0, cols);
    MatrixPtr x_tail = kernels::Slice(*data.X, hi, rows, 0, cols);
    MatrixPtr x_train = lo == 0 ? x_tail
                        : hi == rows ? x_head
                                     : kernels::RBind(*x_head, *x_tail);
    MatrixPtr y_head = kernels::Slice(*data.y, 0, lo, 0, 1);
    MatrixPtr y_tail = kernels::Slice(*data.y, hi, rows, 0, 1);
    MatrixPtr y_train = lo == 0 ? y_tail
                        : hi == rows ? y_head
                                     : kernels::RBind(*y_head, *y_tail);
    const std::string suffix = std::to_string(f);
    ctx.BindMatrixWithId("Xtr" + suffix, x_train, "hcv:Xtr:" + suffix);
    ctx.BindMatrixWithId("ytr" + suffix, y_train, "hcv:ytr:" + suffix);
    ctx.BindMatrixWithId("Xte" + suffix, x_test, "hcv:Xte:" + suffix);
    ctx.BindMatrixWithId("yte" + suffix, y_test, "hcv:yte:" + suffix);
  }

  LinRegDS linreg(cols);
  auto predict = MakePredictBlock();
  auto r2_block = MakeR2Block();

  double best_r2 = -1e300;
  for (int r = 0; r < num_regs; ++r) {
    const double reg = std::pow(10.0, -3.0 + 0.5 * r);
    double mean_r2 = 0.0;
    for (int f = 0; f < folds; ++f) {
      const std::string suffix = std::to_string(f);
      linreg.Run(system, "Xtr" + suffix, "ytr" + suffix, reg, "beta");
      ctx.SetVar("Xtest", ctx.GetVar("Xte" + suffix));
      ctx.lineage().Set("Xtest", ctx.lineage().Get("Xte" + suffix));
      ctx.SetVar("ytest", ctx.GetVar("yte" + suffix));
      ctx.lineage().Set("ytest", ctx.lineage().Get("yte" + suffix));
      system.Run(*predict);
      system.Run(*r2_block);
      mean_r2 += ctx.FetchScalar("r2");
    }
    best_r2 = std::max(best_r2, mean_r2 / folds);
  }

  std::ostringstream label;
  label << "HCV " << NominalGb(paper_rows, paper_cols) << "GB folds="
        << folds << " regs=" << num_regs;
  return Finish(system, baseline, label.str(), best_r2);
}

// --- PNMF -------------------------------------------------------------------------

RunResult RunPnmf(Baseline baseline, size_t rows, size_t cols, size_t rank,
                  int iterations, uint64_t seed) {
  SystemConfig config = MakeConfig(baseline);
  config.enable_gpu = false;  // PNMF runs on the scale-out cluster.
  MemphisSystem system(config, MakeCostModel(baseline));
  ExecutionContext& ctx = system.ctx();
  ctx.BindMatrixWithId("Xratings", MovieLensLike(rows, cols, 0.05, seed),
                       "pnmf:X");
  Pnmf pnmf(rank);
  const double residual = pnmf.Run(system, "Xratings", iterations, seed);
  std::ostringstream label;
  label << "PNMF iters=" << iterations;
  return Finish(system, baseline, label.str(), residual);
}

// --- HBAND -------------------------------------------------------------------------

RunResult RunHband(Baseline baseline, size_t paper_rows, size_t paper_cols,
                   int start_configs, int brackets, uint64_t seed) {
  const size_t rows = ScaleDim(paper_rows);
  const size_t cols = ScaleDim(paper_cols);
  SystemConfig config = MakeConfig(baseline);
  config.enable_gpu = false;  // HBAND runs on the scale-out cluster.
  MemphisSystem system(config, MakeCostModel(baseline));
  ExecutionContext& ctx = system.ctx();

  LabeledData data = SyntheticClassification(rows, cols, seed);
  ctx.BindMatrixWithId("Xhb", data.X, "hband:X");
  ctx.BindMatrixWithId("yhb", data.y, "hband:y");
  // One-hot labels for the multinomial model ({-1,+1} -> 2 classes).
  auto onehot = std::make_shared<MatrixBlock>(rows, 2, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    onehot->At(r, data.y->At(r, 0) > 0 ? 1 : 0) = 1.0;
  }
  ctx.BindMatrixWithId("Yoh", MatrixPtr(onehot), "hband:Yoh");

  L2Svm svm;
  MultiLogReg mlr(2);

  // Successive halving: regs halve, iterations double per bracket. The regs
  // surviving into bracket b+1 re-run their first `iters` iterations with
  // identical lineage -- the prefix MEMPHIS reuses.
  std::vector<double> regs;
  for (int i = 0; i < start_configs; ++i) {
    regs.push_back(std::pow(10.0, -4.0 + 0.5 * i));
  }
  int iters = 4;
  double best_quality = 0.0;
  for (int bracket = 0; bracket < brackets && !regs.empty(); ++bracket) {
    std::vector<std::pair<double, double>> scored;  // (loss, reg).
    for (double reg : regs) {
      svm.Train(system, "Xhb", "yhb", reg, iters, "w_svm");
      mlr.Train(system, "Xhb", "Yoh", reg, iters, "w_mlr");
      // Score by hinge loss of the SVM model (cheap proxy).
      auto score = compiler::MakeBasicBlock();
      {
        HopDag& dag = score->dag();
        HopPtr x = dag.Read("Xhb");
        HopPtr y = dag.Read("yhb");
        HopPtr w = dag.Read("w_svm");
        HopPtr margins = dag.Op("*", {dag.Op("matmult", {x, w}), y});
        HopPtr hinge = dag.Op("max",
                              {dag.Op("-", {dag.Literal(1.0), margins}),
                               dag.Literal(0.0)});
        dag.Write("loss", dag.Op("mean", {hinge}));
      }
      system.Run(*score);
      scored.emplace_back(ctx.FetchScalar("loss"), reg);
    }
    std::sort(scored.begin(), scored.end());
    best_quality = scored.front().first;
    regs.clear();
    for (size_t i = 0; i < (scored.size() + 1) / 2 && i < scored.size(); ++i) {
      regs.push_back(scored[i].second);
    }
    if (regs.size() == scored.size() && regs.size() > 1) regs.pop_back();
    iters *= 2;
  }

  // Weighted ensemble: random search over weight configurations; the class
  // probability products X %*% W are weight-independent and reusable.
  auto ensemble = compiler::MakeBasicBlock();
  {
    HopDag& dag = ensemble->dag();
    HopPtr x = dag.Read("Xhb");
    HopPtr w_svm = dag.Read("w_svm");
    HopPtr w_mlr = dag.Read("w_mlr");
    HopPtr alpha = dag.Read("alpha");
    HopPtr p1 = dag.Op("matmult", {x, w_svm});
    HopPtr p2 = dag.Op("rowMaxs", {dag.Op("softmax",
                                          {dag.Op("matmult", {x, w_mlr})})});
    HopPtr mixed =
        dag.Op("+", {dag.Op("*", {p1, alpha}),
                     dag.Op("*", {p2, dag.Op("-", {dag.Literal(1.0),
                                                   alpha})})});
    dag.Write("ens", dag.Op("mean", {mixed}));
  }
  Rng rng(seed + 99);
  const int weight_configs = 200;
  for (int i = 0; i < weight_configs; ++i) {
    // Quantized weights repeat: redundancy for the reuse cache.
    ctx.BindScalar("alpha", std::round(rng.NextDouble() * 20.0) / 20.0);
    system.Run(*ensemble);
  }

  std::ostringstream label;
  label << "HBAND " << NominalGb(paper_rows, paper_cols) << "GB";
  return Finish(system, baseline, label.str(), best_quality);
}

// --- CLEAN -------------------------------------------------------------------------

RunResult RunClean(Baseline baseline, int scale_factor, uint64_t seed) {
  // APS base shape 60K x 170, replicated by the scale factor. The working
  // row count is chosen so the data-to-driver-cache ratio matches the
  // paper's (80 MB vs. 5 GB at sf=1): high scale factors overflow the cache
  // and exercise the spill path, exactly as in Figure 14(a).
  const size_t base_rows = 60;
  const size_t rows = base_rows * static_cast<size_t>(scale_factor);
  const size_t cols = 170;
  SystemConfig config = MakeConfig(baseline);
  config.enable_gpu = false;  // CLEAN runs on the scale-out cluster.
  MemphisSystem system(config, MakeCostModel(baseline));
  ExecutionContext& ctx = system.ctx();

  LabeledData aps = ApsLike(rows, cols, 0.006, seed);
  ctx.BindMatrixWithId("Xdirty", aps.X, "aps:X");
  ctx.BindMatrixWithId("ylabels", aps.y, "aps:y");

  const auto pipelines = EnumerateCleanPipelines();
  L2Svm svm;
  std::vector<std::pair<double, int>> ranking;
  int index = 0;
  for (const auto& pipeline : pipelines) {
    auto block = BuildCleaningBlock(pipeline, 8, seed + 17);
    system.CallFunction(
        "clean_pipe_" + std::to_string(index), {"Xdirty", "ylabels"},
        {"Xclean", "yclean"}, [&] { system.Run(*block); });
    // Downstream feedback: a short L2SVM fit on a local sample of the
    // cleaned data (pipeline ranking uses cheap proxies; the cleaning
    // primitives dominate, as in the paper).
    auto sample = compiler::MakeBasicBlock();
    {
      HopDag& dag = sample->dag();
      const double sample_rows = 1024;  // Clamped to the cleaned height.
      dag.Write("Xs", dag.Op("sliceRows", {dag.Read("Xclean")},
                             {0, sample_rows}));
      dag.Write("ys", dag.Op("sliceRows", {dag.Read("yclean")},
                             {0, sample_rows}));
    }
    system.Run(*sample);
    svm.Train(system, "Xs", "ys", 0.01, 3, "w_clean");
    auto score = compiler::MakeBasicBlock();
    {
      HopDag& dag = score->dag();
      HopPtr x = dag.Read("Xs");
      HopPtr y = dag.Read("ys");
      HopPtr w = dag.Read("w_clean");
      HopPtr pred = dag.Op("sign", {dag.Op("matmult", {x, w})});
      HopPtr acc = dag.Op("mean", {dag.Op("==", {pred, y})});
      dag.Write("acc", acc);
    }
    system.Run(*score);
    ranking.emplace_back(-ctx.FetchScalar("acc"), index);
    ++index;
  }
  std::sort(ranking.begin(), ranking.end());

  std::ostringstream label;
  label << "CLEAN sf=" << scale_factor << " pipelines=" << pipelines.size();
  return Finish(system, baseline, label.str(), -ranking.front().first);
}

// --- HDROP -------------------------------------------------------------------------

RunResult RunHdrop(Baseline baseline, int epochs,
                   const std::vector<double>& dropout_rates, uint64_t seed) {
  // Sized so the per-epoch IDP working set relates to the 5 MB driver cache
  // the way the paper's 371 batches relate to its 5 GB cache (~40%%).
  const size_t rows = 1024;
  const size_t numeric = 64;
  const size_t categorical = 16;
  const size_t batch = 256;
  MemphisSystem system(MakeConfig(baseline), MakeCostModel(baseline));
  ExecutionContext& ctx = system.ctx();
  const bool use_gpu = true;

  LabeledData kdd = Kdd98Like(rows, numeric, categorical, seed);

  // Input data pipeline, split as in the paper (Section 6.3): the feature
  // transformation (binning + recoding + one-hot) runs and is reused on the
  // host; the normalization runs and is reused on the GPU.
  auto idp_encode = compiler::MakeBasicBlock();
  {
    HopDag& dag = idp_encode->dag();
    HopPtr raw = dag.Read("raw_batch");
    HopPtr cat_part = dag.Op("slice", {raw},
                             {0, static_cast<double>(batch),
                              static_cast<double>(numeric),
                              static_cast<double>(numeric + categorical)});
    HopPtr binned = dag.Op("bin", {cat_part}, {10});
    HopPtr recoded = dag.Op("recode", {binned});
    dag.Write("encoded", dag.Op("onehot", {recoded}));
  }
  auto idp_normalize = compiler::MakeBasicBlock();
  {
    HopDag& dag = idp_normalize->dag();
    HopPtr raw = dag.Read("raw_batch");
    HopPtr numeric_part = dag.Op("slice", {raw},
                                 {0, static_cast<double>(batch), 0,
                                  static_cast<double>(numeric)});
    HopPtr normalized = dag.Op("scale", {numeric_part});
    if (use_gpu) normalized->ForceBackend(Backend::kGpu);
    dag.Write("batch", dag.Op("cbind", {normalized, dag.Read("encoded")}));
  }
  // One-hot width is data dependent; run the IDP once up front to size the
  // autoencoder (charged like any other work).
  ctx.BindMatrixWithId("raw_batch", kernels::Slice(*kdd.X, 0, batch, 0,
                                                   numeric + categorical),
                       "kdd:0");
  system.Run(*idp_encode);
  system.Run(*idp_normalize);
  size_t feature_dim = ctx.FetchMatrix("batch")->cols();
  // CoorDL's script-level cache of the *CPU* IDP component only.
  const bool script_idp_cache = baseline == Baseline::kCoorDl;
  std::unordered_map<int, MatrixPtr> encoded_cache;

  Autoencoder ae{feature_dim, 128, 2};
  const int num_batches = static_cast<int>(rows / batch);

  double final_loss = 0.0;
  for (double rate : dropout_rates) {
    BindAutoencoderWeights(ctx, ae, seed + 31);  // Re-init per rate.
    ctx.BindScalar("ae.step", 1e-4);
    for (int epoch = 0; epoch < epochs; ++epoch) {
      auto step = BuildAutoencoderStep(
          ae, 1.0 - rate, seed + static_cast<uint64_t>(rate * 1000) + epoch,
          use_gpu);
      for (int b = 0; b < num_batches; ++b) {
        MatrixPtr raw = kernels::Slice(*kdd.X, b * batch, (b + 1) * batch, 0,
                                       numeric + categorical);
        ctx.BindMatrixWithId("raw_batch", raw, "kdd:" + std::to_string(b));
        if (script_idp_cache) {
          // CoorDL: memoized CPU encodings; GPU normalization still reruns.
          auto it = encoded_cache.find(b);
          if (it == encoded_cache.end()) {
            system.Run(*idp_encode);
            it = encoded_cache.emplace(b, ctx.FetchMatrix("encoded")).first;
          } else {
            ctx.BindMatrixWithId("encoded", it->second,
                                 "kddenc:" + std::to_string(b));
          }
        } else {
          system.Run(*idp_encode);
        }
        system.Run(*idp_normalize);
        system.Run(*step);
      }
    }
    final_loss = ctx.FetchScalar("ae.loss");
  }
  std::ostringstream label;
  label << "HDROP rates=" << dropout_rates.size() << " epochs=" << epochs;
  return Finish(system, baseline, label.str(), final_loss);
}

// --- EN2DE -------------------------------------------------------------------------

RunResult RunEn2de(Baseline baseline, size_t words, uint64_t seed) {
  const size_t vocab_en = 4000;
  const size_t vocab_de = 2000;
  const size_t dims = 300;
  SystemConfig config = MakeConfig(baseline);
  // Match the paper's device occupancy: the cached per-word scores nearly
  // fill the GPU (the paper reports 325K recycled pointers under frequent
  // evictions), so Algorithm 1's recycling regime is active.
  config.gpu_memory = 8ull << 30;  // Scaled to 8 MB.
  MemphisSystem system(config, MakeCostModel(baseline));
  ExecutionContext& ctx = system.ctx();

  MatrixPtr embeddings = WordEmbeddings(vocab_en, dims, seed);
  BindTranslationWeights(ctx, dims, vocab_de, "tr", seed + 1);
  // Serving deployments keep the model resident on the device; transfer the
  // parameters up front for every baseline (the paper's methodology).
  for (int i = 1; i <= 4; ++i) ctx.UploadToGpu("tr.w" + std::to_string(i));
  auto scorer = BuildTranslationScorer(dims, vocab_de, "tr", true);
  std::vector<int> stream = Wmt14WordStream(words, vocab_en, seed + 2);

  double checksum = 0.0;
  for (int word : stream) {
    MatrixPtr emb = kernels::Slice(*embeddings, word, word + 1, 0, dims);
    ctx.BindMatrixWithId("emb", emb, "word:" + std::to_string(word));
    // Prediction caching: the per-word scoring function is deterministic in
    // the word identity (Clipper-style reuse at the host).
    system.CallFunction("score", {"emb"}, {"best"},
                        [&] { system.Run(*scorer); });
    checksum += ctx.FetchScalar("best");
  }
  std::ostringstream label;
  label << "EN2DE words=" << words;
  return Finish(system, baseline, label.str(), checksum);
}

// --- TLVIS -------------------------------------------------------------------------

RunResult RunTlvis(Baseline baseline, size_t images, bool imagenet,
                   uint64_t seed) {
  const kernels::TensorShape shape =
      imagenet ? kernels::TensorShape{3, 32, 32} : kernels::TensorShape{3, 16, 16};
  const size_t batch = 32;
  SystemConfig config_in = MakeConfig(baseline);
  // Match the paper's occupancy: extracted feature maps keep the device
  // under pressure (30K reused / 17.5K recycled pointers in the paper).
  config_in.gpu_memory = 24ull << 30;  // Scaled to 24 MB.
  MemphisSystem system(config_in, MakeCostModel(baseline));
  ExecutionContext& ctx = system.ctx();

  MatrixPtr data = ImagesLike(images, shape, 0.0, seed);
  const int num_batches = static_cast<int>(images / batch);

  std::vector<CnnModel> models = {AlexNetLike(shape, 10), Vgg16Like(shape, 10),
                                  ResNet18Like(shape, 10)};
  const bool vista = baseline == Baseline::kVista;
  const bool pytorch_clear = baseline == Baseline::kPyTorchClr;
  const SystemConfig& config = ctx.config();

  double checksum = 0.0;
  for (const CnnModel& model : models) {
    BindCnnWeights(ctx, model, model.name, seed + 5);
    std::vector<int> points = TransferExtractionPoints(model);
    if (points.size() > 3) points.resize(3);

    if (vista) {
      // Script-level CSE: one combined block taps every extraction output;
      // the compiler's CSE merges the shared forward prefixes (the paper's
      // hand-optimized-script methodology, Section 6.1).
      auto combined = compiler::MakeBasicBlock();
      {
        HopDag& dag = combined->dag();
        for (size_t p = 0; p < points.size(); ++p) {
          auto sub = BuildCnnForward(model, model.name, "img_batch",
                                     "feat" + std::to_string(p), points[p],
                                     true);
          // Graft the sub-DAG into the combined DAG (shared reads merge in
          // CSE because read hops key on the variable name).
          for (size_t o = 0; o < sub->dag().outputs().size(); ++o) {
            dag.Write(sub->dag().output_names()[o], sub->dag().outputs()[o]);
          }
        }
      }
      for (int b = 0; b < num_batches; ++b) {
        MatrixPtr x = kernels::Slice(*data, b * batch, (b + 1) * batch, 0,
                                     shape.Size());
        ctx.BindMatrixWithId("img_batch", x,
                             "tlvis:" + std::to_string(b));
        system.Run(*combined);
        checksum += ctx.FetchMatrix("feat0")->At(0, 0);
      }
    } else {
      // Per-layer extraction pipelines: each (model, layer) pair re-runs the
      // forward pass up to its layer; MEMPHIS reuses the shared prefix.
      std::vector<BasicBlockPtr> blocks;
      for (size_t p = 0; p < points.size(); ++p) {
        blocks.push_back(BuildCnnForward(model, model.name, "img_batch",
                                         "feat", points[p], true));
      }
      for (int b = 0; b < num_batches; ++b) {
        MatrixPtr x = kernels::Slice(*data, b * batch, (b + 1) * batch, 0,
                                     shape.Size());
        ctx.BindMatrixWithId("img_batch", x, "tlvis:" + std::to_string(b));
        for (const auto& block : blocks) {
          system.Run(*block);
          checksum += ctx.FetchMatrix("feat")->At(0, 0);
        }
      }
    }

    // Allocation-pattern shift between models: the eviction-injection
    // rewrite compiles an evict(100) here (Section 5.2); PyTorch requires a
    // manual empty_cache() instead [31, 32].
    if (config.eviction_injection || pytorch_clear) {
      for (int d = 0; d < ctx.num_gpus(); ++d) {
        ctx.gpu_cache(d).EvictPercent(100.0, ctx.mutable_now());
      }
    }
  }
  std::ostringstream label;
  label << "TLVIS " << (imagenet ? "ImageNet" : "CIFAR-10") << " images="
        << images;
  return Finish(system, baseline, label.str(), checksum);
}

// --- Fig. 11 micro --------------------------------------------------------------------

RunResult RunL2svmMicro(Baseline baseline, size_t input_bytes, int configs,
                        int iterations, double reuse_frac, double cache_mb,
                        uint64_t seed) {
  // Input shaped rows x 10 to reach the requested byte size.
  const size_t cols = 10;
  const size_t rows = std::max<size_t>(8, input_bytes / (cols * 8));
  SystemConfig config = MakeConfig(baseline);
  config.enable_gpu = false;  // The micro uses driver + Spark only.
  if (cache_mb > 0) {
    // Pre-scale, then pin the driver cache to the requested budget.
    config = config.Scaled();
    config.driver_lineage_cache =
        static_cast<size_t>(cache_mb * 1024 * 1024);
  }
  MemphisSystem system(config, MakeCostModel(baseline));
  ExecutionContext& ctx = system.ctx();

  LabeledData data = SyntheticClassification(rows, cols, seed);
  ctx.BindMatrixWithId("Xm", data.X, "micro:X");
  ctx.BindMatrixWithId("ym", data.y, "micro:y");

  // Hyper-parameters repeat with probability reuse_frac, so ~reuse_frac of
  // the instruction stream is reusable (Section 6.2).
  Rng rng(seed + 1);
  std::vector<double> seen;
  L2Svm svm;
  for (int c = 0; c < configs; ++c) {
    double reg;
    if (!seen.empty() && rng.NextDouble() < reuse_frac) {
      reg = seen[rng.NextInt(seen.size())];
    } else {
      reg = std::pow(10.0, rng.NextDouble(-4.0, 0.0));
      seen.push_back(reg);
    }
    svm.Train(system, "Xm", "ym", reg, iterations, "wm");
  }
  std::ostringstream label;
  label << "L2SVM-micro " << input_bytes << "B cfgs=" << configs
        << " iters=" << iterations << " reuse=" << reuse_frac;
  return Finish(system, baseline, label.str());
}

// --- Fig. 12(b) micro ---------------------------------------------------------------------

RunResult RunGpuEnsemble(Baseline baseline, size_t images, int batch_size,
                         double duplicate_frac, uint64_t seed) {
  const kernels::TensorShape shape{3, 16, 16};
  SystemConfig config = MakeConfig(baseline);
  config.gpu_memory = 8ull << 30;  // Scaled to 8 MB: the eviction regime of
                                   // Figure 12(b) (255K/139K recycled/reused).
  MemphisSystem system(config, MakeCostModel(baseline));
  ExecutionContext& ctx = system.ctx();

  MatrixPtr data = ImagesLike(images, shape, 0.0, seed);
  const int num_batches = static_cast<int>(images) / batch_size;

  CnnModel model_a = SmallCnnA(shape, 10);
  CnnModel model_b = SmallCnnB(shape, 10);
  BindCnnWeights(ctx, model_a, "ea", seed + 3);
  BindCnnWeights(ctx, model_b, "eb", seed + 4);
  auto fwd_a = BuildCnnForward(model_a, "ea", "ens_batch", "scoreA", -1, true);
  auto fwd_b = BuildCnnForward(model_b, "eb", "ens_batch", "scoreB", -1, true);
  auto mix = compiler::MakeBasicBlock();
  {
    HopDag& dag = mix->dag();
    HopPtr a = dag.Read("scoreA");
    HopPtr b = dag.Read("scoreB");
    dag.Write("joint", dag.Op("rowIndexMax",
                              {dag.Op("+", {a, b})}));
  }

  // Duplicate whole batches with probability duplicate_frac (images carry
  // pixel-encoded ids: equal content -> equal lineage leaf).
  Rng rng(seed + 9);
  std::vector<int> batch_ids(num_batches);
  for (int b = 0; b < num_batches; ++b) {
    batch_ids[b] =
        (b > 0 && rng.NextDouble() < duplicate_frac)
            ? batch_ids[rng.NextInt(static_cast<uint64_t>(b))]
            : b;
  }

  double checksum = 0.0;
  for (int b = 0; b < num_batches; ++b) {
    const int src = batch_ids[b];
    MatrixPtr x = kernels::Slice(*data, src * batch_size,
                                 (src + 1) * batch_size, 0, shape.Size());
    // Pixel-encoded id: the content hash.
    ctx.BindMatrixWithId("ens_batch", x,
                         "img:" + std::to_string(x->ContentHash()));
    system.Run(*fwd_a);
    system.Run(*fwd_b);
    system.Run(*mix);
    checksum += ctx.FetchMatrix("joint")->At(0, 0);
  }
  std::ostringstream label;
  label << "GPU-ensemble batch=" << batch_size << " dup=" << duplicate_frac;
  return Finish(system, baseline, label.str(), checksum);
}

// --- Fig. 2(c) micro ---------------------------------------------------------------------

RunResult RunSparkCachingMicro(Baseline baseline, bool eager, int chains,
                               int chain_length, double reuse_frac,
                               uint64_t seed) {
  SystemConfig config = MakeConfig(baseline);
  config.spark_eager_caching = eager;
  MemphisSystem system(config, MakeCostModel(baseline));
  ExecutionContext& ctx = system.ctx();

  // A moderately large distributed input (forced to Spark by size).
  const size_t rows = 60000;
  const size_t cols = 24;
  ctx.BindMatrixWithId("Xrdd",
                       kernels::Rand(rows, cols, 0.0, 1.0, 1.0, seed),
                       "sparkmicro:X");

  // Each chain applies `chain_length` elementwise transformations with a
  // distinct scalar, then collects a column aggregate; chains repeat with
  // probability reuse_frac.
  auto chain_block = compiler::MakeBasicBlock();
  {
    HopDag& dag = chain_block->dag();
    HopPtr x = dag.Read("Xrdd");
    HopPtr shift = dag.Read("shift");
    HopPtr current = x;
    for (int i = 0; i < chain_length; ++i) {
      current = dag.Op(i % 2 == 0 ? "+" : "*", {current, shift});
    }
    // The final transpose is local: the compiler inserts the collect whose
    // result MEMPHIS reuses (Spark action reuse, Example 4.1).
    dag.Write("agg", dag.Op("transpose", {dag.Op("colSums", {current})}));
  }

  Rng rng(seed + 1);
  std::vector<double> seen;
  double checksum = 0.0;
  for (int c = 0; c < chains; ++c) {
    double shift;
    if (!seen.empty() && rng.NextDouble() < reuse_frac) {
      shift = seen[rng.NextInt(seen.size())];
    } else {
      shift = 1.0 + 0.001 * static_cast<double>(seen.size());
      seen.push_back(shift);
    }
    ctx.BindScalar("shift", shift);
    system.Run(*chain_block);
    checksum += ctx.FetchMatrix("agg")->At(0, 0);
  }
  std::ostringstream label;
  label << "Spark-caching " << (eager ? "eager" : "lazy") << " chains="
        << chains << "x" << chain_length << " reuse=" << reuse_frac;
  return Finish(system, baseline, label.str(), checksum);
}

}  // namespace memphis::workloads
