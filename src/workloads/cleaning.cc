#include "workloads/cleaning.h"

namespace memphis::workloads {

namespace {
using compiler::HopDag;
using compiler::HopPtr;
}  // namespace

const char* ToString(CleanPrim primitive) {
  switch (primitive) {
    case CleanPrim::kImputeMean:
      return "imputeByMean";
    case CleanPrim::kImputeMode:
      return "imputeByMode";
    case CleanPrim::kOutlierIQR:
      return "outlierByIQR";
    case CleanPrim::kScale:
      return "scale";
    case CleanPrim::kMinMax:
      return "minmax";
    case CleanPrim::kUnderSample:
      return "underSampling";
    case CleanPrim::kPca:
      return "PCA";
  }
  return "?";
}

std::vector<std::vector<CleanPrim>> EnumerateCleanPipelines() {
  using P = CleanPrim;
  // 12 pipelines with data-dependent primitive order (imputation and
  // outlier handling before normalization); long shared prefixes create the
  // repeated primitives MEMPHIS reuses.
  return {
      {P::kImputeMean, P::kOutlierIQR, P::kScale},
      {P::kImputeMean, P::kOutlierIQR, P::kMinMax},
      {P::kImputeMean, P::kOutlierIQR, P::kScale, P::kPca},
      {P::kImputeMean, P::kOutlierIQR, P::kScale, P::kPca, P::kMinMax},
      {P::kImputeMean, P::kScale},
      {P::kImputeMean, P::kMinMax},
      {P::kImputeMode, P::kOutlierIQR, P::kScale},
      {P::kImputeMode, P::kOutlierIQR, P::kMinMax},
      {P::kImputeMode, P::kOutlierIQR, P::kScale, P::kPca},
      {P::kImputeMode, P::kOutlierIQR, P::kScale, P::kPca, P::kMinMax},
      {P::kImputeMean, P::kOutlierIQR, P::kUnderSample, P::kScale},
      {P::kImputeMean, P::kOutlierIQR, P::kUnderSample, P::kScale, P::kPca},
  };
}

BasicBlockPtr BuildCleaningBlock(const std::vector<CleanPrim>& pipeline,
                                 size_t pca_components, uint64_t sample_seed) {
  auto block = compiler::MakeBasicBlock();
  HopDag& dag = block->dag();
  HopPtr x = dag.Read("Xdirty");
  HopPtr y = dag.Read("ylabels");
  HopPtr current = x;
  HopPtr labels = y;
  for (CleanPrim primitive : pipeline) {
    switch (primitive) {
      case CleanPrim::kImputeMean:
        current = dag.Op("imputeMean", {current});
        break;
      case CleanPrim::kImputeMode:
        current = dag.Op("imputeMode", {current});
        break;
      case CleanPrim::kOutlierIQR:
        current = dag.Op("outlierIQR", {current}, {1.5});
        break;
      case CleanPrim::kScale:
        current = dag.Op("scale", {current});
        break;
      case CleanPrim::kMinMax:
        current = dag.Op("minmax", {current});
        break;
      case CleanPrim::kUnderSample: {
        // Sample labels and features together so they stay aligned.
        HopPtr joined = dag.Op("cbind", {labels, current});
        HopPtr sampled = dag.Op("undersample", {joined, labels},
                                {static_cast<double>(sample_seed)});
        // Row counts are data dependent, so slice by columns only.
        labels = dag.Op("sliceCols", {sampled}, {0, 1});
        current = dag.Op("sliceCols", {sampled},
                         {1, 1e12});  // Clamped below.
        break;
      }
      case CleanPrim::kPca:
        current = dag.Op("pca", {current},
                         {static_cast<double>(pca_components)});
        break;
    }
  }
  dag.Write("Xclean", current);
  dag.Write("yclean", labels);
  return block;
}

}  // namespace memphis::workloads
