#ifndef MEMPHIS_OBS_METRICS_H_
#define MEMPHIS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace memphis::obs {

/// Unified metrics layer (DESIGN.md §5c): every component counter in the
/// system is one of three atomic primitives -- Counter (monotonic int64),
/// Gauge (double, accumulating or set), Histogram (exponential base-2
/// buckets with p50/p95/p99) -- collected under stable dotted names in a
/// MetricsRegistry and exported as text or JSON.
///
/// The primitives are drop-in replacements for the plain int64_t/double
/// fields of the old per-component stats structs: they support ++, +=, and
/// implicit conversion back to their value type, so `++stats.probes` and
/// `EXPECT_EQ(stats.probes, 3)` keep working -- but mutation is now atomic,
/// which the pool-threaded Spark tasks and shared caches require.

// --- primitives -------------------------------------------------------------

class Counter {
 public:
  Counter() = default;
  explicit Counter(int64_t initial) : value_(initial) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  Counter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  Counter& operator+=(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  operator int64_t() const { return value(); }  // NOLINT: drop-in for int64_t.

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  Gauge& operator+=(double delta) {
    Add(delta);
    return *this;
  }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

  double value() const { return value_.load(std::memory_order_relaxed); }
  operator double() const { return value(); }  // NOLINT: drop-in for double.

 private:
  std::atomic<double> value_{0.0};
};

/// Exponential-bucket latency/size histogram. Bucket i covers
/// [lowest * 2^i, lowest * 2^(i+1)); values below `lowest` land in bucket 0,
/// values past the last bucket in bucket kNumBuckets-1. Boundaries are exact:
/// a value equal to lowest * 2^i is counted in bucket i (lower-inclusive).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  explicit Histogram(double lowest = 1e-9) : lowest_(lowest) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // +inf when empty.
  double max() const;  // -inf when empty.
  double mean() const;

  /// Quantile estimate: lower bound of the bucket holding the q-th sample
  /// (exact bucket selection; sub-bucket position is not interpolated).
  double Quantile(double q) const;

  /// Bucket index a value maps to (exposed for boundary tests).
  int BucketIndex(double value) const;
  /// Inclusive lower bound of bucket i: lowest * 2^i.
  double BucketLowerBound(int bucket) const;
  int64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

  void MergeFrom(const Histogram& other);
  void Reset();

  double lowest() const { return lowest_; }

 private:
  double lowest_;
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// --- registry ---------------------------------------------------------------

/// Named collection of metrics. Holds three flavors:
///  - owned metrics created on demand (GetCounter/GetGauge/GetHistogram);
///  - externally-owned metrics registered by pointer (the component stats
///    structs keep their fields; the registry only names and exports them);
///  - callback gauges sampling a component getter at snapshot time (storage
///    bytes, arena fragmentation, pool queue depth).
/// Registration takes the registry lock exclusively; snapshotting takes it
/// shared; metric mutation never locks. The registry lock is kMetrics --
/// above every product lock except the trace registry -- so callbacks
/// sampled under it must be lock-free (atomics only; see pool.queue_depth).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry: per-session registries flush their totals here
  /// on ExecutionContext destruction, so bench/CLI exports see aggregate
  /// numbers across every system the process created.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name) MEMPHIS_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) MEMPHIS_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, double lowest = 1e-9)
      MEMPHIS_EXCLUDES(mu_);

  void Register(const std::string& name, Counter* counter)
      MEMPHIS_EXCLUDES(mu_);
  void Register(const std::string& name, Gauge* gauge) MEMPHIS_EXCLUDES(mu_);
  void Register(const std::string& name, Histogram* histogram)
      MEMPHIS_EXCLUDES(mu_);
  void RegisterCallback(const std::string& name, std::function<double()> fn)
      MEMPHIS_EXCLUDES(mu_);

  struct Sample {
    std::string name;
    enum class Kind { kCounter, kGauge, kHistogram, kCallback } kind;
    double value = 0.0;       // counter/gauge/callback value; histogram sum.
    int64_t count = 0;        // histogram sample count.
    double p50 = 0.0, p95 = 0.0, p99 = 0.0, min = 0.0, max = 0.0;
  };

  /// Consistent point-in-time listing, sorted by name.
  std::vector<Sample> Snapshot() const MEMPHIS_EXCLUDES(mu_);

  /// Human-readable one-metric-per-line listing.
  std::string ToText() const;

  /// JSON object {"name": value, ...}; histograms expand to an object with
  /// count/sum/p50/p95/p99/min/max.
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

  /// Accumulates this registry's current values into `target`'s *owned*
  /// metrics of the same names: counters and gauges add, histograms merge
  /// buckets, callbacks are sampled into a plain gauge (last value wins).
  void FlushInto(MetricsRegistry* target) const MEMPHIS_EXCLUDES(mu_);

  size_t size() const MEMPHIS_EXCLUDES(mu_);

 private:
  struct Entry {
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
    std::function<double()> callback;
  };

  Entry& Slot(const std::string& name) MEMPHIS_REQUIRES(mu_);

  mutable SharedMutex mu_{LockRank::kMetrics, "metrics-registry"};
  std::map<std::string, Entry> entries_ MEMPHIS_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Counter>> owned_counters_ MEMPHIS_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Gauge>> owned_gauges_ MEMPHIS_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Histogram>> owned_histograms_
      MEMPHIS_GUARDED_BY(mu_);
};

}  // namespace memphis::obs

#endif  // MEMPHIS_OBS_METRICS_H_
