#include "obs/flags.h"

#include "obs/flight.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace memphis::obs {
namespace {

std::string g_trace_path;
std::string g_metrics_path;
std::string g_journal_path;
std::string g_flight_dir;

}  // namespace

bool ParseObsFlag(const std::string& arg) {
  constexpr const char kTrace[] = "--trace=";
  constexpr const char kMetrics[] = "--metrics=";
  constexpr const char kJournal[] = "--journal=";
  constexpr const char kFlight[] = "--flight=";
  if (arg.compare(0, sizeof(kTrace) - 1, kTrace) == 0) {
    g_trace_path = arg.substr(sizeof(kTrace) - 1);
    EnableTracing(true);
    return true;
  }
  if (arg.compare(0, sizeof(kMetrics) - 1, kMetrics) == 0) {
    g_metrics_path = arg.substr(sizeof(kMetrics) - 1);
    return true;
  }
  if (arg.compare(0, sizeof(kJournal) - 1, kJournal) == 0) {
    g_journal_path = arg.substr(sizeof(kJournal) - 1);
    EnableJournal(true);
    return true;
  }
  if (arg.compare(0, sizeof(kFlight) - 1, kFlight) == 0) {
    g_flight_dir = arg.substr(sizeof(kFlight) - 1);
    EnableFlightRecorder(g_flight_dir);
    return true;
  }
  return false;
}

bool WriteObsOutputs() {
  bool ok = true;
  if (!g_trace_path.empty()) {
    ok = WriteChromeTrace(g_trace_path) && ok;
  }
  if (!g_metrics_path.empty()) {
    ok = MetricsRegistry::Global().WriteJson(g_metrics_path) && ok;
  }
  if (!g_journal_path.empty()) {
    ok = WriteJournalJson(g_journal_path) && ok;
  }
  return ok;
}

const std::string& TracePath() { return g_trace_path; }
const std::string& MetricsPath() { return g_metrics_path; }
const std::string& JournalPath() { return g_journal_path; }
const std::string& FlightDir() { return g_flight_dir; }

}  // namespace memphis::obs
