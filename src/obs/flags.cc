#include "obs/flags.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace memphis::obs {
namespace {

std::string g_trace_path;
std::string g_metrics_path;

}  // namespace

bool ParseObsFlag(const std::string& arg) {
  constexpr const char kTrace[] = "--trace=";
  constexpr const char kMetrics[] = "--metrics=";
  if (arg.compare(0, sizeof(kTrace) - 1, kTrace) == 0) {
    g_trace_path = arg.substr(sizeof(kTrace) - 1);
    EnableTracing(true);
    return true;
  }
  if (arg.compare(0, sizeof(kMetrics) - 1, kMetrics) == 0) {
    g_metrics_path = arg.substr(sizeof(kMetrics) - 1);
    return true;
  }
  return false;
}

bool WriteObsOutputs() {
  bool ok = true;
  if (!g_trace_path.empty()) {
    ok = WriteChromeTrace(g_trace_path) && ok;
  }
  if (!g_metrics_path.empty()) {
    ok = MetricsRegistry::Global().WriteJson(g_metrics_path) && ok;
  }
  return ok;
}

const std::string& TracePath() { return g_trace_path; }
const std::string& MetricsPath() { return g_metrics_path; }

}  // namespace memphis::obs
