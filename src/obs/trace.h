#ifndef MEMPHIS_OBS_TRACE_H_
#define MEMPHIS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/request_trace.h"

namespace memphis::obs {

/// Structured trace collector (DESIGN.md §5c): per-thread ring buffers of
/// span/instant events drained into Chrome trace-event JSON that loads in
/// Perfetto / chrome://tracing.
///
/// Two clock domains coexist in one trace:
///   - wall-clock events (pid 1): real time from a process-wide steady
///     clock, one Perfetto track per OS thread;
///   - simulated-time events (pid 2): the virtual clocks of the
///     sim::Timeline / sim::MultiLaneTimeline resources (Spark scheduler
///     lanes, GPU streams, the driver's async pool), one track per lane.
///
/// Cost contract: with tracing disabled every emission macro costs exactly
/// one relaxed atomic load plus a predictable branch -- no allocation, no
/// locking, no clock read. Emission when enabled is lock-free: the owning
/// thread writes its own ring and publishes with one release store. Rings
/// overwrite their oldest events when full; CollectTrace() accounts every
/// overwritten event in `dropped`, so emitted == collected + dropped always
/// holds exactly.
///
/// Draining (CollectTrace / WriteChromeTrace / ResetTrace) must run while no
/// thread is concurrently emitting -- in practice at export points after the
/// workload finished and the pool is idle. Debug builds enforce this: every
/// enabled emission bumps a process-wide in-flight counter around its ring
/// push, and the drain entry points abort (or count, under the no-abort test
/// hook) if any emission is still in flight.

// --- global switch ----------------------------------------------------------

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// One relaxed load: this is the whole cost of a disabled emission macro.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

void EnableTracing(bool enabled);

/// Ring capacity (events per thread) for rings created *after* this call.
/// Must be a power of two; defaults to 1<<17 (~12 MiB per active thread).
void SetTraceRingCapacity(size_t capacity);

// --- events -----------------------------------------------------------------

struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

/// POD event slot. `name`/`cat` must outlive the collector: use string
/// literals or Intern() for dynamic names.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  double ts_us = 0.0;   // wall us since trace epoch, or sim seconds * 1e6.
  double dur_us = 0.0;  // 'X' events only.
  char ph = 'i';        // 'B' | 'E' | 'i' | 'X'.
  int32_t lane = -1;    // >= 0: simulated-time event on this lane (pid 2).
  int32_t tid = 0;      // filled at collection time from the owning ring.
  uint64_t flow_id = 0; // != 0: request id; exporter adds the "rid" arg and
                        // links same-id 'B' spans into one Perfetto flow.
  uint32_t num_args = 0;
  TraceArg args[3];
};

/// Microseconds since the trace epoch (process-wide steady clock).
double TraceNowUs();

/// Interns a dynamic string so its pointer outlives the emission site.
const char* Intern(const std::string& s);

// --- emission (call only when TraceEnabled()) -------------------------------

void EmitBegin(const char* cat, const char* name, uint32_t num_args = 0,
               const TraceArg* args = nullptr);
void EmitEnd(const char* cat, const char* name);
void EmitInstant(const char* cat, const char* name, uint32_t num_args = 0,
                 const TraceArg* args = nullptr);

/// Request-attributed variants: like EmitBegin/EmitInstant but stamp the
/// event with `flow_id` (a request id). A zero flow_id degrades to the plain
/// form. The exporter renders the id as an "rid" arg and links same-id 'B'
/// spans across threads into one Perfetto flow.
void EmitBeginFlow(const char* cat, const char* name, uint64_t flow_id,
                   uint32_t num_args = 0, const TraceArg* args = nullptr);
void EmitInstantFlow(const char* cat, const char* name, uint64_t flow_id,
                     uint32_t num_args = 0, const TraceArg* args = nullptr);

/// A completed span on a simulated-time lane: [start_s, start_s + dur_s) in
/// simulated seconds.
void EmitSimSpan(int lane, const char* name, double start_s, double dur_s);

/// Registers a simulated-time lane (a Timeline or one MultiLaneTimeline
/// sub-lane); the name becomes the Perfetto track name.
int RegisterSimLane(const std::string& name);

/// RAII wall-clock span; emits nothing when tracing is disabled at entry.
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name)
      : cat_(cat), name_(name), active_(TraceEnabled()) {
    if (active_) EmitBegin(cat_, name_);
  }
  ScopedSpan(const char* cat, const char* name, const char* k0, double v0)
      : cat_(cat), name_(name), active_(TraceEnabled()) {
    if (active_) {
      TraceArg args[1] = {{k0, v0}};
      EmitBegin(cat_, name_, 1, args);
    }
  }
  ScopedSpan(const char* cat, const char* name, const char* k0, double v0,
             const char* k1, double v1)
      : cat_(cat), name_(name), active_(TraceEnabled()) {
    if (active_) {
      TraceArg args[2] = {{k0, v0}, {k1, v1}};
      EmitBegin(cat_, name_, 2, args);
    }
  }
  ~ScopedSpan() {
    if (active_) EmitEnd(cat_, name_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* cat_;
  const char* name_;
  bool active_;  // Matches E to B even if the flag flips mid-span.
};

/// RAII wall-clock span stamped with a request id (flow id). Used by the
/// MEMPHIS_TRACE_*_REQ macros, which pass the calling thread's current
/// request id; a zero id behaves exactly like ScopedSpan.
class ScopedSpanReq {
 public:
  ScopedSpanReq(const char* cat, const char* name, uint64_t flow_id)
      : cat_(cat), name_(name), active_(TraceEnabled()) {
    if (active_) EmitBeginFlow(cat_, name_, flow_id);
  }
  ScopedSpanReq(const char* cat, const char* name, uint64_t flow_id,
                const char* k0, double v0)
      : cat_(cat), name_(name), active_(TraceEnabled()) {
    if (active_) {
      TraceArg args[1] = {{k0, v0}};
      EmitBeginFlow(cat_, name_, flow_id, 1, args);
    }
  }
  ScopedSpanReq(const char* cat, const char* name, uint64_t flow_id,
                const char* k0, double v0, const char* k1, double v1)
      : cat_(cat), name_(name), active_(TraceEnabled()) {
    if (active_) {
      TraceArg args[2] = {{k0, v0}, {k1, v1}};
      EmitBeginFlow(cat_, name_, flow_id, 2, args);
    }
  }
  ~ScopedSpanReq() {
    if (active_) EmitEnd(cat_, name_);
  }

  ScopedSpanReq(const ScopedSpanReq&) = delete;
  ScopedSpanReq& operator=(const ScopedSpanReq&) = delete;

 private:
  const char* cat_;
  const char* name_;
  bool active_;
};

// --- collection / export ----------------------------------------------------

struct TraceSnapshot {
  std::vector<TraceEvent> events;  // Oldest-first per tid.
  uint64_t emitted = 0;            // Total events ever pushed.
  uint64_t dropped = 0;            // Overwritten by ring wrap-around.
};

/// Copies every ring's surviving events (plus drop accounting). Call while
/// no thread is emitting.
TraceSnapshot CollectTrace();

/// Clears all rings and counters (tests / between bench configurations).
void ResetTrace();

/// Crash-path collection: identical to CollectTrace but skips the quiescence
/// assertion -- the flight recorder drains mid-crash when other threads may
/// still be emitting, accepting a best-effort (possibly torn) tail in
/// exchange for post-mortem evidence.
TraceSnapshot CollectTraceForCrash();

// --- quiescence enforcement -------------------------------------------------

/// Emissions observed mid-flight by a CollectTrace/ResetTrace call so far.
/// Nonzero means the quiescence contract above was violated.
int64_t TraceQuiescenceViolations();

/// Test hook: when false, a quiescence violation is counted and reported to
/// stderr instead of aborting. Tests must restore the default (true).
void SetTraceQuiescenceAbortForTest(bool abort_on_violation);

/// Test hook: invoked on the emitting thread after it registers as
/// mid-emission but before the ring push, so a test can deterministically
/// hold a worker inside the emission window. Pass nullptr to uninstall.
void SetTraceEmissionPauseHookForTest(void (*hook)());

/// Drains everything into Chrome trace-event JSON at `path`. Unbalanced
/// events caused by ring wrap-around are repaired (leading 'E's dropped,
/// trailing 'B's closed) so the file always validates. Returns false on I/O
/// failure.
bool WriteChromeTrace(const std::string& path);

// --- macros -----------------------------------------------------------------

#define MEMPHIS_OBS_CONCAT_INNER(a, b) a##b
#define MEMPHIS_OBS_CONCAT(a, b) MEMPHIS_OBS_CONCAT_INNER(a, b)

/// Wall-clock span covering the rest of the enclosing scope.
#define MEMPHIS_TRACE_SPAN(cat, name) \
  ::memphis::obs::ScopedSpan MEMPHIS_OBS_CONCAT(memphis_span_, \
                                                __COUNTER__)(cat, name)
#define MEMPHIS_TRACE_SPAN1(cat, name, k0, v0)                      \
  ::memphis::obs::ScopedSpan MEMPHIS_OBS_CONCAT(memphis_span_,      \
                                                __COUNTER__)(cat, name, k0, \
                                                             v0)
#define MEMPHIS_TRACE_SPAN2(cat, name, k0, v0, k1, v1)              \
  ::memphis::obs::ScopedSpan MEMPHIS_OBS_CONCAT(memphis_span_,      \
                                                __COUNTER__)(cat, name, k0, \
                                                             v0, k1, v1)

#define MEMPHIS_TRACE_INSTANT(cat, name)                 \
  do {                                                   \
    if (::memphis::obs::TraceEnabled()) {                \
      ::memphis::obs::EmitInstant(cat, name);            \
    }                                                    \
  } while (0)
#define MEMPHIS_TRACE_INSTANT1(cat, name, k0, v0)        \
  do {                                                   \
    if (::memphis::obs::TraceEnabled()) {                \
      ::memphis::obs::TraceArg memphis_args[1] = {{k0, v0}};        \
      ::memphis::obs::EmitInstant(cat, name, 1, memphis_args);      \
    }                                                    \
  } while (0)
/// Explicit span bracket for ranges that don't follow scope shape (e.g.
/// spans opened in one branch and closed in another). Every BEGIN in a
/// function must have a matching END on the same (cat, name) literals --
/// scripts/memphis_lint.py enforces the pairing; prefer MEMPHIS_TRACE_SPAN
/// when the range is scope-shaped.
#define MEMPHIS_TRACE_BEGIN(cat, name)                   \
  do {                                                   \
    if (::memphis::obs::TraceEnabled()) {                \
      ::memphis::obs::EmitBegin(cat, name);              \
    }                                                    \
  } while (0)
#define MEMPHIS_TRACE_END(cat, name)                     \
  do {                                                   \
    if (::memphis::obs::TraceEnabled()) {                \
      ::memphis::obs::EmitEnd(cat, name);                \
    }                                                    \
  } while (0)

#define MEMPHIS_TRACE_INSTANT2(cat, name, k0, v0, k1, v1)           \
  do {                                                   \
    if (::memphis::obs::TraceEnabled()) {                \
      ::memphis::obs::TraceArg memphis_args[2] = {{k0, v0}, {k1, v1}};  \
      ::memphis::obs::EmitInstant(cat, name, 2, memphis_args);      \
    }                                                    \
  } while (0)

/// Request-attributed forms: identical to the plain macros, plus the calling
/// thread's current request id as the event's flow id (0 when no request is
/// in scope -- then they behave exactly like the plain forms). Spans under
/// src/serve/ and src/cache/ must use these; scripts/memphis_lint.py's
/// span-rid rule enforces it (allow(span-rid) for legitimately global
/// sites). Disabled cost is unchanged: one relaxed load, the thread-local
/// read happens only when tracing is on.
#define MEMPHIS_TRACE_SPAN_REQ(cat, name)                            \
  ::memphis::obs::ScopedSpanReq MEMPHIS_OBS_CONCAT(memphis_span_,    \
                                                   __COUNTER__)(     \
      cat, name, ::memphis::obs::CurrentRequestId())
#define MEMPHIS_TRACE_SPAN1_REQ(cat, name, k0, v0)                   \
  ::memphis::obs::ScopedSpanReq MEMPHIS_OBS_CONCAT(memphis_span_,    \
                                                   __COUNTER__)(     \
      cat, name, ::memphis::obs::CurrentRequestId(), k0, v0)
#define MEMPHIS_TRACE_SPAN2_REQ(cat, name, k0, v0, k1, v1)           \
  ::memphis::obs::ScopedSpanReq MEMPHIS_OBS_CONCAT(memphis_span_,    \
                                                   __COUNTER__)(     \
      cat, name, ::memphis::obs::CurrentRequestId(), k0, v0, k1, v1)

#define MEMPHIS_TRACE_INSTANT_REQ(cat, name)                         \
  do {                                                               \
    if (::memphis::obs::TraceEnabled()) {                            \
      ::memphis::obs::EmitInstantFlow(                               \
          cat, name, ::memphis::obs::CurrentRequestId());            \
    }                                                                \
  } while (0)
#define MEMPHIS_TRACE_INSTANT1_REQ(cat, name, k0, v0)                \
  do {                                                               \
    if (::memphis::obs::TraceEnabled()) {                            \
      ::memphis::obs::TraceArg memphis_args[1] = {{k0, v0}};         \
      ::memphis::obs::EmitInstantFlow(                               \
          cat, name, ::memphis::obs::CurrentRequestId(), 1,          \
          memphis_args);                                             \
    }                                                                \
  } while (0)
#define MEMPHIS_TRACE_INSTANT2_REQ(cat, name, k0, v0, k1, v1)        \
  do {                                                               \
    if (::memphis::obs::TraceEnabled()) {                            \
      ::memphis::obs::TraceArg memphis_args[2] = {{k0, v0}, {k1, v1}}; \
      ::memphis::obs::EmitInstantFlow(                               \
          cat, name, ::memphis::obs::CurrentRequestId(), 2,          \
          memphis_args);                                             \
    }                                                                \
  } while (0)

}  // namespace memphis::obs

#endif  // MEMPHIS_OBS_TRACE_H_
