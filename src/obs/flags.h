#ifndef MEMPHIS_OBS_FLAGS_H_
#define MEMPHIS_OBS_FLAGS_H_

#include <string>

namespace memphis::obs {

/// Shared command-line wiring for the observability outputs, so every
/// entry point (bench binaries, memphis_fuzz, script_runner) spells the
/// flags the same way:
///   --trace=<file>     enable tracing; write Chrome trace JSON on exit.
///   --metrics=<file>   write a metrics-registry JSON snapshot on exit.

/// Consumes `arg` if it is one of the observability flags. --trace= also
/// flips the global tracing switch on immediately.
bool ParseObsFlag(const std::string& arg);

/// Writes whichever outputs were requested by previously parsed flags; a
/// no-op when neither flag was given. Metrics come from
/// MetricsRegistry::Global(), so call this after the ExecutionContexts
/// being measured have been destroyed (they flush on destruction).
/// Returns false if any write failed.
bool WriteObsOutputs();

const std::string& TracePath();
const std::string& MetricsPath();

}  // namespace memphis::obs

#endif  // MEMPHIS_OBS_FLAGS_H_
