#ifndef MEMPHIS_OBS_FLAGS_H_
#define MEMPHIS_OBS_FLAGS_H_

#include <string>

namespace memphis::obs {

/// Shared command-line wiring for the observability outputs, so every
/// entry point (bench binaries, memphis_fuzz, script_runner) spells the
/// flags the same way:
///   --trace=<file>     enable tracing; write Chrome trace JSON on exit.
///   --metrics=<file>   write a metrics-registry JSON snapshot on exit.
///   --journal=<file>   enable the reuse-decision journal; write it as JSON
///                      on exit (the memphis_explain input format).
///   --flight=<dir>     arm the crash flight recorder; dumps land in <dir>
///                      as memphis_flight_<pid>.json.

/// Consumes `arg` if it is one of the observability flags. --trace= and
/// --journal= also flip their global switches on immediately; --flight=
/// arms the flight recorder immediately.
bool ParseObsFlag(const std::string& arg);

/// Writes whichever outputs were requested by previously parsed flags; a
/// no-op when neither flag was given. Metrics come from
/// MetricsRegistry::Global(), so call this after the ExecutionContexts
/// being measured have been destroyed (they flush on destruction).
/// Returns false if any write failed.
bool WriteObsOutputs();

const std::string& TracePath();
const std::string& MetricsPath();
const std::string& JournalPath();
const std::string& FlightDir();

}  // namespace memphis::obs

#endif  // MEMPHIS_OBS_FLAGS_H_
