// memphis_flight_probe: deterministic flight-recorder exercise for CI.
//
//   memphis_flight_probe [<dump-dir>]
//
// Arms the crash flight recorder, emits a handful of request-scoped trace
// spans and journal decisions, then acquires two locks in rank-inverted
// order with the validator in no-abort mode. The rank-violation hook must
// produce a dump; the probe prints its path on stdout (the input to
// scripts/validate_flight.py) and exits nonzero if no dump was written.
//
// The lock-rank validator is off by default in release builds, so the probe
// force-enables it through the MEMPHIS_SYNC_VALIDATE environment variable
// before the first lock is touched (an explicit =0 from the caller wins and
// makes the probe fail loudly rather than silently pass).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/sync.h"
#include "obs/flight.h"
#include "obs/journal.h"
#include "obs/request_trace.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  // Before any Mutex: the validator reads the environment once, lazily, on
  // the first acquisition (which EnableTracing's registry lock triggers).
  setenv("MEMPHIS_SYNC_VALIDATE", "1", /*overwrite=*/0);

  using namespace memphis;
  if (!SyncValidatorEnabled()) {
    std::fprintf(stderr,
                 "flight probe: rank validator disabled "
                 "(MEMPHIS_SYNC_VALIDATE=0 in the environment?)\n");
    return 1;
  }

  const std::string dir = argc > 1 ? argv[1] : ".";
  obs::EnableTracing(true);
  obs::EnableJournal(true);
  obs::EnableFlightRecorder(dir);

  // A recognizable request-scoped tail for the dump: one probe with its
  // miss outcome and a span, all stamped with rid 42.
  {
    obs::RequestContext context;
    context.rid = 42;
    context.tenant = "ci-probe";
    obs::ScopedRequestContext scope(context);
    obs::ScopedSpanReq span("test", "flight-probe", context.rid);
    MEMPHIS_JOURNAL(kProbe, kHost, kNone, 0x1234, 1.0, 64.0);
    MEMPHIS_JOURNAL(kMiss, kNone, kNone, 0x1234, 0.0, 0.0);
  }

  const int64_t dumps_before = obs::FlightDumpCount();
  SetSyncValidatorAbortForTest(false);
  {
    Mutex outer(LockRank::kMetrics, "probe-outer");
    Mutex inner(LockRank::kPool, "probe-inner");
    MutexLock hold_outer(outer);
    // Rank 8 under rank 11: the validator reports the inversion and the
    // recorder's hook dumps before control returns here.
    MutexLock hold_inner(inner);
  }
  SetSyncValidatorAbortForTest(true);
  obs::DisableFlightRecorder();

  if (obs::FlightDumpCount() != dumps_before + 1) {
    std::fprintf(stderr, "flight probe: no dump was written\n");
    return 1;
  }
  std::printf("%s/memphis_flight_%d.json\n", dir.c_str(),
              static_cast<int>(getpid()));
  return 0;
}
