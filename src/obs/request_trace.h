#ifndef MEMPHIS_OBS_REQUEST_TRACE_H_
#define MEMPHIS_OBS_REQUEST_TRACE_H_

#include <atomic>
#include <cstdint>

namespace memphis::obs {

/// Request-scoped observability context (DESIGN.md §5h). The serving layer
/// assigns every submitted request a process-unique id and carries
/// {id, tenant, priority, deadline} from SessionManager dispatch through
/// ExecutionContext into executor instruction dispatch, the lineage-cache
/// probe path, shared-store harvest/warm, persistent-tier promote, and fused
/// composite probes. The context rides a thread-local: a worker scopes it
/// around one request's execution, so every trace span and journal event
/// emitted underneath is attributable to exactly one request without
/// threading an argument through every call signature.
///
/// Cost contract: reading the current request id is one thread-local load;
/// nothing here allocates or locks. `tenant` must be an interned or literal
/// string (outlives the emission sites), never a std::string::c_str() of a
/// temporary -- SessionManager interns tenant names once per request via
/// obs::Intern before scoping the context.

struct RequestContext {
  uint64_t rid = 0;               // 0 = no request in scope (global work).
  const char* tenant = nullptr;   // interned; nullptr when rid == 0.
  int priority = 0;
  double deadline_ms = 0.0;       // 0 = no deadline.
};

namespace internal {
extern thread_local RequestContext g_request;
extern std::atomic<uint64_t> g_next_rid;
}  // namespace internal

/// Allocates the next process-unique request id (never returns 0).
inline uint64_t NextRequestId() {
  return internal::g_next_rid.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// The request context bound to the calling thread (rid 0 when none).
inline const RequestContext& CurrentRequest() { return internal::g_request; }

/// The current request id alone -- the common fast path for emission macros.
inline uint64_t CurrentRequestId() { return internal::g_request.rid; }

/// Binds `context` to the calling thread for the enclosing scope, restoring
/// whatever was bound before on destruction (scopes nest; the serve worker
/// binds per-request, and a session-rebuild underneath keeps the binding).
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(const RequestContext& context)
      : saved_(internal::g_request) {
    internal::g_request = context;
  }
  ~ScopedRequestContext() { internal::g_request = saved_; }

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext saved_;
};

}  // namespace memphis::obs

#endif  // MEMPHIS_OBS_REQUEST_TRACE_H_
