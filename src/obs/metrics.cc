#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace memphis::obs {

namespace {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

// --- Histogram --------------------------------------------------------------

int Histogram::BucketIndex(double value) const {
  if (!(value > 0.0) || value < lowest_) return 0;
  // frexp(v / lowest) = m * 2^e with m in [0.5, 1): v == lowest * 2^i gives
  // m == 0.5, e == i + 1 exactly, so boundaries are lower-inclusive with no
  // rounding slop from a log() call.
  int exponent = 0;
  const double mantissa = std::frexp(value / lowest_, &exponent);
  (void)mantissa;
  const int bucket = exponent - 1;
  if (bucket < 0) return 0;
  if (bucket >= kNumBuckets) return kNumBuckets - 1;
  return bucket;
}

double Histogram::BucketLowerBound(int bucket) const {
  return lowest_ * std::ldexp(1.0, bucket);
}

void Histogram::Record(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
  AtomicMinDouble(&min_, value);
  AtomicMaxDouble(&max_, value);
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::Quantile(double q) const {
  const int64_t n = count();
  if (n == 0) return 0.0;
  // Rank of the q-th sample, 1-based, clamped into [1, n].
  const auto rank = static_cast<int64_t>(std::ceil(q * static_cast<double>(n)));
  int64_t seen = 0;
  for (int bucket = 0; bucket < kNumBuckets; ++bucket) {
    seen += buckets_[bucket].load(std::memory_order_relaxed);
    if (seen >= std::max<int64_t>(1, rank)) return BucketLowerBound(bucket);
  }
  return BucketLowerBound(kNumBuckets - 1);
}

void Histogram::MergeFrom(const Histogram& other) {
  for (int bucket = 0; bucket < kNumBuckets; ++bucket) {
    const int64_t delta =
        other.buckets_[bucket].load(std::memory_order_relaxed);
    if (delta != 0) buckets_[bucket].fetch_add(delta, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  AtomicAddDouble(&sum_, other.sum());
  AtomicMinDouble(&min_, other.min());
  AtomicMaxDouble(&max_, other.max());
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* created = new MetricsRegistry();
    // Lock-rank violations detected by the debug-build sync validator (the
    // counter also ticks in no-abort test mode; see common/sync.h).
    created->RegisterCallback("sync.rank_violations", [] {
      return static_cast<double>(RankViolationCount());
    });
    return created;
  }();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::Slot(const std::string& name) {
  return entries_[name];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  WriterLock lock(mu_);
  Entry& entry = Slot(name);
  if (entry.counter == nullptr) {
    owned_counters_.push_back(std::make_unique<Counter>());
    entry.counter = owned_counters_.back().get();
  }
  return entry.counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  WriterLock lock(mu_);
  Entry& entry = Slot(name);
  if (entry.gauge == nullptr) {
    owned_gauges_.push_back(std::make_unique<Gauge>());
    entry.gauge = owned_gauges_.back().get();
  }
  return entry.gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         double lowest) {
  WriterLock lock(mu_);
  Entry& entry = Slot(name);
  if (entry.histogram == nullptr) {
    owned_histograms_.push_back(std::make_unique<Histogram>(lowest));
    entry.histogram = owned_histograms_.back().get();
  }
  return entry.histogram;
}

void MetricsRegistry::Register(const std::string& name, Counter* counter) {
  WriterLock lock(mu_);
  Slot(name).counter = counter;
}

void MetricsRegistry::Register(const std::string& name, Gauge* gauge) {
  WriterLock lock(mu_);
  Slot(name).gauge = gauge;
}

void MetricsRegistry::Register(const std::string& name, Histogram* histogram) {
  WriterLock lock(mu_);
  Slot(name).histogram = histogram;
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       std::function<double()> fn) {
  WriterLock lock(mu_);
  Slot(name).callback = std::move(fn);
}

size_t MetricsRegistry::size() const {
  ReaderLock lock(mu_);
  return entries_.size();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  // Shared: snapshots (and the callbacks they sample) never mutate the
  // registry, so concurrent exporters don't serialize.
  ReaderLock lock(mu_);
  std::vector<Sample> samples;
  samples.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    Sample sample;
    sample.name = name;
    if (entry.histogram != nullptr) {
      const Histogram& h = *entry.histogram;
      sample.kind = Sample::Kind::kHistogram;
      sample.count = h.count();
      sample.value = h.sum();
      sample.p50 = h.Quantile(0.50);
      sample.p95 = h.Quantile(0.95);
      sample.p99 = h.Quantile(0.99);
      sample.min = sample.count > 0 ? h.min() : 0.0;
      sample.max = sample.count > 0 ? h.max() : 0.0;
    } else if (entry.counter != nullptr) {
      sample.kind = Sample::Kind::kCounter;
      sample.value = static_cast<double>(entry.counter->value());
    } else if (entry.gauge != nullptr) {
      sample.kind = Sample::Kind::kGauge;
      sample.value = entry.gauge->value();
    } else if (entry.callback) {
      sample.kind = Sample::Kind::kCallback;
      sample.value = entry.callback();
    } else {
      continue;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::string MetricsRegistry::ToText() const {
  std::ostringstream oss;
  for (const Sample& sample : Snapshot()) {
    oss << "  " << sample.name << " = ";
    if (sample.kind == Sample::Kind::kHistogram) {
      oss << "count=" << sample.count << " sum=" << sample.value
          << " p50=" << sample.p50 << " p95=" << sample.p95
          << " p99=" << sample.p99;
    } else {
      oss << sample.value;
    }
    oss << "\n";
  }
  return oss.str();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream oss;
  oss << "{";
  bool first = true;
  for (const Sample& sample : Snapshot()) {
    if (!first) oss << ",";
    first = false;
    oss << "\n  \"" << sample.name << "\": ";
    if (sample.kind == Sample::Kind::kHistogram) {
      char buffer[256];
      std::snprintf(buffer, sizeof(buffer),
                    "{\"count\": %lld, \"sum\": %.9g, \"p50\": %.9g, "
                    "\"p95\": %.9g, \"p99\": %.9g, \"min\": %.9g, "
                    "\"max\": %.9g}",
                    static_cast<long long>(sample.count), sample.value,
                    sample.p50, sample.p95, sample.p99, sample.min,
                    sample.max);
      oss << buffer;
    } else {
      char buffer[48];
      std::snprintf(buffer, sizeof(buffer), "%.9g", sample.value);
      oss << buffer;
    }
  }
  oss << "\n}\n";
  return oss.str();
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* file = std::fopen(path.c_str(), "w");  // memphis-lint: allow(raw-io) -- obs export, not durable-tier data
  if (file == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);  // memphis-lint: allow(raw-io) -- obs export, not durable-tier data
  const bool ok = written == json.size() && std::fclose(file) == 0;
  if (written != json.size()) std::fclose(file);
  return ok;
}

void MetricsRegistry::FlushInto(MetricsRegistry* target) const {
  struct HistogramFlush {
    std::string name;
    const Histogram* source;
  };
  std::vector<Sample> samples;
  std::vector<HistogramFlush> histograms;
  {
    ReaderLock lock(mu_);
    for (const auto& [name, entry] : entries_) {
      if (entry.histogram != nullptr) {
        histograms.push_back({name, entry.histogram});
      }
    }
  }
  samples = Snapshot();
  for (const Sample& sample : samples) {
    switch (sample.kind) {
      case Sample::Kind::kCounter:
        target->GetCounter(sample.name)
            ->Add(static_cast<int64_t>(sample.value));
        break;
      case Sample::Kind::kGauge:
        target->GetGauge(sample.name)->Add(sample.value);
        break;
      case Sample::Kind::kCallback:
        target->GetGauge(sample.name)->Set(sample.value);
        break;
      case Sample::Kind::kHistogram:
        break;  // Merged below with full bucket detail.
    }
  }
  for (const HistogramFlush& flush : histograms) {
    target->GetHistogram(flush.name, flush.source->lowest())
        ->MergeFrom(*flush.source);
  }
}

}  // namespace memphis::obs
