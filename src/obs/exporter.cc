#include "obs/exporter.h"

#include "obs/metrics.h"

namespace memphis::obs {

SnapshotExporter& SnapshotExporter::Global() {
  static SnapshotExporter* exporter = new SnapshotExporter();
  return *exporter;
}

bool SnapshotExporter::Start(const std::string& path, double interval_ms) {
  {
    MutexLock lock(mu_);
    if (running_) return false;
    path_ = path;
    interval_ms_ = interval_ms;
    running_ = true;
    stop_ = false;
  }
  if (thread_.joinable()) thread_.join();  // reap a previous Stop'd thread.
  thread_ = std::thread([this] {
    MutexLock lock(mu_);
    while (!stop_) {
      if (interval_ms_ > 0) {
        cv_.WaitFor(&mu_, interval_ms_);
      } else {
        cv_.Wait(&mu_);
      }
      if (stop_) break;
      if (interval_ms_ > 0) ExportLocked();
    }
  });
  return true;
}

void SnapshotExporter::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_ = true;
    cv_.NotifyAll();
  }
  thread_.join();
  MutexLock lock(mu_);
  running_ = false;
  if (!path_.empty()) ExportLocked();
}

bool SnapshotExporter::running() const {
  MutexLock lock(mu_);
  return running_;
}

void SnapshotExporter::OnLateFlush() {
  MutexLock lock(mu_);
  // Only flushes landing after Stop() (path configured, thread gone) are
  // "late"; while running, the next periodic export covers them, and with no
  // exporter configured there is nothing to refresh.
  if (running_ || path_.empty()) return;
  MetricsRegistry::Global().GetCounter("obs.late_flushes")->Add(1);
  ExportLocked();
}

void SnapshotExporter::ExportLocked() {
  // kObsExporter < kMetrics: snapshotting the global registry under mu_ is
  // rank-legal by construction.
  if (MetricsRegistry::Global().WriteJson(path_)) {
    snapshots_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace memphis::obs
