#ifndef MEMPHIS_OBS_JOURNAL_H_
#define MEMPHIS_OBS_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/request_trace.h"

namespace memphis::obs {

/// Reuse-decision journal (DESIGN.md §5h): a lock-free per-thread record of
/// every cache decision the system makes -- probe / hit / miss / put / evict
/// / harvest / promote / warm / shed -- with the tier that answered, the
/// cost score and byte size involved, a reason code, and the request id +
/// tenant of the thread-local RequestContext at emission time. Drained as
/// line-oriented JSON and rendered per request by the memphis_explain CLI.
///
/// Same architecture and cost contract as the trace collector (trace.h):
/// with the journal disabled every MEMPHIS_JOURNAL site costs exactly one
/// relaxed atomic load plus a predictable branch; enabled emission is a
/// lock-free push into the calling thread's ring (registered under the
/// innermost kJournalRegistry rank, so first emission is safe under any
/// lock). Rings overwrite oldest events when full; CollectJournal accounts
/// overwritten events in `dropped` so emitted == collected + dropped holds.
/// Drain (CollectJournal / ResetJournal / WriteJournalJson) only while no
/// thread is emitting.

// --- global switch ----------------------------------------------------------

namespace internal {
extern std::atomic<bool> g_journal_enabled;
}  // namespace internal

/// One relaxed load: the whole cost of a disabled MEMPHIS_JOURNAL site.
inline bool JournalEnabled() {
  return internal::g_journal_enabled.load(std::memory_order_relaxed);
}

void EnableJournal(bool enabled);

/// Ring capacity (events per thread) for rings created *after* this call.
/// Must be a power of two; defaults to 1<<17.
void SetJournalRingCapacity(size_t capacity);

// --- events -----------------------------------------------------------------

enum class JournalKind : uint8_t {
  kProbe,    // LineageCache::Reuse entered (exactly one per stats probe).
  kHit,      // probe answered from a tier (tier says which).
  kMiss,     // probe answered nothing (reason says why, if notable).
  kPut,      // a computed value entered a tier.
  kEvict,    // a value left a tier to make room (reason kQuota) or by d2h.
  kHarvest,  // a session entry was copied up into the shared store / disk.
  kPromote,  // a disk entry was promoted into the host tier on a probe.
  kWarm,     // a shared-store entry was streamed into a session cache.
  kShed,     // the serving layer refused or abandoned a request.
};

enum class JournalTier : uint8_t {
  kNone,
  kHost,
  kScalar,
  kRdd,
  kGpu,
  kDisk,
  kStore,
};

enum class JournalReason : uint8_t {
  kNone,
  kPlaceholder,     // delayed-caching placeholder, not yet materialized.
  kInvalidatedGpu,  // GPU entry dropped by eviction between put and probe.
  kAdmission,       // shed: per-tenant admission quota.
  kQueueFull,       // shed: bounded queue at capacity (or stopping).
  kDeadline,        // shed: deadline expired before a worker picked it up.
  kOversize,        // store put rejected: entry larger than the quota.
  kQuota,           // evicted to fit a byte budget.
  kSessionLocal,    // store put skipped: lineage has session-local leaves.
  kShutdown,        // shed: manager draining at shutdown.
};

/// Stable lowercase names ("probe", "host", "queue-full", ...) used by the
/// JSON export and memphis_explain.
const char* ToString(JournalKind kind);
const char* ToString(JournalTier tier);
const char* ToString(JournalReason reason);

/// POD journal slot. `tenant` must outlive the collector (interned or a
/// literal); it is captured from the thread-local RequestContext.
struct JournalEvent {
  uint64_t rid = 0;
  uint64_t key_hash = 0;  // lineage-key hash; 0 when not key-scoped (sheds).
  double ts_us = 0.0;     // wall us on the trace epoch (TraceNowUs).
  double cost = 0.0;      // compute-cost score where the decision had one.
  double bytes = 0.0;     // payload size where the decision had one.
  JournalKind kind = JournalKind::kProbe;
  JournalTier tier = JournalTier::kNone;
  JournalReason reason = JournalReason::kNone;
  const char* tenant = nullptr;
  int32_t tid = 0;  // filled at collection time from the owning ring.
};

// --- emission (call only when JournalEnabled()) -----------------------------

/// Pushes one decision onto the calling thread's ring, stamping it with the
/// current RequestContext's rid and tenant.
void EmitJournal(JournalKind kind, JournalTier tier, JournalReason reason,
                 uint64_t key_hash, double cost, double bytes);

#define MEMPHIS_JOURNAL(kind, tier, reason, key_hash, cost, bytes)       \
  do {                                                                   \
    if (::memphis::obs::JournalEnabled()) {                              \
      ::memphis::obs::EmitJournal(::memphis::obs::JournalKind::kind,     \
                                  ::memphis::obs::JournalTier::tier,     \
                                  ::memphis::obs::JournalReason::reason, \
                                  key_hash, cost, bytes);                \
    }                                                                    \
  } while (0)

// --- collection / export ----------------------------------------------------

struct JournalSnapshot {
  std::vector<JournalEvent> events;  // Oldest-first per tid.
  uint64_t emitted = 0;
  uint64_t dropped = 0;
};

/// Copies every ring's surviving events. Call while no thread is emitting.
JournalSnapshot CollectJournal();

/// Clears all rings (tests / between bench configurations).
void ResetJournal();

/// Writes the journal as JSON with one event object per line (the format
/// memphis_explain parses):
///   {"memphis_journal":1,"emitted":N,"dropped":N,"events":[
///   {"rid":3,"kind":"probe","tier":"none",...},
///   ...
///   ]}
/// Returns false on I/O failure.
bool WriteJournalJson(const std::string& path);

}  // namespace memphis::obs

#endif  // MEMPHIS_OBS_JOURNAL_H_
