#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/sync.h"

namespace memphis::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

/// One thread's event ring. The owner pushes lock-free (plain slot write +
/// release head store); collection reads under the registry mutex while the
/// system is quiescent.
class TraceRing {
 public:
  TraceRing(int tid, size_t capacity)
      : tid_(tid), capacity_(capacity), slots_(capacity) {}

  void Push(const TraceEvent& event) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    slots_[head & (capacity_ - 1)] = event;
    head_.store(head + 1, std::memory_order_release);
  }

  int tid() const { return tid_; }

  void CollectInto(TraceSnapshot* out) const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t survivors = std::min<uint64_t>(head, capacity_);
    out->emitted += head;
    out->dropped += head - survivors;
    for (uint64_t i = head - survivors; i < head; ++i) {
      TraceEvent event = slots_[i & (capacity_ - 1)];
      event.tid = tid_;
      out->events.push_back(event);
    }
  }

  void Reset() { head_.store(0, std::memory_order_release); }

 private:
  int tid_;
  size_t capacity_;
  std::vector<TraceEvent> slots_;
  std::atomic<uint64_t> head_{0};
};

struct Registry {
  // Innermost rank: a thread's first emission registers its ring from inside
  // arbitrary lock scopes (e.g. a trace instant under a cache shard lock).
  Mutex mu{LockRank::kTraceRegistry, "trace-registry"};
  std::vector<std::shared_ptr<TraceRing>> rings MEMPHIS_GUARDED_BY(mu);
  std::vector<std::string> lane_names MEMPHIS_GUARDED_BY(mu);
  std::unordered_set<std::string> interned MEMPHIS_GUARDED_BY(mu);
  size_t ring_capacity MEMPHIS_GUARDED_BY(mu) = size_t{1} << 17;
  int next_tid MEMPHIS_GUARDED_BY(mu) = 1;
  // Written once at construction, then read locklessly by TraceNowUs.
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

TraceRing& ThreadRing() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mu);
    auto created = std::make_shared<TraceRing>(registry.next_tid++,
                                               registry.ring_capacity);
    registry.rings.push_back(created);
    return created;
  }();
  return *ring;
}

void FillArgs(TraceEvent* event, uint32_t num_args, const TraceArg* args) {
  event->num_args = std::min<uint32_t>(num_args, 3);
  for (uint32_t i = 0; i < event->num_args; ++i) event->args[i] = args[i];
}

/// JSON string escaping for names/categories (quotes, backslashes, control
/// characters); metric names are plain identifiers but RDD labels may not be.
void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out->append(buffer);
    } else {
      out->push_back(c);
    }
  }
}

void AppendEvent(std::string* out, const TraceEvent& event) {
  const bool sim = event.lane >= 0;
  char buffer[96];
  out->append("{\"name\":\"");
  AppendEscaped(out, event.name != nullptr ? event.name : "?");
  out->append("\",\"cat\":\"");
  AppendEscaped(out, event.cat != nullptr ? event.cat : "?");
  out->append("\",\"ph\":\"");
  out->push_back(event.ph);
  out->append("\"");
  std::snprintf(buffer, sizeof(buffer), ",\"ts\":%.3f", event.ts_us);
  out->append(buffer);
  if (event.ph == 'X') {
    std::snprintf(buffer, sizeof(buffer), ",\"dur\":%.3f", event.dur_us);
    out->append(buffer);
  }
  if (event.ph == 'i') out->append(",\"s\":\"t\"");
  std::snprintf(buffer, sizeof(buffer), ",\"pid\":%d,\"tid\":%d",
                sim ? 2 : 1, sim ? event.lane : event.tid);
  out->append(buffer);
  if (event.num_args > 0) {
    out->append(",\"args\":{");
    for (uint32_t i = 0; i < event.num_args; ++i) {
      if (i > 0) out->push_back(',');
      out->push_back('"');
      AppendEscaped(out, event.args[i].key != nullptr ? event.args[i].key
                                                      : "?");
      std::snprintf(buffer, sizeof(buffer), "\":%.6g", event.args[i].value);
      out->append(buffer);
    }
    out->push_back('}');
  }
  out->append("},\n");
}

void AppendMetadata(std::string* out, const char* what, int pid, int tid,
                    const std::string& name) {
  char buffer[64];
  out->append("{\"name\":\"");
  out->append(what);
  std::snprintf(buffer, sizeof(buffer), "\",\"ph\":\"M\",\"pid\":%d", pid);
  out->append(buffer);
  if (tid >= 0) {
    std::snprintf(buffer, sizeof(buffer), ",\"tid\":%d", tid);
    out->append(buffer);
  }
  out->append(",\"args\":{\"name\":\"");
  AppendEscaped(out, name.c_str());
  out->append("\"}},\n");
}

}  // namespace

void EnableTracing(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTraceRingCapacity(size_t capacity) {
  size_t rounded = 1;
  while (rounded < capacity) rounded <<= 1;
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.ring_capacity = std::max<size_t>(8, rounded);
}

double TraceNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - GetRegistry().epoch)
      .count();
}

const char* Intern(const std::string& s) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  return registry.interned.insert(s).first->c_str();
}

void EmitBegin(const char* cat, const char* name, uint32_t num_args,
               const TraceArg* args) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ph = 'B';
  event.ts_us = TraceNowUs();
  FillArgs(&event, num_args, args);
  ThreadRing().Push(event);
}

void EmitEnd(const char* cat, const char* name) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ph = 'E';
  event.ts_us = TraceNowUs();
  ThreadRing().Push(event);
}

void EmitInstant(const char* cat, const char* name, uint32_t num_args,
                 const TraceArg* args) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ph = 'i';
  event.ts_us = TraceNowUs();
  FillArgs(&event, num_args, args);
  ThreadRing().Push(event);
}

void EmitSimSpan(int lane, const char* name, double start_s, double dur_s) {
  TraceEvent event;
  event.name = name;
  event.cat = "sim";
  event.ph = 'X';
  event.lane = lane;
  event.ts_us = start_s * 1e6;
  event.dur_us = dur_s * 1e6;
  ThreadRing().Push(event);
}

int RegisterSimLane(const std::string& name) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.lane_names.push_back(name);
  return static_cast<int>(registry.lane_names.size() - 1);
}

TraceSnapshot CollectTrace() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  TraceSnapshot snapshot;
  for (const auto& ring : registry.rings) ring->CollectInto(&snapshot);
  return snapshot;
}

void ResetTrace() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  for (const auto& ring : registry.rings) ring->Reset();
}

bool WriteChromeTrace(const std::string& path) {
  TraceSnapshot snapshot = CollectTrace();
  // Stable order: by track then timestamp, so per-track streams are
  // contiguous and the B/E repair below is a linear scan.
  std::stable_sort(snapshot.events.begin(), snapshot.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     const int track_a = a.lane >= 0 ? a.lane : -1 - a.tid;
                     const int track_b = b.lane >= 0 ? b.lane : -1 - b.tid;
                     if (track_a != track_b) return track_a < track_b;
                     return a.ts_us < b.ts_us;
                   });

  std::string out;
  out.reserve(snapshot.events.size() * 96 + 4096);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  AppendMetadata(&out, "process_name", 1, -1, "wall-clock");
  AppendMetadata(&out, "process_name", 2, -1, "simulated-time");
  {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mu);
    for (size_t lane = 0; lane < registry.lane_names.size(); ++lane) {
      AppendMetadata(&out, "thread_name", 2, static_cast<int>(lane),
                     registry.lane_names[lane]);
    }
  }

  // Wrap-around repair over the track-contiguous stream: per wall track,
  // drop 'E's with no matching open 'B' and close any 'B' still open when
  // the track's stream ends, keeping timestamps monotone within the track.
  std::vector<TraceEvent> repaired;
  repaired.reserve(snapshot.events.size());
  std::vector<TraceEvent> open_spans;  // Current wall track's B stack.
  bool in_wall_track = false;
  int current_tid = 0;
  double track_last_ts = 0.0;
  auto close_track = [&] {
    while (!open_spans.empty()) {
      TraceEvent end = open_spans.back();
      open_spans.pop_back();
      end.ph = 'E';
      end.num_args = 0;
      end.ts_us = track_last_ts = std::max(track_last_ts, end.ts_us);
      repaired.push_back(end);
    }
    in_wall_track = false;
  };

  for (const TraceEvent& event : snapshot.events) {
    if (event.lane >= 0) {
      if (in_wall_track) close_track();
      repaired.push_back(event);
      continue;
    }
    if (in_wall_track && event.tid != current_tid) close_track();
    if (!in_wall_track) {
      in_wall_track = true;
      current_tid = event.tid;
      track_last_ts = event.ts_us;
    }
    track_last_ts = std::max(track_last_ts, event.ts_us);
    if (event.ph == 'B') {
      open_spans.push_back(event);
    } else if (event.ph == 'E') {
      if (open_spans.empty()) continue;  // Orphan from ring wrap: drop.
      open_spans.pop_back();
    }
    repaired.push_back(event);
  }
  if (in_wall_track) close_track();

  for (const TraceEvent& event : repaired) AppendEvent(&out, event);

  // Trailing dummy instant avoids a dangling comma without tracking state.
  out.append("{\"name\":\"trace-export\",\"cat\":\"obs\",\"ph\":\"i\","
             "\"s\":\"g\",\"ts\":0,\"pid\":1,\"tid\":0}\n]}\n");

  std::FILE* file = std::fopen(path.c_str(), "w");  // memphis-lint: allow(raw-io) -- obs export, not durable-tier data
  if (file == nullptr) return false;
  const size_t written = std::fwrite(out.data(), 1, out.size(), file);  // memphis-lint: allow(raw-io) -- obs export, not durable-tier data
  const bool ok = written == out.size() && std::fclose(file) == 0;
  if (written != out.size()) std::fclose(file);
  return ok;
}

}  // namespace memphis::obs
