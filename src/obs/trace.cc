#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/sync.h"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define MEMPHIS_OBS_TSC 1
#endif

namespace memphis::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

// --- quiescence enforcement -------------------------------------------------
// Every enabled emission registers as mid-flight around its ring push; the
// drain entry points assert the counter is zero. This turns the documented
// "drain only while no thread is emitting" contract into an enforced one.

std::atomic<int64_t> g_quiescence_violations{0};
std::atomic<bool> g_quiescence_abort{true};
std::atomic<void (*)()> g_emission_pause_hook{nullptr};

/// One thread's event ring. The owner pushes lock-free (plain slot write +
/// release head store); collection reads under the registry mutex while the
/// system is quiescent. The ring doubles as the thread's mid-emission
/// marker: a global in-flight counter would put one shared cache line in
/// every emission's path (two contended RMWs per event, which the
/// observer-effect gate in validate_bench.py would reject), whereas the
/// ring's own line is already in the emitting thread's cache. Only the
/// owner writes it, so a relaxed read + release store suffices; the
/// drain-side check sums the markers across all registered rings.
class TraceRing {
 public:
  TraceRing(int tid, size_t capacity)
      : tid_(tid), capacity_(capacity), slots_(capacity) {}

  void Push(const TraceEvent& event) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    slots_[head & (capacity_ - 1)] = event;
    head_.store(head + 1, std::memory_order_release);
  }

  void BeginEmission() {
    mid_emission_.store(mid_emission_.load(std::memory_order_relaxed) + 1,
                        std::memory_order_release);
    if (void (*hook)() = g_emission_pause_hook.load(std::memory_order_acquire))
      hook();
  }

  void EndEmission() {
    mid_emission_.store(mid_emission_.load(std::memory_order_relaxed) - 1,
                        std::memory_order_release);
  }

  int64_t InFlight() const {
    return mid_emission_.load(std::memory_order_acquire);
  }

  int tid() const { return tid_; }

  void CollectInto(TraceSnapshot* out) const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t survivors = std::min<uint64_t>(head, capacity_);
    out->emitted += head;
    out->dropped += head - survivors;
    for (uint64_t i = head - survivors; i < head; ++i) {
      TraceEvent event = slots_[i & (capacity_ - 1)];
      event.tid = tid_;
      out->events.push_back(event);
    }
  }

  void Reset() { head_.store(0, std::memory_order_release); }

 private:
  int tid_;
  size_t capacity_;
  std::vector<TraceEvent> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<int64_t> mid_emission_{0};
};

struct Registry {
  // Innermost rank: a thread's first emission registers its ring from inside
  // arbitrary lock scopes (e.g. a trace instant under a cache shard lock).
  Mutex mu{LockRank::kTraceRegistry, "trace-registry"};
  std::vector<std::shared_ptr<TraceRing>> rings MEMPHIS_GUARDED_BY(mu);
  std::vector<std::string> lane_names MEMPHIS_GUARDED_BY(mu);
  std::unordered_set<std::string> interned MEMPHIS_GUARDED_BY(mu);
  size_t ring_capacity MEMPHIS_GUARDED_BY(mu) = size_t{1} << 17;
  int next_tid MEMPHIS_GUARDED_BY(mu) = 1;
  // Written once at construction, then read locklessly by TraceNowUs.
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  // TSC timebase: a raw rdtsc is ~3x cheaper than steady_clock::now() and
  // the clock sits in every trace AND journal event, so it is the single
  // largest per-event cost. Calibrated once against the steady clock (half
  // a millisecond spin, paid on first registry use -- i.e. only when
  // observability is actually exercised); us_per_tick == 0 means no usable
  // TSC and TraceNowUs falls back to the steady clock.
  uint64_t tsc_epoch = 0;
  double us_per_tick = 0.0;

  Registry() {
#if MEMPHIS_OBS_TSC
    const uint64_t t0 = __rdtsc();
    const auto deadline = epoch + std::chrono::microseconds(500);
    while (std::chrono::steady_clock::now() < deadline) {
    }
    const uint64_t t1 = __rdtsc();
    const auto elapsed = std::chrono::steady_clock::now() - epoch;
    if (t1 > t0) {
      us_per_tick =
          std::chrono::duration<double, std::micro>(elapsed).count() /
          static_cast<double>(t1 - t0);
      tsc_epoch = t0;
    }
#endif
  }
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// RAII mid-emission marker on the calling thread's ring.
class EmissionScope {
 public:
  explicit EmissionScope(TraceRing& ring) : ring_(ring) {
    ring_.BeginEmission();
  }
  ~EmissionScope() { ring_.EndEmission(); }
  EmissionScope(const EmissionScope&) = delete;
  EmissionScope& operator=(const EmissionScope&) = delete;

 private:
  TraceRing& ring_;
};

void CheckQuiescent(const char* what) {
  int64_t in_flight = 0;
  {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mu);
    for (const auto& ring : registry.rings) in_flight += ring->InFlight();
  }  // Released before the caller re-acquires it to drain.
  if (in_flight == 0) return;
  g_quiescence_violations.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr,
               "MEMPHIS TRACE QUIESCENCE VIOLATION: %s called while %lld "
               "emission(s) in flight -- drain only after the pool is idle "
               "(see the contract in src/obs/trace.h)\n",
               what, static_cast<long long>(in_flight));
  std::fflush(stderr);
  if (g_quiescence_abort.load(std::memory_order_relaxed)) std::abort();
}

TraceRing& ThreadRing() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mu);
    auto created = std::make_shared<TraceRing>(registry.next_tid++,
                                               registry.ring_capacity);
    registry.rings.push_back(created);
    return created;
  }();
  return *ring;
}

void FillArgs(TraceEvent* event, uint32_t num_args, const TraceArg* args) {
  event->num_args = std::min<uint32_t>(num_args, 3);
  for (uint32_t i = 0; i < event->num_args; ++i) event->args[i] = args[i];
}

/// JSON string escaping for names/categories (quotes, backslashes, control
/// characters); metric names are plain identifiers but RDD labels may not be.
void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out->append(buffer);
    } else {
      out->push_back(c);
    }
  }
}

void AppendEvent(std::string* out, const TraceEvent& event) {
  const bool sim = event.lane >= 0;
  char buffer[96];
  out->append("{\"name\":\"");
  AppendEscaped(out, event.name != nullptr ? event.name : "?");
  out->append("\",\"cat\":\"");
  AppendEscaped(out, event.cat != nullptr ? event.cat : "?");
  out->append("\",\"ph\":\"");
  out->push_back(event.ph);
  out->append("\"");
  std::snprintf(buffer, sizeof(buffer), ",\"ts\":%.3f", event.ts_us);
  out->append(buffer);
  if (event.ph == 'X') {
    std::snprintf(buffer, sizeof(buffer), ",\"dur\":%.3f", event.dur_us);
    out->append(buffer);
  }
  if (event.ph == 'i') out->append(",\"s\":\"t\"");
  std::snprintf(buffer, sizeof(buffer), ",\"pid\":%d,\"tid\":%d",
                sim ? 2 : 1, sim ? event.lane : event.tid);
  out->append(buffer);
  if (event.num_args > 0 || event.flow_id != 0) {
    out->append(",\"args\":{");
    for (uint32_t i = 0; i < event.num_args; ++i) {
      if (i > 0) out->push_back(',');
      out->push_back('"');
      AppendEscaped(out, event.args[i].key != nullptr ? event.args[i].key
                                                      : "?");
      std::snprintf(buffer, sizeof(buffer), "\":%.6g", event.args[i].value);
      out->append(buffer);
    }
    if (event.flow_id != 0) {
      if (event.num_args > 0) out->push_back(',');
      std::snprintf(buffer, sizeof(buffer), "\"rid\":%llu",
                    static_cast<unsigned long long>(event.flow_id));
      out->append(buffer);
    }
    out->push_back('}');
  }
  out->append("},\n");
}

/// Chrome flow event ('s' start / 't' step) binding the enclosing 'B' slice
/// into the per-request flow: same track and timestamp as the slice it
/// annotates, `id` = the request id.
void AppendFlowEvent(std::string* out, const TraceEvent& event, char ph) {
  char buffer[96];
  out->append("{\"name\":\"request\",\"cat\":\"serve\",\"ph\":\"");
  out->push_back(ph);
  out->append("\"");
  std::snprintf(buffer, sizeof(buffer), ",\"ts\":%.3f", event.ts_us);
  out->append(buffer);
  std::snprintf(buffer, sizeof(buffer), ",\"pid\":1,\"tid\":%d", event.tid);
  out->append(buffer);
  std::snprintf(buffer, sizeof(buffer), ",\"id\":%llu",
                static_cast<unsigned long long>(event.flow_id));
  out->append(buffer);
  if (ph != 's') out->append(",\"bp\":\"e\"");
  out->append("},\n");
}

void AppendMetadata(std::string* out, const char* what, int pid, int tid,
                    const std::string& name) {
  char buffer[64];
  out->append("{\"name\":\"");
  out->append(what);
  std::snprintf(buffer, sizeof(buffer), "\",\"ph\":\"M\",\"pid\":%d", pid);
  out->append(buffer);
  if (tid >= 0) {
    std::snprintf(buffer, sizeof(buffer), ",\"tid\":%d", tid);
    out->append(buffer);
  }
  out->append(",\"args\":{\"name\":\"");
  AppendEscaped(out, name.c_str());
  out->append("\"}},\n");
}

}  // namespace

void EnableTracing(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTraceRingCapacity(size_t capacity) {
  size_t rounded = 1;
  while (rounded < capacity) rounded <<= 1;
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.ring_capacity = std::max<size_t>(8, rounded);
}

double TraceNowUs() {
  Registry& registry = GetRegistry();
#if MEMPHIS_OBS_TSC
  if (registry.us_per_tick > 0.0) {
    return static_cast<double>(__rdtsc() - registry.tsc_epoch) *
           registry.us_per_tick;
  }
#endif
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - registry.epoch)
      .count();
}

const char* Intern(const std::string& s) {
  // Per-thread front cache: emission sites intern the same few names (one
  // per opcode / tenant / RDD) thousands of times, and taking the registry
  // mutex each time serializes the worker pool. The registry still owns the
  // storage, so cached pointers stay valid for the process lifetime.
  thread_local std::unordered_map<std::string, const char*> cache;
  auto it = cache.find(s);
  if (it != cache.end()) return it->second;
  Registry& registry = GetRegistry();
  const char* interned;
  {
    MutexLock lock(registry.mu);
    interned = registry.interned.insert(s).first->c_str();
  }
  cache.emplace(s, interned);
  return interned;
}

void EmitBegin(const char* cat, const char* name, uint32_t num_args,
               const TraceArg* args) {
  EmitBeginFlow(cat, name, 0, num_args, args);
}

void EmitBeginFlow(const char* cat, const char* name, uint64_t flow_id,
                   uint32_t num_args, const TraceArg* args) {
  TraceRing& ring = ThreadRing();
  EmissionScope in_flight(ring);
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ph = 'B';
  event.ts_us = TraceNowUs();
  event.flow_id = flow_id;
  FillArgs(&event, num_args, args);
  ring.Push(event);
}

void EmitEnd(const char* cat, const char* name) {
  TraceRing& ring = ThreadRing();
  EmissionScope in_flight(ring);
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ph = 'E';
  event.ts_us = TraceNowUs();
  ring.Push(event);
}

void EmitInstant(const char* cat, const char* name, uint32_t num_args,
                 const TraceArg* args) {
  EmitInstantFlow(cat, name, 0, num_args, args);
}

void EmitInstantFlow(const char* cat, const char* name, uint64_t flow_id,
                     uint32_t num_args, const TraceArg* args) {
  TraceRing& ring = ThreadRing();
  EmissionScope in_flight(ring);
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ph = 'i';
  event.ts_us = TraceNowUs();
  event.flow_id = flow_id;
  FillArgs(&event, num_args, args);
  ring.Push(event);
}

void EmitSimSpan(int lane, const char* name, double start_s, double dur_s) {
  TraceRing& ring = ThreadRing();
  EmissionScope in_flight(ring);
  TraceEvent event;
  event.name = name;
  event.cat = "sim";
  event.ph = 'X';
  event.lane = lane;
  event.ts_us = start_s * 1e6;
  event.dur_us = dur_s * 1e6;
  ring.Push(event);
}

int RegisterSimLane(const std::string& name) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.lane_names.push_back(name);
  return static_cast<int>(registry.lane_names.size() - 1);
}

TraceSnapshot CollectTrace() {
  CheckQuiescent("CollectTrace");
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  TraceSnapshot snapshot;
  for (const auto& ring : registry.rings) ring->CollectInto(&snapshot);
  return snapshot;
}

void ResetTrace() {
  CheckQuiescent("ResetTrace");
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  for (const auto& ring : registry.rings) ring->Reset();
}

TraceSnapshot CollectTraceForCrash() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  TraceSnapshot snapshot;
  for (const auto& ring : registry.rings) ring->CollectInto(&snapshot);
  return snapshot;
}

int64_t TraceQuiescenceViolations() {
  return g_quiescence_violations.load(std::memory_order_relaxed);
}

void SetTraceQuiescenceAbortForTest(bool abort_on_violation) {
  g_quiescence_abort.store(abort_on_violation, std::memory_order_relaxed);
}

void SetTraceEmissionPauseHookForTest(void (*hook)()) {
  g_emission_pause_hook.store(hook, std::memory_order_release);
}

bool WriteChromeTrace(const std::string& path) {
  TraceSnapshot snapshot = CollectTrace();
  // Stable order: by track then timestamp, so per-track streams are
  // contiguous and the B/E repair below is a linear scan.
  std::stable_sort(snapshot.events.begin(), snapshot.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     const int track_a = a.lane >= 0 ? a.lane : -1 - a.tid;
                     const int track_b = b.lane >= 0 ? b.lane : -1 - b.tid;
                     if (track_a != track_b) return track_a < track_b;
                     return a.ts_us < b.ts_us;
                   });

  std::string out;
  out.reserve(snapshot.events.size() * 96 + 4096);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  AppendMetadata(&out, "process_name", 1, -1, "wall-clock");
  AppendMetadata(&out, "process_name", 2, -1, "simulated-time");
  {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mu);
    for (size_t lane = 0; lane < registry.lane_names.size(); ++lane) {
      AppendMetadata(&out, "thread_name", 2, static_cast<int>(lane),
                     registry.lane_names[lane]);
    }
  }

  // Wrap-around repair over the track-contiguous stream: per wall track,
  // drop 'E's with no matching open 'B' and close any 'B' still open when
  // the track's stream ends, keeping timestamps monotone within the track.
  std::vector<TraceEvent> repaired;
  repaired.reserve(snapshot.events.size());
  std::vector<TraceEvent> open_spans;  // Current wall track's B stack.
  bool in_wall_track = false;
  int current_tid = 0;
  double track_last_ts = 0.0;
  auto close_track = [&] {
    while (!open_spans.empty()) {
      TraceEvent end = open_spans.back();
      open_spans.pop_back();
      end.ph = 'E';
      end.num_args = 0;
      end.ts_us = track_last_ts = std::max(track_last_ts, end.ts_us);
      repaired.push_back(end);
    }
    in_wall_track = false;
  };

  for (const TraceEvent& event : snapshot.events) {
    if (event.lane >= 0) {
      if (in_wall_track) close_track();
      repaired.push_back(event);
      continue;
    }
    if (in_wall_track && event.tid != current_tid) close_track();
    if (!in_wall_track) {
      in_wall_track = true;
      current_tid = event.tid;
      track_last_ts = event.ts_us;
    }
    track_last_ts = std::max(track_last_ts, event.ts_us);
    if (event.ph == 'B') {
      open_spans.push_back(event);
    } else if (event.ph == 'E') {
      if (open_spans.empty()) continue;  // Orphan from ring wrap: drop.
      open_spans.pop_back();
    }
    repaired.push_back(event);
  }
  if (in_wall_track) close_track();

  // Per-request flow linkage: the earliest 'B' span carrying each request id
  // starts the flow ('s'); every later same-id 'B' is a step ('t') bound to
  // its enclosing slice, so Perfetto draws submit -> request -> run arrows
  // across threads.
  std::unordered_map<uint64_t, size_t> flow_start;
  for (size_t i = 0; i < repaired.size(); ++i) {
    const TraceEvent& event = repaired[i];
    if (event.ph != 'B' || event.flow_id == 0 || event.lane >= 0) continue;
    auto [it, inserted] = flow_start.emplace(event.flow_id, i);
    if (!inserted && event.ts_us < repaired[it->second].ts_us) it->second = i;
  }
  for (size_t i = 0; i < repaired.size(); ++i) {
    const TraceEvent& event = repaired[i];
    AppendEvent(&out, event);
    if (event.ph == 'B' && event.flow_id != 0 && event.lane < 0) {
      AppendFlowEvent(&out, event,
                      flow_start[event.flow_id] == i ? 's' : 't');
    }
  }

  // Trailing dummy instant avoids a dangling comma without tracking state.
  out.append("{\"name\":\"trace-export\",\"cat\":\"obs\",\"ph\":\"i\","
             "\"s\":\"g\",\"ts\":0,\"pid\":1,\"tid\":0}\n]}\n");

  std::FILE* file = std::fopen(path.c_str(), "w");  // memphis-lint: allow(raw-io) -- obs export, not durable-tier data
  if (file == nullptr) return false;
  const size_t written = std::fwrite(out.data(), 1, out.size(), file);  // memphis-lint: allow(raw-io) -- obs export, not durable-tier data
  const bool ok = written == out.size() && std::fclose(file) == 0;
  if (written != out.size()) std::fclose(file);
  return ok;
}

}  // namespace memphis::obs
