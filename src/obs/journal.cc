#include "obs/journal.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/sync.h"
#include "obs/trace.h"

namespace memphis::obs {

namespace internal {
std::atomic<bool> g_journal_enabled{false};
}  // namespace internal

namespace {

/// One thread's decision ring; same single-writer discipline as TraceRing
/// (plain slot write + release head store, collection under the registry
/// mutex while the system is quiescent).
class JournalRing {
 public:
  JournalRing(int tid, size_t capacity)
      : tid_(tid), capacity_(capacity), slots_(capacity) {}

  void Push(const JournalEvent& event) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    slots_[head & (capacity_ - 1)] = event;
    head_.store(head + 1, std::memory_order_release);
  }

  void CollectInto(JournalSnapshot* out) const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t survivors = std::min<uint64_t>(head, capacity_);
    out->emitted += head;
    out->dropped += head - survivors;
    for (uint64_t i = head - survivors; i < head; ++i) {
      JournalEvent event = slots_[i & (capacity_ - 1)];
      event.tid = tid_;
      out->events.push_back(event);
    }
  }

  void Reset() { head_.store(0, std::memory_order_release); }

 private:
  int tid_;
  size_t capacity_;
  std::vector<JournalEvent> slots_;
  std::atomic<uint64_t> head_{0};
};

struct Registry {
  // Innermost rank: a thread's first decision registers its ring from inside
  // arbitrary lock scopes (e.g. a probe under a cache shard lock).
  Mutex mu{LockRank::kJournalRegistry, "journal-registry"};
  std::vector<std::shared_ptr<JournalRing>> rings MEMPHIS_GUARDED_BY(mu);
  size_t ring_capacity MEMPHIS_GUARDED_BY(mu) = size_t{1} << 17;
  int next_tid MEMPHIS_GUARDED_BY(mu) = 1;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

JournalRing& ThreadRing() {
  thread_local std::shared_ptr<JournalRing> ring = [] {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mu);
    auto created = std::make_shared<JournalRing>(registry.next_tid++,
                                                 registry.ring_capacity);
    registry.rings.push_back(created);
    return created;
  }();
  return *ring;
}

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out->append(buffer);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

const char* ToString(JournalKind kind) {
  switch (kind) {
    case JournalKind::kProbe: return "probe";
    case JournalKind::kHit: return "hit";
    case JournalKind::kMiss: return "miss";
    case JournalKind::kPut: return "put";
    case JournalKind::kEvict: return "evict";
    case JournalKind::kHarvest: return "harvest";
    case JournalKind::kPromote: return "promote";
    case JournalKind::kWarm: return "warm";
    case JournalKind::kShed: return "shed";
  }
  return "?";
}

const char* ToString(JournalTier tier) {
  switch (tier) {
    case JournalTier::kNone: return "none";
    case JournalTier::kHost: return "host";
    case JournalTier::kScalar: return "scalar";
    case JournalTier::kRdd: return "rdd";
    case JournalTier::kGpu: return "gpu";
    case JournalTier::kDisk: return "disk";
    case JournalTier::kStore: return "store";
  }
  return "?";
}

const char* ToString(JournalReason reason) {
  switch (reason) {
    case JournalReason::kNone: return "none";
    case JournalReason::kPlaceholder: return "placeholder";
    case JournalReason::kInvalidatedGpu: return "invalidated-gpu";
    case JournalReason::kAdmission: return "admission";
    case JournalReason::kQueueFull: return "queue-full";
    case JournalReason::kDeadline: return "deadline";
    case JournalReason::kOversize: return "oversize";
    case JournalReason::kQuota: return "quota";
    case JournalReason::kSessionLocal: return "session-local";
    case JournalReason::kShutdown: return "shutdown";
  }
  return "?";
}

void EnableJournal(bool enabled) {
  internal::g_journal_enabled.store(enabled, std::memory_order_relaxed);
}

void SetJournalRingCapacity(size_t capacity) {
  size_t rounded = 1;
  while (rounded < capacity) rounded <<= 1;
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.ring_capacity = std::max<size_t>(8, rounded);
}

void EmitJournal(JournalKind kind, JournalTier tier, JournalReason reason,
                 uint64_t key_hash, double cost, double bytes) {
  const RequestContext& request = CurrentRequest();
  JournalEvent event;
  event.rid = request.rid;
  event.key_hash = key_hash;
  event.ts_us = TraceNowUs();
  event.cost = cost;
  event.bytes = bytes;
  event.kind = kind;
  event.tier = tier;
  event.reason = reason;
  event.tenant = request.tenant;
  ThreadRing().Push(event);
}

JournalSnapshot CollectJournal() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  JournalSnapshot snapshot;
  for (const auto& ring : registry.rings) ring->CollectInto(&snapshot);
  return snapshot;
}

void ResetJournal() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  for (const auto& ring : registry.rings) ring->Reset();
}

bool WriteJournalJson(const std::string& path) {
  JournalSnapshot snapshot = CollectJournal();
  // Chronological order reads naturally in memphis_explain and diffs stably.
  std::stable_sort(snapshot.events.begin(), snapshot.events.end(),
                   [](const JournalEvent& a, const JournalEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::string out;
  out.reserve(snapshot.events.size() * 160 + 256);
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "{\"memphis_journal\":1,\"emitted\":%llu,\"dropped\":%llu,"
                "\"events\":[\n",
                static_cast<unsigned long long>(snapshot.emitted),
                static_cast<unsigned long long>(snapshot.dropped));
  out.append(buffer);
  for (size_t i = 0; i < snapshot.events.size(); ++i) {
    const JournalEvent& event = snapshot.events[i];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"rid\":%llu,\"ts\":%.3f,\"kind\":\"%s\",\"tier\":\"%s\","
                  "\"reason\":\"%s\",\"key\":\"%016llx\",\"cost\":%.6g,"
                  "\"bytes\":%.6g,\"tid\":%d,\"tenant\":\"",
                  static_cast<unsigned long long>(event.rid), event.ts_us,
                  ToString(event.kind), ToString(event.tier),
                  ToString(event.reason),
                  static_cast<unsigned long long>(event.key_hash), event.cost,
                  event.bytes, event.tid);
    out.append(buffer);
    AppendEscaped(&out, event.tenant != nullptr ? event.tenant : "");
    out.append("\"}");
    if (i + 1 < snapshot.events.size()) out.push_back(',');
    out.push_back('\n');
  }
  out.append("]}\n");
  std::FILE* file = std::fopen(path.c_str(), "w");  // memphis-lint: allow(raw-io) -- obs export, not durable-tier data
  if (file == nullptr) return false;
  const size_t written = std::fwrite(out.data(), 1, out.size(), file);  // memphis-lint: allow(raw-io) -- obs export, not durable-tier data
  const bool ok = written == out.size() && std::fclose(file) == 0;
  if (written != out.size()) std::fclose(file);
  return ok;
}

}  // namespace memphis::obs
