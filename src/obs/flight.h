#ifndef MEMPHIS_OBS_FLIGHT_H_
#define MEMPHIS_OBS_FLIGHT_H_

#include <cstdint>
#include <string>

namespace memphis::obs {

/// Crash flight recorder (DESIGN.md §5h): when the process is about to die
/// for a *diagnosable* reason -- a lock-rank abort, a fuzz-detected
/// divergence, or a fatal signal -- dump the last-N trace events and the
/// journal tail to `memphis_flight_<pid>.json` in the configured directory,
/// so post-mortems of the kill-replay and serve-stress harnesses carry
/// their own evidence instead of requiring a re-run under tracing.
///
/// The dump path is best-effort by design: it drains the trace rings with
/// the crash-path collector (no quiescence assertion; other threads may
/// still be emitting) and, from a signal handler, calls non-async-safe
/// library code -- acceptable for a post-mortem artifact that is the last
/// thing the process does. A process-wide atomic latch serializes dumps and
/// breaks the recursion where dumping itself trips another violation.

/// Arms the recorder: remembers `dir` (created by the caller; "." works),
/// installs the sync-layer rank-violation hook, and registers fatal-signal
/// handlers (SIGSEGV, SIGABRT). Idempotent; last directory wins.
void EnableFlightRecorder(const std::string& dir);

/// Disarms the recorder and uninstalls the rank-violation hook (signal
/// handlers are left restored to default). Tests use this to clean up.
void DisableFlightRecorder();

bool FlightRecorderEnabled();

/// Number of trace/journal events kept in each tail of the dump.
inline constexpr int kFlightTailEvents = 256;

/// Writes `memphis_flight_<pid>.json` now, with `reason` recorded in the
/// header. Returns the path written, or an empty string when the recorder
/// is disabled, a dump is already in progress, or the write failed.
std::string DumpFlightRecord(const char* reason);

/// Total dumps successfully written by this process.
int64_t FlightDumpCount();

}  // namespace memphis::obs

#endif  // MEMPHIS_OBS_FLIGHT_H_
