#ifndef MEMPHIS_OBS_EXPORTER_H_
#define MEMPHIS_OBS_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/sync.h"

namespace memphis::obs {

/// Periodic metrics-snapshot exporter for long-running serve processes
/// (DESIGN.md §5h). A background thread writes MetricsRegistry::Global() as
/// JSON to a configured path every interval, so per-tenant SLO metrics
/// (latency histograms, hit-rate gauges, shed counters) are observable
/// while the process is still running -- not only at exit.
///
/// Also the landing pad for late metric flushes: an ExecutionContext that
/// flushes after SessionManager shutdown (session destroyed by a caller
/// holding the last reference) reports here instead of silently dropping
/// its tenant-labeled entries -- the flush still lands in the global
/// registry, OnLateFlush counts it under "obs.late_flushes", and if a
/// snapshot path is configured the exporter re-exports so the final file
/// includes the late entries.
///
/// Lock placement: mu_ is kObsExporter, immediately below kMetrics, because
/// the export path snapshots the global registry while holding it.
class SnapshotExporter {
 public:
  static SnapshotExporter& Global();

  /// Starts the background thread writing a snapshot to `path` every
  /// `interval_ms` (wall clock). Returns false (and does nothing) if the
  /// exporter is already running. interval_ms <= 0 disables the periodic
  /// timer but still records the path for Stop()'s final snapshot and for
  /// late-flush re-exports.
  bool Start(const std::string& path, double interval_ms);

  /// Stops the thread and writes one final snapshot. Safe when not running.
  void Stop();

  bool running() const;

  /// Called by ExecutionContext::FlushMetricsToGlobal when a session flushes
  /// outside an exporter window (after Stop or before any Start). Counts
  /// "obs.late_flushes" on the global registry and re-exports the snapshot
  /// if a path was ever configured, so late tenant-labeled entries reach the
  /// exported file instead of being dropped.
  void OnLateFlush();

  /// Total snapshots written (periodic + final + late re-exports).
  int64_t snapshots_written() const {
    return snapshots_.load(std::memory_order_relaxed);
  }

 private:
  SnapshotExporter() = default;

  /// Writes one snapshot to the configured path. Caller holds mu_.
  void ExportLocked() MEMPHIS_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kObsExporter, "obs-exporter"};
  CondVar cv_;
  std::thread thread_;
  std::string path_ MEMPHIS_GUARDED_BY(mu_);
  double interval_ms_ MEMPHIS_GUARDED_BY(mu_) = 0.0;
  bool running_ MEMPHIS_GUARDED_BY(mu_) = false;
  bool stop_ MEMPHIS_GUARDED_BY(mu_) = false;
  std::atomic<int64_t> snapshots_{0};
};

}  // namespace memphis::obs

#endif  // MEMPHIS_OBS_EXPORTER_H_
