#include "obs/flight.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/sync.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace memphis::obs {

namespace {

std::atomic<bool> g_enabled{false};
// Directory is published by pointer swap so the crash path never locks; the
// old string is leaked on re-arm (bounded: arming happens O(1) times).
std::atomic<const std::string*> g_dir{nullptr};
std::atomic<bool> g_dump_in_progress{false};
std::atomic<int64_t> g_dumps{0};

void AppendEscaped(std::string* out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out->append(buffer);
    } else {
      out->push_back(c);
    }
  }
}

void RankViolationTrampoline(const char* what) { DumpFlightRecord(what); }

void FatalSignalHandler(int sig) {
  std::signal(sig, SIG_DFL);
  DumpFlightRecord(sig == SIGSEGV ? "fatal-signal-segv"
                                  : "fatal-signal-abrt");
  std::raise(sig);
}

}  // namespace

void EnableFlightRecorder(const std::string& dir) {
  g_dir.store(new std::string(dir.empty() ? "." : dir),
              std::memory_order_release);
  g_enabled.store(true, std::memory_order_release);
  SetRankViolationHook(&RankViolationTrampoline);
  std::signal(SIGSEGV, &FatalSignalHandler);
  std::signal(SIGABRT, &FatalSignalHandler);
}

void DisableFlightRecorder() {
  g_enabled.store(false, std::memory_order_release);
  SetRankViolationHook(nullptr);
  std::signal(SIGSEGV, SIG_DFL);
  std::signal(SIGABRT, SIG_DFL);
}

bool FlightRecorderEnabled() {
  return g_enabled.load(std::memory_order_acquire);
}

int64_t FlightDumpCount() { return g_dumps.load(std::memory_order_relaxed); }

std::string DumpFlightRecord(const char* reason) {
  if (!g_enabled.load(std::memory_order_acquire)) return "";
  // One dump at a time; also breaks recursion if draining trips another
  // violation (the inner call lands here and bails).
  if (g_dump_in_progress.exchange(true, std::memory_order_acq_rel)) return "";

  TraceSnapshot trace = CollectTraceForCrash();
  JournalSnapshot journal = CollectJournal();
  auto by_ts_trace = [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts_us < b.ts_us;
  };
  auto by_ts_journal = [](const JournalEvent& a, const JournalEvent& b) {
    return a.ts_us < b.ts_us;
  };
  std::stable_sort(trace.events.begin(), trace.events.end(), by_ts_trace);
  std::stable_sort(journal.events.begin(), journal.events.end(),
                   by_ts_journal);
  const size_t trace_from =
      trace.events.size() > kFlightTailEvents
          ? trace.events.size() - kFlightTailEvents
          : 0;
  const size_t journal_from =
      journal.events.size() > kFlightTailEvents
          ? journal.events.size() - kFlightTailEvents
          : 0;

  std::string out;
  out.reserve((trace.events.size() - trace_from) * 128 +
              (journal.events.size() - journal_from) * 160 + 512);
  char buffer[192];
  out.append("{\"memphis_flight\":1,\"reason\":\"");
  AppendEscaped(&out, reason != nullptr ? reason : "?");
  std::snprintf(buffer, sizeof(buffer),
                "\",\"pid\":%d,\"ts_us\":%.3f,"
                "\"trace_emitted\":%llu,\"trace_dropped\":%llu,"
                "\"journal_emitted\":%llu,\"journal_dropped\":%llu,\n",
                static_cast<int>(getpid()), TraceNowUs(),
                static_cast<unsigned long long>(trace.emitted),
                static_cast<unsigned long long>(trace.dropped),
                static_cast<unsigned long long>(journal.emitted),
                static_cast<unsigned long long>(journal.dropped));
  out.append(buffer);

  out.append("\"trace_tail\":[\n");
  for (size_t i = trace_from; i < trace.events.size(); ++i) {
    const TraceEvent& event = trace.events[i];
    out.append("{\"name\":\"");
    AppendEscaped(&out, event.name);
    out.append("\",\"cat\":\"");
    AppendEscaped(&out, event.cat);
    std::snprintf(buffer, sizeof(buffer),
                  "\",\"ph\":\"%c\",\"ts\":%.3f,\"lane\":%d,\"tid\":%d,"
                  "\"rid\":%llu}",
                  event.ph, event.ts_us, event.lane, event.tid,
                  static_cast<unsigned long long>(event.flow_id));
    out.append(buffer);
    if (i + 1 < trace.events.size()) out.push_back(',');
    out.push_back('\n');
  }
  out.append("],\n\"journal_tail\":[\n");
  for (size_t i = journal_from; i < journal.events.size(); ++i) {
    const JournalEvent& event = journal.events[i];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"rid\":%llu,\"ts\":%.3f,\"kind\":\"%s\",\"tier\":\"%s\","
                  "\"reason\":\"%s\",\"key\":\"%016llx\",\"cost\":%.6g,"
                  "\"bytes\":%.6g,\"tid\":%d,\"tenant\":\"",
                  static_cast<unsigned long long>(event.rid), event.ts_us,
                  ToString(event.kind), ToString(event.tier),
                  ToString(event.reason),
                  static_cast<unsigned long long>(event.key_hash), event.cost,
                  event.bytes, event.tid);
    out.append(buffer);
    AppendEscaped(&out, event.tenant);
    out.append("\"}");
    if (i + 1 < journal.events.size()) out.push_back(',');
    out.push_back('\n');
  }
  out.append("]}\n");

  const std::string* dir = g_dir.load(std::memory_order_acquire);
  std::string path = (dir != nullptr ? *dir : std::string(".")) +
                     "/memphis_flight_" +
                     std::to_string(static_cast<int>(getpid())) + ".json";
  std::ofstream file(path, std::ios::trunc);
  file << out;
  const bool ok = file.good();
  file.close();
  if (ok) g_dumps.fetch_add(1, std::memory_order_relaxed);
  g_dump_in_progress.store(false, std::memory_order_release);
  return ok ? path : "";
}

}  // namespace memphis::obs
