// memphis_explain: renders a reuse-decision journal (--journal=<file> output,
// obs/journal.h) as per-request decision trees, and verifies the journal's
// structural invariants for CI.
//
// Usage:
//   memphis_explain <journal.json> [--list]          list requests (default)
//   memphis_explain <journal.json> --request <id>    one request's decisions
//   memphis_explain <journal.json> --verify          invariant check (CI)
//
// --verify exits nonzero unless every probe has exactly one hit-or-miss
// outcome (probes == hits + misses) and no ring overwrote events (dropped ==
// 0), i.e. the journal is a complete, explainable record of the run.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Event {
  uint64_t rid = 0;
  double ts = 0.0;
  std::string kind;
  std::string tier;
  std::string reason;
  std::string key;
  double cost = 0.0;
  double bytes = 0.0;
  std::string tenant;
};

// Minimal field extraction over the writer's fixed one-event-per-line format
// (journal.cc's WriteJournalJson); not a general JSON parser.
bool FindString(const std::string& line, const char* field, std::string* out) {
  const std::string needle = std::string("\"") + field + "\":\"";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const size_t begin = at + needle.size();
  std::string value;
  for (size_t i = begin; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      value.push_back(line[++i]);
    } else if (line[i] == '"') {
      *out = std::move(value);
      return true;
    } else {
      value.push_back(line[i]);
    }
  }
  return false;
}

bool FindNumber(const std::string& line, const char* field, double* out) {
  const std::string needle = std::string("\"") + field + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *out = std::strtod(line.c_str() + at + needle.size(), nullptr);
  return true;
}

struct Journal {
  std::vector<Event> events;
  uint64_t emitted = 0;
  uint64_t dropped = 0;
};

bool Load(const std::string& path, Journal* journal) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "memphis_explain: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (!saw_header && line.find("\"memphis_journal\"") != std::string::npos) {
      saw_header = true;
      double value = 0.0;
      if (FindNumber(line, "emitted", &value)) {
        journal->emitted = static_cast<uint64_t>(value);
      }
      if (FindNumber(line, "dropped", &value)) {
        journal->dropped = static_cast<uint64_t>(value);
      }
      continue;
    }
    if (line.rfind("{\"rid\":", 0) != 0) continue;
    Event event;
    double value = 0.0;
    if (!FindNumber(line, "rid", &value)) continue;
    event.rid = static_cast<uint64_t>(value);
    if (FindNumber(line, "ts", &value)) event.ts = value;
    if (FindNumber(line, "cost", &value)) event.cost = value;
    if (FindNumber(line, "bytes", &value)) event.bytes = value;
    FindString(line, "kind", &event.kind);
    FindString(line, "tier", &event.tier);
    FindString(line, "reason", &event.reason);
    FindString(line, "key", &event.key);
    FindString(line, "tenant", &event.tenant);
    journal->events.push_back(std::move(event));
  }
  if (!saw_header) {
    std::fprintf(stderr, "memphis_explain: %s is not a memphis journal\n",
                 path.c_str());
    return false;
  }
  return true;
}

std::string Describe(const Event& event) {
  std::ostringstream out;
  out << event.kind;
  if (event.tier != "none") out << " [" << event.tier << "]";
  if (event.reason != "none") out << " (" << event.reason << ")";
  if (event.cost > 0) out << " cost=" << event.cost;
  if (event.bytes > 0) out << " bytes=" << event.bytes;
  return out.str();
}

std::string ShortKey(const std::string& key) {
  return key.size() > 8 ? key.substr(key.size() - 8) : key;
}

int List(const Journal& journal) {
  struct PerRequest {
    std::string tenant;
    int64_t events = 0, probes = 0, hits = 0, misses = 0, sheds = 0;
  };
  std::map<uint64_t, PerRequest> requests;
  for (const Event& event : journal.events) {
    PerRequest& row = requests[event.rid];
    ++row.events;
    if (!event.tenant.empty()) row.tenant = event.tenant;
    if (event.kind == "probe") ++row.probes;
    if (event.kind == "hit") ++row.hits;
    if (event.kind == "miss") ++row.misses;
    if (event.kind == "shed") ++row.sheds;
  }
  std::printf("%-10s %-16s %8s %8s %8s %8s %8s\n", "rid", "tenant", "events",
              "probes", "hits", "misses", "sheds");
  for (const auto& [rid, row] : requests) {
    std::printf("%-10llu %-16s %8lld %8lld %8lld %8lld %8lld\n",
                static_cast<unsigned long long>(rid),
                row.tenant.empty() ? "-" : row.tenant.c_str(),
                static_cast<long long>(row.events),
                static_cast<long long>(row.probes),
                static_cast<long long>(row.hits),
                static_cast<long long>(row.misses),
                static_cast<long long>(row.sheds));
  }
  std::printf("\n%zu events total (emitted %llu, dropped %llu); rid 0 is "
              "background work\n",
              journal.events.size(),
              static_cast<unsigned long long>(journal.emitted),
              static_cast<unsigned long long>(journal.dropped));
  return 0;
}

int Explain(const Journal& journal, uint64_t rid) {
  std::vector<const Event*> mine;
  for (const Event& event : journal.events) {
    if (event.rid == rid) mine.push_back(&event);
  }
  if (mine.empty()) {
    std::fprintf(stderr, "memphis_explain: no events for request %llu\n",
                 static_cast<unsigned long long>(rid));
    return 1;
  }
  std::stable_sort(mine.begin(), mine.end(),
                   [](const Event* a, const Event* b) { return a->ts < b->ts; });
  const std::string& tenant = [&]() -> const std::string& {
    static const std::string empty;
    for (const Event* event : mine) {
      if (!event->tenant.empty()) return event->tenant;
    }
    return empty;
  }();
  std::printf("request %llu", static_cast<unsigned long long>(rid));
  if (!tenant.empty()) std::printf(" (tenant \"%s\")", tenant.c_str());
  std::printf(": %zu decisions\n", mine.size());

  // Decision tree: each probe owns the outcome (hit/miss) and any follow-up
  // decisions (promote, put) recorded against the same key until the next
  // probe. Non-probe-scoped decisions (shed, warm, harvest, evict) print as
  // their own roots.
  const double t0 = mine.front()->ts;
  for (size_t i = 0; i < mine.size(); ++i) {
    const Event& event = *mine[i];
    const double ms = (event.ts - t0) / 1000.0;
    if (event.kind == "hit" || event.kind == "miss" ||
        event.kind == "promote" || event.kind == "put") {
      // Rendered under their probe (or as orphans below if none preceded).
      bool owned = false;
      for (size_t j = i; j-- > 0;) {
        if (mine[j]->kind == "probe" && mine[j]->key == event.key) {
          owned = true;
          break;
        }
        if (mine[j]->kind == "probe") break;
      }
      if (owned) continue;
    }
    if (event.kind == "probe") {
      std::printf("+%9.3fms  probe key %s\n", ms,
                  ShortKey(event.key).c_str());
      for (size_t j = i + 1; j < mine.size() && mine[j]->kind != "probe";
           ++j) {
        if (mine[j]->key != event.key) continue;
        std::printf("              `- %s\n", Describe(*mine[j]).c_str());
      }
      continue;
    }
    std::printf("+%9.3fms  %s", ms, Describe(event).c_str());
    if (!event.key.empty() && event.key != std::string(16, '0')) {
      std::printf("  key %s", ShortKey(event.key).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int Verify(const Journal& journal) {
  int64_t probes = 0, hits = 0, misses = 0;
  for (const Event& event : journal.events) {
    if (event.kind == "probe") ++probes;
    if (event.kind == "hit") ++hits;
    if (event.kind == "miss") ++misses;
  }
  std::printf("probes=%lld hits=%lld misses=%lld dropped=%llu\n",
              static_cast<long long>(probes), static_cast<long long>(hits),
              static_cast<long long>(misses),
              static_cast<unsigned long long>(journal.dropped));
  if (journal.dropped != 0) {
    std::fprintf(stderr,
                 "verify FAILED: %llu events dropped (ring too small for an "
                 "exact record)\n",
                 static_cast<unsigned long long>(journal.dropped));
    return 1;
  }
  if (probes != hits + misses) {
    std::fprintf(stderr,
                 "verify FAILED: probes (%lld) != hits + misses (%lld) -- a "
                 "probe path is missing its outcome event\n",
                 static_cast<long long>(probes),
                 static_cast<long long>(hits + misses));
    return 1;
  }
  if (static_cast<uint64_t>(journal.events.size()) != journal.emitted) {
    std::fprintf(stderr,
                 "verify FAILED: %zu events in file but %llu emitted\n",
                 journal.events.size(),
                 static_cast<unsigned long long>(journal.emitted));
    return 1;
  }
  std::printf("verify OK: every probe has exactly one outcome\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: memphis_explain <journal.json> "
                 "[--list | --request <id> | --verify]\n");
    return 2;
  }
  Journal journal;
  if (!Load(argv[1], &journal)) return 2;
  if (argc >= 3 && std::strcmp(argv[2], "--request") == 0) {
    if (argc < 4) {
      std::fprintf(stderr, "memphis_explain: --request needs an id\n");
      return 2;
    }
    return Explain(journal, std::strtoull(argv[3], nullptr, 10));
  }
  if (argc >= 3 && std::strcmp(argv[2], "--verify") == 0) {
    return Verify(journal);
  }
  return List(journal);
}
