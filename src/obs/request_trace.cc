#include "obs/request_trace.h"

namespace memphis::obs::internal {

thread_local RequestContext g_request;
std::atomic<uint64_t> g_next_rid{0};

}  // namespace memphis::obs::internal
