#ifndef MEMPHIS_SIM_TIMELINE_H_
#define MEMPHIS_SIM_TIMELINE_H_

#include <algorithm>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace memphis::sim {

/// A single serially-reusable simulated resource (the Spark cluster's job
/// scheduler, one GPU stream, the driver's CPU). Work reserved on a timeline
/// executes in FIFO order; asynchronous callers keep their own clock while
/// the timeline tracks when the resource frees up.
///
/// This is the core of the "virtual time, real data" design (DESIGN.md §5):
/// async operators reserve [start, end) here and hand back `end` as the
/// completion time of a future; waiting on the future max-composes the
/// caller's clock with `end`.
class Timeline {
 public:
  explicit Timeline(std::string name) : name_(std::move(name)) {}

  /// Reserves `duration` simulated seconds, starting no earlier than `now`.
  /// Returns the completion time. `label` (a string literal or interned
  /// string) names the span on this timeline's simulated-time trace lane;
  /// when null the timeline's own name is used.
  double Reserve(double now, double duration, const char* label = nullptr) {
    const double start = std::max(available_at_, now);
    const double end = start + duration;
    available_at_ = end;
    busy_ += duration;
    if (obs::TraceEnabled()) TraceReserve(label, start, duration);
    return end;
  }

  /// Time at which the resource next becomes free.
  double available_at() const { return available_at_; }

  /// Total busy time ever reserved (for utilization reports).
  double busy_time() const { return busy_; }

  const std::string& name() const { return name_; }

  void Reset() {
    available_at_ = 0.0;
    busy_ = 0.0;
  }

 private:
  void TraceReserve(const char* label, double start, double duration);

  std::string name_;
  double available_at_ = 0.0;
  double busy_ = 0.0;
  int trace_lane_ = -1;  // Lazily registered on first traced Reserve().
};

/// Completion handle for an asynchronous simulated operation.
struct SimEvent {
  double ready_at = 0.0;
};

/// A resource that can run up to `lanes` units of work concurrently (the
/// Spark cluster under a FAIR scheduler: several jobs share the executors).
/// Reserve() places the work on the earliest-available lane.
class MultiLaneTimeline {
 public:
  MultiLaneTimeline(std::string name, int lanes)
      : name_(std::move(name)), lanes_(lanes < 1 ? 1 : lanes, 0.0) {}

  double Reserve(double now, double duration, const char* label = nullptr) {
    size_t best = 0;
    for (size_t i = 1; i < lanes_.size(); ++i) {
      if (lanes_[i] < lanes_[best]) best = i;
    }
    const double start = std::max(lanes_[best], now);
    lanes_[best] = start + duration;
    busy_ += duration;
    if (obs::TraceEnabled()) TraceReserve(best, label, start, duration);
    return lanes_[best];
  }

  /// Reserves `duration` on one specific lane (FIFO within that lane). The
  /// serving fabric pins each federated site to a fixed lane so per-site
  /// work serializes on that site's track while sites overlap freely —
  /// unlike Reserve(), which picks the earliest-available lane.
  double ReserveLane(int lane, double now, double duration,
                     const char* label = nullptr) {
    const size_t index =
        static_cast<size_t>(lane < 0 ? 0 : lane) % lanes_.size();
    const double start = std::max(lanes_[index], now);
    lanes_[index] = start + duration;
    busy_ += duration;
    if (obs::TraceEnabled()) TraceReserve(index, label, start, duration);
    return lanes_[index];
  }

  /// Time at which lane `lane` frees up.
  double lane_available_at(int lane) const {
    return lanes_[static_cast<size_t>(lane) % lanes_.size()];
  }

  /// Earliest time any lane frees up.
  double next_available() const {
    double earliest = lanes_[0];
    for (double lane : lanes_) earliest = std::min(earliest, lane);
    return earliest;
  }

  double busy_time() const { return busy_; }
  const std::string& name() const { return name_; }

 private:
  void TraceReserve(size_t lane, const char* label, double start,
                    double duration);

  std::string name_;
  std::vector<double> lanes_;
  double busy_ = 0.0;
  std::vector<int> trace_lanes_;  // Per-lane trace ids, lazily registered.
};

}  // namespace memphis::sim

#endif  // MEMPHIS_SIM_TIMELINE_H_
