#ifndef MEMPHIS_SIM_COST_MODEL_H_
#define MEMPHIS_SIM_COST_MODEL_H_

#include <cstddef>

namespace memphis::sim {

/// Analytic cost model that charges simulated time for every operator,
/// transfer, and management action. Constants are calibrated against the
/// paper's Table 2 (bandwidths), Figure 2(d) (GPU alloc/copy vs. compute),
/// and Figure 11 (interpretation/tracing/probing overheads).
///
/// All rates are "effective" -- they fold in cache effects and framework
/// inefficiency -- so absolute numbers are plausible rather than exact, while
/// *ratios* (the shape of the paper's figures) are preserved.
struct CostModel {
  // --- local CPU (driver) ---------------------------------------------------
  double cpu_gflops = 20.0;           // effective multi-threaded CP rate.
  double cpu_mem_bandwidth = 25e9;    // bytes/s for memory-bound ops.
  double cp_inst_overhead = 2.0e-6;   // interpretation + variable mgmt /inst.
  double trace_overhead = 0.6e-6;     // lineage tracing per instruction.
  double probe_overhead = 1.4e-6;     // cache probe per instruction.
  double probe_overhead_deep = 0.5e-6;  // extra per lineage-DAG level probed
                                        // when compaction is disabled.
  double cache_put_overhead = 1.0e-6;   // metadata insert per PUT.
  double spill_bandwidth = 1.0e9;       // host cache disk spill (bytes/s).

  // --- Spark cluster ----------------------------------------------------------
  double executor_gflops = 10.0;      // per-core effective rate.
  double spark_job_overhead = 30e-3;  // DAGScheduler job launch latency.
  double spark_stage_overhead = 8e-3; // per-stage scheduling latency.
  double spark_task_overhead = 2e-3;  // per-task launch latency.
  double shuffle_bandwidth = 15e9;    // Table 2: 15 GB/s exchange.
  double collect_bandwidth = 1.2e9;   // executors -> driver.
  double broadcast_bandwidth = 1.2e9; // driver -> executors (torrent).
  double rdd_cache_write_bw = 8e9;    // materializing cached partitions.
  double executor_spill_bandwidth = 2e9;  // MEMORY_AND_DISK spill.

  // --- GPU device --------------------------------------------------------------
  double gpu_gflops = 5000.0;         // effective kernel rate.
  double gpu_mem_bandwidth = 400e9;   // device memory bytes/s.
  double gpu_launch_overhead = 4e-6;  // async kernel launch (host side).
  // Calibrated to Figure 2(d): for the reference affine+ReLU kernel
  // (~60 MFLOP, 512 KB output), alloc+free is ~4.6x and the D2H copy ~9x
  // the kernel compute.
  double gpu_malloc_latency = 30e-6;  // cudaMalloc incl. device sync.
  double gpu_free_latency = 25e-6;    // cudaFree incl. device sync.
  double gpu_sync_latency = 15e-6;    // bare synchronization barrier.
  double h2d_bandwidth = 6.1e9;       // Table 2: pageable host-to-device.
  double d2h_bandwidth = 6.1e9;

  /// Time of a local CP operator given its flop and byte footprint: the
  /// roofline max of compute and memory traffic, plus interpreter overhead.
  double CpOpTime(double flops, double bytes) const;

  /// Time of one Spark task over `flops`/`bytes` of one partition.
  double SparkTaskCompute(double flops, double bytes) const;

  /// Shuffle of `bytes` across the cluster.
  double ShuffleTime(double bytes) const;

  /// Collect of `bytes` from executors to the driver.
  double CollectTime(double bytes) const;

  /// Torrent broadcast of `bytes` from driver to all executors.
  double BroadcastTime(double bytes, int num_executors) const;

  /// Device kernel time (no launch overhead) for a GPU operator.
  double GpuKernelTime(double flops, double bytes) const;

  /// Host-to-device / device-to-host transfer times.
  double H2DTime(double bytes) const;
  double D2HTime(double bytes) const;
};

}  // namespace memphis::sim

#endif  // MEMPHIS_SIM_COST_MODEL_H_
