#include "sim/cost_model.h"

#include <algorithm>

namespace memphis::sim {

double CostModel::CpOpTime(double flops, double bytes) const {
  const double compute = flops / (cpu_gflops * 1e9);
  const double memory = bytes / cpu_mem_bandwidth;
  return cp_inst_overhead + std::max(compute, memory);
}

double CostModel::SparkTaskCompute(double flops, double bytes) const {
  const double compute = flops / (executor_gflops * 1e9);
  const double memory = bytes / cpu_mem_bandwidth;
  return std::max(compute, memory);
}

double CostModel::ShuffleTime(double bytes) const {
  return bytes / shuffle_bandwidth;
}

double CostModel::CollectTime(double bytes) const {
  return bytes / collect_bandwidth;
}

double CostModel::BroadcastTime(double bytes, int num_executors) const {
  // Torrent broadcast: the driver seeds 4 MB chunks once; executors then
  // exchange chunks peer-to-peer, so total time grows logarithmically rather
  // than linearly with the number of executors.
  double fanout = 1.0;
  int executors = std::max(1, num_executors);
  while (executors > 1) {
    executors = (executors + 1) / 2;
    fanout += 1.0;
  }
  return bytes / broadcast_bandwidth * fanout * 0.5;
}

double CostModel::GpuKernelTime(double flops, double bytes) const {
  const double compute = flops / (gpu_gflops * 1e9);
  const double memory = bytes / gpu_mem_bandwidth;
  return std::max(compute, memory);
}

double CostModel::H2DTime(double bytes) const {
  return gpu_sync_latency + bytes / h2d_bandwidth;
}

double CostModel::D2HTime(double bytes) const {
  return gpu_sync_latency + bytes / d2h_bandwidth;
}

}  // namespace memphis::sim
