#include "sim/timeline.h"

namespace memphis::sim {

// Cold paths for the tracing branch in Reserve(): lane registration is
// out-of-line so the header's fast path stays one predictable branch.

void Timeline::TraceReserve(const char* label, double start, double duration) {
  if (trace_lane_ < 0) trace_lane_ = obs::RegisterSimLane(name_);
  obs::EmitSimSpan(trace_lane_, label != nullptr ? label : name_.c_str(),
                   start, duration);
}

void MultiLaneTimeline::TraceReserve(size_t lane, const char* label,
                                     double start, double duration) {
  if (trace_lanes_.size() != lanes_.size()) {
    trace_lanes_.assign(lanes_.size(), -1);
  }
  if (trace_lanes_[lane] < 0) {
    trace_lanes_[lane] =
        obs::RegisterSimLane(name_ + "[" + std::to_string(lane) + "]");
  }
  obs::EmitSimSpan(trace_lanes_[lane],
                   label != nullptr ? label : name_.c_str(), start, duration);
}

}  // namespace memphis::sim
