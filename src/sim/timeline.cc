#include "sim/timeline.h"

// Header-only today; translation unit kept so the build target exists and
// future out-of-line additions have a home.
