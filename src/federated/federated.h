#ifndef MEMPHIS_FEDERATED_FEDERATED_H_
#define MEMPHIS_FEDERATED_FEDERATED_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"

namespace memphis::federated {

/// Deeper backend hierarchies (Section 5.4): a federated deployment where
/// each worker is itself a full MEMPHIS system (CP/Spark/GPU backends plus
/// its own hierarchical lineage cache), so "local lineage-based reuse
/// directly applies" at every site — the multi-tenant federated-worker reuse
/// of [19].
///
/// The coordinator partitions data by rows across sites, ships the same
/// program block to every site, and aggregates the named outputs. Sites
/// execute in parallel in virtual time: one federated round costs
/// max(site deltas) + result transfer, on top of the coordinator's clock.
class FederatedCoordinator {
 public:
  /// `config` is cloned per site (each worker has its own caches/backends).
  FederatedCoordinator(int num_sites, const SystemConfig& config,
                       const sim::CostModel& cost_model = {});

  int num_sites() const { return static_cast<int>(sites_.size()); }
  MemphisSystem& site(int index) { return *sites_[index]; }

  /// Row-partitions `value` across the sites and binds shard `i` as
  /// variable `name` at site i (with a stable per-site identity, so
  /// repeated rounds reuse).
  void Distribute(const std::string& name, const MatrixPtr& value);

  /// Binds the same (small) matrix at every site — e.g. model parameters
  /// broadcast each round. `id` is the reuse identity; pass a fresh id when
  /// the contents change (a new model iterate).
  void BroadcastBind(const std::string& name, const MatrixPtr& value,
                     const std::string& id);

  /// One federated round: every site runs its own instance of the block
  /// (instances are built from `builder` on the first round and kept, so
  /// per-site shard shapes compile independently and lineage reuse spans
  /// rounds). Advances the coordinator clock by the slowest site's delta.
  void RunRound(const std::function<std::shared_ptr<compiler::BasicBlock>()>&
                    builder);

  /// Drops the per-site block instances (switch to a different program).
  void ResetProgram() { site_blocks_.clear(); }

  /// Fetches variable `name` from every site to the coordinator (charging
  /// the network transfer) and add-reduces the results.
  MatrixPtr AggregateSum(const std::string& name);

  /// Concatenates the per-site values of `name` by rows (un-partitioning).
  MatrixPtr CollectRows(const std::string& name);

  /// Coordinator's virtual clock (seconds).
  double ElapsedSeconds() const { return now_; }

  /// Total lineage-cache hits across all sites (local reuse evidence).
  int64_t TotalSiteHits() const;

 private:
  /// Advances the coordinator past the parallel execution of one round.
  void JoinSites();

  sim::CostModel cost_model_;
  double now_ = 0.0;
  /// Coordinator <-> site link bandwidth (WAN-ish, below cluster exchange).
  double link_bandwidth_ = 1e9;
  std::vector<std::unique_ptr<MemphisSystem>> sites_;
  std::vector<double> site_marks_;  // Site clock at the last join.
  std::vector<std::shared_ptr<compiler::BasicBlock>> site_blocks_;
};

}  // namespace memphis::federated

#endif  // MEMPHIS_FEDERATED_FEDERATED_H_
