#ifndef MEMPHIS_FEDERATED_FEDERATED_H_
#define MEMPHIS_FEDERATED_FEDERATED_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/system.h"

namespace memphis::obs {
class Counter;
class Gauge;
}  // namespace memphis::obs

namespace memphis::federated {

/// Deeper backend hierarchies (Section 5.4): a federated deployment where
/// each worker is itself a full MEMPHIS system (CP/Spark/GPU backends plus
/// its own hierarchical lineage cache), so "local lineage-based reuse
/// directly applies" at every site — the multi-tenant federated-worker reuse
/// of [19].
///
/// The coordinator partitions data by rows across sites, ships the same
/// program block to every site, and aggregates the named outputs. Sites
/// execute in parallel in virtual time: one federated round costs
/// max(site deltas) + result transfer, on top of the coordinator's clock.
/// Sites may run at different speeds (SetSiteSpeed); a site's contribution
/// to a round's advance is its simulated delta divided by its speed.
///
/// The per-site stepping primitives (EnsureProgram / RunAtSite /
/// SiteDeltaSeconds / MarkSite / FetchFromSite / AdvanceCoordinatorTo) exist
/// for the fabric's stale-bounded round engine (src/fabric/rounds.h), which
/// schedules site work asynchronously but must reproduce this class's exact
/// double-op ordering so its K=0 mode is bitwise-identical to RunRound +
/// AggregateSum.
class FederatedCoordinator {
 public:
  using BlockBuilder = std::function<std::shared_ptr<compiler::BasicBlock>()>;

  /// `config` is cloned per site (each worker has its own caches/backends).
  FederatedCoordinator(int num_sites, const SystemConfig& config,
                       const sim::CostModel& cost_model = {});

  int num_sites() const { return static_cast<int>(sites_.size()); }
  MemphisSystem& site(int index) { return *sites_[index]; }

  /// Row-partitions `value` across the sites and binds shard `i` as
  /// variable `name` at site i (with a stable per-site identity, so
  /// repeated rounds reuse).
  void Distribute(const std::string& name, const MatrixPtr& value);

  /// Binds the same (small) matrix at every site — e.g. model parameters
  /// broadcast each round. `id` is the reuse identity; pass a fresh id when
  /// the contents change (a new model iterate). Re-binding `name` with an
  /// unchanged `id` is a no-op: the sites already hold that exact broadcast,
  /// so no upload is charged and no per-site copy happens.
  void BroadcastBind(const std::string& name, const MatrixPtr& value,
                     const std::string& id);

  /// One federated round: every site runs its own instance of the block
  /// (instances are built from `builder` on the first round and kept, so
  /// per-site shard shapes compile independently and lineage reuse spans
  /// rounds). Advances the coordinator clock by the slowest site's delta.
  void RunRound(const BlockBuilder& builder);

  /// Drops the per-site block instances (switch to a different program) and
  /// every broadcast binding they referenced: stale per-site copies of old
  /// model iterates are removed at each site so the next program starts from
  /// a clean namespace and a re-broadcast under the same name re-ships.
  void ResetProgram();

  /// Fetches variable `name` from every site to the coordinator (charging
  /// the network transfer) and add-reduces the results.
  MatrixPtr AggregateSum(const std::string& name);

  /// Concatenates the per-site values of `name` by rows (un-partitioning).
  MatrixPtr CollectRows(const std::string& name);

  /// Coordinator's virtual clock (seconds).
  double ElapsedSeconds() const { return now_; }

  /// Total lineage-cache hits across all sites (local reuse evidence).
  int64_t TotalSiteHits() const;

  // --- per-site stepping (fabric round engine) -------------------------------

  /// Relative execution speed of site `index` (default 1.0). A site at 0.25
  /// takes 4x the coordinator time for the same simulated work; JoinSites
  /// and SiteDeltaSeconds divide the site's raw delta by its speed.
  void SetSiteSpeed(int index, double speed);
  double site_speed(int index) const { return site_speeds_[index]; }

  /// Builds the per-site block instances from `builder` if not built yet
  /// (the first-round half of RunRound, without running anything).
  void EnsureProgram(const BlockBuilder& builder);

  /// Runs site `index`'s block instance. Does not join: the caller owns the
  /// coordinator-clock accounting via SiteDeltaSeconds/MarkSite.
  void RunAtSite(int index);

  /// Speed-scaled simulated seconds site `index` has run since its last
  /// mark (the coordinator-clock cost of that work).
  double SiteDeltaSeconds(int index) const;

  /// Re-baselines site `index`'s clock mark after the caller accounted for
  /// its delta.
  void MarkSite(int index);

  /// Fetches `name` from one site without charging the federation link; the
  /// caller charges transfer on its own schedule (TransferSeconds).
  MatrixPtr FetchFromSite(int index, const std::string& name);

  /// Coordinator-clock cost of moving `bytes` over the federation link.
  double TransferSeconds(size_t bytes) const {
    return static_cast<double>(bytes) / link_bandwidth_;
  }

  /// Monotonically advances the coordinator clock to `t` (no-op if behind).
  void AdvanceCoordinatorTo(double t) { now_ = std::max(now_, t); }

  /// Every broadcast identity ever bound (in bind order). The fabric store
  /// uses this as the portable-leaf allowlist: an intermediate is
  /// cross-site reusable iff all its extern lineage leaves are broadcasts
  /// (identical at every site), never site shards.
  const std::vector<std::string>& BroadcastHistory() const {
    return broadcast_history_;
  }

 private:
  /// Advances the coordinator past the parallel execution of one round.
  void JoinSites();

  /// Charges `bytes` over the federation link and counts them.
  void ChargeTransfer(size_t bytes);

  sim::CostModel cost_model_;
  double now_ = 0.0;
  /// Coordinator <-> site link bandwidth (WAN-ish, below cluster exchange).
  double link_bandwidth_ = 1e9;
  std::vector<std::unique_ptr<MemphisSystem>> sites_;
  std::vector<double> site_marks_;   // Site clock at the last join.
  std::vector<double> site_speeds_;  // Relative site execution speeds.
  std::vector<int> site_lanes_;      // Sim-trace lane per site (-1 = unset).
  std::vector<std::shared_ptr<compiler::BasicBlock>> site_blocks_;
  /// Current broadcast identity per variable name (re-bind no-op check;
  /// ResetProgram removes these bindings at every site).
  std::unordered_map<std::string, std::string> broadcast_ids_;
  /// All identities ever broadcast (BroadcastHistory).
  std::vector<std::string> broadcast_history_;

  // federated.* metrics (global registry; pointers are stable for the
  // process lifetime).
  obs::Counter* rounds_metric_ = nullptr;
  obs::Counter* transfer_bytes_metric_ = nullptr;
  obs::Counter* broadcast_noop_metric_ = nullptr;
  obs::Gauge* slowest_delta_metric_ = nullptr;
};

}  // namespace memphis::federated

#endif  // MEMPHIS_FEDERATED_FEDERATED_H_
