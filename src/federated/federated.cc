#include "federated/federated.h"

#include <algorithm>

#include "common/status.h"
#include "common/util.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace memphis::federated {

FederatedCoordinator::FederatedCoordinator(int num_sites,
                                           const SystemConfig& config,
                                           const sim::CostModel& cost_model)
    : cost_model_(cost_model) {
  MEMPHIS_CHECK(num_sites > 0);
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(std::make_unique<MemphisSystem>(config, cost_model));
    site_marks_.push_back(0.0);
    site_speeds_.push_back(1.0);
    site_lanes_.push_back(-1);
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  rounds_metric_ = registry.GetCounter("federated.rounds");
  transfer_bytes_metric_ = registry.GetCounter("federated.transfer_bytes");
  broadcast_noop_metric_ =
      registry.GetCounter("federated.broadcast_rebind_noops");
  slowest_delta_metric_ = registry.GetGauge("federated.slowest_site_delta");
}

void FederatedCoordinator::ChargeTransfer(size_t bytes) {
  now_ += TransferSeconds(bytes);
  transfer_bytes_metric_->Add(static_cast<int64_t>(bytes));
}

void FederatedCoordinator::Distribute(const std::string& name,
                                      const MatrixPtr& value) {
  MEMPHIS_CHECK(value != nullptr);
  MEMPHIS_TRACE_SPAN1_REQ("federated", "federated.distribute", "rows",
                          static_cast<double>(value->rows()));
  const size_t rows = value->rows();
  const size_t per_site = std::max<size_t>(1, CeilDiv(rows, sites_.size()));
  for (size_t i = 0; i < sites_.size(); ++i) {
    const size_t lo = std::min(rows, i * per_site);
    const size_t hi = std::min(rows, lo + per_site);
    MatrixPtr shard = lo < hi
                          ? kernels::Slice(*value, lo, hi, 0, value->cols())
                          : MatrixBlock::Create(1, value->cols(), 0.0);
    sites_[i]->ctx().BindMatrixWithId(
        name, shard, "fed:" + name + ":" + std::to_string(i));
    // Shipping the shard to the site happens over the federation link.
    now_ += static_cast<double>(shard->SizeInBytes()) / link_bandwidth_ /
            static_cast<double>(sites_.size());  // Parallel uploads.
    transfer_bytes_metric_->Add(static_cast<int64_t>(shard->SizeInBytes()));
  }
  JoinSites();  // Re-baseline site clocks after the (synchronous) setup.
}

void FederatedCoordinator::BroadcastBind(const std::string& name,
                                         const MatrixPtr& value,
                                         const std::string& id) {
  MEMPHIS_CHECK(value != nullptr);
  auto it = broadcast_ids_.find(name);
  if (it != broadcast_ids_.end() && it->second == id) {
    // The sites already hold this exact broadcast: a same-id re-bind is a
    // no-op (no upload charge, no per-site copy).
    broadcast_noop_metric_->Add(1);
    return;
  }
  // One upload, torrent-shared among the sites.
  ChargeTransfer(value->SizeInBytes());
  for (size_t i = 0; i < sites_.size(); ++i) {
    sites_[i]->ctx().BindMatrixWithId(name, value, id);
  }
  broadcast_ids_[name] = id;
  broadcast_history_.push_back(id);
}

void FederatedCoordinator::EnsureProgram(const BlockBuilder& builder) {
  if (site_blocks_.empty()) {
    for (size_t i = 0; i < sites_.size(); ++i) {
      site_blocks_.push_back(builder());
    }
  }
  MEMPHIS_CHECK_MSG(site_blocks_.size() == sites_.size(),
                    "program/site mismatch; call ResetProgram()");
}

void FederatedCoordinator::RunAtSite(int index) {
  MEMPHIS_CHECK(index >= 0 && index < num_sites());
  MEMPHIS_CHECK_MSG(!site_blocks_.empty(), "EnsureProgram first");
  MEMPHIS_TRACE_SPAN1_REQ("federated", "federated.site_round", "site",
                          static_cast<double>(index));
  const double before = sites_[index]->ElapsedSeconds();
  sites_[index]->Run(*site_blocks_[index]);
  if (obs::TraceEnabled()) {
    // One sim-lane span per site per round, on the site's own virtual
    // clock, so a cross-site request reads as parallel tracks in Perfetto.
    if (site_lanes_[index] < 0) {
      site_lanes_[index] =
          obs::RegisterSimLane("fed.site" + std::to_string(index));
    }
    obs::EmitSimSpan(site_lanes_[index], "federated.round", before,
                     sites_[index]->ElapsedSeconds() - before);
  }
}

void FederatedCoordinator::RunRound(const BlockBuilder& builder) {
  MEMPHIS_TRACE_SPAN_REQ("federated", "federated.run_round");
  EnsureProgram(builder);
  for (size_t i = 0; i < sites_.size(); ++i) {
    RunAtSite(static_cast<int>(i));
  }
  rounds_metric_->Add(1);
  JoinSites();
}

double FederatedCoordinator::SiteDeltaSeconds(int index) const {
  return (sites_[index]->ElapsedSeconds() - site_marks_[index]) /
         site_speeds_[index];
}

void FederatedCoordinator::MarkSite(int index) {
  site_marks_[index] = sites_[index]->ElapsedSeconds();
}

void FederatedCoordinator::SetSiteSpeed(int index, double speed) {
  MEMPHIS_CHECK(index >= 0 && index < num_sites());
  MEMPHIS_CHECK(speed > 0.0);
  site_speeds_[index] = speed;
}

void FederatedCoordinator::ResetProgram() {
  site_blocks_.clear();
  // Drop stale per-site broadcast bindings: the next program must not see
  // (or silently reuse) another program's model iterates.
  for (const auto& [name, id] : broadcast_ids_) {
    (void)id;
    for (auto& site : sites_) {
      site->ctx().RemoveVar(name);
    }
  }
  broadcast_ids_.clear();
}

void FederatedCoordinator::JoinSites() {
  // Sites executed concurrently: the coordinator advances by the slowest
  // site's (speed-scaled) time delta since the previous join.
  double slowest = 0.0;
  for (size_t i = 0; i < sites_.size(); ++i) {
    slowest = std::max(slowest, SiteDeltaSeconds(static_cast<int>(i)));
  }
  now_ += slowest;
  slowest_delta_metric_->Set(slowest);
  for (size_t i = 0; i < sites_.size(); ++i) {
    MarkSite(static_cast<int>(i));
  }
}

MatrixPtr FederatedCoordinator::FetchFromSite(int index,
                                              const std::string& name) {
  MEMPHIS_CHECK(index >= 0 && index < num_sites());
  return sites_[index]->ctx().FetchMatrix(name);
}

MatrixPtr FederatedCoordinator::AggregateSum(const std::string& name) {
  MEMPHIS_TRACE_SPAN_REQ("federated", "federated.aggregate_sum");
  MatrixPtr acc;
  for (auto& site : sites_) {
    MatrixPtr value = site->ctx().FetchMatrix(name);
    ChargeTransfer(value->SizeInBytes());
    acc = acc == nullptr
              ? value
              : kernels::Binary(kernels::BinaryOp::kAdd, *acc, *value);
  }
  JoinSites();  // The fetches synchronized the sites.
  return acc;
}

MatrixPtr FederatedCoordinator::CollectRows(const std::string& name) {
  MEMPHIS_TRACE_SPAN_REQ("federated", "federated.collect_rows");
  MatrixPtr out;
  for (auto& site : sites_) {
    MatrixPtr value = site->ctx().FetchMatrix(name);
    ChargeTransfer(value->SizeInBytes());
    out = out == nullptr ? value : kernels::RBind(*out, *value);
  }
  JoinSites();
  return out;
}

int64_t FederatedCoordinator::TotalSiteHits() const {
  int64_t hits = 0;
  for (const auto& site : sites_) {
    hits += site->ctx().cache().stats().TotalHits();
  }
  return hits;
}

}  // namespace memphis::federated
