#include "federated/federated.h"

#include <algorithm>

#include "common/status.h"
#include "common/util.h"
#include "matrix/kernels.h"

namespace memphis::federated {

FederatedCoordinator::FederatedCoordinator(int num_sites,
                                           const SystemConfig& config,
                                           const sim::CostModel& cost_model)
    : cost_model_(cost_model) {
  MEMPHIS_CHECK(num_sites > 0);
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(std::make_unique<MemphisSystem>(config, cost_model));
    site_marks_.push_back(0.0);
  }
}

void FederatedCoordinator::Distribute(const std::string& name,
                                      const MatrixPtr& value) {
  MEMPHIS_CHECK(value != nullptr);
  const size_t rows = value->rows();
  const size_t per_site = std::max<size_t>(1, CeilDiv(rows, sites_.size()));
  for (size_t i = 0; i < sites_.size(); ++i) {
    const size_t lo = std::min(rows, i * per_site);
    const size_t hi = std::min(rows, lo + per_site);
    MatrixPtr shard = lo < hi
                          ? kernels::Slice(*value, lo, hi, 0, value->cols())
                          : MatrixBlock::Create(1, value->cols(), 0.0);
    sites_[i]->ctx().BindMatrixWithId(
        name, shard, "fed:" + name + ":" + std::to_string(i));
    // Shipping the shard to the site happens over the federation link.
    now_ += static_cast<double>(shard->SizeInBytes()) / link_bandwidth_ /
            static_cast<double>(sites_.size());  // Parallel uploads.
  }
  JoinSites();  // Re-baseline site clocks after the (synchronous) setup.
}

void FederatedCoordinator::BroadcastBind(const std::string& name,
                                         const MatrixPtr& value,
                                         const std::string& id) {
  MEMPHIS_CHECK(value != nullptr);
  // One upload, torrent-shared among the sites.
  now_ += static_cast<double>(value->SizeInBytes()) / link_bandwidth_;
  for (size_t i = 0; i < sites_.size(); ++i) {
    sites_[i]->ctx().BindMatrixWithId(name, value, id);
  }
}

void FederatedCoordinator::RunRound(
    const std::function<std::shared_ptr<compiler::BasicBlock>()>& builder) {
  if (site_blocks_.empty()) {
    for (size_t i = 0; i < sites_.size(); ++i) {
      site_blocks_.push_back(builder());
    }
  }
  MEMPHIS_CHECK_MSG(site_blocks_.size() == sites_.size(),
                    "program/site mismatch; call ResetProgram()");
  for (size_t i = 0; i < sites_.size(); ++i) {
    sites_[i]->Run(*site_blocks_[i]);
  }
  JoinSites();
}

void FederatedCoordinator::JoinSites() {
  // Sites executed concurrently: the coordinator advances by the slowest
  // site's time delta since the previous join.
  double slowest = 0.0;
  for (size_t i = 0; i < sites_.size(); ++i) {
    slowest = std::max(slowest, sites_[i]->ElapsedSeconds() - site_marks_[i]);
  }
  now_ += slowest;
  for (size_t i = 0; i < sites_.size(); ++i) {
    site_marks_[i] = sites_[i]->ElapsedSeconds();
  }
}

MatrixPtr FederatedCoordinator::AggregateSum(const std::string& name) {
  MatrixPtr acc;
  for (auto& site : sites_) {
    MatrixPtr value = site->ctx().FetchMatrix(name);
    now_ += static_cast<double>(value->SizeInBytes()) / link_bandwidth_;
    acc = acc == nullptr
              ? value
              : kernels::Binary(kernels::BinaryOp::kAdd, *acc, *value);
  }
  JoinSites();  // The fetches synchronized the sites.
  return acc;
}

MatrixPtr FederatedCoordinator::CollectRows(const std::string& name) {
  MatrixPtr out;
  for (auto& site : sites_) {
    MatrixPtr value = site->ctx().FetchMatrix(name);
    now_ += static_cast<double>(value->SizeInBytes()) / link_bandwidth_;
    out = out == nullptr ? value : kernels::RBind(*out, *value);
  }
  JoinSites();
  return out;
}

int64_t FederatedCoordinator::TotalSiteHits() const {
  int64_t hits = 0;
  for (const auto& site : sites_) {
    hits += site->ctx().cache().stats().TotalHits();
  }
  return hits;
}

}  // namespace memphis::federated
