#include "compiler/linearize.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"

namespace memphis::compiler {

namespace {

/// Iterative post-order DFS from `root`, appending unvisited hops to `out`.
void DepthFirst(const HopPtr& root, std::unordered_set<int>* visited,
                std::vector<HopPtr>* out) {
  std::vector<std::pair<HopPtr, size_t>> stack{{root, 0}};
  while (!stack.empty()) {
    auto& [hop, next_child] = stack.back();
    if (visited->count(hop->id()) != 0) {
      stack.pop_back();
      continue;
    }
    if (next_child < hop->inputs().size()) {
      HopPtr child = hop->inputs()[next_child];
      ++next_child;
      if (visited->count(child->id()) == 0) stack.emplace_back(child, 0);
    } else {
      visited->insert(hop->id());
      out->push_back(hop);
      stack.pop_back();
    }
  }
}

bool IsRemoteChainRoot(const Hop& hop) {
  // Spark actions (collect), prefetch-wrapped actions, and GPU-to-host
  // copies are the roots of remote operator chains (Section 5.3).
  return hop.opcode() == "collect" || hop.opcode() == "d2h";
}

/// Number of hops of `backend` in the (unvisited) subtree of `root`.
int CountBackendOps(const HopPtr& root, Backend backend) {
  int count = 0;
  std::unordered_set<int> seen;
  std::vector<HopPtr> stack{root};
  while (!stack.empty()) {
    HopPtr hop = stack.back();
    stack.pop_back();
    if (!seen.insert(hop->id()).second) continue;
    if (hop->backend() == backend) ++count;
    for (const auto& input : hop->inputs()) stack.push_back(input);
  }
  return count;
}

}  // namespace

std::string Instruction::DebugString() const {
  std::ostringstream oss;
  oss << ToString(backend) << " " << opcode;
  if (!var_name.empty()) oss << " '" << var_name << "'";
  oss << " (";
  for (size_t i = 0; i < input_slots.size(); ++i) {
    oss << (i > 0 ? "," : "") << input_slots[i];
  }
  oss << ") -> " << output_slot;
  if (async) oss << " [async]";
  return oss.str();
}

std::vector<HopPtr> LinearizeDepthFirst(const std::vector<HopPtr>& outputs) {
  std::vector<HopPtr> order;
  std::unordered_set<int> visited;
  for (const auto& output : outputs) DepthFirst(output, &visited, &order);
  return order;
}

std::vector<HopPtr> LinearizeMaxParallelize(
    const std::vector<HopPtr>& outputs) {
  // Step 0: collect every hop, and bail out to depth-first when the DAG has
  // no remote operators at all (Algorithm 2 line 1).
  std::vector<HopPtr> all;
  {
    std::unordered_set<int> seen;
    for (const auto& output : outputs) DepthFirst(output, &seen, &all);
  }
  const bool has_remote =
      std::any_of(all.begin(), all.end(), [](const HopPtr& hop) {
        return hop->backend() != Backend::kCP;
      });
  if (!has_remote) return LinearizeDepthFirst(outputs);

  // Step 1: identify chain roots and count their Spark/GPU operators.
  std::vector<std::pair<int, HopPtr>> roots;  // (op count, root).
  for (const auto& hop : all) {
    if (!IsRemoteChainRoot(*hop)) continue;
    const Backend chain_backend =
        hop->opcode() == "collect" ? Backend::kSpark : Backend::kGpu;
    roots.emplace_back(CountBackendOps(hop, chain_backend), hop);
  }

  // Step 2: longer chains first -- they overlap with more later work.
  std::stable_sort(roots.begin(), roots.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });

  std::vector<HopPtr> order;
  std::unordered_set<int> visited;
  for (const auto& [count, root] : roots) DepthFirst(root, &visited, &order);

  // Step 3: the remaining local operators, depth-first.
  for (const auto& output : outputs) DepthFirst(output, &visited, &order);
  return order;
}

std::vector<Instruction> EmitInstructions(
    const std::vector<HopPtr>& order, const std::vector<HopPtr>& outputs,
    const std::vector<std::string>& output_names) {
  std::unordered_map<int, int> slot_of;
  slot_of.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    slot_of[order[i]->id()] = static_cast<int>(i);
  }
  // A hop can carry several output names: CSE folds duplicate output
  // expressions into one node, and `y = x;` binds an output to a read.
  std::unordered_map<int, std::vector<std::string>> bound_names;
  for (size_t i = 0; i < outputs.size(); ++i) {
    std::vector<std::string>& names = bound_names[outputs[i]->id()];
    if (std::find(names.begin(), names.end(), output_names[i]) ==
        names.end()) {
      names.push_back(output_names[i]);
    }
  }

  std::vector<Instruction> instructions;
  instructions.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const HopPtr& hop = order[i];
    Instruction inst;
    inst.backend = hop->backend();
    inst.opcode = hop->opcode();
    inst.output_slot = static_cast<int>(i);
    inst.args = hop->args();
    inst.async = hop->asynchronous();
    inst.nondeterministic = hop->nondeterministic();
    inst.nonce = hop->nonce();
    inst.flops = hop->flops();
    inst.out_shape = hop->shape();
    inst.fused = hop->fused_plan();
    inst.hop_id = hop->id();
    inst.source_line = hop->source_line();
    inst.origin_pass = hop->origin_pass();
    for (const auto& input : hop->inputs()) {
      auto it = slot_of.find(input->id());
      MEMPHIS_CHECK_MSG(it != slot_of.end(),
                        "linearization missed a hop input");
      inst.input_slots.push_back(it->second);
    }
    if (hop->opcode() == "read") inst.var_name = hop->var_name();
    if (auto it = bound_names.find(hop->id()); it != bound_names.end()) {
      inst.output_var = it->second.front();
      inst.extra_output_vars.assign(it->second.begin() + 1,
                                    it->second.end());
    }
    instructions.push_back(std::move(inst));
  }
  return instructions;
}

}  // namespace memphis::compiler
