#include "compiler/fusion.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "compiler/linearize.h"

namespace memphis::compiler {

namespace {

using kernels::BinaryOp;
using kernels::TileInput;
using kernels::TileOp;
using kernels::TileOpKind;
using kernels::TileReduce;
using kernels::TileRef;
using kernels::UnaryOp;

// --- cost model constants ---------------------------------------------------
// Costs are in element units. Materializing a shared intermediate pays one
// write plus one read per consuming group; duplicating it pays its flops once
// per extra group, weighted by kDupPenalty (recomputation occupies the very
// compute lanes fusion is trying to keep busy, and re-reads the chain's
// inputs). Short cheap chains duplicate; anything longer materializes.
constexpr double kDupPenalty = 2.0;
/// Exhaustive materialize-vs-duplicate enumeration bound: beyond this many
/// shared intermediates every one of them is materialized (2^8 plans is the
/// most the compiler should spend on one block).
constexpr size_t kMaxSharedEnum = 8;

bool SameShape(const Shape& a, const Shape& b) {
  return a.rows == b.rows && a.cols == b.cols;
}

const BinaryOp* FindBinary(const std::string& opcode) {
  static const std::unordered_map<std::string, BinaryOp> kTable = {
      {"+", BinaryOp::kAdd},        {"-", BinaryOp::kSub},
      {"*", BinaryOp::kMul},        {"/", BinaryOp::kDiv},
      {"min", BinaryOp::kMin},      {"max", BinaryOp::kMax},
      {"^", BinaryOp::kPow},        {">", BinaryOp::kGreater},
      {">=", BinaryOp::kGreaterEq}, {"<", BinaryOp::kLess},
      {"<=", BinaryOp::kLessEq},    {"==", BinaryOp::kEq},
      {"!=", BinaryOp::kNeq},
  };
  auto it = kTable.find(opcode);
  return it == kTable.end() ? nullptr : &it->second;
}

const UnaryOp* FindUnary(const std::string& opcode) {
  static const std::unordered_map<std::string, UnaryOp> kTable = {
      {"exp", UnaryOp::kExp},     {"log", UnaryOp::kLog},
      {"sqrt", UnaryOp::kSqrt},   {"abs", UnaryOp::kAbs},
      {"sign", UnaryOp::kSign},   {"round", UnaryOp::kRound},
      {"floor", UnaryOp::kFloor}, {"ceil", UnaryOp::kCeil},
      {"neg", UnaryOp::kNeg},     {"sigmoid", UnaryOp::kSigmoid},
  };
  auto it = kTable.find(opcode);
  return it == kTable.end() ? nullptr : &it->second;
}

TileReduce FindReduce(const std::string& opcode) {
  if (opcode == "sum") return TileReduce::kSum;
  if (opcode == "mean") return TileReduce::kMean;
  if (opcode == "min_agg") return TileReduce::kMin;
  if (opcode == "max_agg") return TileReduce::kMax;
  return TileReduce::kNone;
}

enum class FuseKind { kNone, kElementwise, kReduce };

/// Whether `hop` may participate in a fused group at all. Shape constraints
/// mirror kernels::Binary's broadcasting rules exactly, so any chain the
/// unfused kernels would reject (shape error at runtime) is never fused and
/// still throws identically.
FuseKind Classify(const Hop& hop) {
  if (hop.backend() != Backend::kCP || hop.nondeterministic() ||
      hop.nonce() != 0 || hop.asynchronous() || !hop.args().empty()) {
    return FuseKind::kNone;
  }
  const Shape& out = hop.shape();
  if (FindReduce(hop.opcode()) != TileReduce::kNone) {
    if (hop.inputs().size() != 1) return FuseKind::kNone;
    if (hop.inputs()[0]->shape().Cells() == 0) return FuseKind::kNone;
    if (out.Cells() != 1) return FuseKind::kNone;
    return FuseKind::kReduce;
  }
  if (out.Cells() == 0) return FuseKind::kNone;
  if (FindUnary(hop.opcode()) != nullptr) {
    if (hop.inputs().size() != 1) return FuseKind::kNone;
    if (!SameShape(hop.inputs()[0]->shape(), out)) return FuseKind::kNone;
    return FuseKind::kElementwise;
  }
  if (FindBinary(hop.opcode()) != nullptr) {
    if (hop.inputs().size() != 2) return FuseKind::kNone;
    const Shape& a = hop.inputs()[0]->shape();
    const Shape& b = hop.inputs()[1]->shape();
    if (a.Cells() == 0 || b.Cells() == 0) return FuseKind::kNone;
    if (SameShape(a, out)) {
      if (SameShape(b, out) || b.Cells() == 1 ||
          (b.rows == 1 && b.cols == out.cols) ||
          (b.cols == 1 && b.rows == out.rows)) {
        return FuseKind::kElementwise;
      }
      return FuseKind::kNone;
    }
    // Scalar-left: (1x1) op matrix.
    if (a.Cells() == 1 && SameShape(b, out)) return FuseKind::kElementwise;
    return FuseKind::kNone;
  }
  return FuseKind::kNone;
}

/// How an external input broadcasts against the group's elementwise domain.
TileInput ClassifyInput(const Shape& s, const Shape& domain) {
  if (SameShape(s, domain)) return TileInput::kFull;
  if (s.Cells() == 1) return TileInput::kScalar;
  if (s.rows == 1 && s.cols == domain.cols) return TileInput::kRow;
  MEMPHIS_CHECK_MSG(s.cols == 1 && s.rows == domain.rows,
                    "fused external input has no broadcast shape");
  return TileInput::kCol;
}

/// State shared by the pass helpers.
struct FusionCtx {
  std::vector<HopPtr> order;                       // Depth-first topo order.
  std::unordered_map<int, size_t> order_index;     // hop id -> position.
  std::unordered_map<int, FuseKind> kind;          // hop id -> fusability.
  std::unordered_map<int, std::vector<Hop*>> consumers;  // producer id -> c.
  std::unordered_set<int> output_ids;              // output-bound hops.

  FuseKind KindOf(const Hop& hop) const {
    auto it = kind.find(hop.id());
    return it == kind.end() ? FuseKind::kNone : it->second;
  }
};

/// An edge producer -> consumer stays inside one group iff the producer is an
/// elementwise op over the consumer's domain. Broadcast-shaped operands and
/// reduce results never travel through registers; they stay materialized.
bool InternalEdge(const FusionCtx& ctx, const Hop& p, const Hop& c) {
  if (ctx.KindOf(p) != FuseKind::kElementwise) return false;
  switch (ctx.KindOf(c)) {
    case FuseKind::kNone:
      return false;
    case FuseKind::kReduce:
      return true;  // Domain is the reduce input's own shape.
    case FuseKind::kElementwise:
      return SameShape(p.shape(), c.shape());
  }
  return false;
}

/// Fixed materialization points: output-bound nodes, nodes with any
/// non-fusable consumer edge, dead ends, and loop-invariant nodes feeding
/// loop-dependent consumers (their value is reusable across iterations, so
/// swallowing them would forfeit cache hits; Section 5.2's reuse story is
/// why fused groups cannot be greedy).
bool BaseExposed(const FusionCtx& ctx, const HopPtr& p) {
  if (ctx.KindOf(*p) != FuseKind::kElementwise) return true;
  if (ctx.output_ids.count(p->id()) != 0) return true;
  auto it = ctx.consumers.find(p->id());
  if (it == ctx.consumers.end() || it->second.empty()) return true;
  for (const Hop* c : it->second) {
    if (!InternalEdge(ctx, *p, *c)) return true;
    if (!p->loop_dependent() && c->loop_dependent()) return true;
  }
  return false;
}

/// Interior members of the group rooted at `root`: the non-exposed producers
/// reachable through internal edges. Excludes the root itself.
std::vector<HopPtr> ReachInteriors(
    const FusionCtx& ctx, const HopPtr& root,
    const std::unordered_set<int>& exposed) {
  std::vector<HopPtr> members;
  std::unordered_set<int> seen{root->id()};
  std::vector<HopPtr> stack{root};
  while (!stack.empty()) {
    HopPtr c = stack.back();
    stack.pop_back();
    for (const HopPtr& p : c->inputs()) {
      if (exposed.count(p->id()) != 0 || !InternalEdge(ctx, *p, *c)) continue;
      if (!seen.insert(p->id()).second) continue;
      members.push_back(p);
      stack.push_back(p);
    }
  }
  return members;
}

/// Group roots under an exposure assignment: exposed fusable nodes (reduce
/// nodes are always exposed) with at least one swallowable producer.
std::vector<HopPtr> FindRoots(const FusionCtx& ctx,
                              const std::unordered_set<int>& exposed) {
  std::vector<HopPtr> roots;
  for (const HopPtr& hop : ctx.order) {
    const FuseKind k = ctx.KindOf(*hop);
    if (k == FuseKind::kNone) continue;
    if (k == FuseKind::kElementwise && exposed.count(hop->id()) == 0) {
      continue;
    }
    if (!ReachInteriors(ctx, hop, exposed).empty()) roots.push_back(hop);
  }
  return roots;
}

/// How many groups reach each interior node under `exposed`.
std::unordered_map<int, int> ReachCounts(
    const FusionCtx& ctx, const std::unordered_set<int>& exposed) {
  std::unordered_map<int, int> counts;
  for (const HopPtr& root : FindRoots(ctx, exposed)) {
    for (const HopPtr& m : ReachInteriors(ctx, root, exposed)) {
      ++counts[m->id()];
    }
  }
  return counts;
}

/// Builds the FusedPlan for `root` and mutates it into a "fused" hop.
void BuildGroup(const FusionCtx& ctx, const HopPtr& root,
                const std::unordered_set<int>& exposed) {
  std::vector<HopPtr> members = ReachInteriors(ctx, root, exposed);
  if (members.empty()) return;
  const bool reducing = ctx.KindOf(*root) == FuseKind::kReduce;

  // Topological member order = depth-first order; inputs precede consumers,
  // so the root sorts last.
  members.push_back(root);
  std::sort(members.begin(), members.end(),
            [&](const HopPtr& a, const HopPtr& b) {
              return ctx.order_index.at(a->id()) <
                     ctx.order_index.at(b->id());
            });
  MEMPHIS_CHECK(members.back()->id() == root->id());

  const Shape domain =
      reducing ? root->inputs()[0]->shape() : root->shape();
  // Elementwise members get registers 0..n-1 in member order; a reduce root
  // has no register (it folds a register or external directly).
  const size_t num_regs = members.size() - (reducing ? 1 : 0);
  std::unordered_map<int, int> reg_of;
  for (size_t i = 0; i < num_regs; ++i) {
    reg_of[members[i]->id()] = static_cast<int>(i);
  }

  auto plan = std::make_shared<FusedPlan>();
  std::vector<HopPtr> externals;
  std::unordered_map<int, int> ext_of;
  auto resolve = [&](const HopPtr& hop) {
    TileRef ref;
    if (auto it = reg_of.find(hop->id()); it != reg_of.end()) {
      ref.external = false;
      ref.index = it->second;
      return ref;
    }
    ref.external = true;
    if (auto it = ext_of.find(hop->id()); it != ext_of.end()) {
      ref.index = it->second;
      return ref;
    }
    ref.index = static_cast<int>(externals.size());
    ext_of[hop->id()] = ref.index;
    externals.push_back(hop);
    plan->program.inputs.push_back(ClassifyInput(hop->shape(), domain));
    return ref;
  };

  plan->program.rows = domain.rows;
  plan->program.cols = domain.cols;
  for (const HopPtr& m : members) {
    FusedOpRecipe recipe;
    recipe.opcode = m->opcode();
    recipe.args = m->args();
    recipe.flops = m->flops();
    recipe.out_shape = m->shape();
    for (const HopPtr& in : m->inputs()) {
      recipe.inputs.push_back(resolve(in));
    }
    plan->total_flops += m->flops();
    if (reducing && m->id() == root->id()) {
      plan->program.reduce = FindReduce(m->opcode());
      plan->program.reduce_input = recipe.inputs[0];
    } else {
      TileOp op;
      if (const BinaryOp* bop = FindBinary(m->opcode())) {
        op.kind = TileOpKind::kBinary;
        op.binary_op = *bop;
        op.lhs = recipe.inputs[0];
        op.rhs = recipe.inputs[1];
      } else {
        const UnaryOp* uop = FindUnary(m->opcode());
        MEMPHIS_CHECK_MSG(uop != nullptr, "unexpected fused member opcode");
        op.kind = TileOpKind::kUnary;
        op.unary_op = *uop;
        op.lhs = recipe.inputs[0];
      }
      plan->program.ops.push_back(op);
    }
    plan->recipes.push_back(std::move(recipe));
  }
  plan->num_inputs = externals.size();
  MEMPHIS_CHECK_MSG(!externals.empty(), "fused group with no external input");

  root->set_flops(plan->total_flops);
  root->set_fused_plan(std::move(plan));
  root->MutateTo("fused", std::move(externals), "fusion");
}

}  // namespace

std::string FusedPlan::DebugString() const {
  std::ostringstream oss;
  oss << "fused{" << program.DebugString() << " [";
  for (size_t i = 0; i < recipes.size(); ++i) {
    oss << (i > 0 ? " " : "") << recipes[i].opcode;
  }
  oss << "]}";
  return oss.str();
}

void FuseOperators(const std::vector<HopPtr>& outputs,
                   const SystemConfig& config) {
  (void)config;
  FusionCtx ctx;
  ctx.order = LinearizeDepthFirst(outputs);
  for (size_t i = 0; i < ctx.order.size(); ++i) {
    const HopPtr& hop = ctx.order[i];
    ctx.order_index[hop->id()] = i;
    ctx.kind[hop->id()] = Classify(*hop);
    for (const HopPtr& in : hop->inputs()) {
      ctx.consumers[in->id()].push_back(hop.get());
    }
  }
  for (const HopPtr& out : outputs) ctx.output_ids.insert(out->id());

  // Fixed materialization points.
  std::unordered_set<int> exposed;
  for (const HopPtr& hop : ctx.order) {
    if (BaseExposed(ctx, hop)) exposed.insert(hop->id());
  }

  // Shared interiors -- nodes reachable from more than one group -- are the
  // only free choice: materialize (exposing them splits the groups there) or
  // duplicate (each group recomputes them). Enumerate every assignment and
  // keep the cheapest; ties prefer materializing (the extra copy is also a
  // reuse point).
  std::vector<HopPtr> shared;
  {
    std::unordered_map<int, int> counts = ReachCounts(ctx, exposed);
    for (const HopPtr& hop : ctx.order) {
      auto it = counts.find(hop->id());
      if (it != counts.end() && it->second > 1) shared.push_back(hop);
    }
  }
  if (!shared.empty()) {
    auto cost_of = [&](const std::unordered_set<int>& assignment) {
      std::unordered_set<int> trial = exposed;
      for (int id : assignment) trial.insert(id);
      std::unordered_map<int, int> counts = ReachCounts(ctx, trial);
      double cost = 0.0;
      for (const HopPtr& hop : ctx.order) {
        auto it = counts.find(hop->id());
        if (it != counts.end() && it->second > 1) {
          cost += kDupPenalty * hop->flops() * (it->second - 1);
        }
      }
      for (const HopPtr& m : shared) {
        if (assignment.count(m->id()) == 0) continue;
        const int uses =
            static_cast<int>(ctx.consumers.at(m->id()).size());
        cost += static_cast<double>(m->shape().Cells()) * (1 + uses);
      }
      return cost;
    };
    std::unordered_set<int> best;
    if (shared.size() > kMaxSharedEnum) {
      for (const HopPtr& m : shared) best.insert(m->id());
    } else {
      double best_cost = 0.0;
      bool have_best = false;
      // Subsets in decreasing popcount order would be nicer for the tie
      // rule; instead iterate all masks and prefer larger assignments on
      // equal cost.
      for (uint32_t mask = 0; mask < (1u << shared.size()); ++mask) {
        std::unordered_set<int> assignment;
        for (size_t i = 0; i < shared.size(); ++i) {
          if (mask & (1u << i)) assignment.insert(shared[i]->id());
        }
        const double cost = cost_of(assignment);
        if (!have_best || cost < best_cost ||
            (cost == best_cost && assignment.size() > best.size())) {
          have_best = true;
          best_cost = cost;
          best = std::move(assignment);
        }
      }
    }
    for (int id : best) exposed.insert(id);
  }

  // Roots must be collected before mutation: MutateTo rewrites opcodes and
  // input lists in place.
  const std::vector<HopPtr> roots = FindRoots(ctx, exposed);
  for (const HopPtr& root : roots) BuildGroup(ctx, root, exposed);
}

}  // namespace memphis::compiler
