#include "compiler/program.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

#include "compiler/linearize.h"
#include "compiler/op_registry.h"

namespace memphis::compiler {

std::shared_ptr<BasicBlock> MakeBasicBlock() {
  return std::make_shared<BasicBlock>();
}

std::shared_ptr<ForBlock> MakeForBlock(std::string loop_var,
                                       std::vector<double> values) {
  auto block = std::make_shared<ForBlock>();
  block->loop_var = std::move(loop_var);
  block->values = std::move(values);
  return block;
}

std::shared_ptr<EvictBlock> MakeEvictBlock(double percent) {
  auto block = std::make_shared<EvictBlock>();
  block->percent = percent;
  return block;
}

namespace {

void CollectBasicBlocks(const BlockPtr& block,
                        std::vector<BasicBlock*>* out) {
  if (block->kind() == Block::Kind::kBasic) {
    out->push_back(static_cast<BasicBlock*>(block.get()));
  } else if (block->kind() == Block::Kind::kFor) {
    for (const auto& child : static_cast<ForBlock*>(block.get())->body) {
      CollectBasicBlocks(child, out);
    }
  }
}

/// Variables written / read by any basic block under `block`.
void CollectReadsWrites(const BlockPtr& block,
                        std::unordered_set<std::string>* reads,
                        std::unordered_set<std::string>* writes) {
  std::vector<BasicBlock*> blocks;
  CollectBasicBlocks(block, &blocks);
  for (BasicBlock* basic : blocks) {
    for (const auto& hop : basic->dag().all_hops()) {
      if (hop->opcode() == "read") reads->insert(hop->var_name());
    }
    for (const auto& name : basic->dag().output_names()) {
      writes->insert(name);
    }
  }
}

/// Checkpoint rewrite 2, planning step: inside each loop, variables that are
/// both read and (re)written by the body are iteratively updated (e.g. the
/// factor W of PNMF, Figure 9(c)); the producing blocks must checkpoint them
/// when placed on Spark.
void PlanLoopCheckpoints(const BlockPtr& block) {
  if (block->kind() != Block::Kind::kFor) return;
  auto* loop = static_cast<ForBlock*>(block.get());
  std::unordered_set<std::string> reads;
  std::unordered_set<std::string> writes;
  CollectReadsWrites(block, &reads, &writes);

  std::unordered_set<std::string> updated;
  for (const auto& name : writes) {
    if (reads.count(name) != 0) updated.insert(name);
  }
  if (!updated.empty()) {
    std::vector<BasicBlock*> blocks;
    CollectBasicBlocks(block, &blocks);
    for (BasicBlock* basic : blocks) {
      for (const auto& name : basic->dag().output_names()) {
        if (updated.count(name) != 0) basic->checkpoint_vars.insert(name);
      }
    }
  }
  for (const auto& child : loop->body) PlanLoopCheckpoints(child);
}

/// GPU allocation-pattern signature of a block subtree: the multiset of
/// shape-determining GPU operator configurations.
std::string GpuSignature(const BlockPtr& block) {
  std::vector<BasicBlock*> blocks;
  CollectBasicBlocks(block, &blocks);
  std::multiset<std::string> parts;
  for (BasicBlock* basic : blocks) {
    for (const auto& hop : basic->dag().all_hops()) {
      const OpSpec* spec = FindOp(hop->opcode());
      const bool gpu_likely =
          (spec != nullptr && spec->gpu_capable &&
           (hop->opcode() == "conv2d" || hop->opcode() == "maxpool" ||
            hop->opcode() == "matmult")) ||
          (hop->has_forced_backend() && hop->backend() == Backend::kGpu);
      if (!gpu_likely) continue;
      std::ostringstream oss;
      oss << hop->opcode();
      for (double arg : hop->args()) oss << ',' << arg;
      parts.insert(oss.str());
    }
  }
  std::string signature;
  for (const auto& part : parts) signature += part + "|";
  return signature;
}

/// Eviction injection (Section 5.2): between two consecutive blocks whose
/// GPU allocation patterns differ (e.g. AlexNet loop followed by VGG16
/// loop), inject evict(100). Repeating patterns are left alone.
void InjectEvictions(std::vector<BlockPtr>* blocks) {
  for (size_t i = 1; i < blocks->size(); ++i) {
    const std::string prev = GpuSignature((*blocks)[i - 1]);
    const std::string curr = GpuSignature((*blocks)[i]);
    if (!prev.empty() && !curr.empty() && prev != curr) {
      blocks->insert(blocks->begin() + i, MakeEvictBlock(100.0));
      ++i;  // Skip the inserted block.
    }
  }
  for (auto& block : *blocks) {
    if (block->kind() == Block::Kind::kFor) {
      InjectEvictions(&static_cast<ForBlock*>(block.get())->body);
    }
  }
}

/// Marks hops that transitively depend on an enclosing loop variable or on
/// a variable the block itself updates (read-and-written, e.g. model
/// weights): both change every repetition and are not reusable.
void MarkLoopDependence(BasicBlock* block,
                        const std::unordered_set<std::string>& loop_vars) {
  std::unordered_set<std::string> changing = loop_vars;
  std::unordered_set<std::string> reads;
  for (const auto& hop : block->dag().all_hops()) {
    if (hop->opcode() == "read") reads.insert(hop->var_name());
  }
  for (const auto& name : block->dag().output_names()) {
    if (reads.count(name) != 0) changing.insert(name);
  }
  std::vector<HopPtr> order = LinearizeDepthFirst(block->dag().outputs());
  std::unordered_map<int, bool> dependent;
  for (const auto& hop : order) {
    bool dep =
        hop->opcode() == "read" && changing.count(hop->var_name()) > 0;
    for (const auto& input : hop->inputs()) dep |= dependent[input->id()];
    dependent[hop->id()] = dep;
    hop->set_loop_dependent(dep);
  }
}

/// Automatic parameter tuning (Section 5.2, Figure 10): sets the delay
/// factor n and the Spark storage level of each basic block from the
/// fraction of loop-dependent (non-reusable) operators.
void TuneBlock(const BlockPtr& block,
               std::unordered_set<std::string>* loop_vars) {
  if (block->kind() == Block::Kind::kFor) {
    auto* loop = static_cast<ForBlock*>(block.get());
    const bool inserted = loop_vars->insert(loop->loop_var).second;
    for (const auto& child : loop->body) TuneBlock(child, loop_vars);
    if (inserted) loop_vars->erase(loop->loop_var);
    return;
  }
  if (block->kind() != Block::Kind::kBasic) return;
  auto* basic = static_cast<BasicBlock*>(block.get());
  MarkLoopDependence(basic, *loop_vars);

  int total_ops = 0;
  int dependent_ops = 0;
  for (const auto& hop :
       LinearizeDepthFirst(basic->dag().outputs())) {
    if (hop->opcode() == "read" || hop->opcode() == "literal") continue;
    ++total_ops;
    if (hop->loop_dependent() || hop->nondeterministic()) ++dependent_ops;
  }
  const double dependent_fraction =
      total_ops == 0 ? 0.0
                     : static_cast<double>(dependent_ops) / total_ops;
  if (basic->delay_factor == 0) {
    if (dependent_fraction < 0.2) {
      basic->delay_factor = 1;  // >80% reusable: cache immediately.
    } else if (dependent_fraction < 0.8) {
      basic->delay_factor = 2;  // Partially reusable.
    } else {
      basic->delay_factor = 4;  // Mostly loop-dependent.
    }
  }
  basic->storage_level = basic->delay_factor == 1
                             ? StorageLevel::kMemoryAndDisk
                             : StorageLevel::kMemoryOnly;
}

}  // namespace

void TuneBasicBlockHeader(BasicBlock* block,
                          const std::unordered_set<std::string>& loop_vars) {
  std::unordered_set<std::string> vars = loop_vars;
  TuneBlock(std::shared_ptr<Block>(block, [](Block*) {}), &vars);
}

void OptimizeProgram(Program* program, const SystemConfig& config) {
  if (program->tuned) return;
  program->tuned = true;
  if (config.checkpoint_placement) {
    for (const auto& block : program->blocks) PlanLoopCheckpoints(block);
  }
  if (config.eviction_injection && config.enable_gpu) {
    InjectEvictions(&program->blocks);
  }
  if (config.auto_parameter_tuning) {
    std::unordered_set<std::string> loop_vars;
    for (const auto& block : program->blocks) TuneBlock(block, &loop_vars);
  }
}

}  // namespace memphis::compiler
