#ifndef MEMPHIS_COMPILER_VERIFIER_H_
#define MEMPHIS_COMPILER_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "compiler/linearize.h"
#include "compiler/placement.h"

namespace memphis::compiler {

/// One invariant violation found by the static plan verifier, with
/// plan-level provenance: the offending instruction's hop id, the DML
/// source line it was built from (0 = programmatic block), and the
/// compiler pass that introduced or last rewrote the node.
struct VerifierDiagnostic {
  const char* pass = "";  // Verifier pass that found the violation.
  std::string message;
  int hop_id = -1;
  int source_line = 0;
  const char* origin_pass = "build";

  /// "[def-use] slot 3 (hop %17, line 4, pass fusion): ..."
  std::string Format() const;
};

/// Result of one verification run. `summary_hash` is the FNV-1a fold of the
/// plan's structural walk -- computed in every mode, it gives release-mode
/// (kSummary) runs a cheap fingerprint that changes whenever the verified
/// structure changes, without per-op shape re-derivation.
struct VerifierReport {
  std::vector<VerifierDiagnostic> diagnostics;
  uint64_t summary_hash = 0;

  bool ok() const { return diagnostics.empty(); }
  /// All diagnostics, newline separated (capped to keep errors readable).
  std::string FormatAll() const;
};

/// Runs the invariant catalog over a compiled plan (DESIGN.md section 5i):
///   1. shape dataflow   -- re-derives every shape bottom-up through the
///                          OpRegistry and checks it against what the
///                          compiler recorded (kFull only);
///   2. def-use          -- def-before-use, single assignment over slots,
///                          output-binding consistency, exact last_use;
///   3. placement        -- backend capability, operand residence, explicit
///                          transfers on every cross-backend edge;
///   4. fused closure    -- externals declared, recipe set closed, root
///                          last, tile program consistent with the recipes;
///   5. lineage purity   -- determinism declared for every op, unseeded
///                          random ops flagged nondeterministic, every
///                          nondeterministic instruction nonce-stamped, no
///                          cacheable key derivable from an unprotected
///                          nondeterministic source.
/// `mode` kSummary skips the re-derivation work of passes 1 and 4 but keeps
/// every structural check; kOff returns an empty report.
VerifierReport VerifyPlan(const CompileResult& plan, const SystemConfig& config,
                          VerifyMode mode);

/// Verifies one fused instruction in isolation (closure + recipe shape
/// re-derivation + member purity): the ExecuteFused fallback path re-checks
/// the plan it is about to interpret op-at-a-time.
VerifierReport VerifyFusedInstruction(const Instruction& inst);

/// Gate helpers: run the verifier according to config.verify_plans, export
/// verifier.* metrics and a trace span, and throw MemphisError carrying the
/// formatted diagnostics when the plan does not verify.
void MaybeVerifyPlan(const CompileResult& plan, const SystemConfig& config);
void MaybeVerifyFusedFallback(const Instruction& inst,
                              const SystemConfig& config);

}  // namespace memphis::compiler

#endif  // MEMPHIS_COMPILER_VERIFIER_H_
