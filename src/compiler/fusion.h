#ifndef MEMPHIS_COMPILER_FUSION_H_
#define MEMPHIS_COMPILER_FUSION_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/config.h"
#include "compiler/hop.h"
#include "matrix/fused_kernel.h"

namespace memphis::compiler {

/// One member operator of a fused group, kept alongside the compiled tile
/// program so the runtime can (a) rebuild every member's lineage item --
/// the composite key is the root's item, byte-identical to unfused tracing
/// -- and (b) execute the group op-at-a-time when it must fall back to
/// unfused execution (interior cache hit, armed kernel fault).
struct FusedOpRecipe {
  std::string opcode;
  std::vector<double> args;
  /// Operand refs: external -> plan input index, else earlier recipe index.
  std::vector<kernels::TileRef> inputs;
  double flops = 0.0;
  Shape out_shape;
};

/// Execution plan of one fused operator group. `program` is the tile-at-a-
/// time form run by kernels::FusedKernelExecutor; `recipes` is the group's
/// internal DAG in topological order with the root last. The "fused" hop's
/// inputs are the group's deduplicated external inputs, in the order the
/// plan's input indices refer to them.
struct FusedPlan {
  kernels::TileProgram program;
  std::vector<FusedOpRecipe> recipes;
  size_t num_inputs = 0;
  double total_flops = 0.0;

  // Memo for the static plan verifier's fallback re-proof: bit (1 << mode)
  // is set once the group has verified clean under that VerifyMode. The plan
  // is immutable after compilation, so a racy double-verify is idempotent.
  mutable std::atomic<uint32_t> fallback_verified{0};

  std::string DebugString() const;
};

/// Operator fusion pass (ROADMAP item 2; modeled on "On Optimizing Operator
/// Fusion Plans for Large-Scale ML in SystemML"). Runs over the placed,
/// shape-inferred DAG and rewrites maximal fusable chains of CP elementwise
/// / scalar / unary operators (optionally ending in a full aggregation) into
/// single "fused" hops carrying a FusedPlan.
///
/// Plan selection is not greedy pairwise fusion: exposed intermediates --
/// output-bound nodes, nodes with a non-fusable consumer, and loop-invariant
/// nodes feeding loop-dependent consumers (kept materialized for
/// cross-iteration reuse) -- are fixed materialization points, and for
/// intermediates shared between candidate groups the pass enumerates
/// materialize-vs-duplicate assignments and picks the cheapest plan under a
/// memory-traffic + recompute cost model.
///
/// Mutates group roots in place (Hop::MutateTo keeps node identity), so the
/// caller must re-linearize afterwards; swallowed interior hops simply drop
/// out of the next linearization.
void FuseOperators(const std::vector<HopPtr>& outputs,
                   const SystemConfig& config);

}  // namespace memphis::compiler

#endif  // MEMPHIS_COMPILER_FUSION_H_
