#ifndef MEMPHIS_COMPILER_OP_REGISTRY_H_
#define MEMPHIS_COMPILER_OP_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "compiler/hop.h"
#include "matrix/matrix_block.h"

namespace memphis::compiler {

/// Explicit cacheability declaration of an operator. Every registered op
/// MUST declare one -- the registry audit (AuditOpSpec, run on first
/// lookup) rejects kUnspecified, so a new op can never default into
/// lineage-cacheability. kSeededRandom ops draw from an RNG and are
/// deterministic only when a nonnegative seed is supplied as their trailing
/// numeric argument; the compiler marks unseeded instances nondeterministic
/// and nonce-stamps them so their lineage never matches.
enum class OpDeterminism : uint8_t {
  kUnspecified = 0,
  kDeterministic = 1,
  kSeededRandom = 2,
};

/// Static description of one logical operator: shape inference, analytic
/// flop count, the reference (CP) kernel, and backend capability flags.
///
/// The same `exec` runs on every backend ("virtual time, real data"):
/// a GPU instruction executes `exec` on the host shadow while the cost model
/// charges the device; a Spark instruction uses per-partition closures built
/// by the executor for distributed ops and falls back to `exec` otherwise.
struct OpSpec {
  int arity = 1;  // -1: variable.
  bool spark_capable = false;
  bool gpu_capable = false;
  /// Non-reusable unless a deterministic seed argument is supplied.
  bool seeded = false;
  /// Mandatory cacheability declaration; must agree with `seeded`
  /// (kSeededRandom <=> seeded). See OpDeterminism.
  OpDeterminism determinism = OpDeterminism::kUnspecified;

  std::function<Shape(const std::vector<Shape>&, const std::vector<double>&)>
      infer;
  std::function<double(const std::vector<Shape>&, const Shape&,
                       const std::vector<double>&)>
      flops;
  std::function<MatrixPtr(const std::vector<MatrixPtr>&,
                          const std::vector<double>&)>
      exec;
};

/// Looks up an operator; nullptr when the opcode is unknown.
const OpSpec* FindOp(const std::string& opcode);

/// Names of every registered operator (for docs/tests).
std::vector<std::string> RegisteredOps();

/// Audits one operator's registration: throws MemphisError when the op does
/// not declare its determinism, or when the declaration contradicts the
/// `seeded` flag. The registry runs this over every op before serving the
/// first lookup; exposed so tests can drive it against broken specs.
void AuditOpSpec(const std::string& opcode, const OpSpec& spec);

}  // namespace memphis::compiler

#endif  // MEMPHIS_COMPILER_OP_REGISTRY_H_
