#ifndef MEMPHIS_COMPILER_OP_REGISTRY_H_
#define MEMPHIS_COMPILER_OP_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "compiler/hop.h"
#include "matrix/matrix_block.h"

namespace memphis::compiler {

/// Static description of one logical operator: shape inference, analytic
/// flop count, the reference (CP) kernel, and backend capability flags.
///
/// The same `exec` runs on every backend ("virtual time, real data"):
/// a GPU instruction executes `exec` on the host shadow while the cost model
/// charges the device; a Spark instruction uses per-partition closures built
/// by the executor for distributed ops and falls back to `exec` otherwise.
struct OpSpec {
  int arity = 1;  // -1: variable.
  bool spark_capable = false;
  bool gpu_capable = false;
  /// Non-reusable unless a deterministic seed argument is supplied.
  bool seeded = false;

  std::function<Shape(const std::vector<Shape>&, const std::vector<double>&)>
      infer;
  std::function<double(const std::vector<Shape>&, const Shape&,
                       const std::vector<double>&)>
      flops;
  std::function<MatrixPtr(const std::vector<MatrixPtr>&,
                          const std::vector<double>&)>
      exec;
};

/// Looks up an operator; nullptr when the opcode is unknown.
const OpSpec* FindOp(const std::string& opcode);

/// Names of every registered operator (for docs/tests).
std::vector<std::string> RegisteredOps();

}  // namespace memphis::compiler

#endif  // MEMPHIS_COMPILER_OP_REGISTRY_H_
