#include "compiler/op_registry.h"

#include <algorithm>
#include <unordered_map>

#include "common/status.h"
#include "matrix/kernels.h"
#include "matrix/nn_kernels.h"
#include "matrix/transform_kernels.h"

namespace memphis::compiler {

namespace {

using kernels::BinaryOp;
using kernels::UnaryOp;
using Inputs = std::vector<MatrixPtr>;
using Args = std::vector<double>;
using Shapes = std::vector<Shape>;

Shape SameShape(const Shapes& in, const Args&) { return in[0]; }
Shape ScalarShape(const Shapes&, const Args&) { return {1, 1}; }

/// Seed arguments use -1 as the "unseeded" sentinel; a negative double cast
/// straight to uint64_t is undefined behavior (float-cast-overflow under
/// UBSan), so route through int64_t where the conversion is defined.
uint64_t SeedArg(double value) {
  return static_cast<uint64_t>(static_cast<int64_t>(value));
}

double ElementwiseFlops(const Shapes&, const Shape& out, const Args&) {
  return static_cast<double>(out.Cells());
}
double InputFlops(const Shapes& in, const Shape&, const Args&) {
  return static_cast<double>(in[0].Cells());
}

OpSpec BinarySpec(BinaryOp op) {
  OpSpec spec;
  spec.arity = 2;
  spec.spark_capable = true;
  spec.gpu_capable = true;
  spec.determinism = OpDeterminism::kDeterministic;
  spec.infer = [](const Shapes& in, const Args&) {
    // Output takes the non-broadcast operand's shape.
    return in[0].Cells() >= in[1].Cells() ? in[0] : in[1];
  };
  spec.flops = ElementwiseFlops;
  spec.exec = [op](const Inputs& in, const Args&) {
    // Support scalar-on-the-left via the broadcasting rules.
    if (in[0]->size() == 1 && in[1]->size() > 1) {
      return kernels::ScalarOp(op, *in[1], in[0]->AsScalar(),
                               /*scalar_left=*/true);
    }
    return kernels::Binary(op, *in[0], *in[1]);
  };
  return spec;
}

OpSpec UnarySpec(UnaryOp op) {
  OpSpec spec;
  spec.arity = 1;
  spec.spark_capable = true;
  spec.gpu_capable = true;
  spec.determinism = OpDeterminism::kDeterministic;
  spec.infer = SameShape;
  spec.flops = ElementwiseFlops;
  spec.exec = [op](const Inputs& in, const Args&) {
    return kernels::Unary(op, *in[0]);
  };
  return spec;
}

OpSpec AggSpec(MatrixPtr (*fn)(const MatrixBlock&),
               Shape (*infer)(const Shapes&, const Args&),
               bool spark_capable) {
  OpSpec spec;
  spec.arity = 1;
  spec.spark_capable = spark_capable;
  spec.gpu_capable = true;
  spec.determinism = OpDeterminism::kDeterministic;
  spec.infer = infer;
  spec.flops = InputFlops;
  spec.exec = [fn](const Inputs& in, const Args&) { return fn(*in[0]); };
  return spec;
}

Shape RowVecShape(const Shapes& in, const Args&) {
  return Shape{1, in[0].cols};
}
Shape ColVecShape(const Shapes& in, const Args&) {
  return Shape{in[0].rows, 1};
}

std::unordered_map<std::string, OpSpec> BuildRegistry() {
  std::unordered_map<std::string, OpSpec> ops;

  // --- data generation -------------------------------------------------------
  {
    OpSpec spec;
    spec.arity = 0;
    spec.spark_capable = true;
    spec.seeded = true;
    spec.determinism = OpDeterminism::kSeededRandom;
    // args: rows, cols, lo, hi, sparsity, seed.
    spec.infer = [](const Shapes&, const Args& args) {
      return Shape{static_cast<size_t>(args[0]),
                   static_cast<size_t>(args[1])};
    };
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs&, const Args& args) {
      return kernels::Rand(static_cast<size_t>(args[0]),
                           static_cast<size_t>(args[1]), args[2], args[3],
                           args[4], SeedArg(args[5]));
    };
    ops["rand"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 0;
    spec.determinism = OpDeterminism::kDeterministic;
    // args: from, to, incr.
    spec.infer = [](const Shapes&, const Args& args) {
      const double count = (args[1] - args[0]) / args[2] + 1.0;
      return Shape{static_cast<size_t>(count > 0 ? count : 0), 1};
    };
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs&, const Args& args) {
      return kernels::Seq(args[0], args[1], args[2]);
    };
    ops["seq"] = spec;
  }

  // --- core linear algebra -----------------------------------------------------
  {
    OpSpec spec;
    spec.arity = 2;
    spec.spark_capable = true;
    spec.gpu_capable = true;
    spec.infer = [](const Shapes& in, const Args&) {
      return Shape{in[0].rows, in[1].cols};
    };
    spec.flops = [](const Shapes& in, const Shape&, const Args&) {
      return kernels::MatMultFlops(in[0].rows, in[0].cols, in[1].cols);
    };
    spec.exec = [](const Inputs& in, const Args&) {
      return kernels::MatMult(*in[0], *in[1]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["matmult"] = spec;
  }
  {
    // t(X) %*% X in one logical op (the shuffle-based mm of Example 4.1).
    OpSpec spec;
    spec.arity = 1;
    spec.spark_capable = true;
    spec.gpu_capable = true;
    spec.infer = [](const Shapes& in, const Args&) {
      return Shape{in[0].cols, in[0].cols};
    };
    spec.flops = [](const Shapes& in, const Shape&, const Args&) {
      return kernels::MatMultFlops(in[0].cols, in[0].rows, in[0].cols);
    };
    spec.exec = [](const Inputs& in, const Args&) {
      auto xt = kernels::Transpose(*in[0]);
      return kernels::MatMult(*xt, *in[0]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["tsmm"] = spec;
  }
  {
    // t(A) %*% B over row-aligned operands: zip-partials + add-aggregate on
    // Spark (the PNMF H-update pattern).
    OpSpec spec;
    spec.arity = 2;
    spec.spark_capable = true;
    spec.gpu_capable = true;
    spec.infer = [](const Shapes& in, const Args&) {
      return Shape{in[0].cols, in[1].cols};
    };
    spec.flops = [](const Shapes& in, const Shape&, const Args&) {
      return kernels::MatMultFlops(in[0].cols, in[0].rows, in[1].cols);
    };
    spec.exec = [](const Inputs& in, const Args&) {
      auto at = kernels::Transpose(*in[0]);
      return kernels::MatMult(*at, *in[1]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["tsmm2"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 1;
    spec.gpu_capable = true;
    spec.infer = [](const Shapes& in, const Args&) {
      return Shape{in[0].cols, in[0].rows};
    };
    spec.flops = InputFlops;
    spec.exec = [](const Inputs& in, const Args&) {
      return kernels::Transpose(*in[0]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["transpose"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 2;
    spec.infer = [](const Shapes& in, const Args&) {
      return Shape{in[0].cols, in[1].cols};
    };
    spec.flops = [](const Shapes& in, const Shape&, const Args&) {
      const double n = static_cast<double>(in[0].rows);
      return 2.0 / 3.0 * n * n * n +
             2.0 * n * n * static_cast<double>(in[1].cols);
    };
    spec.exec = [](const Inputs& in, const Args&) {
      return kernels::Solve(*in[0], *in[1]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["solve"] = spec;
  }

  const std::pair<const char*, BinaryOp> kBinaryOps[] = {
      {"+", BinaryOp::kAdd},      {"-", BinaryOp::kSub},
      {"*", BinaryOp::kMul},      {"/", BinaryOp::kDiv},
      {"min", BinaryOp::kMin},    {"max", BinaryOp::kMax},
      {"^", BinaryOp::kPow},      {">", BinaryOp::kGreater},
      {">=", BinaryOp::kGreaterEq}, {"<", BinaryOp::kLess},
      {"<=", BinaryOp::kLessEq},  {"==", BinaryOp::kEq},
      {"!=", BinaryOp::kNeq},
  };
  for (const auto& [name, op] : kBinaryOps) ops[name] = BinarySpec(op);

  const std::pair<const char*, UnaryOp> kUnaryOps[] = {
      {"exp", UnaryOp::kExp},     {"log", UnaryOp::kLog},
      {"sqrt", UnaryOp::kSqrt},   {"abs", UnaryOp::kAbs},
      {"sign", UnaryOp::kSign},   {"round", UnaryOp::kRound},
      {"floor", UnaryOp::kFloor}, {"ceil", UnaryOp::kCeil},
      {"neg", UnaryOp::kNeg},     {"sigmoid", UnaryOp::kSigmoid},
  };
  for (const auto& [name, op] : kUnaryOps) ops[name] = UnarySpec(op);

  // --- aggregations ------------------------------------------------------------
  auto scalar_agg = [](double (*fn)(const MatrixBlock&)) {
    OpSpec spec;
    spec.arity = 1;
    spec.spark_capable = true;
    spec.gpu_capable = true;
    spec.determinism = OpDeterminism::kDeterministic;
    spec.infer = ScalarShape;
    spec.flops = InputFlops;
    spec.exec = [fn](const Inputs& in, const Args&) {
      return MatrixBlock::Create(1, 1, fn(*in[0]));
    };
    return spec;
  };
  ops["sum"] = scalar_agg(kernels::Sum);
  ops["mean"] = scalar_agg(kernels::Mean);
  ops["min_agg"] = scalar_agg(kernels::Min);
  ops["max_agg"] = scalar_agg(kernels::Max);

  ops["colSums"] = AggSpec(kernels::ColSums, RowVecShape, true);
  ops["colMeans"] = AggSpec(kernels::ColMeans, RowVecShape, false);
  ops["colVars"] = AggSpec(kernels::ColVars, RowVecShape, false);
  ops["colMins"] = AggSpec(kernels::ColMins, RowVecShape, false);
  ops["colMaxs"] = AggSpec(kernels::ColMaxs, RowVecShape, false);
  ops["rowSums"] = AggSpec(kernels::RowSums, ColVecShape, true);
  ops["rowMeans"] = AggSpec(kernels::RowMeans, ColVecShape, true);
  ops["rowMaxs"] = AggSpec(kernels::RowMaxs, ColVecShape, true);
  ops["rowIndexMax"] = AggSpec(kernels::RowIndexMax, ColVecShape, true);

  // --- reorg -----------------------------------------------------------------------
  {
    OpSpec spec;
    spec.arity = 1;
    // args: row_lo, row_hi, col_lo, col_hi.
    spec.infer = [](const Shapes&, const Args& args) {
      return Shape{static_cast<size_t>(args[1] - args[0]),
                   static_cast<size_t>(args[3] - args[2])};
    };
    spec.flops = ElementwiseFlops;
    spec.gpu_capable = true;
    spec.exec = [](const Inputs& in, const Args& args) {
      return kernels::Slice(*in[0], static_cast<size_t>(args[0]),
                            static_cast<size_t>(args[1]),
                            static_cast<size_t>(args[2]),
                            static_cast<size_t>(args[3]));
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["slice"] = spec;
  }
  {
    // Column range over all rows; row count follows the input at runtime
    // (used after row-count-changing ops like undersampling).
    OpSpec spec;
    spec.arity = 1;
    // args: col_lo, col_hi (col_hi clamped to the input's width).
    spec.infer = [](const Shapes& in, const Args& args) {
      const size_t hi =
          std::min(in[0].cols, static_cast<size_t>(args[1]));
      return Shape{in[0].rows, hi - static_cast<size_t>(args[0])};
    };
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs& in, const Args& args) {
      const size_t hi =
          std::min(in[0]->cols(), static_cast<size_t>(args[1]));
      return kernels::Slice(*in[0], 0, in[0]->rows(),
                            static_cast<size_t>(args[0]), hi);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["sliceCols"] = spec;
  }
  {
    // Row range over all columns, clamped to the input's (possibly data
    // dependent) height.
    OpSpec spec;
    spec.arity = 1;
    // args: row_lo, row_hi (clamped).
    spec.infer = [](const Shapes& in, const Args& args) {
      const size_t hi = std::min(in[0].rows, static_cast<size_t>(args[1]));
      const size_t lo = std::min(hi, static_cast<size_t>(args[0]));
      return Shape{hi - lo, in[0].cols};
    };
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs& in, const Args& args) {
      const size_t hi = std::min(in[0]->rows(), static_cast<size_t>(args[1]));
      const size_t lo = std::min(hi, static_cast<size_t>(args[0]));
      return kernels::Slice(*in[0], lo, hi, 0, in[0]->cols());
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["sliceRows"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 2;
    spec.infer = [](const Shapes& in, const Args&) {
      return Shape{in[0].rows + in[1].rows, in[0].cols};
    };
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs& in, const Args&) {
      return kernels::RBind(*in[0], *in[1]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["rbind"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 2;
    spec.infer = [](const Shapes& in, const Args&) {
      return Shape{in[0].rows, in[0].cols + in[1].cols};
    };
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs& in, const Args&) {
      return kernels::CBind(*in[0], *in[1]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["cbind"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 1;
    spec.infer = [](const Shapes& in, const Args&) {
      return in[0].cols == 1 ? Shape{in[0].rows, in[0].rows}
                             : Shape{in[0].rows, 1};
    };
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs& in, const Args&) {
      return kernels::Diag(*in[0]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["diag"] = spec;
  }

  // --- neural network -----------------------------------------------------------------
  {
    OpSpec spec;
    spec.arity = 1;
    spec.gpu_capable = true;
    spec.spark_capable = true;
    spec.infer = SameShape;
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs& in, const Args&) {
      return kernels::Relu(*in[0]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["relu"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 1;
    spec.gpu_capable = true;
    spec.infer = SameShape;
    spec.flops = [](const Shapes&, const Shape& out, const Args&) {
      return 4.0 * static_cast<double>(out.Cells());
    };
    spec.exec = [](const Inputs& in, const Args&) {
      return kernels::Softmax(*in[0]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["softmax"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 1;
    spec.gpu_capable = true;
    spec.seeded = true;
    // args: keep_prob, seed.
    spec.infer = SameShape;
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs& in, const Args& args) {
      return kernels::Dropout(*in[0], args[0], SeedArg(args[1]));
    };
    spec.determinism = OpDeterminism::kSeededRandom;
    ops["dropout"] = spec;
  }
  {
    // args: C, H, W, num_filters, kh, kw, pad, stride.
    OpSpec spec;
    spec.arity = 2;  // inputs: X, filters.
    spec.gpu_capable = true;
    spec.infer = [](const Shapes& in, const Args& args) {
      const auto kh = static_cast<size_t>(args[4]);
      const auto kw = static_cast<size_t>(args[5]);
      const auto pad = static_cast<size_t>(args[6]);
      const auto stride = static_cast<size_t>(args[7]);
      const size_t oh =
          (static_cast<size_t>(args[1]) + 2 * pad - kh) / stride + 1;
      const size_t ow =
          (static_cast<size_t>(args[2]) + 2 * pad - kw) / stride + 1;
      return Shape{in[0].rows, static_cast<size_t>(args[3]) * oh * ow};
    };
    spec.flops = [](const Shapes& in, const Shape&, const Args& args) {
      return kernels::Conv2dFlops(
          in[0].rows,
          kernels::TensorShape{static_cast<size_t>(args[0]),
                               static_cast<size_t>(args[1]),
                               static_cast<size_t>(args[2])},
          static_cast<size_t>(args[3]), static_cast<size_t>(args[4]),
          static_cast<size_t>(args[5]), static_cast<size_t>(args[6]),
          static_cast<size_t>(args[7]));
    };
    spec.exec = [](const Inputs& in, const Args& args) {
      return kernels::Conv2d(
          *in[0], *in[1],
          kernels::TensorShape{static_cast<size_t>(args[0]),
                               static_cast<size_t>(args[1]),
                               static_cast<size_t>(args[2])},
          static_cast<size_t>(args[4]), static_cast<size_t>(args[5]),
          static_cast<size_t>(args[6]), static_cast<size_t>(args[7]),
          nullptr);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["conv2d"] = spec;
  }
  {
    // args: C, H, W, pool.
    OpSpec spec;
    spec.arity = 1;
    spec.gpu_capable = true;
    spec.infer = [](const Shapes& in, const Args& args) {
      const auto pool = static_cast<size_t>(args[3]);
      const size_t oh = static_cast<size_t>(args[1]) / pool;
      const size_t ow = static_cast<size_t>(args[2]) / pool;
      return Shape{in[0].rows, static_cast<size_t>(args[0]) * oh * ow};
    };
    spec.flops = InputFlops;
    spec.exec = [](const Inputs& in, const Args& args) {
      return kernels::MaxPool(
          *in[0],
          kernels::TensorShape{static_cast<size_t>(args[0]),
                               static_cast<size_t>(args[1]),
                               static_cast<size_t>(args[2])},
          static_cast<size_t>(args[3]), nullptr);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["maxpool"] = spec;
  }

  // --- cleaning & feature transformations ----------------------------------------------
  auto transform1 = [](MatrixPtr (*fn)(const MatrixBlock&),
                       bool spark_capable) {
    OpSpec spec;
    spec.arity = 1;
    spec.spark_capable = spark_capable;
    spec.determinism = OpDeterminism::kDeterministic;
    spec.infer = SameShape;
    spec.flops = [](const Shapes& in, const Shape&, const Args&) {
      return 8.0 * static_cast<double>(in[0].Cells());
    };
    spec.exec = [fn](const Inputs& in, const Args&) { return fn(*in[0]); };
    return spec;
  };
  ops["imputeMean"] = transform1(kernels::ImputeByMean, true);
  ops["imputeMode"] = transform1(kernels::ImputeByMode, false);
  // Dictionary counting dominates imputeByMode: ~60 effective flops/cell.
  ops["imputeMode"].flops = [](const Shapes& in, const Shape&, const Args&) {
    return 60.0 * static_cast<double>(in[0].Cells());
  };
  ops["scale"] = transform1(kernels::StandardScale, true);
  ops["minmax"] = transform1(kernels::MinMaxScale, true);
  ops["recode"] = transform1(kernels::Recode, false);
  ops["recode"].flops = ops["imputeMode"].flops;
  {
    OpSpec spec;
    spec.arity = 1;
    // Exact distributed quantiles need a dedicated sketch; CP-only here.
    spec.spark_capable = false;
    spec.infer = SameShape;
    spec.flops = [](const Shapes& in, const Shape&, const Args&) {
      // Column sorts dominate: ~200 effective flops per cell.
      return 200.0 * static_cast<double>(in[0].Cells());
    };
    spec.exec = [](const Inputs& in, const Args& args) {
      return kernels::OutlierByIQR(*in[0], args.empty() ? 1.5 : args[0]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["outlierIQR"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 2;  // X, labels.
    spec.seeded = true;
    // args: seed. Output rows unknown statically: worst case = input.
    spec.infer = SameShape;
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs& in, const Args& args) {
      return kernels::UnderSample(*in[0], *in[1], SeedArg(args[0]));
    };
    spec.determinism = OpDeterminism::kSeededRandom;
    ops["undersample"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 1;
    // args: k.
    spec.infer = [](const Shapes& in, const Args& args) {
      return Shape{in[0].rows, static_cast<size_t>(args[0])};
    };
    spec.flops = [](const Shapes& in, const Shape&, const Args&) {
      const double d = static_cast<double>(in[0].cols);
      return 2.0 * static_cast<double>(in[0].rows) * d * d + 50.0 * d * d * d;
    };
    spec.exec = [](const Inputs& in, const Args& args) {
      return kernels::Pca(*in[0], static_cast<size_t>(args[0]));
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["pca"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 1;
    // args: bins.
    spec.infer = SameShape;
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs& in, const Args& args) {
      return kernels::Bin(*in[0], static_cast<size_t>(args[0]));
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["bin"] = spec;
  }
  {
    OpSpec spec;
    spec.arity = 1;
    // Worst-case width is data dependent; estimate 16 codes per column.
    spec.infer = [](const Shapes& in, const Args&) {
      return Shape{in[0].rows, in[0].cols * 16};
    };
    spec.flops = ElementwiseFlops;
    spec.exec = [](const Inputs& in, const Args&) {
      return kernels::OneHot(*in[0]);
    };
    spec.determinism = OpDeterminism::kDeterministic;
    ops["onehot"] = spec;
  }

  return ops;
}

const std::unordered_map<std::string, OpSpec>& Registry() {
  static const auto* registry = [] {
    auto* ops = new std::unordered_map<std::string, OpSpec>(BuildRegistry());
    // Startup audit: every op must explicitly declare its determinism, so
    // a newly added op can never default into lineage-cacheability.
    for (const auto& [name, spec] : *ops) AuditOpSpec(name, spec);
    return ops;
  }();
  return *registry;
}

}  // namespace

void AuditOpSpec(const std::string& opcode, const OpSpec& spec) {
  MEMPHIS_CHECK_MSG(
      spec.determinism != OpDeterminism::kUnspecified,
      "op '" + opcode + "' does not declare OpSpec::determinism; every "
      "registered op must state kDeterministic or kSeededRandom explicitly");
  const bool declared_seeded =
      spec.determinism == OpDeterminism::kSeededRandom;
  MEMPHIS_CHECK_MSG(
      declared_seeded == spec.seeded,
      "op '" + opcode + "': determinism declaration contradicts the seeded "
      "flag (kSeededRandom <=> seeded)");
}

const OpSpec* FindOp(const std::string& opcode) {
  const auto& registry = Registry();
  auto it = registry.find(opcode);
  return it == registry.end() ? nullptr : &it->second;
}

std::vector<std::string> RegisteredOps() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, spec] : Registry()) names.push_back(name);
  return names;
}

}  // namespace memphis::compiler
