#ifndef MEMPHIS_COMPILER_HOP_H_
#define MEMPHIS_COMPILER_HOP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"

namespace memphis::compiler {

/// Matrix shape used by size estimation and operator placement.
struct Shape {
  size_t rows = 0;
  size_t cols = 0;
  size_t Cells() const { return rows * cols; }
  size_t Bytes() const { return Cells() * sizeof(double); }
};

class Hop;
using HopPtr = std::shared_ptr<Hop>;

/// Compiled execution plan of a fused operator group (defined in fusion.h).
struct FusedPlan;

/// High-level operator: a node of a basic block's DAG. Opcodes are *logical*
/// (backend-neutral) names resolved against the OpRegistry; the same opcode
/// is also used for lineage tracing, so an operator placed on CP in one
/// iteration and on Spark in another still produces matching lineage.
class Hop {
 public:
  Hop(std::string opcode, std::vector<HopPtr> inputs,
      std::vector<double> args);

  const std::string& opcode() const { return opcode_; }
  const std::vector<HopPtr>& inputs() const { return inputs_; }
  const std::vector<double>& args() const { return args_; }

  /// Rewiring support for compiler rewrites (transfer-op insertion).
  void ReplaceInput(size_t index, HopPtr replacement) {
    inputs_.at(index) = std::move(replacement);
  }

  /// In-place pattern rewrite (e.g. matmult(t(X), X) -> tsmm(X)); keeps the
  /// node identity so consumers need no rewiring. `pass` records which
  /// compiler pass performed the rewrite for verifier diagnostics.
  void MutateTo(std::string opcode, std::vector<HopPtr> inputs,
                const char* pass = nullptr) {
    opcode_ = std::move(opcode);
    inputs_ = std::move(inputs);
    if (pass != nullptr) origin_pass_ = pass;
  }

  /// Unique stamp for nondeterministic hops (prevents lineage matches).
  uint64_t nonce() const { return nonce_; }
  void set_nonce(uint64_t nonce) { nonce_ = nonce; }

  int id() const { return id_; }

  /// Variable name for kInput ("read") hops, or output binding.
  const std::string& var_name() const { return var_name_; }
  void set_var_name(std::string name) { var_name_ = std::move(name); }

  const Shape& shape() const { return shape_; }
  void set_shape(Shape shape) { shape_ = shape; }

  Backend backend() const { return backend_; }
  void set_backend(Backend backend) { backend_ = backend; }

  /// Forced placement hint from the workload (overrides heuristics).
  bool has_forced_backend() const { return forced_; }
  void ForceBackend(Backend backend) {
    backend_ = backend;
    forced_ = true;
  }

  /// Loop-dependent hops (transitively reading a loop variable) are not
  /// reusable across iterations (Section 5.2, Figure 10).
  bool loop_dependent() const { return loop_dependent_; }
  void set_loop_dependent(bool value) { loop_dependent_ = value; }

  /// Nondeterministic hops (unseeded rand/dropout) are never reused.
  bool nondeterministic() const { return nondeterministic_; }
  void set_nondeterministic(bool value) { nondeterministic_ = value; }

  /// Async-execution flag set by the prefetch/broadcast rewrites.
  bool asynchronous() const { return asynchronous_; }
  void set_asynchronous(bool value) { asynchronous_ = value; }

  double flops() const { return flops_; }
  void set_flops(double flops) { flops_ = flops; }

  /// Non-null on "fused" hops: the group plan produced by FuseOperators.
  const std::shared_ptr<const FusedPlan>& fused_plan() const {
    return fused_plan_;
  }
  void set_fused_plan(std::shared_ptr<const FusedPlan> plan) {
    fused_plan_ = std::move(plan);
  }

  /// Provenance for verifier diagnostics: the 1-based DML source line this
  /// hop was built from (0 when the block was built programmatically) and
  /// the name of the compiler pass that introduced or last rewrote the
  /// node ("build" for parser/workload construction). The pass name is a
  /// string literal owned by the pass, never freed.
  int source_line() const { return source_line_; }
  void set_source_line(int line) { source_line_ = line; }
  const char* origin_pass() const { return origin_pass_; }
  void set_origin_pass(const char* pass) { origin_pass_ = pass; }

  std::string DebugString() const;

 private:
  // Atomic: serve workers compile programs concurrently. Ids only need to
  // be unique (DebugString labels); nothing orders them across threads.
  static std::atomic<int> next_id_;
  int id_;
  std::string opcode_;
  std::vector<HopPtr> inputs_;
  std::vector<double> args_;
  std::string var_name_;
  Shape shape_;
  Backend backend_ = Backend::kCP;
  bool forced_ = false;
  bool loop_dependent_ = false;
  bool nondeterministic_ = false;
  bool asynchronous_ = false;
  double flops_ = 0.0;
  uint64_t nonce_ = 0;
  int source_line_ = 0;
  const char* origin_pass_ = "build";
  std::shared_ptr<const FusedPlan> fused_plan_;
};

/// One basic block: a DAG of hops with named inputs (bound from the runtime
/// variable map) and named outputs (bound back after execution). Workloads
/// build blocks through this API; the compiler CSEs, places, rewrites, and
/// linearizes them into instructions.
class HopDag {
 public:
  /// Reads a runtime variable (matrix or scalar-as-1x1).
  HopPtr Read(const std::string& name);

  /// Scalar literal as a 1x1 matrix.
  HopPtr Literal(double value);

  /// Generic operator node.
  HopPtr Op(const std::string& opcode, std::vector<HopPtr> inputs,
            std::vector<double> args = {});

  /// Binds a hop's result to a runtime variable after block execution.
  void Write(const std::string& name, const HopPtr& hop);

  const std::vector<HopPtr>& outputs() const { return outputs_; }
  const std::vector<std::string>& output_names() const {
    return output_names_;
  }
  const std::vector<HopPtr>& all_hops() const { return hops_; }

  /// Source line stamped onto every hop created while it is set; the parser
  /// updates it at each statement boundary. 0 (the default) marks
  /// programmatic construction (workloads, tests).
  void set_current_source_line(int line) { current_source_line_ = line; }
  int current_source_line() const { return current_source_line_; }

 private:
  std::vector<HopPtr> hops_;
  std::vector<HopPtr> outputs_;
  std::vector<std::string> output_names_;
  int current_source_line_ = 0;
};

}  // namespace memphis::compiler

#endif  // MEMPHIS_COMPILER_HOP_H_
