#ifndef MEMPHIS_COMPILER_LINEARIZE_H_
#define MEMPHIS_COMPILER_LINEARIZE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "compiler/hop.h"

namespace memphis::compiler {

/// One runtime instruction: a linearized hop. `input_slots`/`output_slot`
/// index into the per-block slot table the executor maintains; `output_var`
/// is non-empty when the result must be bound back to a runtime variable.
struct Instruction {
  Backend backend = Backend::kCP;
  std::string opcode;
  std::vector<int> input_slots;
  int output_slot = -1;
  std::string var_name;    // read instructions: the source variable.
  std::string output_var;  // non-empty: bind the result to this variable.
  /// Further variables bound to the same result: CSE can fold two output
  /// expressions (`v2 = t(x); v3 = t(x);`) into one hop, and aliasing
  /// (`y = x;`) makes an output out of a read. One hop, many names.
  std::vector<std::string> extra_output_vars;
  std::vector<double> args;
  bool async = false;
  bool nondeterministic = false;
  uint64_t nonce = 0;
  double flops = 0.0;
  Shape out_shape;
  /// Non-null for "fused" group instructions (see compiler/fusion.h).
  std::shared_ptr<const FusedPlan> fused;
  /// Provenance for verifier diagnostics: the emitting hop's id, 1-based
  /// DML source line (0 = programmatic block), and the compiler pass that
  /// introduced/last rewrote the hop (a string literal, never freed).
  int hop_id = -1;
  int source_line = 0;
  const char* origin_pass = "build";

  std::string DebugString() const;
};

/// Depth-first linearization (SystemDS default, Section 2.1): emits each
/// output subtree in input order with node memoization.
std::vector<HopPtr> LinearizeDepthFirst(const std::vector<HopPtr>& outputs);

/// Algorithm 2 (MAXPARALLELIZE): identifies remote operator-chain roots
/// (Spark actions / prefetches / GPU-to-host copies), linearizes them in
/// descending order of chain length to maximize concurrent execution, then
/// places the remaining local operators depth-first.
std::vector<HopPtr> LinearizeMaxParallelize(const std::vector<HopPtr>& outputs);

/// Emits instructions from a linearized hop order. Each hop becomes one
/// instruction whose slots are positions within `order`; hops bound to
/// output variables get `var_name` set.
std::vector<Instruction> EmitInstructions(
    const std::vector<HopPtr>& order, const std::vector<HopPtr>& outputs,
    const std::vector<std::string>& output_names);

}  // namespace memphis::compiler

#endif  // MEMPHIS_COMPILER_LINEARIZE_H_
