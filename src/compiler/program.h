#ifndef MEMPHIS_COMPILER_PROGRAM_H_
#define MEMPHIS_COMPILER_PROGRAM_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/config.h"
#include "compiler/hop.h"
#include "compiler/placement.h"

namespace memphis::compiler {

class Block;
using BlockPtr = std::shared_ptr<Block>;

/// A node of the program-block hierarchy (Section 2.1: "a script compiles to
/// a hierarchy of program blocks, every last-level block is a DAG of
/// operations"). The block header carries the reuse parameters set by the
/// automatic parameter-tuning rewrite (Section 5.2, Figure 10).
class Block {
 public:
  enum class Kind { kBasic, kFor, kEvict };

  explicit Block(Kind kind) : kind_(kind) {}
  virtual ~Block() = default;

  Kind kind() const { return kind_; }

  /// Delay factor n: cache on the n-th repetition (0 = use config default).
  int delay_factor = 0;
  StorageLevel storage_level = StorageLevel::kMemoryAndDisk;

 private:
  Kind kind_;
};

/// Last-level block: one hop DAG plus a per-shape compile cache.
class BasicBlock : public Block {
 public:
  BasicBlock() : Block(Kind::kBasic) {}

  HopDag& dag() { return dag_; }
  const HopDag& dag() const { return dag_; }

  /// Variables the loop-checkpoint rewrite decided to persist when this
  /// block produces them on Spark.
  std::unordered_set<std::string> checkpoint_vars;

  /// Compile cache: the executor stores the result keyed by the input-shape
  /// signature and recompiles when shapes change.
  std::string cached_signature;
  std::shared_ptr<CompileResult> cached_compile;

 private:
  HopDag dag_;
};

/// Counted loop over explicit iteration values; the loop variable is bound
/// as a 1x1 scalar before each body execution.
class ForBlock : public Block {
 public:
  ForBlock() : Block(Kind::kFor) {}

  std::string loop_var;
  std::vector<double> values;
  std::vector<BlockPtr> body;
};

/// Compiler-injected evict(pct) between allocation-pattern shifts
/// (Section 5.2, Figure 9(b)).
class EvictBlock : public Block {
 public:
  EvictBlock() : Block(Kind::kEvict) {}
  double percent = 100.0;
};

/// A whole program: the top-level block sequence.
struct Program {
  std::vector<BlockPtr> blocks;
  bool tuned = false;  // Program-level rewrites already applied.
};

// --- convenience builders ----------------------------------------------------
std::shared_ptr<BasicBlock> MakeBasicBlock();
std::shared_ptr<ForBlock> MakeForBlock(std::string loop_var,
                                       std::vector<double> values);
std::shared_ptr<EvictBlock> MakeEvictBlock(double percent);

/// Runs all program-level rewrites in order: loop-checkpoint planning,
/// eviction injection, and automatic parameter tuning. Idempotent.
void OptimizeProgram(Program* program, const SystemConfig& config);

/// Tunes one basic block's header (delay factor, storage level) outside a
/// Program: used by the executor when a workload drives blocks directly.
/// `loop_vars` are the enclosing loop variables, if any.
void TuneBasicBlockHeader(BasicBlock* block,
                          const std::unordered_set<std::string>& loop_vars);

}  // namespace memphis::compiler

#endif  // MEMPHIS_COMPILER_PROGRAM_H_
