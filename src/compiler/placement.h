#ifndef MEMPHIS_COMPILER_PLACEMENT_H_
#define MEMPHIS_COMPILER_PLACEMENT_H_

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/config.h"
#include "compiler/hop.h"
#include "compiler/linearize.h"

namespace memphis::compiler {

/// Shape and current location of a runtime variable, provided by the
/// executor when a block is compiled.
struct VarInfo {
  Shape shape;
  Backend location = Backend::kCP;
};
using ShapeResolver = std::function<VarInfo(const std::string&)>;

struct CompileOptions {
  bool async_operators = true;      // prefetch/broadcast rewrites.
  bool max_parallelize = true;      // Algorithm 2 vs. depth-first.
  bool checkpoint_placement = true; // overlapping-jobs rewrite.
  /// Loop-updated variables the program-level rewrite decided to persist
  /// (Section 5.2, Figure 9(c)).
  std::unordered_set<std::string> checkpoint_vars;
};

/// A fully compiled basic block.
struct CompileResult {
  std::vector<HopPtr> order;              // linearized (cloned) hops.
  std::vector<Instruction> instructions;  // one per hop, in order.
  /// Per slot: index of the last instruction consuming it (-1 = never used
  /// as an input). The executor releases slots right after their last use
  /// (live-variable management, Figure 8(a)), so deep blocks do not pin
  /// every intermediate until the block ends.
  std::vector<int> last_use;
};

/// Full compilation pipeline for one basic block:
///   clone -> CSE -> shape/flops inference -> pattern rewrites (tsmm) ->
///   operator placement -> transfer insertion (collect/parallelize/bcast/
///   h2d/d2h) -> checkpoint rewrite -> prefetch/broadcast async marking ->
///   linearization -> instruction emission.
/// The input DAG is never mutated (the executor caches compile results per
/// shape signature and recompiles when input shapes change).
CompileResult CompileDag(const HopDag& dag, const SystemConfig& config,
                         const ShapeResolver& resolver,
                         const CompileOptions& options);

}  // namespace memphis::compiler

#endif  // MEMPHIS_COMPILER_PLACEMENT_H_
