// Static plan verifier: proves the compiled artifact chain -- hop DAG,
// linearized instruction program, fused plans -- safe to execute and safe
// to feed the lineage cache, before the Executor ever touches it.
//
// The verifier is deliberately independent of the passes it checks: it
// re-derives shapes through the OpRegistry rather than trusting what
// InferShapesAndFlops recorded, recomputes liveness rather than trusting
// last_use, and re-walks fused recipes rather than trusting the costed
// grouping. A bug in a compiler pass and the same bug in the verifier
// would have to agree byte-for-byte to slip through.

#include "compiler/verifier.h"

#include <exception>
#include <sstream>
#include <vector>

#include "common/status.h"
#include "compiler/fusion.h"
#include "compiler/op_registry.h"
#include "matrix/fused_kernel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace memphis::compiler {

namespace {

bool IsTransfer(const std::string& opcode) {
  return opcode == "collect" || opcode == "parallelize" || opcode == "bcast" ||
         opcode == "h2d" || opcode == "d2h" || opcode == "checkpoint";
}

bool IsLeaf(const std::string& opcode) {
  return opcode == "read" || opcode == "literal";
}

/// Where an instruction's *result* lives, which for transfer ops differs
/// from the backend that executes them: collect runs as a Spark action but
/// lands a host matrix; d2h runs on the GPU stream but lands on the host.
Backend Residence(const Instruction& inst) {
  if (inst.opcode == "collect" || inst.opcode == "d2h") return Backend::kCP;
  if (inst.opcode == "parallelize" || inst.opcode == "bcast" ||
      inst.opcode == "checkpoint") {
    return Backend::kSpark;
  }
  if (inst.opcode == "h2d") return Backend::kGpu;
  return inst.backend;
}

bool SameDims(const Shape& a, const Shape& b) {
  return a.rows == b.rows && a.cols == b.cols;
}

std::string ShapeStr(const Shape& shape) {
  std::ostringstream oss;
  oss << shape.rows << "x" << shape.cols;
  return oss.str();
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Shared state of one verification run: the report under construction and
/// the FNV-1a summary hash folded over the structural walk.
struct Verification {
  VerifierReport report;
  bool full = false;  // kFull: re-derive shapes; kSummary: structure only.

  void Fold(uint64_t value) {
    uint64_t h = report.summary_hash == 0 ? kFnvOffset : report.summary_hash;
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xff;
      h *= kFnvPrime;
    }
    report.summary_hash = h;
  }
  void Fold(const std::string& value) {
    uint64_t h = report.summary_hash == 0 ? kFnvOffset : report.summary_hash;
    for (const char c : value) {
      h ^= static_cast<unsigned char>(c);
      h *= kFnvPrime;
    }
    report.summary_hash = h;
  }

  void Diagnose(const char* pass, const Instruction& inst, int slot,
                std::string message) {
    VerifierDiagnostic diag;
    diag.pass = pass;
    diag.hop_id = inst.hop_id;
    diag.source_line = inst.source_line;
    diag.origin_pass = inst.origin_pass;
    std::ostringstream oss;
    oss << "slot " << slot << " (" << inst.opcode << "): " << message;
    diag.message = oss.str();
    report.diagnostics.push_back(std::move(diag));
  }
};

// --- pass 1: shape dataflow --------------------------------------------------

/// Re-derives every non-leaf shape bottom-up through the OpRegistry's infer
/// functions and checks it against what the compiler recorded. Transfers
/// must preserve shape exactly; fused shapes are re-derived recipe-by-
/// recipe in VerifyFused below.
void VerifyShapeDataflow(const std::vector<Instruction>& instructions,
                         Verification* v) {
  for (size_t i = 0; i < instructions.size(); ++i) {
    const Instruction& inst = instructions[i];
    if (inst.opcode == "literal") {
      if (!SameDims(inst.out_shape, Shape{1, 1})) {
        v->Diagnose("shape-dataflow", inst, static_cast<int>(i),
                    "literal must be 1x1, recorded " +
                        ShapeStr(inst.out_shape));
      }
      continue;
    }
    if (inst.opcode == "read") continue;  // Leaf: the resolver is trusted.
    if (IsTransfer(inst.opcode)) {
      if (inst.input_slots.size() == 1) {
        const Shape& in = instructions[inst.input_slots[0]].out_shape;
        if (!SameDims(inst.out_shape, in)) {
          v->Diagnose("shape-dataflow", inst, static_cast<int>(i),
                      "transfer changes shape " + ShapeStr(in) + " -> " +
                          ShapeStr(inst.out_shape));
        }
      }
      continue;
    }
    if (inst.opcode == "fused") continue;  // Re-derived in VerifyFused.
    const OpSpec* spec = FindOp(inst.opcode);
    if (spec == nullptr) {
      v->Diagnose("shape-dataflow", inst, static_cast<int>(i),
                  "opcode not registered in the OpRegistry");
      continue;
    }
    if (spec->arity >= 0 &&
        inst.input_slots.size() != static_cast<size_t>(spec->arity)) {
      v->Diagnose("shape-dataflow", inst, static_cast<int>(i),
                  "arity mismatch: op declares " +
                      std::to_string(spec->arity) + ", instruction has " +
                      std::to_string(inst.input_slots.size()) + " inputs");
      continue;
    }
    std::vector<Shape> input_shapes;
    input_shapes.reserve(inst.input_slots.size());
    for (const int slot : inst.input_slots) {
      input_shapes.push_back(instructions[slot].out_shape);
    }
    Shape derived;
    try {
      derived = spec->infer(input_shapes, inst.args);
    } catch (const std::exception& error) {
      v->Diagnose("shape-dataflow", inst, static_cast<int>(i),
                  std::string("shape inference failed: ") + error.what());
      continue;
    }
    if (!SameDims(derived, inst.out_shape)) {
      v->Diagnose("shape-dataflow", inst, static_cast<int>(i),
                  "recorded shape " + ShapeStr(inst.out_shape) +
                      " contradicts re-derived " + ShapeStr(derived));
    }
  }
}

// --- pass 2: def-before-use / single assignment ------------------------------

void VerifyDefUse(const CompileResult& plan, Verification* v) {
  const std::vector<Instruction>& instructions = plan.instructions;
  const bool aligned = plan.order.size() == instructions.size();
  if (!plan.order.empty() && !aligned && !instructions.empty()) {
    v->Diagnose("def-use", instructions.front(), 0,
                "hop order and instruction stream have different lengths");
  }
  std::vector<int> last_use_oracle(instructions.size(), -1);
  for (size_t i = 0; i < instructions.size(); ++i) {
    const Instruction& inst = instructions[i];
    if (inst.output_slot != static_cast<int>(i)) {
      v->Diagnose("def-use", inst, static_cast<int>(i),
                  "output_slot " + std::to_string(inst.output_slot) +
                      " breaks single assignment (slot i is defined by "
                      "instruction i)");
    }
    for (const int slot : inst.input_slots) {
      if (slot < 0 || slot >= static_cast<int>(i)) {
        v->Diagnose("def-use", inst, static_cast<int>(i),
                    "input slot " + std::to_string(slot) +
                        " is not defined before use");
        continue;
      }
      last_use_oracle[slot] = static_cast<int>(i);
    }
    // Output-binding consistency, including the CSE multi-output form:
    // extra names require a primary name and no name may repeat.
    if (inst.output_var.empty() && !inst.extra_output_vars.empty()) {
      v->Diagnose("def-use", inst, static_cast<int>(i),
                  "extra_output_vars without a primary output_var");
    }
    for (size_t a = 0; a < inst.extra_output_vars.size(); ++a) {
      if (inst.extra_output_vars[a] == inst.output_var) {
        v->Diagnose("def-use", inst, static_cast<int>(i),
                    "duplicate output binding '" + inst.output_var + "'");
      }
      for (size_t b = a + 1; b < inst.extra_output_vars.size(); ++b) {
        if (inst.extra_output_vars[a] == inst.extra_output_vars[b]) {
          v->Diagnose("def-use", inst, static_cast<int>(i),
                      "duplicate output binding '" +
                          inst.extra_output_vars[a] + "'");
        }
      }
    }
    if (aligned && !plan.order.empty()) {
      const Hop& hop = *plan.order[i];
      if (inst.hop_id != hop.id() || inst.opcode != hop.opcode()) {
        v->Diagnose("def-use", inst, static_cast<int>(i),
                    "instruction provenance does not match hop order (hop %" +
                        std::to_string(hop.id()) + " '" + hop.opcode() + "')");
      }
    }
  }
  // The executor frees slots at last_use; stale liveness metadata would
  // free a slot that is read again later.
  if (!plan.last_use.empty() && plan.last_use != last_use_oracle &&
      !instructions.empty()) {
    v->Diagnose("def-use", instructions.front(), 0,
                "last_use metadata does not match recomputed liveness");
  }
}

// --- pass 3: placement legality ----------------------------------------------

void VerifyPlacement(const CompileResult& plan, const SystemConfig& config,
                     Verification* v) {
  const std::vector<Instruction>& instructions = plan.instructions;
  const bool aligned = plan.order.size() == instructions.size();
  for (size_t i = 0; i < instructions.size(); ++i) {
    const Instruction& inst = instructions[i];
    const bool forced =
        aligned && !plan.order.empty() && plan.order[i]->has_forced_backend();

    if (IsTransfer(inst.opcode)) {
      // Transfers execute on the backend that owns the channel.
      const Backend expected =
          inst.opcode == "h2d" || inst.opcode == "d2h" ? Backend::kGpu
                                                       : Backend::kSpark;
      if (inst.backend != expected) {
        v->Diagnose("placement", inst, static_cast<int>(i),
                    std::string("transfer must run on ") + ToString(expected) +
                        ", placed on " + ToString(inst.backend));
      }
      if (inst.input_slots.size() != 1) {
        v->Diagnose("placement", inst, static_cast<int>(i),
                    "transfer must have exactly one input");
        continue;
      }
      const Instruction& producer = instructions[inst.input_slots[0]];
      const Backend from = Residence(producer);
      Backend wanted = Backend::kCP;
      if (inst.opcode == "collect" || inst.opcode == "checkpoint") {
        wanted = Backend::kSpark;
      } else if (inst.opcode == "d2h") {
        wanted = Backend::kGpu;
      }  // parallelize/bcast/h2d move host-resident data.
      if (from != wanted) {
        v->Diagnose("placement", inst, static_cast<int>(i),
                    std::string("operand resides on ") + ToString(from) +
                        ", transfer expects " + ToString(wanted));
      }
      continue;
    }

    if (!IsLeaf(inst.opcode) && inst.opcode != "fused") {
      const OpSpec* spec = FindOp(inst.opcode);
      if (spec != nullptr && !forced) {
        // Capability: heuristic placement may only pick backends the op has
        // a registered kernel for. Forced hints are exempt -- the executor
        // runs the reference kernel on the host shadow for those.
        if (inst.backend == Backend::kSpark && !spec->spark_capable) {
          v->Diagnose("placement", inst, static_cast<int>(i),
                      "placed on Spark without a Spark-capable kernel");
        }
        if (inst.backend == Backend::kGpu && !spec->gpu_capable) {
          v->Diagnose("placement", inst, static_cast<int>(i),
                      "placed on GPU without a GPU-capable kernel");
        }
        if (inst.backend == Backend::kSpark && !config.enable_spark) {
          v->Diagnose("placement", inst, static_cast<int>(i),
                      "placed on Spark while enable_spark is off");
        }
        if (inst.backend == Backend::kGpu && !config.enable_gpu) {
          v->Diagnose("placement", inst, static_cast<int>(i),
                      "placed on GPU while enable_gpu is off");
        }
      }
    }
    if (inst.opcode == "fused" && inst.backend != Backend::kCP) {
      v->Diagnose("placement", inst, static_cast<int>(i),
                  "fused groups are CP-only, placed on " +
                      std::string(ToString(inst.backend)));
    }

    // Residence: every operand must already live where the instruction
    // runs; cross-backend edges need an explicit transfer. The one
    // exemption mirrors the compiler: a local scalar travels to Spark
    // inside the instruction stream.
    for (const int slot : inst.input_slots) {
      if (slot < 0 || slot >= static_cast<int>(i)) continue;  // Pass 2's job.
      const Instruction& producer = instructions[slot];
      const Backend from = Residence(producer);
      if (from == inst.backend) continue;
      if (inst.backend == Backend::kSpark && from == Backend::kCP &&
          producer.out_shape.Cells() <= 1) {
        continue;
      }
      v->Diagnose("placement", inst, static_cast<int>(i),
                  std::string("operand in slot ") + std::to_string(slot) +
                      " resides on " + ToString(from) + " but the op runs on " +
                      ToString(inst.backend) + " with no transfer between");
    }
  }
}

// --- pass 4: fused-group closure ---------------------------------------------

/// External input shape implied by the plan's broadcast classification.
Shape ExternalShape(const kernels::TileProgram& program, size_t index) {
  switch (program.inputs[index]) {
    case kernels::TileInput::kFull:
      return Shape{program.rows, program.cols};
    case kernels::TileInput::kScalar:
      return Shape{1, 1};
    case kernels::TileInput::kRow:
      return Shape{1, program.cols};
    case kernels::TileInput::kCol:
      return Shape{program.rows, 1};
  }
  return Shape{0, 0};
}

/// Verifies one fused instruction: closure of the recipe set, root-last
/// ordering, tile-program consistency, member purity, and (full mode)
/// recipe-by-recipe shape re-derivation. `slot_shapes` carries the actual
/// shapes of the instruction's input slots when verifying inside a plan;
/// nullptr (the fallback re-check) derives them from the broadcast kinds.
void VerifyFused(const Instruction& inst, int slot,
                 const std::vector<Shape>* slot_shapes, Verification* v) {
  if (inst.fused == nullptr) {
    v->Diagnose("fused-closure", inst, slot,
                "fused instruction without a FusedPlan");
    return;
  }
  const FusedPlan& plan = *inst.fused;
  const kernels::TileProgram& program = plan.program;
  const size_t num_inputs = plan.num_inputs;
  const bool reduce = program.reduce != kernels::TileReduce::kNone;

  if (plan.recipes.empty()) {
    v->Diagnose("fused-closure", inst, slot, "fused group with no recipes");
    return;
  }
  if (program.inputs.size() != num_inputs) {
    v->Diagnose("fused-closure", inst, slot,
                "tile program declares " +
                    std::to_string(program.inputs.size()) +
                    " inputs, plan declares " + std::to_string(num_inputs));
    return;
  }
  if (slot_shapes != nullptr && slot_shapes->size() != num_inputs) {
    v->Diagnose("fused-closure", inst, slot,
                "instruction has " + std::to_string(slot_shapes->size()) +
                    " input slots for " + std::to_string(num_inputs) +
                    " declared externals");
    return;
  }
  const size_t expected_ops = plan.recipes.size() - (reduce ? 1 : 0);
  if (program.ops.size() != expected_ops) {
    v->Diagnose("fused-closure", inst, slot,
                "tile program has " + std::to_string(program.ops.size()) +
                    " ops for " + std::to_string(plan.recipes.size()) +
                    " recipes" + (reduce ? " (reduce root carries none)" : ""));
    return;
  }

  // External shapes: the actual slot shapes must agree with the broadcast
  // classification baked into the tile program.
  std::vector<Shape> externals(num_inputs);
  for (size_t e = 0; e < num_inputs; ++e) {
    externals[e] = ExternalShape(program, e);
    if (v->full && slot_shapes != nullptr &&
        !SameDims((*slot_shapes)[e], externals[e])) {
      v->Diagnose("fused-closure", inst, slot,
                  "external " + std::to_string(e) + " is " +
                      ShapeStr((*slot_shapes)[e]) +
                      " but the tile program classified it as " +
                      ShapeStr(externals[e]));
    }
  }

  auto check_ref = [&](const kernels::TileRef& ref, size_t recipe_index,
                       const char* what) -> bool {
    if (ref.external) {
      if (ref.index < 0 || static_cast<size_t>(ref.index) >= num_inputs) {
        v->Diagnose("fused-closure", inst, slot,
                    std::string(what) + " references undeclared external " +
                        std::to_string(ref.index));
        return false;
      }
      return true;
    }
    if (ref.index < 0 || static_cast<size_t>(ref.index) >= recipe_index ||
        static_cast<size_t>(ref.index) >= program.ops.size()) {
      v->Diagnose("fused-closure", inst, slot,
                  std::string(what) + " references register " +
                      std::to_string(ref.index) +
                      " outside the earlier-recipe range");
      return false;
    }
    return true;
  };

  std::vector<bool> consumed(plan.recipes.size(), false);
  std::vector<Shape> recipe_shapes(plan.recipes.size());
  bool refs_ok = true;
  for (size_t r = 0; r < plan.recipes.size(); ++r) {
    const FusedOpRecipe& recipe = plan.recipes[r];
    const OpSpec* spec = FindOp(recipe.opcode);
    if (spec == nullptr) {
      v->Diagnose("fused-closure", inst, slot,
                  "recipe " + std::to_string(r) + " opcode '" +
                      recipe.opcode + "' is not registered");
      refs_ok = false;
      continue;
    }
    // Lineage purity of the group: member items never carry a nonce, so a
    // random member would silently produce a deterministic-looking
    // composite key.
    if (spec->determinism != OpDeterminism::kDeterministic) {
      v->Diagnose("lineage-purity", inst, slot,
                  "recipe " + std::to_string(r) + " opcode '" +
                      recipe.opcode +
                      "' is not deterministic; fused members must be");
    }
    std::vector<Shape> in_shapes;
    in_shapes.reserve(recipe.inputs.size());
    bool ok = true;
    for (const kernels::TileRef& ref : recipe.inputs) {
      if (!check_ref(ref, r, "recipe operand")) {
        ok = false;
        refs_ok = false;
        continue;
      }
      if (!ref.external) consumed[ref.index] = true;
      in_shapes.push_back(ref.external
                              ? externals[ref.index]
                              : recipe_shapes[ref.index]);
    }
    recipe_shapes[r] = recipe.out_shape;
    if (!ok || !v->full) continue;
    try {
      const Shape derived = spec->infer(in_shapes, recipe.args);
      if (!SameDims(derived, recipe.out_shape)) {
        v->Diagnose("fused-closure", inst, slot,
                    "recipe " + std::to_string(r) + " ('" + recipe.opcode +
                        "') recorded " + ShapeStr(recipe.out_shape) +
                        " contradicts re-derived " + ShapeStr(derived));
      }
    } catch (const std::exception& error) {
      v->Diagnose("fused-closure", inst, slot,
                  "recipe " + std::to_string(r) +
                      " shape inference failed: " + error.what());
    }
  }
  if (reduce) {
    if (check_ref(program.reduce_input, plan.recipes.size() - 1,
                  "reduce input") &&
        !program.reduce_input.external) {
      consumed[program.reduce_input.index] = true;
    }
  }
  if (!refs_ok) return;

  // Closure / root-last: every recipe but the last must feed a later
  // recipe (or the terminal reduction); the last recipe is the root whose
  // value becomes the instruction's result.
  for (size_t r = 0; r + 1 < plan.recipes.size(); ++r) {
    if (!consumed[r]) {
      v->Diagnose("fused-closure", inst, slot,
                  "recipe " + std::to_string(r) + " ('" +
                      plan.recipes[r].opcode +
                      "') feeds nothing: the recipe set is not closed with "
                      "the root last");
    }
  }
  const Shape root_shape = reduce ? Shape{1, 1} : plan.recipes.back().out_shape;
  if (!SameDims(inst.out_shape, root_shape)) {
    v->Diagnose("fused-closure", inst, slot,
                "instruction shape " + ShapeStr(inst.out_shape) +
                    " does not match the group root's " +
                    ShapeStr(root_shape));
  }
  if (v->full && !reduce &&
      !SameDims(plan.recipes.back().out_shape,
                Shape{program.rows, program.cols})) {
    v->Diagnose("fused-closure", inst, slot,
                "elementwise domain " +
                    ShapeStr(Shape{program.rows, program.cols}) +
                    " does not match the root shape " +
                    ShapeStr(plan.recipes.back().out_shape));
  }
}

// --- pass 5: lineage purity --------------------------------------------------

/// Proves no cacheable lineage key can derive from an unprotected
/// nondeterministic source: every unseeded random instruction must be
/// flagged nondeterministic, and every nondeterministic instruction must
/// carry a nonzero nonce. A nonce makes every derived key unique (it can
/// never match, so it can never poison the cache across tenants); the
/// session-local '@'-leaf filter stays dynamic in SharedLineageStore, which
/// is sound because admission -- not key construction -- is the boundary.
void VerifyLineagePurity(const std::vector<Instruction>& instructions,
                         Verification* v) {
  for (size_t i = 0; i < instructions.size(); ++i) {
    const Instruction& inst = instructions[i];
    if (inst.opcode == "read") {
      if (inst.var_name.empty()) {
        v->Diagnose("lineage-purity", inst, static_cast<int>(i),
                    "read without a variable name would produce an extern "
                    "lineage leaf that aliases every unnamed input");
      }
      continue;
    }
    const OpSpec* spec = FindOp(inst.opcode);
    if (spec != nullptr) {
      if (spec->determinism == OpDeterminism::kUnspecified) {
        v->Diagnose("lineage-purity", inst, static_cast<int>(i),
                    "op does not declare its determinism");
      }
      const bool unseeded =
          spec->seeded && (inst.args.empty() || inst.args.back() < 0);
      if (unseeded && !inst.nondeterministic) {
        v->Diagnose("lineage-purity", inst, static_cast<int>(i),
                    "unseeded random op is not flagged nondeterministic: its "
                    "lineage key would be cacheable");
      }
    }
    if (inst.nondeterministic && inst.nonce == 0) {
      v->Diagnose("lineage-purity", inst, static_cast<int>(i),
                  "nondeterministic instruction without a nonce: every "
                  "derived lineage key is cacheable poison");
    }
    if (!inst.nondeterministic && inst.nonce != 0) {
      v->Diagnose("lineage-purity", inst, static_cast<int>(i),
                  "nonce on a deterministic instruction (inconsistent "
                  "compiler state)");
    }
  }
}

void FoldStructure(const std::vector<Instruction>& instructions,
                   Verification* v) {
  v->Fold(static_cast<uint64_t>(instructions.size()));
  for (const Instruction& inst : instructions) {
    v->Fold(inst.opcode);
    v->Fold(static_cast<uint64_t>(inst.backend));
    v->Fold(static_cast<uint64_t>(inst.out_shape.rows));
    v->Fold(static_cast<uint64_t>(inst.out_shape.cols));
    for (const int slot : inst.input_slots) {
      v->Fold(static_cast<uint64_t>(slot));
    }
    v->Fold(inst.output_var);
    v->Fold(static_cast<uint64_t>(inst.nondeterministic ? 1 : 0));
    v->Fold(static_cast<uint64_t>(inst.nonce != 0 ? 1 : 0));
    if (inst.fused != nullptr) {
      v->Fold(static_cast<uint64_t>(inst.fused->recipes.size()));
    }
  }
}

}  // namespace

std::string VerifierDiagnostic::Format() const {
  std::ostringstream oss;
  oss << "[" << pass << "] ";
  if (hop_id >= 0) oss << "hop %" << hop_id << " ";
  if (source_line > 0) oss << "line " << source_line << " ";
  oss << "(pass " << origin_pass << "): " << message;
  return oss.str();
}

std::string VerifierReport::FormatAll() const {
  std::ostringstream oss;
  oss << "plan verification failed with " << diagnostics.size()
      << " violation" << (diagnostics.size() == 1 ? "" : "s") << ":";
  constexpr size_t kMaxShown = 8;
  for (size_t i = 0; i < diagnostics.size() && i < kMaxShown; ++i) {
    oss << "\n  " << diagnostics[i].Format();
  }
  if (diagnostics.size() > kMaxShown) {
    oss << "\n  ... and " << diagnostics.size() - kMaxShown << " more";
  }
  return oss.str();
}

VerifierReport VerifyPlan(const CompileResult& plan,
                          const SystemConfig& config, VerifyMode mode) {
  Verification v;
  if (mode == VerifyMode::kOff) return std::move(v.report);
  v.full = mode == VerifyMode::kFull;

  FoldStructure(plan.instructions, &v);
  if (v.full) VerifyShapeDataflow(plan.instructions, &v);
  VerifyDefUse(plan, &v);
  VerifyPlacement(plan, config, &v);
  for (size_t i = 0; i < plan.instructions.size(); ++i) {
    const Instruction& inst = plan.instructions[i];
    if (inst.opcode != "fused" && inst.fused == nullptr) continue;
    std::vector<Shape> slot_shapes;
    slot_shapes.reserve(inst.input_slots.size());
    bool slots_ok = true;
    for (const int slot : inst.input_slots) {
      if (slot < 0 || slot >= static_cast<int>(i)) {
        slots_ok = false;
        break;
      }
      slot_shapes.push_back(plan.instructions[slot].out_shape);
    }
    VerifyFused(inst, static_cast<int>(i),
                slots_ok ? &slot_shapes : nullptr, &v);
  }
  VerifyLineagePurity(plan.instructions, &v);
  return std::move(v.report);
}

VerifierReport VerifyFusedInstruction(const Instruction& inst) {
  Verification v;
  v.full = true;
  VerifyFused(inst, inst.output_slot, /*slot_shapes=*/nullptr, &v);
  return std::move(v.report);
}

void MaybeVerifyPlan(const CompileResult& plan, const SystemConfig& config) {
  if (config.verify_plans == VerifyMode::kOff) return;
  obs::ScopedSpan span(
      "compiler", "verify", "mode",
      static_cast<double>(static_cast<int>(config.verify_plans)),
      "instructions", static_cast<double>(plan.instructions.size()));
  VerifierReport report = VerifyPlan(plan, config, config.verify_plans);
  auto& metrics = obs::MetricsRegistry::Global();
  ++*metrics.GetCounter("verifier.plans_checked");
  *metrics.GetCounter("verifier.instructions_checked") +=
      static_cast<int64_t>(plan.instructions.size());
  int64_t fused = 0;
  for (const Instruction& inst : plan.instructions) {
    if (inst.fused != nullptr) ++fused;
  }
  *metrics.GetCounter("verifier.fused_plans_checked") += fused;
  if (!report.ok()) {
    *metrics.GetCounter("verifier.violations") +=
        static_cast<int64_t>(report.diagnostics.size());
    throw MemphisError(report.FormatAll());
  }
}

void MaybeVerifyFusedFallback(const Instruction& inst,
                              const SystemConfig& config) {
  // The fallback interpreter re-reads the recipes the streaming kernel
  // skips, so re-prove the group right before trusting them. The fallback
  // fires per execution (interior cache hits are common under heavy reuse),
  // so the proof is memoized on the immutable plan: a hot group pays once
  // per VerifyMode, then the check is a single relaxed load.
  if (config.verify_plans == VerifyMode::kOff) return;
  const uint32_t mode_bit =
      1u << static_cast<uint32_t>(config.verify_plans);
  if (inst.fused &&
      (inst.fused->fallback_verified.load(std::memory_order_relaxed) &
       mode_bit) != 0) {
    return;
  }
  obs::ScopedSpan span("compiler", "verify-fused-fallback");
  VerifierReport report = VerifyFusedInstruction(inst);
  auto& metrics = obs::MetricsRegistry::Global();
  ++*metrics.GetCounter("verifier.fallback_checked");
  if (!report.ok()) {
    *metrics.GetCounter("verifier.violations") +=
        static_cast<int64_t>(report.diagnostics.size());
    throw MemphisError(report.FormatAll());
  }
  if (inst.fused) {
    inst.fused->fallback_verified.fetch_or(mode_bit,
                                           std::memory_order_relaxed);
  }
}

}  // namespace memphis::compiler
