#include "compiler/hop.h"

#include <sstream>

namespace memphis::compiler {

std::atomic<int> Hop::next_id_{1};

Hop::Hop(std::string opcode, std::vector<HopPtr> inputs,
         std::vector<double> args)
    : id_(next_id_++),
      opcode_(std::move(opcode)),
      inputs_(std::move(inputs)),
      args_(std::move(args)) {}

std::string Hop::DebugString() const {
  std::ostringstream oss;
  oss << "%" << id_ << " = " << ToString(backend_) << " " << opcode_ << "(";
  for (size_t i = 0; i < inputs_.size(); ++i) {
    oss << (i > 0 ? ", " : "") << "%" << inputs_[i]->id();
  }
  for (double arg : args_) oss << ", " << arg;
  oss << ") [" << shape_.rows << "x" << shape_.cols << "]";
  if (!var_name_.empty()) oss << " <- " << var_name_;
  if (asynchronous_) oss << " async";
  return oss.str();
}

HopPtr HopDag::Read(const std::string& name) {
  auto hop = std::make_shared<Hop>("read", std::vector<HopPtr>{},
                                   std::vector<double>{});
  hop->set_var_name(name);
  hop->set_source_line(current_source_line_);
  hops_.push_back(hop);
  return hop;
}

HopPtr HopDag::Literal(double value) {
  auto hop = std::make_shared<Hop>("literal", std::vector<HopPtr>{},
                                   std::vector<double>{value});
  hop->set_source_line(current_source_line_);
  hops_.push_back(hop);
  return hop;
}

HopPtr HopDag::Op(const std::string& opcode, std::vector<HopPtr> inputs,
                  std::vector<double> args) {
  auto hop =
      std::make_shared<Hop>(opcode, std::move(inputs), std::move(args));
  hop->set_source_line(current_source_line_);
  hops_.push_back(hop);
  return hop;
}

void HopDag::Write(const std::string& name, const HopPtr& hop) {
  outputs_.push_back(hop);
  output_names_.push_back(name);
}

}  // namespace memphis::compiler
