#ifndef MEMPHIS_COMPILER_PARSER_H_
#define MEMPHIS_COMPILER_PARSER_H_

#include <memory>
#include <string>

#include "compiler/program.h"

namespace memphis::compiler {

/// A DML-style script frontend (SystemDS's surface syntax, reduced): parses
/// a sequence of assignments into a basic block's hop DAG.
///
///   gram = t(X) %*% X;
///   A    = gram + diag(reg * rand(64, 1, 1, 1, 1, 7));
///   b    = t(t(y) %*% X);
///   beta = solve(A, b);
///
/// Supported syntax:
///  * statements:  name = expr ;
///  * operators:   + - * / %*% ^  with usual precedence, parentheses
///  * comparisons: > >= < <= == !=
///  * functions:   t(x), and every OpRegistry operator by name with matrix
///    arguments first and numeric literal arguments mapped to op args,
///    e.g. rand(rows, cols, lo, hi, sparsity, seed), dropout(x, keep, seed),
///    sum(x), colSums(x), solve(A, b), pca(x, k), bin(x, bins), ...
///  * identifiers: previously assigned names resolve to their hop; anything
///    else becomes a runtime variable read.
///
/// Every assigned name becomes a block output (bound back to the runtime
/// variable map), so scripts compose with programmatic blocks. Throws
/// MemphisError with a position-annotated message on syntax errors.
std::shared_ptr<BasicBlock> ParseScript(const std::string& script);

/// Parses a script consisting of multiple `;`-separated statements plus
/// `for (v in a:b) { ... }` loops into a Program of blocks.
Program ParseProgram(const std::string& script);

}  // namespace memphis::compiler

#endif  // MEMPHIS_COMPILER_PARSER_H_
