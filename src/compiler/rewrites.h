#ifndef MEMPHIS_COMPILER_REWRITES_H_
#define MEMPHIS_COMPILER_REWRITES_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "compiler/hop.h"

namespace memphis::compiler {

struct Program;  // program.h

/// Prefetch / broadcast rewrite (Section 5.1): flags the roots of remote
/// operator chains -- `collect` (Spark actions) and `d2h` (GPU-to-host
/// copies) -- plus `bcast` ops for asynchronous execution. At runtime these
/// return future objects, overlapping remote work with the local stream.
void MarkAsynchronousOps(const std::vector<HopPtr>& order);

/// Checkpoint rewrite 1 (Section 5.2): when two Spark jobs inside one block
/// share a dataflow prefix, injects a `checkpoint` hop after the last shared
/// operator so the second job reads the cached partitions.
void RewriteCheckpointSharedJobs(std::vector<HopPtr>* outputs);

/// Checkpoint rewrite 2 (Section 5.2, Figure 9(c)): wraps Spark-placed block
/// outputs named in `checkpoint_vars` (loop-updated variables identified by
/// the program-level pass) in `checkpoint` hops.
void RewriteCheckpointLoopVars(
    std::vector<HopPtr>* outputs, const std::vector<std::string>& output_names,
    const std::unordered_set<std::string>& checkpoint_vars);

}  // namespace memphis::compiler

#endif  // MEMPHIS_COMPILER_REWRITES_H_
