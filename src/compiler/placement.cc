#include "compiler/placement.h"

#include <atomic>
#include <sstream>
#include <unordered_map>

#include "common/status.h"
#include "compiler/fusion.h"
#include "compiler/op_registry.h"
#include "compiler/rewrites.h"
#include "compiler/verifier.h"

namespace memphis::compiler {

namespace {

std::atomic<uint64_t> g_nondet_nonce{1};

/// Deep-clones the DAG reachable from `outputs`, preserving sharing, forced
/// backends, and loop-dependence flags.
std::vector<HopPtr> CloneDag(const std::vector<HopPtr>& outputs,
                             std::unordered_map<int, HopPtr>* clone_of) {
  std::vector<HopPtr> cloned_outputs;
  // Post-order ensures inputs are cloned before consumers.
  std::vector<HopPtr> order = LinearizeDepthFirst(outputs);
  for (const auto& hop : order) {
    std::vector<HopPtr> inputs;
    inputs.reserve(hop->inputs().size());
    for (const auto& input : hop->inputs()) {
      inputs.push_back(clone_of->at(input->id()));
    }
    auto clone = std::make_shared<Hop>(hop->opcode(), std::move(inputs),
                                       hop->args());
    clone->set_var_name(hop->var_name());
    if (hop->has_forced_backend()) clone->ForceBackend(hop->backend());
    clone->set_loop_dependent(hop->loop_dependent());
    clone->set_source_line(hop->source_line());
    clone->set_origin_pass(hop->origin_pass());
    (*clone_of)[hop->id()] = clone;
  }
  cloned_outputs.reserve(outputs.size());
  for (const auto& output : outputs) {
    cloned_outputs.push_back(clone_of->at(output->id()));
  }
  return cloned_outputs;
}

std::string CseKey(const Hop& hop,
                   const std::unordered_map<int, int>& canonical_id) {
  std::ostringstream oss;
  oss << hop.opcode();
  if (hop.opcode() == "read") oss << ':' << hop.var_name();
  for (double arg : hop.args()) oss << ',' << arg;
  for (const auto& input : hop.inputs()) {
    oss << ";%" << canonical_id.at(input->id());
  }
  return oss.str();
}

/// Common subexpression elimination: hash-consing over (opcode, args,
/// canonical inputs); nondeterministic hops are never merged.
void Cse(std::vector<HopPtr>* outputs) {
  std::vector<HopPtr> order = LinearizeDepthFirst(*outputs);
  std::unordered_map<std::string, HopPtr> canon;
  std::unordered_map<int, int> canonical_id;
  std::unordered_map<int, HopPtr> replacement;
  for (const auto& hop : order) {
    for (size_t i = 0; i < hop->inputs().size(); ++i) {
      auto it = replacement.find(hop->inputs()[i]->id());
      if (it != replacement.end()) hop->ReplaceInput(i, it->second);
    }
    const OpSpec* spec = FindOp(hop->opcode());
    const bool mergeable = !(spec != nullptr && spec->seeded &&
                             (hop->args().empty() || hop->args().back() < 0));
    if (!mergeable) {
      canonical_id[hop->id()] = hop->id();
      continue;
    }
    const std::string key = CseKey(*hop, canonical_id);
    auto [it, inserted] = canon.try_emplace(key, hop);
    canonical_id[hop->id()] = it->second->id();
    if (!inserted) replacement[hop->id()] = it->second;
  }
  for (auto& output : *outputs) {
    auto it = replacement.find(output->id());
    if (it != replacement.end()) output = it->second;
  }
}

/// Rewrites matmult(transpose(X), X) into the fused tsmm(X) pattern that
/// Spark executes as a shuffle-based single-block aggregate (Example 4.1).
void RewriteTsmm(const std::vector<HopPtr>& order) {
  for (const auto& hop : order) {
    if (hop->opcode() != "matmult" || hop->inputs().size() != 2) continue;
    const HopPtr& left = hop->inputs()[0];
    if (left->opcode() != "transpose") continue;
    if (left->inputs()[0].get() == hop->inputs()[1].get()) {
      hop->MutateTo("tsmm", {hop->inputs()[1]}, "tsmm-rewrite");
    } else {
      // t(A) %*% B with row-aligned A, B: fuse so Spark can zip partials.
      hop->MutateTo("tsmm2", {left->inputs()[0], hop->inputs()[1]},
                    "tsmm-rewrite");
    }
  }
}

void InferShapesAndFlops(const std::vector<HopPtr>& order,
                         const ShapeResolver& resolver) {
  for (const auto& hop : order) {
    if (hop->opcode() == "read") {
      const VarInfo info = resolver(hop->var_name());
      hop->set_shape(info.shape);
      if (!hop->has_forced_backend()) hop->set_backend(info.location);
      continue;
    }
    if (hop->opcode() == "literal") {
      hop->set_shape({1, 1});
      continue;
    }
    const OpSpec* spec = FindOp(hop->opcode());
    MEMPHIS_CHECK_MSG(spec != nullptr, "unknown opcode: " + hop->opcode());
    std::vector<Shape> input_shapes;
    input_shapes.reserve(hop->inputs().size());
    for (const auto& input : hop->inputs()) {
      input_shapes.push_back(input->shape());
    }
    hop->set_shape(spec->infer(input_shapes, hop->args()));
    hop->set_flops(spec->flops(input_shapes, hop->shape(), hop->args()));
    if (spec->seeded && (hop->args().empty() || hop->args().back() < 0)) {
      hop->set_nondeterministic(true);
    }
  }
}

void PlaceOperators(const std::vector<HopPtr>& order,
                    const SystemConfig& config) {
  for (const auto& hop : order) {
    if (hop->has_forced_backend() || hop->opcode() == "read" ||
        hop->opcode() == "literal") {
      continue;
    }
    const OpSpec* spec = FindOp(hop->opcode());
    size_t max_bytes = hop->shape().Bytes();
    bool spark_input = false;
    bool gpu_input = false;
    for (const auto& input : hop->inputs()) {
      max_bytes = std::max(max_bytes, input->shape().Bytes());
      // Data locality: stay on Spark when a distributed input is not
      // trivially small (collecting it would dominate the operator).
      spark_input |= input->backend() == Backend::kSpark &&
                     input->shape().Bytes() > config.operation_memory / 8;
      gpu_input |= input->backend() == Backend::kGpu;
    }
    // Rule 1 (SystemDS): operators whose memory estimate exceeds the
    // operation memory run on Spark, in a data-locality-aware manner.
    if (config.enable_spark && spec->spark_capable &&
        (max_bytes > config.operation_memory || spark_input)) {
      hop->set_backend(Backend::kSpark);
      continue;
    }
    // Rule 2: compute-intensive dense operators go to the GPU.
    if (config.enable_gpu && spec->gpu_capable &&
        (gpu_input || hop->flops() >= config.gpu_offload_min_flops)) {
      hop->set_backend(Backend::kGpu);
      continue;
    }
    hop->set_backend(Backend::kCP);
  }
}

bool IsTransferOp(const std::string& opcode) {
  return opcode == "collect" || opcode == "parallelize" || opcode == "bcast" ||
         opcode == "h2d" || opcode == "d2h" || opcode == "checkpoint";
}

/// Inserts data-exchange hops on every cross-backend edge (the data-object
/// lifecycle of Figure 2(a)).
std::vector<HopPtr> InsertTransfers(std::vector<HopPtr>* outputs,
                                    const SystemConfig& config) {
  std::vector<HopPtr> order = LinearizeDepthFirst(*outputs);
  // One transfer hop per (producer, kind): shared across consumers.
  std::unordered_map<std::string, HopPtr> transfer_cache;

  auto transfer = [&](const HopPtr& producer,
                      const std::string& opcode) -> HopPtr {
    const std::string key = opcode + "#" + std::to_string(producer->id());
    auto it = transfer_cache.find(key);
    if (it != transfer_cache.end()) return it->second;
    auto hop = std::make_shared<Hop>(opcode, std::vector<HopPtr>{producer},
                                     std::vector<double>{});
    hop->set_shape(producer->shape());
    hop->set_backend(opcode == "h2d" || opcode == "d2h" ? Backend::kGpu
                                                        : Backend::kSpark);
    hop->set_source_line(producer->source_line());
    hop->set_origin_pass("transfer-insertion");
    transfer_cache[key] = hop;
    return hop;
  };

  auto route = [&](const HopPtr& consumer, size_t index) {
    const HopPtr& input = consumer->inputs()[index];
    const Backend from = input->backend();
    const Backend to = consumer->backend();
    if (from == to) return;
    if (IsTransferOp(consumer->opcode())) return;
    // Local scalars travel inside the instruction stream; distributed 1x1
    // aggregates still need their action (single-block aggregates call
    // reduce()/collect(), Section 4.1).
    if (to == Backend::kSpark && from == Backend::kCP &&
        input->shape().Cells() <= 1) {
      return;
    }

    HopPtr routed = input;
    if (from == Backend::kSpark) {
      routed = transfer(routed, "collect");
      if (to == Backend::kGpu) routed = transfer(routed, "h2d");
    } else if (from == Backend::kGpu) {
      routed = transfer(routed, "d2h");
      if (to == Backend::kSpark) {
        const bool broadcastable =
            routed->shape().Bytes() <= config.operation_memory / 4;
        routed = transfer(routed, broadcastable ? "bcast" : "parallelize");
      }
    } else {  // from CP.
      if (to == Backend::kGpu) {
        routed = transfer(routed, "h2d");
      } else {  // to Spark.
        const bool broadcastable =
            routed->shape().Bytes() <= config.operation_memory / 4;
        routed = transfer(routed, broadcastable ? "bcast" : "parallelize");
      }
    }
    consumer->ReplaceInput(index, routed);
  };

  for (const auto& hop : order) {
    for (size_t i = 0; i < hop->inputs().size(); ++i) route(hop, i);
  }
  // Block outputs that live on the GPU or in Spark stay there: the runtime
  // variable keeps the backend-local handle (multi-backend variables).
  return LinearizeDepthFirst(*outputs);
}

}  // namespace

CompileResult CompileDag(const HopDag& dag, const SystemConfig& config,
                         const ShapeResolver& resolver,
                         const CompileOptions& options) {
  std::unordered_map<int, HopPtr> clone_of;
  std::vector<HopPtr> outputs = CloneDag(dag.outputs(), &clone_of);

  Cse(&outputs);
  std::vector<HopPtr> order = LinearizeDepthFirst(outputs);
  RewriteTsmm(order);
  InferShapesAndFlops(order, resolver);
  PlaceOperators(order, config);
  order = InsertTransfers(&outputs, config);

  if (options.checkpoint_placement) {
    RewriteCheckpointSharedJobs(&outputs);
    RewriteCheckpointLoopVars(&outputs, dag.output_names(),
                              options.checkpoint_vars);
    order = LinearizeDepthFirst(outputs);
  }
  if (config.operator_fusion) {
    // After placement/transfers/checkpoints (fusion only groups CP chains,
    // and inserted transfer hops are natural group boundaries), before the
    // async rewrites and the final linearization.
    FuseOperators(outputs, config);
    order = LinearizeDepthFirst(outputs);
  }
  if (options.async_operators) {
    MarkAsynchronousOps(order);
  }

  order = options.max_parallelize ? LinearizeMaxParallelize(outputs)
                                  : LinearizeDepthFirst(outputs);

  // Stamp nondeterministic hops with a unique nonce so their lineage never
  // matches (randomized primitives are not reusable, Section 1).
  for (const auto& hop : order) {
    if (hop->nondeterministic()) {
      hop->set_nonce(g_nondet_nonce.fetch_add(1));
    }
  }

  CompileResult result;
  result.instructions =
      EmitInstructions(order, outputs, dag.output_names());
  result.last_use.assign(result.instructions.size(), -1);
  for (size_t i = 0; i < result.instructions.size(); ++i) {
    for (int slot : result.instructions[i].input_slots) {
      result.last_use[slot] = static_cast<int>(i);
    }
  }
  result.order = std::move(order);

  // Static plan verification: prove the artifact chain (hop DAG, linearized
  // program, fused plans) satisfies the invariant catalog before the
  // Executor ever sees it (DESIGN.md section 5i).
  MaybeVerifyPlan(result, config);
  return result;
}

}  // namespace memphis::compiler
