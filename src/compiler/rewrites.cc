#include "compiler/rewrites.h"

#include <unordered_map>
#include <unordered_set>

#include "compiler/linearize.h"

namespace memphis::compiler {

void MarkAsynchronousOps(const std::vector<HopPtr>& order) {
  for (const auto& hop : order) {
    if (hop->opcode() == "collect" || hop->opcode() == "d2h" ||
        hop->opcode() == "bcast") {
      hop->set_asynchronous(true);
    }
  }
}

void RewriteCheckpointSharedJobs(std::vector<HopPtr>* outputs) {
  std::vector<HopPtr> order = LinearizeDepthFirst(*outputs);

  // Reverse-reachability from action roots: for every Spark hop, how many
  // distinct jobs (collect roots) consume it?
  std::unordered_map<int, std::unordered_set<int>> roots_of;  // hop -> roots.
  // Process in reverse topological order (consumers before producers).
  std::unordered_map<int, std::vector<const Hop*>> consumers;
  for (const auto& hop : order) {
    for (const auto& input : hop->inputs()) {
      consumers[input->id()].push_back(hop.get());
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const HopPtr& hop = *it;
    auto& roots = roots_of[hop->id()];
    if (hop->opcode() == "collect") roots.insert(hop->id());
    for (const Hop* consumer : consumers[hop->id()]) {
      const auto& upstream = roots_of[consumer->id()];
      roots.insert(upstream.begin(), upstream.end());
    }
  }

  // Shared = Spark operators feeding >= 2 jobs. Checkpoint the *last*
  // shared operator of each chain: a shared op none of whose Spark
  // consumers is also shared.
  auto is_shared = [&](const Hop& hop) {
    return hop.backend() == Backend::kSpark && hop.opcode() != "checkpoint" &&
           hop.opcode() != "collect" && hop.opcode() != "bcast" &&
           hop.opcode() != "parallelize" && hop.opcode() != "read" &&
           roots_of[hop.id()].size() >= 2;
  };
  for (const auto& hop : order) {
    if (!is_shared(*hop)) continue;
    bool last_shared = true;
    for (const Hop* consumer : consumers[hop->id()]) {
      if (is_shared(*consumer)) {
        last_shared = false;
        break;
      }
    }
    if (!last_shared) continue;
    // Wrap: consumers of `hop` read through a checkpoint node.
    auto checkpoint = std::make_shared<Hop>(
        "checkpoint", std::vector<HopPtr>{hop}, std::vector<double>{});
    checkpoint->set_shape(hop->shape());
    checkpoint->set_backend(Backend::kSpark);
    checkpoint->set_source_line(hop->source_line());
    checkpoint->set_origin_pass("checkpoint-rewrite");
    for (const auto& node : order) {
      if (node.get() == checkpoint.get() || node.get() == hop.get()) continue;
      for (size_t i = 0; i < node->inputs().size(); ++i) {
        if (node->inputs()[i].get() == hop.get()) {
          node->ReplaceInput(i, checkpoint);
        }
      }
    }
    for (auto& output : *outputs) {
      if (output.get() == hop.get()) output = checkpoint;
    }
  }
}

void RewriteCheckpointLoopVars(
    std::vector<HopPtr>* outputs, const std::vector<std::string>& output_names,
    const std::unordered_set<std::string>& checkpoint_vars) {
  if (checkpoint_vars.empty()) return;
  for (size_t i = 0; i < outputs->size(); ++i) {
    HopPtr& output = (*outputs)[i];
    if (checkpoint_vars.count(output_names[i]) == 0) continue;
    if (output->backend() != Backend::kSpark) continue;
    if (output->opcode() == "checkpoint") continue;
    auto checkpoint = std::make_shared<Hop>(
        "checkpoint", std::vector<HopPtr>{output}, std::vector<double>{});
    checkpoint->set_shape(output->shape());
    checkpoint->set_backend(Backend::kSpark);
    checkpoint->set_source_line(output->source_line());
    checkpoint->set_origin_pass("checkpoint-rewrite");
    output = checkpoint;
  }
}

}  // namespace memphis::compiler
