#include "compiler/parser.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "common/status.h"
#include "compiler/op_registry.h"

namespace memphis::compiler {

namespace {

struct Token {
  enum class Kind {
    kIdent,
    kNumber,
    kOp,      // + - * / ^ %*% and comparisons.
    kLParen,
    kRParen,
    kLBrace,
    kRBrace,
    kComma,
    kAssign,
    kSemi,
    kColon,
    kKwFor,
    kKwIn,
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  double number = 0.0;
  size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : source_(source) { Advance(); }

  const Token& current() const { return current_; }

  /// 1-based source line of a byte offset, for hop provenance. O(offset),
  /// called once per statement.
  int LineAt(size_t offset) const {
    int line = 1;
    const size_t end = std::min(offset, source_.size());
    for (size_t i = 0; i < end; ++i) {
      if (source_[i] == '\n') ++line;
    }
    return line;
  }

  void Advance() {
    SkipWhitespaceAndComments();
    Token token;
    token.position = position_;
    if (position_ >= source_.size()) {
      token.kind = Token::Kind::kEnd;
      current_ = token;
      return;
    }
    const char c = source_[position_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
      size_t start = position_;
      while (position_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[position_])) ||
              source_[position_] == '_' || source_[position_] == '.')) {
        ++position_;
      }
      token.text = source_.substr(start, position_ - start);
      if (token.text == "for") {
        token.kind = Token::Kind::kKwFor;
      } else if (token.text == "in") {
        token.kind = Token::Kind::kKwIn;
      } else {
        token.kind = Token::Kind::kIdent;
      }
      current_ = token;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && position_ + 1 < source_.size() &&
         std::isdigit(static_cast<unsigned char>(source_[position_ + 1])) &&
         PrevSuggestsUnary())) {
      size_t consumed = 0;
      token.number = std::stod(source_.substr(position_), &consumed);
      position_ += consumed;
      token.kind = Token::Kind::kNumber;
      current_ = token;
      return;
    }
    auto two = source_.substr(position_, 2);
    auto three = source_.substr(position_, 3);
    if (three == "%*%") {
      token.kind = Token::Kind::kOp;
      token.text = "%*%";
      position_ += 3;
    } else if (two == ">=" || two == "<=" || two == "==" || two == "!=") {
      token.kind = Token::Kind::kOp;
      token.text = two;
      position_ += 2;
    } else {
      ++position_;
      switch (c) {
        case '+': case '-': case '*': case '/': case '^':
        case '>': case '<':
          token.kind = Token::Kind::kOp;
          token.text = std::string(1, c);
          break;
        case '(': token.kind = Token::Kind::kLParen; break;
        case ')': token.kind = Token::Kind::kRParen; break;
        case '{': token.kind = Token::Kind::kLBrace; break;
        case '}': token.kind = Token::Kind::kRBrace; break;
        case ',': token.kind = Token::Kind::kComma; break;
        case '=': token.kind = Token::Kind::kAssign; break;
        case ';': token.kind = Token::Kind::kSemi; break;
        case ':': token.kind = Token::Kind::kColon; break;
        default:
          throw MemphisError("parse error at offset " +
                             std::to_string(position_ - 1) +
                             ": unexpected character '" + std::string(1, c) +
                             "'");
      }
    }
    current_ = token;
  }

 private:
  void SkipWhitespaceAndComments() {
    while (position_ < source_.size()) {
      const char c = source_[position_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++position_;
      } else if (c == '#') {
        while (position_ < source_.size() && source_[position_] != '\n') {
          ++position_;
        }
      } else {
        break;
      }
    }
  }

  /// After an operand a '-' is binary; after '(' ',' '=' or an operator it
  /// starts a negative literal.
  bool PrevSuggestsUnary() const {
    switch (current_.kind) {
      case Token::Kind::kIdent:
      case Token::Kind::kNumber:
      case Token::Kind::kRParen:
        return false;
      default:
        return true;
    }
  }

  const std::string& source_;
  size_t position_ = 0;
  Token current_;
};

/// Recursive-descent expression parser building hops into a dag.
class ExprParser {
 public:
  ExprParser(Lexer* lexer, HopDag* dag,
             std::unordered_map<std::string, HopPtr>* locals)
      : lexer_(lexer), dag_(dag), locals_(locals) {}

  HopPtr Parse() { return ParseComparison(); }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw MemphisError("parse error at offset " +
                       std::to_string(lexer_->current().position) + ": " +
                       message);
  }

  bool ConsumeOp(const std::string& text) {
    if (lexer_->current().kind == Token::Kind::kOp &&
        lexer_->current().text == text) {
      lexer_->Advance();
      return true;
    }
    return false;
  }

  HopPtr ParseComparison() {
    HopPtr left = ParseAdditive();
    for (const char* op : {">", ">=", "<", "<=", "==", "!="}) {
      if (ConsumeOp(op)) {
        return dag_->Op(op, {left, ParseAdditive()});
      }
    }
    return left;
  }

  HopPtr ParseAdditive() {
    HopPtr left = ParseMultiplicative();
    while (true) {
      if (ConsumeOp("+")) {
        left = dag_->Op("+", {left, ParseMultiplicative()});
      } else if (ConsumeOp("-")) {
        left = dag_->Op("-", {left, ParseMultiplicative()});
      } else {
        return left;
      }
    }
  }

  HopPtr ParseMultiplicative() {
    HopPtr left = ParsePower();
    while (true) {
      if (ConsumeOp("%*%")) {
        left = dag_->Op("matmult", {left, ParsePower()});
      } else if (ConsumeOp("*")) {
        left = dag_->Op("*", {left, ParsePower()});
      } else if (ConsumeOp("/")) {
        left = dag_->Op("/", {left, ParsePower()});
      } else {
        return left;
      }
    }
  }

  HopPtr ParsePower() {
    HopPtr base = ParsePrimary();
    if (ConsumeOp("^")) {
      return dag_->Op("^", {base, ParsePower()});  // Right associative.
    }
    return base;
  }

  HopPtr ParsePrimary() {
    const Token token = lexer_->current();
    if (token.kind == Token::Kind::kNumber) {
      lexer_->Advance();
      return dag_->Literal(token.number);
    }
    if (token.kind == Token::Kind::kLParen) {
      lexer_->Advance();
      HopPtr inner = Parse();
      Expect(Token::Kind::kRParen, ")");
      return inner;
    }
    if (token.kind != Token::Kind::kIdent) Fail("expected an expression");
    lexer_->Advance();
    if (lexer_->current().kind != Token::Kind::kLParen) {
      // Identifier: a local (earlier assignment) or a runtime variable.
      auto it = locals_->find(token.text);
      if (it != locals_->end()) return it->second;
      return dag_->Read(token.text);
    }
    // Function call.
    lexer_->Advance();
    std::vector<HopPtr> matrix_args;
    std::vector<double> numeric_args;
    bool saw_matrix_after_number = false;
    while (lexer_->current().kind != Token::Kind::kRParen) {
      if (!matrix_args.empty() || !numeric_args.empty()) {
        Expect(Token::Kind::kComma, ",");
      }
      if (lexer_->current().kind == Token::Kind::kNumber) {
        // Peek: a bare number becomes an op argument; expressions that merely
        // start with a number are handled by ParseComparison below.
        const Token number = lexer_->current();
        lexer_->Advance();
        if (IsArgumentEnd()) {
          numeric_args.push_back(number.number);
          continue;
        }
        // Number followed by an operator: fall back to expression parsing
        // with the literal as the left operand.
        HopPtr literal = dag_->Literal(number.number);
        matrix_args.push_back(ContinueExpression(literal));
        saw_matrix_after_number = !numeric_args.empty();
        continue;
      }
      matrix_args.push_back(Parse());
      saw_matrix_after_number = !numeric_args.empty();
    }
    Expect(Token::Kind::kRParen, ")");
    if (saw_matrix_after_number) {
      Fail("matrix arguments must precede numeric op arguments in '" +
           token.text + "(...)'");
    }
    return BuildCall(token.text, std::move(matrix_args),
                     std::move(numeric_args));
  }

  HopPtr ContinueExpression(HopPtr left) {
    // Re-enter the precedence climb with `left` already parsed: emulate by
    // wrapping the remaining operators manually.
    while (true) {
      if (ConsumeOp("%*%")) {
        left = dag_->Op("matmult", {left, ParsePower()});
      } else if (ConsumeOp("*")) {
        left = dag_->Op("*", {left, ParsePower()});
      } else if (ConsumeOp("/")) {
        left = dag_->Op("/", {left, ParsePower()});
      } else if (ConsumeOp("+")) {
        left = dag_->Op("+", {left, ParseMultiplicative()});
      } else if (ConsumeOp("-")) {
        left = dag_->Op("-", {left, ParseMultiplicative()});
      } else {
        return left;
      }
    }
  }

  bool IsArgumentEnd() const {
    return lexer_->current().kind == Token::Kind::kComma ||
           lexer_->current().kind == Token::Kind::kRParen;
  }

  HopPtr BuildCall(const std::string& name, std::vector<HopPtr> matrix_args,
                   std::vector<double> numeric_args) {
    // t(x) is the DML spelling of transpose.
    const std::string opcode = name == "t" ? "transpose" : name;
    const OpSpec* spec = FindOp(opcode);
    if (spec == nullptr) Fail("unknown function '" + name + "'");
    return dag_->Op(opcode, std::move(matrix_args), std::move(numeric_args));
  }

  void Expect(Token::Kind kind, const char* what) {
    if (lexer_->current().kind != kind) {
      Fail(std::string("expected '") + what + "'");
    }
    lexer_->Advance();
  }

  Lexer* lexer_;
  HopDag* dag_;
  std::unordered_map<std::string, HopPtr>* locals_;
};

void Expect(Lexer* lexer, Token::Kind kind, const char* what) {
  if (lexer->current().kind != kind) {
    throw MemphisError("parse error at offset " +
                       std::to_string(lexer->current().position) +
                       ": expected '" + what + "'");
  }
  lexer->Advance();
}

/// Parses `name = expr ;` statements until `end_kind`; every assigned name
/// becomes a block output.
std::shared_ptr<BasicBlock> ParseStatements(Lexer* lexer,
                                            Token::Kind end_kind) {
  auto block = MakeBasicBlock();
  std::unordered_map<std::string, HopPtr> locals;
  while (lexer->current().kind != end_kind &&
         lexer->current().kind != Token::Kind::kEnd) {
    if (lexer->current().kind != Token::Kind::kIdent) {
      throw MemphisError("parse error at offset " +
                         std::to_string(lexer->current().position) +
                         ": expected an assignment");
    }
    // Every hop this statement builds carries the statement's source line.
    block->dag().set_current_source_line(
        lexer->LineAt(lexer->current().position));
    const std::string target = lexer->current().text;
    lexer->Advance();
    Expect(lexer, Token::Kind::kAssign, "=");
    ExprParser parser(lexer, &block->dag(), &locals);
    HopPtr value = parser.Parse();
    Expect(lexer, Token::Kind::kSemi, ";");
    locals[target] = value;
    block->dag().Write(target, value);
  }
  return block;
}

}  // namespace

std::shared_ptr<BasicBlock> ParseScript(const std::string& script) {
  Lexer lexer(script);
  auto block = ParseStatements(&lexer, Token::Kind::kEnd);
  if (lexer.current().kind != Token::Kind::kEnd) {
    throw MemphisError("parse error: trailing input");
  }
  MEMPHIS_CHECK_MSG(!block->dag().output_names().empty(),
                    "script contains no assignments");
  return block;
}

Program ParseProgram(const std::string& script) {
  Lexer lexer(script);
  Program program;
  while (lexer.current().kind != Token::Kind::kEnd) {
    if (lexer.current().kind == Token::Kind::kKwFor) {
      // for (v in a:b) { ... }
      lexer.Advance();
      Expect(&lexer, Token::Kind::kLParen, "(");
      if (lexer.current().kind != Token::Kind::kIdent) {
        throw MemphisError("parse error: expected loop variable");
      }
      const std::string loop_var = lexer.current().text;
      lexer.Advance();
      Expect(&lexer, Token::Kind::kKwIn, "in");
      if (lexer.current().kind != Token::Kind::kNumber) {
        throw MemphisError("parse error: expected loop range start");
      }
      const double from = lexer.current().number;
      lexer.Advance();
      Expect(&lexer, Token::Kind::kColon, ":");
      if (lexer.current().kind != Token::Kind::kNumber) {
        throw MemphisError("parse error: expected loop range end");
      }
      const double to = lexer.current().number;
      lexer.Advance();
      Expect(&lexer, Token::Kind::kRParen, ")");
      Expect(&lexer, Token::Kind::kLBrace, "{");
      std::vector<double> values;
      for (double v = from; v <= to + 1e-12; v += 1.0) values.push_back(v);
      auto loop = MakeForBlock(loop_var, std::move(values));
      loop->body.push_back(ParseStatements(&lexer, Token::Kind::kRBrace));
      Expect(&lexer, Token::Kind::kRBrace, "}");
      program.blocks.push_back(std::move(loop));
      continue;
    }
    program.blocks.push_back(ParseStatements(&lexer, Token::Kind::kKwFor));
  }
  MEMPHIS_CHECK_MSG(!program.blocks.empty(), "script contains no statements");
  return program;
}

}  // namespace memphis::compiler
