#include "cache/spark_cache_manager.h"

#include <algorithm>
#include <deque>

#include "common/status.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace memphis {

void SparkCacheStats::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->Register("sparkcache.rdds_registered", &rdds_registered);
  registry->Register("sparkcache.rdds_evicted", &rdds_evicted);
  registry->Register("sparkcache.async_materializations",
                     &async_materializations);
  registry->Register("sparkcache.broadcasts_destroyed",
                     &broadcasts_destroyed);
  registry->Register("sparkcache.parents_cleaned", &parents_cleaned);
}

SparkCacheManager::SparkCacheManager(spark::SparkContext* spark,
                                     double reuse_fraction,
                                     int materialize_after_misses)
    : spark_(spark),
      reuse_fraction_(reuse_fraction),
      materialize_after_misses_(materialize_after_misses) {}

size_t SparkCacheManager::ReuseBudget() const {
  return static_cast<size_t>(
      static_cast<double>(spark_->StorageCapacity()) * reuse_fraction_);
}

double SparkCacheManager::Score(const CacheEntry& entry) const {
  // Eq. (1): (r_h(o) + r_m(o) + r_j(o)) * c(o) / s(o); low score = evict.
  const double references = entry.hits + entry.misses + entry.jobs + 1;
  const double size =
      std::max<double>(1.0, static_cast<double>(entry.size_bytes));
  return references * entry.compute_cost / size;
}

void SparkCacheManager::Register(const CacheEntryPtr& entry,
                                 StorageLevel level, double now) {
  MEMPHIS_CHECK(entry != nullptr && entry->rdd != nullptr);
  EvictUntilFits(entry->size_bytes, now);
  spark_->Persist(entry->rdd, level);  // Lazy materialization.
  reserved_ += entry->size_bytes;
  entries_.push_back(entry);
  ++stats_.rdds_registered;
}

void SparkCacheManager::EvictUntilFits(size_t incoming_bytes, double now) {
  const size_t budget = ReuseBudget();
  while (!entries_.empty() && reserved_ + incoming_bytes > budget) {
    auto victim_it = entries_.begin();
    double victim_score = Score(**victim_it);
    for (auto it = entries_.begin() + 1; it != entries_.end(); ++it) {
      const double score = Score(**it);
      if (score < victim_score) {
        victim_it = it;
        victim_score = score;
      }
    }
    CacheEntryPtr victim = *victim_it;
    entries_.erase(victim_it);
    reserved_ -= victim->size_bytes;
    // unpersist is asynchronous in Spark; the temporary storage overflow is
    // absorbed by partition spilling inside the BlockManager, so no time is
    // charged to the driver here.
    spark_->Unpersist(victim->rdd);
    ++stats_.rdds_evicted;
    MEMPHIS_TRACE_INSTANT1_REQ("cache", "evict-rdd", "bytes",
                               static_cast<double>(victim->size_bytes));
    MEMPHIS_JOURNAL(kEvict, kRdd, kQuota,
                    static_cast<uint64_t>(LineageItemPtrHash{}(victim->key)),
                    victim->compute_cost,
                    static_cast<double>(victim->size_bytes));
    if (on_evict_) on_evict_(victim);
  }
  (void)now;
}

void SparkCacheManager::OnReuse(const CacheEntryPtr& entry, double now) {
  entry->last_access = now;
  // Refresh cache metadata with actual materialized sizes
  // (getRDDStorageInfo analogue).
  if (entry->rdd != nullptr && spark_->IsMaterialized(entry->rdd)) {
    const size_t actual = spark_->CachedMemoryBytes(entry->rdd);
    if (actual > 0 && actual < entry->size_bytes) {
      reserved_ -= entry->size_bytes - actual;
      entry->size_bytes = actual;
    }
  }
  Tick(now);
}

void SparkCacheManager::Tick(double now) {
  // Count a miss against every registered-but-unmaterialized RDD: reuse of
  // downstream action results keeps their jobs from triggering (Example
  // 4.1), so after k misses we materialize them asynchronously via count().
  for (const auto& pending : entries_) {
    if (pending->rdd == nullptr) continue;
    if (spark_->IsMaterialized(pending->rdd)) continue;
    if (++pending->misses >= materialize_after_misses_) {
      // Asynchronous count() on spare capacity: neither the driver nor
      // foreground jobs wait on the materialization.
      spark_->CountBackground(pending->rdd, now);
      pending->misses = 0;
      ++stats_.async_materializations;
    }
  }
  LazyCleanup(now);
}

void SparkCacheManager::LazyCleanup(double now) {
  (void)now;
  // Protected set: everything reachable from registered RDDs that are not
  // yet materialized still participates in future jobs and must keep its
  // broadcasts and shuffle files.
  std::unordered_set<int> protected_ids;
  for (const auto& entry : entries_) {
    if (entry->rdd == nullptr || spark_->IsMaterialized(entry->rdd)) continue;
    std::deque<spark::RddPtr> queue{entry->rdd};
    while (!queue.empty()) {
      spark::RddPtr rdd = queue.front();
      queue.pop_front();
      if (!protected_ids.insert(rdd->id()).second) continue;
      for (const auto& parent : rdd->parents()) queue.push_back(parent);
    }
  }

  // For each materialized cached RDD, walk its upstream chain and release
  // stale references: broadcasts, shuffle files, and persisted ancestors.
  // Disk-backed materialized entries no longer need even their own
  // broadcasts (lost partitions are re-read from disk, not recomputed).
  for (const auto& entry : entries_) {
    if (entry->rdd == nullptr || !spark_->IsMaterialized(entry->rdd)) continue;
    std::deque<spark::RddPtr> queue;
    std::unordered_set<int> visited{entry->rdd->id()};
    if (entry->rdd->storage_level() == StorageLevel::kMemoryAndDisk &&
        protected_ids.count(entry->rdd->id()) == 0) {
      for (const auto& broadcast : entry->rdd->broadcast_deps()) {
        if (!broadcast->destroyed()) {
          spark_->DestroyBroadcast(broadcast);
          ++stats_.broadcasts_destroyed;
        }
      }
    }
    for (const auto& parent : entry->rdd->parents()) queue.push_back(parent);
    while (!queue.empty()) {
      spark::RddPtr rdd = queue.front();
      queue.pop_front();
      if (!visited.insert(rdd->id()).second) continue;
      if (protected_ids.count(rdd->id()) != 0) continue;
      for (const auto& broadcast : rdd->broadcast_deps()) {
        if (!broadcast->destroyed()) {
          spark_->DestroyBroadcast(broadcast);
          ++stats_.broadcasts_destroyed;
        }
      }
      if (rdd->shuffle_files_written()) {
        rdd->DropShuffleFiles();
        ++stats_.parents_cleaned;
      }
      for (const auto& parent : rdd->parents()) queue.push_back(parent);
    }
  }
}

}  // namespace memphis
