#include "cache/shared_store.h"

#include <limits>
#include <unordered_set>
#include <utility>

#include "obs/trace.h"

namespace memphis {

bool LineageHasSessionLocalLeaf(const LineageItemPtr& key) {
  // Iterative DAG walk with identity-based memoization (DAGs share subtrees).
  std::vector<const LineageItem*> stack{key.get()};
  std::unordered_set<const LineageItem*> seen;
  while (!stack.empty()) {
    const LineageItem* item = stack.back();
    stack.pop_back();
    if (!seen.insert(item).second) continue;
    if (item->inputs().empty() && item->opcode() == "extern" &&
        item->data().find('@') != std::string::npos) {
      return true;
    }
    for (const LineageItemPtr& input : item->inputs()) {
      stack.push_back(input.get());
    }
  }
  return false;
}

SharedLineageStore::SharedLineageStore(size_t tenant_quota_bytes)
    : tenant_quota_bytes_(tenant_quota_bytes) {
  // Registry-owned counters: a store may die (manager teardown) while the
  // global registry lives on, so the registry must own the storage.
  auto& registry = obs::MetricsRegistry::Global();
  puts_ = registry.GetCounter("serve.store.puts");
  refreshes_ = registry.GetCounter("serve.store.refreshes");
  skipped_session_local_ =
      registry.GetCounter("serve.store.skipped_session_local");
  rejected_oversize_ = registry.GetCounter("serve.store.rejected_oversize");
  evictions_ = registry.GetCounter("serve.store.evictions");
  warmed_ = registry.GetCounter("serve.store.warmed");
}

int SharedLineageStore::Harvest(const std::string& tenant,
                                const LineageCache& cache) {
  MEMPHIS_TRACE_SPAN("serve", "store-harvest");
  // Snapshot first (takes the cache tier lock, rank kCacheTier) and only
  // then take the store lock: kSharedStore < kCacheTier, so holding the
  // store lock while sweeping the cache would invert the rank order.
  const std::vector<CacheEntryPtr> entries = cache.SnapshotHostEntries();
  int stored = 0;
  MutexLock lock(mu_);
  for (const CacheEntryPtr& entry : entries) {
    if (PutLocked(tenant, entry)) ++stored;
  }
  return stored;
}

bool SharedLineageStore::Put(const std::string& tenant,
                             const CacheEntryPtr& entry) {
  MutexLock lock(mu_);
  return PutLocked(tenant, entry);
}

bool SharedLineageStore::PutLocked(const std::string& tenant,
                                   const CacheEntryPtr& entry) {
  if (entry == nullptr || entry->status.load() != CacheStatus::kCached) {
    return false;
  }
  if (entry->kind != CacheKind::kHostMatrix &&
      entry->kind != CacheKind::kScalar) {
    return false;  // RDD/GPU handles die with their backend contexts.
  }
  if (entry->kind == CacheKind::kHostMatrix && entry->host_value == nullptr) {
    return false;
  }
  if (LineageHasSessionLocalLeaf(entry->key)) {
    skipped_session_local_->Add(1);
    return false;
  }
  const size_t bytes =
      entry->kind == CacheKind::kScalar ? sizeof(double) : entry->size_bytes;
  if (tenant_quota_bytes_ > 0 && bytes > tenant_quota_bytes_) {
    rejected_oversize_->Add(1);
    return false;
  }
  Partition& partition = partitions_[tenant];
  ++tick_;
  auto it = partition.entries.find(entry->key);
  if (it != partition.entries.end()) {
    it->second.last_touch = tick_;  // Refresh recency; value is identical.
    refreshes_->Add(1);
    return false;
  }
  if (tenant_quota_bytes_ > 0 &&
      partition.used_bytes + bytes > tenant_quota_bytes_) {
    EvictForSpace(&partition, bytes);
  }
  StoredEntry stored;
  stored.key = entry->key;
  stored.kind = entry->kind;
  stored.value = entry->host_value;
  stored.scalar = entry->scalar_value;
  stored.compute_cost = entry->compute_cost;
  stored.bytes = bytes;
  stored.last_touch = tick_;
  partition.entries.emplace(entry->key, std::move(stored));
  partition.used_bytes += bytes;
  puts_->Add(1);
  return true;
}

void SharedLineageStore::EvictForSpace(Partition* partition, size_t needed) {
  // Quota-aware partitioned eviction: victims come from *this* partition
  // only. Score is recompute value per byte (like the host tier); ties break
  // toward the oldest touch.
  while (!partition->entries.empty() &&
         partition->used_bytes + needed > tenant_quota_bytes_) {
    auto victim = partition->entries.end();
    double victim_score = std::numeric_limits<double>::infinity();
    for (auto it = partition->entries.begin(); it != partition->entries.end();
         ++it) {
      const StoredEntry& e = it->second;
      const double score =
          e.compute_cost / static_cast<double>(std::max<size_t>(1, e.bytes));
      if (victim == partition->entries.end() || score < victim_score ||
          (score == victim_score && e.last_touch < victim->second.last_touch)) {
        victim = it;
        victim_score = score;
      }
    }
    partition->used_bytes -= victim->second.bytes;
    partition->entries.erase(victim);
    ++partition->evictions;
    evictions_->Add(1);
  }
}

std::vector<CacheEntryPtr> SharedLineageStore::WarmInto(
    const std::string& tenant, LineageCache* cache, double* now) {
  MEMPHIS_TRACE_SPAN("serve", "store-warm");
  std::vector<CacheEntryPtr> inserted;
  MutexLock lock(mu_);
  static const std::string kGlobal;
  for (const std::string* name : {&tenant, &kGlobal}) {
    if (name == &kGlobal && tenant.empty()) break;  // Don't warm "" twice.
    auto pit = partitions_.find(*name);
    if (pit == partitions_.end()) continue;
    for (auto& [key, stored] : pit->second.entries) {
      // kSharedStore < kCacheTier: holding the store lock across the
      // session-cache Put is the sanctioned nesting (see sync.h table).
      CacheEntryPtr entry =
          stored.kind == CacheKind::kScalar
              ? cache->PutScalar(key, stored.scalar, stored.compute_cost,
                                 /*delay=*/1, now)
              : cache->PutHost(key, stored.value, stored.compute_cost,
                               /*delay=*/1, now);
      if (entry != nullptr) {
        ++stored.hits;
        inserted.push_back(std::move(entry));
      }
    }
  }
  warmed_->Add(static_cast<int64_t>(inserted.size()));
  return inserted;
}

void SharedLineageStore::DropPartition(const std::string& tenant) {
  MutexLock lock(mu_);
  partitions_.erase(tenant);
}

size_t SharedLineageStore::PartitionBytes(const std::string& tenant) const {
  MutexLock lock(mu_);
  auto it = partitions_.find(tenant);
  return it == partitions_.end() ? 0 : it->second.used_bytes;
}

size_t SharedLineageStore::PartitionEntries(const std::string& tenant) const {
  MutexLock lock(mu_);
  auto it = partitions_.find(tenant);
  return it == partitions_.end() ? 0 : it->second.entries.size();
}

size_t SharedLineageStore::TotalEntries() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [name, partition] : partitions_) {
    total += partition.entries.size();
  }
  return total;
}

bool SharedLineageStore::Contains(const std::string& tenant,
                                  const LineageItemPtr& key) const {
  MutexLock lock(mu_);
  static const std::string kGlobal;
  for (const std::string* name : {&tenant, &kGlobal}) {
    if (name == &kGlobal && tenant.empty()) break;
    auto it = partitions_.find(*name);
    if (it != partitions_.end() && it->second.entries.count(key) != 0) {
      return true;
    }
  }
  return false;
}

std::string SharedLineageStore::CheckInvariants() const {
  MutexLock lock(mu_);
  for (const auto& [name, partition] : partitions_) {
    size_t bytes = 0;
    for (const auto& [key, stored] : partition.entries) {
      if (stored.key == nullptr || !LineageEquals(key, stored.key)) {
        return "stored key disagrees with its map key";
      }
      if (stored.kind == CacheKind::kHostMatrix && stored.value == nullptr) {
        return "host-matrix stored entry has no value";
      }
      if (stored.kind != CacheKind::kHostMatrix &&
          stored.kind != CacheKind::kScalar) {
        return "stored entry has a non-host kind";
      }
      bytes += stored.bytes;
    }
    if (bytes != partition.used_bytes) {
      return "partition '" + name + "' byte accounting is off";
    }
    if (tenant_quota_bytes_ > 0 && bytes > tenant_quota_bytes_) {
      return "partition '" + name + "' exceeds its quota";
    }
  }
  return "";
}

}  // namespace memphis
