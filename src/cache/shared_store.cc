#include "cache/shared_store.h"

#include <limits>
#include <utility>

#include "common/status.h"
#include "lineage/lineage_serde.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace memphis {
namespace {

inline uint64_t JournalKey(const LineageItemPtr& key) {
  return static_cast<uint64_t>(LineageItemPtrHash{}(key));
}

/// Durable-tier key of a stored entry: the tenant and the byte-stable
/// lineage log, NUL-separated (tenant names never carry NUL), so one log
/// holds every partition without cross-tenant key collisions.
std::string PersistKey(const std::string& tenant, const LineageItemPtr& key) {
  std::string out = tenant;
  out.push_back('\0');
  out += SerializeLineage(key);
  return out;
}

/// Splits a durable-tier key back into (tenant, lineage log view).
bool SplitPersistKey(const std::string& record_key, std::string* tenant,
                     std::string* log) {
  const size_t nul = record_key.find('\0');
  if (nul == std::string::npos) return false;
  tenant->assign(record_key, 0, nul);
  log->assign(record_key, nul + 1, std::string::npos);
  return true;
}

}  // namespace

SharedLineageStore::SharedLineageStore(size_t tenant_quota_bytes,
                                       const PersistConfig& persist)
    : tenant_quota_bytes_(tenant_quota_bytes) {
  // Registry-owned counters: a store may die (manager teardown) while the
  // global registry lives on, so the registry must own the storage.
  auto& registry = obs::MetricsRegistry::Global();
  puts_ = registry.GetCounter("serve.store.puts");
  refreshes_ = registry.GetCounter("serve.store.refreshes");
  skipped_session_local_ =
      registry.GetCounter("serve.store.skipped_session_local");
  rejected_oversize_ = registry.GetCounter("serve.store.rejected_oversize");
  evictions_ = registry.GetCounter("serve.store.evictions");
  warmed_ = registry.GetCounter("serve.store.warmed");
  rehydrated_ = registry.GetCounter("serve.store.rehydrated");
  if (persist.enabled()) {
    persist_ = std::make_unique<PersistentTier>(persist);
    MutexLock lock(mu_);
    RehydrateLocked();
  }
}

void SharedLineageStore::RehydrateLocked() {
  MEMPHIS_TRACE_SPAN("persist", "store-rehydrate");  // memphis-lint: allow(span-rid) -- warm-restart replay at construction, no request in scope
  // Replay the log in append order: the latest surviving record per key is
  // what the tier indexes, and append order replays quota evictions
  // deterministically for partitions that outgrew a shrunken quota.
  int64_t restored = 0;
  for (const std::string& record_key : persist_->Keys()) {
    std::string tenant;
    std::string log;
    std::string payload;
    if (!SplitPersistKey(record_key, &tenant, &log)) continue;
    if (!persist_->Get(record_key, &payload)) continue;  // Verify failed.
    CacheKind kind = CacheKind::kHostMatrix;
    MatrixPtr value;
    double scalar = 0.0;
    double compute_cost = 0.0;
    if (!DecodePersistPayload(payload, &kind, &value, &scalar,
                              &compute_cost)) {
      continue;
    }
    LineageItemPtr key;
    try {
      key = DeserializeLineage(log);
    } catch (const MemphisError&) {
      continue;  // Checksummed but unparsable: never let it poison startup.
    }
    const size_t bytes =
        kind == CacheKind::kScalar ? sizeof(double) : value->SizeInBytes();
    if (tenant_quota_bytes_ > 0 && bytes > tenant_quota_bytes_) continue;
    Partition& partition = partitions_[tenant];
    ++tick_;
    if (partition.entries.count(key) != 0) continue;
    if (tenant_quota_bytes_ > 0 &&
        partition.used_bytes + bytes > tenant_quota_bytes_) {
      EvictForSpace(tenant, &partition, bytes);
    }
    StoredEntry stored;
    stored.key = key;
    stored.kind = kind;
    stored.value = std::move(value);
    stored.scalar = scalar;
    stored.compute_cost = compute_cost;
    stored.bytes = bytes;
    stored.last_touch = tick_;
    partition.entries.emplace(key, std::move(stored));
    partition.used_bytes += bytes;
    ++restored;
  }
  rehydrated_->Add(restored);
}

int SharedLineageStore::Harvest(const std::string& tenant,
                                const LineageCache& cache) {
  MEMPHIS_TRACE_SPAN_REQ("serve", "store-harvest");
  // Snapshot first (takes the cache tier lock, rank kCacheTier) and only
  // then take the store lock: kSharedStore < kCacheTier, so holding the
  // store lock while sweeping the cache would invert the rank order.
  const std::vector<CacheEntryPtr> entries = cache.SnapshotHostEntries();
  int stored = 0;
  MutexLock lock(mu_);
  for (const CacheEntryPtr& entry : entries) {
    if (PutLocked(tenant, entry)) ++stored;
  }
  return stored;
}

bool SharedLineageStore::Put(const std::string& tenant,
                             const CacheEntryPtr& entry) {
  MutexLock lock(mu_);
  return PutLocked(tenant, entry);
}

bool SharedLineageStore::PutLocked(const std::string& tenant,
                                   const CacheEntryPtr& entry) {
  if (entry == nullptr || entry->status.load() != CacheStatus::kCached) {
    return false;
  }
  if (entry->kind != CacheKind::kHostMatrix &&
      entry->kind != CacheKind::kScalar) {
    return false;  // RDD/GPU handles die with their backend contexts.
  }
  if (entry->kind == CacheKind::kHostMatrix && entry->host_value == nullptr) {
    return false;
  }
  if (LineageHasSessionLocalLeaf(entry->key)) {
    skipped_session_local_->Add(1);
    // kMiss is reserved for probe outcomes (the probes == hits + misses
    // invariant); refused harvests are kHarvest with a reason code.
    MEMPHIS_JOURNAL(kHarvest, kStore, kSessionLocal, JournalKey(entry->key),
                    entry->compute_cost, 0.0);
    return false;
  }
  const size_t bytes =
      entry->kind == CacheKind::kScalar ? sizeof(double) : entry->size_bytes;
  if (tenant_quota_bytes_ > 0 && bytes > tenant_quota_bytes_) {
    rejected_oversize_->Add(1);
    MEMPHIS_JOURNAL(kHarvest, kStore, kOversize, JournalKey(entry->key),
                    entry->compute_cost, static_cast<double>(bytes));
    return false;
  }
  Partition& partition = partitions_[tenant];
  ++tick_;
  auto it = partition.entries.find(entry->key);
  if (it != partition.entries.end()) {
    it->second.last_touch = tick_;  // Refresh recency; value is identical.
    refreshes_->Add(1);
    return false;
  }
  if (tenant_quota_bytes_ > 0 &&
      partition.used_bytes + bytes > tenant_quota_bytes_) {
    EvictForSpace(tenant, &partition, bytes);
  }
  StoredEntry stored;
  stored.key = entry->key;
  stored.kind = entry->kind;
  stored.value = entry->host_value;
  stored.scalar = entry->scalar_value;
  stored.compute_cost = entry->compute_cost;
  stored.bytes = bytes;
  stored.last_touch = tick_;
  partition.entries.emplace(entry->key, std::move(stored));
  partition.used_bytes += bytes;
  puts_->Add(1);
  MEMPHIS_JOURNAL(kHarvest, kStore, kNone, JournalKey(entry->key),
                  entry->compute_cost, static_cast<double>(bytes));
  if (persist_ != nullptr) {
    // kSharedStore < kPersist: appending under mu_ is the sanctioned
    // nesting. A repeated key (e.g. re-stored after DropPartition) just
    // overwrites its old record.
    persist_->Put(PersistKey(tenant, entry->key),
                  EncodePersistPayload(entry->kind, entry->host_value,
                                       entry->scalar_value,
                                       entry->compute_cost));
  }
  return true;
}

void SharedLineageStore::EvictForSpace(const std::string& tenant,
                                       Partition* partition, size_t needed) {
  // Quota-aware partitioned eviction: victims come from *this* partition
  // only. Score is recompute value per byte (like the host tier); ties break
  // toward the oldest touch.
  while (!partition->entries.empty() &&
         partition->used_bytes + needed > tenant_quota_bytes_) {
    auto victim = partition->entries.end();
    double victim_score = std::numeric_limits<double>::infinity();
    for (auto it = partition->entries.begin(); it != partition->entries.end();
         ++it) {
      const StoredEntry& e = it->second;
      const double score =
          e.compute_cost / static_cast<double>(std::max<size_t>(1, e.bytes));
      if (victim == partition->entries.end() || score < victim_score ||
          (score == victim_score && e.last_touch < victim->second.last_touch)) {
        victim = it;
        victim_score = score;
      }
    }
    if (persist_ != nullptr) {
      // Tombstone the victim so the quota decision survives restart.
      persist_->Remove(PersistKey(tenant, victim->second.key));
    }
    MEMPHIS_JOURNAL(kEvict, kStore, kQuota, JournalKey(victim->second.key),
                    victim->second.compute_cost,
                    static_cast<double>(victim->second.bytes));
    partition->used_bytes -= victim->second.bytes;
    partition->entries.erase(victim);
    ++partition->evictions;
    evictions_->Add(1);
  }
}

std::vector<CacheEntryPtr> SharedLineageStore::WarmInto(
    const std::string& tenant, LineageCache* cache, double* now) {
  MEMPHIS_TRACE_SPAN_REQ("serve", "store-warm");
  std::vector<CacheEntryPtr> inserted;
  MutexLock lock(mu_);
  static const std::string kGlobal;
  for (const std::string* name : {&tenant, &kGlobal}) {
    if (name == &kGlobal && tenant.empty()) break;  // Don't warm "" twice.
    auto pit = partitions_.find(*name);
    if (pit == partitions_.end()) continue;
    for (auto& [key, stored] : pit->second.entries) {
      // kSharedStore < kCacheTier: holding the store lock across the
      // session-cache Put is the sanctioned nesting (see sync.h table).
      CacheEntryPtr entry =
          stored.kind == CacheKind::kScalar
              ? cache->PutScalar(key, stored.scalar, stored.compute_cost,
                                 /*delay=*/1, now)
              : cache->PutHost(key, stored.value, stored.compute_cost,
                               /*delay=*/1, now);
      if (entry != nullptr) {
        ++stored.hits;
        MEMPHIS_JOURNAL(kWarm, kStore, kNone, JournalKey(key),
                        stored.compute_cost,
                        static_cast<double>(stored.bytes));
        inserted.push_back(std::move(entry));
      }
    }
  }
  warmed_->Add(static_cast<int64_t>(inserted.size()));
  return inserted;
}

std::vector<CacheEntryPtr> SharedLineageStore::ExportPartition(
    const std::string& tenant) const {
  std::vector<CacheEntryPtr> exported;
  MutexLock lock(mu_);
  auto it = partitions_.find(tenant);
  if (it == partitions_.end()) return exported;
  exported.reserve(it->second.entries.size());
  for (const auto& [key, stored] : it->second.entries) {
    auto entry = std::make_shared<CacheEntry>();
    entry->key = stored.key;
    entry->kind = stored.kind;
    entry->status.store(CacheStatus::kCached, std::memory_order_relaxed);
    entry->host_value = stored.value;
    entry->scalar_value = stored.scalar;
    entry->compute_cost = stored.compute_cost;
    entry->size_bytes = stored.bytes;
    exported.push_back(std::move(entry));
  }
  return exported;
}

void SharedLineageStore::DropPartition(const std::string& tenant) {
  MutexLock lock(mu_);
  auto it = partitions_.find(tenant);
  if (it == partitions_.end()) return;
  if (persist_ != nullptr) {
    for (const auto& [key, stored] : it->second.entries) {
      persist_->Remove(PersistKey(tenant, key));
    }
  }
  partitions_.erase(it);
}

size_t SharedLineageStore::PartitionBytes(const std::string& tenant) const {
  MutexLock lock(mu_);
  auto it = partitions_.find(tenant);
  return it == partitions_.end() ? 0 : it->second.used_bytes;
}

size_t SharedLineageStore::PartitionEntries(const std::string& tenant) const {
  MutexLock lock(mu_);
  auto it = partitions_.find(tenant);
  return it == partitions_.end() ? 0 : it->second.entries.size();
}

size_t SharedLineageStore::TotalEntries() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [name, partition] : partitions_) {
    total += partition.entries.size();
  }
  return total;
}

bool SharedLineageStore::Contains(const std::string& tenant,
                                  const LineageItemPtr& key) const {
  MutexLock lock(mu_);
  static const std::string kGlobal;
  for (const std::string* name : {&tenant, &kGlobal}) {
    if (name == &kGlobal && tenant.empty()) break;
    auto it = partitions_.find(*name);
    if (it != partitions_.end() && it->second.entries.count(key) != 0) {
      return true;
    }
  }
  return false;
}

std::string SharedLineageStore::CheckInvariants() const {
  MutexLock lock(mu_);
  for (const auto& [name, partition] : partitions_) {
    size_t bytes = 0;
    for (const auto& [key, stored] : partition.entries) {
      if (stored.key == nullptr || !LineageEquals(key, stored.key)) {
        return "stored key disagrees with its map key";
      }
      if (stored.kind == CacheKind::kHostMatrix && stored.value == nullptr) {
        return "host-matrix stored entry has no value";
      }
      if (stored.kind != CacheKind::kHostMatrix &&
          stored.kind != CacheKind::kScalar) {
        return "stored entry has a non-host kind";
      }
      bytes += stored.bytes;
    }
    if (bytes != partition.used_bytes) {
      return "partition '" + name + "' byte accounting is off";
    }
    if (tenant_quota_bytes_ > 0 && bytes > tenant_quota_bytes_) {
      return "partition '" + name + "' exceeds its quota";
    }
  }
  return "";
}

}  // namespace memphis
