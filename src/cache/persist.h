#ifndef MEMPHIS_CACHE_PERSIST_H_
#define MEMPHIS_CACHE_PERSIST_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_entry.h"
#include "common/sync.h"
#include "matrix/matrix_block.h"
#include "obs/metrics.h"

namespace memphis {

/// Configuration of the durable tier (DESIGN.md §5g). The tier is off unless
/// both a directory and a positive byte budget are given, so every default
/// construction keeps the system purely in-memory.
struct PersistConfig {
  /// Segment directory. Created on open if missing. Empty = disabled.
  std::string dir;
  /// Total live-record byte budget (keys + payloads + record headers).
  /// 0 = disabled. Oldest live records are dropped from the index first.
  size_t budget_bytes = 0;
  /// Rotate to a fresh segment file once the active one reaches this size.
  size_t segment_bytes = 4ull << 20;
  /// Rewrite segments once dead bytes exceed this fraction of all record
  /// bytes (overwrites, removes, and evictions leave dead records behind).
  double compact_dead_ratio = 0.4;
  /// Host-tier entries cheaper than this are not worth a disk round-trip
  /// and are skipped by the harvest pass.
  double min_compute_cost = 0.0;
  /// Interval of the background harvest thread in LineageCache. 0 keeps the
  /// tier manual-only (tests drive HarvestToDiskNow() deterministically).
  double harvest_interval_ms = 0.0;

  bool enabled() const { return !dir.empty() && budget_bytes > 0; }
};

/// What the opening scan found. Recovery never throws: damage is absorbed,
/// counted here, and mirrored into the persist.* metrics.
struct PersistOpenReport {
  int segments_scanned = 0;
  /// Segments whose 12-byte header failed to parse; the file is renamed to
  /// <name>.corrupt and excluded from the tier.
  int segments_dropped = 0;
  int64_t live_records = 0;
  /// Superseded records (overwrites and tombstones) seen during the scan.
  int64_t dead_records = 0;
  /// Records whose checksum failed mid-segment; the scan truncates there.
  int64_t corrupt_records = 0;
  /// Bytes after the last valid record of a damaged segment (torn tail or
  /// everything downstream of a corrupt record).
  int64_t torn_tail_bytes = 0;
  /// Live records dropped on open to re-enforce the byte budget.
  int64_t evicted_on_open = 0;
};

/// Byte placement of an appended record, for the kill-replay fuzzer: it kills
/// the log at a chosen offset and needs the exact span every record occupies
/// to predict which entries must survive.
struct PersistRecordSpan {
  uint64_t segment_id = 0;
  uint64_t offset = 0;  // File offset of the record's first header byte.
  uint64_t length = 0;  // Total record bytes (header + key + payload).
};

/// One segment file as tracked by the tier (id order == append order).
struct PersistSegmentInfo {
  uint64_t id = 0;
  std::string path;
  uint64_t bytes = 0;  // Tracked file size: header + appended records.
};

/// On-disk framing sizes, public so the kill-replay fuzzer's oracle can map
/// a damage offset to the header or record it lands in.
inline constexpr size_t kPersistSegmentHeaderBytes = 12;  // Magic + version.
inline constexpr size_t kPersistRecordHeaderBytes = 17;   // 2xu32 + u8 + u64.

/// Append-only durable string store: the disk tier below the host tier.
///
/// Layout (DESIGN.md §5g): numbered segment files `seg-<id>.mseg`, each a
/// 12-byte header ("MEMPHSEG" magic + u32 version) followed by
/// length-prefixed records
///   u32 key_len | u32 payload_len | u8 type | u64 checksum | key | payload
/// where type is 1 (put) or 2 (tombstone) and the checksum is FNV-1a over
/// the key and payload bytes mixed with both lengths and the type, so a
/// single flipped bit anywhere in the record fails verification. A compact
/// in-memory index (key -> latest record position) is rebuilt by scanning on
/// open; the latest valid record per key wins and a tombstone erases.
///
/// Recovery invariants: a segment whose header fails to parse is renamed
/// aside and dropped whole; within a segment the scan stops at the first
/// invalid record (short read, insane length, or checksum mismatch) and
/// everything from there on is treated as a torn tail. Opening never throws
/// on damage, and a record is checksum-verified again on every Get, so a
/// corrupt payload is never served -- it turns into a miss. New appends
/// always go to a fresh segment, never into a recovered file.
///
/// Thread safety: one mutex (rank kPersist) serializes the tier. It sits
/// below both kCacheTier (the Reuse miss path probes disk under the tier
/// lock) and kSharedStore (the serve store appends under its own lock);
/// segment IO never takes another lock.
class PersistentTier {
 public:
  /// Opens (and if needed creates) `config.dir`, scanning existing segments
  /// into the index. Damage is absorbed per the recovery invariants above.
  explicit PersistentTier(const PersistConfig& config);
  ~PersistentTier();
  PersistentTier(const PersistentTier&) = delete;
  PersistentTier& operator=(const PersistentTier&) = delete;

  /// Appends a put record and indexes it. Returns false when the record
  /// alone exceeds the byte budget (never partially applied). Evicts the
  /// oldest live records first when the budget would overflow. `span`, when
  /// given, receives the record's byte placement.
  bool Put(const std::string& key, const std::string& payload,
           PersistRecordSpan* span = nullptr) MEMPHIS_EXCLUDES(mu_);

  /// Reads and re-verifies the latest record for `key`. On checksum failure
  /// the index entry is dropped (counted in persist.corrupt_records) and
  /// this is a miss: corrupt bytes are never served.
  bool Get(const std::string& key, std::string* payload) MEMPHIS_EXCLUDES(mu_);

  bool Contains(const std::string& key) const MEMPHIS_EXCLUDES(mu_);

  /// Appends a tombstone so the removal survives restart. No-op (returns
  /// false) when the key is not live. `span`, when given, receives the
  /// tombstone record's byte placement.
  bool Remove(const std::string& key, PersistRecordSpan* span = nullptr)
      MEMPHIS_EXCLUDES(mu_);

  /// Live keys in append (sequence) order -- the deterministic rehydration
  /// order used by the serve store's warm restart.
  std::vector<std::string> Keys() const MEMPHIS_EXCLUDES(mu_);

  /// fflush + fsync the active segment (Put already flushes stdio buffers;
  /// this adds the durability barrier before a planned handoff).
  void Flush() MEMPHIS_EXCLUDES(mu_);

  /// Rewrites all live records into fresh segments and deletes the old
  /// files. Tombstones and dead records vanish.
  void Compact() MEMPHIS_EXCLUDES(mu_);

  /// Compact() iff dead bytes exceed config.compact_dead_ratio of all
  /// record bytes. Returns true when a compaction ran. Put() calls this on
  /// every segment rotation, so long-running tiers self-clean.
  bool CompactIfNeeded() MEMPHIS_EXCLUDES(mu_);

  size_t LiveRecords() const MEMPHIS_EXCLUDES(mu_);
  size_t LiveBytes() const MEMPHIS_EXCLUDES(mu_);
  size_t DeadBytes() const MEMPHIS_EXCLUDES(mu_);
  std::vector<PersistSegmentInfo> Segments() const MEMPHIS_EXCLUDES(mu_);
  const PersistOpenReport& open_report() const { return open_report_; }
  const PersistConfig& config() const { return config_; }

  /// Structural self-check: index entries point inside tracked segments,
  /// per-segment and total byte accounting agree, and the budget holds.
  /// Empty string when clean.
  std::string CheckInvariants() const MEMPHIS_EXCLUDES(mu_);

 private:
  struct IndexEntry {
    uint64_t segment_id = 0;
    uint64_t offset = 0;
    uint32_t key_len = 0;
    uint32_t payload_len = 0;
    uint64_t sequence = 0;  // Monotonic append order, survives compaction.
  };
  struct SegmentMeta {
    std::string path;
    uint64_t bytes = 0;       // Header + records written.
    uint64_t live_bytes = 0;  // Record spans still referenced by the index.
  };

  void OpenDirLocked() MEMPHIS_REQUIRES(mu_);
  void ScanSegmentLocked(uint64_t id, const std::string& path)
      MEMPHIS_REQUIRES(mu_);
  bool AppendLocked(const std::string& key, const std::string& payload,
                    uint8_t type, PersistRecordSpan* span)
      MEMPHIS_REQUIRES(mu_);
  void RotateLocked() MEMPHIS_REQUIRES(mu_);
  /// Marks `key`'s live record dead (index drop + dead-byte accounting).
  void KillLiveLocked(const std::string& key) MEMPHIS_REQUIRES(mu_);
  void EnforceBudgetLocked(size_t incoming_bytes) MEMPHIS_REQUIRES(mu_);
  bool ReadRecordLocked(const IndexEntry& entry, const std::string& key,
                        std::string* payload) MEMPHIS_REQUIRES(mu_);
  void CompactLocked() MEMPHIS_REQUIRES(mu_);
  std::string SegmentPathLocked(uint64_t id) const MEMPHIS_REQUIRES(mu_);

  const PersistConfig config_;
  PersistOpenReport open_report_;

  mutable Mutex mu_{LockRank::kPersist, "persist"};
  std::unordered_map<std::string, IndexEntry> index_ MEMPHIS_GUARDED_BY(mu_);
  std::map<uint64_t, SegmentMeta> segments_ MEMPHIS_GUARDED_BY(mu_);
  std::FILE* active_ MEMPHIS_GUARDED_BY(mu_) = nullptr;
  uint64_t active_id_ MEMPHIS_GUARDED_BY(mu_) = 0;
  uint64_t next_segment_id_ MEMPHIS_GUARDED_BY(mu_) = 0;
  uint64_t next_sequence_ MEMPHIS_GUARDED_BY(mu_) = 0;
  uint64_t total_record_bytes_ MEMPHIS_GUARDED_BY(mu_) = 0;
  uint64_t dead_bytes_ MEMPHIS_GUARDED_BY(mu_) = 0;
  uint64_t live_bytes_ MEMPHIS_GUARDED_BY(mu_) = 0;

  // Registry-owned counters: a tier dies with its cache/store while the
  // global registry lives on.
  obs::Counter* puts_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* removes_;
  obs::Counter* evictions_;
  obs::Counter* compactions_;
  obs::Counter* corrupt_records_;
  obs::Counter* segments_dropped_;
  obs::Counter* bytes_written_;
  obs::Counter* bytes_read_;
};

// --- cache-entry payload serde ----------------------------------------------

/// Encodes a host-tier value for the durable tier:
///   u8 kind (0 = matrix, 1 = scalar) | f64 compute_cost | body
/// where body is `u64 rows | u64 cols | raw doubles` for a matrix and
/// `f64 value` for a scalar. All fields little-endian fixed-width memcpy, so
/// a round-trip is bitwise exact.
std::string EncodePersistPayload(CacheKind kind, const MatrixPtr& value,
                                 double scalar, double compute_cost);

/// Decodes EncodePersistPayload. Returns false (touching no output) on any
/// malformed input -- a truncated or tampered payload must never turn into a
/// wrong-shaped matrix.
bool DecodePersistPayload(const std::string& payload, CacheKind* kind,
                          MatrixPtr* value, double* scalar,
                          double* compute_cost);

}  // namespace memphis

#endif  // MEMPHIS_CACHE_PERSIST_H_
