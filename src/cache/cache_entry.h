#ifndef MEMPHIS_CACHE_CACHE_ENTRY_H_
#define MEMPHIS_CACHE_CACHE_ENTRY_H_

#include <memory>

#include "cache/gpu_cache_manager.h"
#include "common/config.h"
#include "lineage/lineage_item.h"
#include "matrix/matrix_block.h"
#include "spark/rdd.h"

namespace memphis {

/// Which backend holds the cached object (Section 3.3: entries are wrappers
/// around backend-specific pointers).
enum class CacheKind { kHostMatrix, kScalar, kRdd, kGpu };

/// Entry lifecycle. kToBeCached implements delayed caching (Section 5.2):
/// the placeholder counts repetitions until the delay factor is reached.
enum class CacheStatus { kToBeCached, kCached, kSpilled };

/// One lineage-cache entry: the lineage key, the backend-specific pointer,
/// and the metadata driving the eviction policies (compute cost c(o), size
/// s(o), reference counters r_h/r_m/r_j, last access T_a).
struct CacheEntry {
  LineageItemPtr key;
  CacheKind kind = CacheKind::kHostMatrix;
  CacheStatus status = CacheStatus::kToBeCached;

  // Backend pointers (exactly one is set for kCached entries).
  MatrixPtr host_value;
  double scalar_value = 0.0;
  spark::RddPtr rdd;
  GpuCacheObjectPtr gpu;

  // Metadata.
  double compute_cost = 0.0;  // c(o): analytic cost of recomputing.
  size_t size_bytes = 0;      // s(o): (estimated worst-case) size.
  int hits = 0;               // r_h.
  int misses = 0;             // r_m (probes while TO-BE-CACHED/unmaterialized).
  int jobs = 0;               // r_j (jobs touching a cached RDD).
  double last_access = 0.0;   // T_a.
  int delay_remaining = 0;    // delayed-caching countdown.
};
using CacheEntryPtr = std::shared_ptr<CacheEntry>;

}  // namespace memphis

#endif  // MEMPHIS_CACHE_CACHE_ENTRY_H_
