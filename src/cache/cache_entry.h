#ifndef MEMPHIS_CACHE_CACHE_ENTRY_H_
#define MEMPHIS_CACHE_CACHE_ENTRY_H_

#include <atomic>
#include <memory>

#include "cache/gpu_cache_manager.h"
#include "common/config.h"
#include "lineage/lineage_item.h"
#include "matrix/matrix_block.h"
#include "spark/rdd.h"

namespace memphis {

/// Which backend holds the cached object (Section 3.3: entries are wrappers
/// around backend-specific pointers).
enum class CacheKind { kHostMatrix, kScalar, kRdd, kGpu };

/// Entry lifecycle. kToBeCached implements delayed caching (Section 5.2):
/// the placeholder counts repetitions until the delay factor is reached.
enum class CacheStatus { kToBeCached, kCached, kSpilled };

/// One lineage-cache entry: the lineage key, the backend-specific pointer,
/// and the metadata driving the eviction policies (compute cost c(o), size
/// s(o), reference counters r_h/r_m/r_j, last access T_a).
///
/// Thread safety: the counters and the status are atomics because concurrent
/// tasks probe entries (LineageCache::Reuse) while the tier managers spill or
/// evict them. Backend pointers and size/cost metadata are only mutated under
/// LineageCache's tier lock; readers reach them only after taking that lock
/// (or single-threaded, after joining the workers).
struct CacheEntry {
  LineageItemPtr key;
  CacheKind kind = CacheKind::kHostMatrix;
  std::atomic<CacheStatus> status{CacheStatus::kToBeCached};

  // Backend pointers (exactly one is set for kCached entries).
  MatrixPtr host_value;
  double scalar_value = 0.0;
  spark::RddPtr rdd;
  GpuCacheObjectPtr gpu;

  // Metadata.
  double compute_cost = 0.0;       // c(o): analytic cost of recomputing.
  size_t size_bytes = 0;           // s(o): (estimated worst-case) size.
  std::atomic<int> hits{0};        // r_h.
  std::atomic<int> misses{0};      // r_m (probes while TO-BE-CACHED).
  std::atomic<int> jobs{0};        // r_j (jobs touching a cached RDD).
  std::atomic<double> last_access{0.0};  // T_a.
  std::atomic<int> delay_remaining{0};   // delayed-caching countdown.
};
using CacheEntryPtr = std::shared_ptr<CacheEntry>;

}  // namespace memphis

#endif  // MEMPHIS_CACHE_CACHE_ENTRY_H_
