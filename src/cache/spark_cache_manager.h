#ifndef MEMPHIS_CACHE_SPARK_CACHE_MANAGER_H_
#define MEMPHIS_CACHE_SPARK_CACHE_MANAGER_H_

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/cache_entry.h"
#include "obs/metrics.h"
#include "spark/spark_context.h"

namespace memphis {

struct SparkCacheStats {
  obs::Counter rdds_registered;
  obs::Counter rdds_evicted;
  obs::Counter async_materializations;
  obs::Counter broadcasts_destroyed;
  obs::Counter parents_cleaned;

  /// Registers every field under "sparkcache.<field>".
  void RegisterMetrics(obs::MetricsRegistry* registry);
};

/// Reuse and memory management for the Spark backend (Section 4.1):
///  * registers persisted RDD entries against the reuse share of the
///    cluster's storage memory (80% by default),
///  * evicts by Eq. (1):  argmin (r_h + r_m + r_j) * c(o) / s(o),
///  * lazily garbage-collects dangling upstream RDD/broadcast references
///    once a cached RDD is materialized,
///  * asynchronously materializes reused-but-unmaterialized RDDs via
///    count() after k cache misses.
class SparkCacheManager {
 public:
  /// `on_evict`: notifies the owner that an entry was dropped from the
  /// unified lineage cache map.
  using EvictCallback = std::function<void(const CacheEntryPtr&)>;

  SparkCacheManager(spark::SparkContext* spark, double reuse_fraction,
                    int materialize_after_misses);

  void set_evict_callback(EvictCallback callback) {
    on_evict_ = std::move(callback);
  }

  /// Registers a new persisted RDD entry; evicts low-score entries (via
  /// unpersist) if the reuse budget would overflow.
  void Register(const CacheEntryPtr& entry, StorageLevel level, double now);

  /// Called on every reuse of an RDD entry: refreshes its metadata with the
  /// actual materialized size (getRDDStorageInfo) and runs Tick().
  void OnReuse(const CacheEntryPtr& entry, double now);

  /// Called on every cache hit (any backend): counts a miss against every
  /// registered-but-unmaterialized RDD -- reuse of downstream action results
  /// keeps their jobs from triggering (Example 4.1) -- materializes them
  /// asynchronously via count() after k misses, and runs the lazy GC.
  void Tick(double now);

  /// Lazy GC: destroys broadcasts and unpersists upstream cached RDDs whose
  /// consumers are all materialized (Figure 6: clean X^T and X once X^T X is
  /// materialized).
  void LazyCleanup(double now);

  /// Budget in bytes reserved for reuse (80% of storage by default).
  size_t ReuseBudget() const;
  size_t reserved_bytes() const { return reserved_; }

  const SparkCacheStats& stats() const { return stats_; }
  SparkCacheStats& mutable_stats() { return stats_; }

  const std::vector<CacheEntryPtr>& registered() const { return entries_; }

 private:
  double Score(const CacheEntry& entry) const;
  void EvictUntilFits(size_t incoming_bytes, double now);

  spark::SparkContext* spark_;
  double reuse_fraction_;
  int materialize_after_misses_;
  EvictCallback on_evict_;
  size_t reserved_ = 0;
  std::vector<CacheEntryPtr> entries_;
  SparkCacheStats stats_;
};

}  // namespace memphis

#endif  // MEMPHIS_CACHE_SPARK_CACHE_MANAGER_H_
