#ifndef MEMPHIS_CACHE_SHARED_STORE_H_
#define MEMPHIS_CACHE_SHARED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include <memory>

#include "cache/cache_entry.h"
#include "cache/lineage_cache.h"
#include "cache/persist.h"
#include "common/sync.h"
#include "lineage/lineage_item.h"
#include "obs/metrics.h"

namespace memphis {

/// Cross-session lineage store: the serve layer's shared cache mode.
///
/// Sessions are reset (or destroyed) between requests, so their LineageCache
/// contents would otherwise die with them. The store outlives sessions: after
/// a request completes, the worker *harvests* the session cache's
/// deterministic host-tier entries into the requesting tenant's partition
/// (Harvest), and before the next request runs it *warms* the fresh session
/// cache from that tenant's partition plus the global one (WarmInto). A
/// lineage key whose DAG reaches a session-unique leaf (BindMatrix's
/// "name@counter" identities) can never match across sessions and is skipped
/// at harvest time; only entries rooted in stable identities
/// (BindMatrixWithId) or pure literals are kept.
///
/// Partitioning: one partition per tenant plus the "" (global) partition for
/// tenant-free builtins. Eviction under a tenant's byte quota picks victims
/// *within that tenant's partition only* -- one tenant can never push out
/// another's working set (cross-tenant isolation is a serve_test invariant).
///
/// Thread safety: one mutex (rank kSharedStore) serializes the store. It
/// ranks *below* kCacheTier so WarmInto may stream entries into a session
/// LineageCache (whose Put takes the tier lock) while holding it.
/// The store can additionally be backed by a durable tier (cache/persist.h):
/// every newly stored entry is appended to an on-disk segment log under a
/// tenant-prefixed key, quota evictions append tombstones, and a store
/// constructed over the same directory rehydrates its tenant partitions from
/// the log -- the serve layer's crash-safe warm restart.
class SharedLineageStore {
 public:
  /// `tenant_quota_bytes`: per-partition byte budget (0 = unlimited).
  /// `persist`: durable-tier configuration; the default (disabled) keeps the
  /// store memory-only. When enabled, existing segments under persist.dir
  /// are replayed into the partitions before the constructor returns.
  explicit SharedLineageStore(size_t tenant_quota_bytes,
                              const PersistConfig& persist = PersistConfig());

  /// Copies the deterministic host-tier entries of `cache` into `tenant`'s
  /// partition ("" for the global partition). Returns how many entries were
  /// newly stored (refreshes, skips, and rejections excluded).
  int Harvest(const std::string& tenant, const LineageCache& cache)
      MEMPHIS_EXCLUDES(mu_);

  /// Inserts one cached entry into `tenant`'s partition. Skips
  /// session-unique keys and non-host kinds; evicts within the partition
  /// when over quota (lowest compute_cost/byte first, oldest on ties); an
  /// entry alone larger than the quota is rejected. Returns true iff newly
  /// stored.
  bool Put(const std::string& tenant, const CacheEntryPtr& entry)
      MEMPHIS_EXCLUDES(mu_);

  /// Seeds `cache` with every entry of `tenant`'s partition plus the global
  /// partition (delay=1: immediately reusable). Returns the freshly inserted
  /// session entries so the caller can count their post-warm hits (the
  /// cross-session hit metric). Entries already present in the session cache
  /// are left untouched.
  std::vector<CacheEntryPtr> WarmInto(const std::string& tenant,
                                      LineageCache* cache, double* now)
      MEMPHIS_EXCLUDES(mu_);

  /// Snapshots `tenant`'s partition as cache entries ("" for the global
  /// one). The serving fabric publishes these into its cross-site tier;
  /// values share the immutable MatrixPtrs, so the copy is cheap.
  std::vector<CacheEntryPtr> ExportPartition(const std::string& tenant) const
      MEMPHIS_EXCLUDES(mu_);

  /// Drops a tenant's partition (test/admin hook). "" drops the global one.
  void DropPartition(const std::string& tenant) MEMPHIS_EXCLUDES(mu_);

  size_t PartitionBytes(const std::string& tenant) const MEMPHIS_EXCLUDES(mu_);
  size_t PartitionEntries(const std::string& tenant) const
      MEMPHIS_EXCLUDES(mu_);
  size_t TotalEntries() const MEMPHIS_EXCLUDES(mu_);

  /// True when a structurally equal key is visible to `tenant` (its own
  /// partition or the global one). Tests use this to assert isolation.
  bool Contains(const std::string& tenant, const LineageItemPtr& key) const
      MEMPHIS_EXCLUDES(mu_);

  /// Structural self-check: per-partition byte accounting matches the
  /// entries, every value pointer is set for its kind, and no partition
  /// exceeds its quota. Empty string when clean.
  std::string CheckInvariants() const MEMPHIS_EXCLUDES(mu_);

  /// The durable tier, or nullptr when the store is memory-only.
  PersistentTier* persist_tier() { return persist_.get(); }

 private:
  /// One stored value: a deep-copied slice of a session cache entry (the
  /// MatrixPtr itself is shared -- matrices are immutable once cached).
  struct StoredEntry {
    LineageItemPtr key;
    CacheKind kind = CacheKind::kHostMatrix;
    MatrixPtr value;          // kHostMatrix.
    double scalar = 0.0;      // kScalar.
    double compute_cost = 0.0;
    size_t bytes = 0;
    int64_t last_touch = 0;   // Monotonic store tick, not wall time.
    int64_t hits = 0;
  };
  using PartitionMap = std::unordered_map<LineageItemPtr, StoredEntry,
                                          LineageItemPtrHash, LineageItemPtrEq>;
  struct Partition {
    PartitionMap entries;
    size_t used_bytes = 0;
    int64_t evictions = 0;
  };

  bool PutLocked(const std::string& tenant, const CacheEntryPtr& entry)
      MEMPHIS_REQUIRES(mu_);
  /// Evicts lowest-score entries of `tenant`'s `partition` until `needed`
  /// bytes fit under the quota; victims get a tombstone in the durable tier.
  void EvictForSpace(const std::string& tenant, Partition* partition,
                     size_t needed) MEMPHIS_REQUIRES(mu_);
  /// Replays the durable tier into the partitions (constructor only).
  void RehydrateLocked() MEMPHIS_REQUIRES(mu_);

  const size_t tenant_quota_bytes_;
  mutable Mutex mu_{LockRank::kSharedStore, "serve-shared-store"};
  std::map<std::string, Partition> partitions_ MEMPHIS_GUARDED_BY(mu_);
  int64_t tick_ MEMPHIS_GUARDED_BY(mu_) = 0;

  /// Durable tier (nullptr when disabled). Appended to while holding mu_:
  /// kSharedStore < kPersist is the sanctioned nesting (sync.h table).
  std::unique_ptr<PersistentTier> persist_;

  // Process-wide owned counters (registry-owned so they outlive any store).
  obs::Counter* puts_;
  obs::Counter* refreshes_;
  obs::Counter* skipped_session_local_;
  obs::Counter* rejected_oversize_;
  obs::Counter* evictions_;
  obs::Counter* warmed_;
  obs::Counter* rehydrated_;
};

}  // namespace memphis

#endif  // MEMPHIS_CACHE_SHARED_STORE_H_
