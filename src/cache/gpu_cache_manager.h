#ifndef MEMPHIS_CACHE_GPU_CACHE_MANAGER_H_
#define MEMPHIS_CACHE_GPU_CACHE_MANAGER_H_

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "gpu/gpu_context.h"
#include "lineage/lineage_item.h"
#include "obs/metrics.h"

namespace memphis {

/// A GPU pointer under lineage-cache management (Section 4.2): the device
/// buffer, the reference count of live variables sharing it, the lineage key
/// (when the output is cached for reuse), and the eviction-score metadata.
class GpuCacheManager;

struct GpuCacheObject {
  gpu::GpuBufferPtr buffer;
  LineageItemPtr lineage;      // nullptr once recycled / for uncached temps.
  int ref_count = 0;           // live variables referencing the pointer.
  bool in_free_list = false;
  double last_access = 0.0;    // T_a(o).
  double compute_cost = 0.0;   // c(o).
  int height = 0;              // h(o) = lineage trace height.
  int device = 0;              // device index (multi-GPU, Section 5.4).
  GpuCacheManager* owner = nullptr;  // manager of `device`'s cache.
};
using GpuCacheObjectPtr = std::shared_ptr<GpuCacheObject>;

/// Counters for reports (e.g. "255K/139K recycled/reused pointers").
/// Atomic (obs::Counter): the allocation ladder runs under tier_mu_ today,
/// but instruction slots release references from pool threads.
struct GpuCacheStats {
  obs::Counter recycled_exact;    // exact-size pointer recycling.
  obs::Counter freed_larger;      // freed a just-larger pointer.
  obs::Counter freed_for_space;   // repeated frees until cudaMalloc succeeds.
  obs::Counter full_cleanups;
  obs::Counter d2h_evictions;
  obs::Counter defrags;
  obs::Counter reused_pointers;
  obs::Counter oom_failures;

  /// Registers every field under "<prefix><field>" ("gpucache0." etc.).
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix);
};

/// Unified GPU memory manager with moving reuse/recycle boundaries: all
/// pointers from allocation to deallocation live in a Live list (pending
/// consumers) or a size-keyed Free list (recyclable and/or reusable).
/// Implements Algorithm 1's allocation ladder and the eviction scoring of
/// Eq. (2):  argmin  T_a(o) + 1/h(o) + c(o).
class GpuCacheManager {
 public:
  /// `d2h_sink`: callback that receives a device object's value right before
  /// its pointer is freed by the device-to-host eviction step, so the host
  /// tier of the hierarchical cache can retain it.
  using D2hSink =
      std::function<void(const LineageItemPtr&, const MatrixPtr&, double*)>;

  GpuCacheManager(gpu::GpuContext* gpu, bool recycling_enabled,
                  int device = 0);

  void set_d2h_sink(D2hSink sink) { d2h_sink_ = std::move(sink); }

  /// Serves an output allocation (Algorithm 1). Returns a live object with
  /// ref_count 1. Throws GpuOutOfMemoryError if the full ladder fails.
  GpuCacheObjectPtr Allocate(size_t bytes, double* now);

  /// Marks one more live variable referencing the pointer.
  void AddRef(const GpuCacheObjectPtr& object);

  /// Releases one live reference; when the count reaches zero the pointer
  /// moves to the Free list (Figure 8(b)) -- it stays reusable while free.
  void Release(const GpuCacheObjectPtr& object, double* now);

  /// Reuses a cached pointer: moves it Free -> Live (Figure 8(c)).
  void Reuse(const GpuCacheObjectPtr& object, double now);

  /// Attaches cache metadata after a PUT.
  void Annotate(const GpuCacheObjectPtr& object, LineageItemPtr lineage,
                double compute_cost, double now);

  /// evict(pct) instruction (Section 5.2): frees `percent`% of the free
  /// list's bytes in eviction-score order. With `preserve_to_host`, cached
  /// values are copied to the host tier first (the slower device-to-host
  /// eviction path used as an allocation last resort).
  void EvictPercent(double percent, double* now,
                    bool preserve_to_host = false);

  /// Total bytes sitting in the free list.
  size_t FreeListBytes() const;
  size_t free_list_size() const;

  const GpuCacheStats& stats() const { return stats_; }
  GpuCacheStats& mutable_stats() { return stats_; }
  int device() const { return device_; }
  gpu::GpuContext& gpu() { return *gpu_; }

 private:
  /// Removes `object` from the free list and invalidates its cache link.
  void RemoveFromFreeList(const GpuCacheObjectPtr& object);

  /// The free object with minimum eviction score among `candidates`.
  GpuCacheObjectPtr MinScore(const std::vector<GpuCacheObjectPtr>& candidates,
                             double now) const;

  /// Picks the free-list victim with the minimum score across all sizes.
  GpuCacheObjectPtr GlobalMinScore(double now) const;

  double Score(const GpuCacheObject& object, double now) const;

  gpu::GpuContext* gpu_;
  bool recycling_enabled_;
  int device_ = 0;
  D2hSink d2h_sink_;
  /// Size -> free objects of that size (priority by eviction score).
  std::map<size_t, std::vector<GpuCacheObjectPtr>> free_list_;
  double max_cost_seen_ = 1.0;  // for normalizing c(o).
  GpuCacheStats stats_;
};

}  // namespace memphis

#endif  // MEMPHIS_CACHE_GPU_CACHE_MANAGER_H_
