#include "cache/lineage_cache.h"

#include "common/status.h"
#include "obs/trace.h"

namespace memphis {

void LineageCacheStats::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->Register("cache.probes", &probes);
  registry->Register("cache.hits_host", &hits_host);
  registry->Register("cache.hits_scalar", &hits_scalar);
  registry->Register("cache.hits_rdd", &hits_rdd);
  registry->Register("cache.hits_gpu", &hits_gpu);
  registry->Register("cache.hits_function", &hits_function);
  registry->Register("cache.misses", &misses);
  registry->Register("cache.puts", &puts);
  registry->Register("cache.delayed_placeholders", &delayed_placeholders);
  registry->Register("cache.invalidated_gpu", &invalidated_gpu);
  registry->RegisterCallback("cache.hit_ratio", [this] {
    const auto total_probes = static_cast<double>(probes.value());
    return total_probes > 0
               ? static_cast<double>(TotalHits()) / total_probes
               : 0.0;
  });
}

LineageCache::LineageCache(const SystemConfig& config,
                           const sim::CostModel* cost_model,
                           spark::SparkContext* spark,
                           GpuCacheManager* gpu_cache)
    : host_cache_(config.driver_lineage_cache, cost_model),
      spark_manager_(spark, config.reuse_storage_fraction,
                     config.lazy_materialize_after_misses),
      gpu_cache_(gpu_cache) {
  // Fired from spark_manager_ calls, i.e. with tier_mu_ held; taking the
  // victim's shard lock there is the sanctioned lock order.
  spark_manager_.set_evict_callback([this](const CacheEntryPtr& entry) {
    tier_mu_.AssertHeld();  // Lambdas are analyzed separately; EraseKey
                            // REQUIRES(tier_mu_).
    EraseKey(entry->key);
  });
  if (gpu_cache_ != nullptr) AttachGpuCache(gpu_cache_);
}

void LineageCache::AttachGpuCache(GpuCacheManager* gpu_cache) {
  gpu_cache->set_d2h_sink([this](const LineageItemPtr& key,
                                 const MatrixPtr& value, double* now) {
    PutHostFromGpuEviction(key, value, now);
  });
}

LineageCache::Shard& LineageCache::ShardFor(const LineageItemPtr& key) {
  return shards_[LineageItemPtrHash{}(key) % kNumShards];
}

const LineageCache::Shard& LineageCache::ShardFor(
    const LineageItemPtr& key) const {
  return shards_[LineageItemPtrHash{}(key) % kNumShards];
}

void LineageCache::EraseKey(const LineageItemPtr& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  shard.map.erase(key);
}

CacheEntryPtr LineageCache::Reuse(const LineageItemPtr& key, double* now) {
  ++stats_.probes;
  CacheEntryPtr entry;
  {
    // Fast path: misses and placeholder probes -- the common case while
    // tracing a new pipeline -- touch only this key's shard.
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++stats_.misses;
      MEMPHIS_TRACE_INSTANT("cache", "miss");
      return nullptr;
    }
    entry = it->second;
    if (entry->status == CacheStatus::kToBeCached) {
      // Delayed-caching placeholder: counts as a miss; the following PUT
      // advances the countdown.
      ++entry->misses;
      ++stats_.misses;
      MEMPHIS_TRACE_INSTANT("cache", "miss-placeholder");
      return nullptr;
    }
  }

  // Hit path: tier bookkeeping (spill restore, Spark ticks, GPU reference
  // refresh) mutates shared manager state, so it serializes on tier_mu_.
  // The shard lock is released first -- never held across tier_mu_.
  MutexLock tier_lock(tier_mu_);
  switch (entry->kind) {
    case CacheKind::kHostMatrix:
      host_cache_.RestoreIfSpilled(entry, now);
      spark_manager_.Tick(*now);  // Action-result reuses tick the k-miss
                                  // counters of pending RDDs (Example 4.1).
      ++stats_.hits_host;
      break;
    case CacheKind::kScalar:
      spark_manager_.Tick(*now);
      ++stats_.hits_scalar;
      break;
    case CacheKind::kRdd:
      ++entry->jobs;  // Every reuse feeds another job (r_j).
      spark_manager_.OnReuse(entry, *now);
      ++stats_.hits_rdd;
      break;
    case CacheKind::kGpu:
      // Validity: the pointer may have been recycled since it was cached.
      if (entry->gpu == nullptr || entry->gpu->lineage == nullptr ||
          entry->gpu->buffer == nullptr || entry->gpu->buffer->data == nullptr) {
        {
          Shard& shard = ShardFor(key);
          MutexLock lock(shard.mu);
          auto it = shard.map.find(key);
          // Only drop the slot if it still holds this stale entry (a
          // concurrent put may have replaced it already).
          if (it != shard.map.end() && it->second == entry) {
            shard.map.erase(it);
          }
        }
        ++stats_.invalidated_gpu;
        ++stats_.misses;
        MEMPHIS_TRACE_INSTANT("cache", "miss-invalidated-gpu");
        return nullptr;
      }
      entry->gpu->owner->Reuse(entry->gpu, *now);
      ++stats_.hits_gpu;
      break;
  }
  ++entry->hits;
  entry->last_access = *now;
  MEMPHIS_TRACE_INSTANT1("cache", "hit", "kind",
                         static_cast<double>(entry->kind));
  return entry;
}

CacheEntryPtr LineageCache::PreparePut(const LineageItemPtr& key, int delay) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    auto entry = std::make_shared<CacheEntry>();
    entry->key = key;
    if (delay > 1) {
      entry->status = CacheStatus::kToBeCached;
      entry->delay_remaining = delay - 1;
      shard.map[key] = entry;
      ++stats_.delayed_placeholders;
      return nullptr;  // Placeholder only; object not stored yet.
    }
    entry->status = CacheStatus::kCached;
    shard.map[key] = entry;
    return entry;
  }
  CacheEntryPtr entry = it->second;
  if (entry->status == CacheStatus::kToBeCached) {
    if (--entry->delay_remaining > 0) return nullptr;
    entry->status = CacheStatus::kCached;
    return entry;
  }
  return nullptr;  // Already cached (e.g. concurrent put) -- nothing to do.
}

CacheEntryPtr LineageCache::PutHost(const LineageItemPtr& key,
                                    MatrixPtr value, double compute_cost,
                                    int delay, double* now) {
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry = PreparePut(key, delay);
  if (entry == nullptr) return nullptr;
  entry->kind = CacheKind::kHostMatrix;
  entry->host_value = std::move(value);
  entry->compute_cost = compute_cost;
  entry->size_bytes = entry->host_value->SizeInBytes();
  entry->last_access = *now;
  if (!host_cache_.Admit(entry, now)) {
    EraseKey(key);  // Too large for the driver cache.
    return nullptr;
  }
  ++stats_.puts;
  return entry;
}

CacheEntryPtr LineageCache::PutScalar(const LineageItemPtr& key, double value,
                                      double compute_cost, int delay,
                                      double* now) {
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry = PreparePut(key, delay);
  if (entry == nullptr) return nullptr;
  entry->kind = CacheKind::kScalar;
  entry->scalar_value = value;
  entry->compute_cost = compute_cost;
  entry->size_bytes = sizeof(double);
  entry->last_access = *now;
  ++stats_.puts;
  return entry;
}

CacheEntryPtr LineageCache::PutRdd(const LineageItemPtr& key,
                                   spark::RddPtr rdd, double compute_cost,
                                   int delay, StorageLevel level, double now) {
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry = PreparePut(key, delay);
  if (entry == nullptr) return nullptr;
  entry->kind = CacheKind::kRdd;
  entry->rdd = std::move(rdd);
  entry->compute_cost = compute_cost;
  entry->size_bytes = entry->rdd->EstimatedBytes();
  entry->last_access = now;
  spark_manager_.Register(entry, level, now);
  ++stats_.puts;
  return entry;
}

CacheEntryPtr LineageCache::PutGpu(const LineageItemPtr& key,
                                   GpuCacheObjectPtr object,
                                   double compute_cost, int delay,
                                   double now) {
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry = PreparePut(key, delay);
  if (entry == nullptr) return nullptr;
  entry->kind = CacheKind::kGpu;
  entry->gpu = std::move(object);
  entry->compute_cost = compute_cost;
  entry->size_bytes = entry->gpu->buffer->bytes;
  entry->last_access = now;
  entry->gpu->owner->Annotate(entry->gpu, key, compute_cost, now);
  ++stats_.puts;
  return entry;
}

void LineageCache::PutHostFromGpuEviction(const LineageItemPtr& key,
                                          MatrixPtr value, double* now) {
  // Invoked from GPU MakeSpace/EvictPercent, outside any LineageCache lock
  // (the cache never triggers device eviction while holding tier_mu_).
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry;
  {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) entry = it->second;
  }
  if (entry != nullptr) {
    // The GPU entry's slot in the map is replaced by a host entry so the
    // intermediate stays reusable from the host tier.
    entry->kind = CacheKind::kHostMatrix;
    entry->gpu = nullptr;
    entry->host_value = std::move(value);
    entry->size_bytes = entry->host_value->SizeInBytes();
    entry->status = CacheStatus::kCached;
    if (!host_cache_.Admit(entry, now)) EraseKey(key);
    return;
  }
  entry = std::make_shared<CacheEntry>();
  entry->key = key;
  entry->kind = CacheKind::kHostMatrix;
  entry->status = CacheStatus::kCached;
  entry->host_value = std::move(value);
  entry->size_bytes = entry->host_value->SizeInBytes();
  entry->last_access = *now;
  if (host_cache_.Admit(entry, now)) {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    shard.map[key] = entry;
  }
}

void LineageCache::Remove(const LineageItemPtr& key) {
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry;
  {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return;
    entry = it->second;
    shard.map.erase(it);
  }
  if (entry->kind == CacheKind::kHostMatrix) {
    host_cache_.Forget(entry);
  }
}

std::vector<CacheEntryPtr> LineageCache::SnapshotHostEntries() const {
  // Same locking shape as CheckInvariants: tier lock for the whole sweep
  // (backend pointers are tier-guarded), shard locks nested inside.
  MutexLock tier_lock(tier_mu_);
  std::vector<CacheEntryPtr> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, entry] : shard.map) {
      if (entry->status.load() != CacheStatus::kCached) continue;
      if (entry->kind == CacheKind::kScalar ||
          (entry->kind == CacheKind::kHostMatrix &&
           entry->host_value != nullptr)) {
        out.push_back(entry);
      }
    }
  }
  return out;
}

std::string LineageCache::CheckInvariants() const {
  // The sweep reads tier-guarded state (host-tier accounting, backend
  // pointers, size_bytes), so it holds tier_mu_ throughout; shard locks nest
  // inside per the rank order.
  MutexLock tier_lock(tier_mu_);
  std::unordered_map<const CacheEntry*, bool> mapped;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, entry] : shard.map) {
      if (entry == nullptr) return "map slot holds a null entry";
      if (entry->key == nullptr || !LineageEquals(key, entry->key)) {
        return "entry key disagrees with its map key";
      }
      mapped[entry.get()] = true;
      switch (entry->status.load()) {
        case CacheStatus::kToBeCached:
          if (entry->delay_remaining <= 0) {
            return "delayed placeholder with non-positive countdown";
          }
          break;
        case CacheStatus::kSpilled:
          if (entry->kind != CacheKind::kHostMatrix) {
            return "spilled entry is not a host matrix";
          }
          break;
        case CacheStatus::kCached:
          switch (entry->kind) {
            case CacheKind::kHostMatrix:
              if (entry->host_value == nullptr) {
                return "kCached host entry has no value";
              }
              break;
            case CacheKind::kScalar:
              break;
            case CacheKind::kRdd:
              if (entry->rdd == nullptr) return "kCached RDD entry has no RDD";
              break;
            case CacheKind::kGpu:
              // A recycled device pointer is legal (Reuse invalidates it
              // lazily), but the handle itself must exist.
              if (entry->gpu == nullptr) {
                return "kCached GPU entry has no device handle";
              }
              break;
          }
          break;
      }
    }
  }
  // Host-tier accounting, plus: every resident entry is reachable from the
  // map (an unmapped resident would leak budget forever).
  const std::string host = host_cache_.CheckInvariants();
  if (!host.empty()) return "host tier: " + host;
  for (const CacheEntryPtr& entry : host_cache_.resident()) {
    if (mapped.find(entry.get()) == mapped.end()) {
      return "host-resident entry is not reachable from the lineage map";
    }
  }
  return "";
}

size_t LineageCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace memphis
