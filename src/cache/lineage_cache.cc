#include "cache/lineage_cache.h"

#include <unordered_set>

#include "common/status.h"
#include "lineage/lineage_serde.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace memphis {

namespace {

// Journal key: the same hash the shard router uses, so memphis_explain can
// correlate every decision about one lineage key across tiers.
inline uint64_t JournalKey(const LineageItemPtr& key) {
  return static_cast<uint64_t>(LineageItemPtrHash{}(key));
}

obs::JournalTier JournalTierOf(CacheKind kind) {
  switch (kind) {
    case CacheKind::kHostMatrix: return obs::JournalTier::kHost;
    case CacheKind::kScalar: return obs::JournalTier::kScalar;
    case CacheKind::kRdd: return obs::JournalTier::kRdd;
    case CacheKind::kGpu: return obs::JournalTier::kGpu;
  }
  return obs::JournalTier::kNone;
}

}  // namespace

bool LineageHasSessionLocalLeaf(const LineageItemPtr& key) {
  // Iterative DAG walk with identity-based memoization (DAGs share subtrees).
  std::vector<const LineageItem*> stack{key.get()};
  std::unordered_set<const LineageItem*> seen;
  while (!stack.empty()) {
    const LineageItem* item = stack.back();
    stack.pop_back();
    if (!seen.insert(item).second) continue;
    if (item->inputs().empty() && item->opcode() == "extern" &&
        item->data().find('@') != std::string::npos) {
      return true;
    }
    for (const LineageItemPtr& input : item->inputs()) {
      stack.push_back(input.get());
    }
  }
  return false;
}

void LineageCacheStats::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->Register("cache.probes", &probes);
  registry->Register("cache.hits_host", &hits_host);
  registry->Register("cache.hits_scalar", &hits_scalar);
  registry->Register("cache.hits_rdd", &hits_rdd);
  registry->Register("cache.hits_gpu", &hits_gpu);
  registry->Register("cache.hits_function", &hits_function);
  registry->Register("cache.misses", &misses);
  registry->Register("cache.puts", &puts);
  registry->Register("cache.delayed_placeholders", &delayed_placeholders);
  registry->Register("cache.invalidated_gpu", &invalidated_gpu);
  registry->RegisterCallback("cache.hit_ratio", [this] {
    const auto total_probes = static_cast<double>(probes.value());
    return total_probes > 0
               ? static_cast<double>(TotalHits()) / total_probes
               : 0.0;
  });
}

LineageCache::LineageCache(const SystemConfig& config,
                           const sim::CostModel* cost_model,
                           spark::SparkContext* spark,
                           GpuCacheManager* gpu_cache)
    : host_cache_(config.driver_lineage_cache, cost_model),
      spark_manager_(spark, config.reuse_storage_fraction,
                     config.lazy_materialize_after_misses),
      gpu_cache_(gpu_cache) {
  // Fired from spark_manager_ calls, i.e. with tier_mu_ held; taking the
  // victim's shard lock there is the sanctioned lock order.
  spark_manager_.set_evict_callback([this](const CacheEntryPtr& entry) {
    tier_mu_.AssertHeld();  // Lambdas are analyzed separately; EraseKey
                            // REQUIRES(tier_mu_).
    EraseKey(entry->key);
  });
  if (gpu_cache_ != nullptr) AttachGpuCache(gpu_cache_);

  auto& registry = obs::MetricsRegistry::Global();
  persist_promotions_ = registry.GetCounter("persist.promotions");
  persist_harvested_ = registry.GetCounter("persist.harvested");
  PersistConfig persist_config;
  persist_config.dir = config.persist_dir;
  persist_config.budget_bytes = config.persist_budget_bytes;
  persist_config.segment_bytes = config.persist_segment_bytes;
  persist_config.compact_dead_ratio = config.persist_compact_dead_ratio;
  persist_config.min_compute_cost = config.persist_min_compute_cost;
  persist_config.harvest_interval_ms = config.persist_harvest_interval_ms;
  if (persist_config.enabled()) {
    persist_ = std::make_unique<PersistentTier>(persist_config);
    if (persist_config.harvest_interval_ms > 0) {
      harvest_thread_ = std::thread([this] { HarvestLoop(); });
    }
  }
}

LineageCache::~LineageCache() {
  if (harvest_thread_.joinable()) {
    {
      MutexLock lock(harvest_mu_);
      harvest_stop_ = true;
    }
    harvest_cv_.NotifyAll();
    harvest_thread_.join();
  }
}

void LineageCache::HarvestLoop() {
  for (;;) {
    {
      MutexLock lock(harvest_mu_);
      if (harvest_stop_) return;
      harvest_cv_.WaitFor(&harvest_mu_, persist_->config().harvest_interval_ms);
      if (harvest_stop_) return;
    }
    // Harvest with no lock held: HarvestToDiskNow takes the tier lock for
    // its snapshot, then the persist lock per append.
    HarvestToDiskNow();
  }
}

void LineageCache::AttachGpuCache(GpuCacheManager* gpu_cache) {
  gpu_cache->set_d2h_sink([this](const LineageItemPtr& key,
                                 const MatrixPtr& value, double* now) {
    PutHostFromGpuEviction(key, value, now);
  });
}

LineageCache::Shard& LineageCache::ShardFor(const LineageItemPtr& key) {
  return shards_[LineageItemPtrHash{}(key) % kNumShards];
}

const LineageCache::Shard& LineageCache::ShardFor(
    const LineageItemPtr& key) const {
  return shards_[LineageItemPtrHash{}(key) % kNumShards];
}

void LineageCache::EraseKey(const LineageItemPtr& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  shard.map.erase(key);
}

CacheEntryPtr LineageCache::Reuse(const LineageItemPtr& key, double* now) {
  ++stats_.probes;
  // Journal invariant (tested): exactly one kProbe per stats_.probes bump,
  // and exactly one kHit or kMiss on every return path below.
  MEMPHIS_JOURNAL(kProbe, kNone, kNone, JournalKey(key), 0.0, 0.0);
  CacheEntryPtr entry;
  {
    // Fast path: misses and placeholder probes -- the common case while
    // tracing a new pipeline -- touch only this key's shard.
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) entry = it->second;
  }
  if (entry == nullptr) {
    // Probe order host -> disk: a map miss falls through to the durable
    // tier (shard lock already released); a verified disk hit is promoted
    // back into the host tier and served like any other hit.
    if (persist_ != nullptr) {
      entry = PromoteFromDisk(key, now);
      if (entry != nullptr) return entry;
    }
    ++stats_.misses;
    MEMPHIS_TRACE_INSTANT_REQ("cache", "miss");
    MEMPHIS_JOURNAL(kMiss, kNone, kNone, JournalKey(key), 0.0, 0.0);
    return nullptr;
  }
  if (entry->status == CacheStatus::kToBeCached) {
    // Delayed-caching placeholder: counts as a miss; the following PUT
    // advances the countdown.
    ++entry->misses;
    ++stats_.misses;
    MEMPHIS_TRACE_INSTANT_REQ("cache", "miss-placeholder");
    MEMPHIS_JOURNAL(kMiss, kNone, kPlaceholder, JournalKey(key), 0.0, 0.0);
    return nullptr;
  }

  // Hit path: tier bookkeeping (spill restore, Spark ticks, GPU reference
  // refresh) mutates shared manager state, so it serializes on tier_mu_.
  // The shard lock is released first -- never held across tier_mu_.
  MutexLock tier_lock(tier_mu_);
  switch (entry->kind) {
    case CacheKind::kHostMatrix:
      host_cache_.RestoreIfSpilled(entry, now);
      spark_manager_.Tick(*now);  // Action-result reuses tick the k-miss
                                  // counters of pending RDDs (Example 4.1).
      ++stats_.hits_host;
      break;
    case CacheKind::kScalar:
      spark_manager_.Tick(*now);
      ++stats_.hits_scalar;
      break;
    case CacheKind::kRdd:
      ++entry->jobs;  // Every reuse feeds another job (r_j).
      spark_manager_.OnReuse(entry, *now);
      ++stats_.hits_rdd;
      break;
    case CacheKind::kGpu:
      // Validity: the pointer may have been recycled since it was cached.
      if (entry->gpu == nullptr || entry->gpu->lineage == nullptr ||
          entry->gpu->buffer == nullptr || entry->gpu->buffer->data == nullptr) {
        {
          Shard& shard = ShardFor(key);
          MutexLock lock(shard.mu);
          auto it = shard.map.find(key);
          // Only drop the slot if it still holds this stale entry (a
          // concurrent put may have replaced it already).
          if (it != shard.map.end() && it->second == entry) {
            shard.map.erase(it);
          }
        }
        ++stats_.invalidated_gpu;
        ++stats_.misses;
        MEMPHIS_TRACE_INSTANT_REQ("cache", "miss-invalidated-gpu");
        MEMPHIS_JOURNAL(kMiss, kGpu, kInvalidatedGpu, JournalKey(key), 0.0,
                        0.0);
        return nullptr;
      }
      entry->gpu->owner->Reuse(entry->gpu, *now);
      ++stats_.hits_gpu;
      break;
  }
  ++entry->hits;
  entry->last_access = *now;
  MEMPHIS_TRACE_INSTANT1_REQ("cache", "hit", "kind",
                             static_cast<double>(entry->kind));
  if (obs::JournalEnabled()) {
    obs::EmitJournal(obs::JournalKind::kHit, JournalTierOf(entry->kind),
                     obs::JournalReason::kNone, JournalKey(key),
                     entry->compute_cost,
                     static_cast<double>(entry->size_bytes));
  }
  return entry;
}

CacheEntryPtr LineageCache::PreparePut(const LineageItemPtr& key, int delay) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    auto entry = std::make_shared<CacheEntry>();
    entry->key = key;
    if (delay > 1) {
      entry->status = CacheStatus::kToBeCached;
      entry->delay_remaining = delay - 1;
      shard.map[key] = entry;
      ++stats_.delayed_placeholders;
      return nullptr;  // Placeholder only; object not stored yet.
    }
    entry->status = CacheStatus::kCached;
    shard.map[key] = entry;
    return entry;
  }
  CacheEntryPtr entry = it->second;
  if (entry->status == CacheStatus::kToBeCached) {
    if (--entry->delay_remaining > 0) return nullptr;
    entry->status = CacheStatus::kCached;
    return entry;
  }
  return nullptr;  // Already cached (e.g. concurrent put) -- nothing to do.
}

CacheEntryPtr LineageCache::PutHost(const LineageItemPtr& key,
                                    MatrixPtr value, double compute_cost,
                                    int delay, double* now) {
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry = PreparePut(key, delay);
  if (entry == nullptr) return nullptr;
  entry->kind = CacheKind::kHostMatrix;
  entry->host_value = std::move(value);
  entry->compute_cost = compute_cost;
  entry->size_bytes = entry->host_value->SizeInBytes();
  entry->last_access = *now;
  if (!host_cache_.Admit(entry, now)) {
    EraseKey(key);  // Too large for the driver cache.
    return nullptr;
  }
  ++stats_.puts;
  MEMPHIS_JOURNAL(kPut, kHost, kNone, JournalKey(key), compute_cost,
                  static_cast<double>(entry->size_bytes));
  return entry;
}

CacheEntryPtr LineageCache::PutScalar(const LineageItemPtr& key, double value,
                                      double compute_cost, int delay,
                                      double* now) {
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry = PreparePut(key, delay);
  if (entry == nullptr) return nullptr;
  entry->kind = CacheKind::kScalar;
  entry->scalar_value = value;
  entry->compute_cost = compute_cost;
  entry->size_bytes = sizeof(double);
  entry->last_access = *now;
  ++stats_.puts;
  MEMPHIS_JOURNAL(kPut, kScalar, kNone, JournalKey(key), compute_cost,
                  static_cast<double>(sizeof(double)));
  return entry;
}

CacheEntryPtr LineageCache::PutRdd(const LineageItemPtr& key,
                                   spark::RddPtr rdd, double compute_cost,
                                   int delay, StorageLevel level, double now) {
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry = PreparePut(key, delay);
  if (entry == nullptr) return nullptr;
  entry->kind = CacheKind::kRdd;
  entry->rdd = std::move(rdd);
  entry->compute_cost = compute_cost;
  entry->size_bytes = entry->rdd->EstimatedBytes();
  entry->last_access = now;
  spark_manager_.Register(entry, level, now);
  ++stats_.puts;
  MEMPHIS_JOURNAL(kPut, kRdd, kNone, JournalKey(key), compute_cost,
                  static_cast<double>(entry->size_bytes));
  return entry;
}

CacheEntryPtr LineageCache::PutGpu(const LineageItemPtr& key,
                                   GpuCacheObjectPtr object,
                                   double compute_cost, int delay,
                                   double now) {
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry = PreparePut(key, delay);
  if (entry == nullptr) return nullptr;
  entry->kind = CacheKind::kGpu;
  entry->gpu = std::move(object);
  entry->compute_cost = compute_cost;
  entry->size_bytes = entry->gpu->buffer->bytes;
  entry->last_access = now;
  entry->gpu->owner->Annotate(entry->gpu, key, compute_cost, now);
  ++stats_.puts;
  MEMPHIS_JOURNAL(kPut, kGpu, kNone, JournalKey(key), compute_cost,
                  static_cast<double>(entry->size_bytes));
  return entry;
}

void LineageCache::PutHostFromGpuEviction(const LineageItemPtr& key,
                                          MatrixPtr value, double* now) {
  // Invoked from GPU MakeSpace/EvictPercent, outside any LineageCache lock
  // (the cache never triggers device eviction while holding tier_mu_).
  MEMPHIS_JOURNAL(kEvict, kGpu, kQuota, JournalKey(key), 0.0,
                  value != nullptr
                      ? static_cast<double>(value->SizeInBytes())
                      : 0.0);
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry;
  {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) entry = it->second;
  }
  if (entry != nullptr) {
    // The GPU entry's slot in the map is replaced by a host entry so the
    // intermediate stays reusable from the host tier.
    entry->kind = CacheKind::kHostMatrix;
    entry->gpu = nullptr;
    entry->host_value = std::move(value);
    entry->size_bytes = entry->host_value->SizeInBytes();
    entry->status = CacheStatus::kCached;
    if (!host_cache_.Admit(entry, now)) EraseKey(key);
    return;
  }
  entry = std::make_shared<CacheEntry>();
  entry->key = key;
  entry->kind = CacheKind::kHostMatrix;
  entry->status = CacheStatus::kCached;
  entry->host_value = std::move(value);
  entry->size_bytes = entry->host_value->SizeInBytes();
  entry->last_access = *now;
  if (host_cache_.Admit(entry, now)) {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    shard.map[key] = entry;
  }
}

void LineageCache::Remove(const LineageItemPtr& key) {
  MutexLock tier_lock(tier_mu_);
  CacheEntryPtr entry;
  {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return;
    entry = it->second;
    shard.map.erase(it);
  }
  if (entry->kind == CacheKind::kHostMatrix) {
    host_cache_.Forget(entry);
  }
}

CacheEntryPtr LineageCache::PromoteFromDisk(const LineageItemPtr& key,
                                            double* now) {
  // Session-local keys are never on disk (harvest skips them); skipping the
  // probe also avoids serializing a throwaway lineage DAG per cold miss.
  if (LineageHasSessionLocalLeaf(key)) return nullptr;
  std::string payload;
  if (!persist_->Get(SerializeLineage(key), &payload)) return nullptr;
  CacheKind kind = CacheKind::kHostMatrix;
  MatrixPtr value;
  double scalar = 0.0;
  double compute_cost = 0.0;
  if (!DecodePersistPayload(payload, &kind, &value, &scalar, &compute_cost)) {
    return nullptr;  // Checksummed but semantically malformed: treat as miss.
  }
  // Promotion = a delay-1 put through the normal machinery, so host-tier
  // admission, eviction accounting, and concurrent-put dedup all apply.
  CacheEntryPtr entry =
      kind == CacheKind::kScalar
          ? PutScalar(key, scalar, compute_cost, /*delay=*/1, now)
          : PutHost(key, std::move(value), compute_cost, /*delay=*/1, now);
  if (entry == nullptr) {
    // Lost a race with a concurrent put (or the value no longer fits the
    // host tier): re-probe the map once so the caller still sees the hit.
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end() ||
        it->second->status.load() != CacheStatus::kCached) {
      return nullptr;
    }
    entry = it->second;
  }
  persist_promotions_->Add(1);
  if (entry->kind == CacheKind::kScalar) {
    ++stats_.hits_scalar;
  } else {
    ++stats_.hits_host;
  }
  ++entry->hits;
  entry->last_access = *now;
  MEMPHIS_TRACE_INSTANT_REQ("cache", "hit-disk-promote");
  // One kPromote (the tier move) and the probe's single kHit, both against
  // the disk tier that actually answered.
  MEMPHIS_JOURNAL(kPromote, kDisk, kNone, JournalKey(key),
                  entry->compute_cost,
                  static_cast<double>(entry->size_bytes));
  MEMPHIS_JOURNAL(kHit, kDisk, kNone, JournalKey(key), entry->compute_cost,
                  static_cast<double>(entry->size_bytes));
  return entry;
}

int LineageCache::HarvestToDiskNow() {
  if (persist_ == nullptr) return 0;
  MEMPHIS_TRACE_SPAN("persist", "harvest");  // memphis-lint: allow(span-rid) -- background harvest thread, no request in scope
  // Snapshot plain-struct copies under the tier lock (backend pointers and
  // cost/size fields are tier-guarded); serialization and segment IO then
  // run with no cache lock held.
  struct Candidate {
    LineageItemPtr key;
    CacheKind kind = CacheKind::kHostMatrix;
    MatrixPtr value;
    double scalar = 0.0;
    double compute_cost = 0.0;
  };
  std::vector<Candidate> candidates;
  {
    MutexLock tier_lock(tier_mu_);
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      for (const auto& [key, entry] : shard.map) {
        if (entry->status.load() != CacheStatus::kCached) continue;
        if (entry->compute_cost < persist_->config().min_compute_cost) {
          continue;
        }
        Candidate candidate;
        candidate.key = key;
        candidate.kind = entry->kind;
        candidate.compute_cost = entry->compute_cost;
        if (entry->kind == CacheKind::kScalar) {
          candidate.scalar = entry->scalar_value;
        } else if (entry->kind == CacheKind::kHostMatrix &&
                   entry->host_value != nullptr) {
          candidate.value = entry->host_value;
        } else {
          continue;  // RDD/GPU handles die with their backend contexts.
        }
        candidates.push_back(std::move(candidate));
      }
    }
  }
  int stored = 0;
  for (const Candidate& candidate : candidates) {
    if (LineageHasSessionLocalLeaf(candidate.key)) continue;
    const std::string log = SerializeLineage(candidate.key);
    if (persist_->Contains(log)) continue;  // Values are immutable: no
                                            // refresh, no dead record.
    if (persist_->Put(log,
                      EncodePersistPayload(candidate.kind, candidate.value,
                                           candidate.scalar,
                                           candidate.compute_cost))) {
      ++stored;
      MEMPHIS_JOURNAL(kHarvest, kDisk, kNone, JournalKey(candidate.key),
                      candidate.compute_cost,
                      candidate.value != nullptr
                          ? static_cast<double>(candidate.value->SizeInBytes())
                          : static_cast<double>(sizeof(double)));
    }
  }
  persist_harvested_->Add(stored);
  return stored;
}

std::vector<CacheEntryPtr> LineageCache::SnapshotHostEntries() const {
  // Same locking shape as CheckInvariants: tier lock for the whole sweep
  // (backend pointers are tier-guarded), shard locks nested inside.
  MutexLock tier_lock(tier_mu_);
  std::vector<CacheEntryPtr> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, entry] : shard.map) {
      if (entry->status.load() != CacheStatus::kCached) continue;
      if (entry->kind == CacheKind::kScalar ||
          (entry->kind == CacheKind::kHostMatrix &&
           entry->host_value != nullptr)) {
        out.push_back(entry);
      }
    }
  }
  return out;
}

std::string LineageCache::CheckInvariants() const {
  // The sweep reads tier-guarded state (host-tier accounting, backend
  // pointers, size_bytes), so it holds tier_mu_ throughout; shard locks nest
  // inside per the rank order.
  MutexLock tier_lock(tier_mu_);
  std::unordered_map<const CacheEntry*, bool> mapped;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, entry] : shard.map) {
      if (entry == nullptr) return "map slot holds a null entry";
      if (entry->key == nullptr || !LineageEquals(key, entry->key)) {
        return "entry key disagrees with its map key";
      }
      mapped[entry.get()] = true;
      switch (entry->status.load()) {
        case CacheStatus::kToBeCached:
          if (entry->delay_remaining <= 0) {
            return "delayed placeholder with non-positive countdown";
          }
          break;
        case CacheStatus::kSpilled:
          if (entry->kind != CacheKind::kHostMatrix) {
            return "spilled entry is not a host matrix";
          }
          break;
        case CacheStatus::kCached:
          switch (entry->kind) {
            case CacheKind::kHostMatrix:
              if (entry->host_value == nullptr) {
                return "kCached host entry has no value";
              }
              break;
            case CacheKind::kScalar:
              break;
            case CacheKind::kRdd:
              if (entry->rdd == nullptr) return "kCached RDD entry has no RDD";
              break;
            case CacheKind::kGpu:
              // A recycled device pointer is legal (Reuse invalidates it
              // lazily), but the handle itself must exist.
              if (entry->gpu == nullptr) {
                return "kCached GPU entry has no device handle";
              }
              break;
          }
          break;
      }
    }
  }
  // Host-tier accounting, plus: every resident entry is reachable from the
  // map (an unmapped resident would leak budget forever).
  const std::string host = host_cache_.CheckInvariants();
  if (!host.empty()) return "host tier: " + host;
  for (const CacheEntryPtr& entry : host_cache_.resident()) {
    if (mapped.find(entry.get()) == mapped.end()) {
      return "host-resident entry is not reachable from the lineage map";
    }
  }
  return "";
}

size_t LineageCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace memphis
