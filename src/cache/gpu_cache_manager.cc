#include "cache/gpu_cache_manager.h"

#include <algorithm>

#include "common/status.h"
#include "obs/trace.h"

namespace memphis {

void GpuCacheStats::RegisterMetrics(obs::MetricsRegistry* registry,
                                    const std::string& prefix) {
  registry->Register(prefix + "recycled_exact", &recycled_exact);
  registry->Register(prefix + "freed_larger", &freed_larger);
  registry->Register(prefix + "freed_for_space", &freed_for_space);
  registry->Register(prefix + "full_cleanups", &full_cleanups);
  registry->Register(prefix + "d2h_evictions", &d2h_evictions);
  registry->Register(prefix + "defrags", &defrags);
  registry->Register(prefix + "reused_pointers", &reused_pointers);
  registry->Register(prefix + "oom_failures", &oom_failures);
}

GpuCacheManager::GpuCacheManager(gpu::GpuContext* gpu, bool recycling_enabled,
                                 int device)
    : gpu_(gpu), recycling_enabled_(recycling_enabled), device_(device) {}

double GpuCacheManager::Score(const GpuCacheObject& object, double now) const {
  // Eq. (2): T_a(o) + 1/h(o) + c(o), each term normalized to [0, 1]:
  // recent accesses, short lineage (input-pipeline slices), and cheap
  // recomputation all *raise* the score's components selectively so that the
  // minimum identifies stale, deep, cheap objects first.
  const double t_a = now > 0 ? object.last_access / now : 0.0;
  const double inv_height = 1.0 / static_cast<double>(object.height + 1);
  const double cost = object.compute_cost / max_cost_seen_;
  return t_a + inv_height + cost;
}

GpuCacheObjectPtr GpuCacheManager::MinScore(
    const std::vector<GpuCacheObjectPtr>& candidates, double now) const {
  GpuCacheObjectPtr best;
  double best_score = 0.0;
  for (const auto& object : candidates) {
    const double score = Score(*object, now);
    if (best == nullptr || score < best_score) {
      best = object;
      best_score = score;
    }
  }
  return best;
}

GpuCacheObjectPtr GpuCacheManager::GlobalMinScore(double now) const {
  GpuCacheObjectPtr best;
  double best_score = 0.0;
  for (const auto& [size, objects] : free_list_) {
    for (const auto& object : objects) {
      const double score = Score(*object, now);
      if (best == nullptr || score < best_score) {
        best = object;
        best_score = score;
      }
    }
  }
  return best;
}

void GpuCacheManager::RemoveFromFreeList(const GpuCacheObjectPtr& object) {
  auto it = free_list_.find(object->buffer->bytes);
  MEMPHIS_CHECK(it != free_list_.end());
  auto& objects = it->second;
  objects.erase(std::find(objects.begin(), objects.end(), object));
  if (objects.empty()) free_list_.erase(it);
  object->in_free_list = false;
}

GpuCacheObjectPtr GpuCacheManager::Allocate(size_t bytes, double* now) {
  MEMPHIS_TRACE_SPAN2_REQ("gpu", "gpu-alloc", "bytes",
                          static_cast<double>(bytes), "device", device_);
  auto wrap = [this, now](gpu::GpuBufferPtr buffer) {
    auto object = std::make_shared<GpuCacheObject>();
    object->buffer = std::move(buffer);
    object->ref_count = 1;
    object->last_access = *now;
    object->device = device_;
    object->owner = this;
    return object;
  };
  // Pool fast path: an exact-size *uncached* free pointer is recycled even
  // before cudaMalloc -- recycling skips the synchronization barrier and,
  // because the pointer carries no lineage entry, costs no reuse potential
  // (Section 4.2: "prioritize recycling exact-sized memory chunks ...
  // without compromising the reuse potential").
  if (recycling_enabled_) {
    if (auto it = free_list_.find(bytes); it != free_list_.end()) {
      for (const auto& candidate : it->second) {
        if (candidate->lineage != nullptr) continue;
        GpuCacheObjectPtr victim = candidate;
        RemoveFromFreeList(victim);
        victim->buffer->data.reset();
        victim->ref_count = 1;
        victim->last_access = *now;
        ++stats_.recycled_exact;
        return victim;
      }
    }
  }

  // cudaMalloc (synchronizing).
  if (auto buffer = gpu_->Malloc(bytes, now); buffer.has_value()) {
    return wrap(*buffer);
  }

  if (recycling_enabled_) {
    // Step 1 (Algorithm 1): memory is full -- recycle an exact-size free
    // pointer even if it invalidates a cached entry.
    if (auto it = free_list_.find(bytes); it != free_list_.end()) {
      GpuCacheObjectPtr victim = MinScore(it->second, *now);
      RemoveFromFreeList(victim);
      victim->lineage = nullptr;  // Cache entry becomes invalid.
      victim->buffer->data.reset();
      victim->ref_count = 1;
      victim->last_access = *now;
      ++stats_.recycled_exact;
      return victim;
    }
    // Step 2: free the smallest pointer larger than the request.
    if (auto it = free_list_.upper_bound(bytes); it != free_list_.end()) {
      GpuCacheObjectPtr victim = MinScore(it->second, *now);
      RemoveFromFreeList(victim);
      victim->lineage = nullptr;
      gpu_->Free(victim->buffer, now);  // May fragment (Section 4.2).
      ++stats_.freed_larger;
      if (auto buffer = gpu_->Malloc(bytes, now); buffer.has_value()) {
        return wrap(*buffer);
      }
    }
  }

  // Step 3: repeatedly free pointers (min eviction score first) until the
  // allocation succeeds.
  while (!free_list_.empty()) {
    GpuCacheObjectPtr victim = GlobalMinScore(*now);
    RemoveFromFreeList(victim);
    victim->lineage = nullptr;
    gpu_->Free(victim->buffer, now);
    ++stats_.freed_for_space;
    if (auto buffer = gpu_->Malloc(bytes, now); buffer.has_value()) {
      return wrap(*buffer);
    }
  }

  // Step 4: free list exhausted. If a device-to-host sink is registered,
  // this point is only reached when eviction already drained the free list,
  // so move straight to defragmentation; live variables cannot be evicted.
  ++stats_.full_cleanups;
  gpu_->Defragment(now);
  ++stats_.defrags;
  if (auto buffer = gpu_->Malloc(bytes, now); buffer.has_value()) {
    return wrap(*buffer);
  }
  ++stats_.oom_failures;
  throw GpuOutOfMemoryError(
      "GPU allocation of " + std::to_string(bytes) +
      " bytes failed after recycling, eviction, and defragmentation");
}

void GpuCacheManager::AddRef(const GpuCacheObjectPtr& object) {
  MEMPHIS_CHECK(object != nullptr && !object->in_free_list);
  ++object->ref_count;
}

void GpuCacheManager::Release(const GpuCacheObjectPtr& object, double* now) {
  MEMPHIS_CHECK(object != nullptr);
  MEMPHIS_CHECK_MSG(object->ref_count > 0, "GPU pointer over-released");
  if (--object->ref_count > 0) return;
  if (recycling_enabled_ || object->lineage != nullptr) {
    // Move to the Free list: recyclable, and reusable while it survives.
    object->in_free_list = true;
    free_list_[object->buffer->bytes].push_back(object);
  } else {
    // Baseline mode (no recycling, no caching): eager cudaFree.
    gpu_->Free(object->buffer, now);
  }
}

void GpuCacheManager::Reuse(const GpuCacheObjectPtr& object, double now) {
  MEMPHIS_CHECK(object != nullptr);
  if (object->in_free_list) {
    RemoveFromFreeList(object);
    object->ref_count = 1;
  } else {
    ++object->ref_count;
  }
  object->last_access = now;
  ++stats_.reused_pointers;
}

void GpuCacheManager::Annotate(const GpuCacheObjectPtr& object,
                               LineageItemPtr lineage, double compute_cost,
                               double now) {
  object->lineage = std::move(lineage);
  object->compute_cost = compute_cost;
  object->height = object->lineage != nullptr ? object->lineage->height() : 0;
  object->last_access = now;
  max_cost_seen_ = std::max(max_cost_seen_, compute_cost);
}

void GpuCacheManager::EvictPercent(double percent, double* now,
                                   bool preserve_to_host) {
  MEMPHIS_TRACE_SPAN2_REQ("gpu", "evict-percent", "pct", percent, "device",
                          device_);
  const double target =
      static_cast<double>(FreeListBytes()) * std::clamp(percent, 0.0, 100.0) /
      100.0;
  double freed = 0.0;
  while (freed < target && !free_list_.empty()) {
    GpuCacheObjectPtr victim = GlobalMinScore(*now);
    RemoveFromFreeList(victim);
    // Preserve the value in the host tier before dropping the pointer.
    if (preserve_to_host && d2h_sink_ && victim->lineage != nullptr &&
        victim->buffer->data != nullptr) {
      MatrixPtr value = gpu_->CopyD2H(victim->buffer, now);
      d2h_sink_(victim->lineage, value, now);
      ++stats_.d2h_evictions;
    }
    victim->lineage = nullptr;
    freed += static_cast<double>(victim->buffer->bytes);
    MEMPHIS_TRACE_INSTANT1_REQ("gpu", "evict", "bytes",
                               static_cast<double>(victim->buffer->bytes));
    gpu_->Free(victim->buffer, now);
  }
}

size_t GpuCacheManager::FreeListBytes() const {
  size_t bytes = 0;
  for (const auto& [size, objects] : free_list_) {
    bytes += size * objects.size();
  }
  return bytes;
}

size_t GpuCacheManager::free_list_size() const {
  size_t count = 0;
  for (const auto& [size, objects] : free_list_) count += objects.size();
  return count;
}

}  // namespace memphis
