#ifndef MEMPHIS_CACHE_HOST_CACHE_H_
#define MEMPHIS_CACHE_HOST_CACHE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cache/cache_entry.h"
#include "sim/cost_model.h"
#include "sim/timeline.h"

namespace memphis {

/// Budget/eviction policy for driver-resident entries (host matrices,
/// scalars, collected Spark action results). Applies the Cost&Size policy
/// [39, 101] extended with reference counts: evict
///   argmin (r_h + r_m + 1) * c(o) / s(o),
/// spilling evicted matrices to local disk (status kSpilled) so a later hit
/// pays only the re-read.
class HostCache {
 public:
  HostCache(size_t capacity_bytes, const sim::CostModel* cost_model);

  /// Admits an entry, evicting lower-scored residents to make space.
  /// Entries larger than the whole cache, or scoring below every resident
  /// when the cache is full (admission control), are not admitted.
  bool Admit(const CacheEntryPtr& entry, double* now);

  /// Restores a spilled entry on reuse (charges the disk read).
  void RestoreIfSpilled(const CacheEntryPtr& entry, double* now);

  /// Drops an entry's accounting (entry removed from the lineage cache).
  void Forget(const CacheEntryPtr& entry);

  size_t used_bytes() const { return used_; }
  size_t capacity() const { return capacity_; }
  int64_t num_spills() const { return num_spills_; }
  int64_t num_restores() const { return num_restores_; }
  const std::vector<CacheEntryPtr>& resident() const { return resident_; }

  /// Accounting self-check (used by the fuzz mode-lattice runner after every
  /// execution): returns an empty string when every invariant holds, else a
  /// description of the first violation. Call single-threaded.
  std::string CheckInvariants() const;

 private:
  /// Spills minimum-score resident entries until `needed` bytes are freed,
  /// never touching entries scoring >= `max_victim_score`. Returns bytes
  /// actually freed.
  size_t MakeSpace(size_t needed, double max_victim_score, double* now);

  double Score(const CacheEntry& entry) const;

  size_t capacity_;
  const sim::CostModel* cost_model_;
  /// Background writer thread of the buffer pool: spill writes are charged
  /// here, off the driver's critical path (SystemDS evicts asynchronously).
  sim::Timeline spill_writer_{"bufferpool-writer"};
  size_t used_ = 0;
  int64_t num_spills_ = 0;
  int64_t num_restores_ = 0;
  std::vector<CacheEntryPtr> resident_;
};

}  // namespace memphis

#endif  // MEMPHIS_CACHE_HOST_CACHE_H_
