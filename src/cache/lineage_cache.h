#ifndef MEMPHIS_CACHE_LINEAGE_CACHE_H_
#define MEMPHIS_CACHE_LINEAGE_CACHE_H_

#include <memory>
#include <unordered_map>

#include "cache/cache_entry.h"
#include "cache/host_cache.h"
#include "cache/spark_cache_manager.h"
#include "common/config.h"
#include "sim/cost_model.h"

namespace memphis {

struct LineageCacheStats {
  int64_t probes = 0;
  int64_t hits_host = 0;
  int64_t hits_scalar = 0;
  int64_t hits_rdd = 0;
  int64_t hits_gpu = 0;
  int64_t hits_function = 0;
  int64_t misses = 0;
  int64_t puts = 0;
  int64_t delayed_placeholders = 0;
  int64_t invalidated_gpu = 0;

  int64_t TotalHits() const {
    return hits_host + hits_scalar + hits_rdd + hits_gpu + hits_function;
  }
};

/// The hierarchical lineage cache (Section 3.3): one hash map from lineage
/// items to cached data objects, whose values live in backend-local tiers
/// (driver matrices/scalars, Spark RDDs, GPU pointers). Tier policies are
/// delegated to HostCache, SparkCacheManager, and GpuCacheManager;
/// this class implements the unified REUSE/PUT API of Figure 4 plus the
/// delayed-caching state machine (TO-BE-CACHED -> CACHED).
class LineageCache {
 public:
  /// `gpu_cache` may be null when no device is attached; with multiple
  /// GPUs, each device's manager registers itself via AttachGpuCache and
  /// entries dispatch through their object's owning manager.
  LineageCache(const SystemConfig& config, const sim::CostModel* cost_model,
               spark::SparkContext* spark, GpuCacheManager* gpu_cache);

  /// Registers an additional per-device cache manager (multi-GPU).
  void AttachGpuCache(GpuCacheManager* gpu_cache);

  /// REUSE(trace): probes the cache. On a valid hit, refreshes metadata,
  /// restores spilled host entries (charging the disk read to *now), and
  /// returns the entry; otherwise returns nullptr (and advances the delayed
  /// caching countdown for placeholders).
  CacheEntryPtr Reuse(const LineageItemPtr& key, double* now);

  // --- PUT(trace, object) per backend ------------------------------------
  /// `delay`: the enclosing block's delay factor n (1 = cache immediately).
  /// Returns the entry iff the object was actually stored this time.
  CacheEntryPtr PutHost(const LineageItemPtr& key, MatrixPtr value,
                        double compute_cost, int delay, double* now);
  CacheEntryPtr PutScalar(const LineageItemPtr& key, double value,
                          double compute_cost, int delay, double* now);
  CacheEntryPtr PutRdd(const LineageItemPtr& key, spark::RddPtr rdd,
                       double compute_cost, int delay, StorageLevel level,
                       double now);
  CacheEntryPtr PutGpu(const LineageItemPtr& key, GpuCacheObjectPtr object,
                       double compute_cost, int delay, double now);

  /// Sink for GPU device-to-host evictions: preserves the evicted value as
  /// a host entry so reuse survives the device-side recycling.
  void PutHostFromGpuEviction(const LineageItemPtr& key, MatrixPtr value,
                              double* now);

  /// Drops an entry (used by tier evictions and tests).
  void Remove(const LineageItemPtr& key);

  size_t size() const { return map_.size(); }
  const LineageCacheStats& stats() const { return stats_; }
  LineageCacheStats& mutable_stats() { return stats_; }
  HostCache& host_cache() { return host_cache_; }
  SparkCacheManager& spark_manager() { return spark_manager_; }

 private:
  /// Handles the shared placeholder logic of all PUT variants: returns the
  /// entry to fill if the object should be stored now, nullptr otherwise.
  CacheEntryPtr PreparePut(const LineageItemPtr& key, int delay);

  using Map = std::unordered_map<LineageItemPtr, CacheEntryPtr,
                                 LineageItemPtrHash, LineageItemPtrEq>;
  Map map_;
  HostCache host_cache_;
  SparkCacheManager spark_manager_;
  GpuCacheManager* gpu_cache_;
  LineageCacheStats stats_;
};

}  // namespace memphis

#endif  // MEMPHIS_CACHE_LINEAGE_CACHE_H_
