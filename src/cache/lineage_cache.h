#ifndef MEMPHIS_CACHE_LINEAGE_CACHE_H_
#define MEMPHIS_CACHE_LINEAGE_CACHE_H_

#include <array>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/cache_entry.h"
#include "common/sync.h"
#include "cache/host_cache.h"
#include "cache/persist.h"
#include "cache/spark_cache_manager.h"
#include "common/config.h"
#include "obs/metrics.h"
#include "sim/cost_model.h"

namespace memphis {

/// Counters of the unified cache. obs::Counter (atomic) so concurrent tasks
/// can probe and put without tearing; read them single-threaded (or after
/// joining the workers) for consistent totals.
struct LineageCacheStats {
  obs::Counter probes;
  obs::Counter hits_host;
  obs::Counter hits_scalar;
  obs::Counter hits_rdd;
  obs::Counter hits_gpu;
  obs::Counter hits_function;
  obs::Counter misses;
  obs::Counter puts;
  obs::Counter delayed_placeholders;
  obs::Counter invalidated_gpu;

  int64_t TotalHits() const {
    return hits_host + hits_scalar + hits_rdd + hits_gpu + hits_function;
  }

  /// Registers every field under "cache.<field>" plus a "cache.hit_ratio"
  /// callback gauge (TotalHits / probes).
  void RegisterMetrics(obs::MetricsRegistry* registry);
};

/// The hierarchical lineage cache (Section 3.3): one hash map from lineage
/// items to cached data objects, whose values live in backend-local tiers
/// (driver matrices/scalars, Spark RDDs, GPU pointers). Tier policies are
/// delegated to HostCache, SparkCacheManager, and GpuCacheManager;
/// this class implements the unified REUSE/PUT API of Figure 4 plus the
/// delayed-caching state machine (TO-BE-CACHED -> CACHED).
///
/// Thread safety: Reuse/Put*/Remove may be called from concurrent tasks.
/// The lineage->entry map is sharded by key hash -- each shard owns its own
/// mutex and map, so probes of distinct keys proceed in parallel and a miss
/// (the common case while tracing a new pipeline) touches exactly one shard
/// lock. The backend tier managers keep global state (budgets, eviction
/// queues), so all tier mutation serializes on one tier mutex. Lock order
/// (ranks kCacheTier < kCacheShard, see the table in common/sync.h):
/// `tier_mu_` may be held while taking a shard lock (evictions erase victim
/// keys), but a shard lock is never held while waiting on `tier_mu_` -- the
/// rank validator aborts debug builds that try.
class LineageCache {
 public:
  /// `gpu_cache` may be null when no device is attached; with multiple
  /// GPUs, each device's manager registers itself via AttachGpuCache and
  /// entries dispatch through their object's owning manager.
  /// When config.persist_dir/persist_budget_bytes enable it, a durable tier
  /// opens below the host tier: Reuse misses probe it (promoting hits back
  /// into the host tier) and HarvestToDiskNow spills cost-worthy entries.
  LineageCache(const SystemConfig& config, const sim::CostModel* cost_model,
               spark::SparkContext* spark, GpuCacheManager* gpu_cache);
  ~LineageCache();

  /// Registers an additional per-device cache manager (multi-GPU).
  void AttachGpuCache(GpuCacheManager* gpu_cache);

  /// REUSE(trace): probes the cache. On a valid hit, refreshes metadata,
  /// restores spilled host entries (charging the disk read to *now), and
  /// returns the entry; otherwise returns nullptr (and advances the delayed
  /// caching countdown for placeholders).
  CacheEntryPtr Reuse(const LineageItemPtr& key, double* now)
      MEMPHIS_EXCLUDES(tier_mu_);

  // --- PUT(trace, object) per backend ------------------------------------
  /// `delay`: the enclosing block's delay factor n (1 = cache immediately).
  /// Returns the entry iff the object was actually stored this time.
  CacheEntryPtr PutHost(const LineageItemPtr& key, MatrixPtr value,
                        double compute_cost, int delay, double* now)
      MEMPHIS_EXCLUDES(tier_mu_);
  CacheEntryPtr PutScalar(const LineageItemPtr& key, double value,
                          double compute_cost, int delay, double* now)
      MEMPHIS_EXCLUDES(tier_mu_);
  CacheEntryPtr PutRdd(const LineageItemPtr& key, spark::RddPtr rdd,
                       double compute_cost, int delay, StorageLevel level,
                       double now) MEMPHIS_EXCLUDES(tier_mu_);
  CacheEntryPtr PutGpu(const LineageItemPtr& key, GpuCacheObjectPtr object,
                       double compute_cost, int delay, double now)
      MEMPHIS_EXCLUDES(tier_mu_);

  /// Sink for GPU device-to-host evictions: preserves the evicted value as
  /// a host entry so reuse survives the device-side recycling.
  void PutHostFromGpuEviction(const LineageItemPtr& key, MatrixPtr value,
                              double* now) MEMPHIS_EXCLUDES(tier_mu_);

  /// Drops an entry (used by tier evictions and tests).
  void Remove(const LineageItemPtr& key) MEMPHIS_EXCLUDES(tier_mu_);

  size_t size() const;

  /// Whole-cache structural self-check: map keys match their entry's key,
  /// every kCached entry holds exactly its backend's pointer, delayed
  /// placeholders have a positive countdown, and the host tier's byte
  /// accounting is consistent with the entries reachable from the map.
  /// Returns an empty string when every invariant holds, else a description
  /// of the first violation. Takes the tier lock for the whole sweep (the
  /// host tier's accounting and non-atomic entry fields are tier-guarded),
  /// so it is safe to call concurrently with Reuse/Put*/Remove.
  std::string CheckInvariants() const MEMPHIS_EXCLUDES(tier_mu_);

  /// Snapshot of every kCached host-tier entry (host matrices and scalars)
  /// for cross-session harvesting (serve/shared_store). Spilled entries,
  /// delayed placeholders, RDDs, and GPU handles are skipped: the shared
  /// store only keeps driver-resident values. The returned shared_ptrs keep
  /// the values alive after the owning session is reset or destroyed.
  std::vector<CacheEntryPtr> SnapshotHostEntries() const
      MEMPHIS_EXCLUDES(tier_mu_);

  /// Spills every cost-worthy deterministic host-tier entry (kCached host
  /// matrices and scalars whose compute_cost clears persist_min_compute_cost
  /// and whose lineage has no session-local leaf) to the durable tier.
  /// Returns how many entries were newly written. No-op (0) when the tier
  /// is disabled. The background harvest thread calls this on its interval;
  /// tests call it directly for determinism.
  int HarvestToDiskNow() MEMPHIS_EXCLUDES(tier_mu_);

  const LineageCacheStats& stats() const { return stats_; }
  LineageCacheStats& mutable_stats() { return stats_; }
  HostCache& host_cache() { return host_cache_; }
  SparkCacheManager& spark_manager() { return spark_manager_; }
  /// The durable tier, or nullptr when persistence is disabled.
  PersistentTier* persist_tier() { return persist_.get(); }

 private:
  using Map = std::unordered_map<LineageItemPtr, CacheEntryPtr,
                                 LineageItemPtrHash, LineageItemPtrEq>;
  /// One lock-plus-map shard; keys are routed by their structural hash.
  struct Shard {
    mutable Mutex mu{LockRank::kCacheShard, "cache-shard"};
    Map map MEMPHIS_GUARDED_BY(mu);
  };
  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(const LineageItemPtr& key);
  const Shard& ShardFor(const LineageItemPtr& key) const;

  /// Handles the shared placeholder logic of all PUT variants: returns the
  /// entry to fill if the object should be stored now, nullptr otherwise.
  /// Takes the key's shard lock internally.
  CacheEntryPtr PreparePut(const LineageItemPtr& key, int delay)
      MEMPHIS_REQUIRES(tier_mu_);

  /// Erases `key` from its shard (callers must not hold the key's shard
  /// lock; tier -> shard is the sanctioned nesting).
  void EraseKey(const LineageItemPtr& key) MEMPHIS_REQUIRES(tier_mu_);

  /// Reuse's disk probe: on a shard-map miss, looks the serialized key up
  /// in the durable tier and, on a verified hit, promotes the value back
  /// into the host tier (delay 1: immediately reusable). Returns the
  /// promoted entry or nullptr. Takes tier_mu_ via Put internally.
  CacheEntryPtr PromoteFromDisk(const LineageItemPtr& key, double* now)
      MEMPHIS_EXCLUDES(tier_mu_);

  void HarvestLoop();

  std::array<Shard, kNumShards> shards_;
  /// Serializes tier-manager state (host_cache_, spark_manager_, the GPU
  /// managers) and non-atomic entry fields (backend pointers, size/cost)
  /// across Put, hit-path Reuse, and evictions. Mutable so the const
  /// CheckInvariants sweep can lock it.
  mutable Mutex tier_mu_{LockRank::kCacheTier, "cache-tier"};
  HostCache host_cache_;
  SparkCacheManager spark_manager_;
  GpuCacheManager* gpu_cache_;
  LineageCacheStats stats_;

  /// Durable tier (nullptr when disabled). Its internal mutex ranks below
  /// tier_mu_ (kCacheTier < kPersist), so holders of the tier lock may probe
  /// or append; the cache's own probe/harvest paths take it with no other
  /// lock held.
  std::unique_ptr<PersistentTier> persist_;
  obs::Counter* persist_promotions_;
  obs::Counter* persist_harvested_;

  /// Background harvest thread (only started when persist_harvest_interval_ms
  /// is positive). The mutex only guards the stop flag around the timed
  /// wait; it is never held while harvesting.
  Mutex harvest_mu_{LockRank::kPersist, "persist-harvest"};
  CondVar harvest_cv_;
  bool harvest_stop_ MEMPHIS_GUARDED_BY(harvest_mu_) = false;
  std::thread harvest_thread_;
};

/// True when `key`'s DAG reaches a session-unique leaf ("extern" data
/// containing '@': the BindMatrix fresh-identity convention). Such keys can
/// never match across sessions, so the durable tier and the serve store both
/// skip them. Exposed for tests.
bool LineageHasSessionLocalLeaf(const LineageItemPtr& key);

}  // namespace memphis

#endif  // MEMPHIS_CACHE_LINEAGE_CACHE_H_
