#include "cache/persist.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string_view>
#include <utility>

#include "common/hash.h"
#include "obs/trace.h"

namespace memphis {
namespace {

namespace fs = std::filesystem;

// Segment header: 8-byte magic + u32 version. A segment that cannot produce
// this header is dropped whole -- there is no way to find record boundaries
// without it.
constexpr char kMagic[8] = {'M', 'E', 'M', 'P', 'H', 'S', 'E', 'G'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kSegHeaderBytes = kPersistSegmentHeaderBytes;

// Record header: u32 key_len | u32 payload_len | u8 type | u64 checksum.
constexpr size_t kRecHeaderBytes = kPersistRecordHeaderBytes;
constexpr uint8_t kTypePut = 1;
constexpr uint8_t kTypeTombstone = 2;
// Length sanity bound: a parsed length past this is treated as corruption
// (it would otherwise turn one flipped bit into a gigabyte allocation).
constexpr uint32_t kMaxLen = 1u << 30;

// Fields are memcpy'd in native byte order: segments are a local cache, not
// an interchange format, and the hosts we run on are little-endian.
template <typename T>
void AppendRaw(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

template <typename T>
T ReadRaw(const char* bytes) {
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

/// FNV-1a over the record body mixed with both lengths and the type: the
/// per-byte FNV step is a bijection on the running hash, so any single-byte
/// change in key or payload changes the final value, and covering the
/// lengths means a flipped length bit cannot re-frame the record unnoticed.
uint64_t RecordChecksum(uint8_t type, std::string_view key,
                        std::string_view payload) {
  uint64_t h = Fnv1a(key);
  h = HashCombine(h, Fnv1a(payload));
  h = HashCombine(h, key.size());
  h = HashCombine(h, payload.size());
  h = HashCombine(h, type);
  return h;
}

uint64_t RecordSpanBytes(size_t key_len, size_t payload_len) {
  return kRecHeaderBytes + key_len + payload_len;
}

std::string SegmentFileName(uint64_t id) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.mseg",
                static_cast<unsigned long long>(id));
  return name;
}

/// Parses "seg-<digits>.mseg"; returns false for anything else in the dir.
bool ParseSegmentFileName(const std::string& name, uint64_t* id) {
  constexpr std::string_view kPrefix = "seg-";
  constexpr std::string_view kSuffix = ".mseg";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *id = value;
  return true;
}

}  // namespace

PersistentTier::PersistentTier(const PersistConfig& config) : config_(config) {
  auto& registry = obs::MetricsRegistry::Global();
  puts_ = registry.GetCounter("persist.puts");
  hits_ = registry.GetCounter("persist.hits");
  misses_ = registry.GetCounter("persist.misses");
  removes_ = registry.GetCounter("persist.removes");
  evictions_ = registry.GetCounter("persist.evictions");
  compactions_ = registry.GetCounter("persist.compactions");
  corrupt_records_ = registry.GetCounter("persist.corrupt_records");
  segments_dropped_ = registry.GetCounter("persist.segments_dropped");
  bytes_written_ = registry.GetCounter("persist.bytes_written");
  bytes_read_ = registry.GetCounter("persist.bytes_read");

  MEMPHIS_TRACE_SPAN("persist", "open");  // memphis-lint: allow(span-rid) -- tier construction, no request in scope
  MutexLock lock(mu_);
  OpenDirLocked();
}

PersistentTier::~PersistentTier() {
  MutexLock lock(mu_);
  if (active_ != nullptr) {
    std::fclose(active_);
    active_ = nullptr;
  }
}

void PersistentTier::OpenDirLocked() {
  std::error_code ec;
  fs::create_directories(config_.dir, ec);  // Best effort; scan finds nothing.

  // Collect segment ids first (std::map orders them), then scan in id order
  // so sequences reproduce the original append order.
  std::map<uint64_t, std::string> found;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    uint64_t id = 0;
    if (entry.is_regular_file(ec) &&
        ParseSegmentFileName(entry.path().filename().string(), &id)) {
      found[id] = entry.path().string();
    }
  }
  for (const auto& [id, path] : found) {
    ScanSegmentLocked(id, path);
    next_segment_id_ = std::max(next_segment_id_, id + 1);
  }
  if (config_.budget_bytes > 0 && live_bytes_ > config_.budget_bytes) {
    const uint64_t before = index_.size();
    EnforceBudgetLocked(0);
    open_report_.evicted_on_open =
        static_cast<int64_t>(before - index_.size());
  }
  open_report_.live_records = static_cast<int64_t>(index_.size());
}

void PersistentTier::ScanSegmentLocked(uint64_t id, const std::string& path) {
  MEMPHIS_TRACE_SPAN("persist", "segment-scan");  // memphis-lint: allow(span-rid) -- startup crash-recovery scan, no request in scope
  ++open_report_.segments_scanned;
  std::error_code ec;
  const uint64_t file_size = fs::file_size(path, ec);
  std::FILE* file = ec ? nullptr : std::fopen(path.c_str(), "rb");

  char header[kSegHeaderBytes];
  const bool header_ok =
      file != nullptr && file_size >= kSegHeaderBytes &&
      std::fread(header, 1, kSegHeaderBytes, file) == kSegHeaderBytes &&
      std::memcmp(header, kMagic, sizeof(kMagic)) == 0 &&
      ReadRaw<uint32_t>(header + sizeof(kMagic)) == kFormatVersion;
  if (!header_ok) {
    // Without a valid header there are no trustworthy record boundaries:
    // drop the whole segment, renamed aside so the damage stays inspectable
    // but never rejoins the tier.
    if (file != nullptr) std::fclose(file);
    fs::rename(path, path + ".corrupt", ec);
    ++open_report_.segments_dropped;
    segments_dropped_->Add(1);
    return;
  }

  // Register the segment before replaying its records: an overwrite or
  // tombstone of a key put earlier *in this same segment* reaches
  // KillLiveLocked, which must find the segment to keep its live-byte
  // accounting straight.
  SegmentMeta& meta = segments_[id];
  meta.path = path;
  meta.bytes = kSegHeaderBytes;
  uint64_t pos = kSegHeaderBytes;
  std::string record;
  while (pos + kRecHeaderBytes <= file_size) {
    char rec_header[kRecHeaderBytes];
    if (std::fread(rec_header, 1, kRecHeaderBytes, file) != kRecHeaderBytes) {
      break;
    }
    const uint32_t key_len = ReadRaw<uint32_t>(rec_header);
    const uint32_t payload_len = ReadRaw<uint32_t>(rec_header + 4);
    const uint8_t type = static_cast<uint8_t>(rec_header[8]);
    const uint64_t stored_sum = ReadRaw<uint64_t>(rec_header + 9);
    const uint64_t span = RecordSpanBytes(key_len, payload_len);
    if (key_len > kMaxLen || payload_len > kMaxLen || pos + span > file_size ||
        (type != kTypePut && type != kTypeTombstone)) {
      break;  // Insane frame: everything from here on is a torn tail.
    }
    record.resize(key_len + static_cast<size_t>(payload_len));
    if (!record.empty() &&
        std::fread(record.data(), 1, record.size(), file) != record.size()) {
      break;
    }
    const std::string_view key(record.data(), key_len);
    const std::string_view payload(record.data() + key_len, payload_len);
    if (RecordChecksum(type, key, payload) != stored_sum) {
      ++open_report_.corrupt_records;
      corrupt_records_->Add(1);
      break;  // Truncate the scan at the first invalid checksum.
    }

    // Valid record: replay it against the index.
    const uint64_t sequence = next_sequence_++;
    total_record_bytes_ += span;
    KillLiveLocked(std::string(key));
    if (type == kTypePut) {
      IndexEntry entry;
      entry.segment_id = id;
      entry.offset = pos;
      entry.key_len = key_len;
      entry.payload_len = payload_len;
      entry.sequence = sequence;
      index_[std::string(key)] = entry;
      live_bytes_ += span;
      meta.live_bytes += span;
    } else {
      dead_bytes_ += span;  // A tombstone is dead weight the moment it lands.
      ++open_report_.dead_records;
    }
    pos += span;
  }
  std::fclose(file);
  open_report_.torn_tail_bytes += static_cast<int64_t>(file_size - pos);
  meta.bytes = pos;  // Only the valid prefix counts as the segment.
}

bool PersistentTier::Put(const std::string& key, const std::string& payload,
                         PersistRecordSpan* span) {
  MutexLock lock(mu_);
  if (!AppendLocked(key, payload, kTypePut, span)) return false;
  puts_->Add(1);
  // Self-cleaning: overwrites and tombstones accumulate dead bytes; once
  // they dominate, fold the log down to its live records.
  if (dead_bytes_ > 0 && total_record_bytes_ > 0 &&
      static_cast<double>(dead_bytes_) /
              static_cast<double>(total_record_bytes_) >
          config_.compact_dead_ratio) {
    CompactLocked();
  }
  return true;
}

bool PersistentTier::AppendLocked(const std::string& key,
                                  const std::string& payload, uint8_t type,
                                  PersistRecordSpan* span) {
  MEMPHIS_TRACE_SPAN_REQ("persist", "segment-append");
  const uint64_t record_span = RecordSpanBytes(key.size(), payload.size());
  if (config_.budget_bytes > 0 && type == kTypePut &&
      record_span > config_.budget_bytes) {
    return false;  // Larger than the whole tier: unconditionally rejected.
  }
  if (config_.budget_bytes > 0 && type == kTypePut) {
    // Overwrites release their old record first so a same-key refresh never
    // evicts an innocent neighbor.
    KillLiveLocked(key);
    EnforceBudgetLocked(record_span);
  } else {
    KillLiveLocked(key);
  }

  if (active_ == nullptr ||
      segments_[active_id_].bytes + record_span > config_.segment_bytes) {
    RotateLocked();
    if (active_ == nullptr) return false;  // Directory vanished / IO error.
  }

  std::string record;
  record.reserve(record_span);
  AppendRaw<uint32_t>(&record, static_cast<uint32_t>(key.size()));
  AppendRaw<uint32_t>(&record, static_cast<uint32_t>(payload.size()));
  record.push_back(static_cast<char>(type));
  AppendRaw<uint64_t>(&record, RecordChecksum(type, key, payload));
  record += key;
  record += payload;

  SegmentMeta& meta = segments_[active_id_];
  const uint64_t offset = meta.bytes;
  if (std::fwrite(record.data(), 1, record.size(), active_) !=
      record.size()) {
    // Partial append: the tail of this segment is now garbage, which is
    // exactly the torn-tail shape recovery tolerates. Retire the segment so
    // the next append starts a clean one; the record is not indexed.
    std::fclose(active_);
    active_ = nullptr;
    return false;
  }
  std::fflush(active_);  // Readers open their own handle; publish the bytes.

  meta.bytes += record_span;
  total_record_bytes_ += record_span;
  bytes_written_->Add(static_cast<int64_t>(record_span));
  const uint64_t sequence = next_sequence_++;
  if (type == kTypePut) {
    IndexEntry entry;
    entry.segment_id = active_id_;
    entry.offset = offset;
    entry.key_len = static_cast<uint32_t>(key.size());
    entry.payload_len = static_cast<uint32_t>(payload.size());
    entry.sequence = sequence;
    index_[key] = entry;
    live_bytes_ += record_span;
    meta.live_bytes += record_span;
  } else {
    dead_bytes_ += record_span;
  }
  if (span != nullptr) {
    span->segment_id = active_id_;
    span->offset = offset;
    span->length = record_span;
  }
  return true;
}

void PersistentTier::RotateLocked() {
  if (active_ != nullptr) {
    std::fclose(active_);
    active_ = nullptr;
  }
  const uint64_t id = next_segment_id_++;
  std::string path = SegmentPathLocked(id);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return;
  std::string header(kMagic, sizeof(kMagic));
  AppendRaw<uint32_t>(&header, kFormatVersion);
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
    std::fclose(file);
    return;
  }
  std::fflush(file);
  SegmentMeta meta;
  meta.path = std::move(path);
  meta.bytes = kSegHeaderBytes;
  segments_[id] = std::move(meta);
  active_ = file;
  active_id_ = id;
}

void PersistentTier::KillLiveLocked(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  const uint64_t span =
      RecordSpanBytes(it->second.key_len, it->second.payload_len);
  live_bytes_ -= span;
  dead_bytes_ += span;
  auto seg = segments_.find(it->second.segment_id);
  if (seg != segments_.end()) seg->second.live_bytes -= span;
  index_.erase(it);
}

void PersistentTier::EnforceBudgetLocked(size_t incoming_bytes) {
  // Oldest-live-first (FIFO by sequence): deterministic, and reopening a log
  // that outgrew its budget re-evicts the same victims in the same order.
  while (!index_.empty() &&
         live_bytes_ + incoming_bytes > config_.budget_bytes) {
    auto victim = index_.end();
    for (auto it = index_.begin(); it != index_.end(); ++it) {
      if (victim == index_.end() ||
          it->second.sequence < victim->second.sequence) {
        victim = it;
      }
    }
    KillLiveLocked(victim->first);
    evictions_->Add(1);
  }
}

bool PersistentTier::Get(const std::string& key, std::string* payload) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_->Add(1);
    return false;
  }
  if (!ReadRecordLocked(it->second, key, payload)) {
    // The bytes under this index entry no longer verify: drop it so the
    // corrupt record is never served, now or later.
    KillLiveLocked(key);
    corrupt_records_->Add(1);
    misses_->Add(1);
    return false;
  }
  hits_->Add(1);
  bytes_read_->Add(static_cast<int64_t>(payload->size()));
  return true;
}

bool PersistentTier::ReadRecordLocked(const IndexEntry& entry,
                                      const std::string& key,
                                      std::string* payload) {
  MEMPHIS_TRACE_SPAN_REQ("persist", "segment-read");
  auto seg = segments_.find(entry.segment_id);
  if (seg == segments_.end()) return false;
  std::FILE* file = std::fopen(seg->second.path.c_str(), "rb");
  if (file == nullptr) return false;
  const uint64_t span = RecordSpanBytes(entry.key_len, entry.payload_len);
  std::string record(span, '\0');
  const bool read_ok =
      std::fseek(file, static_cast<long>(entry.offset), SEEK_SET) == 0 &&
      std::fread(record.data(), 1, record.size(), file) == record.size();
  std::fclose(file);
  if (!read_ok) return false;
  const uint32_t key_len = ReadRaw<uint32_t>(record.data());
  const uint32_t payload_len = ReadRaw<uint32_t>(record.data() + 4);
  const uint8_t type = static_cast<uint8_t>(record[8]);
  const uint64_t stored_sum = ReadRaw<uint64_t>(record.data() + 9);
  if (key_len != entry.key_len || payload_len != entry.payload_len ||
      type != kTypePut) {
    return false;
  }
  const std::string_view stored_key(record.data() + kRecHeaderBytes, key_len);
  const std::string_view stored_payload(
      record.data() + kRecHeaderBytes + key_len, payload_len);
  if (stored_key != key ||
      RecordChecksum(type, stored_key, stored_payload) != stored_sum) {
    return false;
  }
  payload->assign(stored_payload.data(), stored_payload.size());
  return true;
}

bool PersistentTier::Contains(const std::string& key) const {
  MutexLock lock(mu_);
  return index_.count(key) != 0;
}

bool PersistentTier::Remove(const std::string& key, PersistRecordSpan* span) {
  MutexLock lock(mu_);
  if (index_.count(key) == 0) return false;
  if (!AppendLocked(key, "", kTypeTombstone, span)) return false;
  removes_->Add(1);
  return true;
}

std::vector<std::string> PersistentTier::Keys() const {
  MutexLock lock(mu_);
  std::vector<std::pair<uint64_t, std::string>> ordered;
  ordered.reserve(index_.size());
  for (const auto& [key, entry] : index_) {
    ordered.emplace_back(entry.sequence, key);
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<std::string> keys;
  keys.reserve(ordered.size());
  for (auto& [sequence, key] : ordered) {
    keys.push_back(std::move(key));
  }
  return keys;
}

void PersistentTier::Flush() {
  MutexLock lock(mu_);
  if (active_ != nullptr) {
    std::fflush(active_);
    fsync(fileno(active_));
  }
}

void PersistentTier::Compact() {
  MutexLock lock(mu_);
  CompactLocked();
}

bool PersistentTier::CompactIfNeeded() {
  MutexLock lock(mu_);
  if (dead_bytes_ == 0 || total_record_bytes_ == 0 ||
      static_cast<double>(dead_bytes_) /
              static_cast<double>(total_record_bytes_) <=
          config_.compact_dead_ratio) {
    return false;
  }
  CompactLocked();
  return true;
}

void PersistentTier::CompactLocked() {
  MEMPHIS_TRACE_SPAN_REQ("persist", "compact");
  // Read every live record up front (a record that no longer verifies is
  // silently dropped -- compaction must never copy corruption forward),
  // then rewrite them in sequence order into fresh segments and delete the
  // old files.
  std::vector<std::pair<uint64_t, std::string>> ordered;
  ordered.reserve(index_.size());
  for (const auto& [key, entry] : index_) {
    ordered.emplace_back(entry.sequence, key);
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<std::pair<std::string, std::string>> live;
  live.reserve(ordered.size());
  for (const auto& [sequence, key] : ordered) {
    std::string payload;
    if (ReadRecordLocked(index_[key], key, &payload)) {
      live.emplace_back(key, std::move(payload));
    } else {
      corrupt_records_->Add(1);
    }
  }

  if (active_ != nullptr) {
    std::fclose(active_);
    active_ = nullptr;
  }
  std::vector<std::string> old_paths;
  old_paths.reserve(segments_.size());
  for (const auto& [id, meta] : segments_) {
    old_paths.push_back(meta.path);
  }
  segments_.clear();
  index_.clear();
  total_record_bytes_ = 0;
  live_bytes_ = 0;
  dead_bytes_ = 0;

  for (const auto& [key, payload] : live) {
    AppendLocked(key, payload, kTypePut, nullptr);
  }
  std::error_code ec;
  for (const std::string& path : old_paths) {
    fs::remove(path, ec);
  }
  compactions_->Add(1);
}

size_t PersistentTier::LiveRecords() const {
  MutexLock lock(mu_);
  return index_.size();
}

size_t PersistentTier::LiveBytes() const {
  MutexLock lock(mu_);
  return live_bytes_;
}

size_t PersistentTier::DeadBytes() const {
  MutexLock lock(mu_);
  return dead_bytes_;
}

std::vector<PersistSegmentInfo> PersistentTier::Segments() const {
  MutexLock lock(mu_);
  std::vector<PersistSegmentInfo> out;
  out.reserve(segments_.size());
  for (const auto& [id, meta] : segments_) {
    PersistSegmentInfo info;
    info.id = id;
    info.path = meta.path;
    info.bytes = meta.bytes;
    out.push_back(std::move(info));
  }
  return out;
}

std::string PersistentTier::SegmentPathLocked(uint64_t id) const {
  return (fs::path(config_.dir) / SegmentFileName(id)).string();
}

std::string PersistentTier::CheckInvariants() const {
  MutexLock lock(mu_);
  uint64_t live = 0;
  std::map<uint64_t, uint64_t> per_segment_live;
  for (const auto& [key, entry] : index_) {
    auto seg = segments_.find(entry.segment_id);
    if (seg == segments_.end()) {
      return "index entry points at an untracked segment";
    }
    const uint64_t span = RecordSpanBytes(entry.key_len, entry.payload_len);
    if (entry.offset + span > seg->second.bytes) {
      return "index entry extends past its segment's valid bytes";
    }
    live += span;
    per_segment_live[entry.segment_id] += span;
  }
  if (live != live_bytes_) return "live byte accounting is off";
  if (live_bytes_ + dead_bytes_ != total_record_bytes_) {
    return "live + dead bytes disagree with total record bytes";
  }
  for (const auto& [id, meta] : segments_) {
    if (per_segment_live[id] != meta.live_bytes) {
      return "per-segment live byte accounting is off";
    }
    if (meta.bytes < kSegHeaderBytes) {
      return "tracked segment is smaller than its header";
    }
  }
  if (config_.budget_bytes > 0 && live_bytes_ > config_.budget_bytes) {
    return "live bytes exceed the configured budget";
  }
  return "";
}

// --- cache-entry payload serde ----------------------------------------------

namespace {
constexpr uint8_t kPayloadMatrix = 0;
constexpr uint8_t kPayloadScalar = 1;
}  // namespace

std::string EncodePersistPayload(CacheKind kind, const MatrixPtr& value,
                                 double scalar, double compute_cost) {
  std::string out;
  if (kind == CacheKind::kScalar) {
    out.reserve(1 + 2 * sizeof(double));
    out.push_back(static_cast<char>(kPayloadScalar));
    AppendRaw<double>(&out, compute_cost);
    AppendRaw<double>(&out, scalar);
    return out;
  }
  const size_t data_bytes = value == nullptr ? 0 : value->SizeInBytes();
  out.reserve(1 + sizeof(double) + 2 * sizeof(uint64_t) + data_bytes);
  out.push_back(static_cast<char>(kPayloadMatrix));
  AppendRaw<double>(&out, compute_cost);
  AppendRaw<uint64_t>(&out, value == nullptr ? 0 : value->rows());
  AppendRaw<uint64_t>(&out, value == nullptr ? 0 : value->cols());
  if (data_bytes > 0) {
    out.append(reinterpret_cast<const char*>(value->data()), data_bytes);
  }
  return out;
}

bool DecodePersistPayload(const std::string& payload, CacheKind* kind,
                          MatrixPtr* value, double* scalar,
                          double* compute_cost) {
  if (payload.size() < 1 + sizeof(double)) return false;
  const uint8_t tag = static_cast<uint8_t>(payload[0]);
  const double cost = ReadRaw<double>(payload.data() + 1);
  if (tag == kPayloadScalar) {
    if (payload.size() != 1 + 2 * sizeof(double)) return false;
    *kind = CacheKind::kScalar;
    *scalar = ReadRaw<double>(payload.data() + 1 + sizeof(double));
    *value = nullptr;
    *compute_cost = cost;
    return true;
  }
  if (tag != kPayloadMatrix) return false;
  const size_t header = 1 + sizeof(double) + 2 * sizeof(uint64_t);
  if (payload.size() < header) return false;
  const uint64_t rows = ReadRaw<uint64_t>(payload.data() + 1 + sizeof(double));
  const uint64_t cols =
      ReadRaw<uint64_t>(payload.data() + 1 + sizeof(double) + sizeof(uint64_t));
  if (rows > kMaxLen || cols > kMaxLen) return false;
  const uint64_t cells = rows * cols;
  if (payload.size() != header + cells * sizeof(double)) return false;
  std::vector<double> values(cells);
  if (cells > 0) {
    std::memcpy(values.data(), payload.data() + header,
                cells * sizeof(double));
  }
  *kind = CacheKind::kHostMatrix;
  *value = MatrixBlock::Create(rows, cols, std::move(values));
  *scalar = 0.0;
  *compute_cost = cost;
  return true;
}

}  // namespace memphis
