#include "cache/host_cache.h"

#include <algorithm>
#include <limits>

#include "common/status.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace memphis {

HostCache::HostCache(size_t capacity_bytes, const sim::CostModel* cost_model)
    : capacity_(capacity_bytes), cost_model_(cost_model) {}

double HostCache::Score(const CacheEntry& entry) const {
  const double references = entry.hits + entry.misses + 1;
  const double size = std::max<double>(1.0, static_cast<double>(
                                                entry.size_bytes));
  return references * entry.compute_cost / size;
}

bool HostCache::Admit(const CacheEntryPtr& entry, double* now) {
  MEMPHIS_CHECK(entry != nullptr);
  if (entry->kind == CacheKind::kScalar) return true;  // Negligible size.
  const size_t bytes = entry->size_bytes;
  if (bytes > capacity_) return false;
  if (used_ + bytes > capacity_) {
    // Admission control: never spill resident entries with a better
    // cost-per-byte score than the incoming one -- spilling them to make
    // room for a low-value entry would thrash the cache.
    const size_t freed =
        MakeSpace(used_ + bytes - capacity_, Score(*entry), now);
    if (used_ + bytes > capacity_) {
      (void)freed;
      return false;  // Not admitted; higher-value entries stay resident.
    }
  }
  used_ += bytes;
  resident_.push_back(entry);
  return true;
}

void HostCache::RestoreIfSpilled(const CacheEntryPtr& entry, double* now) {
  if (entry->status != CacheStatus::kSpilled) return;
  // Disk read back into memory; may evict others to fit.
  *now += static_cast<double>(entry->size_bytes) /
          cost_model_->spill_bandwidth;
  ++num_restores_;
  entry->status = CacheStatus::kCached;
  if (used_ + entry->size_bytes > capacity_) {
    // A restored entry was hit again: its score outranks cold residents.
    MakeSpace(used_ + entry->size_bytes - capacity_,
              std::numeric_limits<double>::infinity(), now);
  }
  used_ += entry->size_bytes;
  resident_.push_back(entry);
}

std::string HostCache::CheckInvariants() const {
  size_t total = 0;
  for (size_t i = 0; i < resident_.size(); ++i) {
    const CacheEntryPtr& entry = resident_[i];
    if (entry == nullptr) return "resident entry is null";
    if (entry->status != CacheStatus::kCached) {
      return "resident entry is not kCached (spilled entries must leave the "
             "resident set)";
    }
    if (entry->kind != CacheKind::kHostMatrix) {
      return "resident entry is not a host matrix";
    }
    if (entry->host_value == nullptr) {
      return "resident kCached host entry has no value";
    }
    if (entry->host_value->SizeInBytes() != entry->size_bytes) {
      return "resident entry size_bytes disagrees with its value";
    }
    for (size_t j = i + 1; j < resident_.size(); ++j) {
      if (resident_[j] == entry) return "entry resident twice";
    }
    total += entry->size_bytes;
  }
  if (total != used_) {
    return "used_bytes (" + std::to_string(used_) +
           ") != sum of resident sizes (" + std::to_string(total) + ")";
  }
  if (used_ > capacity_) {
    return "used_bytes exceeds capacity";
  }
  return "";
}

void HostCache::Forget(const CacheEntryPtr& entry) {
  auto it = std::find(resident_.begin(), resident_.end(), entry);
  if (it != resident_.end()) {
    used_ -= entry->size_bytes;
    resident_.erase(it);
  }
}

size_t HostCache::MakeSpace(size_t needed, double max_victim_score,
                            double* now) {
  // Evict minimum-score entries one at a time (Section 4's incremental
  // MAKE_SPACE), writing them to disk at spill bandwidth. Victims scoring
  // above `max_victim_score` are protected (admission control).
  size_t freed = 0;
  while (freed < needed && !resident_.empty()) {
    auto victim_it = resident_.begin();
    double victim_score = Score(**victim_it);
    for (auto it = resident_.begin() + 1; it != resident_.end(); ++it) {
      const double score = Score(**it);
      if (score < victim_score) {
        victim_it = it;
        victim_score = score;
      }
    }
    if (victim_score >= max_victim_score) break;
    CacheEntryPtr victim = *victim_it;
    resident_.erase(victim_it);
    used_ -= victim->size_bytes;
    freed += victim->size_bytes;
    victim->status = CacheStatus::kSpilled;
    // Asynchronous spill write: the buffer pool's writer thread absorbs it.
    spill_writer_.Reserve(*now,
                          static_cast<double>(victim->size_bytes) /
                              cost_model_->spill_bandwidth,
                          "spill-write");
    ++num_spills_;
    MEMPHIS_TRACE_INSTANT1_REQ("cache", "spill", "bytes",
                               static_cast<double>(victim->size_bytes));
    MEMPHIS_JOURNAL(kEvict, kHost, kQuota,
                    static_cast<uint64_t>(LineageItemPtrHash{}(victim->key)),
                    victim->compute_cost,
                    static_cast<double>(victim->size_bytes));
  }
  return freed;
}

}  // namespace memphis
