#ifndef MEMPHIS_GPU_GPU_STREAM_H_
#define MEMPHIS_GPU_GPU_STREAM_H_

#include "sim/timeline.h"

namespace memphis::gpu {

/// A single CUDA stream: kernels execute eagerly and sequentially on the
/// device but asynchronously with respect to the host thread (Section 2.3).
/// Launch enqueues work; Synchronize joins the host clock with the device.
class GpuStream {
 public:
  /// Enqueues `duration` seconds of device work issued at host time `now`;
  /// returns the device-side completion time. `label` names the span on the
  /// stream's simulated-time trace lane.
  double Launch(double now, double duration, const char* label = nullptr) {
    return timeline_.Reserve(now, duration, label);
  }

  /// Host blocks until all enqueued work completes: returns the new host
  /// time max(now, device idle time).
  double Synchronize(double now) const {
    return now > timeline_.available_at() ? now : timeline_.available_at();
  }

  double device_busy_time() const { return timeline_.busy_time(); }
  double available_at() const { return timeline_.available_at(); }

  void Reset() { timeline_.Reset(); }

 private:
  sim::Timeline timeline_{"gpu-stream"};
};

}  // namespace memphis::gpu

#endif  // MEMPHIS_GPU_GPU_STREAM_H_
