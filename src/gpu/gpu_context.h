#ifndef MEMPHIS_GPU_GPU_CONTEXT_H_
#define MEMPHIS_GPU_GPU_CONTEXT_H_

#include <memory>
#include <optional>

#include "gpu/gpu_arena.h"
#include "gpu/gpu_stream.h"
#include "matrix/matrix_block.h"
#include "obs/metrics.h"
#include "sim/cost_model.h"

namespace memphis::gpu {

/// A device-resident buffer: an arena handle plus the host-side shadow of
/// its contents (the "virtual time, real data" design -- kernels really
/// compute into host memory while timing is charged to the device).
struct GpuBuffer {
  uint64_t handle = 0;
  size_t bytes = 0;
  MatrixPtr data;  // Contents; set when a kernel writes or H2D copies.
};
using GpuBufferPtr = std::shared_ptr<GpuBuffer>;

/// Counters mirroring the overheads of Figure 2(d). Atomic (obs types) so
/// GPU instructions issued from concurrent tasks update them safely.
struct GpuStats {
  obs::Counter mallocs;
  obs::Counter frees;
  obs::Counter kernels;
  obs::Counter h2d_copies;
  obs::Counter d2h_copies;
  obs::Counter defrags;
  obs::Counter alloc_bytes;  // total bytes ever cudaMalloc'd.
  obs::Gauge malloc_time;
  obs::Gauge free_time;
  obs::Gauge copy_time;
  obs::Gauge kernel_time;  // device busy time.

  /// Registers every field under "<prefix><field>" ("gpu0." etc.), keeping
  /// per-device metrics separable.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix);
};

/// The CUDA-context analogue: owns the arena, the stream, and the cost
/// accounting for allocation, deallocation, transfers, and kernels.
///
/// All methods take the host's virtual time and return the updated host
/// time; device-side completion is tracked on the stream.
class GpuContext {
 public:
  GpuContext(size_t device_memory_bytes, const sim::CostModel* cost_model);

  /// cudaMalloc: synchronizes the device, then allocates. Returns nullopt on
  /// failure (caller runs Algorithm 1's recycling/eviction ladder).
  std::optional<GpuBufferPtr> Malloc(size_t bytes, double* now);

  /// cudaFree: synchronizes the device, then releases.
  void Free(const GpuBufferPtr& buffer, double* now);

  /// Launches a kernel writing `output`; asynchronous for the host.
  /// `flops`/`bytes` drive the device-side duration.
  void LaunchKernel(const GpuBufferPtr& output, MatrixPtr result, double flops,
                    double bytes, double* now);

  /// Device-to-host copy; synchronization barrier (host waits for stream).
  MatrixPtr CopyD2H(const GpuBufferPtr& buffer, double* now);

  /// Host-to-device copy into an existing buffer (pageable, blocking).
  void CopyH2D(const GpuBufferPtr& buffer, MatrixPtr value, double* now);

  /// Explicit barrier.
  void Synchronize(double* now);

  /// Full defragmentation (last resort of the allocation ladder).
  void Defragment(double* now);

  GpuArena& arena() { return arena_; }
  const GpuArena& arena() const { return arena_; }
  GpuStream& stream() { return stream_; }
  const GpuStats& stats() const { return stats_; }
  GpuStats& mutable_stats() { return stats_; }

 private:
  GpuArena arena_;
  GpuStream stream_;
  const sim::CostModel* cost_model_;
  GpuStats stats_;
};

}  // namespace memphis::gpu

#endif  // MEMPHIS_GPU_GPU_CONTEXT_H_
