#include "gpu/gpu_stream.h"

// Header-only; translation unit keeps the build target well-formed.
