#include "gpu/gpu_arena.h"

#include <algorithm>
#include <vector>

#include "common/status.h"

namespace memphis::gpu {

GpuArena::GpuArena(size_t capacity_bytes) : capacity_(capacity_bytes) {
  MEMPHIS_CHECK(capacity_bytes > 0);
  free_by_offset_[0] = capacity_bytes;
}

std::optional<uint64_t> GpuArena::Alloc(size_t bytes) {
  MEMPHIS_CHECK(bytes > 0);
  // First fit by offset order.
  for (auto it = free_by_offset_.begin(); it != free_by_offset_.end(); ++it) {
    if (it->second < bytes) continue;
    const size_t offset = it->first;
    const size_t remaining = it->second - bytes;
    free_by_offset_.erase(it);
    if (remaining > 0) free_by_offset_[offset + bytes] = remaining;
    const uint64_t handle = next_handle_++;
    live_[handle] = LiveBlock{offset, bytes};
    allocated_ += bytes;
    return handle;
  }
  return std::nullopt;
}

void GpuArena::Free(uint64_t handle) {
  auto it = live_.find(handle);
  MEMPHIS_CHECK_MSG(it != live_.end(), "double free / unknown GPU handle");
  size_t offset = it->second.offset;
  size_t size = it->second.size;
  allocated_ -= size;
  live_.erase(it);

  // Coalesce with the following free block.
  auto next = free_by_offset_.lower_bound(offset);
  if (next != free_by_offset_.end() && next->first == offset + size) {
    size += next->second;
    free_by_offset_.erase(next);
  }
  // Coalesce with the preceding free block.
  auto prev = free_by_offset_.lower_bound(offset);
  if (prev != free_by_offset_.begin()) {
    --prev;
    if (prev->first + prev->second == offset) {
      offset = prev->first;
      size += prev->second;
      free_by_offset_.erase(prev);
    }
  }
  free_by_offset_[offset] = size;
}

size_t GpuArena::Defragment() {
  // Slide all live blocks to the front in offset order.
  std::vector<std::pair<size_t, uint64_t>> order;
  order.reserve(live_.size());
  for (const auto& [handle, block] : live_) {
    order.emplace_back(block.offset, handle);
  }
  std::sort(order.begin(), order.end());
  size_t cursor = 0;
  size_t moved = 0;
  for (const auto& [old_offset, handle] : order) {
    LiveBlock& block = live_[handle];
    if (block.offset != cursor) {
      moved += block.size;
      block.offset = cursor;
    }
    cursor += block.size;
  }
  free_by_offset_.clear();
  if (cursor < capacity_) free_by_offset_[cursor] = capacity_ - cursor;
  return moved;
}

size_t GpuArena::LargestFreeBlock() const {
  size_t largest = 0;
  for (const auto& [offset, size] : free_by_offset_) {
    largest = std::max(largest, size);
  }
  return largest;
}

double GpuArena::Fragmentation() const {
  const size_t total_free = free_bytes();
  if (total_free == 0) return 0.0;
  return 1.0 - static_cast<double>(LargestFreeBlock()) /
                   static_cast<double>(total_free);
}

size_t GpuArena::BlockSize(uint64_t handle) const {
  auto it = live_.find(handle);
  MEMPHIS_CHECK(it != live_.end());
  return it->second.size;
}

size_t GpuArena::BlockOffset(uint64_t handle) const {
  auto it = live_.find(handle);
  MEMPHIS_CHECK(it != live_.end());
  return it->second.offset;
}

}  // namespace memphis::gpu
